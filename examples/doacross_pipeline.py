"""DOACROSS pipelining: a first-order IIR filter across processors.

The paper notes that non-parallel orderings "translate to DOACROSS-style
synchronization patterns" (§2.6).  This example runs the sequentially
ordered recurrence

    ``y[i] := a * y[i-1] + x[i]``      (a one-pole IIR filter)

on the distributed machine: the data dependence itself synchronizes the
pipeline — each node starts as soon as its predecessor's boundary value
arrives.  Block decomposition makes only ``pmax - 1`` dependence hops
cross the network; scatter makes *every* hop a message (a fully
serialized systolic chain).

Run:  python examples/doacross_pipeline.py
"""

import numpy as np

from repro import Block, Clause, IndexSet, Ref, Scatter, SeparableMap
from repro.codegen.doacross import compile_doacross, run_doacross
from repro.core import SEQ, AffineF, BinOp, Const, copy_env, evaluate_clause

N = 240
PMAX = 8
A = 0.9


def iir_clause() -> Clause:
    prev = Ref("y", SeparableMap([AffineF(1, -1)]))
    x = Ref("x", SeparableMap([AffineF(1, 0)]))
    return Clause(
        domain=IndexSet.range1d(1, N - 1),
        lhs=Ref("y", SeparableMap([AffineF(1, 0)])),
        rhs=BinOp("+", BinOp("*", Const(A), prev), x),
        ordering=SEQ,
        name="iir",
    )


def scale_clause() -> Clause:
    y = Ref("y", SeparableMap([AffineF(1, 0)]))
    return Clause(
        domain=IndexSet.range1d(0, N - 1),
        lhs=Ref("z", SeparableMap([AffineF(1, 0)])),
        rhs=BinOp("*", Const(2.0), y),
        name="scale",
    )


def run_whole_program(env0) -> None:
    """The program layer over a DOACROSS chain: ``fuse-clauses`` never
    fuses across the sequential clause (its interior is a serial
    dependence chain), but ``elide-redistribution`` still recognises
    that ``y``'s block placement agrees at the clause boundary — the
    barrier stays, the re-placement goes."""
    from repro.core.clause import Program
    from repro.pipeline import (
        compile_program,
        evaluate_program_reference,
        run_program,
    )

    decomps = {n: Block(N, PMAX) for n in ("x", "y", "z")}
    program = Program([iir_clause(), scale_clause()], name="iir+scale")
    pir = compile_program(program, decomps)
    env = {**copy_env(env0), "z": np.zeros(N)}
    ref = evaluate_program_reference(pir, env)
    machine, barriers = run_program(pir, env, backend="scalar")
    assert np.allclose(machine.env["z"], ref["z"])
    elided = len(pir.elided)
    print(f"\n  whole program (iir ; scale): {barriers} barrier(s), "
          f"{elided} redistribution(s) elided   result OK")


def main() -> None:
    rng = np.random.default_rng(11)
    env0 = {"y": np.zeros(N), "x": rng.random(N)}
    env0["y"][0] = env0["x"][0]

    clause = iir_clause()
    ref = evaluate_clause(clause, copy_env(env0))["y"]

    print(f"one-pole IIR filter y[i] = {A}*y[i-1] + x[i], n={N}, "
          f"pmax={PMAX}\n")
    for label, mk in (("block", lambda: Block(N, PMAX)),
                      ("scatter", lambda: Scatter(N, PMAX))):
        plan = compile_doacross(clause, {"y": mk(), "x": mk()})
        m = run_doacross(plan, copy_env(env0))
        got = m.collect("y")
        assert np.allclose(got, ref), label
        print(f"    {label:8s} dependence messages: "
              f"{m.stats.total_messages():4d}   result OK")

    run_whole_program(env0)
    print("\nblock: only the pmax-1 block boundaries synchronize;")
    print("scatter: the full chain crosses the network at every step —")
    print("the decomposition turns a pipeline into a systolic array.")


if __name__ == "__main__":
    main()
