"""2-D decompositions: the surface-to-volume effect on a 5-point stencil.

The d-dimensional lifting of the paper's framework: the same clause

    ``T[i,j] := 0.25 * (S[i-1,j] + S[i+1,j] + S[i,j-1] + S[i,j+1])``

runs under a 1-D row-strip decomposition and a 2-D square-tile grid of
the same 16 processors.  Only the decomposition specification changes;
the generated communication follows the partition surface.

Run:  python examples/grid_2d_stencil.py
"""

import numpy as np

from repro.codegen.nddist import (
    collect_nd,
    compile_clause_nd_dist,
    run_distributed_nd,
)
from repro.core import (
    AffineF,
    Bounds,
    Clause,
    Const,
    IdentityF,
    IndexSet,
    Ref,
    SeparableMap,
    copy_env,
    evaluate_clause,
)
from repro.core.expr import BinOp
from repro.decomp import Block, Collapsed, GridDecomposition

N = 32
P_SIDE = 4
PMAX = 16


def five_point() -> Clause:
    def sref(di, dj):
        fi = AffineF(1, di) if di else IdentityF()
        fj = AffineF(1, dj) if dj else IdentityF()
        return Ref("S", SeparableMap([fi, fj]))

    rhs = BinOp("+", BinOp("+", sref(-1, 0), sref(1, 0)),
                BinOp("+", sref(0, -1), sref(0, 1)))
    return Clause(
        IndexSet(Bounds((1, 1), (N - 2, N - 2))),
        Ref("T", SeparableMap([IdentityF(), IdentityF()])),
        BinOp("*", Const(0.25), rhs),
    )


def main() -> None:
    rng = np.random.default_rng(21)
    env0 = {"S": rng.random((N, N)), "T": np.zeros((N, N))}
    clause = five_point()
    ref = evaluate_clause(clause, copy_env(env0))["T"]

    print(f"5-point stencil on a {N}x{N} grid, {PMAX} processors\n")
    for label, g in (
        ("1-D row strips ", GridDecomposition([Block(N, PMAX), Collapsed(N)])),
        ("2-D square tiles", GridDecomposition([Block(N, P_SIDE),
                                                Block(N, P_SIDE)])),
    ):
        plan = compile_clause_nd_dist(clause, {"T": g, "S": g})
        m = run_distributed_nd(plan, copy_env(env0))
        assert np.allclose(collect_nd(m, "T"), ref)
        print(f"    {label}:  boundary elements exchanged = "
              f"{m.stats.total_elements_moved():5d}   result OK")

    print("\nsquare tiles exchange ~4N/sqrt(P) per node instead of ~2N —")
    print("the surface-to-volume argument for multi-axis decompositions,")
    print("expressed entirely in the decomposition specification.")


if __name__ == "__main__":
    main()
