"""Rotate views: the paper's §3.3 piece-wise monotonic access, end to end.

``A[i] := B[(i + s) mod n]`` is a rotate — the index function is
piece-wise monotonic with one breakpoint.  This example shows:

* breakpoint computation and the per-piece monotone functions,
* the Table I optimizer splitting ranges per piece (block) and solving a
  diophantine progression per piece (scatter),
* the generated SPMD node program, run and verified.

Run:  python examples/rotate_views.py
"""

import numpy as np

from repro import (
    Block,
    Clause,
    IndexSet,
    ModularF,
    Ref,
    Scatter,
    SeparableMap,
    compile_clause,
    copy_env,
    evaluate_clause,
    run_distributed,
)
from repro.core import AffineF
from repro.sets import Work, modify_naive, optimize_access

N = 20
SHIFT = 6
PMAX = 4


def main() -> None:
    f = ModularF(AffineF(1, SHIFT), N)  # (i + 6) mod 20 — the paper's own
    print(f"rotate access f(i) = (i + {SHIFT}) mod {N}")
    print(f"    injective on 0:{N - 1}?  {f.is_injective_on(0, N - 1)}")
    print(f"    breakpoints: {f.breakpoints(0, N - 1)}")
    for lo, hi, piece in f.pieces(0, N - 1):
        print(f"    piece [{lo:2d}, {hi:2d}]  f(i) = {piece.name}")

    print("\nmembership sets under scatter (pmax=4):")
    d = Scatter(N, PMAX)
    acc = optimize_access(d, f, 0, N - 1)
    print(f"    rule fired: {acc.rule}")
    for p in range(PMAX):
        w = Work()
        idx = acc.indices(p, w)
        assert idx == modify_naive(d, f, 0, N - 1, p)
        print(f"    Reside_{p} = {idx}  (overhead {w.overhead()}, "
              f"vs naive {N})")

    # full SPMD run: A block-distributed, B scatter-distributed
    clause = Clause(
        domain=IndexSet.range1d(0, N - 1),
        lhs=Ref("A", SeparableMap([AffineF(1, 0)])),
        rhs=Ref("B", SeparableMap([f])),
        name="rotate",
    )
    rng = np.random.default_rng(3)
    env0 = {"A": np.zeros(N), "B": rng.random(N)}
    ref = evaluate_clause(clause, copy_env(env0))["A"]

    plan = compile_clause(clause, {"A": Block(N, PMAX), "B": Scatter(N, PMAX)})
    machine = run_distributed(plan, copy_env(env0))
    assert np.allclose(machine.collect("A"), ref)
    print(f"\ndistributed rotate: OK "
          f"(messages: {machine.stats.total_messages()}, rules: "
          f"{plan.rules()})")


if __name__ == "__main__":
    main()
