"""Distributed matrix-vector product: y = M x with block rows.

A two-level demonstration:

* the *front end* translates the nested-loop matvec into a 2-D V-cal
  clause and the sequential evaluator provides the oracle;
* the *machine layer* runs the classic SPMD matvec — block-distributed
  rows, replicated x (the mpi4py tutorial's Allgather pattern without
  the Allgather, because the paper's replicated decomposition makes the
  vector resident everywhere).

Run:  python examples/matvec_spmd.py
"""

import numpy as np

from repro import (
    Block,
    Replicated,
    copy_env,
    evaluate_program,
    translate_source,
)
from repro.decomp import Collapsed, GridDecomposition
from repro.machine import DistributedMachine

NROWS, NCOLS = 64, 48
PMAX = 8

MATVEC_SRC = """
for i := 0 to nrows - 1 par do
  for j := 0 to ncols - 1 seq do
    y[i] := y[i] + M[i, j] * x[j];
  od
od
"""


def main() -> None:
    rng = np.random.default_rng(7)
    M = rng.random((NROWS, NCOLS))
    x = rng.random(NCOLS)

    # ---- front end: V-cal translation + sequential oracle ---------------
    program = translate_source(
        MATVEC_SRC, params={"nrows": NROWS, "ncols": NCOLS}
    )
    print("V-cal clause from the nested-loop source:")
    print("   ", repr(program.clauses[0]))
    env = {"y": np.zeros(NROWS), "M": M.copy(), "x": x.copy()}
    evaluate_program(program, env)
    assert np.allclose(env["y"], M @ x)
    print("sequential V-cal evaluation matches numpy:  OK")

    # ---- machine layer: SPMD matvec with block rows ----------------------
    # Row decomposition of M via a grid: block rows x full columns.
    grid = GridDecomposition([Block(NROWS, PMAX), Collapsed(NCOLS)])
    dec_y = Block(NROWS, PMAX)
    dec_x = Replicated(NCOLS, PMAX)

    machine = DistributedMachine(PMAX)
    machine.place("y", np.zeros(NROWS), dec_y)
    machine.place("x", x, dec_x)
    # place the matrix rows by hand through the grid decomposition
    for p in range(PMAX):
        rows = sorted({i for (i, _j) in grid.owned(p)})
        machine.memories[p].arrays["M"] = M[rows, :].copy()

    def node_program(ctx):
        def gen():
            p = ctx.p
            local_rows = dec_y.owned(p)
            Mp = ctx.mem["M"]
            xp = ctx.mem["x"]  # replicated: always local
            for k, i in enumerate(local_rows):
                ctx.update("y", dec_y.local(i), float(Mp[k] @ xp))
            yield ctx.barrier()
        return gen()

    machine.run(node_program)
    y = machine.collect("y")
    assert np.allclose(y, M @ x)
    print(f"\nSPMD matvec ({NROWS}x{NCOLS} on {PMAX} nodes, block rows, "
          f"replicated x):")
    print(f"    messages: {machine.stats.total_messages()} "
          f"(replication makes the vector free to read)")
    print(f"    per-node row counts: "
          f"{[len(dec_y.owned(p)) for p in range(PMAX)]}")
    print("    result matches numpy:  OK")


if __name__ == "__main__":
    main()
