"""1-D heat diffusion: an iterated stencil under different decompositions.

The canonical SPMD workload the data-decomposition literature motivates:
repeatedly apply

    U'[i] := U[i] + alpha * (U[i-1] - 2 U[i] + U[i+1])

on a distributed machine.  The program text never changes; only the
decomposition specification does — and the communication volume follows.
Block decomposition turns the stencil into neighbour-boundary traffic;
scatter makes every access remote, which is exactly the trade-off the
paper's framework lets a compiler reason about.

Run:  python examples/heat_stencil.py
"""

import numpy as np

from repro import (
    Block,
    BlockScatter,
    Clause,
    IndexSet,
    Ref,
    Scatter,
    SeparableMap,
    compile_clause,
    copy_env,
    evaluate_clause,
    run_distributed,
)
from repro.core import AffineF, BinOp, Const
from repro.machine import DistributedMachine

N = 256
PMAX = 8
ALPHA = 0.1
STEPS = 10


def stencil_clause(src: str, dst: str) -> Clause:
    """dst[i] := src[i] + alpha (src[i-1] - 2 src[i] + src[i+1])."""
    u_l = Ref(src, SeparableMap([AffineF(1, -1)]))
    u_c = Ref(src, SeparableMap([AffineF(1, 0)]))
    u_r = Ref(src, SeparableMap([AffineF(1, 1)]))
    lap = BinOp("+", BinOp("-", u_l, BinOp("*", Const(2.0), u_c)), u_r)
    return Clause(
        domain=IndexSet.range1d(1, N - 2),
        lhs=Ref(dst, SeparableMap([AffineF(1, 0)])),
        rhs=BinOp("+", u_c, BinOp("*", Const(ALPHA), lap)),
        name=f"heat:{src}->{dst}",
    )


def reference(u0: np.ndarray) -> np.ndarray:
    u = u0.copy()
    for _ in range(STEPS):
        nxt = u.copy()
        nxt[1:-1] = u[1:-1] + ALPHA * (u[:-2] - 2 * u[1:-1] + u[2:])
        u = nxt
    return u


def run_with(mk_dec, label: str, u0: np.ndarray) -> None:
    dec_u, dec_v = mk_dec(), mk_dec()
    machine = DistributedMachine(PMAX)
    machine.place("U", u0, dec_u)
    machine.place("V", u0, dec_v)  # double buffer

    plans = {
        ("U", "V"): compile_clause(stencil_clause("U", "V"),
                                   {"U": dec_u, "V": dec_v}),
        ("V", "U"): compile_clause(stencil_clause("V", "U"),
                                   {"V": dec_v, "U": dec_u}),
    }
    src, dst = "U", "V"
    for _step in range(STEPS):
        plan = plans[(src, dst)]
        from repro.codegen.dist_tmpl import make_node_program

        machine.run(lambda ctx, plan=plan: make_node_program(plan, ctx))
        src, dst = dst, src

    result = machine.collect(src)
    want = reference(u0)
    assert np.allclose(result, want), label
    msgs = machine.stats.total_messages()
    print(f"    {label:10s}  messages over {STEPS} steps: {msgs:6d}  "
          f"(per step: {msgs / STEPS:7.1f})   result OK")


def run_pipelined(u0: np.ndarray) -> None:
    """The whole-program path: compile the time step ONCE as a
    ``repeat(STEPS)`` ProgramIR with a U<->V buffer swap — the
    pipeline-time-loop pass keeps the fused/mp kernels (and, for mp,
    the worker pool) hot across all iterations instead of recompiling
    and re-dispatching per step."""
    from repro.core.clause import Program
    from repro.pipeline import compile_program, run_program

    decomps = {"U": Block(N, PMAX), "V": Block(N, PMAX)}
    program = Program([stencil_clause("U", "V")], name="heat")
    pir = compile_program(program, decomps, repeat=STEPS,
                          swap=(("U", "V"),))
    assert pir.pipelined, pir.pipeline_reason
    want = reference(u0)
    print(f"\n  whole-program time loop (repeat={STEPS}, swap U<->V):")
    for backend in ("fused", "mp"):
        env = {"U": u0.copy(), "V": u0.copy()}
        machine, barriers = run_program(pir, env, backend=backend)
        # the swap runs after every step, so U always holds the result
        assert np.allclose(machine.env["U"], want), backend
        print(f"    {backend:10s}  barriers over {STEPS} steps: "
              f"{barriers:6d}   result OK")


def main() -> None:
    rng = np.random.default_rng(42)
    u0 = rng.random(N)
    print(f"1-D heat equation, n={N}, pmax={PMAX}, {STEPS} steps\n")
    print("  decomposition -> communication volume:")
    run_with(lambda: Block(N, PMAX), "block", u0)
    run_with(lambda: BlockScatter(N, PMAX, 8), "BS(8)", u0)
    run_with(lambda: Scatter(N, PMAX), "scatter", u0)
    run_pipelined(u0)
    print("\nblock decomposition exchanges only the 2(pmax-1) boundary")
    print("elements per step; scatter pays for every interior access —")
    print("the decomposition choice, not the program, decides the traffic.")


if __name__ == "__main__":
    main()
