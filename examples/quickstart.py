"""Quickstart: from an imperative program to running SPMD node programs.

The complete pipeline of the paper on its own Fig. 1 example:

1. write a small imperative program (the paper's Fig. 1),
2. translate it to a V-cal clause (Section 2.5),
3. pick data decompositions *separately* from the program (Section 2.6),
4. compile: the Table I optimizer chooses closed-form membership
   enumerators (Section 3),
5. generate and run SPMD node programs on the simulated shared- and
   distributed-memory machines (Sections 2.9-2.10),
6. check both against the sequential reference evaluator.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Block,
    Scatter,
    compile_clause,
    copy_env,
    emit_distributed_source,
    evaluate_program,
    run_distributed,
    run_shared,
    translate_source,
)

SOURCE = """
** Fig. 1 of the paper: a guarded gather through f(i) = 2i + 1
for i := k + 1 to n - 1 par do
    if A[i] > 0 then
        A[i] := B[2 * i + 1];
    fi;
od;
"""


def main() -> None:
    n, pmax = 24, 4
    params = {"k": 2, "n": n}

    # 1-2. parse + translate to V-cal
    program = translate_source(SOURCE, params)
    clause = program.clauses[0]
    print("V-cal clause:")
    print("   ", repr(clause))

    # 3. decompositions, chosen independently of the program text
    decomps = {
        "A": Block(n, pmax),        # A block-distributed
        "B": Scatter(2 * n, pmax),  # B cyclically distributed
    }

    # 4. compile — see which Table I rules fired
    plan = compile_clause(clause, decomps)
    print("\nTable I rules chosen by the optimizer:")
    for access, rule in plan.rules().items():
        print(f"    {access:12s} -> {rule}")

    # data
    rng = np.random.default_rng(0)
    env0 = {
        "A": rng.integers(-5, 5, n).astype(float),
        "B": rng.random(2 * n),
    }

    # sequential reference (the oracle)
    ref = evaluate_program(program, copy_env(env0))["A"]

    # 5a. shared-memory SPMD
    shared = run_shared(plan, copy_env(env0))
    assert np.allclose(shared.env["A"], ref)
    print(f"\nshared-memory run:       OK  "
          f"(membership tests executed: {shared.stats.total_tests()})")

    # 5b. distributed-memory SPMD
    dist = run_distributed(plan, copy_env(env0))
    assert np.allclose(dist.collect("A"), ref)
    print(f"distributed-memory run:  OK  "
          f"(messages: {dist.stats.total_messages()}, "
          f"elements moved: {dist.stats.total_elements_moved()})")

    # 6. the actual generated node program
    print("\ngenerated distributed node program (one SPMD program, "
          "parameterized by p = my_node):\n")
    print(emit_distributed_source(plan))


if __name__ == "__main__":
    main()
