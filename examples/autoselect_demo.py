"""Automatic decomposition selection: let the machinery choose.

The paper automates code generation *given* a decomposition; this demo
runs the layer above — search the decomposition space using the
generated programs themselves as the cost oracle:

* static: one assignment for the whole program, ranked by modeled
  makespan under a machine cost model;
* dynamic: per-phase assignments with automatically generated
  redistribution between phases (the §5 "dynamic decompositions").

Run:  python examples/autoselect_demo.py
"""

import numpy as np

from repro.codegen.autoselect import choose_dynamic, choose_static
from repro.core import AffineF, Clause, IndexSet, Program, Ref, SeparableMap
from repro.decomp import Block, Scatter
from repro.machine import ETHERNET_CLUSTER, HYPERCUBE, CostModel
from repro.report import print_table

N, PMAX = 128, 4


def stencil(write, read):
    return Clause(
        IndexSet.range1d(1, N - 2),
        Ref(write, SeparableMap([AffineF(1, 0)])),
        Ref(read, SeparableMap([AffineF(1, -1)]))
        + Ref(read, SeparableMap([AffineF(1, 1)])),
    )


def prefix(write):
    return Clause(
        IndexSet.range1d(0, N // 4 - 1),
        Ref(write, SeparableMap([AffineF(1, 0)])),
        Ref(write, SeparableMap([AffineF(1, 0)])) * 2,
    )


def main() -> None:
    rng = np.random.default_rng(5)

    # ---- static: which layout should the stencil use? -------------------
    prog = Program([stencil("A", "B")])
    env = {"A": np.zeros(N), "B": rng.random(N)}
    rows = []
    for model in (HYPERCUBE, ETHERNET_CLUSTER):
        sc = choose_static(prog, env, PMAX, model)
        rows.append([model.name, sc.describe(), f"{sc.cost:.0f}"])
    print_table(
        f"static choice for A[i] := B[i-1]+B[i+1], n={N}, pmax={PMAX}",
        ["machine model", "chosen assignment", "modeled cost"],
        rows,
    )

    # ---- dynamic: switch layouts between phases --------------------------
    model = CostModel("cheap-comm", alpha=1.0, beta=0.05, t_barrier=1.0,
                      t_test=0.5)
    prog2 = Program([stencil("B", "B"), prefix("B")])
    dc = choose_dynamic(
        prog2, {"B": rng.random(N)}, PMAX, model,
        candidates={"B": [Block(N, PMAX), Scatter(N, PMAX)]},
    )
    print("\ntwo-phase program (stencil, then shrinking prefix):")
    print(dc.describe())
    print(f"dynamic cost {dc.cost:.0f} vs best static {dc.static_cost:.0f} "
          f"({100 * (1 - dc.cost / dc.static_cost):.0f}% saved) — the DP "
          f"inserted an automatic block->scatter redistribution.")


if __name__ == "__main__":
    main()
