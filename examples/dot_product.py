"""Dot product: idiom recognition turns a serial loop into a reduction.

The source program is the natural sequential accumulation::

    for i := 0 to n - 1 seq do
        s[0] := s[0] + X[i] * Y[i];
    od

Taken literally, the ``seq`` chain admits no parallelism.  The idiom
recognizer spots the associative accumulation, and the generated program
becomes: Table I iteration partition → local folds → log-depth tree
combine — with the operand fetches handled by the usual §2.10 machinery
when the vectors are decomposed differently.

Run:  python examples/dot_product.py
"""

import numpy as np

from repro.codegen.idioms import recognize_reduction, run_clause_or_reduction
from repro.decomp import Block, Scatter, SingleOwner
from repro.frontend import translate_source

N, PMAX = 512, 8

SOURCE = """
for i := 0 to n - 1 seq do
    s[0] := s[0] + X[i] * Y[i];
od
"""


def main() -> None:
    rng = np.random.default_rng(17)
    x, y = rng.random(N), rng.random(N)

    program = translate_source(SOURCE, params={"n": N})
    clause = program.clauses[0]
    rec = recognize_reduction(clause)
    print(f"clause: {clause!r}")
    print(f"recognized: op={rec.op!r}, accumulator={rec.accumulator}[{rec.slot}]\n")

    for label, dx, dy in (
        ("aligned (both block)", Block(N, PMAX), Block(N, PMAX)),
        ("misaligned (block/scatter)", Block(N, PMAX), Scatter(N, PMAX)),
    ):
        env = {"s": np.zeros(1), "X": x.copy(), "Y": y.copy()}
        decomps = {"s": SingleOwner(1, PMAX, 0), "X": dx, "Y": dy}
        machine, path = run_clause_or_reduction(clause, decomps, env)
        result = machine.collect("s")[0]
        assert np.isclose(result, x @ y)
        print(f"    {label:28s} path={path}  messages="
              f"{machine.stats.total_messages():4d}  result OK")

    print("\nthe serial accumulation became local folds plus a tree combine;")
    print("misalignment only adds operand traffic, never changes the result.")


if __name__ == "__main__":
    main()
