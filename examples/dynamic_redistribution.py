"""Dynamic decompositions: redistribute mid-computation, automatically.

A two-phase pipeline on one distributed array:

* phase 1 — a uniform sweep, best under *block* (contiguity, no traffic),
* phase 2 — a shrinking-prefix workload, best under *scatter* (balance).

Between the phases the array is redistributed by *generated* code derived
purely from the two decomposition specifications — the automation the
paper's introduction demands ("redistribution statements ... generated
automatically", not intermingled with program code).

Run:  python examples/dynamic_redistribution.py
"""

import numpy as np

from repro import (
    Block,
    Clause,
    IndexSet,
    Ref,
    Scatter,
    SeparableMap,
    compile_clause,
    run_redistribution,
)
from repro.codegen.dist_tmpl import make_node_program
from repro.core import AffineF, LoopIndex
from repro.machine import DistributedMachine

N = 240
PMAX = 8


def sweep_clause(n: int) -> Clause:
    """A[i] := A[i] * 2 over the full range (uniform work)."""
    a = Ref("A", SeparableMap([AffineF(1, 0)]))
    return Clause(IndexSet.range1d(0, n - 1),
                  Ref("A", SeparableMap([AffineF(1, 0)])), a * 2,
                  name="sweep")


def prefix_clause(hi: int) -> Clause:
    """A[i] := A[i] + i over a prefix (front-loaded work)."""
    a = Ref("A", SeparableMap([AffineF(1, 0)]))
    return Clause(IndexSet.range1d(0, hi),
                  Ref("A", SeparableMap([AffineF(1, 0)])),
                  a + LoopIndex(0),
                  name="prefix")


def run_phase(machine, clause, dec):
    plan = compile_clause(clause, {"A": dec})
    machine.run(lambda ctx: make_node_program(plan, ctx))
    return machine.stats.update_counts()


def main() -> None:
    rng = np.random.default_rng(1)
    a0 = rng.random(N)
    want = a0 * 2
    hi = N // 4 - 1
    want[: hi + 1] += np.arange(hi + 1)

    machine = DistributedMachine(PMAX)
    block, scatter = Block(N, PMAX), Scatter(N, PMAX)
    machine.place("A", a0, block)

    print(f"phase 1: uniform sweep under block (n={N}, pmax={PMAX})")
    before = machine.stats.update_counts()
    counts1 = run_phase(machine, sweep_clause(N), block)
    print(f"    per-node updates: {counts1}")

    print("\nredistribute block -> scatter (generated automatically):")
    plan = run_redistribution(machine, "A", scatter)
    print(f"    messages: {plan.message_count()}, "
          f"elements moved: {plan.moved_elements()}, "
          f"staying put: {plan.stay_elements()}")

    print(f"\nphase 2: prefix workload 0:{hi} under scatter")
    total_before = machine.stats.update_counts()
    run_phase(machine, prefix_clause(hi), scatter)
    phase2 = [a - b for a, b in zip(machine.stats.update_counts(),
                                    total_before)]
    print(f"    per-node updates: {phase2}  (balanced)")

    result = machine.collect("A")
    assert np.allclose(result, want)
    print("\nfinal state matches the sequential pipeline:  OK")

    # what the SAME phase-2 workload would have cost without redistribution
    m2 = DistributedMachine(PMAX)
    m2.place("A", a0, block)
    run_phase(m2, sweep_clause(N), block)
    base = m2.stats.update_counts()
    run_phase(m2, prefix_clause(hi), block)
    skew = [a - b for a, b in zip(m2.stats.update_counts(), base)]
    print(f"\nfor comparison, phase 2 under the ORIGINAL block layout "
          f"would put all the work on two nodes: {skew}")


if __name__ == "__main__":
    main()
