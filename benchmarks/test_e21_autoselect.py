"""E21 (extension) — automatic decomposition selection.

The layer above the paper: search the decomposition space with the
generated programs as the cost oracle.  Static search ranks whole-program
assignments; the phase-wise DP additionally inserts automatically
generated redistributions where switching layouts pays.
"""

import numpy as np
import pytest

from repro.codegen.autoselect import choose_dynamic, choose_static
from repro.core import (
    AffineF,
    Clause,
    IndexSet,
    Program,
    Ref,
    SeparableMap,
)
from repro.decomp import Block, Replicated, Scatter
from repro.machine import ETHERNET_CLUSTER, HYPERCUBE, CostModel

from .conftest import print_table

N, PMAX = 128, 4


def stencil(write, read, n=N):
    return Clause(
        IndexSet.range1d(1, n - 2),
        Ref(write, SeparableMap([AffineF(1, 0)])),
        Ref(read, SeparableMap([AffineF(1, -1)]))
        + Ref(read, SeparableMap([AffineF(1, 1)])),
    )


def prefix(write, n=N):
    return Clause(
        IndexSet.range1d(0, n // 4 - 1),
        Ref(write, SeparableMap([AffineF(1, 0)])),
        Ref(write, SeparableMap([AffineF(1, 0)])) * 2,
    )


def test_static_selection_table(rng):
    prog = Program([stencil("A", "B")])
    env = {"A": np.zeros(N), "B": rng.random(N)}
    rows = []
    for model in (HYPERCUBE, ETHERNET_CLUSTER):
        sc = choose_static(prog, env, PMAX, model)
        top = sc.ranking[:3]
        rows.append([model.name, sc.describe(), f"{sc.cost:.0f}",
                     f"{top[-1][1] / max(sc.cost, 1e-9):.1f}x spread(top3)"])
        # read-only stencil operand should be replicated on message
        # machines
        assert isinstance(sc.best["B"], Replicated)
    print_table(
        f"E21: static decomposition choice, stencil A<-B, n={N}, pmax={PMAX}",
        ["machine model", "chosen", "cost", "notes"],
        rows,
    )


def test_dynamic_beats_static_on_phase_change(rng):
    model = CostModel("cheap-comm", alpha=1.0, beta=0.05,
                      t_barrier=1.0, t_test=0.5)
    prog = Program([stencil("B", "B"), prefix("B")])
    env = {"B": rng.random(N)}
    candidates = {"B": [Block(N, PMAX), Scatter(N, PMAX)]}
    dc = choose_dynamic(prog, env, PMAX, model, candidates=candidates)
    layouts = [type(a["B"]).__name__ for a in dc.per_phase]
    print(f"\nE21 dynamic: phases -> {layouts}, cost {dc.cost:.0f} "
          f"(best static {dc.static_cost:.0f}, "
          f"saving {100 * (1 - dc.cost / dc.static_cost):.0f}%)")
    assert dc.cost < dc.static_cost
    assert layouts == ["Block", "Scatter"]


def test_static_search_timing(benchmark, rng):
    prog = Program([stencil("A", "B")])
    env = {"A": np.zeros(N), "B": rng.random(N)}
    sc = benchmark(choose_static, prog, env, PMAX, HYPERCUBE)
    assert sc.cost > 0


def test_dynamic_search_timing(benchmark, rng):
    prog = Program([stencil("B", "B"), prefix("B")])
    env = {"B": rng.random(N)}
    candidates = {"B": [Block(N, PMAX), Scatter(N, PMAX)]}
    dc = benchmark(choose_dynamic, prog, env, PMAX, HYPERCUBE,
                   candidates=candidates)
    assert dc.cost > 0
