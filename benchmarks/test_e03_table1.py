"""E3-E6 — paper Table I: closed-form enumerators per access-function
class x decomposition.

For every row of Table I this harness:

* checks the optimized enumerator equals the naive membership definition,
* reports which rule fired (Thm 1 / block / Thm 3 (+corollaries) /
  Thm 2 RB / RS / enum-on-k / piecewise),
* measures the run-time overhead (tests + iterations + inverse calls +
  Euclid steps) of optimized vs naive across all processors,
* benchmarks the optimized enumeration.

The paper's claim: naive costs ``imax - imin + 1`` tests per processor;
the closed forms cost work proportional to the *output*, not the range.
"""

import pytest

from repro.core.ifunc import AffineF, ConstantF, ModularF, MonotoneF
from repro.decomp import Block, BlockScatter, Scatter
from repro.sets import Work, modify_naive, optimize_access

from .conftest import print_table

N = 4096
PMAX = 8

# (row label, decomposition factory, access function, expected rule prefix)
ROWS = [
    ("c / block", lambda: Block(N, PMAX), ConstantF(137), "thm1"),
    ("c / scatter", lambda: Scatter(N, PMAX), ConstantF(137), "thm1"),
    ("c / BS(4)", lambda: BlockScatter(N, PMAX, 4), ConstantF(137), "thm1"),
    ("i+c / block", lambda: Block(N, PMAX), AffineF(1, 5), "block"),
    ("i+c / scatter", lambda: Scatter(N, PMAX), AffineF(1, 5), "thm3-cor1"),
    ("i+c / BS(4)", lambda: BlockScatter(N, PMAX, 4), AffineF(1, 5),
     "repeated-scatter"),
    ("a*i+c (pmax mod a=0) / scatter", lambda: Scatter(N, PMAX),
     AffineF(2, 3), "thm3-cor1"),
    ("a*i+c (a mod pmax=0) / scatter", lambda: Scatter(N, PMAX),
     AffineF(16, 3), "thm3-cor2"),
    ("a*i+c (general) / scatter", lambda: Scatter(N, PMAX),
     AffineF(3, 1), "thm3-linear"),
    ("a*i+c / block", lambda: Block(N, PMAX), AffineF(3, 1), "block"),
    ("a*i+c / BS(16)", lambda: BlockScatter(N, PMAX, 16), AffineF(3, 1),
     "repeated-scatter"),
    ("a*i+c / BS(512)", lambda: BlockScatter(N, PMAX, 512), AffineF(3, 1),
     "thm2-repeated-block"),
    ("monotone / block", lambda: Block(N, PMAX),
     MonotoneF(lambda i: i + i // 4, 1, "i+i div 4", derivative_max=1.25),
     "block"),
    ("monotone (df/di<pmax) / scatter", lambda: Scatter(N, PMAX),
     MonotoneF(lambda i: i + i // 4, 1, "i+i div 4", derivative_max=1.25),
     "enum-on-k"),
    ("modular / block", lambda: Block(N, PMAX),
     ModularF(AffineF(1, 100), N), "piecewise"),
    ("modular / scatter", lambda: Scatter(N, PMAX),
     ModularF(AffineF(1, 100), N), "piecewise"),
]


def _domain_for(f):
    """Largest prefix domain whose image stays in [0, N)."""
    imax = -1
    for i in range(0, 3 * N):
        v = f(i)
        if 0 <= v < N:
            imax = i
        else:
            break
    assert imax >= 0
    return 0, imax


@pytest.mark.parametrize("label,mkd,f,rule_prefix", ROWS,
                         ids=[r[0] for r in ROWS])
def test_table1_row(benchmark, label, mkd, f, rule_prefix):
    d = mkd()
    imin, imax = _domain_for(f)
    acc = optimize_access(d, f, imin, imax)
    assert acc.rule.startswith(rule_prefix), (acc.rule, rule_prefix)

    # correctness on every processor + overhead accounting
    w_opt, w_naive = Work(), Work()
    for p in range(d.pmax):
        assert acc.indices(p, w_opt) == modify_naive(d, f, imin, imax, p,
                                                     w_naive), (label, p)

    # the paper's overhead claim, quantified
    assert w_naive.tests == d.pmax * (imax - imin + 1)
    assert w_opt.overhead() < w_naive.overhead()

    print(f"\nE3-E6 Table I row [{label}]: rule={acc.rule} "
          f"range={imin}:{imax} overhead opt/naive = "
          f"{w_opt.overhead()}/{w_naive.overhead()} "
          f"(x{w_naive.overhead() / max(1, w_opt.overhead()):.0f} less)")

    def run_all_processors():
        return [acc.indices(p) for p in range(d.pmax)]

    out = benchmark(run_all_processors)
    assert sum(len(x) for x in out) == sum(
        1 for i in range(imin, imax + 1) if 0 <= f(i) < N
    )


def test_table1_summary():
    """One-screen reproduction of Table I with measured overheads."""
    rows = []
    for label, mkd, f, _prefix in ROWS:
        d = mkd()
        imin, imax = _domain_for(f)
        acc = optimize_access(d, f, imin, imax)
        w_opt, w_naive = Work(), Work()
        for p in range(d.pmax):
            acc.indices(p, w_opt)
            modify_naive(d, f, imin, imax, p, w_naive)
        factor = w_naive.overhead() / max(1, w_opt.overhead())
        rows.append([
            label, acc.rule, f"{imin}:{imax}",
            w_opt.overhead(), w_naive.overhead(), f"x{factor:,.0f}",
        ])
    print_table(
        "E3-E6 (Table I): optimizations for several decompositions",
        ["access / decomposition", "rule fired", "range",
         "opt overhead", "naive overhead", "reduction"],
        rows,
    )
    # closed forms must beat the naive scan on EVERY row
    assert all(r[3] < r[4] for r in rows)


def test_table1_summary_benchmark_hook(benchmark):
    """Keep --benchmark-only runs emitting the summary table too."""
    benchmark(lambda: None)
    test_table1_summary()
