"""E11 — §4: convergence of the gcd algorithm.

Paper claims (after Knuth): the number of Euclid steps never exceeds
``4.8 log10(N) - 0.32``; the average is ``1.9405 log10(n)``; and for the
small ``a`` occurring in real index expressions (``a <= 7``) the maximum
is 5 steps and the average ≈ 2.65 — "the algorithm is very fast and can
be used without precaution".
"""

import math

import pytest

from repro.diophantine import extended_euclid, gcd_steps, knuth_step_bound

from .conftest import print_table


class TestKnuthBounds:
    def test_worst_case_bound_over_range(self):
        rows = []
        for exp in range(2, 7):
            n = 10 ** exp
            worst = 0
            # sample a deterministic grid plus Fibonacci-adjacent pairs
            fib = [1, 1]
            while fib[-1] < n:
                fib.append(fib[-1] + fib[-2])
            pairs = [(fib[k], fib[k - 1]) for k in range(2, len(fib) - 1)]
            pairs += [(a, b) for a in range(1, 500, 7)
                      for b in range(1, 500, 11)]
            for a, b in pairs:
                if a < n and b < n:
                    worst = max(worst, gcd_steps(a, b))
            bound = knuth_step_bound(n)
            rows.append([f"10^{exp}", worst, f"{bound:.1f}"])
            assert worst <= bound + 1.0
        print_table(
            "E11 (§4): Euclid step counts vs Knuth bound 4.8 log10 N - 0.32",
            ["operand bound N", "max steps observed", "Knuth bound"],
            rows,
        )

    def test_small_a_claims(self):
        steps = [gcd_steps(a, p) for a in range(1, 8)
                 for p in range(1, 4096)]
        mx, avg = max(steps), sum(steps) / len(steps)
        print(f"\nE11 small-a: a <= 7 over pmax 1..4095: "
              f"max steps = {mx} (paper: 5), average = {avg:.2f} "
              f"(paper: ≈2.65)")
        assert mx <= 5
        assert abs(avg - 2.65) < 0.7

    def test_average_growth_is_logarithmic(self):
        import random

        rnd = random.Random(4)
        avgs = []
        for exp in (3, 5):
            n = 10 ** exp
            samples = [
                gcd_steps(rnd.randrange(1, n), rnd.randrange(1, n))
                for _ in range(2000)
            ]
            avgs.append(sum(samples) / len(samples))
        # roughly linear in log10 n with slope ~1.94 (paper's 1.9405)
        slope = (avgs[1] - avgs[0]) / 2
        assert 1.2 <= slope <= 2.6


@pytest.mark.parametrize("a", [2, 3, 5, 7])
def test_euclid_timing_small_a(benchmark, a):
    """§4: per-processor run-time gcd cost is negligible."""

    def run():
        return [extended_euclid(a, p).steps for p in range(1, 1025)]

    steps = benchmark(run)
    assert max(steps) <= 5


def test_euclid_timing_large_operands(benchmark):
    def run():
        return extended_euclid(10**12 + 39, 10**11 + 7).g

    benchmark(run)
