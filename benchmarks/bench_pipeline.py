"""Record scalar vs vectorized executor timings into BENCH_pipeline.json.

Runs the two workloads the pipeline issue names — the E13 1-D stencil
(block and scatter reads) and the E19 2-D five-point stencil on a
processor grid — through the same compiled plans under both backends,
checks the results are bit-identical, and writes per-workload wall
times, message counts, and speedups to ``BENCH_pipeline.json`` at the
repository root.

Usage::

    PYTHONPATH=src python benchmarks/bench_pipeline.py
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.codegen import compile_clause, run_distributed
from repro.codegen.nddist import (
    collect_nd,
    compile_clause_nd_dist,
    run_distributed_nd,
)
from repro.core import (
    AffineF,
    Bounds,
    Clause,
    Const,
    IdentityF,
    IndexSet,
    Ref,
    SeparableMap,
    copy_env,
)
from repro.core.expr import BinOp
from repro.decomp import Block, GridDecomposition, Scatter

try:
    from .conftest import bench_metadata
except ImportError:  # run as a script: benchmarks/ is sys.path[0]
    from conftest import bench_metadata

REPS = 5
SEED = 2026


def _best_of(fn, reps=REPS):
    best, out = float("inf"), None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _e13_workloads():
    """E13: A[i] := B[i-1] + B[i+1], n=512 on 8 nodes."""
    n, pmax = 512, 8
    cl = Clause(
        domain=IndexSet.range1d(1, n - 2),
        lhs=Ref("A", SeparableMap([AffineF(1, 0)])),
        rhs=Ref("B", SeparableMap([AffineF(1, -1)]))
        + Ref("B", SeparableMap([AffineF(1, 1)])),
    )
    rng = np.random.default_rng(SEED)
    env0 = {"A": np.zeros(n), "B": rng.random(n)}
    for label, d_b in (("e13-stencil-block/block", Block(n, pmax)),
                       ("e13-stencil-block/scatter", Scatter(n, pmax))):
        plan = compile_clause(cl, {"A": Block(n, pmax), "B": d_b})
        yield (label,
               lambda backend, plan=plan: run_distributed(
                   plan, copy_env(env0), backend=backend),
               lambda m: m.collect("A"))


def _e19_workload():
    """E19: five-point stencil, 48x48 matrix on a 4x4 processor grid."""
    n, p_side = 48, 4

    def sref(di, dj):
        fi = AffineF(1, di) if di else IdentityF()
        fj = AffineF(1, dj) if dj else IdentityF()
        return Ref("S", SeparableMap([fi, fj]))

    cl = Clause(
        IndexSet(Bounds((1, 1), (n - 2, n - 2))),
        Ref("T", SeparableMap([IdentityF(), IdentityF()])),
        BinOp("*", Const(0.25),
              BinOp("+", BinOp("+", sref(-1, 0), sref(1, 0)),
                    BinOp("+", sref(0, -1), sref(0, 1)))),
    )
    g = GridDecomposition([Block(n, p_side), Block(n, p_side)])
    plan = compile_clause_nd_dist(cl, {"T": g, "S": g})
    rng = np.random.default_rng(SEED)
    env0 = {"S": rng.random((n, n)), "T": np.zeros((n, n))}
    yield ("e19-grid-2d-tiles",
           lambda backend: run_distributed_nd(
               plan, copy_env(env0), backend=backend),
           lambda m: collect_nd(m, "T"))


def main() -> int:
    entries = []
    for label, run, collect in [*_e13_workloads(), *_e19_workload()]:
        t_s, m_s = _best_of(lambda run=run: run("scalar"))
        t_v, m_v = _best_of(lambda run=run: run("vector"))
        identical = bool(np.array_equal(collect(m_s), collect(m_v)))
        entry = {
            "workload": label,
            "scalar_ms": round(t_s * 1e3, 3),
            "vector_ms": round(t_v * 1e3, 3),
            "speedup": round(t_s / t_v, 2),
            "scalar_messages": m_s.stats.total_messages(),
            "vector_messages": m_v.stats.total_messages(),
            "elements_moved": m_s.stats.total_elements_moved(),
            "identical_results": identical,
        }
        assert identical, label
        entries.append(entry)
        print(f"{label:28s} scalar {entry['scalar_ms']:8.1f} ms  "
              f"vector {entry['vector_ms']:7.1f} ms  "
              f"{entry['speedup']:5.1f}x  msgs "
              f"{entry['scalar_messages']} -> {entry['vector_messages']}")

    out = {
        "meta": bench_metadata(),
        "benchmark": "pipeline scalar vs vectorized segment executor",
        "reps": REPS,
        "seed": SEED,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "results": entries,
    }
    path = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"
    path.write_text(json.dumps(out, indent=2) + "\n")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
