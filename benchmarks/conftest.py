"""Shared helpers for the benchmark harness.

Every ``bench_*``/``test_*`` here both *benchmarks* a code path (via
pytest-benchmark) and *prints* the paper-shaped rows it reproduces, so

    pytest benchmarks/ --benchmark-only -s

regenerates each table/figure of the paper (see EXPERIMENTS.md for the
paper-vs-measured record).
"""

from __future__ import annotations

import numpy as np
import pytest


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Render a small fixed-width table to stdout."""
    widths = [
        max(len(str(header[k])), *(len(str(r[k])) for r in rows)) if rows
        else len(str(header[k]))
        for k in range(len(header))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))


def bench_metadata() -> dict:
    """Common provenance block stamped into every ``BENCH_*.json``:
    interpreter, platform, and which execution backends were actually
    available when the numbers were taken (so a fused-fallback run is
    distinguishable from a real native/mpi run after the fact)."""
    import platform

    from repro.backends import availability_snapshot

    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "backend_availability": {
            name: dict(av)
            for name, av in availability_snapshot().items()
        },
    }


@pytest.fixture
def rng():
    return np.random.default_rng(2026)
