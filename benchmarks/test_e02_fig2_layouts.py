"""E2 — paper Fig. 2: block-scatter / block / scatter layouts.

Regenerates the exact processor-assignment rows of the figure
(15 elements, 4 processors) and benchmarks layout computation at scale.
"""

from repro.decomp import Block, BlockScatter, Scatter

from .conftest import print_table

N, PMAX = 15, 4

# the processor rows exactly as drawn in Fig. 2 (a), (b), (c)
FIG2A = [0, 0, 1, 1, 2, 2, 3, 3, 0, 0, 1, 1, 2, 2, 3]
FIG2B = [0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3]
FIG2C = [0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2]


def _all_layouts():
    return {
        "(a) block/scatter BS(2)": BlockScatter(N, PMAX, 2).layout(),
        "(b) block": Block(N, PMAX).layout(),
        "(c) scatter": Scatter(N, PMAX).layout(),
    }


def test_fig2_layouts(benchmark):
    layouts = benchmark(_all_layouts)

    rows = [["element"] + list(range(N))]
    rows += [[name] + lay for name, lay in layouts.items()]
    print_table(
        "E2 (Fig. 2): data decompositions, n=15, pmax=4",
        ["decomposition"] + [str(i) for i in range(N)],
        [[name] + lay for name, lay in layouts.items()],
    )

    assert layouts["(a) block/scatter BS(2)"] == FIG2A
    assert layouts["(b) block"] == FIG2B
    assert layouts["(c) scatter"] == FIG2C


def test_layout_scales_linearly(benchmark):
    """Layout of a large structure is O(n) — placement is closed-form."""
    d = BlockScatter(100_000, 64, 16)
    lay = benchmark(d.layout)
    assert len(lay) == 100_000
    assert max(lay) == 63
