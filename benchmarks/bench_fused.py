"""Record fused-backend results into BENCH_fused.json.

For the E13 1-D stencil (block and scatter reads) and the E19 2-D
five-point stencil, each compiled plan runs under the scalar, vector,
and fused backends.  The fused backend executes the compile-once node
kernels of the `lower-kernels` pass: precomputed flat gather/scatter
index arrays and a generated fused NumPy expression, with the interior
kernel overlapping communication — so a run stops paying the vector
backend's per-execution membership/placement re-derivation.

Asserted invariants (the issue's acceptance bar):

* all backends produce bit-identical arrays (``identical_results`` is
  true on every row);
* on the headline workloads the *median* wall-clock speedup of fused
  over vector is >= 1.5x;
* message counts and elements moved are identical between vector and
  fused (batching parity);
* a warm-cache kernel compile (kernel-cache hit inside a fresh
  pipeline run) is >= 10x faster than the cold kernel build, and a
  fully warm recompile is a plan-cache hit.

Usage::

    PYTHONPATH=src python benchmarks/bench_fused.py
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from statistics import median

import numpy as np

from repro.codegen import compile_clause, run_distributed
from repro.codegen.nddist import (
    collect_nd,
    compile_clause_nd_dist,
    run_distributed_nd,
)
from repro.core import (
    AffineF,
    Bounds,
    Clause,
    Const,
    IdentityF,
    IndexSet,
    Ref,
    SeparableMap,
    copy_env,
)
from repro.core.expr import BinOp
from repro.decomp import Block, GridDecomposition, Scatter
from repro.pipeline import clear_plan_cache
from repro.pipeline.cache import plan_cache
from repro.sets.table1 import clear_table1_cache

try:
    from .conftest import bench_metadata
except ImportError:  # run as a script: benchmarks/ is sys.path[0]
    from conftest import bench_metadata

REPS = 9
SEED = 2026
HEADLINE_MIN_SPEEDUP = 1.5
KERNEL_CACHE_MIN_SPEEDUP = 10.0


def _median_of(fn, reps=REPS):
    times, out = [], None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        times.append(time.perf_counter() - t0)
    return median(times), out


def _e13_clause(n):
    return Clause(
        domain=IndexSet.range1d(1, n - 2),
        lhs=Ref("A", SeparableMap([AffineF(1, 0)])),
        rhs=Ref("B", SeparableMap([AffineF(1, -1)]))
        + Ref("B", SeparableMap([AffineF(1, 1)])),
    )


def _e19_clause(n):
    def sref(di, dj):
        fi = AffineF(1, di) if di else IdentityF()
        fj = AffineF(1, dj) if dj else IdentityF()
        return Ref("S", SeparableMap([fi, fj]))

    return Clause(
        IndexSet(Bounds((1, 1), (n - 2, n - 2))),
        Ref("T", SeparableMap([IdentityF(), IdentityF()])),
        BinOp("*", Const(0.25),
              BinOp("+", BinOp("+", sref(-1, 0), sref(1, 0)),
                    BinOp("+", sref(0, -1), sref(0, 1)))),
    )


def _workloads():
    """Yield (label, headline, pmax, compile(), run(plan, backend),
    collect(machine))."""
    n, pmax = 512, 8
    rng = np.random.default_rng(SEED)
    env13 = {"A": np.zeros(n), "B": rng.random(n)}
    for label, headline, d_b in (
        ("e13-stencil-block/block", True, Block(n, pmax)),
        ("e13-stencil-block/scatter", True, Scatter(n, pmax)),
    ):
        decomps = {"A": Block(n, pmax), "B": d_b}
        yield (label, headline, pmax,
               lambda decomps=decomps, n=n: compile_clause(
                   _e13_clause(n), decomps),
               lambda plan, backend, env=env13: run_distributed(
                   plan, copy_env(env), backend=backend),
               lambda m: m.collect("A"))

    n2, p_side = 48, 4
    g = GridDecomposition([Block(n2, p_side), Block(n2, p_side)])
    rng = np.random.default_rng(SEED)
    env19 = {"S": rng.random((n2, n2)), "T": np.zeros((n2, n2))}
    yield ("e19-grid-2d-tiles", True, p_side * p_side,
           lambda g=g, n2=n2: compile_clause_nd_dist(
               _e19_clause(n2), {"T": g, "S": g}),
           lambda plan, backend: run_distributed_nd(
               plan, copy_env(env19), backend=backend),
           lambda m: collect_nd(m, "T"))


def _kernel_pass_ms(plan) -> float:
    rec = plan.trace.record("lower-kernels")
    return rec.wall_ms if rec else 0.0


def _compile_timing(compile_fn):
    """Cold build vs kernel-cache-hit vs plan-cache-hit compile times."""
    clear_plan_cache()
    clear_table1_cache()
    t0 = time.perf_counter()
    plan = compile_fn()
    cold = time.perf_counter() - t0
    assert not plan.trace.cache_hit
    cold_kernel_ms = _kernel_pass_ms(plan)
    assert plan.ir.kernels is not None

    # drop only the plan-cache entries: the pipeline re-runs, but
    # `lower-kernels` hits the kernel cache — isolating kernel codegen
    warm_kernel_ms = float("inf")
    for _ in range(REPS):
        plan_cache._entries.clear()
        warm_plan = compile_fn()
        warm_kernel_ms = min(warm_kernel_ms, _kernel_pass_ms(warm_plan))
    assert warm_plan.ir.kernels is plan.ir.kernels, \
        "recompile must reuse the cached kernels"

    warm = float("inf")
    for _ in range(REPS):
        t0 = time.perf_counter()
        warm_plan = compile_fn()
        warm = min(warm, time.perf_counter() - t0)
    assert warm_plan.trace.cache_hit, "recompile must hit the plan cache"
    return plan, cold, warm, cold_kernel_ms, warm_kernel_ms


def main() -> int:
    entries = []
    for label, headline, pmax, compile_fn, run, collect in _workloads():
        plan, cold_s, warm_s, k_cold_ms, k_warm_ms = _compile_timing(
            compile_fn)
        kernel_speedup = k_cold_ms / k_warm_ms if k_warm_ms else float("inf")

        t_s, m_s = _median_of(lambda run=run: run(plan, "scalar"))
        t_v, m_v = _median_of(lambda run=run: run(plan, "vector"))
        t_f, m_f = _median_of(lambda run=run: run(plan, "fused"))
        ref = collect(m_s)
        identical = bool(np.array_equal(ref, collect(m_v))
                         and np.array_equal(ref, collect(m_f)))
        assert identical, label
        assert m_f.stats.total_messages() == m_v.stats.total_messages(), label
        assert (m_f.stats.total_elements_moved()
                == m_v.stats.total_elements_moved()), label

        speedup = t_v / t_f if t_f else float("inf")
        entry = {
            "workload": label,
            "pmax": pmax,
            "headline": headline,
            "scalar_ms": round(t_s * 1e3, 3),
            "vector_ms": round(t_v * 1e3, 3),
            "fused_ms": round(t_f * 1e3, 3),
            "fused_over_vector_speedup": round(speedup, 2),
            "fused_over_scalar_speedup": round(t_s / t_f, 2),
            "messages": m_f.stats.total_messages(),
            "elements_moved": m_f.stats.total_elements_moved(),
            "identical_results": identical,
            "compile_cold_ms": round(cold_s * 1e3, 3),
            "compile_warm_ms": round(warm_s * 1e3, 3),
            "kernel_build_cold_ms": round(k_cold_ms, 3),
            "kernel_build_warm_ms": round(k_warm_ms, 3),
            "kernel_cache_speedup": round(kernel_speedup, 1),
        }
        if headline:
            assert speedup >= HEADLINE_MIN_SPEEDUP, (
                f"{label}: fused speedup {speedup:.2f} < "
                f"{HEADLINE_MIN_SPEEDUP}")
        assert kernel_speedup >= KERNEL_CACHE_MIN_SPEEDUP, (
            f"{label}: kernel-cache speedup {kernel_speedup:.1f} < "
            f"{KERNEL_CACHE_MIN_SPEEDUP}")
        entries.append(entry)
        print(f"{label:28s} scalar {entry['scalar_ms']:7.1f} ms  "
              f"vector {entry['vector_ms']:6.2f} ms  "
              f"fused {entry['fused_ms']:6.2f} ms "
              f"({entry['fused_over_vector_speedup']:4.2f}x)  "
              f"kernel build {entry['kernel_build_cold_ms']:.2f} -> "
              f"{entry['kernel_build_warm_ms']:.3f} ms "
              f"({entry['kernel_cache_speedup']:.0f}x)")

    out = {
        "meta": bench_metadata(),
        "benchmark": "fused kernel backend: compile-once node kernels "
                     "with flat ndarray memory and a kernel cache",
        "reps": REPS,
        "seed": SEED,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "headline_min_median_speedup": HEADLINE_MIN_SPEEDUP,
        "kernel_cache_min_speedup": KERNEL_CACHE_MIN_SPEEDUP,
        "results": entries,
    }
    path = Path(__file__).resolve().parent.parent / "BENCH_fused.json"
    path.write_text(json.dumps(out, indent=2) + "\n")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
