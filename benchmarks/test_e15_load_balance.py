"""E15 — load balance: the paper's "(imax - imin)/p indices are actually
processed per computing node" for an equal distribution of the workload.

Measures per-node update counts for identity, strided, and triangular
access patterns across decompositions: block balances uniform work;
scatter balances *non-uniform* (e.g. triangular) work — the classic
motivation for cyclic decompositions.
"""

import numpy as np
import pytest

from repro.codegen import compile_clause, run_shared
from repro.core import (
    AffineF,
    Clause,
    IndexSet,
    LoopIndex,
    Ref,
    SeparableMap,
    copy_env,
)
from repro.decomp import Block, BlockScatter, Scatter

from .conftest import print_table

N = 1024
PMAX = 8


def identity_clause():
    return Clause(
        domain=IndexSet.range1d(0, N - 1),
        lhs=Ref("A", SeparableMap([AffineF(1, 0)])),
        rhs=Ref("B", SeparableMap([AffineF(1, 0)])) + 1,
    )


def env0(rng):
    return {"A": np.zeros(N), "B": rng.random(N)}


def test_uniform_work_balance(rng):
    rows = []
    for mk, label in [
        (lambda: Block(N, PMAX), "block"),
        (lambda: Scatter(N, PMAX), "scatter"),
        (lambda: BlockScatter(N, PMAX, 16), "BS(16)"),
    ]:
        plan = compile_clause(identity_clause(), {"A": mk(), "B": mk()})
        m = run_shared(plan, env0(rng))
        counts = m.stats.update_counts()
        rows.append([label] + counts + [f"{m.stats.load_imbalance():.2f}"])
        # the paper's equal-distribution claim: (imax - imin)/p per node
        assert all(c == N // PMAX for c in counts), label
    print_table(
        f"E15: per-node updates, uniform clause, n={N}, pmax={PMAX}",
        ["decomposition"] + [f"p{p}" for p in range(PMAX)] + ["max/mean"],
        rows,
    )


def test_triangular_work_prefers_scatter(rng):
    """Guarded triangular workload (only i with i mod step < threshold
    shrinking over space mimics LU-style shrinking fronts): a prefix
    domain [0, n/4) makes block put ALL work on two nodes while scatter
    spreads it."""
    cl = Clause(
        domain=IndexSet.range1d(0, N // 4 - 1),
        lhs=Ref("A", SeparableMap([AffineF(1, 0)])),
        rhs=LoopIndex(0) * 2,
    )
    rows = []
    imb = {}
    for mk, label in [
        (lambda: Block(N, PMAX), "block"),
        (lambda: Scatter(N, PMAX), "scatter"),
    ]:
        plan = compile_clause(cl, {"A": mk()})
        m = run_shared(plan, env0(rng))
        counts = m.stats.update_counts()
        imb[label] = m.stats.load_imbalance()
        rows.append([label] + counts + [f"{imb[label]:.2f}"])
    print_table(
        f"E15: per-node updates, prefix domain 0:{N // 4 - 1} (shrinking "
        f"front), n={N}, pmax={PMAX}",
        ["decomposition"] + [f"p{p}" for p in range(PMAX)] + ["max/mean"],
        rows,
    )
    # block concentrates the prefix on the first nodes; scatter balances
    assert imb["block"] >= PMAX / 2 - 0.01
    assert abs(imb["scatter"] - 1.0) < 0.01


@pytest.mark.parametrize("label,mk", [
    ("block", lambda: Block(N, PMAX)),
    ("scatter", lambda: Scatter(N, PMAX)),
])
def test_balance_run_timing(benchmark, label, mk, rng):
    plan = compile_clause(identity_clause(), {"A": mk(), "B": mk()})
    env = env0(rng)

    def run():
        return run_shared(plan, copy_env(env))

    m = benchmark(run)
    assert m.stats.total_updates() == N
