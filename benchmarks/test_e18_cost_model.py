"""E18 (extension) — modeled performance: speedup curves and the
decomposition crossover under machine cost models.

The paper argues functionally; this extension closes the loop to the
plots 1991 readers expected: modeled speedup vs processor count for the
generated programs, and where block vs scatter crosses over as the
machine's latency/bandwidth ratio changes.
"""

import numpy as np
import pytest

from repro.codegen import compile_clause, run_distributed
from repro.core import (
    AffineF,
    Clause,
    IndexSet,
    Ref,
    SeparableMap,
    copy_env,
)
from repro.decomp import Block, Scatter
from repro.machine import ETHERNET_CLUSTER, HYPERCUBE, SHARED_BUS

from .conftest import print_table

N = 2048


def stencil(n=N):
    return Clause(
        IndexSet.range1d(1, n - 2),
        Ref("A", SeparableMap([AffineF(1, 0)])),
        Ref("B", SeparableMap([AffineF(1, -1)]))
        + Ref("B", SeparableMap([AffineF(1, 1)])),
    )


def run_stencil(mk_dec, pmax, rng):
    env = {"A": np.zeros(N), "B": rng.random(N)}
    plan = compile_clause(stencil(), {"A": mk_dec(N, pmax),
                                      "B": mk_dec(N, pmax)})
    return run_distributed(plan, copy_env(env))


def test_speedup_curve(rng):
    rows = []
    prev = 0.0
    for pmax in (1, 2, 4, 8, 16, 32):
        m = run_stencil(lambda n, p: Block(n, p), pmax, rng)
        s = HYPERCUBE.speedup(m.stats)
        rows.append([pmax, f"{HYPERCUBE.makespan(m.stats):.0f}",
                     f"{s:.2f}"])
        if pmax <= 8:
            assert s > prev * 1.2 or pmax == 1  # healthy scaling region
        prev = s
    print_table(
        f"E18: modeled speedup, block stencil, n={N}, hypercube model",
        ["pmax", "makespan", "speedup"],
        rows,
    )
    # diminishing returns must appear: efficiency at 32 < efficiency at 4
    eff = {int(r[0]): float(r[2]) / int(r[0]) for r in rows}
    assert eff[32] < eff[4]


def test_decomposition_crossover_by_machine(rng):
    rows = []
    pmax = 8
    m_block = run_stencil(lambda n, p: Block(n, p), pmax, rng)
    m_scatter = run_stencil(lambda n, p: Scatter(n, p), pmax, rng)
    for model in (SHARED_BUS, HYPERCUBE, ETHERNET_CLUSTER):
        tb = model.makespan(m_block.stats)
        ts = model.makespan(m_scatter.stats)
        rows.append([model.name, f"{tb:.0f}", f"{ts:.0f}",
                     "block" if tb < ts else "scatter",
                     f"{ts / tb:.1f}x"])
    print_table(
        f"E18: block vs scatter stencil by machine model, n={N}, pmax={pmax}",
        ["machine model", "block time", "scatter time", "winner",
         "scatter penalty"],
        rows,
    )
    # messages cost nothing on the shared bus: the two decompositions tie
    # on compute; on message machines block wins and the penalty grows
    # with latency
    penalties = [float(r[4][:-1]) for r in rows]
    assert penalties[0] <= penalties[1] <= penalties[2]
    assert rows[1][3] == "block"
    assert rows[2][3] == "block"


@pytest.mark.parametrize("pmax", [4, 16])
def test_speedup_model_timing(benchmark, pmax, rng):
    def run():
        m = run_stencil(lambda n, p: Block(n, p), pmax, rng)
        return HYPERCUBE.speedup(m.stats)

    s = benchmark(run)
    assert s > 1.0
