"""E8 — §3.2 closing observation: enumerate-on-k advantage.

For scatter decompositions with monotone non-linear ``f``, enumerating
the data values ``v = p + k.pmax`` (sampling rate ``pmax``) instead of
the indices ``i`` (sampling rate ``df/di``) wins by a factor of
``pmax/(df/di)`` when ``df/di < pmax``.  The paper quotes
``f(i) = i + (i div 4)`` and ``f(i) = i²`` as examples — both are used
here.
"""

import pytest

from repro.core.ifunc import MonotoneF
from repro.decomp import Scatter
from repro.sets import Work, modify_naive
from repro.sets.enumerators import enum_scatter_on_k

from .conftest import print_table

N = 20_000
IMAX = 12_000

F_SLOW = MonotoneF(lambda i: i + i // 4, 1, "i + (i div 4)",
                   derivative_max=1.25)


def test_predicted_improvement_factor():
    rows = []
    for pmax in (4, 8, 16, 32, 64):
        d = Scatter(N, pmax)
        w_k, w_i = Work(), Work()
        for p in range(pmax):
            got = enum_scatter_on_k(d, F_SLOW, 0, IMAX, p, w_k).indices()
            want = modify_naive(d, F_SLOW, 0, IMAX, p, w_i)
            assert got == want
        predicted = pmax / 1.25
        measured = w_i.iterations / max(1, w_k.iterations)
        rows.append([pmax, w_i.iterations, w_k.iterations,
                     f"{predicted:.1f}", f"{measured:.1f}"])
        # within 2x of the paper's pmax/(df/di) prediction
        assert predicted / 2 <= measured <= predicted * 2
    print_table(
        "E8 (§3.2): enumerate-on-k, f(i) = i + (i div 4), df/di = 1.25",
        ["pmax", "enum-on-i iters", "enum-on-k iters",
         "predicted factor", "measured factor"],
        rows,
    )


def test_quadratic_is_eventually_not_advantageous():
    """For f(i) = i² the derivative grows past pmax: enumerating on k
    samples (pmax apart in data space) visits far more candidates than
    there are solutions — the paper's condition df/di < pmax is the right
    guard."""
    f2 = MonotoneF(lambda i: i * i, 1, "i^2")
    pmax = 8
    d = Scatter(N, pmax)
    imax = int(N ** 0.5) - 1
    w_k = Work()
    for p in range(pmax):
        assert enum_scatter_on_k(d, f2, 0, imax, p, w_k).indices() == \
            modify_naive(d, f2, 0, imax, p)
    # candidates visited ≈ f(imax)/pmax >> number of indices
    assert w_k.iterations > (imax + 1)


@pytest.mark.parametrize("pmax", [8, 64])
def test_enum_on_k_timing(benchmark, pmax):
    d = Scatter(N, pmax)

    def run():
        return sum(
            enum_scatter_on_k(d, F_SLOW, 0, IMAX, p, Work()).count()
            for p in range(pmax)
        )

    total = benchmark(run)
    assert total == IMAX + 1


@pytest.mark.parametrize("pmax", [8, 64])
def test_naive_timing_baseline(benchmark, pmax):
    d = Scatter(N, pmax)

    def run():
        return sum(
            len(modify_naive(d, F_SLOW, 0, IMAX, p)) for p in range(pmax)
        )

    total = benchmark(run)
    assert total == IMAX + 1
