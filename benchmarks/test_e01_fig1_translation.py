"""E1 — paper Fig. 1: imperative program -> V-cal expression.

Reproduces the figure's translation and benchmarks the front-end
(parse + classify + translate) throughput.
"""

from repro.core import Ordering
from repro.frontend import translate_source

FIG1_SOURCE = """
for i := k + 1 to n do
    if A[i] > 0 then
        A[i] := B[2 * i + 1];
    fi;
od;
"""

PARAMS = {"k": 2, "n": 9}


def test_fig1_translation(benchmark):
    prog = benchmark(translate_source, FIG1_SOURCE, PARAMS)
    (cl,) = prog.clauses

    print("\n=== E1 (Fig. 1): program -> V-cal ===")
    print("source:")
    for line in FIG1_SOURCE.strip().splitlines():
        print("   ", line)
    print("V-cal:")
    print("   ", repr(cl))

    # the paper's correspondence, structurally
    assert cl.domain.bounds.scalar() == (PARAMS["k"] + 1, PARAMS["n"])
    assert cl.guard is not None                  # [i]A > 0 predicate
    assert cl.lhs.name == "A"
    assert cl.lhs.scalar_func()(7) == 7          # [i](A)
    (read,) = list(cl.rhs.refs())
    assert read.name == "B"
    assert read.scalar_func()(7) == 15           # [f(i)](B), f = 2i+1
    # Fig.1's loop carries no 'par' annotation -> sequential • by default,
    # and the guard makes the independence explicit when annotated.
    assert cl.ordering is Ordering.SEQ
