"""Record whole-program time-loop results into BENCH_program.json.

The E13 1-D stencil and the E19 2-D five-point stencil run as
1000-step time loops (``repeat`` + buffer ``swap``) through the program
layer, on the in-process fused backend and the multi-process runtime.
The pipelined path compiles the step ONCE: fused/mp kernels stay hot,
the mp worker pool keeps one shared-memory session across all steps,
and buffers swap by name.  The baseline is what a per-clause compiler
forces: recompile and re-dispatch the step every iteration (cleared
caches, one mp session per step).

Asserted invariants (the issue's acceptance bar):

* every backend's final state is bit-identical on every row
  (``identical_results`` true);
* both time loops are actually pipelined (``pipelined`` true);
* on the headline 1000-step E19 loop, the warm-pool mp program run
  sustains >= 5x the steps/sec of the per-step recompile baseline;
* after ``shutdown_runtime()`` no ``/dev/shm`` segment leaks.

``--smoke`` runs tiny sizes and few steps, checks bit-identity and
pipelining only, and writes no JSON (the CI program job uses it).

Usage::

    PYTHONPATH=src python benchmarks/bench_program.py [--smoke]
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path
from statistics import median

import numpy as np

from repro.core import (
    AffineF,
    Bounds,
    Clause,
    Const,
    IdentityF,
    IndexSet,
    Ref,
    SeparableMap,
    copy_env,
)
from repro.core.clause import Program
from repro.core.expr import BinOp
from repro.decomp import Block, GridDecomposition
from repro.pipeline import clear_plan_cache, compile_program, run_program
from repro.runtime import shutdown_runtime

try:
    from .conftest import bench_metadata
except ImportError:  # run as a script: benchmarks/ is sys.path[0]
    from conftest import bench_metadata

REPS = 3
SEED = 2026
PROCS = 4
HEADLINE = "e19-grid-2d"
HEADLINE_MIN_SPEEDUP = 5.0


def _median_of(fn, reps=REPS):
    times, out = [], None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        times.append(time.perf_counter() - t0)
    return median(times), out


def _e13_clause(n):
    return Clause(
        domain=IndexSet.range1d(1, n - 2),
        lhs=Ref("A", SeparableMap([AffineF(1, 0)])),
        rhs=Ref("B", SeparableMap([AffineF(1, -1)]))
        + Ref("B", SeparableMap([AffineF(1, 1)])),
        name="e13",
    )


def _e19_clause(n):
    def sref(di, dj):
        fi = AffineF(1, di) if di else IdentityF()
        fj = AffineF(1, dj) if dj else IdentityF()
        return Ref("S", SeparableMap([fi, fj]))

    return Clause(
        IndexSet(Bounds((1, 1), (n - 2, n - 2))),
        Ref("T", SeparableMap([IdentityF(), IdentityF()])),
        BinOp("*", Const(0.25),
              BinOp("+", BinOp("+", sref(-1, 0), sref(1, 0)),
                    BinOp("+", sref(0, -1), sref(0, 1)))),
        name="e19",
    )


def _grid(n, p):
    side = {2: (2, 1), 4: (2, 2), 8: (4, 2)}[p]
    return GridDecomposition([Block(n, side[0]), Block(n, side[1])])


def _workloads(smoke):
    """Yield (label, program, decomps, swap, env, result_names)."""
    steps = 10 if smoke else 1000

    n = 1 << 10 if smoke else 1 << 14
    rng = np.random.default_rng(SEED)
    env13 = {"A": np.zeros(n), "B": rng.random(n)}
    yield ("e13-stencil-1d", steps,
           Program([_e13_clause(n)]),
           {"A": Block(n, PROCS), "B": Block(n, PROCS)},
           (("A", "B"),), env13)

    n2 = 24 if smoke else 96
    rng = np.random.default_rng(SEED)
    env19 = {"S": rng.random((n2, n2)), "T": np.zeros((n2, n2))}
    g = _grid(n2, PROCS)
    yield ("e19-grid-2d", steps,
           Program([_e19_clause(n2)]),
           {"T": g, "S": g},
           (("S", "T"),), env19)


def _run_baseline(program, decomps, swap, env, steps):
    """The per-step recompile baseline: every iteration pays a fresh
    ``compile_program`` (cleared caches) and a fresh mp dispatch (one
    shared-memory session per step) — the cost a per-clause compiler
    cannot avoid.  Swaps happen in the parent, by env-entry exchange."""
    machine = None
    for _ in range(steps):
        clear_plan_cache()
        pir = compile_program(program, decomps)
        machine, _ = run_program(pir, env, backend="mp",
                                 processes=PROCS, machine=machine)
        genv = machine.env
        for a, b in swap:
            genv[a], genv[b] = genv[b], genv[a]
    return machine.env


def _leak_check():
    if not os.path.isdir("/dev/shm"):
        return []
    return [f for f in os.listdir("/dev/shm") if f.startswith("repro-mp-")]


def main(argv=None) -> int:
    smoke = "--smoke" in (argv if argv is not None else sys.argv[1:])
    clear_plan_cache()
    rows = []
    failures = []
    for label, steps, program, decomps, swap, env in _workloads(smoke):
        names = sorted(env)
        pir = compile_program(program, decomps, repeat=steps, swap=swap)
        if not pir.pipelined:
            failures.append(f"{label}: not pipelined "
                            f"({pir.pipeline_reason})")
            continue

        t_fused, m_fused = _median_of(
            lambda env=env: run_program(pir, copy_env(env),
                                        backend="fused")[0])
        ref = {n: m_fused.env[n] for n in names}

        # cold: first mp run pays the pool spawn + program install
        shutdown_runtime()
        t0 = time.perf_counter()
        m_cold, _ = run_program(pir, copy_env(env), backend="mp",
                                processes=PROCS)
        t_cold = time.perf_counter() - t0

        t_warm, m_warm = _median_of(
            lambda env=env: run_program(pir, copy_env(env), backend="mp",
                                        processes=PROCS)[0])

        # per-step recompile baseline (one measured pass: it is slow)
        t0 = time.perf_counter()
        base_env = _run_baseline(program, decomps, swap, copy_env(env),
                                 steps)
        t_base = time.perf_counter() - t0
        # keep later rows honest: the baseline clears the caches
        pir = compile_program(program, decomps, repeat=steps, swap=swap)

        identical = all(
            np.array_equal(ref[n], m_cold.env[n])
            and np.array_equal(ref[n], m_warm.env[n])
            and np.array_equal(ref[n], base_env[n])
            for n in names)

        sps_warm = steps / t_warm if t_warm else float("inf")
        sps_base = steps / t_base if t_base else float("inf")
        speedup = sps_warm / sps_base if sps_base else float("inf")
        row = {
            "workload": label,
            "processes": PROCS,
            "steps": steps,
            "pipelined": pir.pipelined,
            "fused_s": round(t_fused, 6),
            "mp_cold_s": round(t_cold, 6),
            "mp_warm_s": round(t_warm, 6),
            "baseline_recompile_s": round(t_base, 6),
            "steps_per_sec_mp_warm": round(sps_warm, 2),
            "steps_per_sec_baseline": round(sps_base, 2),
            "speedup_vs_recompile": round(speedup, 3),
            "identical_results": identical,
        }
        rows.append(row)
        print(f"{label:16s} steps={steps}  "
              f"fused {t_fused:7.3f} s   mp warm {t_warm:7.3f} s "
              f"(cold {t_cold:7.3f} s)   baseline {t_base:7.3f} s   "
              f"{sps_warm:8.1f} vs {sps_base:7.1f} steps/s "
              f"({speedup:5.2f}x)  identical={identical}")
        if not identical:
            failures.append(f"{label}: results differ across paths")
        if (not smoke and label == HEADLINE
                and speedup < HEADLINE_MIN_SPEEDUP):
            failures.append(
                f"headline {label}: {speedup:.2f}x steps/sec over the "
                f"per-step recompile baseline < {HEADLINE_MIN_SPEEDUP}x")

    shutdown_runtime()
    leaked = _leak_check()
    if leaked:
        failures.append(f"/dev/shm leaks after shutdown: {leaked}")

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1

    if smoke:
        print("smoke OK (no JSON written)")
        return 0

    out = {
        "meta": bench_metadata(),
        "bench": "program",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "reps": REPS,
        "headline_min_speedup": HEADLINE_MIN_SPEEDUP,
        "rows": rows,
    }
    path = Path(__file__).resolve().parent.parent / "BENCH_program.json"
    path.write_text(json.dumps(out, indent=2) + "\n")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
