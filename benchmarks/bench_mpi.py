"""Record MPI-backend results into BENCH_mpi.json.

For the E13 1-D stencil and the E19 2-D five-point stencil at rank
counts P in {2, 4, 8} on one host, each compiled plan runs end to end
under the in-process fused backend and under ``backend="mpi"`` — the
SPMD runner with private rank memories, nonblocking point-to-point halo
messages, and the overlap schedule (post Irecvs / Isends, compute the
interior while transfers are in flight, drain, boundary).  A third
workload drives the acceptance pipeline: the 1000-step pipelined
Jacobi time loop (``U := (V[i-1]+V[i+1])/2`` with a U/V buffer swap,
ONE world across all steps, end-of-step barriers only), reported as
steps/second.

Transport: with mpi4py + mpiexec installed the rows launch real MPI
worlds; otherwise the benchmark pins ``REPRO_MPI_STUB=1`` and the same
rank code runs on the threaded stub transport — the ``mode`` field on
every row and the metadata block record which one actually ran.

Asserted invariants (the issue's acceptance bar):

* mpi results are bit-identical to fused on **every** row
  (``identical_results`` true), including all 1000 steps of the
  pipelined loop;
* message/element counters match fused count for count on the clause
  workloads.

The communication coefficients cited in the output come from
``repro calibrate`` (the measured machine description — loaded from
``$REPRO_MACHINE_FILE`` when set, else measured inline), not from the
hardcoded ``alpha=50.0`` cost-model preset.

``--smoke`` runs tiny sizes at P=4 only, checks bit-identity, and
writes no JSON (the CI mpi job uses it).

Usage::

    PYTHONPATH=src python benchmarks/bench_mpi.py [--smoke]
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from statistics import median

import numpy as np

from repro.codegen import compile_clause, run_distributed
from repro.codegen.nddist import (
    collect_nd,
    compile_clause_nd_dist,
    run_distributed_nd,
)
from repro.core import (
    AffineF,
    Bounds,
    Clause,
    Const,
    IdentityF,
    IndexSet,
    Ref,
    SeparableMap,
    copy_env,
)
from repro.core.clause import Program
from repro.core.expr import BinOp
from repro.decomp import Block, GridDecomposition
from repro.machine.calibrate import calibrate, load_machine
from repro.mpi import mpi_support, reset_mpi_support
from repro.pipeline import clear_plan_cache, compile_program, run_program

try:
    from .conftest import bench_metadata
except ImportError:  # run as a script: benchmarks/ is sys.path[0]
    from conftest import bench_metadata

REPS = 5
SEED = 2026
PROCS = (2, 4, 8)
LOOP_STEPS = 1000


def _median_of(fn, reps=REPS):
    times, out = [], None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        times.append(time.perf_counter() - t0)
    return median(times), out


def _e13_clause(n):
    return Clause(
        domain=IndexSet.range1d(1, n - 2),
        lhs=Ref("A", SeparableMap([AffineF(1, 0)])),
        rhs=Ref("B", SeparableMap([AffineF(1, -1)]))
        + Ref("B", SeparableMap([AffineF(1, 1)])),
    )


def _e19_clause(n):
    def sref(di, dj):
        fi = AffineF(1, di) if di else IdentityF()
        fj = AffineF(1, dj) if dj else IdentityF()
        return Ref("S", SeparableMap([fi, fj]))

    return Clause(
        IndexSet(Bounds((1, 1), (n - 2, n - 2))),
        Ref("T", SeparableMap([IdentityF(), IdentityF()])),
        BinOp("*", Const(0.25),
              BinOp("+", BinOp("+", sref(-1, 0), sref(1, 0)),
                    BinOp("+", sref(0, -1), sref(0, 1)))),
    )


def _grid(n, p):
    side = {2: (2, 1), 4: (2, 2), 8: (4, 2)}[p]
    return GridDecomposition([Block(n, side[0]), Block(n, side[1])])


def _counters(machine):
    s = machine.stats
    return (s.total_messages(), s.total_elements_moved())


def _workloads(smoke, procs):
    """Yield (label, p, compile(), run(plan, backend), collect(m))."""
    n = 1 << 12 if smoke else 1 << 16
    rng = np.random.default_rng(SEED)
    env13 = {"A": np.zeros(n), "B": rng.random(n)}
    for p in procs:
        decomps = {"A": Block(n, p), "B": Block(n, p)}
        yield ("e13-stencil-1d", p,
               lambda decomps=decomps, n=n: compile_clause(
                   _e13_clause(n), decomps),
               lambda plan, backend, env=env13, p=p: run_distributed(
                   plan, copy_env(env), backend=backend, processes=p),
               lambda m: m.collect("A"))

    n2 = 48 if smoke else 256
    rng = np.random.default_rng(SEED)
    env19 = {"S": rng.random((n2, n2)), "T": np.zeros((n2, n2))}
    for p in procs:
        g = _grid(n2, p)
        yield ("e19-grid-2d", p,
               lambda g=g, n2=n2: compile_clause_nd_dist(
                   _e19_clause(n2), {"T": g, "S": g}),
               lambda plan, backend, env=env19, p=p: run_distributed_nd(
                   plan, copy_env(env), backend=backend, processes=p),
               lambda m: collect_nd(m, "T"))


def _pipelined_loop(smoke, p, steps):
    """The 1000-step Jacobi time loop: ONE world, rank-local buffer
    swaps, end-of-step barriers only."""
    n = 1 << 10 if smoke else 1 << 14
    cl = Clause(
        IndexSet(Bounds((1,), (n - 2,))),
        Ref("U", SeparableMap([IdentityF()])),
        (Ref("V", SeparableMap([AffineF(1, -1)]))
         + Ref("V", SeparableMap([AffineF(1, 1)]))) * 0.5,
    )
    decomps = {"U": Block(n, p), "V": Block(n, p)}
    pir = compile_program(Program([cl]), decomps, repeat=steps,
                          swap=[("U", "V")])
    assert pir.pipelined, pir.pipeline_reason
    rng = np.random.default_rng(SEED)
    env = {"U": np.zeros(n), "V": rng.random(n)}

    def run(backend):
        m, _barriers = run_program(pir, copy_env(env), backend=backend,
                                   processes=p)
        return m

    return run


def main(argv=None) -> int:
    smoke = "--smoke" in (argv if argv is not None else sys.argv[1:])
    procs = (4,) if smoke else PROCS
    loop_steps = 20 if smoke else LOOP_STEPS
    reps = 2 if smoke else REPS

    # pin the stub transport when no real MPI stack is installed, so
    # the rows measure the actual rank code rather than the fallback
    forced_stub = False
    if mpi_support().mode == "none":
        os.environ["REPRO_MPI_STUB"] = "1"
        reset_mpi_support()
        forced_stub = True
    mode = mpi_support().mode
    if mode == "none":
        print("FAIL: MPI backend unavailable even in stub mode "
              f"({mpi_support().reason})")
        return 1
    print(f"mpi transport: {mode}"
          + (" (no mpi4py/mpiexec on this host; stub pinned)"
             if forced_stub else ""))

    # measured communication coefficients (never the alpha=50.0 preset)
    machine_desc = load_machine()
    machine_source = "env:REPRO_MACHINE_FILE"
    if machine_desc is None:
        machine_desc = calibrate(reps=10 if smoke else 50)
        machine_source = "calibrated inline"
    print(f"machine ({machine_source}): {machine_desc.describe()}")

    clear_plan_cache()
    rows = []
    failures = []
    try:
        for label, p, compile_fn, run_fn, collect_fn in \
                _workloads(smoke, procs):
            plan = compile_fn()
            t_fused, m_fused = _median_of(
                lambda run_fn=run_fn: run_fn(plan, "fused"), reps)
            ref = collect_fn(m_fused)
            t_mpi, m_mpi = _median_of(
                lambda run_fn=run_fn: run_fn(plan, "mpi"), reps)
            if not getattr(m_mpi, "is_mpi", False):
                failures.append(f"{label} P={p}: mpi run fell back "
                                "to fused")
                continue
            identical = bool(np.array_equal(ref, collect_fn(m_mpi)))
            parity = _counters(m_fused) == _counters(m_mpi)
            speedup = t_fused / t_mpi if t_mpi else float("inf")
            row = {
                "workload": label,
                "processes": p,
                "mode": m_mpi.mode,
                "fused_s": round(t_fused, 6),
                "mpi_s": round(t_mpi, 6),
                "speedup_mpi_over_fused": round(speedup, 3),
                "identical_results": identical,
                "counter_parity": parity,
            }
            rows.append(row)
            print(f"{label:16s} P={p}  fused {t_fused*1e3:9.2f} ms   "
                  f"mpi[{m_mpi.mode}] {t_mpi*1e3:9.2f} ms  "
                  f"speedup {speedup:5.2f}x  identical={identical} "
                  f"parity={parity}")
            if not identical:
                failures.append(f"{label} P={p}: results differ "
                                "from fused")
            if not parity:
                failures.append(f"{label} P={p}: message counters "
                                "differ from fused")

        # the pipelined time loop, steps/second
        for p in procs:
            run = _pipelined_loop(smoke, p, loop_steps)
            t_fused, m_fused = _median_of(lambda: run("fused"),
                                          max(1, reps - 2))
            t_mpi, m_mpi = _median_of(lambda: run("mpi"),
                                      max(1, reps - 2))
            identical = all(
                np.array_equal(m_fused.env[name], m_mpi.env[name])
                for name in ("U", "V"))
            row = {
                "workload": f"pipelined-loop-{loop_steps}",
                "processes": p,
                "mode": mode,
                "fused_s": round(t_fused, 6),
                "mpi_s": round(t_mpi, 6),
                "fused_steps_per_s": round(loop_steps / t_fused, 2),
                "mpi_steps_per_s": round(loop_steps / t_mpi, 2),
                "identical_results": identical,
            }
            rows.append(row)
            print(f"pipelined loop   P={p}  {loop_steps} steps  "
                  f"fused {loop_steps / t_fused:9.1f} steps/s   "
                  f"mpi[{mode}] {loop_steps / t_mpi:9.1f} steps/s  "
                  f"identical={identical}")
            if not identical:
                failures.append(
                    f"pipelined loop P={p}: results differ from fused")
    finally:
        if forced_stub:
            os.environ.pop("REPRO_MPI_STUB", None)
            reset_mpi_support()

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1

    if smoke:
        print("smoke OK (no JSON written)")
        return 0

    out = {
        "bench": "mpi",
        "meta": bench_metadata(),
        "transport_mode": mode,
        "stub_pinned": forced_stub,
        "reps": REPS,
        "loop_steps": LOOP_STEPS,
        "machine": {
            "source": machine_source,
            **machine_desc.as_dict(),
        },
        "rows": rows,
    }
    path = Path(__file__).resolve().parent.parent / "BENCH_mpi.json"
    path.write_text(json.dumps(out, indent=2) + "\n")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
