"""E7 — §3.2.i: Repeated Block vs Repeated Scatter crossover.

The paper rewrites the BS(b) enumeration into the *Repeated Scatter* form
and states it is more favourable than *Repeated Block* under
``b <= f(imax)/(2.pmax)``.  This bench sweeps the block size ``b`` and
measures the remaining run-time overhead of both forms (Work counters and
wall-clock), reporting where the crossover actually falls.
"""

import pytest

from repro.core.ifunc import AffineF
from repro.decomp import BlockScatter
from repro.sets import Work, modify_naive
from repro.sets.enumerators import enum_repeated_block, enum_repeated_scatter

from .conftest import print_table

N = 8192
PMAX = 8
F = AffineF(3, 1)  # non-unit stride: both forms do real work
IMIN, IMAX = 0, (N - 2) // 3

B_SWEEP = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512]


def _overhead(enum_fn, b):
    d = BlockScatter(N, PMAX, b)
    w = Work()
    for p in range(PMAX):
        enum_fn(d, F, IMIN, IMAX, p, w)
    return w.overhead()


def test_both_forms_agree_everywhere():
    for b in B_SWEEP:
        d = BlockScatter(N, PMAX, b)
        for p in range(PMAX):
            rb = enum_repeated_block(d, F, IMIN, IMAX, p, Work()).indices()
            rs = enum_repeated_scatter(d, F, IMIN, IMAX, p, Work()).indices()
            assert rb == rs == modify_naive(d, F, IMIN, IMAX, p), (b, p)


def test_crossover_sweep():
    paper_threshold = F(IMAX) // (2 * PMAX)
    rows = []
    crossover_b = None
    for b in B_SWEEP:
        rb = _overhead(enum_repeated_block, b)
        rs = _overhead(enum_repeated_scatter, b)
        winner = "RS" if rs < rb else "RB"
        if winner == "RB" and crossover_b is None and b > 1:
            crossover_b = b
        rows.append([b, rb, rs, winner,
                     "<= thr" if b <= paper_threshold else "> thr"])
    print_table(
        f"E7 (§3.2.i): RB vs RS overhead sweep, f=3i+1, n={N}, pmax={PMAX}; "
        f"paper threshold b <= f(imax)/(2.pmax) = {paper_threshold}",
        ["b", "RB overhead", "RS overhead", "winner", "paper side"],
        rows,
    )
    # Shape: RS wins at small b, RB wins at large b.
    assert rows[0][3] == "RS", "repeated scatter must win at b=1"
    assert rows[-1][3] == "RB", "repeated block must win at the largest b"
    # the measured crossover lies at or below the paper's threshold
    assert crossover_b is not None and crossover_b <= max(paper_threshold, 1)


@pytest.mark.parametrize("b", [1, 16, 512])
@pytest.mark.parametrize("form", ["RB", "RS"])
def test_form_timing(benchmark, form, b):
    d = BlockScatter(N, PMAX, b)
    fn = enum_repeated_block if form == "RB" else enum_repeated_scatter

    def run():
        return [fn(d, F, IMIN, IMAX, p, Work()).count() for p in range(PMAX)]

    counts = benchmark(run)
    assert sum(counts) == IMAX - IMIN + 1
