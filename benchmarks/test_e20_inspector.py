"""E20 (extension) — inspector/executor for indirect accesses.

§3 concedes that run-time-dependent access functions defeat compile-time
reduction; the Kali-style inspector/executor (Koelbel & Mehrotra, cited
by the paper) is the era's answer.  This bench measures:

* executor vs general-template communication (coalesced pair messages
  vs per-element envelopes) for a random gather ``A[i] := B[T[i]]``,
* inspector amortization: schedule construction cost is paid once and
  reused across time steps.
"""

import numpy as np
import pytest

from repro.codegen import compile_clause, run_distributed
from repro.codegen.inspector import (
    build_schedule,
    compile_indirect,
    run_executor,
)
from repro.core import (
    AffineF,
    Clause,
    IndexSet,
    Ref,
    SeparableMap,
    copy_env,
    evaluate_clause,
)
from repro.core.ifunc import IndirectF
from repro.decomp import Block, Scatter
from repro.machine import DistributedMachine

from .conftest import print_table

N, PMAX = 1024, 8


def clause_for(table):
    return Clause(
        IndexSet.range1d(0, N - 1),
        Ref("A", SeparableMap([AffineF(1, 0)])),
        Ref("B", SeparableMap([IndirectF(table)])) * 2 + 1,
    )


def fresh_machine(env0, dA, dB):
    m = DistributedMachine(PMAX)
    m.place("A", env0["A"], dA)
    m.place("B", env0["B"], dB)
    return m


def test_message_comparison(rng):
    table = rng.integers(0, N, N)
    cl = clause_for(table)
    env0 = {"A": np.zeros(N), "B": rng.random(N)}
    ref = evaluate_clause(cl, copy_env(env0))["A"]
    dA, dB = Block(N, PMAX), Block(N, PMAX)

    plan_g = compile_clause(cl, {"A": dA, "B": dB})
    m_g = run_distributed(plan_g, copy_env(env0))
    assert np.allclose(m_g.collect("A"), ref)

    plan_x = compile_indirect(cl, {"A": dA, "B": dB})
    sched = build_schedule(plan_x)
    m_x = fresh_machine(copy_env(env0), dA, dB)
    run_executor(sched, m_x)
    assert np.allclose(m_x.collect("A"), ref)

    rows = [
        ["general §2.10 template", m_g.stats.total_messages(),
         m_g.stats.total_elements_moved(), m_g.stats.total_tests()],
        ["inspector/executor", m_x.stats.total_messages(),
         m_x.stats.total_elements_moved(), 0],
    ]
    print_table(
        f"E20: random gather A[i] := B[T[i]], n={N}, pmax={PMAX}",
        ["variant", "messages", "elements", "run-time tests"],
        rows,
    )
    # coalescing: at most pmax(pmax-1) envelopes vs ~n(1-1/p) per-element
    assert m_x.stats.total_messages() <= PMAX * (PMAX - 1)
    assert m_g.stats.total_messages() > m_x.stats.total_messages() * 5
    # identical payload volume
    assert m_x.stats.total_elements_moved() == \
        m_g.stats.total_elements_moved()


def test_amortization_over_time_steps(rng):
    table = rng.integers(0, N, N)
    cl = clause_for(table)
    dA, dB = Block(N, PMAX), Scatter(N, PMAX)
    plan = compile_indirect(cl, {"A": dA, "B": dB})
    sched = build_schedule(plan)
    for step in range(5):
        env = {"A": np.zeros(N), "B": rng.random(N)}
        ref = evaluate_clause(cl, copy_env(env))["A"]
        m = fresh_machine(copy_env(env), dA, dB)
        run_executor(sched, m)
        assert np.allclose(m.collect("A"), ref), step
    print(f"\nE20: one inspection served 5 executor steps "
          f"({sched.total_elements()} elements/step in "
          f"{sched.message_count()} messages)")


def test_inspector_timing(benchmark, rng):
    table = rng.integers(0, N, N)
    plan = compile_indirect(clause_for(table),
                            {"A": Block(N, PMAX), "B": Scatter(N, PMAX)})
    sched = benchmark(build_schedule, plan)
    assert sched.message_count() > 0


@pytest.mark.parametrize("variant", ["executor", "general"])
def test_apply_timing(benchmark, variant, rng):
    table = rng.integers(0, N, N)
    cl = clause_for(table)
    env0 = {"A": np.zeros(N), "B": rng.random(N)}
    dA, dB = Block(N, PMAX), Scatter(N, PMAX)
    if variant == "executor":
        plan = compile_indirect(cl, {"A": dA, "B": dB})
        sched = build_schedule(plan)

        def run():
            m = fresh_machine(copy_env(env0), dA, dB)
            run_executor(sched, m)
            return m
    else:
        plan = compile_clause(cl, {"A": dA, "B": dB})

        def run():
            return run_distributed(plan, copy_env(env0))

    m = benchmark(run)
    assert m.stats.total_updates() == N
