"""E19 (extension) — 2-D decompositions: the surface-to-volume effect.

The d-dimensional lifting of the paper's framework lets the same 5-point
stencil run under 1-D (row-block) and 2-D (grid) decompositions of the
matrix.  Communication is proportional to the partition *surface*:
strips pay ``2 m`` per node, square tiles pay ``4 m/√P`` — the reason
every later HPF/Chapel-era code distributes both axes.
"""

import numpy as np
import pytest

from repro.codegen.nddist import (
    collect_nd,
    compile_clause_nd_dist,
    run_distributed_nd,
)
from repro.core import (
    AffineF,
    Bounds,
    Clause,
    Const,
    IdentityF,
    IndexSet,
    Ref,
    SeparableMap,
    copy_env,
    evaluate_clause,
)
from repro.core.expr import BinOp
from repro.decomp import Block, Collapsed, GridDecomposition

from .conftest import print_table

N = 48  # N x N matrix, 16 processors
P_SIDE = 4
PMAX = P_SIDE * P_SIDE


def five_point():
    def sref(di, dj):
        fi = AffineF(1, di) if di else IdentityF()
        fj = AffineF(1, dj) if dj else IdentityF()
        return Ref("S", SeparableMap([fi, fj]))

    rhs = BinOp("+", BinOp("+", sref(-1, 0), sref(1, 0)),
                BinOp("+", sref(0, -1), sref(0, 1)))
    return Clause(
        IndexSet(Bounds((1, 1), (N - 2, N - 2))),
        Ref("T", SeparableMap([IdentityF(), IdentityF()])),
        BinOp("*", Const(0.25), rhs),
    )


def rows_dec():
    return GridDecomposition([Block(N, PMAX), Collapsed(N)])


def tiles_dec():
    return GridDecomposition([Block(N, P_SIDE), Block(N, P_SIDE)])


def env2d(rng):
    return {"S": rng.random((N, N)), "T": np.zeros((N, N))}


def test_surface_to_volume(rng):
    cl = five_point()
    env0 = env2d(rng)
    ref = evaluate_clause(cl, copy_env(env0))["T"]

    rows = []
    results = {}
    for label, mk in (("1-D row strips", rows_dec),
                      ("2-D square tiles", tiles_dec)):
        g = mk()
        plan = compile_clause_nd_dist(cl, {"T": g, "S": g})
        m = run_distributed_nd(plan, copy_env(env0))
        assert np.allclose(collect_nd(m, "T"), ref), label
        results[label] = m
        per_node = m.stats.total_elements_moved() / PMAX
        rows.append([label, m.stats.total_messages(),
                     m.stats.total_elements_moved(), f"{per_node:.0f}"])
    print_table(
        f"E19: 5-point stencil, {N}x{N} on {PMAX} nodes — 1-D vs 2-D "
        f"decomposition",
        ["decomposition", "messages", "elements moved", "per node"],
        rows,
    )
    # square tiles must communicate strictly less than strips once
    # P_SIDE > 2 (surface 4N/√P < 2N)
    strips = results["1-D row strips"].stats.total_elements_moved()
    tiles = results["2-D square tiles"].stats.total_elements_moved()
    assert tiles < strips
    # strips: interior nodes exchange 2 full rows of N-2 interior points
    assert strips == 2 * (PMAX - 1) * (N - 2)


def test_load_balance_identical(rng):
    cl = five_point()
    for mk in (rows_dec, tiles_dec):
        g = mk()
        plan = compile_clause_nd_dist(cl, {"T": g, "S": g})
        m = run_distributed_nd(plan, env2d(rng))
        counts = m.stats.update_counts()
        # interior updates only; boundary-owning nodes do slightly less
        assert sum(counts) == (N - 2) * (N - 2)


@pytest.mark.parametrize("label,mk", [("rows", rows_dec),
                                      ("tiles", tiles_dec)])
def test_2d_stencil_timing(benchmark, label, mk, rng):
    cl = five_point()
    env0 = env2d(rng)
    g = mk()
    plan = compile_clause_nd_dist(cl, {"T": g, "S": g})

    def run():
        return run_distributed_nd(plan, copy_env(env0))

    m = benchmark(run)
    assert m.stats.total_updates() == (N - 2) * (N - 2)
