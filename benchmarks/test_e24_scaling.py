"""E24 (extension) — strong and weak scaling of the generated programs.

The two scaling disciplines every systems evaluation reports, on the
block stencil with the hypercube cost model:

* **strong scaling** — fixed n, growing p: speedup rises, efficiency
  falls as the constant per-node communication stops amortizing;
* **weak scaling** — fixed n/p, growing p: per-node work constant, so
  modeled time should stay near-flat (boundary exchange is O(1) per
  node under block decomposition).
"""

import numpy as np
import pytest

from repro.codegen import compile_clause, run_distributed
from repro.core import (
    AffineF,
    Clause,
    IndexSet,
    Ref,
    SeparableMap,
    copy_env,
)
from repro.decomp import Block
from repro.machine import HYPERCUBE

from .conftest import print_table


def stencil(n):
    return Clause(
        IndexSet.range1d(1, n - 2),
        Ref("A", SeparableMap([AffineF(1, 0)])),
        Ref("B", SeparableMap([AffineF(1, -1)]))
        + Ref("B", SeparableMap([AffineF(1, 1)])),
    )


def run_stencil(n, pmax, rng):
    env = {"A": np.zeros(n), "B": rng.random(n)}
    plan = compile_clause(stencil(n), {"A": Block(n, pmax),
                                       "B": Block(n, pmax)})
    return run_distributed(plan, copy_env(env))


def test_strong_scaling(rng):
    n = 4096
    rows = []
    speedups = {}
    for pmax in (1, 2, 4, 8, 16, 32):
        m = run_stencil(n, pmax, rng)
        s = HYPERCUBE.speedup(m.stats)
        speedups[pmax] = s
        rows.append([pmax, f"{HYPERCUBE.makespan(m.stats):.0f}",
                     f"{s:.2f}", f"{s / pmax:.2f}"])
    print_table(
        f"E24 strong scaling: block stencil, n={n}, hypercube model",
        ["pmax", "makespan", "speedup", "efficiency"],
        rows,
    )
    assert speedups[8] > speedups[2] > 0
    # efficiency monotonically decays
    effs = [speedups[p] / p for p in (2, 8, 32)]
    assert effs[0] > effs[1] > effs[2]


def test_weak_scaling(rng):
    per_node = 512
    rows = []
    times = {}
    # start at 4 nodes: below that, nodes have fewer than two neighbours
    # and per-node communication is not yet constant
    for pmax in (4, 8, 16, 32):
        n = per_node * pmax
        m = run_stencil(n, pmax, rng)
        t = HYPERCUBE.makespan(m.stats)
        times[pmax] = t
        rows.append([pmax, n, f"{t:.0f}",
                     m.stats.total_messages()])
    print_table(
        f"E24 weak scaling: block stencil, {per_node} elements/node",
        ["pmax", "n", "makespan", "messages"],
        rows,
    )
    # near-flat: worst/best modeled time within 10%
    ts = list(times.values())
    assert max(ts) / min(ts) < 1.10


@pytest.mark.parametrize("pmax", [4, 16])
def test_scaling_run_timing(benchmark, pmax, rng):
    m = benchmark(run_stencil, 2048, pmax, rng)
    assert m.stats.total_updates() == 2046
