"""E25 (extension) — the vectorized segment executor vs scalar templates.

The pipeline's closed-form Enumerations (Table I) describe each node's
iteration set as a handful of strides, so the per-element interpreter
loop can be replaced by NumPy strided operations wholesale: membership
becomes ``np.arange`` over segments, placement an integer ufunc, and the
communication phase one batched message per (read, destination).  Same
messages' *content*, far fewer Python-level steps — the acceptance bar
is a ≥3x wall-clock win on the E19 five-point stencil with bit-identical
results.
"""

import time

import numpy as np
import pytest

from repro.codegen.nddist import (
    collect_nd,
    compile_clause_nd_dist,
    run_distributed_nd,
)
from repro.core import (
    AffineF,
    Bounds,
    Clause,
    Const,
    IdentityF,
    IndexSet,
    Ref,
    SeparableMap,
    copy_env,
    evaluate_clause,
)
from repro.core.expr import BinOp
from repro.decomp import Block, GridDecomposition

from .conftest import print_table
from .test_e19_grid_2d import N, PMAX, env2d, five_point, tiles_dec


def _best_of(fn, reps=3):
    best, out = float("inf"), None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def test_vector_beats_scalar_3x_on_e19_stencil(rng):
    cl = five_point()
    env0 = env2d(rng)
    g = tiles_dec()
    plan = compile_clause_nd_dist(cl, {"T": g, "S": g})
    ref = evaluate_clause(cl, copy_env(env0))["T"]

    t_s, m_s = _best_of(lambda: run_distributed_nd(plan, copy_env(env0)))
    t_v, m_v = _best_of(
        lambda: run_distributed_nd(plan, copy_env(env0), backend="vector")
    )

    out_s, out_v = collect_nd(m_s, "T"), collect_nd(m_v, "T")
    assert np.allclose(out_s, ref)
    assert np.array_equal(out_s, out_v)  # bit-identical, not just close
    # batching: one message per (read, neighbour) instead of per element
    assert m_v.stats.total_messages() < m_s.stats.total_messages()
    assert (m_v.stats.total_elements_moved()
            == m_s.stats.total_elements_moved())

    speedup = t_s / t_v
    print_table(
        f"E25: 5-point stencil {N}x{N} on {PMAX} tiles — scalar template "
        f"vs vectorized segment executor",
        ["backend", "best of 3 (ms)", "messages", "elements moved"],
        [
            ["scalar", f"{t_s * 1e3:.1f}", m_s.stats.total_messages(),
             m_s.stats.total_elements_moved()],
            ["vector", f"{t_v * 1e3:.1f}", m_v.stats.total_messages(),
             m_v.stats.total_elements_moved()],
            ["speedup", f"{speedup:.1f}x", "", ""],
        ],
    )
    assert speedup >= 3.0


@pytest.mark.parametrize("backend", ["scalar", "vector"])
def test_stencil_backend_timing(benchmark, backend, rng):
    cl = five_point()
    env0 = env2d(rng)
    g = tiles_dec()
    plan = compile_clause_nd_dist(cl, {"T": g, "S": g})

    def run():
        return run_distributed_nd(plan, copy_env(env0), backend=backend)

    m = benchmark(run)
    assert m.stats.total_updates() == (N - 2) * (N - 2)
