"""Record overlap-backend results into BENCH_overlap.json.

Extends the BENCH_pipeline.json schema with the overlapped executor:
for the E13 1-D stencil (block and scatter reads) and the E19 2-D
five-point stencil, each compiled plan runs under the scalar, vector,
and overlap backends.  Wall-clock columns keep their meaning; the new
columns are the *modeled* makespans under a non-zero latency model
(``LatencyModel(alpha=100, beta=0.1, t_element=1)``) — the quantity the
overlap backend exists to shrink — plus the per-workload
interior/boundary split from the `split-interior` pass trace, and
cold-vs-warm compile times through the plan cache.

Asserted invariants (the issue's acceptance bar):

* all three backends produce bit-identical arrays;
* on the headline workloads (E13 block/block, E19) the modeled
  makespan speedup of overlap over vector is >= 1.5x at P >= 8
  (E13 block/scatter is reported informationally: its interior is
  empty, so overlap == vector by construction);
* a structurally identical recompile is a plan-cache hit and >= 10x
  faster than the cold compile.

Usage::

    PYTHONPATH=src python benchmarks/bench_overlap.py
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.codegen import compile_clause, run_distributed
from repro.codegen.nddist import (
    collect_nd,
    compile_clause_nd_dist,
    run_distributed_nd,
)
from repro.core import (
    AffineF,
    Bounds,
    Clause,
    Const,
    IdentityF,
    IndexSet,
    Ref,
    SeparableMap,
    copy_env,
)
from repro.core.expr import BinOp
from repro.decomp import Block, GridDecomposition, Scatter
from repro.machine import LatencyModel
from repro.pipeline import clear_plan_cache
from repro.sets.table1 import clear_table1_cache

try:
    from .conftest import bench_metadata
except ImportError:  # run as a script: benchmarks/ is sys.path[0]
    from conftest import bench_metadata

REPS = 5
SEED = 2026
MODEL = LatencyModel(alpha=100.0, beta=0.1, t_element=1.0)
#: workloads whose modeled speedup must clear the bar (P >= 8 and a
#: non-empty interior); block/scatter has no interior and is informational
HEADLINE_MIN_SPEEDUP = 1.5
CACHE_MIN_SPEEDUP = 10.0


def _best_of(fn, reps=REPS):
    best, out = float("inf"), None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _e13_clause(n):
    return Clause(
        domain=IndexSet.range1d(1, n - 2),
        lhs=Ref("A", SeparableMap([AffineF(1, 0)])),
        rhs=Ref("B", SeparableMap([AffineF(1, -1)]))
        + Ref("B", SeparableMap([AffineF(1, 1)])),
    )


def _e19_clause(n):
    def sref(di, dj):
        fi = AffineF(1, di) if di else IdentityF()
        fj = AffineF(1, dj) if dj else IdentityF()
        return Ref("S", SeparableMap([fi, fj]))

    return Clause(
        IndexSet(Bounds((1, 1), (n - 2, n - 2))),
        Ref("T", SeparableMap([IdentityF(), IdentityF()])),
        BinOp("*", Const(0.25),
              BinOp("+", BinOp("+", sref(-1, 0), sref(1, 0)),
                    BinOp("+", sref(0, -1), sref(0, 1)))),
    )


def _workloads():
    """Yield (label, headline, pmax, compile(), run(plan, backend, model),
    collect(machine))."""
    n, pmax = 512, 8
    rng = np.random.default_rng(SEED)
    env13 = {"A": np.zeros(n), "B": rng.random(n)}
    for label, headline, d_b in (
        ("e13-stencil-block/block", True, Block(n, pmax)),
        ("e13-stencil-block/scatter", False, Scatter(n, pmax)),
    ):
        decomps = {"A": Block(n, pmax), "B": d_b}
        yield (label, headline, pmax,
               lambda decomps=decomps, n=n: compile_clause(
                   _e13_clause(n), decomps),
               lambda plan, backend, model=None, env=env13: run_distributed(
                   plan, copy_env(env), backend=backend, model=model),
               lambda m: m.collect("A"))

    n2, p_side = 48, 4
    g = GridDecomposition([Block(n2, p_side), Block(n2, p_side)])
    rng = np.random.default_rng(SEED)
    env19 = {"S": rng.random((n2, n2)), "T": np.zeros((n2, n2))}
    yield ("e19-grid-2d-tiles", True, p_side * p_side,
           lambda g=g, n2=n2: compile_clause_nd_dist(
               _e19_clause(n2), {"T": g, "S": g}),
           lambda plan, backend, model=None: run_distributed_nd(
               plan, copy_env(env19), backend=backend, model=model),
           lambda m: collect_nd(m, "T"))


def _compile_timing(compile_fn):
    """Cold vs warm (plan-cache hit) compile times for one workload."""
    clear_plan_cache()
    clear_table1_cache()
    t0 = time.perf_counter()
    plan = compile_fn()
    cold = time.perf_counter() - t0
    assert not plan.trace.cache_hit
    warm = float("inf")
    for _ in range(REPS):
        t0 = time.perf_counter()
        warm_plan = compile_fn()
        warm = min(warm, time.perf_counter() - t0)
    assert warm_plan.trace.cache_hit, "recompile must hit the plan cache"
    return plan, cold, warm, warm_plan.trace.cache_hit


def main() -> int:
    entries = []
    for label, headline, pmax, compile_fn, run, collect in _workloads():
        plan, cold_s, warm_s, warm_hit = _compile_timing(compile_fn)

        # wall-clock per backend (no model: pure executor cost)
        t_s, m_s = _best_of(lambda run=run: run(plan, "scalar"))
        t_v, m_v = _best_of(lambda run=run: run(plan, "vector"))
        t_o, m_o = _best_of(lambda run=run: run(plan, "overlap"))
        ref = collect(m_s)
        identical = bool(np.array_equal(ref, collect(m_v))
                         and np.array_equal(ref, collect(m_o)))
        assert identical, label

        # modeled makespans: what overlap actually optimizes
        mv = run(plan, "vector", model=MODEL)
        mo = run(plan, "overlap", model=MODEL)
        assert np.array_equal(collect(mv), collect(mo)), label
        span_v = mv.stats.makespan()
        span_o = mo.stats.makespan()
        modeled = span_v / span_o if span_o else 1.0

        split = plan.ir.interior_split
        m_tot, i_tot, b_tot = split.totals() if split else (0, 0, 0)
        rec = plan.trace.record("split-interior")

        entry = {
            "workload": label,
            "pmax": pmax,
            "headline": headline,
            "scalar_ms": round(t_s * 1e3, 3),
            "vector_ms": round(t_v * 1e3, 3),
            "overlap_ms": round(t_o * 1e3, 3),
            "speedup": round(t_s / t_v, 2),
            "scalar_messages": m_s.stats.total_messages(),
            "vector_messages": m_v.stats.total_messages(),
            "overlap_messages": m_o.stats.total_messages(),
            "elements_moved": m_s.stats.total_elements_moved(),
            "identical_results": identical,
            "latency_model": {"alpha": MODEL.alpha, "beta": MODEL.beta,
                              "t_element": MODEL.t_element},
            "vector_makespan": round(span_v, 1),
            "overlap_makespan": round(span_o, 1),
            "modeled_speedup": round(modeled, 2),
            "interior_split": {
                "modify": m_tot, "interior": i_tot, "boundary": b_tot,
                "pass_notes": list(rec.notes) if rec else [],
            },
            "compile_cold_ms": round(cold_s * 1e3, 3),
            "compile_warm_ms": round(warm_s * 1e3, 3),
            "compile_speedup": round(cold_s / warm_s, 1),
            "warm_is_cache_hit": warm_hit,
        }
        if headline:
            assert modeled >= HEADLINE_MIN_SPEEDUP, (
                f"{label}: modeled speedup {modeled:.2f} < "
                f"{HEADLINE_MIN_SPEEDUP}")
        assert cold_s / warm_s >= CACHE_MIN_SPEEDUP, (
            f"{label}: plan-cache speedup {cold_s / warm_s:.1f} < "
            f"{CACHE_MIN_SPEEDUP}")
        entries.append(entry)
        print(f"{label:28s} scalar {entry['scalar_ms']:7.1f} ms  "
              f"vector {entry['vector_ms']:6.1f} ms  "
              f"overlap {entry['overlap_ms']:6.1f} ms  "
              f"makespan {entry['vector_makespan']:7.1f} -> "
              f"{entry['overlap_makespan']:7.1f} "
              f"({entry['modeled_speedup']:4.2f}x)  "
              f"interior {i_tot}/{m_tot}  "
              f"compile {entry['compile_cold_ms']:.2f} -> "
              f"{entry['compile_warm_ms']:.3f} ms "
              f"({entry['compile_speedup']:.0f}x)")

    out = {
        "meta": bench_metadata(),
        "benchmark": "overlapped communication: interior/boundary overlap "
                     "+ plan cache",
        "reps": REPS,
        "seed": SEED,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "headline_min_modeled_speedup": HEADLINE_MIN_SPEEDUP,
        "plan_cache_min_speedup": CACHE_MIN_SPEEDUP,
        "results": entries,
    }
    path = Path(__file__).resolve().parent.parent / "BENCH_overlap.json"
    path.write_text(json.dumps(out, indent=2) + "\n")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
