"""E23 (extension) — generated reductions: tree vs linear combine.

Global reductions complete the SPMD story: local folds over the Table I
iteration partition, then a combine whose *shape* matters — the linear
gather's critical path is p−1 message hops, the binary tree's is
⌈log₂ p⌉.  Both are measured on paced traces; message counts tie (p−1
either way), the schedule depth does not.
"""

import math

import numpy as np
import pytest

from repro.codegen.reduction import compile_reduce, run_reduce
from repro.core import AffineF, IndexSet, Ref, SeparableMap
from repro.decomp import Block
from repro.machine import DistributedMachine

from .conftest import print_table

N = 256


def plan_for(pmax, n=N):
    return compile_reduce(
        "+", IndexSet.range1d(0, n - 1),
        Ref("B", SeparableMap([AffineF(1, 0)])),
        {"B": Block(n, pmax)}, Block(n, pmax),
    )


def test_combine_depth_table(rng):
    env = {"B": rng.random(N)}
    rows = []
    for pmax in (4, 8, 16, 32):
        depths = {}
        msgs = {}
        for combine in ("linear", "tree"):
            plan = plan_for(pmax)
            trace = []
            m, got = run_reduce(plan, env, combine=combine, trace=trace,
                                paced=True)
            assert np.isclose(got, env["B"].sum())
            depths[combine] = max(ev.round for ev in trace)
            msgs[combine] = m.stats.total_messages()
        rows.append([
            pmax, msgs["linear"], msgs["tree"],
            depths["linear"], depths["tree"],
            f"log2={math.ceil(math.log2(pmax))}",
        ])
        assert msgs["linear"] == msgs["tree"] == pmax - 1
        assert depths["tree"] < depths["linear"]
    print_table(
        f"E23: sum reduction over n={N}, paced traces",
        ["pmax", "linear msgs", "tree msgs", "linear makespan",
         "tree makespan", "tree bound"],
        rows,
    )


def test_reduction_correct_under_misalignment(rng):
    pmax = 8
    env = {"B": rng.random(N)}
    from repro.decomp import Scatter

    plan = compile_reduce(
        "+", IndexSet.range1d(0, N - 1),
        Ref("B", SeparableMap([AffineF(1, 0)])),
        {"B": Scatter(N, pmax)}, Block(N, pmax),
    )
    m, got = run_reduce(plan, env)
    assert np.isclose(got, env["B"].sum())
    print(f"\nE23 misaligned reduction: {m.stats.total_messages()} operand "
          f"messages + combine, result OK")


@pytest.mark.parametrize("combine", ["linear", "tree"])
@pytest.mark.parametrize("pmax", [8, 32])
def test_reduction_timing(benchmark, combine, pmax, rng):
    env = {"B": rng.random(N)}
    plan = plan_for(pmax)

    def run():
        return run_reduce(plan, env, combine=combine)

    _m, got = benchmark(run)
    assert np.isclose(got, env["B"].sum())
