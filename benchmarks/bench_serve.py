"""Record ``repro serve`` results into BENCH_serve.json.

A daemon is started on a Unix socket and hammered by pools of client
threads (one connection each — exactly how real clients multiplex the
protocol).  For each concurrency in {8, 64, 256} the benchmark measures
a *cold* burst (caches dropped via the ``clear`` op, every request
racing to compile the same multi-clause program with verification) and
a *warm* burst (same requests against fully warm structural caches),
recording req/s and p50/p99 latency.  A final ablation repeats the
64-way cold burst against a ``--no-single-flight`` daemon.

Asserted invariants (the issue's acceptance bar):

* at concurrency 64, warm p50 compile latency is >= 10x better than
  cold p50 — the warm caches, not the socket, dominate;
* a cold 64-way identical burst executes the compile pipeline exactly
  once (``compiles_executed == 1``: single-flight), while the ablation
  daemon executes it many times;
* a served seeded ``run`` returns arrays bit-identical to an
  in-process fused execution.

``--smoke`` runs concurrency 4 only, checks the invariants that do not
need scale (single-flight exactly-once, bit-identity), and writes no
JSON (CI uses it).

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py [--smoke]
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from statistics import median, quantiles

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.serve import ServeClient, connect  # noqa: E402

try:
    from .conftest import bench_metadata
except ImportError:  # run as a script: benchmarks/ is sys.path[0]
    from conftest import bench_metadata

MIN_WARM_SPEEDUP = 10.0
HEADLINE_CONCURRENCY = 64

#: six chained clauses + program-level verification: expensive enough
#: cold (~100 ms of pipeline + verifier work) that the warm
#: structural-cache hit is the entire story
PROGRAM = """
for i := 1 to n - 2 par do
    B[i] := A[i - 1] + 2 * A[i] + A[i + 1];
od;
for i := 1 to n - 2 par do
    C[i] := B[i - 1] + B[i + 1];
od;
for i := 0 to n - 1 par do
    D[i] := C[i] * C[i] + B[i];
od;
for i := 1 to n - 2 par do
    E[i] := D[i - 1] + D[i + 1] + C[i];
od;
for i := 1 to n - 2 par do
    F[i] := E[i - 1] + 2 * E[i] + E[i + 1];
od;
for i := 0 to n - 1 par do
    G[i] := F[i] + E[i] * D[i];
od;
"""
N = 2048
PMAX = 8
ARRAYS = [f"{x}=block:{N}" for x in "ABCDEFG"]
PARAMS = {"n": N}

RUN_PROG = ("for i := 1 to 22 par do\n"
            "    A[i] := 2 * (B[i - 1] + B[i + 1]);\n"
            "od;\n")
RUN_ARRAYS = ["A=block:24", "B=block:24"]


def compile_request():
    return {"program": PROGRAM, "arrays": list(ARRAYS),
            "params": dict(PARAMS), "pmax": PMAX, "verify": True}


def start_daemon(sock, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(Path(__file__).resolve().parent.parent / "src"),
         env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--unix", sock, *extra],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    line = proc.stdout.readline()
    if "listening on" not in line:
        raise RuntimeError(f"daemon failed to start: {line!r} "
                           f"{proc.stderr.read()}")
    return proc


def stop_daemon(proc, sock):
    try:
        with ServeClient(sock) as c:
            c.call("shutdown")
    except Exception:
        pass
    try:
        proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(timeout=10)
    proc.stdout.close()
    proc.stderr.close()


def burst(sock, concurrency, timeout=300.0):
    """Fire one identical compile from *concurrency* threads at once;
    return (per-request latencies in seconds, wall-clock seconds)."""
    barrier = threading.Barrier(concurrency)
    latencies = [None] * concurrency
    failures = []
    lock = threading.Lock()

    def worker(slot):
        try:
            # retrying connect: hundreds of simultaneous connects can
            # transiently overflow the accept queue (EAGAIN)
            with connect(sock, retries=100, delay=0.02,
                         timeout=timeout) as c:
                barrier.wait()
                t0 = time.perf_counter()
                c.call("compile", **compile_request())
                dt = time.perf_counter() - t0
            latencies[slot] = dt
        except Exception as e:  # noqa: BLE001 — surfaced below
            with lock:
                failures.append(e)
            try:
                barrier.abort()
            except Exception:
                pass

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(concurrency)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
    wall = time.perf_counter() - t0
    if failures:
        raise RuntimeError(f"{len(failures)} request(s) failed: "
                           f"{failures[0]}")
    return [lt for lt in latencies if lt is not None], wall


def percentile(samples, q):
    if len(samples) == 1:
        return samples[0]
    cuts = quantiles(samples, n=100, method="inclusive")
    return cuts[max(0, min(98, int(q) - 1))]


def row_from(phase, concurrency, latencies, wall, stats_before,
             stats_after):
    return {
        "phase": phase,
        "concurrency": concurrency,
        "requests": len(latencies),
        "wall_s": round(wall, 4),
        "req_per_s": round(len(latencies) / wall, 1),
        "p50_ms": round(median(latencies) * 1e3, 3),
        "p99_ms": round(percentile(latencies, 99) * 1e3, 3),
        "max_ms": round(max(latencies) * 1e3, 3),
        "compiles_executed": (stats_after["compiles_executed"]
                              - stats_before["compiles_executed"]),
        "coalesced": (stats_after["singleflight"]["coalesced"]
                      - stats_before["singleflight"]["coalesced"]),
    }


def server_stats(sock):
    with ServeClient(sock) as c:
        return c.call("stats")["server"]


def measure_pair(sock, concurrency):
    """One cold burst (after ``clear``) and one warm burst."""
    with ServeClient(sock) as c:
        c.call("clear")
    before = server_stats(sock)
    lat_cold, wall_cold = burst(sock, concurrency)
    mid = server_stats(sock)
    lat_warm, wall_warm = burst(sock, concurrency)
    after = server_stats(sock)
    return (row_from("cold", concurrency, lat_cold, wall_cold, before, mid),
            row_from("warm", concurrency, lat_warm, wall_warm, mid, after))


def check_bit_identity(sock):
    """A served seeded run must match in-process fused exactly."""
    from repro.cli import parse_decomposition
    from repro.codegen import compile_clause, run_distributed
    from repro.frontend import translate_source

    with ServeClient(sock) as c:
        served = c.call("run", program=RUN_PROG, arrays=RUN_ARRAYS,
                        seed=11, backend="fused")
    assert served["match_reference"] is True
    decomps = dict(parse_decomposition(a, 4) for a in RUN_ARRAYS)
    rng = np.random.default_rng(11)
    env = {name: rng.random(dec.n) for name, dec in decomps.items()}
    clause = list(translate_source(RUN_PROG, {}))[0]
    plan = compile_clause(clause, decomps)
    expected = run_distributed(plan, env, backend="fused").collect("A")
    assert served["arrays"]["A"] == expected.tolist(), \
        "served arrays diverge from in-process fused execution"
    return True


def main(argv=None):
    smoke = "--smoke" in (argv or sys.argv[1:])
    concurrencies = [4] if smoke else [8, 64, 256]
    headline_c = 4 if smoke else HEADLINE_CONCURRENCY
    tmp = tempfile.mkdtemp(prefix="repro-bench-serve-")
    sock = os.path.join(tmp, "bench.sock")
    rows = []

    proc = start_daemon(sock)
    try:
        connect(sock).close()
        for c in concurrencies:
            cold, warm = measure_pair(sock, c)
            rows.append(cold)
            rows.append(warm)
            print(f"  c={c:<4} cold p50={cold['p50_ms']:>9.2f} ms "
                  f"p99={cold['p99_ms']:>9.2f} ms "
                  f"({cold['req_per_s']} req/s, "
                  f"{cold['compiles_executed']} compile(s))")
            print(f"  c={c:<4} warm p50={warm['p50_ms']:>9.2f} ms "
                  f"p99={warm['p99_ms']:>9.2f} ms "
                  f"({warm['req_per_s']} req/s)")
        bit_identical = check_bit_identity(sock)
    finally:
        stop_daemon(proc, sock)

    # ablation: the same cold burst without service-level single-flight
    sock2 = os.path.join(tmp, "bench-nosf.sock")
    proc2 = start_daemon(sock2, "--no-single-flight")
    try:
        connect(sock2).close()
        ablation_cold, _ = measure_pair(sock2, headline_c)
    finally:
        stop_daemon(proc2, sock2)
    print(f"  ablation (no single-flight) c={headline_c} "
          f"cold p50={ablation_cold['p50_ms']:.2f} ms, "
          f"{ablation_cold['compiles_executed']} compiles")

    cold64 = next(r for r in rows
                  if r["phase"] == "cold" and
                  r["concurrency"] == headline_c)
    warm64 = next(r for r in rows
                  if r["phase"] == "warm" and
                  r["concurrency"] == headline_c)
    speedup = cold64["p50_ms"] / max(warm64["p50_ms"], 1e-9)

    assert cold64["compiles_executed"] == 1, (
        f"single-flight must collapse a cold identical burst onto ONE "
        f"pipeline execution, saw {cold64['compiles_executed']}")
    assert cold64["coalesced"] == headline_c - 1, (
        f"expected {headline_c - 1} coalesced waiters, "
        f"saw {cold64['coalesced']}")
    assert ablation_cold["compiles_executed"] > 1, (
        "the --no-single-flight ablation should execute the service "
        "compile once per request")
    if not smoke:
        assert speedup >= MIN_WARM_SPEEDUP, (
            f"warm p50 must beat cold p50 by >= {MIN_WARM_SPEEDUP}x at "
            f"concurrency {headline_c}; measured {speedup:.1f}x")

    print(f"  headline: warm p50 {warm64['p50_ms']:.2f} ms vs cold "
          f"{cold64['p50_ms']:.2f} ms at c={headline_c} "
          f"-> {speedup:.1f}x (gate {MIN_WARM_SPEEDUP}x)")
    print(f"  bit-identity vs in-process fused: {bit_identical}")

    if smoke:
        print("smoke OK (no JSON written)")
        return 0

    out = {
        "meta": bench_metadata(),
        "bench": "serve",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "numpy": np.__version__,
        "program_clauses": 6,
        "program_n": N,
        "verify": True,
        "concurrencies": concurrencies,
        "headline_concurrency": headline_c,
        "min_warm_speedup": MIN_WARM_SPEEDUP,
        "warm_over_cold_p50": round(speedup, 1),
        "bit_identical_run": bit_identical,
        "single_flight": {
            "cold_compiles_executed": cold64["compiles_executed"],
            "cold_coalesced": cold64["coalesced"],
            "ablation_no_single_flight": ablation_cold,
        },
        "rows": rows,
    }
    path = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
    path.write_text(json.dumps(out, indent=2) + "\n")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
