"""E10 — §3 intro: run-time overhead of the elementary programs.

The paper's motivating numbers: computing ``Modify_p``/``Reside_p`` at
run time costs ``imax - imin + 1`` iterations *with tests* per processor,
while for an equal workload distribution only ``(imax - imin)/p`` indices
are actually processed per node.  This bench reproduces those counts on
full generated SPMD programs (naive vs optimized, shared and distributed)
and benchmarks the end-to-end runs.
"""

import numpy as np
import pytest

from repro.baselines import run_distributed_naive, run_shared_naive
from repro.codegen import compile_clause, run_distributed, run_shared
from repro.core import (
    AffineF,
    Clause,
    IndexSet,
    Ref,
    SeparableMap,
    copy_env,
    evaluate_clause,
)
from repro.decomp import Block, Scatter

from .conftest import print_table

N = 2048
PMAX = 8


def mk_plan():
    cl = Clause(
        domain=IndexSet.range1d(0, N - 1),
        lhs=Ref("A", SeparableMap([AffineF(1, 0)])),
        rhs=Ref("B", SeparableMap([AffineF(1, 0)])) * 2 + 1,
    )
    return cl, compile_clause(cl, {"A": Block(N, PMAX), "B": Scatter(N, PMAX)})


def mk_env(seed=1):
    rng = np.random.default_rng(seed)
    return {"A": rng.random(N), "B": rng.random(N)}


def test_overhead_counts_match_paper_claims():
    cl, plan = mk_plan()
    env = mk_env()
    ref = evaluate_clause(cl, copy_env(env))["A"]

    m_naive = run_shared_naive(plan, copy_env(env))
    m_opt = run_shared(plan, copy_env(env))
    assert np.allclose(m_naive.env["A"], ref)
    assert np.allclose(m_opt.env["A"], ref)

    rows = []
    for name, m in (("naive", m_naive), ("optimized", m_opt)):
        rows.append([
            name,
            m.stats.total_tests(),
            m.stats.total("iterations"),
            m.stats.total_updates(),
        ])
    print_table(
        f"E10 (§3 intro): shared-memory SPMD, n={N}, pmax={PMAX}",
        ["variant", "membership tests", "iterations", "useful updates"],
        rows,
    )

    # paper: naive does (imax-imin+1) tests per node
    assert m_naive.stats.total_tests() == PMAX * N
    # paper: only (imax-imin)/p useful iterations per node
    assert m_naive.stats.total_updates() == N
    assert all(c == N // PMAX for c in m_naive.stats.update_counts())
    # optimization eliminates the tests entirely
    assert m_opt.stats.total_tests() == 0
    assert m_opt.stats.total("iterations") == N


def test_distributed_overhead_counts():
    cl, plan = mk_plan()
    env = mk_env()
    ref = evaluate_clause(cl, copy_env(env))["A"]

    m_naive = run_distributed_naive(plan, copy_env(env))
    m_opt = run_distributed(plan, copy_env(env))
    assert np.allclose(m_naive.collect("A"), ref)
    assert np.allclose(m_opt.collect("A"), ref)

    # identical communication, wildly different overhead
    assert m_naive.stats.total_messages() == m_opt.stats.total_messages()
    assert m_opt.stats.total_tests() == 0
    # naive: full scan for the write sweep AND per-read membership tests
    assert m_naive.stats.total_tests() >= 2 * PMAX * N

    print(f"\nE10 distributed: messages={m_opt.stats.total_messages()}, "
          f"naive tests={m_naive.stats.total_tests()}, optimized tests=0")


@pytest.mark.parametrize("variant", ["naive", "optimized"])
def test_shared_run_timing(benchmark, variant):
    _cl, plan = mk_plan()
    env = mk_env()
    runner = run_shared_naive if variant == "naive" else run_shared

    def run():
        return runner(plan, copy_env(env))

    m = benchmark(run)
    assert m.stats.total_updates() == N


@pytest.mark.parametrize("variant", ["naive", "optimized"])
def test_distributed_run_timing(benchmark, variant):
    _cl, plan = mk_plan()
    env = mk_env()
    runner = run_distributed_naive if variant == "naive" else run_distributed

    def run():
        return runner(plan, copy_env(env))

    m = benchmark(run)
    assert m.stats.total_updates() == N
