"""E13 — §2.10: the distributed-memory SPMD template.

Runs the generated message-passing node programs for every
(write decomposition x read decomposition) pair, validates against the
sequential reference, and reports the communication matrix — the
functional property that distinguishes decomposition choices on a
distributed machine.
"""

import numpy as np
import pytest

from repro.codegen import compile_clause, compile_distributed, run_distributed
from repro.core import (
    AffineF,
    Clause,
    IndexSet,
    Ref,
    SeparableMap,
    copy_env,
    evaluate_clause,
)
from repro.decomp import Block, BlockScatter, Scatter
from repro.machine import DistributedMachine

from .conftest import print_table

N = 512
PMAX = 8

DECS = {
    "block": lambda: Block(N, PMAX),
    "scatter": lambda: Scatter(N, PMAX),
    "BS(8)": lambda: BlockScatter(N, PMAX, 8),
}


def stencil_clause():
    """A[i] := B[i-1] + B[i+1] — the nearest-neighbour stencil every
    intro example of the era motivates."""
    left = Ref("B", SeparableMap([AffineF(1, -1)]))
    right = Ref("B", SeparableMap([AffineF(1, 1)]))
    return Clause(
        domain=IndexSet.range1d(1, N - 2),
        lhs=Ref("A", SeparableMap([AffineF(1, 0)])),
        rhs=left + right,
    )


def test_communication_matrix(rng):
    cl = stencil_clause()
    env0 = {"A": np.zeros(N), "B": rng.random(N)}
    ref = evaluate_clause(cl, copy_env(env0))["A"]

    rows = []
    results = {}
    for wname, mkw in DECS.items():
        row = [wname]
        for rname, mkr in DECS.items():
            plan = compile_clause(cl, {"A": mkw(), "B": mkr()})
            m = run_distributed(plan, copy_env(env0))
            assert np.allclose(m.collect("A"), ref), (wname, rname)
            msgs = m.stats.total_messages()
            results[(wname, rname)] = msgs
            row.append(msgs)
        rows.append(row)
    print_table(
        f"E13 (§2.10): messages for A[i] := B[i-1]+B[i+1], n={N}, "
        f"pmax={PMAX} (rows: decomposition of A; cols: of B)",
        ["A \\ B"] + list(DECS),
        rows,
    )

    # shape claims: aligned block/block moves only boundary elements;
    # scatter reads of a stencil communicate for almost every element;
    # matching scatter/scatter keeps nothing local (i±1 shifts owner).
    assert results[("block", "block")] == 2 * (PMAX - 1)
    assert results[("block", "scatter")] > N
    assert results[("scatter", "scatter")] == 2 * (N - 2)


@pytest.mark.parametrize("wname,rname", [
    ("block", "block"), ("block", "scatter"), ("scatter", "scatter"),
])
def test_distributed_timing(benchmark, wname, rname, rng):
    cl = stencil_clause()
    env0 = {"A": np.zeros(N), "B": rng.random(N)}
    plan = compile_clause(cl, {"A": DECS[wname](), "B": DECS[rname]()})

    def run():
        return run_distributed(plan, copy_env(env0))

    m = benchmark(run)
    assert m.stats.total_updates() == N - 2


def test_generated_source_messages_identical(rng):
    cl = stencil_clause()
    env0 = {"A": np.zeros(N), "B": rng.random(N)}
    dA, dB = Block(N, PMAX), Scatter(N, PMAX)
    plan = compile_clause(cl, {"A": dA, "B": dB})
    ref = evaluate_clause(cl, copy_env(env0))["A"]

    m1 = run_distributed(plan, copy_env(env0))
    _src, factory = compile_distributed(plan)
    m2 = DistributedMachine(PMAX)
    m2.place("A", env0["A"], dA)
    m2.place("B", env0["B"], dB)
    m2.run(factory)

    assert np.allclose(m2.collect("A"), ref)
    assert m1.stats.total_messages() == m2.stats.total_messages()
    assert m1.stats.total_elements_moved() == m2.stats.total_elements_moved()
