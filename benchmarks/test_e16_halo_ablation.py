"""E16 (ablation) — overlapped decompositions vs the general template.

DESIGN.md calls out the §5 future-work feature "overlapped
decompositions"; this ablation quantifies what it buys: for a radius-r
stencil on pmax nodes,

* the general §2.10 template sends one message per (read, iteration)
  pair crossing a boundary — ``(pmax - 1) r (r + 1)`` messages per
  application, shipping boundary elements *repeatedly* (once per
  consuming iteration);
* the halo discipline sends one *coalesced* strip per neighbour —
  ``2 (pmax - 1)`` messages of ``r`` elements, each boundary element
  shipped exactly once.

Both the message count (latency-bound on real machines) and the element
volume (bandwidth-bound) collapse.
"""

import numpy as np
import pytest

from repro.codegen import compile_clause, run_distributed
from repro.codegen.halo import compile_halo_stencil, run_halo_stencil
from repro.core import (
    AffineF,
    BinOp,
    Clause,
    IndexSet,
    Ref,
    SeparableMap,
    copy_env,
    evaluate_clause,
)
from repro.decomp import Block, OverlappedBlock

from .conftest import print_table

N, PMAX = 512, 8


def stencil(radius):
    terms = [Ref("U", SeparableMap([AffineF(1, c)]))
             for c in range(-radius, radius + 1)]
    rhs = terms[0]
    for t in terms[1:]:
        rhs = BinOp("+", rhs, t)
    return Clause(
        domain=IndexSet.range1d(radius, N - 1 - radius),
        lhs=Ref("V", SeparableMap([AffineF(1, 0)])),
        rhs=rhs,
    )


def env_for(rng):
    return {"U": rng.random(N), "V": np.zeros(N)}


def test_message_discipline_ablation(rng):
    rows = []
    for radius in (1, 2, 4, 8):
        cl = stencil(radius)
        env0 = env_for(rng)
        ref = evaluate_clause(cl, copy_env(env0))["V"]

        # general template on plain blocks
        plan_g = compile_clause(cl, {"U": Block(N, PMAX),
                                     "V": Block(N, PMAX)})
        m_g = run_distributed(plan_g, copy_env(env0))
        assert np.allclose(m_g.collect("V"), ref)

        # halo template on overlapped blocks
        ds = {"U": OverlappedBlock(N, PMAX, halo=radius),
              "V": OverlappedBlock(N, PMAX, halo=radius)}
        plan_h = compile_halo_stencil(cl, ds)
        m_h = run_halo_stencil(plan_h, copy_env(env0))
        assert np.allclose(m_h.collect("V"), ref)

        rows.append([
            radius,
            m_g.stats.total_messages(), m_h.stats.total_messages(),
            m_g.stats.total_elements_moved(),
            m_h.stats.total_elements_moved(),
        ])
    print_table(
        f"E16 (ablation): per-element vs halo exchange, n={N}, pmax={PMAX}",
        ["stencil radius", "general msgs", "halo msgs",
         "general elements", "halo elements"],
        rows,
    )
    for radius, g_msgs, h_msgs, g_el, h_el in rows:
        # general template: one message per (read, iteration) crossing a
        # boundary — sum_{c=1..r} c per direction per boundary
        assert g_msgs == (PMAX - 1) * radius * (radius + 1)
        assert g_el == g_msgs  # one element per envelope, duplicates and all
        # halo: one strip per neighbour, each boundary element shipped once
        assert h_msgs == 2 * (PMAX - 1)
        assert h_el == 2 * radius * (PMAX - 1)
        assert h_el <= g_el


@pytest.mark.parametrize("discipline", ["general", "halo"])
@pytest.mark.parametrize("radius", [1, 8])
def test_stencil_application_timing(benchmark, discipline, radius, rng):
    cl = stencil(radius)
    env0 = env_for(rng)
    if discipline == "general":
        plan = compile_clause(cl, {"U": Block(N, PMAX), "V": Block(N, PMAX)})

        def run():
            return run_distributed(plan, copy_env(env0))
    else:
        ds = {"U": OverlappedBlock(N, PMAX, halo=radius),
              "V": OverlappedBlock(N, PMAX, halo=radius)}
        plan = compile_halo_stencil(cl, ds)

        def run():
            return run_halo_stencil(plan, copy_env(env0))

    m = benchmark(run)
    assert m.stats.total_updates() == N - 2 * radius
