"""E17 (ablation) — barrier elimination (paper §2.9, footnote 1).

"The expensive barrier synchronization can in many cases be eliminated or
merged" — this ablation runs multi-phase pipelines with and without the
compile-time barrier analysis and reports how many barriers remain for
aligned vs misaligned phase chains.
"""

import numpy as np
import pytest

from repro.codegen.barriers import plan_barriers, run_program_shared
from repro.core import (
    AffineF,
    Clause,
    IndexSet,
    Program,
    Ref,
    SeparableMap,
    copy_env,
    evaluate_program,
)
from repro.decomp import Block, Scatter

from .conftest import print_table

N, PMAX = 512, 8
PHASES = 8


def chain(shift: int) -> Program:
    """X1 := X0 + 1 ; X2 := X1[i+shift] + 1 ; ...  (PHASES clauses)."""
    prog = Program()
    hi = N - 1 - max(shift, 0) * PHASES
    for k in range(PHASES):
        prog.add(Clause(
            domain=IndexSet.range1d(0, hi),
            lhs=Ref(f"X{k + 1}", SeparableMap([AffineF(1, 0)])),
            rhs=Ref(f"X{k}", SeparableMap([AffineF(1, shift)])) + 1,
            name=f"phase{k}",
        ))
    return prog


def env_for(rng):
    return {f"X{k}": rng.random(N) for k in range(PHASES + 1)}


def blocks():
    return {f"X{k}": Block(N, PMAX) for k in range(PHASES + 1)}


def test_barrier_counts(rng):
    rows = []
    for label, prog, decomps in [
        ("aligned chain (shift 0, block)", chain(0), blocks()),
        ("shifted chain (shift 1, block)", chain(1), blocks()),
        ("aligned chain, scatter", chain(0),
         {f"X{k}": Scatter(N, PMAX) for k in range(PHASES + 1)}),
    ]:
        env0 = env_for(rng)
        ref = evaluate_program(prog, copy_env(env0))
        m_opt, b_opt = run_program_shared(prog, decomps, copy_env(env0))
        m_base, b_base = run_program_shared(
            prog, decomps, copy_env(env0), eliminate_barriers=False
        )
        final = f"X{PHASES}"
        assert np.allclose(m_opt.env[final], ref[final]), label
        assert np.allclose(m_base.env[final], ref[final]), label
        rows.append([label, b_base, b_opt])
    print_table(
        f"E17 (ablation): barriers executed over {PHASES} phases, "
        f"n={N}, pmax={PMAX}",
        ["pipeline", "without elimination", "with elimination"],
        rows,
    )
    by = {r[0]: r for r in rows}
    # aligned chains collapse to a single barrier; shifted chains keep all
    assert by["aligned chain (shift 0, block)"][2] == 1
    assert by["aligned chain, scatter"][2] == 1
    assert by["shifted chain (shift 1, block)"][2] == PHASES


def test_analysis_is_element_exact(rng):
    # shift-by-block-size chains cross processors even though most
    # elements stay put: the analysis must keep those barriers
    b = N // PMAX
    prog = chain(1)
    flags = plan_barriers(prog, blocks())
    assert all(flags)


@pytest.mark.parametrize("variant", ["eliminated", "kept"])
def test_pipeline_timing(benchmark, variant, rng):
    prog, decomps = chain(0), blocks()
    env0 = env_for(rng)

    def run():
        return run_program_shared(
            prog, decomps, copy_env(env0),
            eliminate_barriers=(variant == "eliminated"),
        )

    m, barriers = benchmark(run)
    assert barriers == (1 if variant == "eliminated" else PHASES)
