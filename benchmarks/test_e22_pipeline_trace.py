"""E22 (extension) — DOACROSS pipeline structure, observed in traces.

The §2.6 remark about "DOACROSS-style synchronization patterns", made
visible: paced node programs give the scheduler a per-iteration clock,
and the trace shows how decomposition and dependence distance shape the
pipeline — block serializes a distance-1 chain; stride-aligned scatter
(s = pmax) turns it into pmax independent local chains.
"""

import numpy as np
import pytest

from repro.codegen.doacross import compile_doacross, make_doacross_program
from repro.core import SEQ, AffineF, Clause, IndexSet, Ref, SeparableMap
from repro.decomp import Block, Scatter
from repro.machine import DistributedMachine
from repro.machine.trace import render_timeline

from .conftest import print_table

N, PMAX = 96, 4


def run_traced(mk_dec, s, paced=True):
    cl = Clause(
        IndexSet.range1d(s, N - 1),
        Ref("A", SeparableMap([AffineF(1, 0)])),
        Ref("A", SeparableMap([AffineF(1, -s)])) * 0.5
        + Ref("B", SeparableMap([AffineF(1, 0)])),
        ordering=SEQ,
    )
    rng = np.random.default_rng(0)
    env = {"A": rng.random(N), "B": rng.random(N)}
    dA, dB = mk_dec(N, PMAX), mk_dec(N, PMAX)
    plan = compile_doacross(cl, {"A": dA, "B": dB})
    m = DistributedMachine(PMAX)
    m.place("A", env["A"], dA)
    m.place("B", env["B"], dB)
    trace = []
    m.run(lambda ctx: make_doacross_program(plan, ctx, paced=paced),
          trace=trace)
    return trace, m


def test_pipeline_shape_table():
    rows = []
    results = {}
    for label, mk, s in [
        ("block, s=1 (serial chain)", lambda n, p: Block(n, p), 1),
        ("scatter, s=1 (hop/iter)", lambda n, p: Scatter(n, p), 1),
        ("scatter, s=pmax (local chains)", lambda n, p: Scatter(n, p), PMAX),
    ]:
        trace, m = run_traced(mk, s)
        makespan = max(ev.round for ev in trace)
        results[label] = makespan
        rows.append([label, makespan, m.stats.total_messages()])
    print_table(
        f"E22: DOACROSS pipeline, n={N}, pmax={PMAX} "
        f"(paced: 1 iteration per scheduler round)",
        ["configuration", "makespan (rounds)", "dep messages"],
        rows,
    )
    # a serial chain needs ~one round per iteration; pmax aligned local
    # chains need ~n/pmax
    serial = results["block, s=1 (serial chain)"]
    local = results["scatter, s=pmax (local chains)"]
    assert serial >= (N - 1) * 0.9
    assert local <= N / PMAX * 1.5
    assert serial > 2.5 * local


def test_timeline_rendering():
    trace, _ = run_traced(lambda n, p: Block(n, p), 1)
    art = render_timeline(trace, PMAX, width=60)
    print("\nE22 block DOACROSS activity timeline:")
    print(art)
    assert art.count("p") >= PMAX


@pytest.mark.parametrize("paced", [False, True], ids=["fast", "paced"])
def test_doacross_simulation_timing(benchmark, paced):
    def run():
        return run_traced(lambda n, p: Block(n, p), 1, paced=paced)

    trace, m = benchmark(run)
    assert m.stats.total_updates() == N - 1
