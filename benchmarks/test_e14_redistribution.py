"""E14 — §1/§5: dynamic decompositions (automatic redistribution).

The paper criticizes systems where redistribution is hand-written and
intermingled with program code; here redistribution programs are derived
purely from the two decomposition views.  This bench reports message
counts and element volumes for representative redistribution pairs and
benchmarks the generated node programs end to end.
"""

import numpy as np
import pytest

from repro.codegen import run_redistribution
from repro.decomp import (
    Block,
    BlockScatter,
    Scatter,
    SingleOwner,
    plan_redistribution,
)
from repro.machine import DistributedMachine

from .conftest import print_table

N = 4096
PMAX = 8

PAIRS = [
    ("block -> scatter", lambda: Block(N, PMAX), lambda: Scatter(N, PMAX)),
    ("scatter -> block", lambda: Scatter(N, PMAX), lambda: Block(N, PMAX)),
    ("block -> BS(64)", lambda: Block(N, PMAX),
     lambda: BlockScatter(N, PMAX, 64)),
    ("BS(64) -> BS(8)", lambda: BlockScatter(N, PMAX, 64),
     lambda: BlockScatter(N, PMAX, 8)),
    ("gather to host", lambda: Block(N, PMAX), lambda: SingleOwner(N, PMAX, 0)),
    ("broadcast from host", lambda: SingleOwner(N, PMAX, 0),
     lambda: Block(N, PMAX)),
    ("identity", lambda: Block(N, PMAX), lambda: Block(N, PMAX)),
]


def test_redistribution_matrix(rng):
    rows = []
    for label, mks, mkd in PAIRS:
        src, dst = mks(), mkd()
        arr = rng.random(N)
        m = DistributedMachine(PMAX)
        m.place("A", arr, src)
        plan = run_redistribution(m, "A", dst)
        assert np.allclose(m.collect("A"), arr), label
        rows.append([
            label, plan.message_count(), plan.moved_elements(),
            plan.stay_elements(), plan.max_fan_out(),
        ])
    print_table(
        f"E14 (§5): automatically generated redistribution, n={N}, pmax={PMAX}",
        ["redistribution", "messages", "elements moved", "elements staying",
         "max fan-out"],
        rows,
    )
    by_label = {r[0]: r for r in rows}
    # shape claims
    assert by_label["identity"][1] == 0
    assert by_label["gather to host"][1] == PMAX - 1
    assert by_label["broadcast from host"][4] == PMAX - 1
    # block<->scatter moves all but the coincidentally-aligned elements
    assert by_label["block -> scatter"][2] > N * 0.8
    # messages are coalesced per processor pair: at most pmax.(pmax-1)
    assert all(r[1] <= PMAX * (PMAX - 1) for r in rows)


def test_plan_volume_symmetry():
    """block->scatter and scatter->block move the same elements (the
    misplacement relation is symmetric)."""
    p1 = plan_redistribution(Block(N, PMAX), Scatter(N, PMAX))
    p2 = plan_redistribution(Scatter(N, PMAX), Block(N, PMAX))
    assert p1.moved_elements() == p2.moved_elements()


@pytest.mark.parametrize("label,mks,mkd", PAIRS[:4],
                         ids=[p[0] for p in PAIRS[:4]])
def test_redistribution_timing(benchmark, label, mks, mkd, rng):
    arr = rng.random(N)

    def run():
        m = DistributedMachine(PMAX)
        m.place("A", arr, mks())
        run_redistribution(m, "A", mkd())
        return m

    m = benchmark(run)
    assert np.allclose(m.collect("A"), arr)
