"""Record native-tier (njit) results into BENCH_native.json.

The E13 1-D stencil and the E19 2-D five-point stencil run under the
fused backend and the native backend (``@njit``-compiled scalar-loop
node kernels); a 1000-step pipelined E19 time loop runs through the
program layer on the mp runtime, whose workers install the same native
kernel.  JIT cost is recorded once per clause source (cold build) and
shown against the warm kernel-cache hit that skips codegen *and* JIT.

Asserted invariants (the issue's acceptance bar):

* fused and native results are bit-identical on every row
  (``identical_results`` true) — also when numba is absent and the
  native entry points degrade to the fused tier with a trace note;
* with numba present (``mode="njit"``), the *median* native-over-fused
  wall-clock speedup on the large E19 grid is >= 5x;
* a warm structural recompile reuses the native tier (no second JIT).

Without numba the rows record ``native_available: false`` and the
speedup gate is skipped — the benchmark then documents the degradation
path rather than the win.

``--smoke`` runs tiny sizes and few steps, checks bit-identity and the
fallback/trace behaviour only, and writes no JSON (CI uses it).

Usage::

    PYTHONPATH=src python benchmarks/bench_native.py [--smoke]
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path
from statistics import median

import numpy as np

from repro.codegen import compile_clause, run_distributed
from repro.codegen.nddist import (
    collect_nd,
    compile_clause_nd_dist,
    run_distributed_nd,
)
from repro.core import (
    AffineF,
    Bounds,
    Clause,
    Const,
    IdentityF,
    IndexSet,
    Ref,
    SeparableMap,
    copy_env,
)
from repro.core.clause import Program
from repro.core.expr import BinOp
from repro.decomp import Block, GridDecomposition
from repro.pipeline import (
    clear_plan_cache,
    compile_program,
    ensure_native,
    native_cache_info,
    native_support,
    run_program,
)
from repro.runtime import shutdown_runtime

try:
    from .conftest import bench_metadata
except ImportError:  # run as a script: benchmarks/ is sys.path[0]
    from conftest import bench_metadata

REPS = 9
SEED = 2026
PROCS = 4
HEADLINE = "e19-grid-2d-large"
HEADLINE_MIN_SPEEDUP = 5.0


def _median_of(fn, reps=REPS):
    times, out = [], None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        times.append(time.perf_counter() - t0)
    return median(times), out


def _e13_clause(n):
    return Clause(
        domain=IndexSet.range1d(1, n - 2),
        lhs=Ref("A", SeparableMap([AffineF(1, 0)])),
        rhs=Ref("B", SeparableMap([AffineF(1, -1)]))
        + Ref("B", SeparableMap([AffineF(1, 1)])),
        name="e13",
    )


def _e19_clause(n):
    def sref(di, dj):
        fi = AffineF(1, di) if di else IdentityF()
        fj = AffineF(1, dj) if dj else IdentityF()
        return Ref("S", SeparableMap([fi, fj]))

    return Clause(
        IndexSet(Bounds((1, 1), (n - 2, n - 2))),
        Ref("T", SeparableMap([IdentityF(), IdentityF()])),
        BinOp("*", Const(0.25),
              BinOp("+", BinOp("+", sref(-1, 0), sref(1, 0)),
                    BinOp("+", sref(0, -1), sref(0, 1)))),
        name="e19",
    )


def _e19_setup(n2, p_side=2):
    g = GridDecomposition([Block(n2, p_side), Block(n2, p_side)])
    rng = np.random.default_rng(SEED)
    env = {"S": rng.random((n2, n2)), "T": np.zeros((n2, n2))}
    return g, env


def _single_clause_workloads(smoke):
    """Yield (label, compile(), run(plan, backend), collect(machine))."""
    n, pmax = (64, 4) if smoke else (512, 8)
    rng = np.random.default_rng(SEED)
    env13 = {"A": np.zeros(n), "B": rng.random(n)}
    decomps = {"A": Block(n, pmax), "B": Block(n, pmax)}
    yield ("e13-stencil-block/block",
           lambda: compile_clause(_e13_clause(n), decomps),
           lambda plan, backend: run_distributed(
               plan, copy_env(env13), backend=backend),
           lambda m: m.collect("A"))

    for label, n2 in (("e19-grid-2d-small", 16 if smoke else 48),
                      ("e19-grid-2d-large", 24 if smoke else 96)):
        g, env19 = _e19_setup(n2)
        yield (label,
               lambda g=g, n2=n2: compile_clause_nd_dist(
                   _e19_clause(n2), {"T": g, "S": g}),
               lambda plan, backend, env19=env19: run_distributed_nd(
                   plan, copy_env(env19), backend=backend),
               lambda m: collect_nd(m, "T"))


def _jit_timing(compile_fn):
    """Cold native build (codegen + JIT) vs the warm kernel-cache hit a
    structural recompile gets — the hit must reuse the compiled entry."""
    clear_plan_cache()
    plan = compile_fn()
    sup = native_support()
    if not sup.available:
        return plan, None, None, None
    t0 = time.perf_counter()
    nat = ensure_native(plan.ir.kernels, plan.ir)
    cold_ms = (time.perf_counter() - t0) * 1e3
    warm_ms = float("inf")
    for _ in range(REPS):
        t0 = time.perf_counter()
        warm_plan = compile_fn()
        warm_nat = ensure_native(warm_plan.ir.kernels, warm_plan.ir)
        warm_ms = min(warm_ms, (time.perf_counter() - t0) * 1e3)
        assert warm_nat is nat, "warm recompile must reuse the native tier"
    return plan, cold_ms, warm_ms, nat.jit_s * 1e3


def _time_loop_row(smoke, failures):
    """The 1000-step pipelined E19 time loop on the mp runtime, whose
    workers run the native kernel when numba is present."""
    steps = 20 if smoke else 1000
    n2 = 24 if smoke else 96
    g, env = _e19_setup(n2)
    pir = compile_program(Program([_e19_clause(n2)]), {"T": g, "S": g},
                          repeat=steps, swap=(("S", "T"),))
    if not pir.pipelined:
        failures.append(f"e19 time loop not pipelined: "
                        f"{pir.pipeline_reason}")
        return None
    t_fused, m_fused = _median_of(
        lambda: run_program(pir, copy_env(env), backend="fused")[0],
        reps=3)
    shutdown_runtime()  # fresh workers: install (and JIT) once, inside
    t0 = time.perf_counter()
    m_cold, _ = run_program(pir, copy_env(env), backend="mp",
                            processes=PROCS)
    t_cold = time.perf_counter() - t0
    t_warm, m_warm = _median_of(
        lambda: run_program(pir, copy_env(env), backend="mp",
                            processes=PROCS)[0], reps=3)
    identical = all(np.array_equal(m_fused.env[k], m_cold.env[k])
                    and np.array_equal(m_fused.env[k], m_warm.env[k])
                    for k in ("S", "T"))
    if not identical:
        failures.append("e19 time loop: mp/native differs from fused")
    shutdown_runtime()
    sup = native_support()
    return {
        "workload": "e19-time-loop-mp",
        "steps": steps,
        "processes": PROCS,
        "pipelined": pir.pipelined,
        "native_available": sup.available,
        "native_mode": sup.mode,
        "fused_s": round(t_fused, 6),
        "mp_cold_s": round(t_cold, 6),
        "mp_warm_s": round(t_warm, 6),
        "steps_per_sec_mp_warm": round(steps / t_warm, 2),
        "identical_results": identical,
    }


def main(argv=None) -> int:
    smoke = "--smoke" in (argv if argv is not None else sys.argv[1:])
    sup = native_support()
    print(f"native tier: available={sup.available} mode={sup.mode} "
          f"({sup.reason})")
    clear_plan_cache()
    rows, failures = [], []

    for label, compile_fn, run, collect in _single_clause_workloads(smoke):
        plan, jit_cold_ms, jit_warm_ms, jit_ms = _jit_timing(compile_fn)
        t_f, m_f = _median_of(lambda run=run: run(plan, "fused"))
        t_n, m_n = _median_of(lambda run=run: run(plan, "native"))
        identical = bool(np.array_equal(collect(m_f), collect(m_n)))
        if not identical:
            failures.append(f"{label}: native differs from fused")
        if not sup.available:
            # the entry point must have degraded with a trace note
            if not any("backend='native' fell back" in n
                       for n in plan.trace.notes):
                failures.append(f"{label}: no fallback trace note")
        speedup = t_f / t_n if t_n else float("inf")
        row = {
            "workload": label,
            "native_available": sup.available,
            "native_mode": sup.mode,
            "fused_ms": round(t_f * 1e3, 3),
            "native_ms": round(t_n * 1e3, 3),
            "native_over_fused_speedup": round(speedup, 2),
            "identical_results": identical,
        }
        if jit_cold_ms is not None:
            row["native_build_cold_ms"] = round(jit_cold_ms, 3)
            row["native_build_warm_ms"] = round(jit_warm_ms, 3)
            row["jit_ms"] = round(jit_ms, 3)
        rows.append(row)
        print(f"{label:28s} fused {row['fused_ms']:8.3f} ms  "
              f"native {row['native_ms']:8.3f} ms "
              f"({speedup:5.2f}x)  identical={identical}")
        if (not smoke and sup.mode == "njit" and label == HEADLINE
                and speedup < HEADLINE_MIN_SPEEDUP):
            failures.append(
                f"headline {label}: native speedup {speedup:.2f}x < "
                f"{HEADLINE_MIN_SPEEDUP}x")

    loop_row = _time_loop_row(smoke, failures)
    if loop_row is not None:
        rows.append(loop_row)
        print(f"{loop_row['workload']:28s} steps={loop_row['steps']}  "
              f"fused {loop_row['fused_s']:7.3f} s  "
              f"mp warm {loop_row['mp_warm_s']:7.3f} s  "
              f"identical={loop_row['identical_results']}")

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1

    if smoke:
        print("smoke OK (no JSON written)")
        return 0

    out = {
        "meta": bench_metadata(),
        "bench": "native",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "numpy": np.__version__,
        "native_available": sup.available,
        "native_mode": sup.mode,
        "native_reason": sup.reason,
        "numba_version": sup.version,
        "reps": REPS,
        "seed": SEED,
        "headline_min_speedup": HEADLINE_MIN_SPEEDUP,
        "native_cache": {k: v for k, v in native_cache_info().items()
                         if k in ("builds", "hits", "failures", "jit_s")},
        "rows": rows,
    }
    path = Path(__file__).resolve().parent.parent / "BENCH_native.json"
    path.write_text(json.dumps(out, indent=2) + "\n")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
