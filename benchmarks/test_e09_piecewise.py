"""E9 — §3.3: piece-wise monotonic (rotate / shuffle) accesses.

The paper's running example ``f(i) = (i+6) mod 20`` and larger rotates:
breakpoint computation, range splitting for block and scatter
decompositions, and the overhead relative to the naive scan.
"""

import pytest

from repro.core.ifunc import AffineF, ModularF
from repro.decomp import Block, Scatter
from repro.sets import Work, modify_naive, optimize_access

from .conftest import print_table

N = 4096
SHIFT = 1234
PMAX = 8

ROTATE = ModularF(AffineF(1, SHIFT), N)         # f(i) = (i + shift) mod n
PAPER_ROTATE = ModularF(AffineF(1, 6), 20)      # the §3.3 example, verbatim


class TestPaperExample:
    def test_breakpoint(self):
        # g(i) = i + 6 crosses z = 20 at i = 14
        assert PAPER_ROTATE.breakpoints(0, 19) == [14]

    def test_block_split_ranges(self):
        # "for block decomposition, the processor where the break occurs
        #  must have its ranges split"
        d = Block(20, 4)
        acc = optimize_access(d, PAPER_ROTATE, 0, 19)
        break_proc = d.proc(PAPER_ROTATE(14))
        segs = acc.enumerate(break_proc).segments
        for p in range(4):
            assert acc.indices(p) == modify_naive(d, PAPER_ROTATE, 0, 19, p)

    def test_scatter_break_affects_every_processor(self):
        # "for scatter decomposition, a breakpoint is likely to affect
        #  every processor" — each processor's set splits into two
        #  progressions (different x_p per piece)
        d = Scatter(20, 4)
        acc = optimize_access(d, PAPER_ROTATE, 0, 19)
        for p in range(4):
            assert acc.indices(p) == modify_naive(d, PAPER_ROTATE, 0, 19, p)
            assert len(acc.enumerate(p).segments) >= 2

    def test_z_multiple_of_pmax_simplification(self):
        # §3.3: when z is a multiple of pmax and d=0,
        # f(i) mod pmax = g(i) mod pmax — the rotate is invisible to
        # scatter ownership up to index relabeling
        z, pmax = 20, 4
        f = ModularF(AffineF(1, 6), z)
        for i in range(40):
            assert f(i) % pmax == (i + 6) % pmax


class TestLargeRotate:
    def test_correct_under_both_decompositions(self):
        for d in (Block(N, PMAX), Scatter(N, PMAX)):
            acc = optimize_access(d, ROTATE, 0, N - 1)
            for p in range(PMAX):
                assert acc.indices(p) == modify_naive(d, ROTATE, 0, N - 1, p)

    def test_overhead_summary(self):
        rows = []
        for d in (Block(N, PMAX), Scatter(N, PMAX)):
            acc = optimize_access(d, ROTATE, 0, N - 1)
            w_opt, w_naive = Work(), Work()
            for p in range(PMAX):
                acc.indices(p, w_opt)
                modify_naive(d, ROTATE, 0, N - 1, p, w_naive)
            rows.append([
                d.kind, acc.rule, w_opt.overhead(), w_naive.overhead(),
                f"x{w_naive.overhead() / max(1, w_opt.overhead()):,.0f}",
            ])
        print_table(
            f"E9 (§3.3): rotate f(i) = (i+{SHIFT}) mod {N}, pmax={PMAX}",
            ["decomposition", "rule", "opt overhead", "naive overhead",
             "reduction"],
            rows,
        )
        assert all(r[2] * 10 < r[3] for r in rows)


@pytest.mark.parametrize("dec", ["block", "scatter"])
def test_rotate_enumeration_timing(benchmark, dec):
    d = Block(N, PMAX) if dec == "block" else Scatter(N, PMAX)
    acc = optimize_access(d, ROTATE, 0, N - 1)

    def run():
        return sum(len(acc.indices(p)) for p in range(PMAX))

    assert benchmark(run) == N


@pytest.mark.parametrize("dec", ["block", "scatter"])
def test_rotate_naive_timing(benchmark, dec):
    d = Block(N, PMAX) if dec == "block" else Scatter(N, PMAX)

    def run():
        return sum(
            len(modify_naive(d, ROTATE, 0, N - 1, p)) for p in range(PMAX)
        )

    assert benchmark(run) == N
