"""E12 — §2.9: the shared-memory SPMD template.

Generated shared-memory node programs (interpreted template and emitted
Python source) are validated against the sequential V-cal reference and
benchmarked; barrier semantics (no node observes another's writes within
a phase) is exercised with an in-place neighbour update.
"""

import numpy as np
import pytest

from repro.codegen import compile_clause, compile_shared, run_shared
from repro.core import (
    AffineF,
    Clause,
    IndexSet,
    ModularF,
    Ref,
    SeparableMap,
    copy_env,
    evaluate_clause,
)
from repro.decomp import Block, BlockScatter, Scatter
from repro.machine import SharedMachine

N = 1024
PMAX = 8


def shift_clause(n=N):
    """A[i] := A[i+1] * 2 + 1 — in-place neighbour read, the barrier test."""
    return Clause(
        domain=IndexSet.range1d(0, n - 2),
        lhs=Ref("A", SeparableMap([AffineF(1, 0)])),
        rhs=Ref("A", SeparableMap([AffineF(1, 1)])) * 2 + 1,
    )


@pytest.mark.parametrize("mk_dec", [
    lambda: Block(N, PMAX),
    lambda: Scatter(N, PMAX),
    lambda: BlockScatter(N, PMAX, 16),
], ids=["block", "scatter", "bs16"])
def test_template_respects_phase_barrier(mk_dec, rng):
    cl = shift_clause()
    env0 = {"A": rng.random(N)}
    ref = evaluate_clause(cl, copy_env(env0))["A"]
    plan = compile_clause(cl, {"A": mk_dec()})
    m = run_shared(plan, copy_env(env0))
    assert np.allclose(m.env["A"], ref)
    # one barrier per node per phase
    assert all(s.barriers == 1 for s in m.stats.nodes)


def test_generated_source_equivalent(rng):
    cl = shift_clause()
    env0 = {"A": rng.random(N)}
    ref = evaluate_clause(cl, copy_env(env0))["A"]
    plan = compile_clause(cl, {"A": Scatter(N, PMAX)})
    src, phase = compile_shared(plan)
    m = SharedMachine(PMAX, copy_env(env0))
    m.run_phase(lambda p: phase(p, m.env))
    assert np.allclose(m.env["A"], ref)
    print("\nE12 generated shared-memory node program:")
    for line in src.splitlines():
        print("   ", line)


@pytest.mark.parametrize("mk_dec,label", [
    (lambda: Block(N, PMAX), "block"),
    (lambda: Scatter(N, PMAX), "scatter"),
], ids=["block", "scatter"])
def test_shared_template_timing(benchmark, mk_dec, label, rng):
    cl = shift_clause()
    plan = compile_clause(cl, {"A": mk_dec()})
    env0 = {"A": rng.random(N)}

    def run():
        return run_shared(plan, copy_env(env0))

    m = benchmark(run)
    assert m.stats.total_updates() == N - 1


def test_generated_source_timing(benchmark, rng):
    cl = shift_clause()
    plan = compile_clause(cl, {"A": Scatter(N, PMAX)})
    _src, phase = compile_shared(plan)
    env0 = {"A": rng.random(N)}

    def run():
        m = SharedMachine(PMAX, copy_env(env0))
        m.run_phase(lambda p: phase(p, m.env))
        return m

    m = benchmark(run)
    assert m.stats.total_updates() == N - 1
