"""Record multi-process runtime results into BENCH_runtime.json.

For the E13 1-D stencil and the E19 2-D five-point stencil at worker
counts P in {2, 4, 8}, each compiled plan runs end to end — fresh
machine per rep, exactly what a caller of ``run_distributed`` /
``run_distributed_nd`` pays — under the in-process fused backend and the
multi-process runtime.  The mp runtime executes the *same* compile-once
kernels on real OS processes: placement is one memcpy per array into
shared memory instead of the simulated machines' per-element Python
scatter loop, and node kernels genuinely run concurrently.

Asserted invariants (the issue's acceptance bar):

* mp results are bit-identical to fused on every row
  (``identical_results`` true);
* on the E19 headline workload at P=4 the median end-to-end wall-clock
  speedup of mp over fused is >= 1.5x;
* the pool persists across reps (same worker pids first to last);
* after ``shutdown_runtime()`` no ``/dev/shm`` segment leaks.

``--smoke`` runs tiny sizes, checks bit-identity and pool reuse only,
and writes no JSON (the CI runtime job uses it).

Usage::

    PYTHONPATH=src python benchmarks/bench_runtime.py [--smoke]
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path
from statistics import median

import numpy as np

from repro.codegen import compile_clause, run_distributed
from repro.codegen.nddist import (
    collect_nd,
    compile_clause_nd_dist,
    run_distributed_nd,
)
from repro.core import (
    AffineF,
    Bounds,
    Clause,
    Const,
    IdentityF,
    IndexSet,
    Ref,
    SeparableMap,
    copy_env,
)
from repro.core.expr import BinOp
from repro.decomp import Block, GridDecomposition
from repro.pipeline import clear_plan_cache
from repro.runtime import get_pool, shutdown_runtime

try:
    from .conftest import bench_metadata
except ImportError:  # run as a script: benchmarks/ is sys.path[0]
    from conftest import bench_metadata

REPS = 5
SEED = 2026
HEADLINE_MIN_SPEEDUP = 1.5
HEADLINE = ("e19-grid-2d", 4)
PROCS = (2, 4, 8)


def _median_of(fn, reps=REPS):
    times, out = [], None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        times.append(time.perf_counter() - t0)
    return median(times), out


def _e13_clause(n):
    return Clause(
        domain=IndexSet.range1d(1, n - 2),
        lhs=Ref("A", SeparableMap([AffineF(1, 0)])),
        rhs=Ref("B", SeparableMap([AffineF(1, -1)]))
        + Ref("B", SeparableMap([AffineF(1, 1)])),
    )


def _e19_clause(n):
    def sref(di, dj):
        fi = AffineF(1, di) if di else IdentityF()
        fj = AffineF(1, dj) if dj else IdentityF()
        return Ref("S", SeparableMap([fi, fj]))

    return Clause(
        IndexSet(Bounds((1, 1), (n - 2, n - 2))),
        Ref("T", SeparableMap([IdentityF(), IdentityF()])),
        BinOp("*", Const(0.25),
              BinOp("+", BinOp("+", sref(-1, 0), sref(1, 0)),
                    BinOp("+", sref(0, -1), sref(0, 1)))),
    )


def _grid(n, p):
    side = {2: (2, 1), 4: (2, 2), 8: (4, 2)}[p]
    return GridDecomposition([Block(n, side[0]), Block(n, side[1])])


def _workloads(smoke):
    """Yield (label, pmax, compile(), run(plan, backend), collect(m))."""
    n = 1 << 12 if smoke else 1 << 18
    rng = np.random.default_rng(SEED)
    env13 = {"A": np.zeros(n), "B": rng.random(n)}
    for p in PROCS:
        decomps = {"A": Block(n, p), "B": Block(n, p)}
        yield (f"e13-stencil-1d", p,
               lambda decomps=decomps, n=n: compile_clause(
                   _e13_clause(n), decomps),
               lambda plan, backend, env=env13, p=p: run_distributed(
                   plan, copy_env(env), backend=backend, processes=p),
               lambda m: m.collect("A"))

    n2 = 64 if smoke else 384
    rng = np.random.default_rng(SEED)
    env19 = {"S": rng.random((n2, n2)), "T": np.zeros((n2, n2))}
    for p in PROCS:
        g = _grid(n2, p)
        yield (f"e19-grid-2d", p,
               lambda g=g, n2=n2: compile_clause_nd_dist(
                   _e19_clause(n2), {"T": g, "S": g}),
               lambda plan, backend, env=env19, p=p: run_distributed_nd(
                   plan, copy_env(env), backend=backend, processes=p),
               lambda m: collect_nd(m, "T"))


def _leak_check():
    if not os.path.isdir("/dev/shm"):
        return []
    return [f for f in os.listdir("/dev/shm") if f.startswith("repro-mp-")]


def main(argv=None) -> int:
    smoke = "--smoke" in (argv if argv is not None else sys.argv[1:])
    clear_plan_cache()
    rows = []
    failures = []
    for label, p, compile_fn, run_fn, collect_fn in _workloads(smoke):
        plan = compile_fn()

        t_fused, m_fused = _median_of(lambda run_fn=run_fn: run_fn(plan, "fused"))
        ref = collect_fn(m_fused)

        # cold: first mp run pays the pool spawn + program install
        shutdown_runtime()
        t0 = time.perf_counter()
        m_cold = run_fn(plan, "mp")
        t_cold = time.perf_counter() - t0
        pids_first = [s.pid for s in m_cold.runtime_stats]

        t_mp, m_mp = _median_of(lambda run_fn=run_fn: run_fn(plan, "mp"))
        pids_last = [s.pid for s in m_mp.runtime_stats]

        identical = bool(np.array_equal(ref, collect_fn(m_mp))
                         and np.array_equal(ref, collect_fn(m_cold)))
        pool_reused = pids_first == pids_last
        speedup = t_fused / t_mp if t_mp else float("inf")
        row = {
            "workload": label,
            "processes": p,
            "fused_s": round(t_fused, 6),
            "mp_warm_s": round(t_mp, 6),
            "mp_cold_s": round(t_cold, 6),
            "speedup_mp_over_fused": round(speedup, 3),
            "identical_results": identical,
            "pool_reused": pool_reused,
            "worker_pids": pids_last,
        }
        rows.append(row)
        print(f"{label:18s} P={p}  fused {t_fused*1e3:9.2f} ms   "
              f"mp {t_mp*1e3:9.2f} ms (cold {t_cold*1e3:8.2f} ms)  "
              f"speedup {speedup:5.2f}x  "
              f"identical={identical} reused={pool_reused}")
        if not identical:
            failures.append(f"{label} P={p}: results differ from fused")
        if not pool_reused:
            failures.append(f"{label} P={p}: pool was not reused")
        if (not smoke and (label, p) == HEADLINE
                and speedup < HEADLINE_MIN_SPEEDUP):
            failures.append(
                f"headline {label} P={p}: speedup {speedup:.2f}x "
                f"< {HEADLINE_MIN_SPEEDUP}x")

    shutdown_runtime()
    leaked = _leak_check()
    if leaked:
        failures.append(f"/dev/shm leaks after shutdown: {leaked}")

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1

    if smoke:
        print("smoke OK (no JSON written)")
        return 0

    out = {
        "meta": bench_metadata(),
        "bench": "runtime",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "reps": REPS,
        "headline_min_speedup": HEADLINE_MIN_SPEEDUP,
        "rows": rows,
    }
    path = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"
    path.write_text(json.dumps(out, indent=2) + "\n")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
