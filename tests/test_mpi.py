"""Tests for the MPI SPMD backend (``backend="mpi"``).

Covers the acceptance bar of the subsystem: the support probe and its
env knobs, the (run, dst, src, pos) tag encoding and its portable-bound
guard, bit-identity with the fused backend over the stub transport at
P in {1, 2, 4} (clause, grid, shared, and whole pipelined programs with
buffer swaps) including message-count parity, strict verifier gating,
fault injection (an aborted rank surfaces as :class:`MpiRankError`
naming phase and rank and citing the schedule certificate — and leaves
no stray threads, shm segments, or mpiexec children), the mpiexec
launcher protocol against a fake launcher (failure, timeout via
process-group kill, missing results, jobdir cleanup), the trace-noted
fused fallback when MPI is unavailable, the calibration fits, and the
CLI surface.

Everything here runs without mpi4py or mpiexec installed: the stub
transport executes the *same* rank code over threads, and the launcher
tests use a fake ``mpiexec`` via ``$REPRO_MPIEXEC``.
"""

import json
import os
import shutil
import subprocess
import tempfile
import threading
import time
import types

import numpy as np
import pytest

from repro import (
    Block,
    Clause,
    IndexSet,
    Ref,
    SeparableMap,
    compile_clause,
    copy_env,
    evaluate_clause,
    run_distributed,
    run_shared,
)
from repro.backends import backend_availability
from repro.cli import main
from repro.codegen.nddist import (
    collect_nd,
    compile_clause_nd_dist,
    run_distributed_nd,
)
from repro.core import AffineF, Bounds, Const, IdentityF
from repro.core.clause import Program
from repro.core.expr import BinOp
from repro.decomp import GridDecomposition
from repro.machine.calibrate import (
    MachineDescription,
    fit_alpha_beta,
    load_machine,
    measure_t_element,
)
from repro.machine.fused import FusedStrictError
from repro.mpi import mpi_support, reset_mpi_support
from repro.mpi.exec import (
    MAX_PORTABLE_TAG,
    MpiRankError,
    MpiUnavailableError,
    _guard_tags,
    _nranks,
    run_distributed_mpi,
)
from repro.mpi.launcher import MpiLaunchError, launch_job
from repro.mpi.rank import TAG_SEQ_WINDOW, MpiJob, encode_tag, max_tag
from repro.mpi.support import find_launcher

N, P = 48, 4


@pytest.fixture
def stub_mode(monkeypatch):
    """Force the threaded stub transport (same rank code, no mpi4py)."""
    monkeypatch.setenv("REPRO_MPI_STUB", "1")
    monkeypatch.delenv("REPRO_NO_MPI", raising=False)
    reset_mpi_support()
    yield
    monkeypatch.undo()
    reset_mpi_support()


@pytest.fixture
def no_mpi(monkeypatch):
    """Force the backend unavailable (fused-fallback path)."""
    monkeypatch.setenv("REPRO_NO_MPI", "1")
    monkeypatch.delenv("REPRO_MPI_STUB", raising=False)
    reset_mpi_support()
    yield
    monkeypatch.undo()
    reset_mpi_support()


def stencil_clause():
    return Clause(
        IndexSet(Bounds((1,), (N - 2,))),
        Ref("A", SeparableMap([IdentityF()])),
        (Ref("B", SeparableMap([AffineF(1, -1)]))
         + Ref("B", SeparableMap([AffineF(1, 1)]))) * 0.5,
    )


def stencil_plan():
    return compile_clause(stencil_clause(), {"A": Block(N, P),
                                             "B": Block(N, P)})


def env1d(seed=0):
    rng = np.random.default_rng(seed)
    return {k: rng.random(N) for k in "AB"}


def grid_clause(n):
    def sref(di, dj):
        fi = AffineF(1, di) if di else IdentityF()
        fj = AffineF(1, dj) if dj else IdentityF()
        return Ref("S", SeparableMap([fi, fj]))

    return Clause(
        IndexSet(Bounds((1, 1), (n - 2, n - 2))),
        Ref("T", SeparableMap([IdentityF(), IdentityF()])),
        BinOp("*", Const(0.25),
              BinOp("+", BinOp("+", sref(-1, 0), sref(1, 0)),
                    BinOp("+", sref(0, -1), sref(0, 1)))),
    )


def _counters(machine):
    s = machine.stats
    return (s.total_messages(), s.total_elements_moved(),
            s.total_updates())


class TestSupportProbe:
    def test_no_mpi_env_disables(self, no_mpi):
        sup = mpi_support()
        assert not sup.available
        assert "REPRO_NO_MPI" in sup.reason
        av = backend_availability("mpi")
        assert not av.available and av.backend == "mpi"

    def test_stub_mode(self, stub_mode):
        sup = mpi_support()
        assert sup.available and sup.mode == "stub"
        av = backend_availability("mpi")
        assert av.available and av.mode == "stub"

    def test_default_probe_is_consistent(self):
        reset_mpi_support()
        sup = mpi_support()
        assert sup.mode in ("mpi4py", "stub", "none")
        assert sup.available == (sup.mode != "none")
        assert mpi_support() is sup          # cached
        reset_mpi_support()
        assert mpi_support() is not sup      # and resettable

    def test_launcher_env_override(self, monkeypatch, tmp_path):
        fake = tmp_path / "mpiexec"
        fake.write_text("#!/bin/sh\nexit 0\n")
        fake.chmod(0o755)
        monkeypatch.setenv("REPRO_MPIEXEC", str(fake))
        assert find_launcher() == str(fake)


class TestTagEncoding:
    def test_tags_unique_within_window(self):
        pmax, nreads = 4, 3
        seen = set()
        for seq in range(TAG_SEQ_WINDOW):
            for dst in range(pmax):
                for src in range(pmax):
                    for pos in range(nreads):
                        t = encode_tag(seq, dst, src, pos, pmax, nreads)
                        assert t >= 0
                        seen.add(t)
        assert len(seen) == TAG_SEQ_WINDOW * pmax * pmax * nreads
        assert max(seen) == max_tag(pmax, nreads)

    def test_acceptance_shapes_fit_portable_bound(self):
        # E13/E19 at P <= 8 with a handful of reads must fit the
        # MPI-guaranteed minimum tag space
        assert max_tag(8, 5) <= MAX_PORTABLE_TAG

    def test_guard_rejects_oversized_tag_space(self):
        big = types.SimpleNamespace(pmax=64, nreads=9)
        with pytest.raises(MpiUnavailableError, match="tag space"):
            _guard_tags([big])
        ok = types.SimpleNamespace(pmax=8, nreads=4)
        _guard_tags([ok])  # no raise

    def test_nranks_resolution(self, monkeypatch):
        assert _nranks(None, 4) == 4
        assert _nranks(None, 32) == 8        # default ceiling
        assert _nranks(16, 4) == 4           # clamped to pmax
        assert _nranks(2, 4) == 2
        monkeypatch.setenv("REPRO_MPI_RANKS", "3")
        assert _nranks(None, 8) == 3


class TestStubBitIdentity:
    """The stub transport runs the real rank code (overlap schedule,
    tags, allgather) on threads — results and counters must match the
    fused backend bit for bit and count for count."""

    @pytest.mark.parametrize("nranks", [1, 2, 4])
    def test_distributed_matches_fused(self, stub_mode, nranks):
        plan, env0 = stencil_plan(), env1d()
        mf = run_distributed(plan, copy_env(env0), backend="fused")
        mm = run_distributed(plan, copy_env(env0), backend="mpi",
                             processes=nranks)
        assert getattr(mm, "is_mpi", False), "fell back instead of mpi"
        assert mm.mode == "stub" and mm.nranks == nranks
        assert np.array_equal(mf.collect("A"), mm.collect("A"))
        assert _counters(mf) == _counters(mm)

    @pytest.mark.parametrize("nranks", [1, 2, 4])
    def test_nd_grid_matches_fused(self, stub_mode, nranks):
        n = 24
        g = GridDecomposition([Block(n, 2), Block(n, 2)])
        plan = compile_clause_nd_dist(grid_clause(n), {"T": g, "S": g})
        rng = np.random.default_rng(3)
        env0 = {"S": rng.random((n, n)), "T": np.zeros((n, n))}
        mf = run_distributed_nd(plan, copy_env(env0), backend="fused")
        mm = run_distributed_nd(plan, copy_env(env0), backend="mpi",
                                processes=nranks)
        assert getattr(mm, "is_mpi", False)
        assert np.array_equal(collect_nd(mf, "T"), collect_nd(mm, "T"))
        assert _counters(mf) == _counters(mm)

    def test_shared_matches_fused(self, stub_mode):
        plan, env0 = stencil_plan(), env1d()
        mf = run_shared(plan, copy_env(env0), backend="fused")
        mm = run_shared(plan, copy_env(env0), backend="mpi")
        assert np.array_equal(mf.env["A"], mm.env["A"])

    def test_matches_sequential_reference(self, stub_mode):
        plan, env0 = stencil_plan(), env1d(9)
        ref = evaluate_clause(stencil_clause(), copy_env(env0))["A"]
        mm = run_distributed(plan, copy_env(env0), backend="mpi")
        assert np.array_equal(mm.collect("A"), ref)

    @pytest.mark.parametrize("nranks", [1, 2, 4])
    @pytest.mark.parametrize("repeat", [1, 2, 10])
    def test_pipelined_program_with_swap(self, stub_mode, nranks,
                                         repeat):
        from repro.pipeline import (
            compile_program,
            evaluate_program_reference,
            run_program,
        )

        cl = Clause(
            IndexSet(Bounds((1,), (N - 2,))),
            Ref("U", SeparableMap([IdentityF()])),
            (Ref("V", SeparableMap([AffineF(1, -1)]))
             + Ref("V", SeparableMap([AffineF(1, 1)]))) * 0.5,
        )
        decomps = {"U": Block(N, P), "V": Block(N, P)}
        pir = compile_program(Program([cl]), decomps, repeat=repeat,
                              swap=[("U", "V")])
        assert pir.pipelined or repeat == 1
        env0 = {"U": np.zeros(N),
                "V": np.random.default_rng(7).random(N)}
        ref = evaluate_program_reference(pir, copy_env(env0))
        mfe, bf = run_program(pir, copy_env(env0), backend="fused")
        mme, bm = run_program(pir, copy_env(env0), backend="mpi",
                              processes=nranks)
        assert bf == bm
        for name in ("U", "V"):
            assert np.array_equal(mfe.env[name], mme.env[name]), name
            assert np.allclose(mme.env[name], ref[name]), name


class TestStrictGating:
    def test_mpi_refuses_racy_clause_under_strict(self, stub_mode):
        cl = Clause(
            IndexSet(Bounds((0,), (N - 2,))),
            Ref("A", SeparableMap([IdentityF()])),
            Ref("A", SeparableMap([AffineF(1, 1)])) * 0.5,
        )
        plan = compile_clause(cl, {"A": Block(N, P)})
        env0 = {"A": np.random.default_rng(0).random(N)}
        with pytest.raises(FusedStrictError, match="RACE"):
            run_distributed(plan, copy_env(env0), backend="mpi",
                            strict=True)
        with pytest.raises(FusedStrictError, match="RACE"):
            run_shared(plan, copy_env(env0), backend="mpi", strict=True)


class TestFaultInjection:
    """A failing rank must surface as MpiRankError naming phase and
    rank, citing the schedule certificate — and tear down cleanly: no
    stray stub threads, no shm segments, no mpiexec children."""

    def test_fault_names_rank_phase_and_certificate(self, stub_mode):
        plan, env0 = stencil_plan(), env1d()
        with pytest.raises(MpiRankError) as err:
            run_distributed_mpi(plan.ir, copy_env(env0), processes=P,
                                _fault_rank=1)
        e = err.value
        assert e.rank == 1
        assert e.phase not in ("", "?")
        msg = str(e)
        assert "injected fault" in msg
        assert "[SCHED certificate" in msg

    def test_fault_leaves_no_stray_resources(self, stub_mode):
        plan, env0 = stencil_plan(), env1d()
        with pytest.raises(MpiRankError):
            run_distributed_mpi(plan.ir, copy_env(env0), processes=P,
                                _fault_rank=2)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            alive = [t for t in threading.enumerate()
                     if t.name.startswith("repro-mpi-stub")]
            if not alive:
                break
            time.sleep(0.05)
        assert alive == [], "stub rank threads outlived the failed run"
        if os.path.isdir("/dev/shm"):
            leaked = [f for f in os.listdir("/dev/shm")
                      if f.startswith("repro-mpi")]
            assert leaked == []
        if shutil.which("ps"):
            out = subprocess.run(
                ["ps", "--ppid", str(os.getpid()), "-o", "comm="],
                capture_output=True, text=True).stdout
            assert "mpiexec" not in out

    def test_world_recovers_after_fault(self, stub_mode):
        plan, env0 = stencil_plan(), env1d()
        with pytest.raises(MpiRankError):
            run_distributed_mpi(plan.ir, copy_env(env0), processes=P,
                                _fault_rank=0)
        ref = evaluate_clause(stencil_clause(), copy_env(env0))["A"]
        m = run_distributed_mpi(plan.ir, copy_env(env0), processes=P)
        assert np.array_equal(m.collect("A"), ref)


def _fake_launcher(tmp_path, body):
    script = tmp_path / "mpiexec"
    script.write_text("#!/bin/sh\n" + body)
    script.chmod(0o755)
    return str(script)


def _tiny_job():
    return MpiJob(progs=(), flags=(), names=("A",), timeout=5.0)


class TestLauncherProtocol:
    """launch_job against fake mpiexec scripts: failure modes must be
    loud, fast, and leave no temp dirs or process groups behind."""

    def _tmp_jobdirs(self):
        root = tempfile.gettempdir()
        return {d for d in os.listdir(root) if d.startswith("repro-mpi-")}

    def test_nonzero_exit_raises_with_stderr(self, monkeypatch,
                                             tmp_path):
        monkeypatch.setenv("REPRO_MPIEXEC", _fake_launcher(
            tmp_path, 'echo "boom: no fabric" >&2\nexit 3\n'))
        before = self._tmp_jobdirs()
        with pytest.raises(MpiLaunchError) as err:
            launch_job(_tiny_job(), {"A": np.zeros(4)}, 2, 5.0)
        assert "status 3" in str(err.value)
        assert "boom: no fabric" in str(err.value)
        assert self._tmp_jobdirs() == before    # jobdir cleaned up

    def test_timeout_kills_process_group(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_MPIEXEC", _fake_launcher(
            tmp_path, "sleep 60\n"))
        t0 = time.monotonic()
        with pytest.raises(MpiLaunchError, match="timeout"):
            launch_job(_tiny_job(), {"A": np.zeros(4)}, 2, 1.0)
        assert time.monotonic() - t0 < 30.0
        if shutil.which("ps"):
            out = subprocess.run(
                ["ps", "--ppid", str(os.getpid()), "-o", "comm="],
                capture_output=True, text=True).stdout
            assert "sleep" not in out

    def test_silent_success_raises_no_result(self, monkeypatch,
                                             tmp_path):
        monkeypatch.setenv("REPRO_MPIEXEC", _fake_launcher(
            tmp_path, "exit 0\n"))
        with pytest.raises(MpiLaunchError, match="no result"):
            launch_job(_tiny_job(), {"A": np.zeros(4)}, 2, 5.0)


class TestFusedFallback:
    def test_unavailable_falls_back_with_trace_note(self, no_mpi):
        plan, env0 = stencil_plan(), env1d()
        mf = run_distributed(plan, copy_env(env0), backend="fused")
        mm = run_distributed(plan, copy_env(env0), backend="mpi")
        assert not getattr(mm, "is_mpi", False)
        assert np.array_equal(mf.collect("A"), mm.collect("A"))
        notes = "\n".join(plan.trace.notes)
        assert "backend='mpi' fell back to the fused path" in notes

    def test_replicated_write_falls_back(self, stub_mode):
        from repro.decomp import Replicated

        cl = stencil_clause()
        plan = compile_clause(cl, {"A": Replicated(N, P),
                                   "B": Block(N, P)})
        env0 = env1d(4)
        ref = evaluate_clause(cl, copy_env(env0))["A"]
        mm = run_distributed(plan, copy_env(env0), backend="mpi")
        assert not getattr(mm, "is_mpi", False)
        assert np.array_equal(mm.collect("A"), ref)


PROGRAM = """
for i := 1 to n - 2 par do
    A[i] := B[i - 1] + B[i + 1];
od
"""


@pytest.fixture
def prog_file(tmp_path):
    f = tmp_path / "prog.pal"
    f.write_text(PROGRAM)
    return str(f)


def _run_args(prog_file, *extra):
    return ["run", prog_file, "--pmax", "4",
            "--array", f"A=block:{N}", "--array", f"B=block:{N}",
            "--param", f"n={N}"] + list(extra)


class TestCLI:
    def test_run_backend_mpi_np(self, stub_mode, prog_file, capsys):
        rc = main(_run_args(prog_file, "--backend", "mpi", "--np", "2",
                            "--stats"))
        cap = capsys.readouterr()
        assert rc == 0
        assert "OK" in cap.out
        assert "tier unavailable" not in cap.err

    def test_run_unavailable_notes_fallback(self, no_mpi, prog_file,
                                            capsys):
        rc = main(_run_args(prog_file, "--backend", "mpi"))
        cap = capsys.readouterr()
        assert rc == 0
        assert "OK" in cap.out
        assert "mpi tier unavailable" in cap.err
        assert "running the fused fallback" in cap.err

    def test_compile_explain_shows_rank_mapping(self, stub_mode,
                                                prog_file, capsys):
        rc = main(["compile", prog_file, "--pmax", "4",
                   "--array", f"A=block:{N}", "--array", f"B=block:{N}",
                   "--param", f"n={N}", "--backend", "mpi", "--explain",
                   "--np", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "# mpi tier:" in out
        assert "rank mapping: 2 rank(s)" in out
        assert "rank 0 <- nodes [0, 2]" in out
        assert "rank 1 <- nodes [1, 3]" in out

    def test_calibrate_json(self, capsys):
        rc = main(["calibrate", "--sizes", "1,64", "--reps", "3",
                   "--json"])
        out = capsys.readouterr().out
        assert rc == 0
        data = json.loads(out)
        assert data["alpha_s"] >= 0.0
        assert data["beta_s"] >= 0.0
        assert data["t_element_s"] > 0.0
        assert data["method"] in ("mpi-pingpong", "pipe-pingpong")
        assert len(data["points"]) == 2


class TestCalibration:
    def test_fit_recovers_exact_affine(self):
        alpha, beta = fit_alpha_beta(
            [(n, 1e-5 + 2e-9 * n) for n in (1, 10, 100, 1000)])
        assert alpha == pytest.approx(1e-5, rel=1e-6)
        assert beta == pytest.approx(2e-9, rel=1e-6)

    def test_fit_clamps_noise_negatives(self):
        alpha, beta = fit_alpha_beta([(1, 5e-6), (1000, 1e-6)])
        assert alpha >= 0.0 and beta == 0.0

    def test_measure_t_element_positive(self):
        assert measure_t_element(n=1 << 12, reps=3) > 0.0

    def test_description_roundtrip_and_env_loader(self, tmp_path,
                                                  monkeypatch):
        md = MachineDescription(alpha_s=3e-5, beta_s=4e-10,
                                t_element_s=2e-9, method="pipe-pingpong",
                                points=((1, 3e-5), (64, 3.1e-5)),
                                meta={"reps": 5})
        path = str(tmp_path / "machine.json")
        md.save(path)
        back = MachineDescription.load(path)
        assert back == md
        monkeypatch.setenv("REPRO_MACHINE_FILE", path)
        assert load_machine() == md
        cm = md.cost_model()
        assert cm.t_update == 1.0
        assert cm.alpha == pytest.approx(3e-5 / 2e-9)
        monkeypatch.setenv("REPRO_MACHINE_FILE",
                           str(tmp_path / "missing.json"))
        assert load_machine() is None

    def test_cost_model_loader_falls_back_to_preset(self, monkeypatch):
        from repro.machine import HYPERCUBE, default_cost_model

        monkeypatch.delenv("REPRO_MACHINE_FILE", raising=False)
        assert default_cost_model() is HYPERCUBE
