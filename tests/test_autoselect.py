"""Tests for automatic decomposition selection."""

import numpy as np
import pytest

from repro.codegen.autoselect import (
    assignment_cost,
    candidate_decompositions,
    choose_dynamic,
    choose_static,
)
from repro.core import (
    AffineF,
    Clause,
    IndexSet,
    Program,
    Ref,
    SeparableMap,
    copy_env,
    evaluate_program,
)
from repro.decomp import Block, BlockScatter, Replicated, Scatter
from repro.machine import ETHERNET_CLUSTER, HYPERCUBE, CostModel

N, PMAX = 64, 4


def stencil(write="A", read="B", n=N):
    return Clause(
        IndexSet.range1d(1, n - 2),
        Ref(write, SeparableMap([AffineF(1, 0)])),
        Ref(read, SeparableMap([AffineF(1, -1)]))
        + Ref(read, SeparableMap([AffineF(1, 1)])),
    )


def prefix(write="A", n=N):
    return Clause(
        IndexSet.range1d(0, n // 4 - 1),
        Ref(write, SeparableMap([AffineF(1, 0)])),
        Ref(write, SeparableMap([AffineF(1, 0)])) * 2,
    )


def env_for(rng, names=("A", "B")):
    return {k: rng.random(N) for k in names}


class TestCandidates:
    def test_default_set(self):
        cands = candidate_decompositions(N, PMAX)
        kinds = {type(c) for c in cands}
        assert Block in kinds and Scatter in kinds and BlockScatter in kinds
        assert Replicated not in kinds

    def test_read_only_gets_replicated(self):
        cands = candidate_decompositions(N, PMAX, read_only=True)
        assert any(isinstance(c, Replicated) for c in cands)

    def test_bs_sizes_filtered(self):
        cands = candidate_decompositions(4, 4, bs_sizes=(2, 64))
        assert not any(
            isinstance(c, BlockScatter) and c.b == 64 for c in cands
        )


class TestAssignmentCost:
    def test_cost_is_positive_and_model_sensitive(self, rng):
        prog = Program([stencil()])
        env = env_for(rng)
        decomps = {"A": Block(N, PMAX), "B": Scatter(N, PMAX)}
        c1 = assignment_cost(prog, decomps, env, HYPERCUBE)
        c2 = assignment_cost(prog, decomps, env, ETHERNET_CLUSTER)
        assert 0 < c1 < c2  # ethernet punishes the same messages harder

    def test_cost_threads_state_between_clauses(self, rng):
        # second clause reads what the first wrote; must not crash and
        # must match semantics
        prog = Program([stencil("A", "B"), stencil("C", "A")])
        env = {k: rng.random(N) for k in "ABC"}
        decomps = {k: Block(N, PMAX) for k in "ABC"}
        cost = assignment_cost(prog, decomps, env, HYPERCUBE)
        assert cost > 0


class TestStaticChoice:
    def test_replicates_read_only_operand(self, rng):
        sc = choose_static(Program([stencil()]), env_for(rng), PMAX,
                           ETHERNET_CLUSTER)
        assert isinstance(sc.best["B"], Replicated)

    def test_never_replicates_written_array(self, rng):
        sc = choose_static(Program([stencil()]), env_for(rng), PMAX,
                           HYPERCUBE)
        assert not isinstance(sc.best["A"], Replicated)

    def test_ranking_sorted(self, rng):
        sc = choose_static(Program([prefix()]), {"A": rng.random(N)},
                           PMAX, HYPERCUBE)
        costs = [c for _d, c in sc.ranking]
        assert costs == sorted(costs)
        assert sc.cost == costs[0]

    def test_prefix_workload_prefers_scatter(self, rng):
        sc = choose_static(Program([prefix()]), {"A": rng.random(N)},
                           PMAX, HYPERCUBE)
        assert isinstance(sc.best["A"], Scatter)

    def test_stencil_with_written_operand_prefers_alignment(self, rng):
        # B is also written (so not replicable): block/block alignment
        # should win on a latency-dominated machine
        prog = Program([stencil("B", "B", n=N), stencil("A", "B")])
        sc = choose_static(prog, env_for(rng), PMAX, ETHERNET_CLUSTER)
        assert isinstance(sc.best["A"], Block)
        assert isinstance(sc.best["B"], Block)

    def test_describe(self, rng):
        sc = choose_static(Program([prefix()]), {"A": rng.random(N)},
                           PMAX, HYPERCUBE)
        assert "A=" in sc.describe()


class TestDynamicChoice:
    def test_dynamic_never_worse_than_static(self, rng):
        prog = Program([stencil("B", "B"), prefix("B")])
        dc = choose_dynamic(prog, {"B": rng.random(N)}, PMAX, HYPERCUBE)
        assert dc.cost <= dc.static_cost + 1e-9

    def test_dynamic_switches_when_it_pays(self, rng):
        # a latency-light machine makes redistribution cheap: between a
        # block-friendly stencil phase and a scatter-friendly prefix
        # phase the DP should switch layouts mid-program
        model = CostModel("cheap-comm", alpha=1.0, beta=0.05, t_barrier=1.0,
                          t_test=0.5)
        prog = Program([stencil("B", "B"), prefix("B")])
        candidates = {"B": [Block(N, PMAX), Scatter(N, PMAX)]}
        dc = choose_dynamic(prog, {"B": rng.random(N)}, PMAX, model,
                            candidates=candidates)
        k0 = type(dc.per_phase[0]["B"]).__name__
        k1 = type(dc.per_phase[1]["B"]).__name__
        assert dc.cost < dc.static_cost
        assert (k0, k1) == ("Block", "Scatter")

    def test_per_phase_length(self, rng):
        prog = Program([prefix("B"), prefix("B"), prefix("B")])
        dc = choose_dynamic(prog, {"B": rng.random(N)}, PMAX, HYPERCUBE)
        assert len(dc.per_phase) == 3

    def test_describe(self, rng):
        prog = Program([prefix("B")])
        dc = choose_dynamic(prog, {"B": rng.random(N)}, PMAX, HYPERCUBE)
        assert "phase 0" in dc.describe()
