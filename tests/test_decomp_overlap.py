"""Tests for overlapped (halo) block decompositions (paper §5 extension)."""

import pytest

from repro.decomp import OverlappedBlock, halo_exchange_plan


class TestResidence:
    def test_ownership_is_plain_block(self):
        d = OverlappedBlock(16, 4, halo=1)
        assert d.owned(1) == [4, 5, 6, 7]

    def test_resident_range_extends_by_halo(self):
        d = OverlappedBlock(16, 4, halo=1)
        assert d.resident_range(1) == (3, 8)

    def test_resident_range_clips_at_edges(self):
        d = OverlappedBlock(16, 4, halo=2)
        assert d.resident_range(0) == (0, 5)
        assert d.resident_range(3) == (10, 15)

    def test_is_resident(self):
        d = OverlappedBlock(16, 4, halo=1)
        assert d.is_resident(1, 3)   # left halo
        assert d.is_resident(1, 8)   # right halo
        assert not d.is_resident(1, 2)

    def test_local_slot_offsets_by_left_halo(self):
        d = OverlappedBlock(16, 4, halo=1)
        assert d.local_slot(1, 3) == 0   # halo element first
        assert d.local_slot(1, 4) == 1   # first owned element
        assert d.local_slot(0, 0) == 0   # no left halo at the boundary

    def test_local_slot_rejects_nonresident(self):
        d = OverlappedBlock(16, 4, halo=1)
        with pytest.raises(KeyError):
            d.local_slot(1, 0)

    def test_resident_size(self):
        d = OverlappedBlock(16, 4, halo=1)
        assert d.resident_size(0) == 5
        assert d.resident_size(1) == 6

    def test_negative_halo_rejected(self):
        with pytest.raises(ValueError):
            OverlappedBlock(16, 4, halo=-1)

    def test_zero_halo_degenerates_to_block(self):
        d = OverlappedBlock(16, 4, halo=0)
        for p in range(4):
            lo, hi = d.resident_range(p)
            assert [lo, hi] == [d.owned(p)[0], d.owned(p)[-1]]


class TestHaloExchange:
    def test_every_halo_element_covered(self):
        d = OverlappedBlock(16, 4, halo=2)
        plan = halo_exchange_plan(d)
        got = set()
        for (src, dst), transfers in plan.items():
            for t in transfers:
                assert t.src_proc == src
                assert t.dst_proc == dst
                assert d.proc(t.global_index) == src
                assert d.is_resident(dst, t.global_index)
                assert d.proc(t.global_index) != dst
                got.add((dst, t.global_index))
        want = set()
        for p in range(4):
            lo, hi = d.resident_range(p)
            for i in range(lo, hi + 1):
                if d.proc(i) != p:
                    want.add((p, i))
        assert got == want

    def test_slots_match_local_slot(self):
        d = OverlappedBlock(16, 4, halo=1)
        for transfers in halo_exchange_plan(d).values():
            for t in transfers:
                assert t.dst_slot == d.local_slot(t.dst_proc, t.global_index)

    def test_interior_neighbours_only_for_small_halo(self):
        d = OverlappedBlock(16, 4, halo=1)
        for (src, dst) in halo_exchange_plan(d):
            assert abs(src - dst) == 1

    def test_zero_halo_no_exchange(self):
        assert halo_exchange_plan(OverlappedBlock(16, 4, halo=0)) == {}

    def test_message_volume(self):
        d = OverlappedBlock(16, 4, halo=1)
        plan = halo_exchange_plan(d)
        # 3 interior boundaries, 2 copies each
        assert sum(len(v) for v in plan.values()) == 6
