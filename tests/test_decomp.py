"""Tests for block / scatter / block-scatter decompositions (Fig. 2, §3.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.decomp import (
    Block,
    BlockScatter,
    Replicated,
    Scatter,
    SingleOwner,
)

from .conftest import decompositions


class TestFig2Layouts:
    """The exact processor layouts of paper Fig. 2 (n=15, pmax=4)."""

    def test_fig2a_blockscatter_b2(self):
        d = BlockScatter(15, 4, 2)
        assert d.layout() == [0, 0, 1, 1, 2, 2, 3, 3, 0, 0, 1, 1, 2, 2, 3]

    def test_fig2b_block(self):
        d = Block(15, 4)
        assert d.layout() == [0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3]

    def test_fig2c_scatter(self):
        d = Scatter(15, 4)
        assert d.layout() == [0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2]


class TestBlockScatter:
    def test_paper_formulas(self):
        d = BlockScatter(32, 4, 3)
        for i in range(32):
            assert d.proc(i) == (i // 3) % 4
            assert d.local(i) == 3 * (i // 12) + i % 3

    def test_courses(self):
        assert BlockScatter(15, 4, 2).courses() == 2
        assert BlockScatter(16, 4, 2).courses() == 2
        assert BlockScatter(17, 4, 2).courses() == 3

    def test_owned_increasing(self):
        d = BlockScatter(20, 3, 2)
        for p in range(3):
            own = d.owned(p)
            assert own == sorted(own)
            assert all(d.proc(i) == p for i in own)

    def test_owned_partition(self):
        d = BlockScatter(23, 4, 3)
        union = sorted(i for p in range(4) for i in d.owned(p))
        assert union == list(range(23))

    def test_global_index_roundtrip(self):
        d = BlockScatter(23, 4, 3)
        for i in range(23):
            p, l = d.place(i)
            assert d.global_index(p, l) == i

    def test_global_index_invalid(self):
        d = BlockScatter(10, 4, 2)
        with pytest.raises(KeyError):
            d.global_index(3, 99)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BlockScatter(10, 4, 0)
        with pytest.raises(ValueError):
            BlockScatter(10, 0, 1)
        with pytest.raises(ValueError):
            BlockScatter(-1, 4, 1)

    def test_local_size_dense(self):
        d = BlockScatter(15, 4, 2)
        for p in range(4):
            locs = sorted(d.local(i) for i in d.owned(p))
            assert locs == list(range(d.local_size(p)))


class TestBlock:
    def test_is_single_course_blockscatter(self):
        b, bs = Block(16, 4), BlockScatter(16, 4, 4)
        assert b.layout() == bs.layout()

    def test_default_block_size_ceil(self):
        assert Block(15, 4).b == 4
        assert Block(16, 4).b == 4
        assert Block(17, 4).b == 5

    def test_explicit_block_size_too_small(self):
        with pytest.raises(ValueError):
            Block(20, 4, b=4)  # 4*4 < 20

    def test_last_processor_partial_block(self):
        d = Block(10, 4)  # b = 3: owner 3 gets only index 9
        assert d.owned(3) == [9]
        assert d.local_size(3) == 1

    def test_empty_processor(self):
        d = Block(4, 8)  # b=1, processors 4..7 own nothing
        assert d.owned(7) == []
        assert d.local_size(7) == 0

    def test_global_index(self):
        d = Block(15, 4)
        assert d.global_index(2, 1) == 9
        with pytest.raises(KeyError):
            d.global_index(3, 3)  # index 15 out of range


class TestScatter:
    def test_formulas(self):
        d = Scatter(17, 5)
        for i in range(17):
            assert d.proc(i) == i % 5
            assert d.local(i) == i // 5

    def test_owned_stride(self):
        d = Scatter(17, 5)
        assert d.owned(2) == [2, 7, 12]

    def test_is_bs1(self):
        assert Scatter(15, 4).layout() == BlockScatter(15, 4, 1).layout()

    def test_global_index(self):
        d = Scatter(17, 5)
        assert d.global_index(2, 1) == 7
        with pytest.raises(KeyError):
            d.global_index(4, 4)  # would be 24 >= 17


class TestDegenerate:
    def test_single_owner(self):
        d = SingleOwner(10, 4, owner=2)
        assert set(d.layout()) == {2}
        assert d.owned(2) == list(range(10))
        assert d.owned(0) == []
        assert d.local_size(2) == 10
        assert d.local_size(1) == 0

    def test_single_owner_range_check(self):
        with pytest.raises(ValueError):
            SingleOwner(10, 4, owner=4)

    def test_replicated_everyone_holds_everything(self):
        d = Replicated(10, 4)
        for p in range(4):
            assert d.owned(p) == list(range(10))
            assert d.local_size(p) == 10
        assert d.is_replicated

    def test_replicated_validate_no_bijection_demand(self):
        Replicated(10, 4).validate()  # must not raise


class TestBijectivityProperty:
    @given(decompositions())
    @settings(max_examples=200)
    def test_every_decomposition_is_a_bijection(self, d):
        d.validate()

    @given(decompositions())
    @settings(max_examples=100)
    def test_owned_matches_proc(self, d):
        for p in range(d.pmax):
            assert d.owned(p) == [i for i in range(d.n) if d.proc(i) == p]

    @given(decompositions())
    @settings(max_examples=100)
    def test_roundtrip_place_global(self, d):
        for i in range(d.n):
            p, l = d.place(i)
            assert d.global_index(p, l) == i

    @given(decompositions())
    @settings(max_examples=100)
    def test_local_indices_dense_per_processor(self, d):
        for p in range(d.pmax):
            locs = sorted(d.local(i) for i in d.owned(p))
            assert locs == list(range(len(locs)))
