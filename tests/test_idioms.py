"""Tests for reduction idiom recognition."""

import numpy as np
import pytest

from repro.codegen.idioms import (
    recognize_reduction,
    run_clause_or_reduction,
)
from repro.core import (
    PAR,
    SEQ,
    AffineF,
    BinOp,
    Clause,
    ConstantF,
    IndexSet,
    Ref,
    SeparableMap,
    copy_env,
    evaluate_clause,
)
from repro.decomp import Block, Scatter, SingleOwner
from repro.frontend import translate_source

N, PMAX = 32, 4


def acc_ref(slot=0, name="s"):
    return Ref(name, SeparableMap([ConstantF(slot)]))


def accumulation_clause(op="+", slot=0, guard=None, body=None,
                        ordering=SEQ):
    body = body or Ref("B", SeparableMap([AffineF(1, 0)])) * 2
    return Clause(
        IndexSet.range1d(0, N - 1),
        acc_ref(slot),
        BinOp(op, acc_ref(slot), body),
        ordering=ordering,
        guard=guard,
    )


class TestRecognition:
    def test_sum_idiom(self):
        rec = recognize_reduction(accumulation_clause("+"))
        assert rec is not None
        assert rec.op == "+"
        assert rec.accumulator == "s"
        assert rec.slot == 0

    @pytest.mark.parametrize("op", ["*", "min", "max"])
    def test_other_ops(self, op):
        assert recognize_reduction(accumulation_clause(op)).op == op

    def test_accumulator_on_right(self):
        cl = Clause(
            IndexSet.range1d(0, N - 1),
            acc_ref(),
            BinOp("+", Ref("B", SeparableMap([AffineF(1, 0)])), acc_ref()),
            ordering=SEQ,
        )
        assert recognize_reduction(cl) is not None

    def test_par_clause_not_matched(self):
        assert recognize_reduction(accumulation_clause(ordering=PAR)) is None

    def test_non_reducible_op(self):
        assert recognize_reduction(accumulation_clause("-")) is None

    def test_non_constant_target_not_matched(self):
        cl = Clause(
            IndexSet.range1d(0, N - 1),
            Ref("s", SeparableMap([AffineF(1, 0)])),
            BinOp("+", Ref("s", SeparableMap([AffineF(1, 0)])),
                  Ref("B", SeparableMap([AffineF(1, 0)]))),
            ordering=SEQ,
        )
        assert recognize_reduction(cl) is None

    def test_mismatched_slot_not_matched(self):
        cl = Clause(
            IndexSet.range1d(0, N - 1),
            acc_ref(0),
            BinOp("+", acc_ref(1), Ref("B", SeparableMap([AffineF(1, 0)]))),
            ordering=SEQ,
        )
        assert recognize_reduction(cl) is None

    def test_body_reading_accumulator_not_matched(self):
        # s[0] := s[0] + s[i]: a genuine recurrence
        body = Ref("s", SeparableMap([AffineF(1, 0)]))
        assert recognize_reduction(accumulation_clause(body=body)) is None

    def test_frontend_accumulation_recognized(self):
        prog = translate_source("""
            for i := 0 to 31 seq do
                s[0] := s[0] + B[i] * B[i];
            od
        """)
        rec = recognize_reduction(prog.clauses[0])
        assert rec is not None
        assert rec.op == "+"


class TestExecution:
    def env(self, rng):
        return {"s": np.array([5.0]), "B": rng.random(N)}

    def decomps(self):
        return {"s": SingleOwner(1, PMAX, 0), "B": Scatter(N, PMAX)}

    def test_reduction_path_taken_and_correct(self, rng):
        cl = accumulation_clause("+")
        env = self.env(rng)
        ref = evaluate_clause(cl, copy_env(env))["s"]
        m, path = run_clause_or_reduction(cl, self.decomps(), copy_env(env))
        assert path == "reduction"
        assert np.isclose(m.collect("s")[0], ref[0])

    def test_initial_accumulator_value_folded(self, rng):
        cl = accumulation_clause("+")
        env = self.env(rng)  # s starts at 5.0
        m, _ = run_clause_or_reduction(cl, self.decomps(), copy_env(env))
        assert np.isclose(m.collect("s")[0], 5.0 + 2 * env["B"].sum())

    def test_template_path_for_ordinary_clause(self, rng):
        cl = Clause(
            IndexSet.range1d(0, N - 1),
            Ref("A", SeparableMap([AffineF(1, 0)])),
            Ref("B", SeparableMap([AffineF(1, 0)])) + 1,
            ordering=PAR,
        )
        env = {"A": np.zeros(N), "B": rng.random(N)}
        decomps = {"A": Block(N, PMAX), "B": Block(N, PMAX)}
        ref = evaluate_clause(cl, copy_env(env))["A"]
        m, path = run_clause_or_reduction(cl, decomps, copy_env(env))
        assert path == "template"
        assert np.allclose(m.collect("A"), ref)

    def test_max_reduction(self, rng):
        cl = accumulation_clause("max")
        env = {"s": np.array([-1e9]), "B": rng.random(N)}
        ref = evaluate_clause(cl, copy_env(env))["s"]
        m, path = run_clause_or_reduction(cl, self.decomps(), copy_env(env))
        assert path == "reduction"
        assert np.isclose(m.collect("s")[0], ref[0])

    def test_guarded_reduction(self, rng):
        guard = Ref("B", SeparableMap([AffineF(1, 0)])) > 0.5
        cl = accumulation_clause("+", guard=guard)
        env = self.env(rng)
        ref = evaluate_clause(cl, copy_env(env))["s"]
        m, path = run_clause_or_reduction(cl, self.decomps(), copy_env(env))
        assert path == "reduction"
        assert np.isclose(m.collect("s")[0], ref[0])
