"""Tests for redistribution planning (dynamic decompositions, §1/§5)."""

import pytest
from hypothesis import given, settings

from repro.decomp import (
    Block,
    BlockScatter,
    Scatter,
    SingleOwner,
    plan_redistribution,
)

from .conftest import decompositions


class TestPlanShape:
    def test_identity_redistribution_moves_nothing(self):
        d = Block(16, 4)
        plan = plan_redistribution(d, Block(16, 4))
        assert plan.moved_elements() == 0
        assert plan.message_count() == 0
        assert plan.stay_elements() == 16

    def test_block_to_scatter_moves_most(self):
        src, dst = Block(16, 4), Scatter(16, 4)
        plan = plan_redistribution(src, dst)
        # each processor keeps exactly the elements where block owner ==
        # scatter owner
        keep = sum(
            1 for i in range(16) if src.proc(i) == dst.proc(i)
        )
        assert plan.stay_elements() == keep
        assert plan.moved_elements() == 16 - keep

    def test_transfers_respect_placements(self):
        src, dst = Block(20, 4), BlockScatter(20, 4, 2)
        plan = plan_redistribution(src, dst)
        for (p, q), triples in plan.messages.items():
            assert p != q
            for sl, dl, gi in triples:
                assert src.place(gi) == (p, sl)
                assert dst.place(gi) == (q, dl)

    def test_stay_respects_placements(self):
        src, dst = Block(20, 4), Scatter(20, 4)
        plan = plan_redistribution(src, dst)
        for p, pairs in plan.stay.items():
            own = {src.local(i): i for i in src.owned(p)}
            for sl, dl in pairs:
                gi = own[sl]
                assert dst.place(gi) == (p, dl)

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            plan_redistribution(Block(10, 4), Block(12, 4))

    def test_pmax_mismatch_rejected(self):
        with pytest.raises(ValueError):
            plan_redistribution(Block(10, 4), Block(10, 5))


class TestStatistics:
    def test_volume_by_pair(self):
        plan = plan_redistribution(Block(16, 4), Scatter(16, 4))
        vol = plan.volume_by_pair()
        assert sum(vol.values()) == plan.moved_elements()

    def test_gather_to_single_owner_fan_in(self):
        plan = plan_redistribution(Block(16, 4), SingleOwner(16, 4, 0))
        # processors 1..3 each send exactly one message to 0
        assert plan.message_count() == 3
        assert all(q == 0 for (_p, q) in plan.messages)
        assert plan.moved_elements() == 12

    def test_broadcast_from_single_owner_fan_out(self):
        plan = plan_redistribution(SingleOwner(16, 4, 1), Block(16, 4))
        assert plan.max_fan_out() == 3
        assert plan.moved_elements() == 12


class TestConservationProperty:
    @given(decompositions(max_n=40, max_p=6), decompositions(max_n=40, max_p=6))
    @settings(max_examples=120)
    def test_every_element_accounted_once(self, src, dst):
        if src.n != dst.n or src.pmax != dst.pmax:
            return
        plan = plan_redistribution(src, dst)
        assert plan.moved_elements() + plan.stay_elements() == src.n
