"""The arithmetic helpers embedded in generated source must agree with
the library implementations they mirror — a guard against the two
drifting apart."""

import math

from hypothesis import given, settings, strategies as st

from repro.codegen.gensrc import SUPPORT_HELPERS
from repro.core.ifunc import ceil_div, floor_div
from repro.diophantine import solve_scatter_congruence

_ns = {}
exec(SUPPORT_HELPERS, _ns)
gen_ceil = _ns["_ceil_div"]
gen_floor = _ns["_floor_div"]
gen_solve = _ns["_solve_congruence"]


class TestDivisionHelpers:
    @given(st.integers(-10**6, 10**6), st.integers(-1000, 1000).filter(bool))
    def test_ceil_matches_library(self, a, b):
        assert gen_ceil(a, b) == ceil_div(a, b)

    @given(st.integers(-10**6, 10**6), st.integers(-1000, 1000).filter(bool))
    def test_floor_matches_library(self, a, b):
        assert gen_floor(a, b) == floor_div(a, b)


class TestCongruenceHelper:
    @given(
        st.integers(-9, 9).filter(bool),
        st.integers(-12, 12),
        st.integers(1, 16),
        st.integers(0, 15),
    )
    @settings(max_examples=500)
    def test_matches_diophantine_module(self, a, c, pmax, p):
        if p >= pmax:
            return
        lib = solve_scatter_congruence(a, c, pmax, p)
        gen = gen_solve(a, c, pmax, p)
        if lib is None:
            assert gen is None
        else:
            assert gen is not None
            x0, stride = gen
            assert stride == lib.stride
            assert x0 % stride == lib.x0 % stride
            # and the progression actually solves the congruence
            for t in range(3):
                i = x0 + stride * t
                assert (a * i + c) % pmax == p

    def test_gcd_structure(self):
        # inactive processor example from the paper: 2i ≡ 1 (mod 4)
        assert gen_solve(2, 0, 4, 1) is None
        sol = gen_solve(2, 0, 4, 2)
        assert sol is not None and sol[1] == 2
