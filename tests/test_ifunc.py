"""Tests for the index-function algebra (paper Definitions 3-5, §3.3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ifunc import (
    AffineF,
    ComposedF,
    ConstantF,
    IdentityF,
    ModularF,
    MonotoneF,
    ceil_div,
    classify,
    floor_div,
)


class TestIntegerDivision:
    @given(st.integers(-1000, 1000), st.integers(-50, 50).filter(lambda b: b))
    def test_floor_div_matches_math(self, a, b):
        import math

        assert floor_div(a, b) == math.floor(a / b)

    @given(st.integers(-1000, 1000), st.integers(-50, 50).filter(lambda b: b))
    def test_ceil_div_matches_math(self, a, b):
        import math

        assert ceil_div(a, b) == math.ceil(a / b)

    def test_known_values(self):
        assert floor_div(7, 2) == 3
        assert floor_div(-7, 2) == -4
        assert ceil_div(7, 2) == 4
        assert ceil_div(-7, 2) == -3


class TestConstantF:
    def test_eval(self):
        assert ConstantF(5)(123) == 5

    def test_preimage_hit(self):
        assert ConstantF(5).preimage(0, 10, 3, 8) == [(3, 8)]

    def test_preimage_miss(self):
        assert ConstantF(11).preimage(0, 10, 3, 8) == []

    def test_classify(self):
        assert classify(ConstantF(0)) == "constant"

    def test_image_bounds(self):
        assert ConstantF(7).image_bounds(0, 100) == (7, 7)

    def test_equality(self):
        assert ConstantF(3) == ConstantF(3)
        assert ConstantF(3) != ConstantF(4)


class TestAffineF:
    def test_eval(self):
        assert AffineF(3, 2)(5) == 17

    def test_rejects_zero_slope(self):
        with pytest.raises(ValueError):
            AffineF(0, 1)

    def test_identity(self):
        f = IdentityF()
        assert f(42) == 42
        assert classify(f) == "shift"

    def test_monotone_direction(self):
        assert AffineF(2, 0).monotone_direction(0, 10) == 1
        assert AffineF(-2, 0).monotone_direction(0, 10) == -1

    def test_derivative_bound(self):
        assert AffineF(-3, 5).derivative_bound(0, 10) == 3.0

    @given(
        st.integers(-5, 5).filter(lambda a: a),
        st.integers(-10, 10),
        st.integers(-30, 30),
        st.integers(0, 40),
    )
    def test_preimage_is_exact(self, a, c, lo, span):
        hi = lo + span
        f = AffineF(a, c)
        got = []
        for jmin, jmax in f.preimage(lo, hi, -50, 50):
            got.extend(range(jmin, jmax + 1))
        want = [i for i in range(-50, 51) if lo <= f(i) <= hi]
        assert got == want

    def test_affine_composition_stays_affine(self):
        f = AffineF(2, 1).compose(AffineF(3, 4))
        assert isinstance(f, AffineF)
        # 2*(3i+4)+1 = 6i + 9
        assert (f.a, f.c) == (6, 9)

    def test_affine_of_constant_is_constant(self):
        f = AffineF(2, 1).compose(ConstantF(10))
        assert isinstance(f, ConstantF)
        assert f.c == 21

    def test_classify_shift_vs_affine(self):
        assert classify(AffineF(1, 3)) == "shift"
        assert classify(AffineF(2, 3)) == "affine"


class TestMonotoneF:
    def test_requires_valid_direction(self):
        with pytest.raises(ValueError):
            MonotoneF(lambda i: i, 0)

    @given(st.integers(-20, 60), st.integers(0, 60))
    def test_preimage_increasing(self, lo, span):
        hi = lo + span
        f = MonotoneF(lambda i: i + i // 4, 1, "i+i div 4")
        got = []
        for jmin, jmax in f.preimage(lo, hi, 0, 60):
            got.extend(range(jmin, jmax + 1))
        want = [i for i in range(0, 61) if lo <= f(i) <= hi]
        assert got == want

    @given(st.integers(-80, 20), st.integers(0, 60))
    def test_preimage_decreasing(self, lo, span):
        hi = lo + span
        f = MonotoneF(lambda i: -2 * i + 5, -1, "-2i+5")
        got = []
        for jmin, jmax in f.preimage(lo, hi, 0, 40):
            got.extend(range(jmin, jmax + 1))
        want = [i for i in range(0, 41) if lo <= f(i) <= hi]
        assert got == want

    def test_quadratic_preimage(self):
        f = MonotoneF(lambda i: i * i, 1, "i^2")
        assert f.preimage(9, 25, 0, 100) == [(3, 5)]

    def test_solve(self):
        f = MonotoneF(lambda i: i * i, 1, "i^2")
        assert f.solve(16, 0, 100) == [4]
        assert f.solve(17, 0, 100) == []

    def test_derivative_bound_explicit(self):
        f = MonotoneF(lambda i: 3 * i, 1, derivative_max=3.0)
        assert f.derivative_bound(0, 100) == 3.0

    def test_derivative_bound_sampled(self):
        f = MonotoneF(lambda i: i + i // 4, 1)
        assert 1.0 <= f.derivative_bound(0, 100) <= 2.0


class TestModularF:
    """§3.3: f(i) = g(i) mod z + d, e.g. the rotate f(i) = (i+6) mod 20."""

    def test_rotate_values(self):
        f = ModularF(AffineF(1, 6), 20)
        assert [f(i) for i in (0, 13, 14, 19)] == [6, 19, 0, 5]

    def test_rejects_nonpositive_modulus(self):
        with pytest.raises(ValueError):
            ModularF(AffineF(1, 0), 0)

    def test_injectivity_criterion(self):
        f = ModularF(AffineF(1, 6), 20)
        assert f.is_injective_on(0, 19)  # z=20 > g(19)-g(0)=19
        assert not f.is_injective_on(0, 20)

    def test_breakpoint_of_rotate(self):
        # g(i) = i+6 crosses 20 at i = 14
        f = ModularF(AffineF(1, 6), 20)
        assert f.breakpoints(0, 19) == [14]

    def test_no_breakpoint_within_one_period(self):
        f = ModularF(AffineF(1, 2), 100)
        assert f.breakpoints(0, 19) == []
        assert f.monotone_direction(0, 19) == 1

    def test_multiple_breakpoints(self):
        f = ModularF(AffineF(1, 0), 5)
        assert f.breakpoints(0, 14) == [5, 10]

    def test_pieces_reconstruct_function(self):
        f = ModularF(AffineF(2, 3), 11, d=1)
        for lo, hi, piece in f.pieces(0, 30):
            for i in range(lo, hi + 1):
                assert piece(i) == f(i), (lo, hi, i)

    def test_pieces_cover_range_exactly(self):
        f = ModularF(AffineF(1, 6), 20)
        pieces = f.pieces(0, 19)
        covered = []
        for lo, hi, _ in pieces:
            covered.extend(range(lo, hi + 1))
        assert covered == list(range(0, 20))

    @given(
        st.integers(1, 3), st.integers(0, 12), st.integers(3, 25),
        st.integers(0, 4), st.integers(0, 10), st.integers(0, 50),
    )
    @settings(max_examples=150)
    def test_preimage_is_exact(self, a, c, z, d, imin, span):
        imax = imin + span
        f = ModularF(AffineF(a, c), z, d)
        lo, hi = d + 1, d + z // 2
        got = []
        for jmin, jmax in f.preimage(lo, hi, imin, imax):
            got.extend(range(jmin, jmax + 1))
        want = [i for i in range(imin, imax + 1) if lo <= f(i) <= hi]
        assert got == want

    def test_classify(self):
        assert classify(ModularF(AffineF(1, 0), 7)) == "modular"


class TestComposedF:
    def test_eval(self):
        f = ComposedF(MonotoneF(lambda i: i * i, 1, "i^2"), AffineF(1, 1))
        assert f(3) == 16

    def test_preimage(self):
        # (i+1)^2 in [4, 16]  =>  i in [1, 3]
        f = ComposedF(MonotoneF(lambda i: i * i, 1, "i^2"), AffineF(1, 1))
        assert f.preimage(4, 16, 0, 50) == [(1, 3)]

    def test_monotone_direction_flips(self):
        f = ComposedF(AffineF(-1, 0), AffineF(-2, 0))
        assert f.monotone_direction(0, 10) == 1

    def test_image_bounds(self):
        f = ComposedF(AffineF(2, 0), AffineF(1, 3))
        assert f.image_bounds(0, 5) == (6, 16)
