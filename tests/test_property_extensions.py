"""Hypothesis property tests for the extension code generators:
DOACROSS pipelines, ND distributed generation, inspector/executor, and
the repeated-scatter affine fast path — each against the sequential
V-cal oracle or the naive membership definition."""

import numpy as np
from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.codegen.doacross import compile_doacross, run_doacross
from repro.codegen.inspector import build_schedule, compile_indirect, run_executor
from repro.codegen.nddist import (
    collect_nd,
    compile_clause_nd_dist,
    run_distributed_nd,
)
from repro.core import (
    PAR,
    SEQ,
    AffineF,
    Bounds,
    Clause,
    IdentityF,
    IndexSet,
    Ref,
    SeparableMap,
    copy_env,
    evaluate_clause,
)
from repro.core.ifunc import IndirectF
from repro.decomp import Block, BlockScatter, Collapsed, GridDecomposition, Scatter
from repro.machine import DistributedMachine
from repro.sets import Work, modify_naive
from repro.sets.enumerators import enum_repeated_scatter

SETTINGS = settings(
    max_examples=60, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _dec(kind, n, pmax, b):
    if kind == "block":
        return Block(n, pmax)
    if kind == "scatter":
        return Scatter(n, pmax)
    return BlockScatter(n, pmax, b)


dec_kind = st.sampled_from(["block", "scatter", "bs"])


class TestDoacrossProperty:
    @given(
        st.integers(6, 36), st.integers(1, 5), st.integers(1, 3),
        dec_kind, st.integers(1, 4), st.integers(0, 2**16), st.booleans(),
    )
    @SETTINGS
    def test_pipeline_equals_sequential_oracle(
        self, n, pmax, s, kind, b, seed, guarded
    ):
        dA = _dec(kind, n, pmax, b)
        dB = Scatter(n, pmax)
        guard = (Ref("B", SeparableMap([AffineF(1, 0)])) > 0.4
                 if guarded else None)
        cl = Clause(
            IndexSet.range1d(s, n - 1),
            Ref("A", SeparableMap([AffineF(1, 0)])),
            Ref("A", SeparableMap([AffineF(1, -s)])) * 0.5
            + Ref("B", SeparableMap([AffineF(1, 0)])),
            ordering=SEQ,
            guard=guard,
        )
        rng = np.random.default_rng(seed)
        env0 = {"A": rng.random(n), "B": rng.random(n)}
        ref = evaluate_clause(cl, copy_env(env0))["A"]
        plan = compile_doacross(cl, {"A": dA, "B": dB})
        m = run_doacross(plan, copy_env(env0))
        assert np.allclose(m.collect("A"), ref)


class TestNdDistProperty:
    @given(
        st.integers(3, 8), st.integers(3, 8),
        st.sampled_from(["block", "scatter"]),
        st.sampled_from(["block", "scatter", "collapsed"]),
        st.integers(0, 1), st.integers(0, 2**16),
    )
    @SETTINGS
    def test_2d_shift_equals_oracle(self, n, m, k0, k1, shift_axis, seed):
        def axis(kind, sz):
            if kind == "collapsed":
                return Collapsed(sz)
            return Block(sz, 2) if kind == "block" else Scatter(sz, 2)

        g = GridDecomposition([axis(k0, n), axis(k1, m)])
        fi = AffineF(1, 1) if shift_axis == 0 else IdentityF()
        fj = AffineF(1, 1) if shift_axis == 1 else IdentityF()
        hi0 = n - 1 - (1 if shift_axis == 0 else 0)
        hi1 = m - 1 - (1 if shift_axis == 1 else 0)
        cl = Clause(
            IndexSet(Bounds((0, 0), (hi0, hi1))),
            Ref("T", SeparableMap([IdentityF(), IdentityF()])),
            Ref("S", SeparableMap([fi, fj])) * 2,
        )
        rng = np.random.default_rng(seed)
        env0 = {"S": rng.random((n, m)), "T": np.zeros((n, m))}
        ref = evaluate_clause(cl, copy_env(env0))["T"]
        plan = compile_clause_nd_dist(cl, {"T": g, "S": g})
        mach = run_distributed_nd(plan, copy_env(env0))
        assert np.allclose(collect_nd(mach, "T"), ref)


class TestInspectorProperty:
    @given(
        st.integers(4, 32), st.integers(1, 5),
        st.sampled_from(["block", "scatter"]),
        st.sampled_from(["block", "scatter"]),
        st.integers(0, 2**16),
    )
    @SETTINGS
    def test_executor_equals_oracle(self, n, pmax, ka, kb, seed):
        rng = np.random.default_rng(seed)
        table = rng.integers(0, n, n)
        cl = Clause(
            IndexSet.range1d(0, n - 1),
            Ref("A", SeparableMap([AffineF(1, 0)])),
            Ref("B", SeparableMap([IndirectF(table)])) * 2 + 1,
        )
        env0 = {"A": np.zeros(n), "B": rng.random(n)}
        ref = evaluate_clause(cl, copy_env(env0))["A"]
        dA = _dec(ka, n, pmax, 2)
        dB = _dec(kb, n, pmax, 2)
        plan = compile_indirect(cl, {"A": dA, "B": dB})
        sched = build_schedule(plan)
        m = DistributedMachine(pmax)
        m.place("A", env0["A"], dA)
        m.place("B", env0["B"], dB)
        run_executor(sched, m)
        assert np.allclose(m.collect("A"), ref)


class TestRepeatedScatterFastPath:
    @given(
        st.integers(1, 60), st.integers(1, 8), st.integers(1, 6),
        st.sampled_from([2, 3, 4, 5, 6, 7, -2, -3, -5]),
        st.integers(-5, 10),
    )
    @settings(max_examples=300, deadline=None)
    def test_congruence_path_matches_naive(self, n, pmax, b, a, c):
        d = BlockScatter(n, pmax, b)
        f = AffineF(a, c)
        cand = [i for i in range(-20, 100) if 0 <= f(i) < n]
        assume(cand)
        imin, imax = min(cand), max(cand)
        assume(all(i in cand for i in range(imin, imax + 1)))
        for p in range(pmax):
            got = enum_repeated_scatter(d, f, imin, imax, p, Work()).indices()
            assert got == modify_naive(d, f, imin, imax, p)
