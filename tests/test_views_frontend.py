"""Tests for Booster-style view declarations in the front end (§2.5)."""

import numpy as np
import pytest

from repro.core import copy_env, evaluate_program
from repro.core.ifunc import AffineF, ConstantF, ModularF
from repro.decomp import Block, Scatter
from repro.codegen import compile_clause, run_distributed
from repro.frontend import TranslateError, parse, translate, translate_source
from repro.frontend import ast as A


class TestParsing:
    def test_view_decl_shape(self):
        prog = parse("view V[i] := A[2 * i + 1];")
        (decl,) = prog.body
        assert isinstance(decl, A.ViewDecl)
        assert decl.name == "V"
        assert decl.formals == ("i",)
        assert decl.target.name == "A"

    def test_multi_dim_view(self):
        prog = parse("view T[i, j] := M[j, i];")
        (decl,) = prog.body
        assert decl.formals == ("i", "j")
        assert len(decl.target.indices) == 2

    def test_view_requires_semicolon(self):
        with pytest.raises(Exception):
            parse("view V[i] := A[i]")


class TestTranslation:
    def test_simple_substitution(self):
        prog = translate_source("""
            view V[i] := A[2 * i + 1];
            for i := 0 to 4 par do B[i] := V[i]; od
        """)
        (cl,) = prog.clauses
        (read,) = list(cl.rhs.refs())
        assert read.name == "A"  # the view resolved away
        f = read.scalar_func()
        assert isinstance(f, AffineF) and (f.a, f.c) == (2, 1)

    def test_use_site_composition(self):
        # V[i+3] with V[j] := A[2j+1] gives A[2(i+3)+1] = A[2i+7]
        prog = translate_source("""
            view V[j] := A[2 * j + 1];
            for i := 0 to 4 par do B[i] := V[i + 3]; od
        """)
        f = list(prog.clauses[0].rhs.refs())[0].scalar_func()
        assert (f.a, f.c) == (2, 7)

    def test_view_of_view(self):
        prog = translate_source("""
            view V[j] := A[2 * j];
            view W[k] := V[k + 1];
            for i := 0 to 4 par do B[i] := W[3 * i]; od
        """)
        read = list(prog.clauses[0].rhs.refs())[0]
        assert read.name == "A"
        f = read.scalar_func()
        # W[k] = A[2(k+1)] = A[2k+2]; W[3i] = A[6i+2]
        assert (f.a, f.c) == (6, 2)

    def test_constant_use(self):
        prog = translate_source("""
            view V[j] := A[j + 5];
            for i := 0 to 4 par do B[i] := V[0]; od
        """)
        f = list(prog.clauses[0].rhs.refs())[0].scalar_func()
        assert isinstance(f, ConstantF) and f.c == 5

    def test_rotate_view(self):
        # the paper's §3.3 rotate expressed as a view
        prog = translate_source("""
            view R[i] := A[(i + 6) mod 20];
            for i := 0 to 19 par do B[i] := R[i]; od
        """)
        f = list(prog.clauses[0].rhs.refs())[0].scalar_func()
        assert isinstance(f, ModularF)
        assert (f.g.a, f.g.c, f.z) == (1, 6, 20)

    def test_view_on_lhs(self):
        prog = translate_source("""
            view V[i] := A[i + 2];
            for i := 0 to 4 par do V[i] := B[i]; od
        """)
        cl = prog.clauses[0]
        assert cl.lhs.name == "A"
        assert cl.lhs.scalar_func()(0) == 2

    def test_transposed_2d_view(self):
        prog = translate_source("""
            view T[i, j] := M[j, i];
            for i := 0 to 2 par do
              for j := 0 to 3 par do
                N[i, j] := T[i, j];
              od
            od
        """)
        read = list(prog.clauses[0].rhs.refs())[0]
        assert read.name == "M"
        # T[i,j] reads M[j,i]: output dim 0 (M's row) comes from loop dim 1
        assert read.imap((1, 2)) == (2, 1)

    def test_arity_mismatch(self):
        with pytest.raises(TranslateError, match="takes 1 indices"):
            translate_source("""
                view V[i] := A[i];
                for i := 0 to 4 par do B[i] := V[i, i]; od
            """)

    def test_duplicate_formals(self):
        with pytest.raises(TranslateError, match="duplicate view formals"):
            translate_source("view V[i, i] := M[i, i];")


class TestSemantics:
    def test_view_program_evaluates(self, rng):
        prog = translate_source("""
            view V[i] := A[2 * i + 1];
            view W[j] := V[j + 3];
            for i := 0 to 5 par do
                B[i] := W[i] + V[0];
            od
        """)
        env = {"A": np.arange(30.0), "B": np.zeros(6)}
        evaluate_program(prog, env)
        want = np.array([2 * i + 7 for i in range(6)], float) + 1.0
        assert np.allclose(env["B"], want)

    def test_view_clause_compiles_to_spmd(self, rng):
        # the resolved access function flows into Table I and codegen
        prog = translate_source("""
            view V[i] := A[2 * i + 1];
            for i := 0 to 9 par do B[i] := V[i]; od
        """)
        cl = prog.clauses[0]
        env0 = {"A": rng.random(21), "B": np.zeros(10)}
        ref = evaluate_program(prog, copy_env(env0))["B"]
        plan = compile_clause(cl, {"B": Block(10, 2), "A": Scatter(21, 2)})
        assert plan.rules()["read0:A"].startswith("thm3")
        m = run_distributed(plan, copy_env(env0))
        assert np.allclose(m.collect("B"), ref)
