"""The fused backend: compile-once node kernels, the kernel cache, the
dict-memory fallbacks, and strict verifier gating.

Bit-identity of fused results against every other backend lives in
``tests/test_pipeline_equiv.py::TestAllBackendsAgree``; this module
tests the machinery itself.
"""

import numpy as np
import pytest

from repro.codegen.dist_tmpl import run_distributed
from repro.codegen.plan import compile_clause
from repro.codegen.shared_tmpl import run_shared
from repro.core import (
    SEQ,
    AffineF,
    Bounds,
    Clause,
    IdentityF,
    IndexSet,
    Ref,
    SeparableMap,
    copy_env,
    evaluate_clause,
)
from repro.core.expr import BinOp
from repro.decomp import Block, GridDecomposition, Replicated, Scatter
from repro.machine.fused import FusedStrictError, run_shared_fused
from repro.pipeline import (
    clear_plan_cache,
    compile_plan,
    enable_plan_cache,
    kernel_cache_info,
    plan_cache_info,
)

N, P = 24, 4


def stencil_clause(ordering=None):
    kw = {} if ordering is None else {"ordering": ordering}
    return Clause(
        IndexSet(Bounds((1,), (N - 2,))),
        Ref("A", SeparableMap([IdentityF()])),
        (Ref("B", SeparableMap([AffineF(1, -1)]))
         + Ref("B", SeparableMap([AffineF(1, 1)]))) * 0.5,
        **kw,
    )


def env1d(seed=0):
    rng = np.random.default_rng(seed)
    return {k: rng.random(N) for k in "AB"}


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_plan_cache()
    yield
    clear_plan_cache()
    enable_plan_cache(True)


class TestKernelSource:
    def test_body_is_one_fused_expression(self):
        ir = compile_plan(stencil_clause(), {"A": Block(N, P),
                                             "B": Block(N, P)})
        k = ir.kernels
        assert k is not None
        assert "def _rhs(_i, _r):" in k.source
        # a single return line, no tree-walk helpers
        body = [ln for ln in k.source.splitlines()
                if ln.strip().startswith("return")]
        assert len(body) == 1
        assert "_r[0]" in body[0] and "_r[1]" in body[0]

    def test_min_lowered_to_ufunc_call(self):
        cl = Clause(
            IndexSet(Bounds((0,), (N - 1,))),
            Ref("A", SeparableMap([IdentityF()])),
            BinOp("min", Ref("B", SeparableMap([IdentityF()])),
                  Ref("A", SeparableMap([IdentityF()]))),
        )
        ir = compile_plan(cl, {"A": Block(N, P), "B": Scatter(N, P)})
        assert "_np.minimum" in ir.kernels.source

    def test_guard_gets_its_own_function(self):
        cl = Clause(
            IndexSet(Bounds((0,), (N - 1,))),
            Ref("A", SeparableMap([IdentityF()])),
            Ref("B", SeparableMap([IdentityF()])) * 2,
            guard=Ref("B", SeparableMap([IdentityF()])) > 0.5,
        )
        ir = compile_plan(cl, {"A": Block(N, P), "B": Block(N, P)})
        assert "def _guard(_i, _r):" in ir.kernels.source
        assert ir.kernels.guard is not None

    def test_lower_kernels_is_a_traced_pass(self):
        ir = compile_plan(stencil_clause(), {"A": Block(N, P),
                                             "B": Block(N, P)})
        assert "lower-kernels" in ir.trace.names()
        rec = next(r for r in ir.trace.records
                   if r.name == "lower-kernels")
        assert any("fused kernel" in n for n in rec.notes)


class TestKernelCache:
    def test_structural_recompile_reuses_kernels(self):
        decomps = {"A": Block(N, P), "B": Block(N, P)}
        ir1 = compile_plan(stencil_clause(), decomps)
        before = kernel_cache_info()
        # structurally identical, fresh objects
        ir2 = compile_plan(stencil_clause(), {"A": Block(N, P),
                                              "B": Block(N, P)})
        after = kernel_cache_info()
        assert ir2.kernels is ir1.kernels
        assert after["hits"] >= before["hits"]  # plan-cache clone or kernel hit

    def test_kernel_cache_hit_without_plan_cache_clone(self):
        decomps = {"A": Block(N, P), "B": Block(N, P)}
        compile_plan(stencil_clause(), decomps)
        assert kernel_cache_info()["misses"] >= 1
        # force the plan cache to recompile but keep the kernel cache warm
        from repro.pipeline.cache import plan_cache

        plan_cache._entries.clear()
        ir2 = compile_plan(stencil_clause(), decomps)
        assert kernel_cache_info()["hits"] >= 1
        assert ir2.kernels is not None
        rec = next(r for r in ir2.trace.records
                   if r.name == "lower-kernels")
        assert any("kernel-cache hit" in n for n in rec.notes)

    def test_clear_plan_cache_clears_kernels_too(self):
        compile_plan(stencil_clause(), {"A": Block(N, P), "B": Block(N, P)})
        assert kernel_cache_info()["size"] >= 1
        clear_plan_cache()
        assert kernel_cache_info() == {
            "hits": 0, "misses": 0, "evictions": 0, "size": 0,
            "maxsize": kernel_cache_info()["maxsize"], "bytes": 0,
            "max_bytes": kernel_cache_info()["max_bytes"], "enabled": True,
        }

    def test_disable_plan_cache_disables_kernel_cache(self):
        enable_plan_cache(False)
        assert not kernel_cache_info()["enabled"]
        compile_plan(stencil_clause(), {"A": Block(N, P), "B": Block(N, P)})
        assert kernel_cache_info()["size"] == 0
        enable_plan_cache(True)
        assert plan_cache_info()["enabled"]
        assert kernel_cache_info()["enabled"]


class TestFallbacks:
    def test_seq_clause_has_no_kernels_but_runs(self):
        ir = compile_plan(stencil_clause(SEQ), {"A": Block(N, P),
                                                "B": Block(N, P)})
        assert ir.kernels is None
        rec = next(r for r in ir.trace.records
                   if r.name == "lower-kernels")
        assert any("no fused kernel" in n for n in rec.notes)
        plan = compile_clause(stencil_clause(SEQ), {"A": Block(N, P),
                                                    "B": Block(N, P)})
        env0 = env1d()
        ref = evaluate_clause(stencil_clause(SEQ), copy_env(env0))["A"]
        m = run_shared(plan, copy_env(env0), backend="fused")
        assert np.array_equal(m.env["A"], ref)

    def test_replicated_write_falls_back_with_note(self):
        cl = Clause(
            IndexSet(Bounds((0,), (N - 1,))),
            Ref("r", SeparableMap([IdentityF()])),
            Ref("B", SeparableMap([IdentityF()])) + 1.0,
        )
        decomps = {"r": Replicated(N, P), "B": Block(N, P)}
        plan = compile_clause(cl, decomps)
        k = plan.ir.kernels
        assert k is not None and k.dist is None
        assert "replicated write" in k.dist_note
        env0 = {"r": np.zeros(N), "B": env1d()["B"]}
        ref = evaluate_clause(cl, copy_env(env0))["r"]
        a = run_distributed(plan, copy_env(env0),
                            backend="fused").collect("r")
        assert np.array_equal(a, ref)

    def test_fused_executor_refuses_without_kernels(self):
        ir = compile_plan(stencil_clause(SEQ), {"A": Block(N, P),
                                                "B": Block(N, P)})
        with pytest.raises(ValueError):
            run_shared_fused(ir, env1d())

    def test_grid_plan_builds_raveled_kernels(self):
        g = GridDecomposition([Block(8, 2), Block(8, 2)])
        cl = Clause(
            IndexSet(Bounds((1, 1), (6, 6))),
            Ref("T", SeparableMap([IdentityF(), IdentityF()])),
            Ref("U", SeparableMap([AffineF(1, -1), IdentityF()])) * 0.5,
        )
        ir = compile_plan(cl, {"T": g, "U": g})
        assert ir.kernels is not None and ir.kernels.dist is not None


class TestStrictGating:
    def racy_plan(self):
        # the write array is read with a shifted access: RACE under //
        cl = Clause(
            IndexSet(Bounds((0,), (N - 2,))),
            Ref("A", SeparableMap([IdentityF()])),
            Ref("A", SeparableMap([AffineF(1, 1)])) * 0.5,
        )
        return compile_clause(cl, {"A": Block(N, P)})

    def test_strict_refuses_with_code_in_message(self):
        plan = self.racy_plan()
        with pytest.raises(FusedStrictError, match="RACE"):
            run_distributed(plan, env1d(), backend="fused", strict=True)
        with pytest.raises(FusedStrictError, match="RACE"):
            run_shared(plan, env1d(), backend="fused", strict=True)

    def test_non_strict_still_runs(self):
        plan = self.racy_plan()
        m = run_distributed(plan, env1d(), backend="fused")
        assert m is not None

    def test_clean_clause_passes_strict(self):
        plan = compile_clause(stencil_clause(), {"A": Block(N, P),
                                                 "B": Block(N, P)})
        env0 = env1d()
        ref = evaluate_clause(stencil_clause(), copy_env(env0))["A"]
        m = run_distributed(plan, copy_env(env0), backend="fused",
                            strict=True)
        assert np.array_equal(m.collect("A"), ref)


class TestFusedCLI:
    @pytest.fixture
    def stencil_prog(self, tmp_path):
        f = tmp_path / "stencil.pal"
        f.write_text(
            "for i := 1 to 22 par do\n"
            "    A[i] := 2 * (B[i - 1] + B[i + 1]);\n"
            "od;\n"
        )
        return str(f)

    @pytest.fixture
    def racy_prog(self, tmp_path):
        f = tmp_path / "racy.pal"
        f.write_text(
            "for i := 0 to 22 par do\n"
            "    A[i] := A[i + 1] * 2;\n"
            "od;\n"
        )
        return str(f)

    def _arrays(self):
        return ["--array", "A=block:24", "--array", "B=block:24"]

    def test_compile_explain_shows_kernel_source(self, stencil_prog, capsys):
        from repro.cli import main

        rc = main(["compile", stencil_prog, "--backend", "fused",
                   "--explain"] + self._arrays())
        out = capsys.readouterr().out
        assert rc == 0
        assert "def _rhs(_i, _r):" in out
        assert "lower-kernels" in out

    def test_run_fused_backend(self, stencil_prog, capsys):
        from repro.cli import main

        rc = main(["run", stencil_prog, "--backend", "fused"]
                  + self._arrays())
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_run_fused_strict_refuses_racy(self, racy_prog, capsys):
        from repro.cli import main

        rc = main(["run", racy_prog, "--backend", "fused", "--strict",
                   "--array", "A=block:24"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "RACE" in err

    def test_unified_cache_stats(self, stencil_prog, capsys):
        from repro.cli import main

        clear_plan_cache()
        rc = main(["compile", stencil_prog, "--cache-stats"]
                  + self._arrays())
        out = capsys.readouterr().out
        assert rc == 0
        assert "caches:" in out
        for line in ("plan:", "table1:", "kernel:"):
            assert line in out
