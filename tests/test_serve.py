"""The serve stack: wire protocol, async service semantics, single-flight
coalescing, quotas/deadlines, the daemon end-to-end, and clean teardown
(SIGTERM leaves zero ``/dev/shm`` segments and zero child processes).

No pytest-asyncio here: async service tests run under ``asyncio.run``
inside plain test functions.
"""

import asyncio
import glob
import os
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.pipeline import clear_plan_cache
from repro.serve import (
    ERR_BADREQ,
    ERR_INTERNAL,
    ERR_QUOTA,
    ERR_RUN,
    ERR_TIMEOUT,
    ProtocolError,
    ReproService,
    ServeClient,
    ServeError,
    SingleFlight,
    connect,
    request_key,
)
from repro.serve.protocol import decode_line, encode, error_response, ok_response

PROG = ("for i := 1 to 22 par do\n"
        "    A[i] := 2 * (B[i - 1] + B[i + 1]);\n"
        "od;\n")
ARRAYS = ["A=block:24", "B=block:24"]


def compile_req(**extra):
    return {"op": "compile", "program": PROG, "arrays": list(ARRAYS), **extra}


def run_req(seed=0, **extra):
    return {"op": "run", "program": PROG, "arrays": list(ARRAYS),
            "seed": seed, "backend": "fused", **extra}


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_plan_cache()
    yield
    clear_plan_cache()


# ---------------------------------------------------------------------------
# protocol
# ---------------------------------------------------------------------------

class TestProtocol:
    def test_encode_decode_roundtrip(self):
        obj = {"op": "ping", "id": 7}
        line = encode(obj)
        assert line.endswith(b"\n")
        assert decode_line(line[:-1]) == obj

    def test_decode_rejects_bad_json(self):
        with pytest.raises(ProtocolError):
            decode_line(b"{nope")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="object"):
            decode_line(b"[1, 2]")

    def test_response_shapes(self):
        assert ok_response(3, {"x": 1}) == {
            "id": 3, "ok": True, "result": {"x": 1}}
        err = error_response(None, ERR_BADREQ, "nope")
        assert err["ok"] is False
        assert err["error"] == {"code": ERR_BADREQ, "message": "nope"}

    def test_request_key_identity(self):
        assert request_key(compile_req()) == request_key(compile_req())
        assert request_key(compile_req(id=1, tenant="a")) == \
            request_key(compile_req(id=2, tenant="b"))  # id/tenant excluded

    def test_request_key_distinguishes_inputs(self):
        base = request_key(compile_req())
        assert request_key(compile_req(pmax=8)) != base
        assert request_key(compile_req(verify=True)) != base
        assert request_key({**compile_req(), "op": "check"}) != base
        assert request_key({**compile_req(), "program": PROG + " "}) != base

    def test_request_key_params_order_insensitive(self):
        a = request_key(compile_req(params={"n": 24, "p": 4}))
        b = request_key(compile_req(params={"p": 4, "n": 24}))
        assert a == b

    def test_request_key_uncoalescible_is_none(self):
        assert request_key(compile_req(params=[1, 2])) is None
        assert request_key(compile_req(pmax="many")) is None


# ---------------------------------------------------------------------------
# async single-flight primitive
# ---------------------------------------------------------------------------

class TestSingleFlight:
    def test_coalesces_and_counts(self):
        async def main():
            flight = SingleFlight()
            release = asyncio.Event()
            calls = 0

            async def work():
                nonlocal calls
                calls += 1
                await release.wait()
                return "done"

            tasks = [asyncio.ensure_future(flight.do("k", work))
                     for _ in range(8)]
            await asyncio.sleep(0)
            release.set()
            results = await asyncio.gather(*tasks)
            assert results == ["done"] * 8
            assert calls == 1
            assert flight.leaders == 1 and flight.coalesced == 7
            assert flight.inflight() == 0

        asyncio.run(main())

    def test_cancelled_waiter_does_not_cancel_shared_work(self):
        async def main():
            flight = SingleFlight()
            started = asyncio.Event()
            release = asyncio.Event()

            async def work():
                started.set()
                await release.wait()
                return 42

            t1 = asyncio.ensure_future(flight.do("k", work))
            await started.wait()
            t2 = asyncio.ensure_future(flight.do("k", work))
            await asyncio.sleep(0)
            t1.cancel()
            await asyncio.sleep(0)
            assert flight.inflight() == 1  # the shared task survived
            release.set()
            assert await t2 == 42
            with pytest.raises(asyncio.CancelledError):
                await t1

        asyncio.run(main())

    def test_failure_is_not_cached(self):
        async def main():
            flight = SingleFlight()
            attempts = 0

            async def flaky():
                nonlocal attempts
                attempts += 1
                if attempts == 1:
                    raise RuntimeError("boom")
                return "ok"

            with pytest.raises(RuntimeError):
                await flight.do("k", flaky)
            assert flight.inflight() == 0  # popped, not poisoned
            assert await flight.do("k", flaky) == "ok"

        asyncio.run(main())


# ---------------------------------------------------------------------------
# the service (transport-free)
# ---------------------------------------------------------------------------

def make_service(**kw):
    kw.setdefault("workers", 4)
    return ReproService(**kw)


def run_service(coro_fn, **kw):
    """asyncio.run a test body with a fresh service, closing it after."""
    async def main():
        service = make_service(**kw)
        try:
            return await coro_fn(service)
        finally:
            service.close()

    return asyncio.run(main())


def slow_wrapper(service, delay=0.3):
    """Make the service's compile visibly slow (forces request overlap)."""
    orig = service._do_compile

    def slow(req):
        time.sleep(delay)
        return orig(req)

    service._do_compile = slow


class TestService:
    def test_ping(self):
        async def body(service):
            resp = await service.handle({"op": "ping", "id": 9})
            assert resp == {"id": 9, "ok": True, "result": {"pong": True}}

        run_service(body)

    def test_unknown_op(self):
        async def body(service):
            resp = await service.handle({"op": "destroy"})
            assert resp["error"]["code"] == ERR_BADREQ

        run_service(body)

    def test_missing_program(self):
        async def body(service):
            resp = await service.handle({"op": "compile"})
            assert resp["error"]["code"] == ERR_BADREQ
            assert "program" in resp["error"]["message"]

        run_service(body)

    def test_bad_backend(self):
        async def body(service):
            resp = await service.handle(compile_req(backend="gpu"))
            assert resp["error"]["code"] == ERR_BADREQ

        run_service(body)

    def test_bad_array_spec(self):
        async def body(service):
            resp = await service.handle(
                {"op": "compile", "program": PROG, "arrays": ["A"]})
            assert resp["error"]["code"] == ERR_BADREQ

        run_service(body)

    def test_compile_cold_then_warm(self):
        async def body(service):
            r1 = await service.handle(compile_req())
            assert r1["ok"], r1
            assert r1["result"]["clauses"][0]["cache_hit"] is False
            r2 = await service.handle(compile_req())
            assert r2["result"]["clauses"][0]["cache_hit"] is True
            assert r1["result"]["clauses"][0]["rules"] == \
                r2["result"]["clauses"][0]["rules"]

        run_service(body)

    def test_single_flight_exactly_one_execution(self):
        """N identical concurrent compiles run the pipeline once and all
        return the identical result."""
        async def body(service):
            slow_wrapper(service)
            responses = await asyncio.gather(
                *[service.handle(compile_req(id=i)) for i in range(8)])
            assert all(r["ok"] for r in responses)
            payloads = {repr(r["result"]) for r in responses}
            assert len(payloads) == 1
            assert service.compiles_executed == 1
            assert service.flight.leaders == 1
            assert service.flight.coalesced == 7
            assert service.flight.inflight() == 0

        run_service(body)

    def test_single_flight_disabled_runs_each(self):
        async def body(service):
            responses = await asyncio.gather(
                *[service.handle(compile_req()) for _ in range(4)])
            assert all(r["ok"] for r in responses)
            assert service.compiles_executed == 4
            assert service.flight.leaders == 0

        run_service(body, single_flight=False)

    def test_failing_compile_not_poisoned(self):
        async def body(service):
            orig = service._do_compile
            state = {"calls": 0}

            def flaky(req):
                state["calls"] += 1
                if state["calls"] == 1:
                    raise RuntimeError("transient failure")
                return orig(req)

            service._do_compile = flaky
            bad = await service.handle(compile_req())
            assert bad["error"]["code"] == ERR_INTERNAL
            good = await service.handle(compile_req())
            assert good["ok"], good
            assert service.flight.inflight() == 0

        run_service(body)

    def test_cancelled_client_keeps_shared_compile_alive(self):
        """A client dropping mid-request must not cancel the in-flight
        compile its peers coalesced onto."""
        async def body(service):
            slow_wrapper(service, delay=0.4)
            t1 = asyncio.ensure_future(service.handle(compile_req(id=1)))
            t2 = asyncio.ensure_future(service.handle(compile_req(id=2)))
            await asyncio.sleep(0.05)  # both attached to one flight
            t1.cancel()
            r2 = await t2
            assert r2["ok"], r2
            assert service.compiles_executed == 1
            with pytest.raises(asyncio.CancelledError):
                await t1

        run_service(body)

    def test_quota_rejects_excess_in_flight(self):
        async def body(service):
            slow_wrapper(service)
            t1 = asyncio.ensure_future(
                service.handle(compile_req(tenant="t1")))
            await asyncio.sleep(0.05)  # t1 is in flight
            r2 = await service.handle(compile_req(tenant="t1", verify=True))
            assert r2["error"]["code"] == ERR_QUOTA
            # a different tenant is not affected by t1's usage
            r3 = await service.handle(compile_req(tenant="t2"))
            assert r3["ok"], r3
            r1 = await t1
            assert r1["ok"], r1
            stats = service.stats()["server"]["tenants"]
            assert stats["t1"]["rejected"] == 1
            assert stats["t2"]["rejected"] == 0

        run_service(body, quota=1)

    def test_timeout_returns_error_but_work_completes(self):
        async def body(service):
            slow_wrapper(service, delay=0.3)
            resp = await service.handle(compile_req(timeout_s=0.05))
            assert resp["error"]["code"] == ERR_TIMEOUT
            # the coalesced work keeps running and lands in the cache
            for _ in range(100):
                if service.flight.inflight() == 0:
                    break
                await asyncio.sleep(0.05)
            assert service.compiles_executed == 1

        run_service(body)

    def test_draining_rejects_new_work(self):
        async def body(service):
            resp = await service.handle({"op": "shutdown"})
            assert resp["result"] == {"draining": True}
            ping = await service.handle({"op": "ping"})
            assert ping["ok"]
            comp = await service.handle(compile_req())
            assert comp["error"]["code"] == ERR_RUN

        run_service(body)

    def test_run_bit_identical_to_in_process(self):
        """The serve ``run`` (seeded inputs) returns exactly the arrays an
        in-process fused execution produces — JSON floats are repr-exact."""
        from repro.cli import parse_decomposition
        from repro.codegen import compile_clause, run_distributed
        from repro.frontend import translate_source

        async def body(service):
            resp = await service.handle(run_req(seed=7))
            assert resp["ok"], resp
            result = resp["result"]
            assert result["match_reference"] is True
            program = translate_source(PROG, {})
            decomps = dict(parse_decomposition(a, 4) for a in ARRAYS)
            rng = np.random.default_rng(7)
            env = {name: rng.random(dec.n)
                   for name, dec in decomps.items()}
            clause = list(program)[0]
            plan = compile_clause(clause, decomps)
            machine = run_distributed(plan, env, backend="fused")
            expected = machine.collect("A")
            assert result["arrays"]["A"] == expected.tolist()

        run_service(body)

    def test_run_with_explicit_data(self):
        async def body(service):
            data = {"A": [0.0] * 24, "B": list(range(24))}
            resp = await service.handle(run_req(data=data))
            assert resp["ok"], resp
            b = np.asarray(data["B"], dtype=np.float64)
            expected = 2 * (b[:-2] + b[2:])
            got = np.asarray(resp["result"]["arrays"]["A"])
            assert np.array_equal(got[1:23], expected)

        run_service(body)

    def test_run_rejects_wrong_length_data(self):
        async def body(service):
            resp = await service.handle(
                run_req(data={"A": [0.0] * 24, "B": [1.0]}))
            assert resp["error"]["code"] == ERR_BADREQ
            assert "decomposition says" in resp["error"]["message"]

        run_service(body)

    def test_stats_shape(self):
        async def body(service):
            await service.handle(compile_req())
            resp = await service.handle({"op": "stats"})
            stats = resp["result"]
            assert set(stats) == {"server", "caches", "runtime"}
            server = stats["server"]
            assert server["requests"]["compile"] == 1
            assert server["singleflight"]["enabled"] is True
            assert "plan" in stats["caches"]
            assert "kernel" in stats["caches"]

        run_service(body)

    def test_clear_op_drops_caches(self):
        async def body(service):
            await service.handle(compile_req())
            assert service.stats()["caches"]["plan"]["size"] >= 1
            resp = await service.handle({"op": "clear"})
            assert resp["result"]["cleared"] is True
            assert resp["result"]["caches"]["plan"]["size"] == 0

        run_service(body)


# ---------------------------------------------------------------------------
# the daemon, end to end
# ---------------------------------------------------------------------------

def shm_entries():
    return set(glob.glob("/dev/shm/repro-*")) if os.path.isdir(
        "/dev/shm") else set()


def start_daemon(tmp_path, *extra):
    sock = str(tmp_path / "repro.sock")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", "src"),
         env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--unix", sock, *extra],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    line = proc.stdout.readline()
    assert "listening on" in line, (line, proc.stderr.read())
    return proc, sock


def stop_daemon(proc):
    if proc.poll() is None:
        proc.kill()
    proc.wait(timeout=10)
    proc.stdout.close()
    proc.stderr.close()


@pytest.mark.slow
class TestServeDaemon:
    def test_mixed_concurrent_load_bit_identical(self, tmp_path):
        """64 concurrent mixed compile/run clients against one daemon:
        every run's arrays are bit-identical to in-process fused
        execution, and shutdown leaks nothing."""
        from repro.cli import parse_decomposition
        from repro.codegen import compile_clause, run_distributed
        from repro.frontend import translate_source

        shm_before = shm_entries()
        proc, sock = start_daemon(tmp_path)
        try:
            results = {}
            errors = []
            lock = threading.Lock()

            def client_worker(i):
                try:
                    with ServeClient(sock) as c:
                        if i % 2 == 0:
                            r = c.call("compile", program=PROG,
                                       arrays=ARRAYS)
                        else:
                            r = c.call("run", program=PROG, arrays=ARRAYS,
                                       seed=i % 4, backend="fused")
                        with lock:
                            results[i] = r
                except Exception as e:  # noqa: BLE001 — collected
                    with lock:
                        errors.append((i, e))

            threads = [threading.Thread(target=client_worker, args=(i,))
                       for i in range(64)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert errors == []
            assert len(results) == 64

            # expected arrays, computed in-process per seed
            program = translate_source(PROG, {})
            decomps = dict(parse_decomposition(a, 4) for a in ARRAYS)
            clause = list(program)[0]
            plan = compile_clause(clause, decomps)
            expected = {}
            for seed in range(4):
                rng = np.random.default_rng(seed)
                env = {name: rng.random(dec.n)
                       for name, dec in decomps.items()}
                expected[seed] = run_distributed(
                    plan, env, backend="fused").collect("A").tolist()
            for i, r in results.items():
                if i % 2 == 0:
                    assert r["clauses"][0]["rules"]
                else:
                    assert r["match_reference"] is True
                    assert r["arrays"]["A"] == expected[i % 4]

            with ServeClient(sock) as c:
                stats = c.call("stats")["server"]
                assert stats["requests"]["compile"] == 32
                assert stats["requests"]["run"] == 32
                assert stats["errors"] == {}
                # the pipeline ran far fewer times than requests arrived:
                # single-flight + warm structural caches did the rest
                assert stats["compiles_executed"] <= 32
                c.call("shutdown")

            assert proc.wait(timeout=30) == 0
            out = proc.stdout.read()
            assert "drained and stopped" in out
            assert shm_entries() <= shm_before
        finally:
            stop_daemon(proc)

    def test_run_mp_backend_through_daemon_no_leaks(self, tmp_path):
        """An mp-backend run spawns worker children inside the daemon;
        shutdown must reap them and their shared-memory segments."""
        shm_before = shm_entries()
        proc, sock = start_daemon(tmp_path)
        try:
            with ServeClient(sock, timeout=120) as c:
                r = c.call("run", program=PROG, arrays=ARRAYS, seed=1,
                           backend="mp", processes=2)
                assert r["match_reference"] is True
                runtime = c.call("stats")["runtime"]
                assert runtime, "expected a live worker pool"
                c.call("shutdown")
            assert proc.wait(timeout=30) == 0
            assert shm_entries() <= shm_before
        finally:
            stop_daemon(proc)

    def test_sigterm_drains_gracefully(self, tmp_path):
        shm_before = shm_entries()
        proc, sock = start_daemon(tmp_path)
        try:
            with ServeClient(sock) as c:
                assert c.call("ping") == {"pong": True}
                # warm the runtime so there is something to tear down
                c.call("run", program=PROG, arrays=ARRAYS, seed=0,
                       backend="mp", processes=2)
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
            assert "drained and stopped" in proc.stdout.read()
            assert shm_entries() <= shm_before
        finally:
            stop_daemon(proc)

    def test_no_single_flight_flag(self, tmp_path):
        proc, sock = start_daemon(tmp_path, "--no-single-flight")
        try:
            with ServeClient(sock) as c:
                stats = c.call("stats")["server"]
                assert stats["singleflight"]["enabled"] is False
                c.call("shutdown")
            assert proc.wait(timeout=30) == 0
        finally:
            stop_daemon(proc)

    def test_client_connect_retry_helper(self, tmp_path):
        proc, sock = start_daemon(tmp_path)
        try:
            c = connect(sock, retries=10, delay=0.05)
            try:
                assert c.call("ping") == {"pong": True}
                with pytest.raises(ServeError) as ei:
                    c.call("compile", program="")
                assert ei.value.code == ERR_BADREQ
                c.call("shutdown")
            finally:
                c.close()
            assert proc.wait(timeout=30) == 0
        finally:
            stop_daemon(proc)


# ---------------------------------------------------------------------------
# runtime SIGTERM teardown (the pool-level guarantee under the daemon)
# ---------------------------------------------------------------------------

_POOL_SIGTERM_SCRIPT = r"""
import os, sys, time
import numpy as np
from repro.runtime.pool import get_pool
from repro.runtime.shm import ShmSession

pool = get_pool(2)            # installs the SIGTERM handler
sess = ShmSession({"X": np.zeros(64)})
print("PIDS", " ".join(str(p) for p in pool.pids()), flush=True)
print("SEGS", " ".join(seg.name for seg in sess.segs.values()), flush=True)
print("READY", flush=True)
time.sleep(60)
"""


@pytest.mark.slow
class TestPoolSigterm:
    def test_sigterm_reaps_workers_and_segments(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src"),
             env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
        proc = subprocess.Popen(
            [sys.executable, "-c", _POOL_SIGTERM_SCRIPT], env=env,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        pids, segs = [], []
        try:
            for _ in range(3):
                line = proc.stdout.readline().split()
                if not line:
                    break
                if line[0] == "PIDS":
                    pids = [int(p) for p in line[1:]]
                elif line[0] == "SEGS":
                    segs = line[1:]
                elif line[0] == "READY":
                    break
            assert pids and segs, proc.stderr.read()
            if os.path.isdir("/dev/shm"):
                for name in segs:
                    assert os.path.exists(f"/dev/shm/{name}")
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=30)
            # handler re-raises with the default action: killed by TERM
            assert proc.returncode == -signal.SIGTERM
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline and any(
                    _pid_alive(p) for p in pids):
                time.sleep(0.1)
            assert not any(_pid_alive(p) for p in pids)
            if os.path.isdir("/dev/shm"):
                for name in segs:
                    assert not os.path.exists(f"/dev/shm/{name}")
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=10)
            proc.stdout.close()
            proc.stderr.close()

    def test_install_returns_false_off_main_thread(self, monkeypatch):
        from repro.runtime import pool

        # earlier tests may have installed on the main thread already;
        # force the attempt so the off-main-thread refusal is exercised
        monkeypatch.setattr(pool, "_SIGNALS_INSTALLED", False)
        out = []
        t = threading.Thread(
            target=lambda: out.append(pool.install_signal_handlers()))
        t.start()
        t.join()
        assert out == [False]


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except OSError:
        return False
    return True
