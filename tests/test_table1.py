"""Tests for the Table I dispatch (rule selection + the grand oracle)."""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.ifunc import AffineF, ConstantF, ModularF, MonotoneF
from repro.decomp import Block, BlockScatter, Replicated, Scatter, SingleOwner
from repro.sets import Work, choose_rule, modify_naive, optimize_access


class TestRuleSelection:
    """Each (access class x decomposition) lands on its Table I entry."""

    def test_constant_any_decomposition(self):
        for d in (Block(20, 4), Scatter(20, 4), BlockScatter(20, 4, 2)):
            assert choose_rule(d, ConstantF(5), 0, 19)[0] == "thm1-constant"

    def test_block_affine(self):
        assert choose_rule(Block(20, 4), AffineF(2, 1), 0, 9)[0] == "block"

    def test_block_monotone(self):
        f = MonotoneF(lambda i: i * i, 1, "i^2")
        assert choose_rule(Block(200, 4), f, 0, 14)[0] == "block"

    def test_scatter_linear_general(self):
        assert choose_rule(Scatter(100, 7), AffineF(3, 0), 0, 30)[0] == "thm3-linear"

    def test_scatter_corollary1(self):
        # pmax mod a = 0
        assert choose_rule(Scatter(100, 6), AffineF(3, 0), 0, 30)[0] == "thm3-cor1"

    def test_scatter_corollary2(self):
        # a mod pmax = 0
        assert choose_rule(Scatter(100, 3), AffineF(6, 1), 0, 15)[0] == "thm3-cor2"

    def test_scatter_slow_monotone_enum_on_k(self):
        f = MonotoneF(lambda i: i + i // 4, 1, derivative_max=1.25)
        assert choose_rule(Scatter(100, 4), f, 0, 70)[0] == "enum-on-k"

    def test_scatter_fast_monotone_falls_back_to_thm2(self):
        # df/di >= pmax: paper says "no optimization" via enum-on-k;
        # Theorem 2 with b=1 still enumerates in closed form.
        f = MonotoneF(lambda i: 10 * i, 1, derivative_max=10.0)
        assert choose_rule(Scatter(500, 4), f, 0, 45)[0] == "thm2-repeated-block"

    def test_blockscatter_repeated_block_for_large_b(self):
        # b > f(imax)/(2 pmax)
        d = BlockScatter(64, 4, 8)
        assert choose_rule(d, AffineF(1, 0), 0, 63)[0] == "thm2-repeated-block"

    def test_blockscatter_repeated_scatter_for_small_b(self):
        # b <= f(imax)/(2 pmax): 1 <= 63/8
        d = BlockScatter(64, 4, 1)
        rule = choose_rule(d, AffineF(1, 0), 0, 63)[0]
        assert rule == "repeated-scatter"

    def test_crossover_condition_exact(self):
        # the §3.2.i threshold: b <= f(imax)/(2.pmax)
        pmax, imax = 4, 63
        threshold = (imax) // (2 * pmax)
        d_small = BlockScatter(64, pmax, threshold)
        d_large = BlockScatter(64, pmax, threshold + 2)
        assert choose_rule(d_small, AffineF(1, 0), 0, imax)[0] == "repeated-scatter"
        assert choose_rule(d_large, AffineF(1, 0), 0, imax)[0] == "thm2-repeated-block"

    def test_modular_goes_piecewise(self):
        f = ModularF(AffineF(1, 6), 20)
        rule = choose_rule(Scatter(20, 4), f, 0, 19)[0]
        assert rule.startswith("piecewise(")

    def test_singleowner(self):
        assert choose_rule(SingleOwner(10, 4, 1), AffineF(1, 0), 0, 9)[0] == \
            "singleowner"

    def test_replicated(self):
        assert choose_rule(Replicated(10, 4), AffineF(1, 0), 0, 9)[0] == \
            "replicated-all"

    def test_empty_range(self):
        acc = optimize_access(Block(10, 2), AffineF(1, 0), 5, 4)
        assert acc.rule == "empty"
        assert acc.indices(0) == []


class TestOptimizedAccessApi:
    def test_indices_equals_enumerate_flatten(self):
        acc = optimize_access(Scatter(40, 4), AffineF(3, 1), 0, 12)
        for p in range(4):
            assert acc.indices(p) == acc.enumerate(p).indices()

    def test_work_optional(self):
        acc = optimize_access(Block(40, 4), AffineF(1, 0), 0, 39)
        w = Work()
        acc.enumerate(1, w)
        assert w.preimage_calls == 1


# ---------------------------------------------------------------------------
# The grand oracle: every dispatch result equals the naive definition.
# ---------------------------------------------------------------------------

def _decomp_strategy():
    return st.tuples(
        st.sampled_from(["block", "scatter", "bs", "single"]),
        st.integers(1, 64),
        st.integers(1, 8),
        st.integers(1, 6),
        st.integers(0, 7),
    )


def _mk_decomp(t):
    kind, n, pmax, b, owner = t
    if kind == "block":
        return Block(n, pmax)
    if kind == "scatter":
        return Scatter(n, pmax)
    if kind == "bs":
        return BlockScatter(n, pmax, b)
    return SingleOwner(n, pmax, owner % pmax)


class TestOracle:
    @given(_decomp_strategy(), st.integers(0, 63))
    @settings(max_examples=150)
    def test_constant(self, dt, c):
        d = _mk_decomp(dt)
        assume(c < d.n)
        acc = optimize_access(d, ConstantF(c), 0, 30)
        for p in range(d.pmax):
            assert acc.indices(p) == modify_naive(d, ConstantF(c), 0, 30, p)

    @given(
        _decomp_strategy(),
        st.integers(-5, 5).filter(lambda a: a),
        st.integers(0, 10),
    )
    @settings(max_examples=300)
    def test_affine(self, dt, a, c):
        d = _mk_decomp(dt)
        f = AffineF(a, c)
        cand = [i for i in range(0, 80) if 0 <= f(i) < d.n]
        assume(cand)
        imin, imax = min(cand), max(cand)
        acc = optimize_access(d, f, imin, imax)
        for p in range(d.pmax):
            assert acc.indices(p) == modify_naive(d, f, imin, imax, p), (
                acc.rule, d, f.name, (imin, imax), p,
            )

    @given(
        _decomp_strategy(),
        st.integers(1, 3),
        st.integers(0, 10),
        st.integers(3, 40),
    )
    @settings(max_examples=300)
    def test_modular(self, dt, a, c, z):
        d = _mk_decomp(dt)
        f = ModularF(AffineF(a, c), z)
        # longest prefix from 0 whose image stays inside [0, n)
        imax = -1
        for i in range(0, 60):
            if 0 <= f(i) < d.n:
                imax = i
            else:
                break
        assume(imax >= 0)
        acc = optimize_access(d, f, 0, imax)
        for p in range(d.pmax):
            assert acc.indices(p) == modify_naive(d, f, 0, imax, p), (
                acc.rule, d, f.name, imax, p,
            )

    @given(_decomp_strategy())
    @settings(max_examples=150)
    def test_monotone_nonlinear(self, dt):
        d = _mk_decomp(dt)
        f = MonotoneF(lambda i: i + i // 4, 1, "i+i div 4")
        cand = [i for i in range(0, 80) if 0 <= f(i) < d.n]
        assume(cand)
        imin, imax = min(cand), max(cand)
        acc = optimize_access(d, f, imin, imax)
        for p in range(d.pmax):
            assert acc.indices(p) == modify_naive(d, f, imin, imax, p)

    @given(_decomp_strategy(), st.integers(2, 5))
    @settings(max_examples=100)
    def test_quadratic(self, dt, scale):
        d = _mk_decomp(dt)
        f = MonotoneF(lambda i: i * i, 1, "i^2")
        cand = [i for i in range(0, 80) if 0 <= f(i) < d.n]
        assume(cand)
        imin, imax = min(cand), max(cand)
        acc = optimize_access(d, f, imin, imax)
        for p in range(d.pmax):
            assert acc.indices(p) == modify_naive(d, f, imin, imax, p)


class TestOverheadClaims:
    """§3 intro vs Table I: the optimized enumerators do no per-index tests."""

    @pytest.mark.parametrize("n,pmax", [(1000, 4), (1024, 8)])
    def test_closed_forms_do_zero_tests_affine_block(self, n, pmax):
        acc = optimize_access(Block(n, pmax), AffineF(1, 0), 0, n - 1)
        for p in range(pmax):
            w = Work()
            acc.enumerate(p, w)
            assert w.tests == 0

    def test_naive_tests_equal_range_length_per_processor(self):
        d = Block(1000, 4)
        w = Work()
        modify_naive(d, AffineF(1, 0), 0, 999, 0, w)
        assert w.tests == 1000

    def test_optimized_overhead_orders_of_magnitude_lower(self):
        n, pmax = 10_000, 8
        d = Scatter(3 * n + 1, pmax)
        f = AffineF(3, 0)
        acc = optimize_access(d, f, 0, n)
        total_opt = Work()
        for p in range(pmax):
            acc.enumerate(p, total_opt)
        total_naive = Work()
        for p in range(pmax):
            modify_naive(d, f, 0, n, p, total_naive)
        assert total_opt.overhead() * 100 < total_naive.overhead()
