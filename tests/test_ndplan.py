"""Tests for multi-dimensional SPMD generation over processor grids."""

import numpy as np
import pytest

from repro.codegen.ndplan import compile_clause_nd, run_shared_nd
from repro.core import (
    PAR,
    SEQ,
    AffineF,
    BinOp,
    Clause,
    IdentityF,
    IndexSet,
    Ref,
    SeparableMap,
    copy_env,
    evaluate_clause,
)
from repro.core.view import ProjectedMap
from repro.decomp import Block, Collapsed, GridDecomposition, Scatter
from repro.frontend import translate_source


def grid_bb(n=12, m=8):
    return GridDecomposition([Block(n, 2), Block(m, 2)])


def grid_bs(n=12, m=8):
    return GridDecomposition([Block(n, 2), Scatter(m, 3)])


def env2d(n=12, m=8, seed=0):
    rng = np.random.default_rng(seed)
    return {"M": rng.random((n, m)), "N": np.zeros((n, m))}


def scale_clause(n=12, m=8, ordering=PAR):
    m_ref = Ref("M", SeparableMap([IdentityF(), IdentityF()]))
    return Clause(
        domain=IndexSet.of_shape(n, m),
        lhs=Ref("N", SeparableMap([IdentityF(), IdentityF()])),
        rhs=m_ref * 2 + 1,
        ordering=ordering,
    )


class TestCompilation:
    def test_per_dimension_rules(self):
        plan = compile_clause_nd(scale_clause(), {"N": grid_bs(), "M": grid_bs()})
        rules = plan.rules()
        assert rules["dim0"] == "block"
        assert rules["dim1"].startswith("thm3")

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError, match="rank"):
            compile_clause_nd(scale_clause(), {"N": Block(12, 4)})

    def test_modify_partitions_domain(self):
        plan = compile_clause_nd(scale_clause(), {"N": grid_bb()})
        seen = set()
        for p in range(plan.pmax):
            for idx in plan.modify_indices(p):
                assert idx not in seen
                seen.add(idx)
        assert len(seen) == 12 * 8

    def test_owner_computes_on_grid(self):
        g = grid_bs()
        plan = compile_clause_nd(scale_clause(), {"N": g})
        for p in range(g.pmax):
            for idx in plan.modify_indices(p):
                assert g.proc(idx) == p


class TestExecution:
    @pytest.mark.parametrize("mkgrid", [grid_bb, grid_bs],
                             ids=["block-block", "block-scatter"])
    def test_scale_matches_reference(self, mkgrid):
        cl = scale_clause()
        env0 = env2d()
        ref = evaluate_clause(cl, copy_env(env0))["N"]
        m = run_shared_nd(
            compile_clause_nd(cl, {"N": mkgrid(), "M": mkgrid()}),
            copy_env(env0),
        )
        assert np.allclose(m.env["N"], ref)

    def test_transpose_access(self):
        # N[i,j] := M[j,i] — ProjectedMap with flipped dims
        n = 6
        cl = Clause(
            domain=IndexSet.of_shape(n, n),
            lhs=Ref("N", SeparableMap([IdentityF(), IdentityF()])),
            rhs=Ref("M", ProjectedMap([1, 0], [IdentityF(), IdentityF()])),
        )
        env0 = {"M": np.arange(36.0).reshape(6, 6), "N": np.zeros((6, 6))}
        g = GridDecomposition([Block(n, 2), Scatter(n, 2)])
        m = run_shared_nd(compile_clause_nd(cl, {"N": g}), copy_env(env0))
        assert np.array_equal(m.env["N"], env0["M"].T)

    def test_matvec_from_frontend(self):
        # the reduction dimension j is unconstrained: it runs fully on
        # the owner of y[i]
        prog = translate_source("""
            for i := 0 to 11 par do
              for j := 0 to 7 seq do
                y[i] := y[i] + M[i, j] * x[j];
              od
            od
        """)
        cl = prog.clauses[0]
        rng = np.random.default_rng(3)
        env0 = {"y": np.zeros(12), "M": rng.random((12, 8)),
                "x": rng.random(8)}
        want = env0["M"] @ env0["x"]
        plan = compile_clause_nd(cl, {"y": Block(12, 4)})
        m = run_shared_nd(plan, copy_env(env0))
        assert np.allclose(m.env["y"], want)
        # work is row-balanced
        assert m.stats.update_counts() == [24, 24, 24, 24]

    def test_guarded_2d(self):
        cl = scale_clause()
        cl.guard = Ref("M", SeparableMap([IdentityF(), IdentityF()])) > 0.5
        env0 = env2d(seed=4)
        ref = evaluate_clause(cl, copy_env(env0))["N"]
        m = run_shared_nd(
            compile_clause_nd(cl, {"N": grid_bb(), "M": grid_bb()}),
            copy_env(env0),
        )
        assert np.allclose(m.env["N"], ref)

    def test_seq_2d_recurrence(self):
        # N[i,j] := N[i, j-1] + M[i,j] — row-wise scan, • ordering
        n, mm = 4, 6
        from repro.core import Bounds

        cl = Clause(
            domain=IndexSet(Bounds((0, 1), (n - 1, mm - 1))),
            lhs=Ref("N", SeparableMap([IdentityF(), IdentityF()])),
            rhs=BinOp(
                "+",
                Ref("N", SeparableMap([IdentityF(), AffineF(1, -1)])),
                Ref("M", SeparableMap([IdentityF(), IdentityF()])),
            ),
            ordering=SEQ,
        )
        rng = np.random.default_rng(5)
        env0 = {"M": rng.random((n, mm)), "N": rng.random((n, mm))}
        ref = evaluate_clause(cl, copy_env(env0))["N"]
        g = GridDecomposition([Block(n, 2), Collapsed(mm)])
        m = run_shared_nd(compile_clause_nd(cl, {"N": g, "M": g}),
                          copy_env(env0))
        assert np.allclose(m.env["N"], ref)

    def test_membership_overhead_closed_form(self):
        # grid membership uses the Table I closed forms per dimension:
        # no full-domain scans
        cl = scale_clause(n=64, m=64)
        env0 = {"M": np.zeros((64, 64)), "N": np.zeros((64, 64))}
        plan = compile_clause_nd(cl, {"N": grid_bb(64, 64)})
        m = run_shared_nd(plan, copy_env(env0))
        assert m.stats.total_tests() == 0
        assert m.stats.total_updates() == 64 * 64
