"""The native (njit) kernel tier: support probe, scalar-loop codegen,
executors, fallback semantics, cache lifecycle, the mp worker path, and
the CLI surface.

numba is optional, so almost everything here runs under
``REPRO_NATIVE_INTERP=1`` — the generated scalar loop executes as
exec-compiled Python, which exercises the whole native stack (codegen,
dispatch, cache, workers) bit-for-bit without a JIT.  Fallback tests run
under ``REPRO_NO_NATIVE=1``.  Bit-identity against every other backend
also lives in ``tests/test_pipeline_equiv.py::TestAllBackendsAgree``.
"""

import numpy as np
import pytest

from repro.codegen.dist_tmpl import run_distributed
from repro.codegen.nddist import (
    collect_nd,
    compile_clause_nd_dist,
    run_distributed_nd,
)
from repro.codegen.plan import compile_clause
from repro.codegen.shared_tmpl import run_shared
from repro.core import (
    SEQ,
    AffineF,
    Bounds,
    Clause,
    Const,
    IdentityF,
    IndexSet,
    Ref,
    SeparableMap,
    copy_env,
    evaluate_clause,
)
from repro.core.expr import BinOp
from repro.decomp import Block, GridDecomposition, Scatter
from repro.machine.fused import FusedStrictError
from repro.pipeline import (
    NativeBuildError,
    clear_plan_cache,
    compile_plan,
    native_cache_info,
    native_support,
    render_native_source,
    reset_native_stats,
    reset_native_support,
)
from repro.pipeline.kernels import KernelCache, kernel_cache
from repro.runtime import shutdown_runtime

N, P = 24, 4


def stencil_clause(ordering=None):
    kw = {} if ordering is None else {"ordering": ordering}
    return Clause(
        IndexSet(Bounds((1,), (N - 2,))),
        Ref("A", SeparableMap([IdentityF()])),
        (Ref("B", SeparableMap([AffineF(1, -1)]))
         + Ref("B", SeparableMap([AffineF(1, 1)]))) * 0.5,
        **kw,
    )


def guarded_clause():
    return Clause(
        IndexSet(Bounds((0,), (N - 1,))),
        Ref("A", SeparableMap([IdentityF()])),
        Ref("B", SeparableMap([IdentityF()])) * 2.0,
        guard=Ref("B", SeparableMap([IdentityF()])) > 0.5,
    )


def env1d(seed=0):
    rng = np.random.default_rng(seed)
    return {k: rng.random(N) for k in "AB"}


def block_decomps():
    return {"A": Block(N, P), "B": Block(N, P)}


@pytest.fixture(autouse=True)
def fresh_state(monkeypatch):
    monkeypatch.delenv("REPRO_NO_NATIVE", raising=False)
    monkeypatch.delenv("REPRO_NATIVE_INTERP", raising=False)
    reset_native_support()
    reset_native_stats()
    clear_plan_cache()
    yield
    clear_plan_cache()
    reset_native_support()


@pytest.fixture
def interp(monkeypatch):
    """Run the native tier as exec-compiled Python (no numba needed)."""
    monkeypatch.setenv("REPRO_NATIVE_INTERP", "1")
    reset_native_support()


@pytest.fixture
def no_native(monkeypatch):
    """Force the probe to report the tier unavailable."""
    monkeypatch.setenv("REPRO_NO_NATIVE", "1")
    reset_native_support()


class TestSupportProbe:
    def test_disabled_by_env(self, no_native):
        sup = native_support()
        assert not sup.available
        assert sup.mode == "none"
        assert "REPRO_NO_NATIVE" in sup.reason

    def test_interp_mode(self, interp):
        sup = native_support()
        assert sup.available
        assert sup.mode == "interp"
        assert "testing" in sup.reason

    def test_default_probe_is_njit_or_absent(self):
        sup = native_support()
        assert sup.mode in ("njit", "none")
        if sup.mode == "njit":
            assert sup.available and sup.version
        else:
            assert "numba" in sup.reason

    def test_probe_is_cached_until_reset(self, monkeypatch):
        sup = native_support()
        assert native_support() is sup
        # flipping the env without a reset changes nothing...
        monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        assert native_support() is sup
        # ...a reset re-probes
        reset_native_support()
        assert not native_support().available


class TestSourceRendering:
    def test_scalar_loop_shape(self):
        src = render_native_source(stencil_clause())
        assert "def _kernel(_i, _r, _lanes, _scatter, _out):" in src
        assert "for _t in range(_scatter.shape[0]):" in src
        assert "_out[_scatter[_t]] =" in src
        assert src.rstrip().endswith("return _m")

    def test_guard_folds_into_the_loop(self):
        src = render_native_source(guarded_clause())
        lines = src.splitlines()
        (guard_line,) = [ln for ln in lines if ln.strip().startswith("if ")]
        store_line = next(ln for ln in lines if "_out[_scatter" in ln)
        # the store is nested one level under the guard
        assert len(store_line) - len(store_line.lstrip()) \
            > len(guard_line) - len(guard_line.lstrip())

    def test_minmax_keep_nan_semantics(self):
        cl = Clause(
            IndexSet(Bounds((0,), (N - 1,))),
            Ref("A", SeparableMap([IdentityF()])),
            BinOp("min", Ref("B", SeparableMap([IdentityF()])),
                  BinOp("max", Ref("A", SeparableMap([IdentityF()])),
                        Const(0.0))),
        )
        src = render_native_source(cl)
        assert "_np.minimum(" in src
        assert "_np.maximum(" in src

    def test_logical_ops_are_non_short_circuit_forms(self):
        cl = Clause(
            IndexSet(Bounds((0,), (N - 1,))),
            Ref("A", SeparableMap([IdentityF()])),
            Ref("B", SeparableMap([IdentityF()])),
            guard=BinOp("and",
                        Ref("B", SeparableMap([IdentityF()])) > 0.25,
                        Ref("B", SeparableMap([IdentityF()])) < 0.75),
        )
        src = render_native_source(cl)
        assert "!= 0 and" in src

    def test_unknown_expression_node_raises(self):
        from repro.pipeline.native import _render_scalar

        with pytest.raises(NativeBuildError, match="no scalar source"):
            _render_scalar(object(), {})


@pytest.mark.usefixtures("interp")
class TestInterpBitIdentity:
    def test_shared_matches_reference(self):
        plan = compile_clause(stencil_clause(), block_decomps())
        env0 = env1d()
        ref = evaluate_clause(stencil_clause(), copy_env(env0))["A"]
        m = run_shared(plan, copy_env(env0), backend="native")
        assert np.array_equal(m.env["A"], ref)
        nat = plan.ir.kernels.native
        assert nat is not None and nat.mode == "interp"

    def test_distributed_matches_fused_with_message_parity(self):
        decomps = {"A": Block(N, P), "B": Scatter(N, P)}
        plan = compile_clause(stencil_clause(), decomps)
        env0 = env1d(3)
        mf = run_distributed(plan, copy_env(env0), backend="fused")
        mn = run_distributed(plan, copy_env(env0), backend="native")
        assert np.array_equal(mf.collect("A"), mn.collect("A"))
        assert mf.stats.total_messages() == mn.stats.total_messages()
        assert mf.stats.total_elements_moved() \
            == mn.stats.total_elements_moved()
        assert mf.stats.total_updates() == mn.stats.total_updates()

    def test_guarded_clause_counts_only_stored_lanes(self):
        plan = compile_clause(guarded_clause(), block_decomps())
        env0 = env1d(7)
        ref = evaluate_clause(guarded_clause(), copy_env(env0))["A"]
        m = run_shared(plan, copy_env(env0), backend="native")
        assert np.array_equal(m.env["A"], ref)
        expected = int((env0["B"] > 0.5).sum())
        assert sum(s.local_updates for s in m.stats) == expected

    def test_grid_2d_matches_fused(self):
        n = 16
        g = GridDecomposition([Block(n, 2), Block(n, 2)])

        def sref(di, dj):
            fi = AffineF(1, di) if di else IdentityF()
            fj = AffineF(1, dj) if dj else IdentityF()
            return Ref("S", SeparableMap([fi, fj]))

        cl = Clause(
            IndexSet(Bounds((1, 1), (n - 2, n - 2))),
            Ref("T", SeparableMap([IdentityF(), IdentityF()])),
            BinOp("*", Const(0.25),
                  BinOp("+", BinOp("+", sref(-1, 0), sref(1, 0)),
                        BinOp("+", sref(0, -1), sref(0, 1)))),
        )
        plan = compile_clause_nd_dist(cl, {"T": g, "S": g})
        rng = np.random.default_rng(5)
        env0 = {"S": rng.random((n, n)), "T": np.zeros((n, n))}
        mf = run_distributed_nd(plan, copy_env(env0), backend="fused")
        mn = run_distributed_nd(plan, copy_env(env0), backend="native")
        assert np.array_equal(collect_nd(mf, "T"), collect_nd(mn, "T"))

    def test_program_group_runs_native(self):
        from repro.core.clause import Program
        from repro.pipeline import compile_program, run_program

        def _ref(name, b=0):
            f = IdentityF() if b == 0 else AffineF(1, b)
            return Ref(name, SeparableMap([f]))

        program = Program([
            Clause(IndexSet(Bounds((0,), (N - 1,))), _ref("B"),
                   _ref("A") * 2.0, name="c1"),
            Clause(IndexSet(Bounds((0,), (N - 1,))), _ref("C"),
                   _ref("B") * 0.5, name="c2"),
        ])
        decomps = {n: Block(N, P) for n in "ABC"}
        pir = compile_program(program, decomps)
        rng = np.random.default_rng(11)
        env0 = {n: rng.random(N) for n in "ABC"}
        mf, _ = run_program(pir, copy_env(env0), backend="fused")
        mn, _ = run_program(pir, copy_env(env0), backend="native")
        for name in "BC":
            assert np.array_equal(mf.env[name], mn.env[name])


class TestFallbacks:
    def test_no_numba_degrades_with_trace_note(self, no_native):
        plan = compile_clause(stencil_clause(), block_decomps())
        env0 = env1d()
        ref = evaluate_clause(stencil_clause(), copy_env(env0))["A"]
        m = run_shared(plan, copy_env(env0), backend="native")
        assert np.array_equal(m.env["A"], ref)
        assert any("backend='native' fell back to the fused path" in n
                   for n in plan.trace.notes)
        md = run_distributed(plan, copy_env(env0), backend="native")
        assert np.array_equal(md.collect("A"), ref)
        assert plan.ir.kernels.native is None

    def test_seq_clause_notes_and_runs(self, interp):
        plan = compile_clause(stencil_clause(SEQ), block_decomps())
        env0 = env1d()
        ref = evaluate_clause(stencil_clause(SEQ), copy_env(env0))["A"]
        m = run_shared(plan, copy_env(env0), backend="native")
        assert np.array_equal(m.env["A"], ref)
        assert any("backend='native' fell back" in n
                   for n in plan.trace.notes)

    def test_non_contiguous_write_target_falls_back(self, interp):
        # SharedMachine.__init__ casts to float64 but preserves strides,
        # so a strided view is the reachable no-flat-view case
        from repro.machine.shared import SharedMachine

        plan = compile_clause(stencil_clause(), block_decomps())
        env0 = env1d()
        env0["A"] = np.zeros(2 * N)[::2]
        machine = SharedMachine(plan.pmax, env0)
        assert not machine.env["A"].flags.c_contiguous
        ref = evaluate_clause(stencil_clause(), copy_env(env0))["A"]
        m = run_shared(plan, env0, backend="native", machine=machine)
        assert np.array_equal(m.env["A"], ref)
        assert any("C-contiguous" in n for n in plan.trace.notes)

    def test_build_failure_reason_is_cached(self, no_native):
        ir = compile_plan(stencil_clause(), block_decomps())
        from repro.pipeline import ensure_native

        with pytest.raises(NativeBuildError):
            ensure_native(ir.kernels, ir)
        assert ir.kernels.native_note is not None
        before = native_cache_info()["failures"]
        # the cached reason is re-raised without re-attempting the build
        with pytest.raises(NativeBuildError, match="REPRO_NO_NATIVE"):
            ensure_native(ir.kernels, ir)
        assert native_cache_info()["failures"] == before

    def test_strict_verdicts_are_not_swallowed(self, interp):
        cl = Clause(
            IndexSet(Bounds((0,), (N - 2,))),
            Ref("A", SeparableMap([IdentityF()])),
            Ref("A", SeparableMap([AffineF(1, 1)])) * 0.5,
        )
        plan = compile_clause(cl, {"A": Block(N, P)})
        with pytest.raises(FusedStrictError, match="RACE"):
            run_shared(plan, env1d(), backend="native", strict=True)
        with pytest.raises(FusedStrictError, match="RACE"):
            run_distributed(plan, env1d(), backend="native", strict=True)


@pytest.mark.usefixtures("interp")
class TestCacheLifecycle:
    def test_native_tier_rides_the_kernel_cache(self):
        plan1 = compile_clause(stencil_clause(), block_decomps())
        run_shared(plan1, env1d(), backend="native")
        assert native_cache_info()["builds"] == 1
        # structurally identical recompile: same kernels, same native tier
        plan2 = compile_clause(stencil_clause(), block_decomps())
        run_shared(plan2, env1d(), backend="native")
        assert plan2.ir.kernels.native is plan1.ir.kernels.native
        assert native_cache_info()["builds"] == 1
        assert native_cache_info()["hits"] >= 1

    def test_clear_plan_cache_disposes_dispatchers(self):
        plan = compile_clause(stencil_clause(), block_decomps())
        run_shared(plan, env1d(), backend="native")
        k = plan.ir.kernels
        assert k.native is not None
        clear_plan_cache()
        assert k.native is None
        assert native_cache_info()["disposed"] == 1
        # a fresh compile + run recompiles cleanly
        plan2 = compile_clause(stencil_clause(), block_decomps())
        env0 = env1d()
        ref = evaluate_clause(stencil_clause(), copy_env(env0))["A"]
        m = run_shared(plan2, copy_env(env0), backend="native")
        assert np.array_equal(m.env["A"], ref)
        assert native_cache_info()["builds"] == 2

    def test_lru_eviction_disposes_and_recompiles(self):
        old = kernel_cache.maxsize
        kernel_cache.maxsize = 1
        try:
            planA = compile_clause(stencil_clause(), block_decomps())
            run_shared(planA, env1d(), backend="native")
            kA = planA.ir.kernels
            assert kA.native is not None
            # a structurally different plan evicts A's entry
            planB = compile_clause(guarded_clause(), block_decomps())
            run_shared(planB, env1d(), backend="native")
            assert kA.native is None
            assert native_cache_info()["disposed"] >= 1
            # running A again rebuilds its native tier cleanly
            env0 = env1d()
            ref = evaluate_clause(stencil_clause(), copy_env(env0))["A"]
            m = run_shared(planA, copy_env(env0), backend="native")
            assert np.array_equal(m.env["A"], ref)
        finally:
            kernel_cache.maxsize = old

    def test_env_var_bounds_cache_size(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_SIZE", "1")
        kc = KernelCache()
        assert kc.maxsize == 1
        irA = compile_plan(stencil_clause(), block_decomps())
        irB = compile_plan(guarded_clause(), block_decomps())
        from repro.pipeline import ensure_native

        ensure_native(irA.kernels, irA)
        ensure_native(irB.kernels, irB)
        kc.store(("a",), irA.kernels)
        kc.store(("b",), irB.kernels)
        assert kc.info()["evictions"] == 1
        assert irA.kernels.native is None       # evicted + disposed
        assert irB.kernels.native is not None   # survivor keeps its tier


class TestMpRuntime:
    @pytest.fixture(autouse=True)
    def fresh_pool(self):
        # workers inherit the env at spawn: force a fresh pool per test
        shutdown_runtime()
        yield
        shutdown_runtime()

    def test_payload_carries_native_source(self, interp):
        from repro.runtime.lowering import lower_dist

        ir = compile_plan(stencil_clause(), block_decomps())
        prog = lower_dist(ir)
        assert isinstance(prog.native_source, str)
        assert "def _kernel" in prog.native_source
        payload = prog.payload_for(0, 2)
        assert len(payload) == 7
        assert payload[-1] is prog.native_source

    def test_mp_native_bit_identity_and_stats_flag(self, interp):
        plan = compile_clause(stencil_clause(), block_decomps())
        env0 = env1d(2)
        mf = run_distributed(plan, copy_env(env0), backend="fused")
        mm = run_distributed(plan, copy_env(env0), backend="mp",
                             processes=2)
        assert np.array_equal(mf.collect("A"), mm.collect("A"))
        assert mf.stats.total_messages() == mm.stats.total_messages()
        assert all(s.native for s in mm.runtime_stats)
        assert "[native]" in mm.runtime_stats[0].describe()

    def test_mp_without_native_keeps_numpy_kernels(self, no_native):
        plan = compile_clause(stencil_clause(), block_decomps())
        env0 = env1d(2)
        mf = run_distributed(plan, copy_env(env0), backend="fused")
        mm = run_distributed(plan, copy_env(env0), backend="mp",
                             processes=2)
        assert np.array_equal(mf.collect("A"), mm.collect("A"))
        assert not any(s.native for s in mm.runtime_stats)

    def test_send_buffers_are_reused_per_step(self):
        from types import SimpleNamespace

        from repro.runtime.worker import _send_buf

        node = SimpleNamespace()
        key = (np.array([1, 2, 3]),)
        b1, f1 = _send_buf(node, 0, 1, key, (10,))
        b2, f2 = _send_buf(node, 0, 1, key, (10,))
        assert b1 is b2 and f1 is f2
        # another (read, peer) slot gets its own buffer
        b3, _ = _send_buf(node, 1, 1, key, (10,))
        assert b3 is not b1
        # a shape change reallocates instead of aliasing stale data
        b4, _ = _send_buf(node, 0, 1, (np.array([1, 2]),), (12,))
        assert b4 is not b1

    def test_native_node_data_cached_per_lane_set(self):
        from types import SimpleNamespace

        from repro.runtime.worker import _native_node_data

        node = SimpleNamespace()
        idx = (np.array([1, 2, 3]),)
        wkey = (np.array([4, 5, 6]),)
        i1, s1 = _native_node_data(node, "int", idx, wkey, (10,))
        i2, s2 = _native_node_data(node, "int", idx, wkey, (10,))
        assert i1 is i2 and s1 is s2
        assert i1.dtype == np.int64 and s1.dtype == np.int64


class TestNativeCLI:
    @pytest.fixture
    def stencil_prog(self, tmp_path):
        f = tmp_path / "stencil.pal"
        f.write_text(
            "for i := 1 to 22 par do\n"
            "    A[i] := 2 * (B[i - 1] + B[i + 1]);\n"
            "od;\n"
        )
        return str(f)

    def _arrays(self):
        return ["--array", "A=block:24", "--array", "B=block:24"]

    def test_explain_shows_probe_and_kernel_source(self, interp,
                                                   stencil_prog, capsys):
        from repro.cli import main

        rc = main(["compile", stencil_prog, "--backend", "native",
                   "--explain"] + self._arrays())
        out = capsys.readouterr().out
        assert rc == 0
        assert "# native tier: available=True mode=interp" in out
        assert "def _kernel(_i, _r, _lanes, _scatter, _out):" in out

    def test_explain_reports_unavailable_tier(self, no_native,
                                              stencil_prog, capsys):
        from repro.cli import main

        rc = main(["compile", stencil_prog, "--backend", "native",
                   "--explain"] + self._arrays())
        out = capsys.readouterr().out
        assert rc == 0
        assert "# native tier: available=False" in out
        assert "# native kernel unavailable" in out

    def test_cache_stats_has_native_line(self, stencil_prog, capsys):
        from repro.cli import main

        rc = main(["compile", stencil_prog, "--cache-stats"]
                  + self._arrays())
        out = capsys.readouterr().out
        assert rc == 0
        assert "native:" in out
        assert "jit" in out

    def test_run_native_ok(self, interp, stencil_prog, capsys):
        from repro.cli import main

        rc = main(["run", stencil_prog, "--backend", "native"]
                  + self._arrays())
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_run_native_prints_fallback_note(self, no_native,
                                             stencil_prog, capsys):
        from repro.cli import main

        rc = main(["run", stencil_prog, "--backend", "native"]
                  + self._arrays())
        captured = capsys.readouterr()
        assert rc == 0
        assert "OK" in captured.out
        assert "native tier unavailable" in captured.err
