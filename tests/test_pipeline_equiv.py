"""Equivalence properties of the unified pipeline and the vector backend.

Two families of checks:

* pipeline-compiled plans execute element-identically to the sequential
  reference evaluator across decomposition kinds and both machines;
* the vectorized segment executor (interpreter and emitted source)
  produces bit-identical arrays to the scalar templates.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codegen.barriers import run_program_shared
from repro.codegen.dist_tmpl import run_distributed
from repro.codegen.ndplan import compile_clause_nd, run_shared_nd
from repro.codegen.nddist import (
    collect_nd,
    compile_clause_nd_dist,
    run_distributed_nd,
)
from repro.codegen.plan import compile_clause
from repro.codegen.pysource import compile_distributed, compile_shared
from repro.codegen.shared_tmpl import run_shared
from repro.core import (
    PAR,
    SEQ,
    AffineF,
    Bounds,
    Clause,
    Const,
    IdentityF,
    IndexSet,
    Ref,
    SeparableMap,
    copy_env,
    evaluate_clause,
)
from repro.core.expr import BinOp
from repro.core.view import ProjectedMap
from repro.decomp import (
    Block,
    BlockScatter,
    Collapsed,
    GridDecomposition,
    Replicated,
    Scatter,
)

N, P = 40, 4

DEC_KINDS = {
    "block": lambda n: Block(n, P),
    "scatter": lambda n: Scatter(n, P),
    "bs": lambda n: BlockScatter(n, P, 3),
}


def affine_clause():
    """A[i+1] := B[2i] * 0.5 + C[i] over the range keeping 2i in bounds."""
    return Clause(
        IndexSet(Bounds((0,), ((N - 1) // 2,))),
        Ref("A", SeparableMap([AffineF(1, 1)])),
        Ref("B", SeparableMap([AffineF(2, 0)])) * 0.5
        + Ref("C", SeparableMap([IdentityF()])),
    )


def guarded_clause():
    return Clause(
        IndexSet(Bounds((0,), (N - 2,))),
        Ref("A", SeparableMap([IdentityF()])),
        Ref("B", SeparableMap([AffineF(1, 1)])) * 0.5,
        guard=Ref("C", SeparableMap([IdentityF()])) > 0.5,
    )


def env1d(seed=0):
    rng = np.random.default_rng(seed)
    return {k: rng.random(N) for k in "ABC"}


@pytest.mark.parametrize("kind", sorted(DEC_KINDS))
@pytest.mark.parametrize("make", [affine_clause, guarded_clause])
class TestPipelineMatchesReference:
    def _setup(self, kind, make):
        cl = make()
        decomps = {name: DEC_KINDS[kind](N) for name in "ABC"}
        env0 = env1d()
        ref = evaluate_clause(cl, copy_env(env0))["A"]
        return cl, decomps, env0, ref

    def test_shared(self, kind, make):
        cl, decomps, env0, ref = self._setup(kind, make)
        plan = compile_clause(cl, decomps)
        m = run_shared(plan, copy_env(env0))
        assert np.array_equal(m.env["A"], ref)

    def test_distributed(self, kind, make):
        cl, decomps, env0, ref = self._setup(kind, make)
        plan = compile_clause(cl, decomps)
        m = run_distributed(plan, copy_env(env0))
        assert np.array_equal(m.collect("A"), ref)


@pytest.mark.parametrize("kind", sorted(DEC_KINDS))
@pytest.mark.parametrize("make", [affine_clause, guarded_clause])
class TestVectorMatchesScalar1D:
    def _plan_env(self, kind, make):
        cl = make()
        decomps = {name: DEC_KINDS[kind](N) for name in "ABC"}
        return compile_clause(cl, decomps), env1d()

    def test_shared_interpreter(self, kind, make):
        plan, env0 = self._plan_env(kind, make)
        a = run_shared(plan, copy_env(env0)).env["A"]
        b = run_shared(plan, copy_env(env0), backend="vector").env["A"]
        assert np.array_equal(a, b)

    def test_distributed_interpreter(self, kind, make):
        plan, env0 = self._plan_env(kind, make)
        a = run_distributed(plan, copy_env(env0)).collect("A")
        for backend in ("vector", "overlap"):
            b = run_distributed(plan, copy_env(env0),
                                backend=backend).collect("A")
            assert np.array_equal(a, b), backend

    def test_distributed_vector_batches_messages(self, kind, make):
        plan, env0 = self._plan_env(kind, make)
        ms = run_distributed(plan, copy_env(env0))
        mv = run_distributed(plan, copy_env(env0), backend="vector")
        assert mv.stats.total_messages() <= ms.stats.total_messages()
        # batching must not change what moves
        assert (mv.stats.total_elements_moved()
                == ms.stats.total_elements_moved())

    def test_emitted_distributed_source(self, kind, make):
        from repro.machine import DistributedMachine

        plan, env0 = self._plan_env(kind, make)
        results = {}
        for backend in ("scalar", "vector", "overlap"):
            src, factory = compile_distributed(plan, backend=backend)
            m = DistributedMachine(P)
            for name in "ABC":
                m.place(name, env0[name].copy(), plan.ir.decomps[name])
            m.run(factory)
            results[backend] = m.collect("A")
        assert np.array_equal(results["scalar"], results["vector"])
        assert np.array_equal(results["scalar"], results["overlap"])

    def test_emitted_shared_source(self, kind, make):
        plan, env0 = self._plan_env(kind, make)
        results = {}
        for backend in ("scalar", "vector"):
            _src, phase = compile_shared(plan, backend=backend)
            env = copy_env(env0)
            for p in range(P):
                for name, idx, value in phase(p, env):
                    env[name][idx] = value
            results[backend] = env["A"]
        assert np.array_equal(results["scalar"], results["vector"])


class TestVectorMatchesScalarND:
    N2, M2 = 8, 6

    def _grid(self):
        return GridDecomposition([Block(self.N2, 2), Scatter(self.M2, 2)])

    def _env(self, seed=1):
        rng = np.random.default_rng(seed)
        return {"S": rng.random((self.N2, self.M2)),
                "T": np.zeros((self.N2, self.M2)),
                "x": rng.random(self.M2)}

    def test_shared_grid(self):
        g = self._grid()
        cl = Clause(
            IndexSet(Bounds((0, 0), (self.N2 - 1, self.M2 - 1))),
            Ref("T", SeparableMap([IdentityF(), IdentityF()])),
            Ref("S", SeparableMap([IdentityF(), IdentityF()])) * 3,
        )
        plan = compile_clause_nd(cl, {"T": g})
        env0 = self._env()
        a = run_shared_nd(plan, copy_env(env0)).env["T"]
        b = run_shared_nd(plan, copy_env(env0), backend="vector").env["T"]
        assert np.array_equal(a, b)

    def test_distributed_grid_shift(self):
        g = self._grid()
        cl = Clause(
            IndexSet(Bounds((0, 0), (self.N2 - 1, self.M2 - 2))),
            Ref("T", SeparableMap([IdentityF(), IdentityF()])),
            Ref("S", SeparableMap([IdentityF(), AffineF(1, 1)])) * 2
            + Ref("S", SeparableMap([IdentityF(), IdentityF()])),
        )
        plan = compile_clause_nd_dist(cl, {"T": g, "S": g})
        env0 = self._env()
        ms = run_distributed_nd(plan, copy_env(env0))
        mv = run_distributed_nd(plan, copy_env(env0), backend="vector")
        assert np.array_equal(collect_nd(ms, "T"), collect_nd(mv, "T"))
        assert mv.stats.total_messages() < ms.stats.total_messages()
        mo = run_distributed_nd(plan, copy_env(env0), backend="overlap")
        assert np.array_equal(collect_nd(ms, "T"), collect_nd(mo, "T"))

    def test_distributed_replicated_projected_read(self):
        g = self._grid()
        cl = Clause(
            IndexSet(Bounds((0, 0), (self.N2 - 1, self.M2 - 1))),
            Ref("T", SeparableMap([IdentityF(), IdentityF()])),
            Ref("S", SeparableMap([IdentityF(), IdentityF()]))
            * Ref("x", ProjectedMap((1,), (IdentityF(),))),
        )
        decomps = {"T": g, "S": g, "x": Replicated(self.M2, g.pmax)}
        plan = compile_clause_nd_dist(cl, decomps)
        env0 = self._env()
        ms = run_distributed_nd(plan, copy_env(env0))
        mv = run_distributed_nd(plan, copy_env(env0), backend="vector")
        assert np.array_equal(collect_nd(ms, "T"), collect_nd(mv, "T"))

    def test_distributed_transposed_read(self):
        g = GridDecomposition([Block(self.N2, 2), Block(self.N2, 2)])
        cl = Clause(
            IndexSet(Bounds((0, 0), (self.N2 - 1, self.N2 - 1))),
            Ref("T", SeparableMap([IdentityF(), IdentityF()])),
            Ref("S", ProjectedMap((1, 0), (IdentityF(), IdentityF()))) * 2,
        )
        plan = compile_clause_nd_dist(cl, {"T": g, "S": g})
        rng = np.random.default_rng(3)
        env0 = {"S": rng.random((self.N2, self.N2)),
                "T": np.zeros((self.N2, self.N2))}
        ms = run_distributed_nd(plan, copy_env(env0))
        mv = run_distributed_nd(plan, copy_env(env0), backend="vector")
        assert np.array_equal(collect_nd(ms, "T"), collect_nd(mv, "T"))


class TestOverlapMatchesScalar:
    """The overlapped executor is bit-identical on the issue's workloads:
    E13 (block and scatter reads) and the E19 2-D five-point stencil."""

    def _e13(self, read_kind):
        n, pmax = 64, 8
        cl = Clause(
            IndexSet(Bounds((1,), (n - 2,))),
            Ref("A", SeparableMap([IdentityF()])),
            Ref("B", SeparableMap([AffineF(1, -1)]))
            + Ref("B", SeparableMap([AffineF(1, 1)])),
        )
        d_b = Block(n, pmax) if read_kind == "block" else Scatter(n, pmax)
        plan = compile_clause(cl, {"A": Block(n, pmax), "B": d_b})
        rng = np.random.default_rng(7)
        env0 = {"A": np.zeros(n), "B": rng.random(n)}
        return plan, env0

    @pytest.mark.parametrize("read_kind", ["block", "scatter"])
    def test_e13_bit_identical(self, read_kind):
        plan, env0 = self._e13(read_kind)
        ref = run_distributed(plan, copy_env(env0)).collect("A")
        for backend in ("vector", "overlap"):
            out = run_distributed(plan, copy_env(env0),
                                  backend=backend).collect("A")
            assert np.array_equal(ref, out), backend

    def test_e13_block_has_nonempty_interior(self):
        plan, _ = self._e13("block")
        split = plan.ir.interior_split
        assert split is not None
        m, i, b = split.totals()
        assert m == i + b and i > 0 and b > 0

    def test_e13_scatter_interior_is_empty(self):
        # neighbours of a scattered element live on other nodes: every
        # write needs a message, so nothing can be computed early
        plan, _ = self._e13("scatter")
        split = plan.ir.interior_split
        assert split is not None
        assert split.totals()[1] == 0

    def test_e19_grid_bit_identical(self):
        n, p_side = 12, 2

        def sref(di, dj):
            fi = AffineF(1, di) if di else IdentityF()
            fj = AffineF(1, dj) if dj else IdentityF()
            return Ref("S", SeparableMap([fi, fj]))

        cl = Clause(
            IndexSet(Bounds((1, 1), (n - 2, n - 2))),
            Ref("T", SeparableMap([IdentityF(), IdentityF()])),
            BinOp("*", Const(0.25),
                  BinOp("+", BinOp("+", sref(-1, 0), sref(1, 0)),
                        BinOp("+", sref(0, -1), sref(0, 1)))),
        )
        g = GridDecomposition([Block(n, p_side), Block(n, p_side)])
        plan = compile_clause_nd_dist(cl, {"T": g, "S": g})
        rng = np.random.default_rng(8)
        env0 = {"S": rng.random((n, n)), "T": np.zeros((n, n))}
        ref = collect_nd(run_distributed_nd(plan, copy_env(env0)), "T")
        for backend in ("vector", "overlap"):
            m = run_distributed_nd(plan, copy_env(env0), backend=backend)
            assert np.array_equal(ref, collect_nd(m, "T")), backend
        split = plan.ir.interior_split
        assert split is not None and split.totals()[1] > 0


class TestFallbacks:
    def test_seq_clause_takes_scalar_path(self):
        cl = Clause(
            IndexSet(Bounds((0,), (N - 2,))),
            Ref("A", SeparableMap([AffineF(1, 1)])),
            Ref("A", SeparableMap([IdentityF()])) * 0.9,
            ordering=SEQ,
        )
        plan = compile_clause(cl, {"A": Block(N, P)})
        env0 = env1d()
        a = run_shared(plan, copy_env(env0)).env["A"]
        b = run_shared(plan, copy_env(env0), backend="vector").env["A"]
        assert np.array_equal(a, b)

    def test_replicated_write_distributed_falls_back(self):
        cl = Clause(
            IndexSet(Bounds((0,), (N - 1,))),
            Ref("r", SeparableMap([IdentityF()])),
            Ref("B", SeparableMap([IdentityF()])) + 1.0,
        )
        decomps = {"r": Replicated(N, P), "B": Block(N, P)}
        plan = compile_clause(cl, decomps)
        env0 = {"r": np.zeros(N), "B": env1d()["B"]}
        a = run_distributed(plan, copy_env(env0)).collect("r")
        for backend in ("vector", "overlap"):
            b = run_distributed(plan, copy_env(env0),
                                backend=backend).collect("r")
            assert np.array_equal(a, b), backend

    def test_min_expression_vectorizes(self):
        cl = Clause(
            IndexSet(Bounds((0,), (N - 1,))),
            Ref("A", SeparableMap([IdentityF()])),
            BinOp("min", Ref("B", SeparableMap([IdentityF()])),
                  Ref("C", SeparableMap([IdentityF()]))),
        )
        decomps = {"A": Block(N, P), "B": Scatter(N, P), "C": Block(N, P)}
        plan = compile_clause(cl, decomps)
        env0 = env1d()
        a = run_distributed(plan, copy_env(env0)).collect("A")
        b = run_distributed(plan, copy_env(env0),
                            backend="vector").collect("A")
        assert np.array_equal(a, b)

    def test_whole_program_shared_vector(self):
        from repro.core.clause import Program

        c1, c2 = affine_clause(), guarded_clause()
        program = Program([c1, c2])
        decomps = {name: Block(N, P) for name in "ABC"}
        env0 = env1d()
        ms, bs = run_program_shared(program, decomps, copy_env(env0))
        mv, bv = run_program_shared(program, decomps, copy_env(env0),
                                    backend="vector")
        assert bs == bv
        assert np.array_equal(ms.env["A"], mv.env["A"])


class TestAllBackendsAgree:
    """The fused-backend acceptance property: scalar, vector, overlap,
    fused, native, mp and mpi executions produce bit-identical
    post-state memories, and the batching backends (vector / overlap /
    fused / native / mp / mpi) exchange exactly the same messages,
    across decomposition kinds.

    The mp backend runs the same kernels on real OS processes — a small
    fixed worker count keeps the hypothesis sweep fast (the pool is
    persistent, so only the first example pays the spawn).  The native
    backend runs the njit scalar-loop kernels when numba is present and
    degrades to the fused tier otherwise — bit-identity is required
    either way (the interp-mode native stack is exercised separately in
    ``tests/test_native.py``).  The mpi backend is pinned to its
    threaded stub transport here (real ``mpiexec`` would pay a process
    launch per hypothesis example); when even the stub is unavailable
    it degrades to fused, and bit-identity + message parity are
    required either way."""

    @pytest.fixture(scope="class", autouse=True)
    def _mpi_stub(self):
        # exercise the real rank/transport code without mpiexec: the
        # threaded stub world (see tests/test_mpi.py for the full sweep)
        import os

        from repro.mpi import reset_mpi_support

        old = os.environ.get("REPRO_MPI_STUB")
        os.environ["REPRO_MPI_STUB"] = "1"
        reset_mpi_support()
        yield
        if old is None:
            os.environ.pop("REPRO_MPI_STUB", None)
        else:
            os.environ["REPRO_MPI_STUB"] = old
        reset_mpi_support()

    @settings(max_examples=40, deadline=None)
    @given(
        wkind=st.sampled_from(sorted(DEC_KINDS)),
        rkind=st.sampled_from(sorted(DEC_KINDS)),
        shift=st.integers(-2, 2),
        scale=st.sampled_from([1, 2]),
        guarded=st.booleans(),
        seed=st.integers(0, 2**16),
    )
    def test_backends_bit_identical(self, wkind, rkind, shift, scale,
                                    guarded, seed):
        lo = max(0, -(shift // scale) if shift < 0 else 0)
        while scale * lo + shift < 0:
            lo += 1
        hi = min(N - 1, (N - 1 - shift) // scale)
        if hi < lo:
            return
        cl = Clause(
            IndexSet(Bounds((lo,), (hi,))),
            Ref("A", SeparableMap([IdentityF()])),
            Ref("B", SeparableMap([AffineF(scale, shift)])) * 0.5
            + Ref("C", SeparableMap([IdentityF()])),
            guard=(Ref("C", SeparableMap([IdentityF()])) > 0.5
                   if guarded else None),
        )
        decomps = {"A": DEC_KINDS[wkind](N), "B": DEC_KINDS[rkind](N),
                   "C": DEC_KINDS[rkind](N)}
        plan = compile_clause(cl, decomps)
        env0 = env1d(seed)
        ref = evaluate_clause(cl, copy_env(env0))["A"]

        # shared machine: scalar / vector / fused / native / mp / mpi
        # all bit-identical
        for backend in ("scalar", "vector", "fused", "native", "mp",
                        "mpi"):
            m = run_shared(plan, copy_env(env0), backend=backend,
                           processes=2)
            assert np.array_equal(m.env["A"], ref), f"shared {backend}"

        # distributed machine: all seven backends bit-identical, and
        # the batching backends move exactly the same messages/elements
        msgs = {}
        for backend in ("scalar", "vector", "overlap", "fused",
                        "native", "mp", "mpi"):
            m = run_distributed(plan, copy_env(env0), backend=backend,
                                processes=2)
            assert np.array_equal(m.collect("A"), ref), f"dist {backend}"
            msgs[backend] = (m.stats.total_messages(),
                             m.stats.total_elements_moved())
        assert msgs["vector"] == msgs["overlap"] == msgs["fused"] \
            == msgs["native"] == msgs["mp"] == msgs["mpi"]
        # batching never changes what moves, only how it is packed
        assert msgs["vector"][1] == msgs["scalar"][1]

    def _three_clause_program(self):
        """D := f(A,B); E := g(D); F := h(E) with a redistribution
        boundary at 1->2: E is produced under block but consumed under
        scatter."""
        from repro.core.clause import Program

        c1 = Clause(
            IndexSet(Bounds((0,), (N - 1,))),
            Ref("D", SeparableMap([IdentityF()])),
            Ref("A", SeparableMap([IdentityF()])) * 0.5
            + Ref("B", SeparableMap([IdentityF()])),
            name="c1",
        )
        c2 = Clause(
            IndexSet(Bounds((1,), (N - 1,))),
            Ref("E", SeparableMap([IdentityF()])),
            Ref("D", SeparableMap([AffineF(1, -1)])) * 2.0,
            name="c2",
        )
        c3 = Clause(
            IndexSet(Bounds((0,), (N - 1,))),
            Ref("F", SeparableMap([IdentityF()])),
            Ref("E", SeparableMap([IdentityF()]))
            + Ref("A", SeparableMap([IdentityF()])),
            name="c3",
        )
        block = {n: Block(N, P) for n in "ABDEF"}
        scatter = {n: Scatter(N, P) for n in "ABDEF"}
        return Program([c1, c2, c3]), [block, block, scatter]

    def test_program_backends_bit_identical(self):
        """All five backends agree on a 3-clause program with a
        redistribution boundary — with and without elision/fusion."""
        from repro.pipeline import (
            compile_program,
            evaluate_program_reference,
            run_program,
        )

        program, decs = self._three_clause_program()
        rng = np.random.default_rng(12)
        env0 = {n: rng.random(N) for n in "ABDEF"}
        for fuse in (True, False):
            for elide in (True, False):
                pir = compile_program(program, decs, fuse=fuse,
                                      elide=elide)
                if elide:
                    assert any(name == "E"
                               for _, name, _ in pir.redistributions)
                ref = evaluate_program_reference(pir, env0)
                for backend in ("scalar", "vector", "overlap", "fused",
                                "mp"):
                    m, _ = run_program(pir, copy_env(env0),
                                       backend=backend, processes=2)
                    for name in "DEF":
                        assert np.array_equal(m.env[name], ref[name]), \
                            (backend, fuse, elide, name)

    def test_pipelined_time_loop_backends_bit_identical(self):
        """A pipelined repeat(steps) stencil loop with a U<->V swap is
        bit-identical across all backends for both swap parities."""
        from repro.core.clause import Program
        from repro.pipeline import (
            compile_program,
            evaluate_program_reference,
            run_program,
        )

        cl = Clause(
            IndexSet(Bounds((1,), (N - 2,))),
            Ref("V", SeparableMap([IdentityF()])),
            (Ref("U", SeparableMap([AffineF(1, -1)]))
             + Ref("U", SeparableMap([AffineF(1, 1)]))) * 0.5,
            name="step",
        )
        program = Program([cl])
        decomps = {"U": Block(N, P), "V": Block(N, P)}
        rng = np.random.default_rng(13)
        env0 = {"U": rng.random(N), "V": rng.random(N)}
        for steps in (4, 7):
            pir = compile_program(program, decomps, repeat=steps,
                                  swap=(("U", "V"),))
            assert pir.pipelined, pir.pipeline_reason
            ref = evaluate_program_reference(pir, env0)
            for backend in ("scalar", "vector", "overlap", "fused", "mp"):
                m, barriers = run_program(pir, copy_env(env0),
                                          backend=backend, processes=2)
                assert barriers == steps
                for name in "UV":
                    assert np.array_equal(m.env[name], ref[name]), \
                        (backend, steps, name)
