"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main, parse_decomposition
from repro.decomp import Block, BlockScatter, Replicated, Scatter, SingleOwner

PROGRAM = """
for i := 0 to 19 par do
    A[i] := B[(i + 6) mod 20] * 2;
od
"""

GUARDED = """
for i := 1 to n - 1 par do
    if A[i] > 0 then
        A[i] := B[i - 1] + 1;
    fi;
od
"""


@pytest.fixture
def prog_file(tmp_path):
    f = tmp_path / "prog.pal"
    f.write_text(PROGRAM)
    return str(f)


@pytest.fixture
def guarded_file(tmp_path):
    f = tmp_path / "guarded.pal"
    f.write_text(GUARDED)
    return str(f)


class TestParseDecomposition:
    def test_block(self):
        name, d = parse_decomposition("A=block:20", 4)
        assert name == "A"
        assert isinstance(d, Block)
        assert (d.n, d.pmax) == (20, 4)

    def test_block_with_size(self):
        _, d = parse_decomposition("A=block:20:7", 4)
        assert d.b == 7

    def test_scatter(self):
        _, d = parse_decomposition("B=scatter:48", 6)
        assert isinstance(d, Scatter)

    def test_bs(self):
        _, d = parse_decomposition("A=bs:20:2", 4)
        assert isinstance(d, BlockScatter)
        assert d.b == 2

    def test_bs_requires_param(self):
        with pytest.raises(SystemExit):
            parse_decomposition("A=bs:20", 4)

    def test_single(self):
        _, d = parse_decomposition("A=single:10:2", 4)
        assert isinstance(d, SingleOwner)
        assert d.owner == 2

    def test_replicated(self):
        _, d = parse_decomposition("A=replicated:10", 4)
        assert isinstance(d, Replicated)

    def test_bad_kind(self):
        with pytest.raises(SystemExit):
            parse_decomposition("A=banana:10", 4)

    def test_bad_shape(self):
        with pytest.raises(SystemExit):
            parse_decomposition("A:block:10", 4)


class TestCommands:
    def test_layout(self, capsys):
        assert main(["layout", "bs:15:2", "--pmax", "4"]) == 0
        out = capsys.readouterr().out
        assert "0  0  1  1  2  2  3  3  0  0  1  1  2  2  3" in out

    def test_compile_prints_rules_and_source(self, prog_file, capsys):
        rc = main([
            "compile", prog_file, "--pmax", "4",
            "--array", "A=block:20", "--array", "B=scatter:20",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "write:A" in out
        assert "def node_program(ctx, RT):" in out
        assert "piecewise" in out

    def test_run_verifies(self, prog_file, capsys):
        rc = main([
            "run", prog_file, "--pmax", "4",
            "--array", "A=block:20", "--array", "B=scatter:20",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "messages=" in out

    def test_run_with_params_and_show(self, guarded_file, capsys):
        rc = main([
            "run", guarded_file, "--pmax", "2",
            "--array", "A=block:12", "--array", "B=block:12",
            "--param", "n=12", "--show", "--seed", "3",
        ])
        assert rc == 0
        assert "A = [" in capsys.readouterr().out

    def test_derive(self, prog_file, capsys):
        rc = main([
            "derive", prog_file, "--pmax", "4",
            "--array", "A=block:20", "--array", "B=scatter:20",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Eq. 3" in out
        assert "semantics-checked: OK" in out

    def test_stdin_input(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(PROGRAM))
        rc = main([
            "run", "-", "--pmax", "4",
            "--array", "A=block:20", "--array", "B=block:20",
        ])
        assert rc == 0

    def test_bad_param(self, prog_file):
        with pytest.raises(SystemExit):
            main([
                "run", prog_file, "--pmax", "4",
                "--array", "A=block:20", "--array", "B=block:20",
                "--param", "n=oops",
            ])


class TestSpecFileIntegration:
    def test_run_with_spec_file(self, prog_file, tmp_path, capsys):
        spec = tmp_path / "decomp.spec"
        spec.write_text("""
            distribute A[20](block) on 4;
            distribute B[20](scatter) on 4;
        """)
        rc = main(["run", prog_file, "--spec", str(spec)])
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_spec_mixed_pmax_rejected(self, prog_file, tmp_path):
        spec = tmp_path / "bad.spec"
        spec.write_text("""
            distribute A[20](block) on 4;
            distribute B[20](scatter) on 2;
        """)
        with pytest.raises(SystemExit, match="mixes processor counts"):
            main(["run", prog_file, "--spec", str(spec)])

    def test_no_decompositions_rejected(self, prog_file):
        with pytest.raises(SystemExit, match="no decompositions"):
            main(["run", prog_file])

    def test_spec_plus_array_override(self, prog_file, tmp_path, capsys):
        spec = tmp_path / "decomp.spec"
        spec.write_text("distribute A[20](block) on 4;")
        rc = main([
            "run", prog_file, "--spec", str(spec),
            "--array", "B=scatter:20",
        ])
        assert rc == 0


class TestSharedProgramMode:
    def test_shared_run_with_barrier_elimination(self, tmp_path, capsys):
        f = tmp_path / "pipe.pal"
        f.write_text("""
            for i := 0 to 19 par do A[i] := B[i] + 1; od
            for i := 0 to 19 par do C[i] := A[i] * 2; od
        """)
        rc = main([
            "run", str(f), "--shared", "--pmax", "4",
            "--array", "A=block:20", "--array", "B=block:20",
            "--array", "C=block:20",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 barrier(s)" in out  # aligned phases fused

    def test_shared_run_keeps_needed_barriers(self, tmp_path, capsys):
        f = tmp_path / "pipe.pal"
        f.write_text("""
            for i := 0 to 18 par do A[i] := B[i] + 1; od
            for i := 0 to 18 par do C[i] := A[i + 1] * 2; od
        """)
        rc = main([
            "run", str(f), "--shared", "--pmax", "4",
            "--array", "A=block:20", "--array", "B=block:20",
            "--array", "C=block:20",
        ])
        assert rc == 0
        assert "2 barrier(s)" in capsys.readouterr().out
