"""Tests for the distributed DOACROSS pipeline extension (§2.6 remark)."""

import numpy as np
import pytest

from repro.codegen.doacross import (
    compile_doacross,
    make_doacross_program,
    run_doacross,
)
from repro.core import (
    PAR,
    SEQ,
    AffineF,
    Clause,
    IndexSet,
    Ref,
    SeparableMap,
    copy_env,
    evaluate_clause,
)
from repro.decomp import Block, BlockScatter, Replicated, Scatter


def recurrence_clause(n, s=1, ordering=SEQ, guard=None, with_b=True):
    """A[i] := 0.5 A[i-s] (+ B[i])."""
    rhs = Ref("A", SeparableMap([AffineF(1, -s)])) * 0.5
    if with_b:
        rhs = rhs + Ref("B", SeparableMap([AffineF(1, 0)]))
    return Clause(
        domain=IndexSet.range1d(s, n - 1),
        lhs=Ref("A", SeparableMap([AffineF(1, 0)])),
        rhs=rhs,
        ordering=ordering,
        guard=guard,
    )


def env_for(n, seed=0):
    rng = np.random.default_rng(seed)
    return {"A": rng.random(n), "B": rng.random(n)}


class TestValidation:
    def test_par_clause_rejected(self):
        cl = recurrence_clause(16, ordering=PAR)
        with pytest.raises(ValueError, match="•-ordered"):
            compile_doacross(cl, {"A": Block(16, 4), "B": Block(16, 4)})

    def test_non_identity_write_rejected(self):
        cl = Clause(
            IndexSet.range1d(1, 7),
            Ref("A", SeparableMap([AffineF(2, 0)])),
            Ref("A", SeparableMap([AffineF(1, -1)])),
            ordering=SEQ,
        )
        with pytest.raises(ValueError, match="identity write"):
            compile_doacross(cl, {"A": Block(16, 4)})

    def test_forward_dependence_rejected(self):
        cl = Clause(
            IndexSet.range1d(0, 6),
            Ref("A", SeparableMap([AffineF(1, 0)])),
            Ref("A", SeparableMap([AffineF(1, 1)])),
            ordering=SEQ,
        )
        with pytest.raises(ValueError, match="backward shifts"):
            compile_doacross(cl, {"A": Block(16, 4)})

    def test_no_recurrence_rejected(self):
        cl = Clause(
            IndexSet.range1d(0, 7),
            Ref("A", SeparableMap([AffineF(1, 0)])),
            Ref("B", SeparableMap([AffineF(1, 0)])),
            ordering=SEQ,
        )
        with pytest.raises(ValueError, match="no recurrence"):
            compile_doacross(cl, {"A": Block(8, 2), "B": Block(8, 2)})

    def test_guard_on_written_array_rejected(self):
        guard = Ref("A", SeparableMap([AffineF(1, 0)])) > 0
        cl = recurrence_clause(16, guard=guard)
        # the guard's A[i] read is caught either as a non-backward read of
        # the written array or by the explicit guard check
        with pytest.raises(ValueError,
                           match="backward shifts|guards may not reference"):
            compile_doacross(cl, {"A": Block(16, 4), "B": Block(16, 4)})

    def test_replicated_write_rejected(self):
        cl = recurrence_clause(16, with_b=False)
        with pytest.raises(ValueError, match="replicated"):
            compile_doacross(cl, {"A": Replicated(16, 4)})

    def test_distance_recorded(self):
        cl = recurrence_clause(16, s=3)
        plan = compile_doacross(cl, {"A": Block(16, 4), "B": Block(16, 4)})
        assert plan.max_distance == 3


class TestExecution:
    @pytest.mark.parametrize("mk", [
        lambda: Block(24, 4),
        lambda: Scatter(24, 4),
        lambda: BlockScatter(24, 4, 2),
    ], ids=["block", "scatter", "bs2"])
    def test_matches_sequential_reference(self, mk):
        cl = recurrence_clause(24)
        env0 = env_for(24)
        ref = evaluate_clause(cl, copy_env(env0))["A"]
        plan = compile_doacross(cl, {"A": mk(), "B": Scatter(24, 4)})
        m = run_doacross(plan, copy_env(env0))
        assert np.allclose(m.collect("A"), ref)

    def test_longer_dependence_distance(self):
        cl = recurrence_clause(30, s=3)
        env0 = env_for(30)
        ref = evaluate_clause(cl, copy_env(env0))["A"]
        plan = compile_doacross(cl, {"A": Block(30, 5), "B": Block(30, 5)})
        m = run_doacross(plan, copy_env(env0))
        assert np.allclose(m.collect("A"), ref)

    def test_guard_on_other_array(self):
        guard = Ref("B", SeparableMap([AffineF(1, 0)])) > 0.5
        cl = recurrence_clause(24, guard=guard)
        env0 = env_for(24, seed=5)
        ref = evaluate_clause(cl, copy_env(env0))["A"]
        plan = compile_doacross(cl, {"A": Scatter(24, 4), "B": Block(24, 4)})
        m = run_doacross(plan, copy_env(env0))
        assert np.allclose(m.collect("A"), ref)

    def test_prefix_sum_style_chain(self):
        # A[i] := A[i-1] + B[i] — the full serial chain, scattered:
        # every hop crosses processors, maximum pipeline pressure.
        n = 32
        cl = Clause(
            IndexSet.range1d(1, n - 1),
            Ref("A", SeparableMap([AffineF(1, 0)])),
            Ref("A", SeparableMap([AffineF(1, -1)]))
            + Ref("B", SeparableMap([AffineF(1, 0)])),
            ordering=SEQ,
        )
        env0 = env_for(n, seed=9)
        ref = evaluate_clause(cl, copy_env(env0))["A"]
        plan = compile_doacross(cl, {"A": Scatter(n, 4), "B": Scatter(n, 4)})
        m = run_doacross(plan, copy_env(env0))
        assert np.allclose(m.collect("A"), ref)
        # scatter: every dependence hop is a message
        assert m.stats.total_messages() >= n - 2

    def test_block_dependences_mostly_local(self):
        n = 32
        cl = recurrence_clause(n, with_b=False)
        env0 = env_for(n)
        plan = compile_doacross(cl, {"A": Block(n, 4)})
        m = run_doacross(plan, copy_env(env0))
        ref = evaluate_clause(cl, copy_env(env0))["A"]
        assert np.allclose(m.collect("A"), ref)
        # only block boundaries communicate: pmax - 1 dep messages
        assert m.stats.total_messages() == 3

    def test_single_processor_degenerates(self):
        cl = recurrence_clause(16)
        env0 = env_for(16)
        ref = evaluate_clause(cl, copy_env(env0))["A"]
        plan = compile_doacross(cl, {"A": Block(16, 1), "B": Block(16, 1)})
        m = run_doacross(plan, copy_env(env0))
        assert np.allclose(m.collect("A"), ref)
        assert m.stats.total_messages() == 0
