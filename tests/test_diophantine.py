"""Tests for extended Euclid and the Theorem 3 diophantine machinery (§3-4)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.diophantine import (
    active_processors,
    bezout_constant,
    extended_euclid,
    gcd_steps,
    knuth_step_bound,
    solve_scatter_congruence,
)


class TestExtendedEuclid:
    @given(st.integers(0, 10**6), st.integers(0, 10**6))
    def test_matches_math_gcd(self, a, b):
        if a == 0 and b == 0:
            return
        assert extended_euclid(a, b).g == math.gcd(a, b)

    @given(st.integers(0, 10**6), st.integers(0, 10**6))
    def test_bezout_identity(self, a, b):
        if a == 0 and b == 0:
            return
        r = extended_euclid(a, b)
        assert r.x * a + r.y * b == r.g

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            extended_euclid(-1, 2)

    def test_rejects_double_zero(self):
        with pytest.raises(ValueError):
            extended_euclid(0, 0)

    def test_known_case(self):
        r = extended_euclid(240, 46)
        assert r.g == 2
        assert 240 * r.x + 46 * r.y == 2


class TestStepBounds:
    """Section 4's complexity claims about Euclid."""

    @given(st.integers(1, 10**6), st.integers(1, 10**6))
    @settings(max_examples=300)
    def test_knuth_worst_case_bound(self, a, b):
        n = max(a, b) + 1
        assert gcd_steps(a, b) <= knuth_step_bound(n) + 1.0

    def test_small_a_max_five_steps(self):
        # paper: "suppose a <= 7, then the maximal number of steps is 5"
        worst = max(
            gcd_steps(a, p) for a in range(1, 8) for p in range(1, 4096)
        )
        assert worst <= 5

    def test_small_a_average_about_2_65(self):
        # paper: average ≈ 2.65 for a <= 7
        steps = [
            gcd_steps(a, p) for a in range(1, 8) for p in range(1, 1024)
        ]
        avg = sum(steps) / len(steps)
        assert 1.8 <= avg <= 3.2

    def test_fibonacci_is_worst_case(self):
        # consecutive Fibonacci numbers maximize the step count
        fib = [1, 1]
        while len(fib) < 25:
            fib.append(fib[-1] + fib[-2])
        assert gcd_steps(fib[20], fib[19]) >= 18


class TestScatterCongruence:
    """Theorem 3: solve a.i + c ≡ p (mod pmax)."""

    @given(
        st.integers(-8, 8).filter(lambda a: a),
        st.integers(-10, 10),
        st.integers(1, 12),
        st.integers(0, 11),
    )
    @settings(max_examples=400)
    def test_solutions_match_bruteforce(self, a, c, pmax, p):
        if p >= pmax:
            return
        sol = solve_scatter_congruence(a, c, pmax, p)
        want = [i for i in range(-50, 200) if (a * i + c) % pmax == p]
        if sol is None:
            assert want == []
        else:
            assert sol.solutions_in(-50, 199) == want

    def test_no_solution_case(self):
        # 2i ≡ 1 (mod 4) has no solution
        assert solve_scatter_congruence(2, 0, 4, 1) is None

    def test_stride_is_pmax_over_gcd(self):
        sol = solve_scatter_congruence(6, 0, 8, 2)
        assert sol is not None
        assert sol.stride == 8 // math.gcd(6, 8)

    def test_gen_and_t_range_cover_exactly(self):
        sol = solve_scatter_congruence(3, 1, 7, 4)
        assert sol is not None
        tmin, tmax = sol.t_range(0, 100)
        got = [sol.gen(t) for t in range(tmin, tmax + 1)]
        assert got == sol.solutions_in(0, 100)

    def test_empty_t_range_when_no_index_in_bounds(self):
        sol = solve_scatter_congruence(1, 0, 10, 5)
        tmin, tmax = sol.t_range(6, 14)  # only i=5 or 15 would match... none in [6,14]
        assert tmin > tmax

    def test_rejects_a_zero(self):
        with pytest.raises(ValueError):
            solve_scatter_congruence(0, 1, 4, 0)

    def test_pmax_one_always_solves(self):
        sol = solve_scatter_congruence(5, 3, 1, 0)
        assert sol is not None
        assert sol.stride == 1


class TestActiveProcessors:
    """Section 4: active processors are spaced gcd(a, pmax) apart."""

    @given(
        st.integers(-8, 8).filter(lambda a: a),
        st.integers(0, 10),
        st.integers(1, 12),
    )
    @settings(max_examples=300)
    def test_matches_solvability(self, a, c, pmax):
        act = active_processors(a, c, pmax)
        for p in range(pmax):
            sol = solve_scatter_congruence(a, c, pmax, p)
            assert (p in act) == (sol is not None)

    def test_spacing_is_gcd(self):
        act = active_processors(6, 0, 9)  # gcd = 3
        assert act == [0, 3, 6]

    def test_all_active_when_coprime(self):
        assert active_processors(5, 2, 8) == list(range(8))


class TestBezoutConstant:
    @given(st.integers(-8, 8).filter(lambda a: a), st.integers(1, 64))
    def test_defining_property(self, a, pmax):
        C = bezout_constant(a, pmax)
        g = math.gcd(abs(a), pmax)
        assert (a * C) % pmax == g % pmax
