"""Tests for the reporting helpers."""

import numpy as np

from repro.codegen import compile_clause, run_distributed
from repro.core import AffineF, Clause, IndexSet, Ref, SeparableMap
from repro.decomp import Block, Scatter
from repro.machine import HYPERCUBE, MachineStats
from repro.report import format_run, format_table, run_summary


class TestFormatTable:
    def test_alignment(self):
        out = format_table("t", ["col", "x"], [["a", 1], ["long", 22]])
        lines = out.splitlines()
        assert lines[0] == "=== t ==="
        assert "col" in lines[1]
        assert all(len(l) <= len(lines[1]) + 2 for l in lines[2:])

    def test_empty_rows(self):
        out = format_table("t", ["a", "b"], [])
        assert "a" in out


class TestRunSummary:
    def run(self):
        cl = Clause(
            IndexSet.range1d(0, 19),
            Ref("A", SeparableMap([AffineF(1, 0)])),
            Ref("B", SeparableMap([AffineF(1, 0)])) + 1,
        )
        plan = compile_clause(cl, {"A": Block(20, 4), "B": Scatter(20, 4)})
        rng = np.random.default_rng(0)
        return run_distributed(plan, {"A": np.zeros(20), "B": rng.random(20)})

    def test_summary_keys(self):
        m = self.run()
        s = run_summary(m.stats)
        assert {"messages", "updates", "tests", "load_imbalance"} <= set(s)
        assert "modeled_makespan" not in s

    def test_summary_with_model(self):
        m = self.run()
        s = run_summary(m.stats, HYPERCUBE)
        assert s["modeled_makespan"] > 0
        assert s["modeled_speedup"] > 0

    def test_format_run_line(self):
        m = self.run()
        line = format_run("demo", m.stats, HYPERCUBE)
        assert line.startswith("demo:")
        assert "messages=" in line
        assert "speedup=" in line

    def test_empty_stats(self):
        s = run_summary(MachineStats.for_nodes(2))
        assert s["updates"] == 0
