"""Tests for generated Python node-program source (paper's program
generation, §2.9-2.10 templates as real emitted code)."""

import numpy as np
import pytest

from repro.codegen import (
    compile_clause,
    compile_distributed,
    compile_shared,
    emit_distributed_source,
    emit_shared_source,
    run_distributed,
)
from repro.core import (
    AffineF,
    Clause,
    IdentityF,
    IndexSet,
    ModularF,
    Ref,
    SeparableMap,
    copy_env,
    evaluate_clause,
)
from repro.decomp import Block, BlockScatter, Replicated, Scatter, SingleOwner
from repro.machine import DistributedMachine, SharedMachine


def mk(n=20, f=None, g=None, guard=None, lo=0, hi=None):
    f = f or AffineF(1, 0)
    g = g or AffineF(1, 0)
    return Clause(
        domain=IndexSet.range1d(lo, hi if hi is not None else n - 1),
        lhs=Ref("A", SeparableMap([f])),
        rhs=Ref("B", SeparableMap([g])) * 2 + 1,
        guard=guard,
        name="t",
    )


def env_for(n, seed=5):
    rng = np.random.default_rng(seed)
    return {"A": rng.random(n), "B": rng.random(n)}


CASES = [
    ("block-block-id", Block, Block, AffineF(1, 0), AffineF(1, 0)),
    ("block-scatter-shift", Block, Scatter, AffineF(1, 0), AffineF(1, 1)),
    ("scatter-block-stride", Scatter, Block, AffineF(2, 1), AffineF(1, 0)),
    ("bs-bs", lambda n, p: BlockScatter(n, p, 2),
     lambda n, p: BlockScatter(n, p, 3), AffineF(1, 0), AffineF(1, 2)),
    ("rotate-read", Block, Scatter, AffineF(1, 0),
     ModularF(AffineF(1, 6), 20)),
    ("single-owner", lambda n, p: SingleOwner(n, p, 2), Block,
     AffineF(1, 0), AffineF(1, 0)),
    ("replicated-read", Scatter, lambda n, p: Replicated(n, p),
     AffineF(1, 0), AffineF(1, 3)),
]


def _fit_domain(f, g, n):
    cand = [
        i for i in range(n)
        if 0 <= f(i) < n and 0 <= g(i) < n
    ]
    return min(cand), max(cand)


class TestGeneratedDistributed:
    @pytest.mark.parametrize("name,mkA,mkB,f,g", CASES)
    def test_equals_interpreter_template(self, name, mkA, mkB, f, g):
        n, pmax = 20, 4
        lo, hi = _fit_domain(f, g, n)
        cl = mk(n=n, f=f, g=g, lo=lo, hi=hi)
        dA, dB = mkA(n, pmax), mkB(n, pmax)
        plan = compile_clause(cl, {"A": dA, "B": dB})
        env0 = env_for(n)
        ref = evaluate_clause(cl, copy_env(env0))

        src, factory = compile_distributed(plan)
        m = DistributedMachine(pmax)
        m.place("A", env0["A"], dA)
        m.place("B", env0["B"], dB)
        m.run(factory)
        assert np.allclose(m.collect("A"), ref["A"]), name

        # interpreter template agrees, including message counts
        m2 = run_distributed(plan, copy_env(env0))
        assert m.stats.total_messages() == m2.stats.total_messages(), name

    def test_source_mirrors_paper_template(self):
        plan = compile_clause(
            mk(), {"A": Block(20, 4), "B": Scatter(20, 4)}
        )
        src = emit_distributed_source(plan)
        # structure of the §2.10 template
        assert "def node_program(ctx, RT):" in src
        assert "p = ctx.p" in src
        assert "send phase" in src
        assert "update phase" in src
        assert "yield ctx.barrier()" in src
        # the chosen Table I rule is documented in the header
        assert "[rule block]" in src

    def test_guard_emitted(self):
        guard = Ref("A", SeparableMap([IdentityF()])) > 0
        plan = compile_clause(
            mk(guard=guard), {"A": Block(20, 4), "B": Block(20, 4)}
        )
        src = emit_distributed_source(plan)
        assert "if not (" in src

    def test_no_membership_scan_in_generated_code(self):
        # The generated text loops over RT segments; the full index range
        # never appears as a literal loop (the §3-intro naive pattern).
        plan = compile_clause(
            mk(), {"A": BlockScatter(20, 4, 2), "B": Scatter(20, 4)}
        )
        src = emit_distributed_source(plan)
        assert "RT.segments" in src
        assert f"range({plan.imin}, {plan.imax + 1})" not in src

    def test_guarded_distributed_execution(self):
        n, pmax = 20, 4
        guard = Ref("A", SeparableMap([IdentityF()])) > 0.4
        cl = mk(n=n, guard=guard)
        dA, dB = Block(n, pmax), Scatter(n, pmax)
        plan = compile_clause(cl, {"A": dA, "B": dB})
        env0 = env_for(n)
        ref = evaluate_clause(cl, copy_env(env0))
        src, factory = compile_distributed(plan)
        m = DistributedMachine(pmax)
        m.place("A", env0["A"], dA)
        m.place("B", env0["B"], dB)
        m.run(factory)
        assert np.allclose(m.collect("A"), ref["A"])


class TestGeneratedShared:
    @pytest.mark.parametrize("name,mkA,mkB,f,g", CASES)
    def test_equals_reference(self, name, mkA, mkB, f, g):
        n, pmax = 20, 4
        lo, hi = _fit_domain(f, g, n)
        cl = mk(n=n, f=f, g=g, lo=lo, hi=hi)
        dA, dB = mkA(n, pmax), mkB(n, pmax)
        plan = compile_clause(cl, {"A": dA, "B": dB})
        env0 = env_for(n)
        ref = evaluate_clause(cl, copy_env(env0))
        src, phase = compile_shared(plan)
        m = SharedMachine(pmax, copy_env(env0))
        m.run_phase(lambda p: phase(p, m.env))
        assert np.allclose(m.env["A"], ref["A"]), name

    def test_source_mirrors_paper_template(self):
        plan = compile_clause(mk(), {"A": Block(20, 4), "B": Block(20, 4)})
        src = emit_shared_source(plan)
        assert "def node_phase(p, env, RT):" in src
        assert "forall i in Modify_p" in src
        # block + affine write: the Table I bounds appear as inline
        # arithmetic, not as a runtime call
        assert "segs_w" in src
        assert "block bounds" in src
        assert "RT.segments" not in src

    def test_direct_global_addressing(self):
        # shared-memory code addresses env['B'][g(i)] directly — no
        # local() remapping, no sends
        plan = compile_clause(mk(g=AffineF(1, 2), hi=17),
                              {"A": Block(20, 4), "B": Scatter(20, 4)})
        src = emit_shared_source(plan)
        assert "env['B'][(i + 2)]" in src
        assert "send" not in src
