"""Tests for index sets (paper Definition 2)."""

import pytest

from repro.core.bounds import Bounds
from repro.core.indexset import TRUE, IndexSet, Predicate


class TestPredicate:
    def test_call(self):
        p = Predicate(lambda i: i[0] > 0, "pos")
        assert p((1,))
        assert not p((0,))

    def test_true_identity_of_and(self):
        p = Predicate(lambda i: i[0] % 2 == 0, "even")
        assert (TRUE & p) is p
        assert (p & TRUE) is p

    def test_conjunction(self):
        even = Predicate(lambda i: i[0] % 2 == 0, "even")
        small = Predicate(lambda i: i[0] < 5, "small")
        both = even & small
        assert both((2,))
        assert not both((6,))
        assert not both((3,))

    def test_compose_pulls_back(self):
        # P(i) = i >= 4 pulled back through ip(i) = 2i gives i >= 2
        p = Predicate(lambda i: i[0] >= 4, "ge4")
        q = p.compose(lambda i: (2 * i[0],), "2i")
        assert q((2,))
        assert not q((1,))


class TestDefinition2Example:
    def test_example2(self):
        # I = (b, P) with l=(0,0), u=(2,2), P((i1,i2)) = i1 < i2
        # yields {(0,1), (0,2), (1,2)}
        I = IndexSet(
            Bounds((0, 0), (2, 2)),
            Predicate(lambda i: i[0] < i[1], "i1<i2"),
        )
        assert I.materialize() == [(0, 1), (0, 2), (1, 2)]


class TestQueries:
    def test_range1d(self):
        I = IndexSet.range1d(2, 5)
        assert list(I.iter_scalar()) == [2, 3, 4, 5]

    def test_of_shape(self):
        I = IndexSet.of_shape(2, 3)
        assert I.size() == 6
        assert I.bounds.upper == (1, 2)

    def test_membership_uses_predicate(self):
        I = IndexSet.range1d(0, 9, Predicate(lambda i: i[0] % 3 == 0, "div3"))
        assert 0 in I
        assert 3 in I
        assert 4 not in I
        assert 12 not in I  # outside bounds

    def test_is_empty(self):
        assert IndexSet.range1d(5, 2).is_empty()
        assert not IndexSet.range1d(0, 0).is_empty()
        never = IndexSet.range1d(0, 10, Predicate(lambda i: False, "no"))
        assert never.is_empty()

    def test_size_counts_predicate_members(self):
        I = IndexSet.range1d(0, 9, Predicate(lambda i: i[0] % 2 == 0, "even"))
        assert I.size() == 5


class TestAlgebra:
    def test_restrict(self):
        I = IndexSet.range1d(0, 9)
        J = I.restrict(Predicate(lambda i: i[0] > 7, "gt7"))
        assert J.materialize() == [(8,), (9,)]

    def test_intersect(self):
        I = IndexSet.range1d(0, 6, Predicate(lambda i: i[0] % 2 == 0, "even"))
        J = IndexSet.range1d(3, 9)
        K = I.intersect(J)
        assert K.materialize() == [(4,), (6,)]

    def test_same_members(self):
        I = IndexSet.range1d(1, 3)
        assert I.same_members([1, 2, 3])
        assert I.same_members([(1,), (2,), (3,)])
        assert not I.same_members([1, 2])

    def test_iter_scalar_rejects_2d(self):
        with pytest.raises(ValueError):
            list(IndexSet.of_shape(2, 2).iter_scalar())
