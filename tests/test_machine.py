"""Tests for the simulated machines (channels, scheduler, memories)."""

import numpy as np
import pytest

from repro.decomp import Block, OverlappedBlock, Replicated, Scatter
from repro.machine import (
    Barrier,
    DeadlockError,
    DistributedMachine,
    LocalMemory,
    MachineStats,
    Network,
    Recv,
    SharedMachine,
    Yield,
    gather_global,
    run_spmd,
    scatter_global,
)


class TestNetwork:
    def test_send_then_recv(self):
        net = Network(2)
        net.send(0, 1, "t", 42)
        msg = net.try_recv(1, 0, "t")
        assert msg.payload == 42

    def test_recv_empty_returns_none(self):
        net = Network(2)
        assert net.try_recv(1, 0, "t") is None

    def test_fifo_per_tag(self):
        net = Network(2)
        net.send(0, 1, "a", 1)
        net.send(0, 1, "b", 2)
        net.send(0, 1, "a", 3)
        assert net.try_recv(1, 0, "b").payload == 2  # tag match skips 'a'
        assert net.try_recv(1, 0, "a").payload == 1
        assert net.try_recv(1, 0, "a").payload == 3

    def test_pending_counts(self):
        net = Network(3)
        net.send(0, 1, "t", 1)
        net.send(2, 1, "t", 2)
        assert net.pending() == 2
        assert net.pending_for(1) == 2
        net.try_recv(1, 0, "t")
        assert net.pending() == 1

    def test_drain_check(self):
        net = Network(2)
        net.send(0, 1, "t", 1)
        with pytest.raises(AssertionError):
            net.drain_check()

    def test_range_validation(self):
        net = Network(2)
        with pytest.raises(IndexError):
            net.send(0, 5, "t", 1)


class TestScheduler:
    def test_simple_pingpong(self):
        net = Network(2)
        log = []

        def node0():
            net.send(0, 1, "ping", "hello")
            reply = yield Recv(1, "pong")
            log.append(("n0", reply))

        def node1():
            msg = yield Recv(0, "ping")
            net.send(1, 0, "pong", msg + "!")
            log.append(("n1", msg))

        run_spmd([node0(), node1()], net)
        assert ("n0", "hello!") in log
        assert ("n1", "hello") in log

    def test_barrier_synchronizes(self):
        net = Network(3)
        order = []

        def node(p):
            order.append(("before", p))
            yield Barrier()
            order.append(("after", p))

        run_spmd([node(p) for p in range(3)], net)
        befores = [k for k, (tag, _) in enumerate(order) if tag == "before"]
        afters = [k for k, (tag, _) in enumerate(order) if tag == "after"]
        assert max(befores) < min(afters)

    def test_multiple_barriers(self):
        net = Network(2)
        trace = []

        def node(p):
            for round_ in range(3):
                trace.append((p, round_))
                yield Barrier()

        run_spmd([node(0), node(1)], net)
        assert len(trace) == 6

    def test_yield_allows_progress(self):
        net = Network(2)
        done = []

        def node0():
            yield Yield()
            done.append(0)

        def node1():
            done.append(1)
            return
            yield  # pragma: no cover

        run_spmd([node0(), node1()], net)
        assert sorted(done) == [0, 1]

    def test_deadlock_detected(self):
        net = Network(2)

        def node0():
            yield Recv(1, "never")

        def node1():
            yield Recv(0, "never")

        with pytest.raises(DeadlockError) as ei:
            run_spmd([node0(), node1()], net)
        assert "blocked nodes" in str(ei.value)

    def test_barrier_releases_among_live_nodes_only(self):
        # A node that has terminated no longer participates in barriers —
        # the remaining nodes synchronize among themselves.
        net = Network(2)
        done = []

        def node0():
            yield Barrier()
            done.append(0)

        def node1():
            done.append(1)
            return
            yield  # pragma: no cover

        run_spmd([node0(), node1()], net)
        assert sorted(done) == [0, 1]

    def test_recv_before_send_ordering(self):
        # receiver blocks first, sender arrives later: must still deliver
        net = Network(2)
        got = []

        def receiver():
            v = yield Recv(1, "x")
            got.append(v)

        def sender():
            yield Yield()
            yield Yield()
            net.send(1, 0, "x", 99)

        run_spmd([receiver(), sender()], net)
        assert got == [99]

    def test_stats_recorded(self):
        net = Network(2)
        stats = MachineStats.for_nodes(2)

        def node0():
            net.send(0, 1, "t", 1)
            yield Barrier()

        def node1():
            _ = yield Recv(0, "t")
            yield Barrier()

        run_spmd([node0(), node1()], net, stats)
        assert stats[1].recvs == 1
        assert stats[0].barriers == 1
        assert stats[1].barriers == 1


class TestLocalMemoryPlacement:
    def test_scatter_gather_roundtrip_block(self):
        d = Block(17, 4)
        mems = [LocalMemory(p) for p in range(4)]
        arr = np.arange(17.0)
        scatter_global("A", arr, d, mems)
        out = gather_global("A", d, mems)
        assert np.array_equal(out, arr)

    def test_scatter_gather_roundtrip_scatter(self):
        d = Scatter(17, 4)
        mems = [LocalMemory(p) for p in range(4)]
        arr = np.arange(17.0) * 2
        scatter_global("A", arr, d, mems)
        out = gather_global("A", d, mems)
        assert np.array_equal(out, arr)

    def test_local_layout_matches_decomposition(self):
        d = Scatter(12, 4)
        mems = [LocalMemory(p) for p in range(4)]
        scatter_global("A", np.arange(12.0), d, mems)
        assert list(mems[1]["A"]) == [1.0, 5.0, 9.0]

    def test_replicated_copies_everywhere(self):
        d = Replicated(5, 3)
        mems = [LocalMemory(p) for p in range(3)]
        scatter_global("A", np.arange(5.0), d, mems)
        for mem in mems:
            assert np.array_equal(mem["A"], np.arange(5.0))

    def test_replicated_gather_checks_consistency(self):
        d = Replicated(5, 3)
        mems = [LocalMemory(p) for p in range(3)]
        scatter_global("A", np.arange(5.0), d, mems)
        mems[2]["A"][0] = 99
        with pytest.raises(AssertionError):
            gather_global("A", d, mems)

    def test_overlapped_block_fills_halo(self):
        d = OverlappedBlock(16, 4, halo=1)
        mems = [LocalMemory(p) for p in range(4)]
        scatter_global("A", np.arange(16.0), d, mems)
        # node 1 resident range is [3, 8]
        assert list(mems[1]["A"]) == [3.0, 4.0, 5.0, 6.0, 7.0, 8.0]
        out = gather_global("A", d, mems)
        assert np.array_equal(out, np.arange(16.0))

    def test_size_mismatch_rejected(self):
        d = Block(10, 2)
        with pytest.raises(ValueError):
            scatter_global("A", np.zeros(9), d, [LocalMemory(0), LocalMemory(1)])


class TestDistributedMachine:
    def test_place_collect_roundtrip(self):
        m = DistributedMachine(4)
        arr = np.arange(20.0)
        m.place("A", arr, Block(20, 4))
        assert np.array_equal(m.collect("A"), arr)

    def test_pmax_mismatch_rejected(self):
        m = DistributedMachine(4)
        with pytest.raises(ValueError):
            m.place("A", np.zeros(10), Block(10, 2))

    def test_run_node_programs_with_context(self):
        m = DistributedMachine(2)
        m.place("A", np.zeros(4), Block(4, 2))

        def prog(ctx):
            def gen():
                ctx.update("A", 0, ctx.p + 1.0)
                ctx.update("A", 1, ctx.p + 1.0)
                yield ctx.barrier()
            return gen()

        m.run(prog)
        assert list(m.collect("A")) == [1.0, 1.0, 2.0, 2.0]
        assert m.stats.total_updates() == 4

    def test_undrained_network_flagged(self):
        m = DistributedMachine(2)

        def prog(ctx):
            def gen():
                if ctx.p == 0:
                    ctx.send(1, "orphan", 1)
                yield ctx.barrier()
            return gen()

        with pytest.raises(AssertionError):
            m.run(prog)


class TestSharedMachine:
    def test_phase_commits_after_barrier(self):
        env = {"A": np.array([1.0, 2.0, 3.0, 4.0])}
        m = SharedMachine(2, env)

        # every node shifts its half: A[i] := A[i+1] — must read pre-state
        def phase(p):
            lo, hi = (0, 1) if p == 0 else (2, 2)
            return [("A", i, m.env["A"][i + 1]) for i in range(lo, hi + 1)]

        m.run_phase(phase)
        assert list(m.env["A"]) == [2.0, 3.0, 4.0, 4.0]

    def test_sequential_phase_commits_immediately(self):
        env = {"A": np.array([1.0, 0.0])}
        m = SharedMachine(2, env)

        def phase(p):
            # node p copies A[0] into A[p]... node 1 sees node 0's write
            return [("A", p, m.env["A"][0] + 1)]

        m.run_sequential_phase(phase)
        assert list(m.env["A"]) == [2.0, 3.0]

    def test_stats_update_counts(self):
        m = SharedMachine(2, {"A": np.zeros(4)})
        m.run_phase(lambda p: [("A", 2 * p + k, 1.0) for k in range(2)])
        assert m.stats.update_counts() == [2, 2]


class TestMachineStats:
    def test_load_imbalance(self):
        s = MachineStats.for_nodes(4)
        for p, n in enumerate([10, 10, 10, 10]):
            s[p].local_updates = n
        assert s.load_imbalance() == 1.0
        s[0].local_updates = 40
        assert s.load_imbalance() > 2.0

    def test_summary_keys(self):
        s = MachineStats.for_nodes(2)
        assert set(s.summary()) == {
            "messages", "elements_moved", "updates", "tests", "iterations",
        }
