"""Tests for the pass-based compilation pipeline and its introspection
surface: PlanIR, PassManager, PipelineTrace, the CLI ``--explain`` dump,
vector slice views, and the structured deadlock diagnosis."""

import numpy as np
import pytest

from repro.cli import main, parse_decomposition
from repro.codegen.ndplan import compile_clause_nd
from repro.codegen.nddist import compile_clause_nd_dist
from repro.codegen.plan import compile_clause
from repro.codegen.pysource import RuntimeTables
from repro.core import (
    PAR,
    SEQ,
    AffineF,
    Bounds,
    Clause,
    IdentityF,
    IndexSet,
    Ref,
    SeparableMap,
)
from repro.core.rewrite import derivation_forms, derive_spmd
from repro.decomp import Block, GridDecomposition, Replicated, Scatter
from repro.machine import DeadlockError, Network, Recv, run_spmd
from repro.pipeline import (
    PassManager,
    PipelineTrace,
    PlanIR,
    compile_plan,
    default_passes,
)
from repro.sets.enumerators import Enumeration, Segment

N, P = 24, 4

PASS_ORDER = [
    "substitute-views",
    "optimize-membership",
    "split-interior",
    "insert-halo",
    "eliminate-barriers",
    "recognize-reduction",
    "license-doacross",
    "lower-kernels",
]


def simple_clause(ordering=PAR):
    return Clause(
        IndexSet(Bounds((0,), (N - 2,))),
        Ref("A", SeparableMap([AffineF(1, 1)])),
        Ref("B", SeparableMap([IdentityF()])) * 2,
        ordering=ordering,
    )


def block_decomps():
    return {"A": Block(N, P), "B": Block(N, P)}


class TestPassManager:
    def test_default_pass_order(self):
        assert [p.name for p in default_passes()] == PASS_ORDER

    def test_trace_has_one_record_per_pass(self):
        ir = compile_plan(simple_clause(), block_decomps())
        assert ir.trace.names() == PASS_ORDER

    def test_records_carry_paper_sections_and_timings(self):
        ir = compile_plan(simple_clause(), block_decomps())
        for rec in ir.trace.records:
            assert rec.paper.startswith("§")
            assert rec.wall_ms >= 0.0
            assert rec.before != "" and rec.after != ""

    def test_substitute_and_optimize_rewrite(self):
        ir = compile_plan(simple_clause(), block_decomps())
        by = ir.trace.by_name()
        # write + one read substituted, both get non-naive Table I rules
        assert by["substitute-views"].rewrites == 2
        assert by["optimize-membership"].rewrites == 2

    def test_pretty_lists_passes_in_order(self):
        ir = compile_plan(simple_clause(), block_decomps())
        out = ir.trace.pretty()
        positions = [out.index(name) for name in PASS_ORDER]
        assert positions == sorted(positions)
        assert "rewrites=" in out

    def test_custom_pass_list(self):
        mgr = PassManager(default_passes()[:2])
        ir = PlanIR(clause=simple_clause(), decomps=block_decomps())
        mgr.run(ir)
        assert ir.trace.names() == PASS_ORDER[:2]
        assert ir.write is not None

    def test_summary_is_json_friendly(self):
        import json

        ir = compile_plan(simple_clause(), block_decomps())
        payload = json.dumps(ir.trace.summary())
        assert "substitute-views" in payload


class TestUnifiedEntryPoints:
    def test_1d_plan_carries_ir_and_trace(self):
        plan = compile_clause(simple_clause(), block_decomps())
        assert plan.ir is not None
        assert plan.trace is not None
        assert plan.trace.names() == PASS_ORDER

    def test_nd_plan_carries_ir_and_trace(self):
        g = GridDecomposition([Block(8, 2), Block(8, 2)])
        cl = Clause(
            IndexSet(Bounds((0, 0), (7, 7))),
            Ref("T", SeparableMap([IdentityF(), IdentityF()])),
            Ref("T", SeparableMap([IdentityF(), IdentityF()])) * 2,
        )
        for compiled in (compile_clause_nd(cl, {"T": g}),
                         compile_clause_nd_dist(cl, {"T": g})):
            assert compiled.ir is not None
            assert compiled.trace.names() == PASS_ORDER

    def test_1d_is_a_degenerate_one_axis_grid(self):
        ir = compile_plan(simple_clause(), block_decomps())
        assert ir.ndim == 1
        assert ir.write.grid_coord(2) == (2,)

    def test_barrier_pass_uses_successor(self):
        # same independent clause twice: no datum crosses processors,
        # the barrier between them is removable
        c1, c2 = simple_clause(), simple_clause()
        ir = compile_plan(c1, block_decomps(), successor=c2)
        assert ir.barrier_needed is False
        ir_last = compile_plan(c1, block_decomps())
        assert ir_last.barrier_needed is True

    def test_derivation_reuses_pass_records(self):
        cl, dec = simple_clause(), block_decomps()
        trace = derive_spmd(cl, dec).as_trace()
        assert isinstance(trace, PipelineTrace)
        assert trace.total_rewrites() == len(trace.records) > 0
        forms = derivation_forms(cl, dec)
        assert [r.name for r in trace.records] == [rule for rule, _ in forms]
        # the substitute-views pass embeds the same §2.6 forms as notes
        ir = compile_plan(cl, dec)
        notes = " ".join(ir.trace.by_name()["substitute-views"].notes)
        assert "canonical (Eq. 1)" in notes


class TestSliceViews:
    def test_segment_as_slice_and_index_array(self):
        s = Segment(3, 11, 2)
        assert s.as_slice() == slice(3, 12, 2)
        assert np.array_equal(s.index_array(), np.arange(3, 12, 2))

    def test_enumeration_index_array_is_sorted(self):
        e = Enumeration([Segment(10, 14, 2), Segment(1, 5, 2)])
        arr = e.index_array()
        assert arr.dtype == np.int64
        assert np.array_equal(arr, np.sort(arr))
        assert set(arr.tolist()) == set(e.indices())

    def test_empty_enumeration(self):
        e = Enumeration([])
        assert e.index_array().size == 0
        assert e.slices() == []

    def test_runtime_tables_index_array(self):
        plan = compile_clause(simple_clause(), block_decomps())
        rt = RuntimeTables(plan)
        for p in range(P):
            idx = rt.index_array("write", p)
            segs = rt.segments("write", p)
            flat = sorted(
                i for lo, hi, st in segs for i in range(lo, hi + 1, st)
            )
            assert idx.tolist() == flat


class TestDeadlockDiagnosis:
    def _deadlock(self):
        net = Network(2)

        def node0():
            yield Recv(1, "never")

        def node1():
            net.send(1, 0, "wrong-tag", 1.5)
            yield Recv(0, "never")

        with pytest.raises(DeadlockError) as ei:
            run_spmd([node0(), node1()], net)
        return ei.value

    def test_blocked_nodes_are_structured(self):
        err = self._deadlock()
        assert err.blocked == {0: ("recv", 1, "never"),
                               1: ("recv", 0, "never")}

    def test_undelivered_messages_listed(self):
        err = self._deadlock()
        assert err.undelivered == [(1, 0, "wrong-tag")]
        assert "wrong-tag" in str(err)

    def test_network_pending_messages(self):
        net = Network(3)
        net.send(0, 1, "a", 1.0)
        net.send(2, 1, "b", 2.0)
        assert net.pending_messages() == [(0, 1, "a"), (2, 1, "b")]


class TestCLI:
    def _write(self, tmp_path):
        f = tmp_path / "prog.pal"
        f.write_text(
            "for i := 0 to 19 par do\n"
            "    A[i] := B[(i + 6) mod 20] * 2;\n"
            "od\n"
        )
        return str(f)

    def test_explain_prints_ordered_pass_list(self, tmp_path, capsys):
        rc = main(["compile", self._write(tmp_path), "--pmax", "4",
                   "--array", "A=block:20", "--array", "B=scatter:20",
                   "--explain"])
        assert rc == 0
        out = capsys.readouterr().out
        positions = [out.index(name) for name in PASS_ORDER]
        assert positions == sorted(positions)
        assert "rewrites=" in out

    def test_compile_vector_backend_emits_numpy(self, tmp_path, capsys):
        rc = main(["compile", self._write(tmp_path), "--pmax", "4",
                   "--array", "A=block:20", "--array", "B=scatter:20",
                   "--backend", "vector"])
        assert rc == 0
        assert "_vec_index" in capsys.readouterr().out

    def test_run_vector_backend(self, tmp_path, capsys):
        rc = main(["run", self._write(tmp_path), "--pmax", "4",
                   "--array", "A=block:20", "--array", "B=scatter:20",
                   "--backend", "vector"])
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_run_shared_vector_backend(self, tmp_path, capsys):
        rc = main(["run", self._write(tmp_path), "--pmax", "4",
                   "--array", "A=block:20", "--array", "B=scatter:20",
                   "--shared", "--backend", "vector"])
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    @pytest.mark.parametrize("spec", [
        "A=block",            # missing size
        "A=block:zz",         # non-integer size
        "Ablock:20",          # missing '='
        "A=bs:20",            # bs without block size
        "A=warp:20",          # unknown kind
        "A=block:20:2",       # constructor rejects b too small
        "A=bs:20:0",          # constructor rejects b < 1
        "A=single:20:9",      # owner out of range for pmax=4
    ])
    def test_malformed_array_specs_exit_one_line(self, spec):
        with pytest.raises(SystemExit) as ei:
            parse_decomposition(spec, 4)
        msg = str(ei.value)
        assert "\n" not in msg and msg  # one-line diagnosis
