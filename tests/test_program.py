"""The whole-program layer: ``compile_program`` and its inter-clause
passes (redistribution elision, clause fusion, time-loop pipelining),
the program cache, and ``run_program`` across backends.

Backend bit-identity sweeps over programs live in
``tests/test_pipeline_equiv.py::TestAllBackendsAgree``; this module
tests the program machinery itself.
"""

import numpy as np
import pytest

from repro.codegen.barriers import run_program_shared
from repro.core import (
    SEQ,
    AffineF,
    Bounds,
    Clause,
    IdentityF,
    IndexSet,
    Ref,
    SeparableMap,
    copy_env,
)
from repro.core.clause import Program
from repro.decomp import Block, Scatter
from repro.pipeline import (
    clear_plan_cache,
    compile_program,
    evaluate_program_reference,
    program_cache,
    program_cache_info,
    run_program,
)

N, P = 32, 4


def _ref(name, a=1, b=0):
    f = IdentityF() if (a, b) == (1, 0) else AffineF(a, b)
    return Ref(name, SeparableMap([f]))


def scale_clause(dst, src, lo=0, hi=N - 1, name=None):
    return Clause(IndexSet(Bounds((lo,), (hi,))), _ref(dst),
                  _ref(src) * 2.0, name=name or f"{dst}={src}*2")


def stencil_clause(dst, src, name=None):
    return Clause(
        IndexSet(Bounds((1,), (N - 2,))), _ref(dst),
        (_ref(src, 1, -1) + _ref(src, 1, 1)) * 0.5,
        name=name or f"{dst}=avg({src})",
    )


def env_for(names, seed=0):
    rng = np.random.default_rng(seed)
    return {n: rng.random(N) for n in names}


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_plan_cache()
    yield
    clear_plan_cache()


class TestCompileProgram:
    def test_agreeing_boundary_elides_and_fuses(self):
        program = Program([scale_clause("B", "A"), scale_clause("C", "B")])
        decomps = {n: Block(N, P) for n in "ABC"}
        pir = compile_program(program, decomps)
        assert [name for _, name in pir.elided] == ["B", "C"]
        assert pir.redistributions == []
        assert pir.groups == [[0, 1]]          # one fused phase
        assert pir.barrier_flags() == [False, True]
        assert pir.barriers_per_step() == 1

    def test_fusion_note_carries_race_verdict(self):
        program = Program([scale_clause("B", "A"), scale_clause("C", "B")])
        pir = compile_program(program, {n: Block(N, P) for n in "ABC"})
        rec = next(r for r in pir.trace.records if r.name == "fuse-clauses")
        note = "\n".join(rec.notes)
        assert "RACE verdict" in note and "RACE-clean" in note

    def test_redistribution_boundary_is_kept(self):
        program = Program([scale_clause("B", "A"), scale_clause("C", "B")])
        decs = [{n: Block(N, P) for n in "ABC"},
                {"B": Scatter(N, P), "C": Scatter(N, P)}]
        pir = compile_program(program, decs)
        assert any(name == "B" for _, name, _ in pir.redistributions)
        # placement disagreement blocks the barrier proof: barrier kept
        assert pir.groups == [[0], [1]]

    def test_cross_processor_flow_keeps_barrier(self):
        # clause 2 reads B at i±1: the flow crosses processors
        program = Program([scale_clause("B", "A"), stencil_clause("C", "B")])
        pir = compile_program(program, {n: Block(N, P) for n in "ABC"})
        assert pir.elided and not pir.redistributions
        assert pir.groups == [[0], [1]]
        rec = next(r for r in pir.trace.records if r.name == "fuse-clauses")
        assert any("barrier kept" in n for n in rec.notes)

    def test_seq_clause_never_fuses(self):
        seq = Clause(IndexSet(Bounds((1,), (N - 1,))), _ref("B"),
                     _ref("B", 1, -1) * 0.5, ordering=SEQ, name="rec")
        program = Program([seq, scale_clause("C", "B")])
        pir = compile_program(program, {n: Block(N, P) for n in "BC"})
        assert pir.groups == [[0], [1]]
        # the • singleton group runs serially: no barrier counted for it
        assert pir.barriers_per_step() == 1

    def test_fuse_and_elide_can_be_disabled(self):
        program = Program([scale_clause("B", "A"), scale_clause("C", "B")])
        decomps = {n: Block(N, P) for n in "ABC"}
        pir = compile_program(program, decomps, fuse=False, elide=False)
        assert pir.groups == [[0], [1]]
        assert pir.elided == []
        assert pir.redistributions  # every boundary re-places

    def test_empty_program_refused(self):
        with pytest.raises(ValueError):
            compile_program(Program([]), {})

    def test_duplicate_swap_name_refused(self):
        program = Program([scale_clause("B", "A")])
        with pytest.raises(ValueError, match="two swap pairs"):
            compile_program(program, {n: Block(N, P) for n in "AB"},
                            repeat=2, swap=(("A", "B"), ("B", "C")))

    def test_wrong_length_decomps_list_refused(self):
        program = Program([scale_clause("B", "A")])
        with pytest.raises(ValueError, match="per-clause"):
            compile_program(program, [{n: Block(N, P) for n in "AB"}] * 2)


class TestTimeLoopPipelining:
    def _loop(self, **kw):
        program = Program([stencil_clause("V", "U")])
        decomps = {"U": Block(N, P), "V": Block(N, P)}
        return compile_program(program, decomps, repeat=5,
                               swap=(("U", "V"),), **kw)

    def test_compatible_swap_pipelines(self):
        pir = self._loop()
        assert pir.pipelined, pir.pipeline_reason
        # wrap-around step boundary elides via the swap rename
        assert ("step", "U") in pir.elided
        rec = next(r for r in pir.trace.records
                   if r.name == "elide-redistribution")
        assert any("via swap" in n for n in rec.notes)

    def test_mismatched_swap_placement_blocks_pipelining(self):
        program = Program([stencil_clause("V", "U")])
        decomps = {"U": Block(N, P), "V": Scatter(N, P)}
        pir = compile_program(program, decomps, repeat=5,
                              swap=(("U", "V"),))
        assert not pir.pipelined
        assert "placements differ" in pir.pipeline_reason

    def test_surviving_redistribution_blocks_pipelining(self):
        program = Program([scale_clause("B", "A"), scale_clause("C", "B")])
        decs = [{n: Block(N, P) for n in "ABC"},
                {"B": Scatter(N, P), "C": Scatter(N, P)}]
        pir = compile_program(program, decs, repeat=3)
        assert not pir.pipelined
        assert "survive elision" in pir.pipeline_reason

    def test_repeat_one_is_not_a_time_loop(self):
        program = Program([stencil_clause("V", "U")])
        pir = compile_program(program, {"U": Block(N, P), "V": Block(N, P)})
        assert not pir.pipelined
        assert "repeat=1" in pir.pipeline_reason


class TestProgramCache:
    def _compile(self):
        program = Program([scale_clause("B", "A"), scale_clause("C", "B")])
        return compile_program(program, {n: Block(N, P) for n in "ABC"})

    def test_structural_recompile_hits(self):
        pir1 = self._compile()
        assert not pir1.trace.cache_hit
        pir2 = self._compile()
        assert pir2.trace.cache_hit
        assert program_cache_info()["hits"] == 1
        # the clone re-anchors onto the caller's fresh clause objects
        assert pir2.steps[0].clause is not pir1.steps[0].clause
        assert pir2.groups == pir1.groups

    def test_options_are_part_of_the_key(self):
        program = Program([scale_clause("B", "A"), scale_clause("C", "B")])
        decomps = {n: Block(N, P) for n in "ABC"}
        compile_program(program, decomps)
        pir = compile_program(program, decomps, fuse=False)
        assert not pir.trace.cache_hit

    def test_cached_program_still_executes(self):
        self._compile()
        pir = self._compile()
        assert pir.trace.cache_hit
        env0 = env_for("ABC")
        ref = evaluate_program_reference(pir, env0)
        m, _ = run_program(pir, copy_env(env0), backend="fused")
        assert np.array_equal(m.env["C"], ref["C"])

    def test_eviction_counter(self):
        from repro.pipeline.program import ProgramCache

        cache = ProgramCache(maxsize=1)
        cache.store(("k1",), self._compile())
        cache.store(("k2",), self._compile())
        assert cache.info()["evictions"] == 1
        assert cache.info()["size"] == 1

    def test_env_override_bounds_cache(self, monkeypatch):
        from repro.pipeline import cache as cache_mod
        from repro.pipeline.program import ProgramCache

        monkeypatch.setenv("REPRO_CACHE_SIZE", "7")
        assert cache_mod._env_maxsize(64) == 7
        assert ProgramCache().maxsize == 7
        monkeypatch.setenv("REPRO_CACHE_SIZE", "bogus")
        assert cache_mod._env_maxsize(64) == 64
        monkeypatch.setenv("REPRO_CACHE_SIZE", "0")
        assert cache_mod._env_maxsize(64) == 1  # clamped to >= 1

    def test_clear_plan_cache_clears_program_cache(self):
        self._compile()
        assert program_cache_info()["size"] == 1
        clear_plan_cache()
        info = program_cache_info()
        assert info["size"] == 0 and info["hits"] == 0
        assert info["evictions"] == 0


class TestRunProgram:
    def test_multi_step_swap_matches_reference(self):
        program = Program([stencil_clause("V", "U")])
        decomps = {"U": Block(N, P), "V": Block(N, P)}
        env0 = env_for("UV", seed=3)
        for repeat in (1, 2, 5):
            pir = compile_program(program, decomps, repeat=repeat,
                                  swap=(("U", "V"),))
            ref = evaluate_program_reference(pir, env0)
            for backend in ("scalar", "vector", "fused"):
                m, barriers = run_program(pir, copy_env(env0),
                                          backend=backend)
                assert barriers == repeat
                for name in "UV":
                    assert np.array_equal(m.env[name], ref[name]), \
                        (backend, repeat, name)

    def test_mp_pipelined_loop_matches_reference(self):
        program = Program([stencil_clause("V", "U")])
        decomps = {"U": Block(N, P), "V": Block(N, P)}
        env0 = env_for("UV", seed=4)
        for repeat in (2, 5):       # even and odd swap parity
            pir = compile_program(program, decomps, repeat=repeat,
                                  swap=(("U", "V"),))
            assert pir.pipelined
            ref = evaluate_program_reference(pir, env0)
            m, barriers = run_program(pir, copy_env(env0), backend="mp",
                                      processes=2)
            assert barriers == repeat
            for name in "UV":
                assert np.array_equal(m.env[name], ref[name]), \
                    (repeat, name)

    def test_fused_group_runs_group_kernels(self):
        program = Program([scale_clause("B", "A"), scale_clause("C", "B")])
        decomps = {n: Block(N, P) for n in "ABC"}
        pir = compile_program(program, decomps)
        assert pir.groups == [[0, 1]]
        env0 = env_for("ABC", seed=5)
        ref = evaluate_program_reference(pir, env0)
        m, barriers = run_program(pir, copy_env(env0), backend="fused")
        assert barriers == 1
        assert np.array_equal(m.env["C"], ref["C"])

    def test_overlap_degrades_with_note(self):
        program = Program([scale_clause("B", "A")])
        pir = compile_program(program, {n: Block(N, P) for n in "AB"})
        env0 = env_for("AB")
        ref = evaluate_program_reference(pir, env0)
        m, _ = run_program(pir, copy_env(env0), backend="overlap")
        assert np.array_equal(m.env["B"], ref["B"])
        assert any("overlap" in n for n in pir.trace.notes)

    def test_unknown_backend_refused(self):
        from repro.backends import UnknownBackendError

        program = Program([scale_clause("B", "A")])
        pir = compile_program(program, {n: Block(N, P) for n in "AB"})
        with pytest.raises(UnknownBackendError):
            run_program(pir, env_for("AB"), backend="warp")

    def test_mp_unpipelined_loop_falls_back(self):
        # U:Scatter vs V:Block blocks pipelining; mp must still be
        # correct by driving clauses per step
        program = Program([stencil_clause("V", "U")])
        decomps = {"U": Block(N, P), "V": Scatter(N, P)}
        env0 = env_for("UV", seed=6)
        pir = compile_program(program, decomps, repeat=3,
                              swap=(("U", "V"),))
        assert not pir.pipelined
        ref = evaluate_program_reference(pir, env0)
        m, _ = run_program(pir, copy_env(env0), backend="mp", processes=2)
        for name in "UV":
            assert np.array_equal(m.env[name], ref[name]), name
        assert any("driving clauses individually" in n
                   for n in pir.trace.notes)

    def test_seq_clause_runs_scalar_inside_program(self):
        seq = Clause(IndexSet(Bounds((1,), (N - 1,))), _ref("B"),
                     _ref("B", 1, -1) * 0.5 + _ref("A"), ordering=SEQ,
                     name="rec")
        program = Program([seq, scale_clause("C", "B")])
        decomps = {n: Block(N, P) for n in "ABC"}
        pir = compile_program(program, decomps)
        env0 = env_for("ABC", seed=7)
        ref = evaluate_program_reference(pir, env0)
        for backend in ("scalar", "fused", "mp"):
            m, barriers = run_program(pir, copy_env(env0), backend=backend,
                                      processes=2)
            assert barriers == 1  # the • group is serial, uncounted
            assert np.array_equal(m.env["C"], ref["C"]), backend


class TestLegacyWrapper:
    def test_run_program_shared_matches_program_layer(self):
        program = Program([scale_clause("B", "A"), stencil_clause("C", "B")])
        decomps = {n: Block(N, P) for n in "ABC"}
        env0 = env_for("ABC", seed=8)
        pir = compile_program(program, decomps)
        ref = evaluate_program_reference(pir, env0)
        m, barriers = run_program_shared(program, decomps, copy_env(env0))
        assert barriers == 2
        assert np.array_equal(m.env["C"], ref["C"])

    def test_eliminate_barriers_false_keeps_all(self):
        program = Program([scale_clause("B", "A"), scale_clause("C", "B")])
        decomps = {n: Block(N, P) for n in "ABC"}
        env0 = env_for("ABC", seed=9)
        _, fused = run_program_shared(program, decomps, copy_env(env0))
        _, kept = run_program_shared(program, decomps, copy_env(env0),
                                     eliminate_barriers=False)
        assert fused == 1 and kept == 2
