"""Tests for the executable §2.6-2.7 derivation chain."""

import numpy as np
import pytest

from repro.core import (
    PAR,
    SEQ,
    AffineF,
    Clause,
    IndexSet,
    ModularF,
    Ref,
    SeparableMap,
    copy_env,
    evaluate_clause,
)
from repro.core.rewrite import derive_spmd
from repro.decomp import Block, BlockScatter, Scatter


def mk_clause(n=20, guard=False, ordering=PAR):
    g = Ref("A", SeparableMap([AffineF(1, 0)])) > 0.5 if guard else None
    return Clause(
        domain=IndexSet.range1d(0, n - 1),
        lhs=Ref("A", SeparableMap([AffineF(1, 0)])),
        rhs=Ref("B", SeparableMap([ModularF(AffineF(1, 3), n)])) * 2,
        ordering=ordering,
        guard=g,
    )


def env_for(n=20, seed=2):
    rng = np.random.default_rng(seed)
    return {"A": rng.random(n), "B": rng.random(n)}


class TestDerivationChain:
    def test_four_steps_produced(self):
        d = derive_spmd(mk_clause(), {"A": Block(20, 4), "B": Scatter(20, 4)})
        assert [s.rule for s in d.steps] == [
            "canonical (Eq. 1)",
            "substitute + contract (Eq. 2)",
            "rename + interchange (Eq. 3)",
            "retrieval split (§2.7)",
        ]

    def test_forms_mention_paper_artifacts(self):
        d = derive_spmd(mk_clause(), {"A": Block(20, 4), "B": Scatter(20, 4)})
        assert "∆(i ∈ (0:19))" in d.steps[0].form
        assert "proc_A" in d.steps[1].form
        assert "∆(p ∈ (0:3))" in d.steps[2].form
        assert "proc_A(1*i) = p" in d.steps[2].form
        assert "fetch(" in d.steps[3].form

    @pytest.mark.parametrize("mkA,mkB", [
        (lambda: Block(20, 4), lambda: Block(20, 4)),
        (lambda: Block(20, 4), lambda: Scatter(20, 4)),
        (lambda: Scatter(20, 4), lambda: BlockScatter(20, 4, 3)),
    ], ids=["bb", "bs", "sbs"])
    def test_all_steps_semantics_preserving(self, mkA, mkB):
        cl = mk_clause()
        env = env_for()
        d = derive_spmd(cl, {"A": mkA(), "B": mkB()})
        result = d.check(env)
        ref = evaluate_clause(cl, copy_env(env))["A"]
        assert np.allclose(result, ref)

    def test_guarded_derivation(self):
        cl = mk_clause(guard=True)
        env = env_for(seed=7)
        d = derive_spmd(cl, {"A": Block(20, 4), "B": Scatter(20, 4)})
        result = d.check(env)
        ref = evaluate_clause(cl, copy_env(env))["A"]
        assert np.allclose(result, ref)

    def test_seq_clause_rejected(self):
        with pytest.raises(ValueError, match="// clauses"):
            derive_spmd(mk_clause(ordering=SEQ),
                        {"A": Block(20, 4), "B": Block(20, 4)})

    def test_pretty_output(self):
        d = derive_spmd(mk_clause(), {"A": Block(20, 4), "B": Scatter(20, 4)})
        text = d.pretty()
        assert text.count("[") > 4
        assert "Eq. 3" in text
