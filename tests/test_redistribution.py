"""Tests for generated redistribution programs (dynamic decompositions)."""

import numpy as np
import pytest

from repro.codegen import run_redistribution
from repro.decomp import Block, BlockScatter, Scatter, SingleOwner
from repro.machine import DistributedMachine


def machine_with(n, pmax, dec, seed=11):
    rng = np.random.default_rng(seed)
    arr = rng.random(n)
    m = DistributedMachine(pmax)
    m.place("A", arr, dec)
    return m, arr


class TestRedistributionExecution:
    @pytest.mark.parametrize("mk_src,mk_dst", [
        (lambda: Block(24, 4), lambda: Scatter(24, 4)),
        (lambda: Scatter(24, 4), lambda: Block(24, 4)),
        (lambda: Block(24, 4), lambda: BlockScatter(24, 4, 2)),
        (lambda: BlockScatter(24, 4, 3), lambda: BlockScatter(24, 4, 2)),
        (lambda: Block(24, 4), lambda: SingleOwner(24, 4, 0)),
        (lambda: SingleOwner(24, 4, 2), lambda: Scatter(24, 4)),
    ])
    def test_values_preserved(self, mk_src, mk_dst):
        m, arr = machine_with(24, 4, mk_src())
        run_redistribution(m, "A", mk_dst())
        assert np.allclose(m.collect("A"), arr)

    def test_identity_redistribution(self):
        m, arr = machine_with(20, 4, Block(20, 4))
        plan = run_redistribution(m, "A", Block(20, 4))
        assert plan.moved_elements() == 0
        assert m.stats.total_messages() == 0
        assert np.allclose(m.collect("A"), arr)

    def test_messages_are_coalesced(self):
        # one message per (src, dst) pair, NOT one per element
        m, _ = machine_with(32, 4, Block(32, 4))
        plan = run_redistribution(m, "A", Scatter(32, 4))
        assert m.stats.total_messages() == plan.message_count()
        assert plan.moved_elements() > plan.message_count()

    def test_element_volume_matches_plan(self):
        m, _ = machine_with(32, 4, Block(32, 4))
        plan = run_redistribution(m, "A", Scatter(32, 4))
        assert m.stats.total_elements_moved() == plan.moved_elements()

    def test_chained_redistributions(self):
        m, arr = machine_with(30, 4, Block(30, 4))
        run_redistribution(m, "A", Scatter(30, 4))
        run_redistribution(m, "A", BlockScatter(30, 4, 2))
        run_redistribution(m, "A", Block(30, 4))
        assert np.allclose(m.collect("A"), arr)

    def test_registry_updated(self):
        m, _ = machine_with(20, 4, Block(20, 4))
        new = Scatter(20, 4)
        run_redistribution(m, "A", new)
        assert m.decomposition("A") is new

    def test_local_buffers_resized(self):
        m, _ = machine_with(20, 4, SingleOwner(20, 4, 0))
        assert m.memories[1]["A"].size == 0
        run_redistribution(m, "A", Block(20, 4))
        assert m.memories[1]["A"].size == 5

    def test_works_alongside_other_arrays(self):
        rng = np.random.default_rng(0)
        m = DistributedMachine(4)
        a, b = rng.random(20), rng.random(20)
        m.place("A", a, Block(20, 4))
        m.place("B", b, Scatter(20, 4))
        run_redistribution(m, "A", Scatter(20, 4))
        assert np.allclose(m.collect("A"), a)
        assert np.allclose(m.collect("B"), b)
