"""Tests for SPMD plan compilation and the machine templates (§2.6-2.10)."""

import numpy as np
import pytest

from repro.baselines import run_distributed_naive, run_shared_naive
from repro.codegen import (
    CodegenError,
    compile_clause,
    expr_src,
    ifunc_src,
    local_src,
    proc_src,
    run_distributed,
    run_shared,
)
from repro.core import (
    PAR,
    SEQ,
    AffineF,
    Clause,
    Const,
    ConstantF,
    IdentityF,
    IndexSet,
    LoopIndex,
    ModularF,
    Ref,
    SeparableMap,
    copy_env,
    evaluate_clause,
)
from repro.decomp import (
    Block,
    BlockScatter,
    Replicated,
    Scatter,
    SingleOwner,
)


def mk_clause(n=20, f=None, g=None, guard=None, ordering=PAR, lo=0, hi=None):
    f = f or AffineF(1, 0)
    g = g or AffineF(1, 0)
    return Clause(
        domain=IndexSet.range1d(lo, hi if hi is not None else n - 1),
        lhs=Ref("A", SeparableMap([f])),
        rhs=Ref("B", SeparableMap([g])) * 2 + 1,
        ordering=ordering,
        guard=guard,
    )


def env_for(n=20, m=None, seed=3):
    rng = np.random.default_rng(seed)
    return {"A": rng.random(n), "B": rng.random(m if m is not None else n)}


class TestPlanCompilation:
    def test_basic_plan(self):
        cl = mk_clause()
        plan = compile_clause(cl, {"A": Block(20, 4), "B": Scatter(20, 4)})
        assert plan.pmax == 4
        assert plan.write_name == "A"
        assert len(plan.reads) == 1
        assert plan.rules()["write:A"] == "block"

    def test_modify_partitions_domain(self):
        cl = mk_clause()
        plan = compile_clause(cl, {"A": Block(20, 4), "B": Block(20, 4)})
        all_idx = sorted(i for p in range(4) for i in plan.modify_indices(p))
        assert all_idx == list(range(20))

    def test_owner_computes_rule(self):
        cl = mk_clause(f=AffineF(2, 1), n=40)
        plan = compile_clause(cl, {"A": Scatter(40, 4), "B": Block(20, 4)},)
        for p in range(4):
            for i in plan.modify_indices(p):
                assert plan.write_dec.proc(plan.write_func(i)) == p

    def test_writers_of(self):
        cl = mk_clause()
        plan = compile_clause(cl, {"A": Block(20, 4), "B": Block(20, 4)})
        assert plan.writers_of(0) == [0]
        assert plan.writers_of(19) == [3]

    def test_writers_of_replicated(self):
        cl = mk_clause()
        plan = compile_clause(cl, {"A": Replicated(20, 4), "B": Block(20, 4)})
        assert plan.writers_of(7) == [0, 1, 2, 3]

    def test_2d_domain_rejected(self):
        cl = Clause(
            IndexSet.of_shape(3, 3),
            Ref("A", SeparableMap([IdentityF(), IdentityF()])),
            Const(0),
        )
        with pytest.raises(ValueError):
            compile_clause(cl, {"A": Block(9, 3)})

    def test_missing_decomposition_rejected(self):
        with pytest.raises(KeyError):
            compile_clause(mk_clause(), {"A": Block(20, 4)})

    def test_pmax_mismatch_rejected(self):
        with pytest.raises(ValueError):
            compile_clause(
                mk_clause(), {"A": Block(20, 4), "B": Block(20, 5)}
            )

    def test_guard_reads_compiled(self):
        guard = Ref("C", SeparableMap([AffineF(1, 0)])) > 0
        cl = mk_clause(guard=guard)
        plan = compile_clause(
            cl, {"A": Block(20, 4), "B": Block(20, 4), "C": Scatter(20, 4)}
        )
        assert [r.name for r in plan.reads] == ["B", "C"]


DECOMP_GRID = [
    ("block/block", lambda n, p: Block(n, p), lambda n, p: Block(n, p)),
    ("block/scatter", lambda n, p: Block(n, p), lambda n, p: Scatter(n, p)),
    ("scatter/block", lambda n, p: Scatter(n, p), lambda n, p: Block(n, p)),
    ("scatter/scatter", lambda n, p: Scatter(n, p), lambda n, p: Scatter(n, p)),
    ("bs2/bs3", lambda n, p: BlockScatter(n, p, 2),
     lambda n, p: BlockScatter(n, p, 3)),
    ("single/block", lambda n, p: SingleOwner(n, p, 1),
     lambda n, p: Block(n, p)),
    ("block/replicated", lambda n, p: Block(n, p),
     lambda n, p: Replicated(n, p)),
]


class TestSharedTemplate:
    @pytest.mark.parametrize("name,mk_da,mk_db", DECOMP_GRID)
    def test_matches_reference(self, name, mk_da, mk_db):
        n, pmax = 24, 4
        cl = mk_clause(n=n)
        env0 = env_for(n)
        ref = evaluate_clause(cl, copy_env(env0))
        plan = compile_clause(cl, {"A": mk_da(n, pmax), "B": mk_db(n, pmax)})
        m = run_shared(plan, copy_env(env0))
        assert np.allclose(m.env["A"], ref["A"]), name

    def test_guarded_clause(self):
        n = 20
        guard = Ref("A", SeparableMap([IdentityF()])) > 0.5
        cl = mk_clause(n=n, guard=guard)
        env0 = env_for(n)
        ref = evaluate_clause(cl, copy_env(env0))
        plan = compile_clause(cl, {"A": Scatter(n, 4), "B": Block(n, 4)})
        m = run_shared(plan, copy_env(env0))
        assert np.allclose(m.env["A"], ref["A"])

    def test_seq_ordering_serializes(self):
        # A[i] := A[i-1]: sequential semantics visible through the template
        n = 10
        cl = Clause(
            IndexSet.range1d(1, n - 1),
            Ref("A", SeparableMap([IdentityF()])),
            Ref("A", SeparableMap([AffineF(1, -1)])),
            ordering=SEQ,
        )
        env0 = {"A": np.arange(1.0, n + 1)}
        ref = evaluate_clause(cl, copy_env(env0))
        plan = compile_clause(cl, {"A": Block(n, 4)})
        m = run_shared(plan, copy_env(env0))
        assert np.allclose(m.env["A"], ref["A"])
        assert list(m.env["A"]) == [1.0] * n

    def test_strided_write(self):
        # A[2i+1] under scatter: Theorem 3 territory
        n = 41
        cl = Clause(
            IndexSet.range1d(0, 19),
            Ref("A", SeparableMap([AffineF(2, 1)])),
            Ref("B", SeparableMap([IdentityF()])) * 3,
        )
        env0 = env_for(n)
        ref = evaluate_clause(cl, copy_env(env0))
        plan = compile_clause(cl, {"A": Scatter(n, 4), "B": Block(n, 4)})
        m = run_shared(plan, copy_env(env0))
        assert np.allclose(m.env["A"], ref["A"])
        assert plan.rules()["write:A"] == "thm3-cor1"

    def test_load_balance_block(self):
        n, pmax = 64, 4
        plan = compile_clause(mk_clause(n=n), {"A": Block(n, pmax),
                                               "B": Block(n, pmax)})
        m = run_shared(plan, env_for(n))
        assert m.stats.update_counts() == [16, 16, 16, 16]


class TestDistributedTemplate:
    @pytest.mark.parametrize("name,mk_da,mk_db", DECOMP_GRID)
    def test_matches_reference(self, name, mk_da, mk_db):
        n, pmax = 24, 4
        cl = mk_clause(n=n)
        env0 = env_for(n)
        ref = evaluate_clause(cl, copy_env(env0))
        plan = compile_clause(cl, {"A": mk_da(n, pmax), "B": mk_db(n, pmax)})
        m = run_distributed(plan, copy_env(env0))
        assert np.allclose(m.collect("A"), ref["A"]), name

    def test_aligned_access_no_messages(self):
        # same decomposition, same access function: everything local
        n = 24
        plan = compile_clause(
            mk_clause(n=n), {"A": Block(n, 4), "B": Block(n, 4)}
        )
        m = run_distributed(plan, env_for(n))
        assert m.stats.total_messages() == 0

    def test_misaligned_access_messages_counted(self):
        n = 24
        plan = compile_clause(
            mk_clause(n=n), {"A": Block(n, 4), "B": Scatter(n, 4)}
        )
        m = run_distributed(plan, env_for(n))
        # element i needed by block owner i div 6; resident on i mod 4
        want = sum(
            1 for i in range(n) if i // 6 != i % 4
        )
        assert m.stats.total_messages() == want

    def test_shift_access_neighbour_messages(self):
        n = 24
        cl = mk_clause(n=n, g=AffineF(1, 1), hi=n - 2)
        plan = compile_clause(cl, {"A": Block(n, 4), "B": Block(n, 4)})
        m = run_distributed(plan, env_for(n))
        env0 = env_for(n)
        ref = evaluate_clause(cl, copy_env(env0))
        assert np.allclose(m.collect("A"), ref["A"])
        # only block-boundary elements cross processors: 3 boundaries
        assert m.stats.total_messages() == 3

    def test_replicated_read_no_messages(self):
        n = 24
        plan = compile_clause(
            mk_clause(n=n), {"A": Scatter(n, 4), "B": Replicated(n, 4)}
        )
        m = run_distributed(plan, env_for(n))
        assert m.stats.total_messages() == 0

    def test_replicated_write_broadcasts(self):
        n = 8
        cl = mk_clause(n=n)
        env0 = env_for(n)
        ref = evaluate_clause(cl, copy_env(env0))
        plan = compile_clause(cl, {"A": Replicated(n, 4), "B": Block(n, 4)})
        m = run_distributed(plan, copy_env(env0))
        assert np.allclose(m.collect("A"), ref["A"])
        # every element goes to the 3 non-owning nodes
        assert m.stats.total_messages() == n * 3

    def test_guard_on_remote_data(self):
        n = 20
        guard = Ref("C", SeparableMap([IdentityF()])) > 0.5
        cl = mk_clause(n=n, guard=guard)
        env0 = env_for(n)
        env0["C"] = np.random.default_rng(9).random(n)
        ref = evaluate_clause(cl, copy_env(env0))
        plan = compile_clause(
            cl, {"A": Block(n, 4), "B": Block(n, 4), "C": Scatter(n, 4)}
        )
        m = run_distributed(plan, copy_env(env0))
        assert np.allclose(m.collect("A"), ref["A"])

    def test_seq_clause_rejected(self):
        plan = compile_clause(
            mk_clause(ordering=SEQ), {"A": Block(20, 4), "B": Block(20, 4)}
        )
        with pytest.raises(NotImplementedError):
            run_distributed(plan, env_for(20))

    def test_rotate_access(self):
        n = 20
        cl = mk_clause(n=n, g=ModularF(AffineF(1, 6), 20))
        env0 = env_for(n)
        ref = evaluate_clause(cl, copy_env(env0))
        plan = compile_clause(cl, {"A": Block(n, 4), "B": Scatter(n, 4)})
        m = run_distributed(plan, copy_env(env0))
        assert np.allclose(m.collect("A"), ref["A"])


class TestNaiveBaselines:
    def test_shared_naive_matches_reference(self):
        n = 24
        cl = mk_clause(n=n)
        env0 = env_for(n)
        ref = evaluate_clause(cl, copy_env(env0))
        plan = compile_clause(cl, {"A": Scatter(n, 4), "B": Block(n, 4)})
        m = run_shared_naive(plan, copy_env(env0))
        assert np.allclose(m.env["A"], ref["A"])

    def test_distributed_naive_matches_reference(self):
        n = 24
        cl = mk_clause(n=n, g=AffineF(1, 1), hi=n - 2)
        env0 = env_for(n)
        ref = evaluate_clause(cl, copy_env(env0))
        plan = compile_clause(cl, {"A": Block(n, 4), "B": Scatter(n, 4)})
        m = run_distributed_naive(plan, copy_env(env0))
        assert np.allclose(m.collect("A"), ref["A"])

    def test_naive_does_full_range_tests(self):
        n, pmax = 40, 4
        plan = compile_clause(
            mk_clause(n=n), {"A": Block(n, pmax), "B": Block(n, pmax)}
        )
        m = run_shared_naive(plan, env_for(n))
        # every node scans the whole range: pmax * n tests
        assert m.stats.total_tests() == pmax * n

    def test_optimized_does_no_tests(self):
        n, pmax = 40, 4
        plan = compile_clause(
            mk_clause(n=n), {"A": Block(n, pmax), "B": Block(n, pmax)}
        )
        m = run_shared(plan, env_for(n))
        assert m.stats.total_tests() == 0

    def test_same_messages_as_optimized(self):
        # naive and optimized differ in overhead, not in communication
        n = 24
        cl = mk_clause(n=n)
        plan = compile_clause(cl, {"A": Block(n, 4), "B": Scatter(n, 4)})
        m_opt = run_distributed(plan, env_for(n))
        m_naive = run_distributed_naive(plan, env_for(n))
        assert m_opt.stats.total_messages() == m_naive.stats.total_messages()


class TestSourceHelpers:
    def test_ifunc_src_forms(self):
        assert ifunc_src(ConstantF(5)) == "5"
        assert ifunc_src(IdentityF()) == "i"
        assert ifunc_src(AffineF(1, 3)) == "(i + 3)"
        assert ifunc_src(AffineF(2, -1)) == "(2 * i - 1)"
        assert ifunc_src(ModularF(AffineF(1, 6), 20)) == "((i + 6) % 20)"

    def test_ifunc_src_evaluates_consistently(self):
        for f in (ConstantF(5), AffineF(3, -2), ModularF(AffineF(2, 1), 7, 3)):
            code = ifunc_src(f)
            for i in range(-5, 20):
                assert eval(code, {"i": i}) == f(i), f.name

    def test_ifunc_src_rejects_opaque(self):
        from repro.core import MonotoneF

        with pytest.raises(CodegenError):
            ifunc_src(MonotoneF(lambda i: i, 1))

    def test_proc_local_src_match_decomposition(self):
        for d in (Block(20, 4), Scatter(20, 4), BlockScatter(20, 4, 3),
                  SingleOwner(20, 4, 2)):
            psrc, lsrc = proc_src(d, "v"), local_src(d, "v")
            for i in range(20):
                assert eval(psrc, {"v": i, "p": 0}) == d.proc(i), d
                assert eval(lsrc, {"v": i}) == d.local(i), d

    def test_expr_src(self):
        e = Ref("B", SeparableMap([IdentityF()])) * 2 + 1
        src = expr_src(e, lambda r: "v0")
        assert eval(src, {"v0": 5}) == 11

    def test_expr_src_loop_index(self):
        src = expr_src(LoopIndex(0) * 3, lambda r: "v0")
        assert eval(src, {"i": 4}) == 12
