"""Tests for barrier elimination (paper §2.9, footnote 1)."""

import numpy as np
import pytest

from repro.codegen.barriers import (
    barrier_removable,
    clause_access_maps,
    has_cross_processor_overlap,
    plan_barriers,
    run_program_shared,
)
from repro.core import (
    PAR,
    SEQ,
    AffineF,
    Clause,
    IndexSet,
    Program,
    Ref,
    SeparableMap,
    copy_env,
    evaluate_program,
)
from repro.decomp import Block, Scatter

N, PMAX = 24, 4


def cl(write, read, shift=0, n=N, ordering=PAR, lo=0, hi=None):
    if hi is None:
        hi = n - 1 - max(shift, 0)
    return Clause(
        domain=IndexSet.range1d(lo, hi),
        lhs=Ref(write, SeparableMap([AffineF(1, 0)])),
        rhs=Ref(read, SeparableMap([AffineF(1, shift)])) + 1,
        ordering=ordering,
    )


def env_for(seed=0):
    rng = np.random.default_rng(seed)
    return {k: rng.random(N) for k in "ABCD"}


BLOCKS = {k: Block(N, PMAX) for k in "ABCD"}


class TestAnalysis:
    def test_access_maps(self):
        maps = clause_access_maps(cl("A", "B"), BLOCKS)
        assert ("A", 0) in maps.writes
        assert ("B", 0) in maps.reads
        # aligned: iteration i owned by block owner of i, reads B[i] of
        # the same owner
        assert maps.writes[("A", 5)] == maps.reads[("B", 5)]

    def test_aligned_pipeline_barrier_removable(self):
        # A := B+1 ; C := A+1 — same decomposition, identity accesses:
        # every datum stays on its processor
        assert barrier_removable(cl("A", "B"), cl("C", "A"), BLOCKS)

    def test_shifted_flow_needs_barrier(self):
        # C[i] := A[i+1]: block-boundary elements flow across processors
        assert not barrier_removable(cl("A", "B"), cl("C", "A", shift=1),
                                     BLOCKS)

    def test_independent_arrays_removable(self):
        assert barrier_removable(cl("A", "B"), cl("C", "D"), BLOCKS)

    def test_mixed_decomposition_flow_needs_barrier(self):
        decomps = dict(BLOCKS)
        decomps["C"] = Scatter(N, PMAX)
        # writer of C[i] is i mod pmax; reads A[i] owned by i div b
        assert not barrier_removable(cl("A", "B"), cl("C", "A"), decomps)

    def test_anti_dependence_needs_barrier(self):
        # clause 1 reads A[i+1]; clause 2 overwrites A — cross-processor
        # anti dependence at block boundaries
        c1 = cl("B", "A", shift=1)
        c2 = cl("A", "C")
        assert not barrier_removable(c1, c2, BLOCKS)

    def test_seq_clause_never_fused(self):
        assert not barrier_removable(cl("A", "B", ordering=SEQ),
                                     cl("C", "A"), BLOCKS)

    def test_intra_clause_overlap_blocks_fusion(self):
        # A[i] := A[i+1] has intra-clause cross-processor overlap: even
        # with an unrelated successor the fusion is unsafe
        c1 = cl("A", "A", shift=1)
        assert has_cross_processor_overlap(c1, BLOCKS)
        assert not barrier_removable(c1, cl("C", "D"), BLOCKS)

    def test_plan_barriers_shape(self):
        prog = Program([cl("A", "B"), cl("C", "A"), cl("D", "C", shift=1)])
        flags = plan_barriers(prog, BLOCKS)
        assert flags == [False, True, True]  # final barrier always kept


class TestFusedExecution:
    def test_fused_program_matches_reference(self):
        prog = Program([cl("A", "B"), cl("C", "A"), cl("D", "C")])
        env0 = env_for()
        ref = evaluate_program(prog, copy_env(env0))
        m, barriers = run_program_shared(prog, BLOCKS, copy_env(env0))
        for name in "ACD":
            assert np.allclose(m.env[name], ref[name]), name
        assert barriers == 1  # three phases fused into one

    def test_unfusable_program_keeps_barriers(self):
        prog = Program([cl("A", "B"), cl("C", "A", shift=1)])
        env0 = env_for()
        ref = evaluate_program(prog, copy_env(env0))
        m, barriers = run_program_shared(prog, BLOCKS, copy_env(env0))
        assert np.allclose(m.env["C"], ref["C"])
        assert barriers == 2

    def test_elimination_disabled(self):
        prog = Program([cl("A", "B"), cl("C", "A")])
        env0 = env_for()
        _m, barriers = run_program_shared(prog, BLOCKS, copy_env(env0),
                                          eliminate_barriers=False)
        assert barriers == 2

    def test_mixed_fusable_and_not(self):
        prog = Program([
            cl("A", "B"),            # fuses with next
            cl("C", "A"),            # barrier after (next reads shifted C)
            cl("D", "C", shift=1),
        ])
        env0 = env_for(3)
        ref = evaluate_program(prog, copy_env(env0))
        m, barriers = run_program_shared(prog, BLOCKS, copy_env(env0))
        for name in "ACD":
            assert np.allclose(m.env[name], ref[name])
        assert barriers == 2

    def test_seq_clause_runs_inside_program(self):
        rec = Clause(
            IndexSet.range1d(1, N - 1),
            Ref("A", SeparableMap([AffineF(1, 0)])),
            Ref("A", SeparableMap([AffineF(1, -1)])),
            ordering=SEQ,
        )
        prog = Program([cl("A", "B"), rec])
        env0 = env_for(4)
        ref = evaluate_program(prog, copy_env(env0))
        m, _ = run_program_shared(prog, BLOCKS, copy_env(env0))
        assert np.allclose(m.env["A"], ref["A"])
