"""Public API surface sanity."""

import importlib

import pytest

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_names_resolve():
    for name in repro.__all__:
        if name == "__version__":
            continue
        assert hasattr(repro, name), name


@pytest.mark.parametrize("module", [
    "repro.core", "repro.decomp", "repro.sets", "repro.codegen",
    "repro.machine", "repro.frontend", "repro.diophantine",
    "repro.baselines", "repro.report", "repro.cli",
    "repro.analysis", "repro.pipeline",
])
def test_submodule_all_resolves(module):
    mod = importlib.import_module(module)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{module}.{name}"


def test_key_entry_points_importable():
    from repro import (  # noqa: F401
        Block,
        Scatter,
        compile_clause,
        evaluate_program,
        run_distributed,
        run_shared,
        translate_source,
    )
    from repro.codegen import (  # noqa: F401
        choose_static,
        compile_doacross,
        compile_halo_stencil,
        compile_indirect,
        compile_reduce,
        run_program_shared,
    )


def test_plan_cache_controls_exported():
    from repro import clear_plan_cache, plan_cache_info

    clear_plan_cache()
    info = plan_cache_info()
    assert info["hits"] == 0 and info["misses"] == 0 and info["size"] == 0
    assert {"hits", "misses", "size", "maxsize", "enabled"} <= set(info)


def test_analysis_exports():
    from repro import Diagnostic, DiagnosticReport, Severity, verify_clause
    from repro.analysis import CODES

    assert callable(verify_clause)
    assert Severity.ERROR.value == "error"
    d = Diagnostic(code="RACE001", message="x")
    report = DiagnosticReport(clause="c")
    report.add(d)
    assert not report.ok and report.has("RACE001")
    assert set(CODES) >= {"RACE001", "COMM001", "BND001", "LINT001"}
