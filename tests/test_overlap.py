"""Tests for the overlapped-communication machinery.

Covers the `split-interior` pass, the non-blocking ``Irecv``/``Probe``
scheduler primitives, the latency model's virtual-time accounting, the
compile-once plan cache, and the Table I construction memo.
"""

import numpy as np
import pytest

from repro.codegen import compile_clause, run_distributed
from repro.codegen.nddist import (
    collect_nd,
    compile_clause_nd_dist,
    run_distributed_nd,
)
from repro.codegen.shared_tmpl import run_shared
from repro.core import (
    SEQ,
    AffineF,
    Bounds,
    Clause,
    IdentityF,
    IndexSet,
    Ref,
    SeparableMap,
    copy_env,
)
from repro.decomp import Block, GridDecomposition, Replicated, Scatter
from repro.machine import (
    Barrier,
    DeadlockError,
    Irecv,
    LatencyModel,
    MachineStats,
    Network,
    Probe,
    Recv,
    RecvFuture,
    run_spmd,
)
from repro.pipeline import (
    clear_plan_cache,
    enable_plan_cache,
    plan_cache,
    plan_cache_info,
    plan_key,
)
from repro.sets.table1 import (
    clear_table1_cache,
    optimize_access,
    table1_cache_info,
)

N, P = 48, 4


def stencil_clause(n=N):
    return Clause(
        IndexSet(Bounds((1,), (n - 2,))),
        Ref("A", SeparableMap([IdentityF()])),
        Ref("B", SeparableMap([AffineF(1, -1)]))
        + Ref("B", SeparableMap([AffineF(1, 1)])),
    )


def stencil_env(n=N, seed=0):
    rng = np.random.default_rng(seed)
    return {"A": np.zeros(n), "B": rng.random(n)}


class TestSplitInteriorPass:
    def test_pass_appears_in_trace(self):
        plan = compile_clause(stencil_clause(), {"A": Block(N, P),
                                                 "B": Block(N, P)})
        rec = plan.trace.record("split-interior")
        assert rec is not None
        assert rec.rewrites == 1  # non-empty interior found
        assert any("interior" in note for note in rec.notes)

    def test_block_interior_counts(self):
        # n=48, P=4: each node owns 12 elements; with ±1 reads only the
        # two elements touching a partition boundary (one at the domain
        # edge nodes) need remote values.
        plan = compile_clause(stencil_clause(), {"A": Block(N, P),
                                                 "B": Block(N, P)})
        split = plan.ir.interior_split
        m, i, b = split.totals()
        assert (m, i, b) == (46, 40, 6)
        for p, ns in split.per_node.items():
            assert ns.modify_count == ns.interior_count + ns.boundary_count

    def test_scatter_interior_empty(self):
        plan = compile_clause(stencil_clause(), {"A": Block(N, P),
                                                 "B": Scatter(N, P)})
        rec = plan.trace.record("split-interior")
        assert rec.rewrites == 0
        assert plan.ir.interior_split.totals()[1] == 0

    def test_seq_clause_skipped(self):
        cl = Clause(
            IndexSet(Bounds((1,), (N - 2,))),
            Ref("A", SeparableMap([IdentityF()])),
            Ref("A", SeparableMap([AffineF(1, -1)])) * 0.5,
            ordering=SEQ,
        )
        plan = compile_clause(cl, {"A": Block(N, P)})
        assert plan.ir.interior_split is None
        rec = plan.trace.record("split-interior")
        assert rec is not None and rec.rewrites == 0

    def test_replicated_read_is_fully_interior(self):
        cl = Clause(
            IndexSet(Bounds((0,), (N - 1,))),
            Ref("A", SeparableMap([IdentityF()])),
            Ref("c", SeparableMap([IdentityF()])) + 1.0,
        )
        plan = compile_clause(cl, {"A": Block(N, P),
                                   "c": Replicated(N, P)})
        m, i, b = plan.ir.interior_split.totals()
        assert m == i == N and b == 0


class TestIrecvProbe:
    def test_irecv_resumes_immediately(self):
        net = Network(2)
        seen = []

        def node0():
            h = yield Irecv(1, "x")
            seen.append(("posted", h.done))  # resumed before any send
            net.send(0, 1, "go", None)
            done = yield Probe([h])
            seen.append(("done", done is h, done.payload))

        def node1():
            _ = yield Recv(0, "go")
            net.send(1, 0, "x", 42)

        run_spmd([node0(), node1()], net)
        assert seen == [("posted", False), ("done", True, 42)]

    def test_probe_drains_all_handles(self):
        # probing the not-yet-done remainder (as the overlap executor
        # does) eventually yields every posted receive exactly once
        net = Network(3)
        got = {}

        def node0():
            handles = [(yield Irecv(1, "a")), (yield Irecv(2, "b"))]
            while handles:
                done = yield Probe(handles)
                handles.remove(done)
                got[done.src] = done.payload
            yield Barrier()

        def sender(p, tag):
            def gen():
                net.send(p, 0, tag, p * 10)
                yield Barrier()
            return gen()

        run_spmd([node0(), sender(1, "a"), sender(2, "b")], net)
        assert got == {1: 10, 2: 20}

    def test_probe_prefers_already_done_handle(self):
        # a fulfilled handle satisfies a Probe immediately, before the
        # network is consulted for the others (documented list order)
        net = Network(2)
        seen = []

        def node0():
            h = yield Irecv(1, "x")
            done = yield Probe([h])
            seen.append(done is h)
            again = yield Probe([h])  # h already done: no new message read
            seen.append(again is h)
            yield Barrier()

        def node1():
            net.send(1, 0, "x", 1)
            yield Barrier()

        run_spmd([node0(), node1()], net)
        assert seen == [True, True]

    def test_probe_counts_recv_once(self):
        net = Network(2)
        stats = MachineStats.for_nodes(2)

        def node0():
            h = yield Irecv(1, "x")
            done = yield Probe([h])
            assert done.payload == 5
            yield Barrier()

        def node1():
            net.send(1, 0, "x", 5)
            yield Barrier()

        run_spmd([node0(), node1()], net, stats)
        assert stats[0].recvs == 1

    def test_recv_future_identity_equality(self):
        a = RecvFuture(0, "t")
        b = RecvFuture(0, "t")
        assert a != b and a == a


class TestDeadlockDiagnostics:
    def test_blocked_recv_and_undelivered_message(self):
        net = Network(2)

        def node0():
            yield Recv(1, "never")

        def node1():
            net.send(1, 0, "wrong-tag", 1)
            yield Recv(0, "never")

        with pytest.raises(DeadlockError) as ei:
            run_spmd([node0(), node1()], net)
        err = ei.value
        assert err.blocked == {0: ("recv", 1, "never"),
                               1: ("recv", 0, "never")}
        assert err.undelivered == [(1, 0, "wrong-tag")]

    def test_blocked_probe_lists_pending_handles(self):
        net = Network(2)

        def node0():
            h1 = yield Irecv(1, "a")
            h2 = yield Irecv(1, "b")
            yield Probe([h1, h2])

        def node1():
            yield Recv(0, "never")

        with pytest.raises(DeadlockError) as ei:
            run_spmd([node0(), node1()], net)
        err = ei.value
        assert err.blocked[0] == ("probe", ((1, "a"), (1, "b")))
        assert err.blocked[1] == ("recv", 0, "never")
        assert err.undelivered == []

    def test_probe_diagnosis_after_partial_drain(self):
        # 'a' arrives and is drained; the node then probes the remaining
        # posted receives, which never complete — the diagnosis names
        # exactly the still-pending (src, tag) pairs
        net = Network(2)

        def node0():
            h1 = yield Irecv(1, "a")
            h2 = yield Irecv(1, "b")
            h3 = yield Irecv(1, "c")
            done = yield Probe([h1, h2, h3])
            assert done is h1 and done.payload == 1
            yield Probe([h2, h3])

        def node1():
            net.send(1, 0, "a", 1)
            yield Recv(0, "never")

        with pytest.raises(DeadlockError) as ei:
            run_spmd([node0(), node1()], net)
        assert ei.value.blocked[0] == ("probe", ((1, "b"), (1, "c")))
        assert ei.value.blocked[1] == ("recv", 0, "never")


class TestLatencyModel:
    MODEL = LatencyModel(alpha=100.0, beta=0.1, t_element=1.0)

    def test_message_time(self):
        assert self.MODEL.message_time(10) == pytest.approx(101.0)
        assert LatencyModel().message_time(10) == 0.0

    def test_makespan_zero_without_model(self):
        plan = compile_clause(stencil_clause(), {"A": Block(N, P),
                                                 "B": Block(N, P)})
        m = run_distributed(plan, copy_env(stencil_env()), backend="vector")
        assert m.stats.makespan() == 0.0

    def test_overlap_beats_vector_makespan(self):
        plan = compile_clause(stencil_clause(), {"A": Block(N, P),
                                                 "B": Block(N, P)})
        env0 = stencil_env()
        mv = run_distributed(plan, copy_env(env0), backend="vector",
                             model=self.MODEL)
        mo = run_distributed(plan, copy_env(env0), backend="overlap",
                             model=self.MODEL)
        assert np.array_equal(mv.collect("A"), mo.collect("A"))
        assert mv.stats.makespan() > 0
        # interior work hides the modeled message latency
        assert mo.stats.makespan() < mv.stats.makespan()

    def test_model_does_not_change_results_or_traffic(self):
        plan = compile_clause(stencil_clause(), {"A": Block(N, P),
                                                 "B": Scatter(N, P)})
        env0 = stencil_env()
        base = run_distributed(plan, copy_env(env0), backend="vector")
        timed = run_distributed(plan, copy_env(env0), backend="vector",
                                model=self.MODEL)
        assert np.array_equal(base.collect("A"), timed.collect("A"))
        assert (base.stats.total_messages()
                == timed.stats.total_messages())
        assert (base.stats.total_elements_moved()
                == timed.stats.total_elements_moved())


class TestPlanCache:
    def setup_method(self):
        clear_plan_cache()
        enable_plan_cache(True)

    def _decomps(self):
        return {"A": Block(N, P), "B": Block(N, P)}

    def test_second_compile_hits(self):
        p1 = compile_clause(stencil_clause(), self._decomps())
        p2 = compile_clause(stencil_clause(), self._decomps())
        assert not p1.trace.cache_hit
        assert p2.trace.cache_hit
        assert p1.trace.cache_key == p2.trace.cache_key is not None
        info = plan_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_hit_shares_ir_but_not_trace_notes(self):
        p1 = compile_clause(stencil_clause(), self._decomps())
        p2 = compile_clause(stencil_clause(), self._decomps())
        assert p2.ir.interior_split is p1.ir.interior_split
        p2.trace.note("local remark")
        assert p2.trace.notes == ["local remark"]
        assert p1.trace.notes == []

    def test_different_decomposition_misses(self):
        compile_clause(stencil_clause(), self._decomps())
        p2 = compile_clause(stencil_clause(), {"A": Block(N, P),
                                               "B": Scatter(N, P)})
        assert not p2.trace.cache_hit

    def test_different_bounds_miss(self):
        compile_clause(stencil_clause(), self._decomps())
        p2 = compile_clause(stencil_clause(n=N - 8),
                            {"A": Block(N, P), "B": Block(N, P)})
        assert not p2.trace.cache_hit

    def test_disabled_cache_never_hits(self):
        enable_plan_cache(False)
        try:
            compile_clause(stencil_clause(), self._decomps())
            p2 = compile_clause(stencil_clause(), self._decomps())
            assert not p2.trace.cache_hit
        finally:
            enable_plan_cache(True)

    def test_nd_dist_compile_hits(self):
        n, side = 12, 2
        g = GridDecomposition([Block(n, side), Block(n, side)])
        cl = Clause(
            IndexSet(Bounds((1, 1), (n - 2, n - 2))),
            Ref("T", SeparableMap([IdentityF(), IdentityF()])),
            Ref("S", SeparableMap([AffineF(1, -1), IdentityF()])) * 0.5,
        )
        p1 = compile_clause_nd_dist(cl, {"T": g, "S": g})
        p2 = compile_clause_nd_dist(cl, {"T": g, "S": g})
        assert not p1.trace.cache_hit and p2.trace.cache_hit

    def test_cached_plan_runs_identically(self):
        env0 = stencil_env()
        p1 = compile_clause(stencil_clause(), self._decomps())
        a = run_distributed(p1, copy_env(env0),
                            backend="overlap").collect("A")
        p2 = compile_clause(stencil_clause(), self._decomps())
        assert p2.trace.cache_hit
        b = run_distributed(p2, copy_env(env0),
                            backend="overlap").collect("A")
        assert np.array_equal(a, b)

    def test_plan_key_is_structural(self):
        k1 = plan_key(stencil_clause(), self._decomps())
        k2 = plan_key(stencil_clause(), self._decomps())
        assert k1 == k2 and hash(k1) == hash(k2)
        k3 = plan_key(stencil_clause(), {"A": Block(N, P),
                                         "B": Scatter(N, P)})
        assert k3 != k1


class TestTable1Memo:
    def test_repeat_construction_is_cached(self):
        clear_table1_cache()
        d = Block(N, P)
        f = AffineF(1, -1)
        a1 = optimize_access(d, f, 1, N - 2)
        a2 = optimize_access(Block(N, P), AffineF(1, -1), 1, N - 2)
        assert a2 is a1  # structural key, not object identity
        info = table1_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_distinct_bounds_are_distinct_entries(self):
        clear_table1_cache()
        d = Block(N, P)
        a1 = optimize_access(d, IdentityF(), 0, N - 1)
        a2 = optimize_access(d, IdentityF(), 1, N - 2)
        assert a1 is not a2
        assert table1_cache_info()["misses"] == 2


class TestBackendFallbackNotes:
    def test_seq_vector_fallback_is_noted(self):
        cl = Clause(
            IndexSet(Bounds((1,), (N - 1,))),
            Ref("A", SeparableMap([IdentityF()])),
            Ref("A", SeparableMap([AffineF(1, -1)])) * 0.5,
            ordering=SEQ,
        )
        plan = compile_clause(cl, {"A": Block(N, P)})
        run_shared(plan, copy_env(stencil_env()), backend="vector")
        assert any("fell back to the scalar" in n for n in plan.trace.notes)
        assert "note:" in plan.trace.pretty()

    def test_shared_overlap_runs_as_vector_with_note(self):
        plan = compile_clause(stencil_clause(), {"A": Block(N, P),
                                                 "B": Block(N, P)})
        ref = run_shared(plan, copy_env(stencil_env())).env["A"]
        m = run_shared(plan, copy_env(stencil_env()), backend="overlap")
        assert np.array_equal(m.env["A"], ref)
        assert any("no messages to overlap" in n for n in plan.trace.notes)

    def test_replicated_write_fallback_is_noted(self):
        cl = Clause(
            IndexSet(Bounds((0,), (N - 1,))),
            Ref("r", SeparableMap([IdentityF()])),
            Ref("B", SeparableMap([IdentityF()])) + 1.0,
        )
        plan = compile_clause(cl, {"r": Replicated(N, P),
                                   "B": Block(N, P)})
        env0 = {"r": np.zeros(N), "B": stencil_env()["B"]}
        run_distributed(plan, copy_env(env0), backend="overlap")
        assert any("replicated write" in n for n in plan.trace.notes)
