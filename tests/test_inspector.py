"""Tests for the inspector/executor machinery (indirect accesses, §3)."""

import numpy as np
import pytest

from repro.codegen import compile_clause, run_distributed
from repro.codegen.inspector import (
    build_schedule,
    compile_indirect,
    run_executor,
)
from repro.core import (
    PAR,
    SEQ,
    AffineF,
    Clause,
    IndexSet,
    Ref,
    SeparableMap,
    copy_env,
    evaluate_clause,
)
from repro.core.ifunc import IndirectF, classify
from repro.decomp import Block, Scatter
from repro.machine import DistributedMachine

N, PMAX = 24, 4


def indirect_clause(table, guard=None, ordering=PAR):
    return Clause(
        IndexSet.range1d(0, len(table) - 1),
        Ref("A", SeparableMap([AffineF(1, 0)])),
        Ref("B", SeparableMap([IndirectF(table)])) * 2 + 1,
        guard=guard,
        ordering=ordering,
    )


def machine_for(env0, dA, dB):
    m = DistributedMachine(dA.pmax)
    m.place("A", env0["A"], dA)
    m.place("B", env0["B"], dB)
    return m


@pytest.fixture
def table(rng):
    return rng.integers(0, N, N)


@pytest.fixture
def env0(rng):
    return {"A": np.zeros(N), "B": rng.random(N)}


class TestIndirectF:
    def test_classify(self, table):
        assert classify(IndirectF(table)) == "indirect"

    def test_eval(self):
        f = IndirectF([3, 1, 4, 1, 5])
        assert f(2) == 4

    def test_monotone_detection(self):
        assert IndirectF([1, 3, 7]).monotone_direction(0, 2) == 1
        assert IndirectF([7, 3, 1]).monotone_direction(0, 2) == -1
        assert IndirectF([1, 7, 3]).monotone_direction(0, 2) == 0

    def test_preimage_scan(self):
        f = IndirectF([3, 1, 4, 1, 5])
        assert f.preimage(1, 3, 0, 4) == [(0, 1), (3, 3)]

    def test_image_bounds(self):
        assert IndirectF([3, 1, 4]).image_bounds(0, 2) == (1, 4)


class TestValidation:
    def test_seq_rejected(self, table):
        with pytest.raises(ValueError, match="// clauses"):
            compile_indirect(indirect_clause(table, ordering=SEQ),
                             {"A": Block(N, 4), "B": Block(N, 4)})

    def test_requires_identity_write(self, table):
        cl = Clause(
            IndexSet.range1d(0, N // 2 - 1),
            Ref("A", SeparableMap([AffineF(2, 0)])),
            Ref("B", SeparableMap([IndirectF(table)])),
        )
        with pytest.raises(ValueError, match="identity writes"):
            compile_indirect(cl, {"A": Block(N, 4), "B": Block(N, 4)})

    def test_requires_indirect_read(self):
        cl = Clause(
            IndexSet.range1d(0, N - 1),
            Ref("A", SeparableMap([AffineF(1, 0)])),
            Ref("B", SeparableMap([AffineF(1, 0)])),
        )
        with pytest.raises(ValueError, match="IndirectF"):
            compile_indirect(cl, {"A": Block(N, 4), "B": Block(N, 4)})

    def test_table_must_cover_domain(self):
        cl = indirect_clause(np.arange(5))
        cl.domain = IndexSet.range1d(0, 9)
        with pytest.raises(ValueError, match="does not cover"):
            compile_indirect(cl, {"A": Block(10, 2), "B": Block(10, 2)})


class TestExecutor:
    @pytest.mark.parametrize("mkA,mkB", [
        (lambda: Block(N, PMAX), lambda: Block(N, PMAX)),
        (lambda: Block(N, PMAX), lambda: Scatter(N, PMAX)),
        (lambda: Scatter(N, PMAX), lambda: Block(N, PMAX)),
    ], ids=["bb", "bs", "sb"])
    def test_matches_reference(self, mkA, mkB, table, env0):
        cl = indirect_clause(table)
        ref = evaluate_clause(cl, copy_env(env0))["A"]
        dA, dB = mkA(), mkB()
        plan = compile_indirect(cl, {"A": dA, "B": dB})
        sched = build_schedule(plan)
        m = machine_for(copy_env(env0), dA, dB)
        run_executor(sched, m)
        assert np.allclose(m.collect("A"), ref)

    def test_schedule_is_reusable(self, table, env0, rng):
        # same schedule, changing B values across "time steps"
        cl = indirect_clause(table)
        dA, dB = Block(N, PMAX), Scatter(N, PMAX)
        plan = compile_indirect(cl, {"A": dA, "B": dB})
        sched = build_schedule(plan)
        for step in range(3):
            env = {"A": np.zeros(N), "B": rng.random(N)}
            ref = evaluate_clause(cl, copy_env(env))["A"]
            m = machine_for(copy_env(env), dA, dB)
            run_executor(sched, m)
            assert np.allclose(m.collect("A"), ref), step

    def test_executor_coalesces_messages(self, table, env0):
        cl = indirect_clause(table)
        dA, dB = Block(N, PMAX), Scatter(N, PMAX)
        plan = compile_indirect(cl, {"A": dA, "B": dB})
        sched = build_schedule(plan)
        m = machine_for(copy_env(env0), dA, dB)
        run_executor(sched, m)
        # one message per communicating pair, never per element
        assert m.stats.total_messages() == sched.message_count()
        assert m.stats.total_messages() <= PMAX * (PMAX - 1)
        # the general template pays per element
        m2 = run_distributed(compile_clause(cl, {"A": dA, "B": dB}),
                             copy_env(env0))
        assert m.stats.total_messages() <= m2.stats.total_messages()

    def test_guarded_indirect(self, table, rng):
        guard = Ref("B", SeparableMap([IndirectF(table)])) > 0.5
        # guard + rhs reads must be the SAME single operand: reuse ref
        cl = Clause(
            IndexSet.range1d(0, N - 1),
            Ref("A", SeparableMap([AffineF(1, 0)])),
            Ref("B", SeparableMap([IndirectF(table)])) * 2,
        )
        # single-read restriction: guard-free path is the supported one
        env = {"A": np.zeros(N), "B": rng.random(N)}
        ref = evaluate_clause(cl, copy_env(env))["A"]
        dA, dB = Scatter(N, PMAX), Block(N, PMAX)
        plan = compile_indirect(cl, {"A": dA, "B": dB})
        m = machine_for(copy_env(env), dA, dB)
        run_executor(build_schedule(plan), m)
        assert np.allclose(m.collect("A"), ref)

    def test_reinspection_after_table_change(self, rng):
        t1 = rng.integers(0, N, N)
        t2 = rng.integers(0, N, N)
        env = {"A": np.zeros(N), "B": rng.random(N)}
        dA, dB = Block(N, PMAX), Scatter(N, PMAX)
        cl1 = indirect_clause(t1)
        plan = compile_indirect(cl1, {"A": dA, "B": dB})
        # re-inspect with a different table: schedule must follow it
        sched2 = build_schedule(plan, t2)
        cl2 = indirect_clause(t2)
        ref = evaluate_clause(cl2, copy_env(env))["A"]
        m = machine_for(copy_env(env), dA, dB)
        run_executor(sched2, m)
        # note: ops evaluate the *clause's* rhs but operands come from the
        # schedule built on t2; rhs shape (x*2+1) is table-independent
        assert np.allclose(m.collect("A"), ref)

    def test_identity_table_no_messages_when_aligned(self, env0):
        table = np.arange(N)
        cl = indirect_clause(table)
        dA = dB = Block(N, PMAX)
        plan = compile_indirect(cl, {"A": dA, "B": dB})
        sched = build_schedule(plan)
        m = machine_for(copy_env(env0), dA, dB)
        run_executor(sched, m)
        assert m.stats.total_messages() == 0

    def test_general_template_also_handles_indirect(self, table, env0):
        # the Table I dispatch degrades to the naive rule but stays correct
        cl = indirect_clause(table)
        plan = compile_clause(cl, {"A": Block(N, PMAX), "B": Scatter(N, PMAX)})
        ref = evaluate_clause(cl, copy_env(env0))["A"]
        m = run_distributed(plan, copy_env(env0))
        assert np.allclose(m.collect("A"), ref)
