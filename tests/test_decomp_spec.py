"""Tests for the decomposition-specification language."""

import pytest

from repro.decomp import (
    Block,
    BlockScatter,
    Collapsed,
    GridDecomposition,
    OverlappedBlock,
    Replicated,
    Scatter,
    SingleOwner,
)
from repro.decomp.spec import SpecError, parse_distribution, parse_spec


class TestSingleStatements:
    def test_block(self):
        name, d = parse_distribution("distribute A[24](block) on 4")
        assert name == "A"
        assert isinstance(d, Block)
        assert (d.n, d.pmax) == (24, 4)

    def test_block_with_size(self):
        _, d = parse_distribution("distribute A[24](block(8)) on 4")
        assert d.b == 8

    def test_scatter(self):
        _, d = parse_distribution("distribute B[48](scatter) on 6")
        assert isinstance(d, Scatter)
        assert d.pmax == 6

    def test_blockscatter(self):
        _, d = parse_distribution("distribute C[24](blockscatter(2)) on 4")
        assert isinstance(d, BlockScatter)
        assert d.b == 2

    def test_blockscatter_requires_size(self):
        with pytest.raises(SpecError, match="block size"):
            parse_distribution("distribute C[24](blockscatter) on 4")

    def test_single_owner(self):
        _, d = parse_distribution("distribute E[24](single(1)) on 4")
        assert isinstance(d, SingleOwner)
        assert d.owner == 1

    def test_replicated(self):
        _, d = parse_distribution("distribute D[24](replicated) on 4")
        assert isinstance(d, Replicated)

    def test_overlapped(self):
        _, d = parse_distribution("distribute H[24](overlapped(2)) on 4")
        assert isinstance(d, OverlappedBlock)
        assert d.halo == 2

    def test_grid_2d(self):
        _, d = parse_distribution(
            "distribute M[8, 6](block, scatter) on 2 x 3"
        )
        assert isinstance(d, GridDecomposition)
        assert d.grid_shape == (2, 3)
        assert isinstance(d.dims[0], Block)
        assert isinstance(d.dims[1], Scatter)

    def test_collapsed_axis_consumes_no_grid_factor(self):
        _, d = parse_distribution(
            "distribute N[8, 6](block, collapsed) on 2"
        )
        assert isinstance(d.dims[1], Collapsed)
        assert d.pmax == 2

    def test_kind_count_mismatch(self):
        with pytest.raises(SpecError, match="dimensions"):
            parse_distribution("distribute M[8, 6](block) on 2")

    def test_extra_grid_factor(self):
        with pytest.raises(SpecError, match="unused grid factor"):
            parse_distribution("distribute A[8](block) on 2 x 2")

    def test_unknown_kind(self):
        with pytest.raises(SpecError, match="unknown distribution kind"):
            parse_distribution("distribute A[8](banana) on 2")

    def test_garbage(self):
        with pytest.raises(SpecError, match="cannot parse"):
            parse_distribution("give A to everyone")


class TestSpecFiles:
    def test_multi_statement_file(self):
        spec = parse_spec("""
            # the decomposition is a separate, versionable artifact
            distribute A[24](block) on 4;
            distribute B[48](scatter) on 4;

            distribute M[8, 6](block, scatter) on 2 x 2;
        """)
        assert set(spec) == {"A", "B", "M"}
        assert isinstance(spec["A"], Block)
        assert isinstance(spec["M"], GridDecomposition)

    def test_inline_comment(self):
        spec = parse_spec("distribute A[10](scatter) on 2;  # cyclic")
        assert isinstance(spec["A"], Scatter)

    def test_duplicate_rejected(self):
        with pytest.raises(SpecError, match="distributed twice"):
            parse_spec("""
                distribute A[10](block) on 2;
                distribute A[10](scatter) on 2;
            """)

    def test_empty_spec(self):
        assert parse_spec("  \n # nothing\n") == {}

    def test_multiple_statements_one_line(self):
        spec = parse_spec(
            "distribute A[10](block) on 2; distribute B[10](scatter) on 2;"
        )
        assert set(spec) == {"A", "B"}
