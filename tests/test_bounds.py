"""Tests for bounded sets (paper Definition 1)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.bounds import EMPTY_1D, Bounds


class TestConstruction:
    def test_scalar_shorthand(self):
        b = Bounds(2, 5)
        assert b.lower == (2,)
        assert b.upper == (5,)
        assert b.dim == 1

    def test_tuple_construction(self):
        b = Bounds((2, 3), (3, 4))
        assert b.dim == 2

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Bounds((0, 0), (1,))

    def test_empty_constant(self):
        assert EMPTY_1D.is_empty
        assert EMPTY_1D.size() == 0


class TestMembership:
    def test_example1_membership(self):
        # paper Example 1: {(2,3),(2,4),(3,3),(3,4)} within l=(2,3), u=(3,4)
        b = Bounds((2, 3), (3, 4))
        for pt in [(2, 3), (2, 4), (3, 3), (3, 4)]:
            assert pt in b
        assert (1, 3) not in b
        assert (2, 5) not in b

    def test_example1_larger_bounds(self):
        # ... but also within l=(1,0), u=(8,7)
        b = Bounds((1, 0), (8, 7))
        for pt in [(2, 3), (2, 4), (3, 3), (3, 4)]:
            assert pt in b

    def test_scalar_membership(self):
        b = Bounds(0, 9)
        assert 0 in b
        assert 9 in b
        assert 10 not in b
        assert -1 not in b

    def test_wrong_arity_not_member(self):
        assert (1, 2) not in Bounds(0, 9)


class TestSizeAndIteration:
    def test_size_1d(self):
        assert Bounds(3, 7).size() == 5

    def test_size_2d(self):
        assert Bounds((0, 0), (2, 3)).size() == 12

    def test_size_empty(self):
        assert Bounds(5, 2).size() == 0

    def test_lexicographic_iteration(self):
        pts = list(Bounds((0, 0), (1, 1)))
        assert pts == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_iter_scalar(self):
        assert list(Bounds(2, 5).iter_scalar()) == [2, 3, 4, 5]

    def test_iter_scalar_rejects_2d(self):
        with pytest.raises(ValueError):
            Bounds((0, 0), (1, 1)).iter_scalar()

    def test_empty_iteration(self):
        assert list(Bounds(1, 0)) == []


class TestIntersection:
    def test_and_operator(self):
        b = Bounds(0, 10) & Bounds(5, 20)
        assert b.scalar() == (5, 10)

    def test_and_disjoint_is_empty(self):
        assert (Bounds(0, 3) & Bounds(5, 9)).is_empty

    def test_and_2d(self):
        b = Bounds((0, 0), (5, 5)) & Bounds((2, 3), (9, 4))
        assert b.lower == (2, 3)
        assert b.upper == (5, 4)

    def test_and_dim_mismatch(self):
        with pytest.raises(ValueError):
            Bounds(0, 1) & Bounds((0, 0), (1, 1))

    @given(
        st.integers(-20, 20), st.integers(-20, 20),
        st.integers(-20, 20), st.integers(-20, 20),
    )
    def test_and_is_set_intersection(self, l1, u1, l2, u2):
        b1, b2 = Bounds(l1, u1), Bounds(l2, u2)
        inter = b1 & b2
        lo = max(min(l1, u1), min(l2, u2)) if True else None
        expected = set(b1.iter_scalar()) & set(b2.iter_scalar())
        assert set(inter.iter_scalar()) == expected


class TestNormalization:
    def test_normalized_tightens(self):
        b = Bounds((0, 0), (10, 10))
        tight = b.normalized([(2, 3), (3, 4)])
        assert tight.lower == (2, 3)
        assert tight.upper == (3, 4)

    def test_normalized_empty_points_returns_self(self):
        b = Bounds(0, 10)
        assert b.normalized([]) is b

    def test_scalar_accessor(self):
        assert Bounds(1, 9).scalar() == (1, 9)
        with pytest.raises(ValueError):
            Bounds((0, 0), (1, 1)).scalar()
