"""Tests for multi-dimensional product decompositions."""

import itertools

import pytest

from repro.decomp import Block, Collapsed, GridDecomposition, Scatter


class TestCollapsed:
    def test_single_grid_point(self):
        d = Collapsed(10)
        assert d.pmax == 1
        assert d.owned(0) == list(range(10))
        assert d.proc(5) == 0
        assert d.local(5) == 5

    def test_validate(self):
        Collapsed(6).validate()


class TestGridNumbering:
    def test_row_major_roundtrip(self):
        g = GridDecomposition([Block(8, 2), Scatter(9, 3)])
        assert g.pmax == 6
        for p in range(6):
            assert g.linear_proc(g.grid_coord(p)) == p

    def test_grid_coord_values(self):
        g = GridDecomposition([Block(8, 2), Scatter(9, 3)])
        assert g.grid_coord(0) == (0, 0)
        assert g.grid_coord(1) == (0, 1)
        assert g.grid_coord(3) == (1, 0)
        assert g.grid_coord(5) == (1, 2)

    def test_out_of_range(self):
        g = GridDecomposition([Block(4, 2)])
        with pytest.raises(IndexError):
            g.grid_coord(2)
        with pytest.raises(IndexError):
            g.linear_proc((5,))


class TestPlacement:
    def test_2d_block_block(self):
        g = GridDecomposition([Block(4, 2), Block(4, 2)])
        # element (0,0) on grid (0,0)=proc 0; (3,3) on grid (1,1)=proc 3
        assert g.proc((0, 0)) == 0
        assert g.proc((3, 3)) == 3
        assert g.proc((0, 3)) == 1
        assert g.proc((3, 0)) == 2

    def test_row_distribution_with_collapsed(self):
        # block rows, full columns: the classic matvec layout
        g = GridDecomposition([Block(6, 3), Collapsed(4)])
        assert g.pmax == 3
        for i, j in itertools.product(range(6), range(4)):
            assert g.proc((i, j)) == i // 2

    def test_local_shape(self):
        g = GridDecomposition([Block(6, 3), Collapsed(4)])
        assert g.local_shape(0) == (2, 4)

    def test_owned_lexicographic(self):
        g = GridDecomposition([Block(4, 2), Scatter(4, 2)])
        own = g.owned(0)
        assert own == sorted(own)
        for idx in own:
            assert g.proc(idx) == 0

    def test_owned_partition(self):
        g = GridDecomposition([Block(5, 2), Scatter(3, 3)])
        all_owned = sorted(
            idx for p in range(g.pmax) for idx in g.owned(p)
        )
        assert all_owned == sorted(itertools.product(range(5), range(3)))

    def test_global_index_roundtrip(self):
        g = GridDecomposition([Scatter(5, 2), Block(7, 2)])
        for idx in itertools.product(range(5), range(7)):
            p = g.proc(idx)
            l = g.local(idx)
            assert g.global_index(p, l) == idx

    def test_validate_bijection(self):
        GridDecomposition([Scatter(5, 2), Block(7, 2)]).validate()

    def test_max_local_shape_covers_all(self):
        g = GridDecomposition([Block(5, 2), Scatter(7, 3)])
        mx = g.max_local_shape()
        for p in range(g.pmax):
            ls = g.local_shape(p)
            assert all(a <= b for a, b in zip(ls, mx))

    def test_empty_dims_rejected(self):
        with pytest.raises(ValueError):
            GridDecomposition([])
