"""End-to-end property test: for random clauses and decompositions, every
execution path — sequential reference, shared template, distributed
template, generated-source programs, naive baselines — produces the same
final state.  This is the reproduction's master invariant.
"""

import numpy as np
from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.baselines import run_distributed_naive, run_shared_naive
from repro.codegen import (
    compile_clause,
    compile_distributed,
    compile_shared,
    run_distributed,
    run_shared,
)
from repro.core import (
    PAR,
    AffineF,
    Clause,
    ConstantF,
    IndexSet,
    ModularF,
    Ref,
    SeparableMap,
    copy_env,
    evaluate_clause,
)
from repro.decomp import Block, BlockScatter, Replicated, Scatter, SingleOwner
from repro.machine import DistributedMachine, SharedMachine


def _mk_decomp(kind, n, pmax, b, owner):
    if kind == "block":
        return Block(n, pmax)
    if kind == "scatter":
        return Scatter(n, pmax)
    if kind == "bs":
        return BlockScatter(n, pmax, b)
    if kind == "single":
        return SingleOwner(n, pmax, owner % pmax)
    return Replicated(n, pmax)


def _mk_func(kind, a, c, z):
    if kind == "const":
        return ConstantF(c)
    if kind == "shift":
        return AffineF(1, c)
    if kind == "affine":
        return AffineF(a, c)
    return ModularF(AffineF(1, c), z)


decomp_kinds = st.sampled_from(["block", "scatter", "bs", "single"])
read_decomp_kinds = st.sampled_from(
    ["block", "scatter", "bs", "single", "replicated"]
)
func_kinds = st.sampled_from(["const", "shift", "affine", "mod"])


@st.composite
def scenarios(draw):
    n = draw(st.integers(4, 40))
    pmax = draw(st.integers(1, 6))
    dA = _mk_decomp(draw(decomp_kinds), n, pmax, draw(st.integers(1, 5)),
                    draw(st.integers(0, 5)))
    dB = _mk_decomp(draw(read_decomp_kinds), n, pmax, draw(st.integers(1, 5)),
                    draw(st.integers(0, 5)))
    f = _mk_func(draw(func_kinds), draw(st.integers(1, 3)),
                 draw(st.integers(0, 6)), draw(st.integers(4, 30)))
    g = _mk_func(draw(func_kinds), draw(st.integers(1, 3)),
                 draw(st.integers(0, 6)), draw(st.integers(4, 30)))
    guarded = draw(st.booleans())
    # find a domain where both accesses stay in [0, n) and the write is
    # injective (required by the // independence premise)
    cand = [i for i in range(n) if 0 <= f(i) < n and 0 <= g(i) < n]
    assume(cand)
    lo, hi = min(cand), max(cand)
    assume(all(i in cand for i in range(lo, hi + 1)))
    writes = [f(i) for i in range(lo, hi + 1)]
    assume(len(set(writes)) == len(writes))
    seed = draw(st.integers(0, 2**16))
    return n, pmax, dA, dB, f, g, guarded, lo, hi, seed


def _build(n, f, g, guarded, lo, hi, seed):
    rng = np.random.default_rng(seed)
    guard = None
    if guarded:
        guard = Ref("A", SeparableMap([AffineF(1, 0)])) > 0.5
    cl = Clause(
        domain=IndexSet.range1d(lo, hi),
        lhs=Ref("A", SeparableMap([f])),
        rhs=Ref("B", SeparableMap([g])) * 2 + 1,
        ordering=PAR,
        guard=guard,
    )
    env0 = {"A": rng.random(n), "B": rng.random(n)}
    return cl, env0


@given(scenarios())
@settings(max_examples=120, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.filter_too_much])
def test_all_execution_paths_agree(s):
    n, pmax, dA, dB, f, g, guarded, lo, hi, seed = s
    # guards read A with identity access; keep the domain inside A
    if guarded and not (0 <= lo and hi < n):
        return
    cl, env0 = _build(n, f, g, guarded, lo, hi, seed)
    ref = evaluate_clause(cl, copy_env(env0))["A"]
    decomps = {"A": dA, "B": dB}
    plan = compile_clause(cl, decomps)

    shared = run_shared(plan, copy_env(env0))
    assert np.allclose(shared.env["A"], ref), ("shared", plan.rules())

    dist = run_distributed(plan, copy_env(env0))
    assert np.allclose(dist.collect("A"), ref), ("distributed", plan.rules())

    shared_naive = run_shared_naive(plan, copy_env(env0))
    assert np.allclose(shared_naive.env["A"], ref), "shared-naive"

    dist_naive = run_distributed_naive(plan, copy_env(env0))
    assert np.allclose(dist_naive.collect("A"), ref), "distributed-naive"

    # generated source paths
    _src, phase = compile_shared(plan)
    m = SharedMachine(pmax, copy_env(env0))
    m.run_phase(lambda p: phase(p, m.env))
    assert np.allclose(m.env["A"], ref), "generated-shared"

    _src2, factory = compile_distributed(plan)
    md = DistributedMachine(pmax)
    md.place("A", env0["A"], dA)
    md.place("B", env0["B"], dB)
    md.run(factory)
    assert np.allclose(md.collect("A"), ref), "generated-distributed"

    # communication counts agree between interpreter and generated code
    assert dist.stats.total_messages() == md.stats.total_messages()
