"""Edge cases across the stack: empty structures, empty domains,
single-processor machines, degenerate parameters."""

import numpy as np
import pytest

from repro.baselines import run_distributed_naive
from repro.codegen import compile_clause, run_distributed, run_shared
from repro.core import (
    AffineF,
    Clause,
    ConstantF,
    IndexSet,
    Ref,
    SeparableMap,
    copy_env,
    evaluate_clause,
)
from repro.core.view import GeneralMap
from repro.decomp import Block, BlockScatter, Scatter, plan_redistribution
from repro.machine import DistributedMachine, LocalMemory, scatter_global
from repro.sets import Work, modify_naive, optimize_access


class TestEmptyStructures:
    def test_zero_length_decompositions(self):
        for d in (Block(0, 4), Scatter(0, 4), BlockScatter(0, 4, 2)):
            assert d.layout() == []
            assert all(d.owned(p) == [] for p in range(4))
            assert d.max_local_size() == 0
            d.validate()

    def test_single_element(self):
        d = Scatter(1, 4)
        assert d.owned(0) == [0]
        assert d.local_size(0) == 1
        assert d.local_size(3) == 0

    def test_place_zero_length_array(self):
        m = DistributedMachine(2)
        m.place("A", np.zeros(0), Block(0, 2))
        assert m.collect("A").size == 0

    def test_more_processors_than_elements(self):
        d = Block(3, 8)
        assert [len(d.owned(p)) for p in range(8)] == [1, 1, 1, 0, 0, 0, 0, 0]
        d.validate()


class TestEmptyDomains:
    def mk(self, lo, hi):
        return Clause(
            IndexSet.range1d(lo, hi),
            Ref("A", SeparableMap([AffineF(1, 0)])),
            Ref("B", SeparableMap([AffineF(1, 0)])) + 1,
        )

    def test_empty_clause_domain_runs(self):
        cl = self.mk(5, 4)
        env0 = {"A": np.arange(8.0), "B": np.zeros(8)}
        plan = compile_clause(cl, {"A": Block(8, 2), "B": Block(8, 2)})
        assert plan.modify.rule == "empty"
        m = run_distributed(plan, copy_env(env0))
        assert np.array_equal(m.collect("A"), env0["A"])
        assert m.stats.total_messages() == 0

    def test_empty_domain_shared(self):
        cl = self.mk(5, 4)
        env0 = {"A": np.arange(8.0), "B": np.zeros(8)}
        plan = compile_clause(cl, {"A": Scatter(8, 2), "B": Scatter(8, 2)})
        m = run_shared(plan, copy_env(env0))
        assert np.array_equal(m.env["A"], env0["A"])

    def test_single_index_domain(self):
        cl = self.mk(3, 3)
        env0 = {"A": np.zeros(8), "B": np.arange(8.0)}
        plan = compile_clause(cl, {"A": Block(8, 4), "B": Scatter(8, 4)})
        m = run_distributed(plan, copy_env(env0))
        ref = evaluate_clause(cl, copy_env(env0))["A"]
        assert np.allclose(m.collect("A"), ref)


class TestSingleProcessor:
    def test_everything_local_pmax1(self):
        cl = Clause(
            IndexSet.range1d(0, 9),
            Ref("A", SeparableMap([AffineF(1, 0)])),
            Ref("B", SeparableMap([AffineF(1, 0)])) * 3,
        )
        env0 = {"A": np.zeros(10), "B": np.arange(10.0)}
        plan = compile_clause(cl, {"A": Block(10, 1), "B": Scatter(10, 1)})
        m = run_distributed(plan, copy_env(env0))
        assert m.stats.total_messages() == 0
        assert np.allclose(m.collect("A"), env0["B"] * 3)

    def test_naive_pmax1(self):
        cl = Clause(
            IndexSet.range1d(0, 9),
            Ref("A", SeparableMap([AffineF(1, 0)])),
            Ref("B", SeparableMap([AffineF(1, 0)])),
        )
        env0 = {"A": np.zeros(10), "B": np.arange(10.0)}
        plan = compile_clause(cl, {"A": Block(10, 1), "B": Block(10, 1)})
        m = run_distributed_naive(plan, copy_env(env0))
        assert np.allclose(m.collect("A"), env0["B"])


class TestDegenerateAccess:
    def test_constant_write_function(self):
        # every iteration writes A[c]: legal only with SEQ or single
        # iteration; use a single-iteration domain
        cl = Clause(
            IndexSet.range1d(7, 7),
            Ref("A", SeparableMap([ConstantF(3)])),
            Ref("B", SeparableMap([AffineF(1, 0)])),
        )
        env0 = {"A": np.zeros(10), "B": np.arange(10.0)}
        plan = compile_clause(cl, {"A": Block(10, 2), "B": Block(10, 2)})
        assert plan.modify.rule == "thm1-constant"
        m = run_distributed(plan, copy_env(env0))
        out = m.collect("A")
        assert out[3] == 7.0

    def test_negative_slope_write(self):
        # A[n-1-i] := B[i]: a reversal
        n = 12
        cl = Clause(
            IndexSet.range1d(0, n - 1),
            Ref("A", SeparableMap([AffineF(-1, n - 1)])),
            Ref("B", SeparableMap([AffineF(1, 0)])),
        )
        env0 = {"A": np.zeros(n), "B": np.arange(float(n))}
        plan = compile_clause(cl, {"A": Scatter(n, 3), "B": Block(n, 3)})
        m = run_distributed(plan, copy_env(env0))
        assert np.array_equal(m.collect("A"), env0["B"][::-1])


class TestViewMisc:
    def test_general_map_composition(self):
        g1 = GeneralMap(lambda i: (i[0] + 1,), "inc")
        g2 = GeneralMap(lambda i: (2 * i[0],), "dbl")
        comp = g2.compose(g1)
        assert comp((3,)) == (8,)
        assert "dbl∘inc" in comp.name

    def test_decomposition_as_view(self):
        d = Scatter(8, 4)
        v = d.as_view()
        for i in range(8):
            assert v.ip((i,)) == d.place(i)


class TestWorkAndEnumerationMisc:
    def test_optimize_access_empty_never_crashes(self):
        acc = optimize_access(Scatter(10, 2), AffineF(1, 0), 3, 2)
        w = Work()
        assert acc.indices(1, w) == []
        assert w.overhead() == 0

    def test_course_range_empty_image(self):
        # image entirely outside the data range: no courses at all
        acc = optimize_access(BlockScatter(4, 2, 1), ConstantF(3), 0, 9)
        assert acc.indices(0) == modify_naive(
            BlockScatter(4, 2, 1), ConstantF(3), 0, 9, 0
        )

    def test_local_memory_alloc_clamps_negative(self):
        mem = LocalMemory(0)
        arr = mem.alloc("A", -1)
        assert arr.size == 0

    def test_scatter_global_empty_owner(self):
        d = Block(3, 8)
        mems = [LocalMemory(p) for p in range(8)]
        scatter_global("A", np.arange(3.0), d, mems)
        assert mems[7]["A"].size == 0


class TestRedistributionEdges:
    def test_zero_length_redistribution(self):
        plan = plan_redistribution(Block(0, 2), Scatter(0, 2))
        assert plan.moved_elements() == 0
        assert plan.stay_elements() == 0

    def test_pmax1_redistribution_all_stay(self):
        plan = plan_redistribution(Block(10, 1), Scatter(10, 1))
        assert plan.moved_elements() == 0
        assert plan.stay_elements() == 10
