"""Documentation health: code snippets in docs/ must execute, and the
top-level documents must reference real files."""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent
DOCS = ROOT / "docs"

_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _blocks(path: pathlib.Path):
    return _BLOCK.findall(path.read_text())


@pytest.mark.parametrize("doc", ["vcal.md", "decompositions.md",
                                 "analysis.md"])
def test_doc_snippets_execute(doc):
    ns = {}
    for block in _blocks(DOCS / doc):
        exec(compile(block, f"<{doc}>", "exec"), ns)  # noqa: S102


def test_docs_exist():
    for doc in ("vcal.md", "decompositions.md", "generation.md",
                "analysis.md"):
        assert (DOCS / doc).exists()


def test_analysis_doc_covers_every_code():
    from repro.analysis import CODES

    text = (DOCS / "analysis.md").read_text()
    for code in CODES:
        assert code in text, f"docs/analysis.md misses {code}"


def test_example_program_specs_pair_up():
    programs = ROOT / "examples" / "programs"
    pals = sorted(programs.glob("*.pal"))
    assert pals, "examples/programs/ has no .pal programs"
    for pal in pals:
        assert pal.with_suffix(".spec").exists(), pal.name


def test_generation_doc_mentions_real_modules():
    text = (DOCS / "generation.md").read_text()
    for mod in ("doacross", "halo", "barriers", "ndplan", "nddist",
                "inspector", "reduction", "autoselect"):
        assert mod in text
        assert (ROOT / "src" / "repro" / "codegen" / f"{mod}.py").exists()


def test_design_experiment_index_points_at_real_benches():
    text = (ROOT / "DESIGN.md").read_text()
    for name in re.findall(r"`benchmarks/(test_\w+\.py)`", text):
        assert (ROOT / "benchmarks" / name).exists(), name


def test_experiments_references_real_benches():
    text = (ROOT / "EXPERIMENTS.md").read_text()
    for name in re.findall(r"`benchmarks/(test_\w+\.py)`", text):
        assert (ROOT / "benchmarks" / name).exists(), name


def test_readme_examples_exist():
    text = (ROOT / "README.md").read_text()
    for name in re.findall(r"python (examples/\w+\.py)", text):
        assert (ROOT / name).exists(), name
