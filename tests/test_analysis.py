"""The compile-time clause verifier: diagnostic codes, runtime
cross-checks, the `repro check` CLI, and the verify-plan pass."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    CODES,
    Diagnostic,
    certified_independent,
    verify_clause,
)
from repro.cli import main
from repro.codegen import compile_clause, run_distributed
from repro.core import (
    PAR,
    SEQ,
    AffineF,
    Clause,
    ConstantF,
    IndexSet,
    Ref,
    SeparableMap,
    copy_env,
    evaluate_clause,
)
from repro.decomp import Block, OverlappedBlock, Replicated, Scatter, SingleOwner
from repro.machine.scheduler import DeadlockError
from repro.pipeline import clear_plan_cache, compile_plan


def ident(name):
    return Ref(name, SeparableMap([AffineF(1, 0)]))


def shifted(name, c):
    return Ref(name, SeparableMap([AffineF(1, c)]))


def clause1d(lo, hi, lhs, rhs, ordering=PAR, guard=None):
    return Clause(IndexSet.range1d(lo, hi), lhs, rhs,
                  ordering=ordering, guard=guard)


N, P = 24, 4


def verify(clause, decomps):
    clear_plan_cache()
    return verify_clause(clause, decomps)


# ---------------------------------------------------------------------------
# seeded-bad fixtures: each one yields exactly its documented code
# ---------------------------------------------------------------------------

class TestSeededBad:
    def test_constant_write_race001(self):
        cl = clause1d(0, N - 1, Ref("A", SeparableMap([ConstantF(3)])),
                      ident("B"))
        report = verify(cl, {"A": Block(N, P), "B": Block(N, P)})
        assert report.has("RACE001") and not report.ok
        (diag,) = report.find("RACE001")
        assert diag.witnesses  # concrete colliding loop indices

    def test_carried_dependence_race003(self):
        # domain starts at 1 so bounds/comm are clean: the only defect
        # is the loop-carried read A[i-1] under // ordering
        cl = clause1d(1, N - 1, ident("A"), shifted("A", -1) + ident("B"))
        report = verify(cl, {"A": Block(N, P), "B": Block(N, P)})
        assert report.codes() == ["RACE003"]
        (diag,) = report.find("RACE003")
        assert len(diag.witnesses) >= 1

    def test_replicated_write_race002(self):
        cl = clause1d(0, N - 1, ident("A"), ident("B"))
        report = verify(cl, {"A": Replicated(N, P), "B": Block(N, P)})
        assert report.has("RACE002")

    def test_missing_send_comm001_and_bnd001(self):
        # B[i+1] at i = N-1 reads element N: out of bounds, no owner
        cl = clause1d(0, N - 1, ident("A"), shifted("B", 1))
        report = verify(cl, {"A": Block(N, P), "B": Block(N, P)})
        assert report.has("COMM001") and report.has("BND001")
        (diag,) = report.find("COMM001")
        assert "never completes" in diag.message

    def test_write_out_of_bounds_bnd002_comm003(self):
        cl = clause1d(0, N - 1, shifted("A", 1), ident("B"))
        report = verify(cl, {"A": Block(N, P), "B": Block(N, P)})
        assert report.has("BND002") and report.has("COMM003")

    def test_halo_exceeded_bnd003(self):
        # halo width 1 cannot cover the +2 offset
        cl = clause1d(1, N - 3, ident("V"), shifted("U", 2))
        report = verify(cl, {"V": Block(N, P),
                             "U": OverlappedBlock(N, P, halo=1)})
        assert report.has("BND003")

    def test_single_owner_lint(self):
        cl = clause1d(0, N - 1, ident("A"), ident("B"))
        report = verify(cl, {"A": SingleOwner(N, P, 0),
                             "B": SingleOwner(N, P, 0)})
        assert report.has("LINT001") and report.has("LINT002")
        assert report.ok  # lint findings are warnings, not errors

    def test_scattered_recurrence_lint003(self):
        cl = clause1d(1, N - 1, ident("A"),
                      shifted("A", -1) + ident("B"), ordering=SEQ)
        report = verify(cl, {"A": Scatter(N, P), "B": Scatter(N, P)})
        assert report.has("LINT003")

    def test_race004_not_raised_when_barrier_kept(self):
        # the racy clause forces the barrier to stay, so the pass-vs-
        # analyzer consistency check must NOT fire
        racy = clause1d(1, N - 1, ident("A"), shifted("A", -1))
        succ = clause1d(0, N - 1, ident("B"), ident("A"))
        decomps = {"A": Block(N, P), "B": Block(N, P)}
        clear_plan_cache()
        ir = compile_plan(racy, decomps, successor=succ, verify=True)
        assert ir.barrier_needed
        assert not ir.diagnostics.has("RACE004")

    def test_clean_clause_is_clean(self):
        cl = clause1d(0, N - 1, ident("Y"), ident("Y") + ident("X"))
        report = verify(cl, {"Y": Block(N, P), "X": Scatter(N, P)})
        assert report.ok and not report.diagnostics


# ---------------------------------------------------------------------------
# diagnostics plumbing
# ---------------------------------------------------------------------------

class TestDiagnostics:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="unknown diagnostic code"):
            Diagnostic(code="BOGUS9", message="x")

    def test_report_sorted_errors_first(self):
        cl = clause1d(0, N - 1, ident("A"), shifted("A", -1))
        report = verify(cl, {"A": Scatter(N, P)})
        ranks = [d.severity.value for d in report.diagnostics]
        assert ranks == sorted(ranks, key=["error", "warning", "info"].index)

    def test_every_code_documented(self):
        for code, text in CODES.items():
            assert len(text) > 10, code

    def test_summary_round_trips_through_json(self):
        cl = clause1d(0, N - 1, ident("A"), shifted("B", 1))
        report = verify(cl, {"A": Block(N, P), "B": Block(N, P)})
        data = json.loads(json.dumps(report.summary()))
        assert data["errors"] == len(report.errors())
        assert {d["code"] for d in data["diagnostics"]} == set(report.codes())


# ---------------------------------------------------------------------------
# the verify-plan pass and the plan cache
# ---------------------------------------------------------------------------

class TestVerifyPass:
    def test_trace_records_verify_pass(self):
        cl = clause1d(0, N - 1, ident("A"), ident("B"))
        clear_plan_cache()
        ir = compile_plan(cl, {"A": Block(N, P), "B": Block(N, P)},
                          verify=True)
        rec = ir.trace.record("verify-plan")
        assert rec is not None
        assert "no findings" in " ".join(rec.notes)
        assert ir.diagnostics is not None and ir.diagnostics.ok

    def test_cache_hit_reuses_verdict(self):
        cl = clause1d(0, N - 1, ident("A"), shifted("B", 1))
        decomps = {"A": Block(N, P), "B": Block(N, P)}
        clear_plan_cache()
        first = compile_plan(cl, decomps, verify=True)
        again = compile_plan(cl, decomps, verify=True)
        assert again.trace.cache_hit
        assert again.diagnostics is not None
        assert again.diagnostics.codes() == first.diagnostics.codes()

    def test_unverified_hit_gets_verified_on_demand(self):
        cl = clause1d(0, N - 1, ident("A"), shifted("B", 1))
        decomps = {"A": Block(N, P), "B": Block(N, P)}
        clear_plan_cache()
        plain = compile_plan(cl, decomps)
        assert plain.diagnostics is None
        verified = compile_plan(cl, decomps, verify=True)
        assert verified.trace.cache_hit and verified.diagnostics.has("COMM001")
        # ... and the verdict sticks to the cached entry
        third = compile_plan(cl, decomps, verify=True)
        assert third.diagnostics.has("COMM001")

    def test_explain_surfaces_diagnostics(self):
        cl = clause1d(0, N - 1, ident("A"), shifted("B", 1))
        clear_plan_cache()
        ir = compile_plan(cl, {"A": Block(N, P), "B": Block(N, P)},
                          verify=True)
        text = ir.trace.pretty()
        assert "COMM001" in text and "verify" in text


# ---------------------------------------------------------------------------
# runtime cross-check: static verdicts against actual machine behavior
# ---------------------------------------------------------------------------

class TestRuntimeCrossCheck:
    def _deadlock(self, backend):
        cl = clause1d(0, N - 1, ident("A"), shifted("B", 1))
        decomps = {"A": Block(N, P), "B": Block(N, P)}
        clear_plan_cache()
        plan = compile_clause(cl, decomps)
        env = {"A": np.zeros(N), "B": np.arange(float(N))}
        with pytest.raises(DeadlockError) as exc:
            run_distributed(plan, env, backend=backend)
        return exc.value

    def test_deadlock_message_names_static_code(self):
        err = self._deadlock("scalar")
        assert "COMM001" in str(err)
        assert "repro check" in str(err)

    def test_deadlock_blocked_deterministically_ordered(self):
        err = self._deadlock("scalar")
        assert list(err.blocked) == sorted(err.blocked)
        assert err.undelivered == sorted(
            err.undelivered, key=lambda m: (m[1], m[0], repr(m[2])))

    def test_clean_clause_runs_without_deadlock(self):
        cl = clause1d(0, N - 1, ident("A"), ident("B"))
        decomps = {"A": Block(N, P), "B": Scatter(N, P)}
        report = verify(cl, decomps)
        assert report.ok
        plan = compile_clause(cl, decomps)
        env = {"A": np.zeros(N), "B": np.arange(float(N))}
        machine = run_distributed(plan, env)
        assert np.array_equal(machine.collect("A"), env["B"])


# ---------------------------------------------------------------------------
# property: certified race-free => bit-identical // vs sequential
# ---------------------------------------------------------------------------

def _dec(kind, n, pmax):
    return {"block": Block, "scatter": Scatter}[kind](n, pmax)


class TestIndependenceCertificate:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(4, 32),
        pmax=st.integers(1, 6),
        wkind=st.sampled_from(["block", "scatter"]),
        rkind=st.sampled_from(["block", "scatter"]),
        c=st.integers(-2, 2),
        seed=st.integers(0, 5),
    )
    def test_certified_clause_matches_sequential(
            self, n, pmax, wkind, rkind, c, seed):
        lo, hi = max(0, -c), min(n - 1, n - 1 - c)
        cl = clause1d(lo, hi, ident("Y"), shifted("X", c) * 0.5 + 1.0)
        decomps = {"Y": _dec(wkind, n, pmax), "X": _dec(rkind, n, pmax)}
        assert certified_independent(cl, decomps)
        report = verify(cl, decomps)
        assert not [d for d in report.errors()
                    if d.code.startswith("RACE")]
        rng = np.random.default_rng(seed)
        env0 = {"Y": rng.random(n), "X": rng.random(n)}
        ref = evaluate_clause(cl, copy_env(env0))
        plan = compile_clause(cl, decomps)
        for backend in ("scalar", "vector", "overlap"):
            machine = run_distributed(plan, copy_env(env0), backend=backend)
            got = machine.collect("Y")
            assert np.array_equal(got, ref["Y"]), backend

    def test_certificate_denied_on_self_read(self):
        cl = clause1d(1, N - 1, ident("A"), shifted("A", -1))
        assert not certified_independent(cl, {"A": Block(N, P)})

    def test_certificate_denied_on_replicated_write(self):
        cl = clause1d(0, N - 1, ident("A"), ident("B"))
        assert not certified_independent(
            cl, {"A": Replicated(N, P), "B": Block(N, P)})


# ---------------------------------------------------------------------------
# doacross consults the analyzer
# ---------------------------------------------------------------------------

class TestDoacrossConsult:
    def test_out_of_bounds_recurrence_rejected(self):
        from repro.codegen.doacross import compile_doacross

        # domain starts at 0: A[-1] is read on the first iteration
        cl = clause1d(0, N - 1, ident("A"),
                      shifted("A", -1) + ident("B"), ordering=SEQ)
        clear_plan_cache()
        with pytest.raises(ValueError, match="BND001"):
            compile_doacross(cl, {"A": Block(N, P), "B": Block(N, P)})

    def test_valid_recurrence_still_compiles(self):
        from repro.codegen.doacross import compile_doacross

        cl = clause1d(1, N - 1, ident("A"),
                      shifted("A", -1) + ident("B"), ordering=SEQ)
        clear_plan_cache()
        plan = compile_doacross(cl, {"A": Block(N, P), "B": Block(N, P)})
        assert plan.max_distance == 1


# ---------------------------------------------------------------------------
# CLI: repro check / --cache-stats
# ---------------------------------------------------------------------------

GOOD = """
for i := 0 to 23 par do
    Y[i] := Y[i] + 2 * X[i];
od;
"""

BAD = """
for i := 0 to 23 par do
    A[i] := B[i + 1];
od;
"""


@pytest.fixture
def good_prog(tmp_path):
    p = tmp_path / "good.pal"
    p.write_text(GOOD)
    return str(p)


@pytest.fixture
def bad_prog(tmp_path):
    p = tmp_path / "bad.pal"
    p.write_text(BAD)
    return str(p)


class TestCheckCLI:
    def test_clean_program_exits_zero(self, good_prog, capsys):
        rc = main(["check", good_prog, "--array", "Y=block:24",
                   "--array", "X=scatter:24"])
        out = capsys.readouterr().out
        assert rc == 0 and "clean" in out

    def test_bad_program_exits_nonzero_with_codes(self, bad_prog, capsys):
        rc = main(["check", bad_prog, "--array", "A=block:24",
                   "--array", "B=block:24"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "COMM001" in out and "BND001" in out

    def test_json_output_parses(self, bad_prog, capsys):
        rc = main(["check", bad_prog, "--array", "A=block:24",
                   "--array", "B=block:24", "--json"])
        data = json.loads(capsys.readouterr().out)
        assert rc == 1 and data["ok"] is False and data["errors"] >= 1
        codes = {d["code"] for c in data["clauses"]
                 for d in c["diagnostics"]}
        assert "COMM001" in codes

    def test_strict_promotes_warnings(self, good_prog, capsys):
        args = ["check", good_prog, "--array", "Y=single:24:0",
                "--array", "X=single:24:0"]
        assert main(args) == 0  # lint findings are warnings
        assert main(args + ["--strict"]) == 1

    def test_uncompilable_clause_reports_chk001(self, good_prog, capsys):
        # no decomposition for X -> compile fails, checker reports it
        rc = main(["check", good_prog, "--array", "Y=block:24"])
        out = capsys.readouterr().out
        assert rc == 1 and "CHK001" in out

    def test_cache_stats_flag(self, good_prog, capsys):
        clear_plan_cache()
        rc = main(["compile", good_prog, "--array", "Y=block:24",
                   "--array", "X=scatter:24", "--cache-stats"])
        out = capsys.readouterr().out
        assert rc == 0
        # one unified block covering all three compile-time caches
        assert "caches:" in out
        assert "plan:" in out and "table1:" in out and "kernel:" in out
        assert "misses=1" in out


# ---------------------------------------------------------------------------
# shipped example programs all verify clean under --strict
# ---------------------------------------------------------------------------

def _example_programs():
    import pathlib

    root = pathlib.Path(__file__).parent.parent / "examples" / "programs"
    return sorted(root.glob("*.pal"))


@pytest.mark.parametrize("pal", _example_programs(),
                         ids=lambda p: p.stem)
def test_example_programs_check_clean(pal, capsys):
    spec = pal.with_suffix(".spec")
    assert spec.exists(), f"{pal.name} has no sibling .spec"
    rc = main(["check", str(pal), "--spec", str(spec), "--strict"])
    out = capsys.readouterr().out
    assert rc == 0, out
