"""Tests for clauses and the sequential reference evaluator (§2.4-2.5)."""

import numpy as np
import pytest

from repro.core.clause import PAR, SEQ, Clause, Program
from repro.core.evaluator import (
    WriteConflictError,
    copy_env,
    evaluate_clause,
    evaluate_program,
)
from repro.core.expr import BinOp, Const, LoopIndex, Ref
from repro.core.ifunc import AffineF, ConstantF, IdentityF
from repro.core.indexset import IndexSet
from repro.core.view import ProjectedMap, SeparableMap


def ident_ref(name):
    return Ref(name, SeparableMap([IdentityF()]))


def simple_clause(n=8, ordering=PAR, guard=None):
    return Clause(
        domain=IndexSet.range1d(0, n - 1),
        lhs=ident_ref("A"),
        rhs=ident_ref("B") * 2,
        ordering=ordering,
        guard=guard,
    )


class TestClauseQueries:
    def test_reads_include_guard(self):
        c = simple_clause(guard=ident_ref("C") > 0)
        assert [r.name for r in c.reads()] == ["B", "C"]

    def test_read_names_deduplicate(self):
        c = Clause(
            IndexSet.range1d(0, 3),
            ident_ref("A"),
            BinOp("+", ident_ref("B"), ident_ref("B")),
        )
        assert c.read_names() == ["B"]

    def test_array_names_lhs_first(self):
        c = simple_clause()
        assert c.array_names() == ["A", "B"]

    def test_is_parallel(self):
        assert simple_clause(ordering=PAR).is_parallel()
        assert not simple_clause(ordering=SEQ).is_parallel()

    def test_iter_indices_without_env_ignores_guard(self):
        c = simple_clause(n=4, guard=Const(False))
        assert list(c.iter_indices()) == [(0,), (1,), (2,), (3,)]

    def test_iter_indices_with_env_applies_guard(self):
        c = simple_clause(n=4, guard=ident_ref("A") > 15)
        env = {"A": np.array([10.0, 20.0, 30.0, 5.0]), "B": np.zeros(4)}
        assert list(c.iter_indices(env)) == [(1,), (2,)]


class TestParallelSemantics:
    def test_par_reads_pre_state(self):
        # A[i] := A[i+1] in parallel must read the ORIGINAL neighbours.
        c = Clause(
            IndexSet.range1d(0, 2),
            ident_ref("A"),
            Ref("A", SeparableMap([AffineF(1, 1)])),
            ordering=PAR,
        )
        env = {"A": np.array([1.0, 2.0, 3.0, 4.0])}
        evaluate_clause(c, env)
        assert list(env["A"]) == [2.0, 3.0, 4.0, 4.0]

    def test_seq_reads_updated_state(self):
        # A[i] := A[i-1] with • ordering propagates the first value down;
        # with // ordering it only shifts by one.  This pair is exactly why
        # the ordering operator matters.
        def recurrence(ordering):
            return Clause(
                IndexSet.range1d(1, 3),
                ident_ref("A"),
                Ref("A", SeparableMap([AffineF(1, -1)])),
                ordering=ordering,
            )

        env_seq = {"A": np.array([1.0, 2.0, 3.0, 4.0])}
        evaluate_clause(recurrence(SEQ), env_seq)
        assert list(env_seq["A"]) == [1.0, 1.0, 1.0, 1.0]

        env_par = {"A": np.array([1.0, 2.0, 3.0, 4.0])}
        evaluate_clause(recurrence(PAR), env_par)
        assert list(env_par["A"]) == [1.0, 1.0, 2.0, 3.0]

    def test_conflict_detection(self):
        # every iteration writes A[0]
        c = Clause(
            IndexSet.range1d(0, 3),
            Ref("A", SeparableMap([ConstantF(0)])),
            LoopIndex(0),
            ordering=PAR,
        )
        env = {"A": np.zeros(1)}
        with pytest.raises(WriteConflictError):
            evaluate_clause(c, env, check_conflicts=True)

    def test_injective_write_passes_conflict_check(self):
        c = simple_clause()
        env = {"A": np.zeros(8), "B": np.arange(8.0)}
        evaluate_clause(c, env, check_conflicts=True)
        assert list(env["A"]) == [2.0 * i for i in range(8)]


class TestGuards:
    def test_fig1_guard(self):
        # if A[i] > 0 then A[i] := B[i]
        c = Clause(
            IndexSet.range1d(0, 4),
            ident_ref("A"),
            ident_ref("B"),
            guard=ident_ref("A") > 0,
        )
        env = {"A": np.array([1.0, -1.0, 2.0, -2.0, 3.0]),
               "B": np.array([9.0, 9.0, 9.0, 9.0, 9.0])}
        evaluate_clause(c, env)
        assert list(env["A"]) == [9.0, -1.0, 9.0, -2.0, 9.0]


class TestMultiDim:
    def test_matvec_accumulation(self):
        # y[i] := y[i] + M[i,j] * x[j] over a 2-D sequential domain
        dom = IndexSet.of_shape(3, 4)
        y = Ref("y", ProjectedMap([0], [IdentityF()]))
        m = Ref("M", SeparableMap([IdentityF(), IdentityF()]))
        x = Ref("x", ProjectedMap([1], [IdentityF()]))
        c = Clause(dom, y, BinOp("+", y, BinOp("*", m, x)), ordering=SEQ)
        rng = np.random.default_rng(7)
        env = {"y": np.zeros(3), "M": rng.random((3, 4)), "x": rng.random(4)}
        want = env["M"] @ env["x"]
        evaluate_clause(c, env)
        assert np.allclose(env["y"], want)


class TestProgram:
    def test_clauses_execute_in_order(self):
        c1 = simple_clause()  # A := 2B
        c2 = Clause(
            IndexSet.range1d(0, 7), ident_ref("C"), ident_ref("A"),
        )  # C := A
        prog = Program([c1, c2])
        env = {"A": np.zeros(8), "B": np.ones(8), "C": np.zeros(8)}
        evaluate_program(prog, env)
        assert list(env["C"]) == [2.0] * 8

    def test_program_array_names(self):
        prog = Program([simple_clause()])
        assert prog.array_names() == ["A", "B"]

    def test_copy_env_is_deep(self):
        env = {"A": np.zeros(3)}
        env2 = copy_env(env)
        env2["A"][0] = 5
        assert env["A"][0] == 0

    def test_len_and_iter(self):
        prog = Program([simple_clause(), simple_clause()])
        assert len(prog) == 2
        assert len(list(prog)) == 2

    def test_zero_dim_rejected(self):
        with pytest.raises(Exception):
            Clause(IndexSet(IndexSet.range1d(0, 1).bounds.__class__((), ())),
                   ident_ref("A"), Const(0))
