"""Tests for generated halo-exchange stencil programs (§5 extension)."""

import numpy as np
import pytest

from repro.codegen import compile_clause
from repro.codegen.halo import compile_halo_stencil, run_halo_stencil
from repro.core import (
    PAR,
    SEQ,
    AffineF,
    BinOp,
    Clause,
    IndexSet,
    Ref,
    SeparableMap,
    copy_env,
    evaluate_clause,
)
from repro.decomp import Block, OverlappedBlock

N, PMAX = 64, 4


def stencil(radius=1, n=N, src="U", dst="V"):
    terms = [Ref(src, SeparableMap([AffineF(1, c)]))
             for c in range(-radius, radius + 1)]
    rhs = terms[0]
    for t in terms[1:]:
        rhs = BinOp("+", rhs, t)
    return Clause(
        domain=IndexSet.range1d(radius, n - 1 - radius),
        lhs=Ref(dst, SeparableMap([AffineF(1, 0)])),
        rhs=rhs,
        ordering=PAR,
    )


def decomps(radius=1):
    return {"U": OverlappedBlock(N, PMAX, halo=radius),
            "V": OverlappedBlock(N, PMAX, halo=radius)}


def env_for(seed=0):
    rng = np.random.default_rng(seed)
    return {"U": rng.random(N), "V": np.zeros(N)}


class TestValidation:
    def test_accepts_stencil(self):
        plan = compile_halo_stencil(stencil(1), decomps(1))
        assert plan.radius() == 1

    def test_rejects_shift_beyond_halo(self):
        with pytest.raises(ValueError, match="exceeds halo"):
            compile_halo_stencil(stencil(2), decomps(1))

    def test_rejects_seq(self):
        cl = stencil(1)
        cl.ordering = SEQ
        with pytest.raises(ValueError, match="//-clauses"):
            compile_halo_stencil(cl, decomps(1))

    def test_rejects_non_overlapped(self):
        ds = {"U": Block(N, PMAX), "V": OverlappedBlock(N, PMAX, 1)}
        with pytest.raises(ValueError, match="OverlappedBlock"):
            compile_halo_stencil(stencil(1), ds)

    def test_rejects_strided_read(self):
        cl = Clause(
            IndexSet.range1d(0, N // 2 - 1),
            Ref("V", SeparableMap([AffineF(1, 0)])),
            Ref("U", SeparableMap([AffineF(2, 0)])),
        )
        with pytest.raises(ValueError, match="shifts"):
            compile_halo_stencil(cl, decomps(1))

    def test_rejects_domain_escaping_array(self):
        cl = Clause(
            IndexSet.range1d(0, N - 1),  # reads U[-1] at i=0
            Ref("V", SeparableMap([AffineF(1, 0)])),
            Ref("U", SeparableMap([AffineF(1, -1)])),
        )
        with pytest.raises(ValueError, match="leaves the array"):
            compile_halo_stencil(cl, decomps(1))

    def test_general_template_refuses_overlapped(self):
        with pytest.raises(ValueError, match="halo"):
            compile_clause(stencil(1), decomps(1))


class TestExecution:
    @pytest.mark.parametrize("radius", [1, 2, 3])
    def test_matches_reference(self, radius):
        cl = stencil(radius)
        env0 = env_for()
        ref = evaluate_clause(cl, copy_env(env0))["V"]
        plan = compile_halo_stencil(cl, decomps(radius))
        m = run_halo_stencil(plan, copy_env(env0))
        assert np.allclose(m.collect("V"), ref)

    def test_message_count_independent_of_radius(self):
        # coalesced exchange: 2(pmax-1) messages per read array, whatever
        # the radius — the whole point of halos
        for radius in (1, 2, 4):
            plan = compile_halo_stencil(stencil(radius), decomps(radius))
            m = run_halo_stencil(plan, env_for())
            assert m.stats.total_messages() == 2 * (PMAX - 1)

    def test_element_volume_scales_with_radius(self):
        vols = []
        for radius in (1, 2, 4):
            plan = compile_halo_stencil(stencil(radius), decomps(radius))
            m = run_halo_stencil(plan, env_for())
            vols.append(m.stats.total_elements_moved())
        assert vols == [2 * (PMAX - 1) * r for r in (1, 2, 4)]

    def test_iterated_jacobi(self):
        # U/V ping-pong over several steps with halo refresh each step
        radius = 1
        env0 = env_for(seed=5)
        ds = decomps(radius)
        m = None
        envs = copy_env(env0)
        plans = {
            ("U", "V"): compile_halo_stencil(stencil(radius, src="U", dst="V"), ds),
            ("V", "U"): compile_halo_stencil(stencil(radius, src="V", dst="U"), ds),
        }
        src, dst = "U", "V"
        for _ in range(6):
            m = run_halo_stencil(plans[(src, dst)], envs, machine=m)
            src, dst = dst, src
        # sequential reference
        ref = copy_env(env0)
        src, dst = "U", "V"
        for _ in range(6):
            evaluate_clause(stencil(radius, src=src, dst=dst), ref)
            src, dst = dst, src
        assert np.allclose(m.collect(src), ref[src])

    def test_guarded_stencil(self):
        cl = stencil(1)
        cl.guard = Ref("U", SeparableMap([AffineF(1, 0)])) > 0.5
        env0 = env_for(seed=9)
        ref = evaluate_clause(cl, copy_env(env0))["V"]
        plan = compile_halo_stencil(cl, decomps(1))
        m = run_halo_stencil(plan, copy_env(env0))
        assert np.allclose(m.collect("V"), ref)
