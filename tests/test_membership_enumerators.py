"""Tests for Modify/Reside sets and the Theorem 1-3 enumerators (§2.8, §3)."""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.ifunc import AffineF, ConstantF, ModularF, MonotoneF
from repro.decomp import Block, BlockScatter, Scatter, SingleOwner
from repro.sets import (
    Enumeration,
    Segment,
    Work,
    all_naive,
    enum_block,
    enum_constant,
    enum_repeated_block,
    enum_repeated_scatter,
    enum_scatter_linear,
    enum_scatter_on_k,
    modify_naive,
    optimize_access,
    reside_naive,
)


class TestWorkCounter:
    def test_overhead_sums_non_useful_work(self):
        w = Work(tests=3, iterations=2, euclid_steps=1, preimage_calls=4,
                 emitted=10)
        assert w.overhead() == 10

    def test_add(self):
        w = Work(tests=1) + Work(tests=2, emitted=5)
        assert w.tests == 3
        assert w.emitted == 5


class TestNaiveMembership:
    def test_modify_definition(self):
        d = Scatter(20, 4)
        f = AffineF(1, 0)
        for p in range(4):
            assert modify_naive(d, f, 0, 19, p) == list(range(p, 20, 4))

    def test_naive_test_count_is_full_range(self):
        # §3 intro: worst case imax-imin+1 tests per processor
        d, f = Block(40, 4), AffineF(1, 0)
        w = Work()
        modify_naive(d, f, 5, 34, 2, w)
        assert w.tests == 30
        assert w.iterations == 30

    def test_reside_is_same_scan(self):
        d, g = Scatter(12, 3), AffineF(2, 1)
        assert reside_naive(d, g, 0, 5, 1) == modify_naive(d, g, 0, 5, 1)

    def test_all_is_union(self):
        dw, dr = Block(20, 4), Scatter(20, 4)
        f, g = AffineF(1, 0), AffineF(1, 1)
        for p in range(4):
            got = all_naive(dw, f, dr, g, 0, 18, p)
            want = sorted(
                set(modify_naive(dw, f, 0, 18, p))
                | set(reside_naive(dr, g, 0, 18, p))
            )
            assert got == want


class TestSegments:
    def test_segment_indices(self):
        assert list(Segment(2, 10, 3).indices()) == [2, 5, 8]

    def test_segment_count(self):
        assert Segment(2, 10, 3).count() == 3
        assert Segment(5, 4).count() == 0

    def test_invalid_step(self):
        with pytest.raises(ValueError):
            Segment(0, 5, 0)

    def test_enumeration_flattening(self):
        e = Enumeration("x", [Segment(0, 2), Segment(10, 12)])
        assert e.indices() == [0, 1, 2, 10, 11, 12]
        assert e.count() == 6

    def test_add_skips_empty(self):
        e = Enumeration("x")
        e.add(5, 3)
        assert e.segments == []


class TestTheorem1:
    """Constant access: full range on proc(c), empty elsewhere."""

    def test_owning_processor_full_range(self):
        d, f = Block(20, 4), ConstantF(9)
        w = Work()
        e = enum_constant(d, f, 3, 17, d.proc(9), w)
        assert e.indices() == list(range(3, 18))
        assert w.tests == 1  # exactly one test, not one per index

    def test_other_processors_empty(self):
        d, f = Block(20, 4), ConstantF(9)
        for p in range(4):
            if p == d.proc(9):
                continue
            assert enum_constant(d, f, 3, 17, p, Work()).indices() == []

    def test_under_scatter(self):
        d, f = Scatter(20, 4), ConstantF(9)
        assert enum_constant(d, f, 0, 9, 1, Work()).indices() == list(range(10))
        assert enum_constant(d, f, 0, 9, 0, Work()).indices() == []


class TestBlockRule:
    def test_shift_access(self):
        # Table I row i+c under block: j in [max(imin, b.p - c), min(imax, b.p+b-1-c)]
        d, f = Block(20, 4), AffineF(1, 3)
        for p in range(4):
            got = enum_block(d, f, 0, 16, p, Work()).indices()
            want = modify_naive(d, f, 0, 16, p)
            assert got == want

    def test_single_preimage_call(self):
        d, f = Block(1000, 4), AffineF(1, 0)
        w = Work()
        enum_block(d, f, 0, 999, 2, w)
        assert w.preimage_calls == 1
        assert w.tests == 0

    def test_monotone_inverse_by_binary_search(self):
        d = Block(200, 4)
        f = MonotoneF(lambda i: i * i, 1, "i^2")
        for p in range(4):
            got = enum_block(d, f, 0, 14, p, Work()).indices()
            assert got == modify_naive(d, f, 0, 14, p)

    def test_decreasing_access(self):
        d, f = Block(20, 4), AffineF(-1, 19)
        for p in range(4):
            got = enum_block(d, f, 0, 19, p, Work()).indices()
            assert got == modify_naive(d, f, 0, 19, p)


class TestTheorem2RepeatedBlock:
    def test_blockscatter_identity(self):
        d = BlockScatter(30, 4, 3)
        f = AffineF(1, 0)
        for p in range(4):
            got = enum_repeated_block(d, f, 0, 29, p, Work()).indices()
            assert got == modify_naive(d, f, 0, 29, p)

    def test_kmax_matches_paper_formula(self):
        # kmax = (f(imax) div b - p) div pmax for monotone increasing f
        d = BlockScatter(64, 4, 2)
        f = AffineF(1, 0)
        imin, imax = 0, 63
        for p in range(4):
            w = Work()
            enum_repeated_block(d, f, imin, imax, p, w)
            paper_kmax = (f(imax) // d.b - p) // d.pmax
            # iterations == number of course values tried == kmax+1
            assert w.iterations == paper_kmax + 1

    def test_work_scales_with_courses_not_range(self):
        d = BlockScatter(10_000, 4, 100)
        f = AffineF(1, 0)
        w = Work()
        enum_repeated_block(d, f, 0, 9999, 0, w)
        assert w.iterations + w.preimage_calls < 100  # << 10000

    def test_stride_2_access(self):
        d = BlockScatter(40, 4, 3)
        f = AffineF(2, 1)
        for p in range(4):
            got = enum_repeated_block(d, f, 0, 19, p, Work()).indices()
            assert got == modify_naive(d, f, 0, 19, p)

    def test_decreasing_access_sorted_output(self):
        d = BlockScatter(30, 3, 2)
        f = AffineF(-1, 29)
        for p in range(3):
            got = enum_repeated_block(d, f, 0, 29, p, Work()).indices()
            assert got == modify_naive(d, f, 0, 29, p)
            assert got == sorted(got)


class TestRepeatedScatter:
    def test_matches_naive(self):
        d = BlockScatter(64, 4, 2)
        f = AffineF(1, 0)
        for p in range(4):
            got = enum_repeated_scatter(d, f, 0, 63, p, Work()).indices()
            assert got == modify_naive(d, f, 0, 63, p)

    def test_agrees_with_repeated_block(self):
        d = BlockScatter(50, 3, 2)
        f = AffineF(2, 1)
        for p in range(3):
            rs = enum_repeated_scatter(d, f, 0, 24, p, Work()).indices()
            rb = enum_repeated_block(d, f, 0, 24, p, Work()).indices()
            assert rs == rb


class TestTheorem3Scatter:
    def test_linear_progression(self):
        d = Scatter(100, 4)
        f = AffineF(3, 1)
        for p in range(4):
            got = enum_scatter_linear(d, f, 0, 32, p, Work()).indices()
            assert got == modify_naive(d, f, 0, 32, p)

    def test_emits_strided_segment(self):
        d = Scatter(100, 4)
        f = AffineF(3, 0)
        e = enum_scatter_linear(d, f, 0, 33, 0, Work())
        assert len(e.segments) == 1
        assert e.segments[0].step == 4  # pmax/gcd(3,4) = 4

    def test_corollary1_rule_tag(self):
        # pmax mod a = 0
        d, f = Scatter(40, 4), AffineF(2, 1)
        e = enum_scatter_linear(d, f, 0, 19, 1, Work())
        assert e.rule == "thm3-cor1"
        assert e.indices() == modify_naive(d, f, 0, 19, 1)

    def test_corollary2_single_active_processor(self):
        # a mod pmax = 0: only p = c mod pmax is active
        d, f = Scatter(100, 4), AffineF(8, 3)
        for p in range(4):
            e = enum_scatter_linear(d, f, 0, 12, p, Work())
            assert e.rule == "thm3-cor2"
            if p == 3:
                assert e.indices() == list(range(13))
            else:
                assert e.indices() == []

    def test_inactive_processor_empty(self):
        # 2i ≡ 1 (mod 4): p=1 never executes
        d, f = Scatter(40, 4), AffineF(2, 0)
        assert enum_scatter_linear(d, f, 0, 19, 1, Work()).indices() == []

    def test_euclid_steps_recorded(self):
        d, f = Scatter(100, 7), AffineF(5, 0)
        w = Work()
        enum_scatter_linear(d, f, 0, 19, 3, w)
        assert w.euclid_steps >= 1

    def test_negative_slope(self):
        d, f = Scatter(40, 4), AffineF(-3, 39)
        for p in range(4):
            got = enum_scatter_linear(d, f, 0, 13, p, Work()).indices()
            assert got == modify_naive(d, f, 0, 13, p)


class TestEnumerateOnK:
    def test_matches_naive_for_slow_function(self):
        d = Scatter(120, 8)
        f = MonotoneF(lambda i: i + i // 4, 1, "i+i div 4")
        for p in range(8):
            got = enum_scatter_on_k(d, f, 0, 90, p, Work()).indices()
            assert got == modify_naive(d, f, 0, 90, p)

    def test_sampling_rate_advantage(self):
        # §3.2: enumerate on k samples at rate pmax instead of df/di,
        # improvement factor pmax/(df/di)
        d = Scatter(8000, 64)
        f = MonotoneF(lambda i: i + i // 4, 1, derivative_max=1.25)
        imin, imax = 0, 6000
        w_opt = Work()
        enum_scatter_on_k(d, f, imin, imax, 5, w_opt)
        w_naive = Work()
        modify_naive(d, f, imin, imax, 5, w_naive)
        ratio = w_naive.iterations / max(1, w_opt.iterations)
        assert ratio > 64 / 1.25 * 0.5  # within 2x of the predicted factor

    def test_quadratic_access(self):
        d = Scatter(150, 7)
        f = MonotoneF(lambda i: i * i, 1, "i^2")
        for p in range(7):
            got = enum_scatter_on_k(d, f, 0, 12, p, Work()).indices()
            assert got == modify_naive(d, f, 0, 12, p)


class TestPiecewiseModular:
    def test_rotate_under_block(self):
        d = Block(20, 4)
        f = ModularF(AffineF(1, 6), 20)
        acc = optimize_access(d, f, 0, 19)
        assert acc.rule.startswith("piecewise")
        for p in range(4):
            assert acc.indices(p) == modify_naive(d, f, 0, 19, p)

    def test_rotate_under_scatter(self):
        d = Scatter(20, 4)
        f = ModularF(AffineF(1, 6), 20)
        acc = optimize_access(d, f, 0, 19)
        for p in range(4):
            assert acc.indices(p) == modify_naive(d, f, 0, 19, p)

    def test_breakpoint_splits_block_ranges(self):
        # the processor holding the break gets two ranges
        d = Block(20, 4)
        f = ModularF(AffineF(1, 6), 20)
        acc = optimize_access(d, f, 0, 19)
        counts = [len(acc.enumerate(p).segments) for p in range(4)]
        assert max(counts) >= 2
