"""Tests for the program-level verifier subsystem.

Every new diagnostic family gets a seeded-bad fixture — a program the
optimizer handles correctly, then tampered so the independent
re-derivation (``verify_program`` / ``check_schedule`` /
``sanitize_kernels``) must catch the now-false claim:

* ``PROG001``-``PROG004``: uncertified fusion / elision / pipelining
  and buffer-swap halo aliasing;
* ``SCHED001``-``SCHED003``: unmatched messages, misplaced barriers,
  wait-for cycles — plus the deadlock-freedom certificate and its
  citation in runtime failures;
* ``KRN001``-``KRN003``: corrupted index arrays, kernel source audit,
  dead guards — and the ``--strict`` compile-time rejection on the mp
  path.

The acceptance property closes the loop: any program the verifier
certifies PROG-clean is bit-identical across all six backends.
"""

import dataclasses
import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    Block,
    Clause,
    Const,
    IndexSet,
    LoopIndex,
    OverlappedBlock,
    Ref,
    Scatter,
    WorkerCrashError,
    clear_plan_cache,
    copy_env,
    shutdown_runtime,
)
from repro.analysis import (
    ScheduleCertificate,
    audit_kernel_source,
    certificate_for,
    check_kernels_strict,
    check_schedule,
    cite_certificate,
    clear_verify_cache,
    sanitize_kernels,
    verify_cache_info,
    verify_program,
)
from repro.core import PAR, AffineF, Bounds, IdentityF, SeparableMap
from repro.machine.fused import FusedStrictError
from repro.pipeline import (
    clear_program_cache,
    compile_plan,
    compile_program,
    evaluate_program_reference,
    run_program,
)
from repro.runtime import run_shared_mp
from repro.runtime.lowering import lower_dist, lower_shared

N, P = 24, 4


def ref(name, a=1, c=0):
    f = IdentityF() if (a, c) == (1, 0) else AffineF(a, c)
    return Ref(name, SeparableMap([f]))


def clause(lo, hi, lhs, rhs, ordering=PAR, guard=None, name=None):
    return Clause(IndexSet(Bounds((lo,), (hi,))), lhs, rhs,
                  ordering=ordering, guard=guard, name=name)


def block_env(*names, seed=0):
    rng = np.random.default_rng(seed)
    return {n: rng.random(N) for n in names}


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_plan_cache()
    clear_program_cache()
    clear_verify_cache()
    yield


@pytest.fixture(scope="module", autouse=True)
def runtime_teardown():
    yield
    shutdown_runtime()


def verify_prog(pir):
    return verify_program(pir, use_cache=False)


class TestProgFixtures:
    """Seeded-bad fixtures for the inter-clause cross-checks."""

    def _fused_pair(self):
        c1 = clause(1, N - 1, ref("A"), ref("B"))
        c2 = clause(1, N - 1, ref("C"), ref("A", c=-1))
        decs = {n: Block(N, P) for n in "ABC"}
        return compile_program([c1, c2], decs, verify=True)

    def test_prog001_uncertified_fusion(self):
        pir = self._fused_pair()
        assert pir.steps[0].barrier_after  # the pass correctly kept it
        pir.steps[0].barrier_after = False
        pir.groups = [[0, 1]]
        report = verify_prog(pir).program
        assert report.has("PROG001")
        assert any("dependence" in d.message for d in report.errors())
        # the schedule check independently sees the same violation
        assert report.has("SCHED002")

    def test_prog001_clean_fusion_certified(self):
        c1 = clause(0, N - 1, ref("V"), ref("U"))
        c2 = clause(0, N - 1, ref("W"), ref("V"))
        decs = {n: Block(N, P) for n in "UVW"}
        pir = compile_program([c1, c2], decs, verify=True)
        assert any(len(g) > 1 for g in pir.groups)
        verification = verify_prog(pir)
        assert verification.ok
        assert verification.program.has("PROG001") is False

    def test_prog002_uncertified_elision(self):
        c1 = clause(0, N - 1, ref("V"), ref("U"))
        c2 = clause(0, N - 1, ref("W"), ref("V"))
        decs = {n: Block(N, P) for n in "UVW"}
        pir = compile_program([c1, c2], decs, verify=True)
        assert ("0->1", "V") in list(pir.elided)
        pir.steps[1].decomps["V"] = Scatter(N, P)  # layouts disagree now
        report = verify_prog(pir).program
        assert report.has("PROG002")

    def test_prog003_uncertified_pipeline(self):
        c = clause(0, N - 1, ref("A"), ref("B"))
        decs = {"A": Block(N, P), "B": Scatter(N, P)}
        pir = compile_program([c], decs, repeat=2, swap=[("A", "B")],
                              verify=True)
        assert not pir.pipelined  # Block vs Scatter cannot swap
        pir.pipelined = True
        report = verify_prog(pir).program
        assert report.has("PROG003")

    def test_prog004_swap_halo_aliasing(self):
        c = clause(1, N - 2, ref("V"), ref("U", c=-1) + ref("U", c=1))
        decs = {"V": Block(N, P), "U": OverlappedBlock(N, P, halo=1),
                "U2": OverlappedBlock(N, P, halo=1)}
        pir = compile_program([c], decs, repeat=2, swap=[("U", "U2")],
                              verify=True)
        assert pir.pipelined  # placements agree, so the pass accepts
        report = verify_prog(pir).program
        assert report.has("PROG004")
        assert not report.has("PROG003")

    def test_clean_program_stays_clean(self):
        c = clause(1, N - 2, ref("V"), ref("U", c=-1) + ref("U", c=1))
        decs = {"V": Block(N, P), "U": Block(N, P)}
        pir = compile_program([c], decs, repeat=3, swap=[("U", "V")],
                              verify=True)
        assert pir.pipelined
        verification = verify_prog(pir)
        assert verification.ok
        assert verification.certificate is not None
        assert verification.certificate.ok
        assert verification.summary()["certified_deadlock_free"]


class TestSchedFixtures:
    """Static message-matching proof over lowered node programs."""

    def _dist_stencil(self):
        cl = clause(1, N - 2, ref("V"), ref("U", c=-1) + ref("U", c=1))
        ir = compile_plan(cl, {"V": Block(N, P), "U": Block(N, P)})
        return lower_dist(ir)

    def test_clean_schedule_certified(self):
        prog = self._dist_stencil()
        diags, cert = check_schedule([prog])
        assert not diags
        assert cert.ok
        assert "certified deadlock-free" in cert.describe()
        assert cert.messages > 0

    def test_sched001_and_sched003_muted_sends(self):
        prog = self._dist_stencil()
        mute = dataclasses.replace(prog.nodes[0], sends=())
        bad = dataclasses.replace(prog,
                                  nodes=[mute] + list(prog.nodes[1:]))
        diags, cert = check_schedule([bad])
        codes = {d.code for d in diags}
        assert "SCHED001" in codes
        assert "SCHED003" in codes
        assert not cert.ok
        assert "SCHED001" in cert.codes

    def test_sched002_missing_barrier(self):
        c1 = clause(1, N - 1, ref("A"), ref("B"))
        c2 = clause(1, N - 1, ref("C"), ref("A", c=-1))
        decs = {n: Block(N, P) for n in "ABC"}
        progs = [lower_shared(compile_plan(c1, decs)),
                 lower_shared(compile_plan(c2, decs))]
        diags, cert = check_schedule(progs, flags=[False, True])
        assert any(d.code == "SCHED002" for d in diags)
        assert not cert.ok
        # with the barrier in place, the same pair is certified
        diags, cert = check_schedule(progs, flags=[True, True])
        assert not any(d.code == "SCHED002" for d in diags)
        assert cert.ok

    def test_certificate_for(self):
        prog = self._dist_stencil()
        cert = certificate_for([prog])
        assert isinstance(cert, ScheduleCertificate)
        assert cert.ok

    def test_cite_certificate_contradiction(self):
        prog = self._dist_stencil()
        _, cert = check_schedule([prog])
        err = WorkerCrashError("worker 1 died", rank=1)
        cite_certificate(err, cert)
        assert "SCHED certificate" in str(err)
        assert "contradicts the certificate" in str(err)

    def test_cite_certificate_denied(self):
        prog = self._dist_stencil()
        mute = dataclasses.replace(prog.nodes[0], sends=())
        bad = dataclasses.replace(prog,
                                  nodes=[mute] + list(prog.nodes[1:]))
        _, cert = check_schedule([bad])
        err = WorkerCrashError("worker 1 died", rank=1)
        cite_certificate(err, cert)
        assert "SCHED certificate denied" in str(err)
        assert "SCHED001" in str(err)

    def test_cite_certificate_absent(self):
        err = WorkerCrashError("worker 1 died", rank=1)
        cite_certificate(err, None)
        assert "no SCHED certificate" in str(err)

    def test_mp_run_attaches_certificate(self):
        cl = clause(1, N - 2, ref("A"), ref("B", c=-1) + ref("B", c=1))
        ir = compile_plan(cl, {"A": Block(N, P), "B": Block(N, P)})
        env0 = block_env("A", "B")
        run_shared_mp(ir, copy_env(env0), processes=2)
        prog = lower_shared(ir)  # cached: the same lowered object
        cert = getattr(prog, "_sched_cert", None)
        assert cert is not None
        assert cert.ok

    def test_worker_crash_cites_certificate(self):
        cl = clause(1, N - 2, ref("A"), ref("B", c=-1) + ref("B", c=1))
        ir = compile_plan(cl, {"A": Block(N, P), "B": Block(N, P)})
        env0 = block_env("A", "B")
        with pytest.raises(WorkerCrashError) as err:
            run_shared_mp(ir, copy_env(env0), processes=2,
                          timeout=0.5, _fault_delay=(1, 8.0))
        assert "SCHED certificate" in str(err.value)


class TestKrnFixtures:
    """Generated-artifact sanitizer: index arrays, source audit, guards."""

    def _plan(self):
        cl = clause(0, N - 1, ref("A"), ref("B"))
        return compile_plan(cl, {"A": Block(N, P), "B": Block(N, P)})

    def test_clean_kernels_sanitized(self):
        ir = self._plan()
        assert not [d for d in sanitize_kernels(ir) if d.is_error]

    def test_krn001_corrupt_gather_index(self):
        ir = self._plan()
        nk = ir.kernels.shared[0]
        name, key = nk.read_keys[0]
        bad_key = np.array(key, dtype=np.int64)
        bad_key[0] = 99  # escapes B's extent [0, N)
        nk.read_keys = ((name, bad_key),) + tuple(nk.read_keys[1:])
        codes = {d.code for d in sanitize_kernels(ir)}
        assert "KRN001" in codes

    def test_krn001_strict_rejects_at_compile_time(self):
        """The acceptance fixture: a deliberately corrupted gather index
        array is refused by ``--strict`` *before* any worker runs."""
        ir = self._plan()
        nk = ir.kernels.shared[0]
        name, key = nk.read_keys[0]
        bad_key = np.array(key, dtype=np.int64)
        bad_key[-1] = -N - 1
        nk.read_keys = ((name, bad_key),) + tuple(nk.read_keys[1:])
        with pytest.raises(FusedStrictError, match="KRN001"):
            check_kernels_strict(ir, True)
        with pytest.raises(FusedStrictError, match="KRN001"):
            run_shared_mp(ir, block_env("A", "B"), strict=True,
                          processes=2)
        # non-strict keeps the report advisory
        check_kernels_strict(ir, False)

    def test_krn002_source_audit(self):
        ir = self._plan()
        assert not audit_kernel_source(ir.kernels.source)
        ir.kernels.source += "\nimport os\n_leak = os.environ\n"
        codes = {d.code for d in sanitize_kernels(ir)}
        assert "KRN002" in codes

    def test_krn002_direct_audit(self):
        notes = audit_kernel_source("def k():\n    return open('/etc')\n")
        assert notes
        assert any("open" in note for note in notes)

    def test_krn003_dead_guard(self):
        never = LoopIndex(0) < Const(0)
        cl = clause(0, N - 1, ref("A"), ref("B"), guard=never)
        ir = compile_plan(cl, {"A": Block(N, P), "B": Block(N, P)})
        diags = sanitize_kernels(ir)
        assert any(d.code == "KRN003" for d in diags)
        # dead guards warn; they never trip the strict gate
        check_kernels_strict(ir, True)


class TestVerifyCache:
    """Certified-clean verdicts are cached on the structural program
    key and invalidated with the rest of the pipeline caches."""

    def _pir(self):
        c1 = clause(0, N - 1, ref("V"), ref("U"))
        c2 = clause(0, N - 1, ref("W"), ref("V"))
        decs = {n: Block(N, P) for n in "UVW"}
        return compile_program([c1, c2], decs)

    def test_cache_hit_on_recheck(self):
        pir = self._pir()
        assert pir.cache_key is not None
        v1 = verify_program(pir)
        info = verify_cache_info()
        misses = info["misses"]
        v2 = verify_program(pir)
        info = verify_cache_info()
        assert info["hits"] >= 1
        assert info["misses"] == misses
        assert v1.ok and v2.ok

    def test_unkeyed_program_not_cached(self):
        pir = self._pir()
        pir = compile_program(
            [st.clause for st in pir.steps],
            {n: Block(N, P) for n in "UVW"}, verify=True)
        assert pir.cache_key is None  # verify=True bypasses program cache
        before = verify_cache_info()["size"]
        verify_program(pir)
        assert verify_cache_info()["size"] == before

    def test_clear(self):
        pir = self._pir()
        verify_program(pir)
        clear_verify_cache()
        assert verify_cache_info()["size"] == 0


class TestCheckCLI:
    """`repro check` drives the program verifier end to end."""

    def _example(self, name):
        root = os.path.join(os.path.dirname(__file__), os.pardir,
                            "examples", "programs")
        return (os.path.join(root, f"{name}.pal"),
                os.path.join(root, f"{name}.spec"))

    def test_stencil_strict_clean(self, capsys):
        from repro.cli import main

        pal, spec = self._example("stencil")
        rc = main(["check", pal, "--spec", spec, "--strict"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "verify <program>: clean" in out
        assert "certified deadlock-free" in out

    def test_json_program_schema(self, capsys):
        import json

        from repro.cli import main

        pal, spec = self._example("stencil")
        rc = main(["check", pal, "--spec", spec, "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["ok"]
        prog = payload["program"]
        assert prog["ok"]
        assert prog["certified_deadlock_free"]
        assert "certificate" in prog
        assert isinstance(payload["clauses"], list)

    def test_steps_and_swap_flags(self, capsys):
        from repro.cli import main

        pal, spec = self._example("stencil")
        rc = main(["check", pal, "--spec", spec, "--strict",
                   "--steps", "3", "--swap", "V:U"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "verify <program>" in out


class TestProgCleanBackendIdentity:
    """The acceptance property: a program the verifier certifies
    PROG-clean is bit-identical across all six backends."""

    KINDS = {"block": lambda n: Block(n, P),
             "scatter": lambda n: Scatter(n, P)}

    @settings(max_examples=8, deadline=None)
    @given(
        wkind=st.sampled_from(sorted(KINDS)),
        rkind=st.sampled_from(sorted(KINDS)),
        shift=st.integers(-1, 1),
        repeat=st.integers(1, 2),
        seed=st.integers(0, 2**16),
    )
    def test_prog_clean_is_bit_identical(self, wkind, rkind, shift,
                                         repeat, seed):
        lo, hi = max(0, -shift), min(N - 1, N - 1 - shift)
        c1 = clause(lo, hi, ref("D"),
                    ref("A", c=shift) * 0.5 + ref("B"), name="c1")
        c2 = clause(1, N - 1, ref("E"), ref("D", c=-1) * 2.0, name="c2")
        decs = {"A": self.KINDS[rkind](N), "B": self.KINDS[rkind](N),
                "D": self.KINDS[wkind](N), "E": self.KINDS[wkind](N)}
        pir = compile_program([c1, c2], decs, repeat=repeat,
                              swap=[("D", "E")] if repeat > 1 else ())
        verification = verify_program(pir)
        assert verification.ok, verification.pretty()
        env0 = block_env("A", "B", "D", "E", seed=seed)
        ref_out = evaluate_program_reference(pir, env0)
        for backend in ("scalar", "vector", "overlap", "fused",
                        "native", "mp"):
            m, _ = run_program(pir, copy_env(env0), backend=backend,
                               processes=2)
            for name in ("D", "E"):
                assert np.array_equal(m.env[name], ref_out[name]), \
                    (backend, name)
