"""Tests for views and view composition (paper Definitions 4-5)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.bounds import Bounds
from repro.core.ifunc import AffineF, ConstantF, IdentityF
from repro.core.indexset import IndexSet, Predicate
from repro.core.view import (
    GeneralMap,
    ProjectedMap,
    SeparableMap,
    View,
    identity_map,
)


class TestSeparableMap:
    def test_apply(self):
        m = SeparableMap([AffineF(2, 0), AffineF(1, 3)])
        assert m((4, 5)) == (8, 8)

    def test_arity_check(self):
        m = SeparableMap([AffineF(1, 0)])
        with pytest.raises(ValueError):
            m((1, 2))

    def test_compose_separable(self):
        outer = SeparableMap([AffineF(2, 0)])
        inner = SeparableMap([AffineF(1, 3)])
        comp = outer.compose(inner)
        assert isinstance(comp, SeparableMap)
        assert comp((5,)) == (16,)

    def test_compose_arity_mismatch(self):
        with pytest.raises(ValueError):
            SeparableMap([AffineF(1, 0)]).compose(
                SeparableMap([AffineF(1, 0), AffineF(1, 0)])
            )

    def test_identity_map(self):
        m = identity_map(3)
        assert m((4, 5, 6)) == (4, 5, 6)


class TestProjectedMap:
    def test_lower_rank_reference(self):
        # y[i] inside an (i, j) loop
        m = ProjectedMap([0], [IdentityF()])
        assert m((3, 7)) == (3,)

    def test_transposed_reference(self):
        # B[j, i] inside an (i, j) loop
        m = ProjectedMap([1, 0], [IdentityF(), IdentityF()])
        assert m((3, 7)) == (7, 3)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ProjectedMap([0, 1], [IdentityF()])


class TestViewApplication:
    def test_definition4_predicate_pullback(self):
        # I = (0:10, i>=4); view ip(i) = 2i, K = (0:5)
        I = IndexSet.range1d(0, 10, Predicate(lambda i: i[0] >= 4, "ge4"))
        V = View(IndexSet.range1d(0, 5), SeparableMap([AffineF(2, 0)]))
        J = V.apply(I)
        # J members: i in 0:5 with 2i in I and 2i >= 4 -> i in 2..5
        assert list(J.iter_scalar()) == [2, 3, 4, 5]

    def test_bounds_intersection_with_dp(self):
        I = IndexSet.range1d(0, 10)
        V = View(
            IndexSet.range1d(0, 100),
            SeparableMap([IdentityF()]),
            dp=lambda b: Bounds(b.lower[0], b.upper[0] - 6),
            dp_name="u-6",
        )
        J = V.apply(I)
        assert J.bounds.scalar() == (0, 4)

    def test_select_single_index(self):
        V = View(IndexSet.range1d(0, 5), SeparableMap([AffineF(1, 1)]))
        assert V.select((3,)) == (4,)


class TestExample5:
    """Paper Example 5, verbatim."""

    def make_views(self):
        V = View(
            IndexSet.range1d(0, 1, Predicate(lambda i: i[0] >= 1, "ge1")),
            SeparableMap([AffineF(1, 2)]),
            dp=lambda b: Bounds(b.lower[0] - 2, b.upper[0] - 2),
            dp_name="i-2",
        )
        W = View(
            IndexSet.range1d(0, 10, Predicate(lambda i: i[0] >= 4, "ge4")),
            SeparableMap([AffineF(2, 0)]),
            dp=lambda b: Bounds(b.lower[0] // 2, b.upper[0] // 2),
            dp_name="i div 2",
        )
        return V, W

    def test_composed_ip(self):
        V, W = self.make_views()
        U = V.compose(W)
        # ip_v∘w(i) = 2.(i+2) = 2i + 4
        assert U.ip((0,)) == (4,)
        assert U.ip((3,)) == (10,)

    def test_composed_bounds(self):
        V, W = self.make_views()
        U = V.compose(W)
        # b_v∘w = (0,1) & (0-2, 10-2) = (0, 1)
        assert U.K.bounds.scalar() == (0, 1)

    def test_composed_predicate(self):
        V, W = self.make_views()
        U = V.compose(W)
        # P_v∘w(i) = {i>=4}∘ip_v ∧ {i>=1} = {i+2>=4 and i>=1} = {i>=2}
        assert not U.K.predicate((1,))
        assert U.K.predicate((2,))

    def test_composed_dp(self):
        V, W = self.make_views()
        U = V.compose(W)
        # dp_v∘w(i) = (i div 2) - 2
        out = U.dp(Bounds(0, 10))
        assert out.scalar() == (-2, 3)

    def test_matmul_operator(self):
        V, W = self.make_views()
        assert (V @ W).ip((0,)) == V.compose(W).ip((0,))


class TestCompositionLaws:
    @given(
        st.integers(-3, 3).filter(lambda a: a),
        st.integers(-5, 5),
        st.integers(-3, 3).filter(lambda a: a),
        st.integers(-5, 5),
        st.integers(-3, 3).filter(lambda a: a),
        st.integers(-5, 5),
        st.integers(-10, 10),
    )
    def test_composition_associative_on_ip(self, a1, c1, a2, c2, a3, c3, x):
        def mk(a, c):
            return View(IndexSet.range1d(-100, 100),
                        SeparableMap([AffineF(a, c)]))

        u, v, w = mk(a1, c1), mk(a2, c2), mk(a3, c3)
        lhs = u.compose(v).compose(w)
        rhs = u.compose(v.compose(w))
        assert lhs.ip((x,)) == rhs.ip((x,))

    @given(st.integers(-3, 3).filter(lambda a: a), st.integers(-5, 5),
           st.integers(-10, 10))
    def test_identity_view_is_neutral(self, a, c, x):
        I = View(IndexSet.range1d(-1000, 1000), identity_map(1))
        V = View(IndexSet.range1d(-100, 100), SeparableMap([AffineF(a, c)]))
        assert V.compose(I).ip((x,)) == V.ip((x,))
        assert I.compose(V).ip((x,)) == V.ip((x,))


class TestContraction:
    """Definition 5's derived result: parameter-expression contraction."""

    def test_contraction_of_two_selections(self):
        # ∆(i ∈ I)[ip1] ∆(j ∈ J)[ip2] == ∆(i ∈ I ∩ (b, R∘ip1))[ip2∘ip1]
        ip1 = SeparableMap([AffineF(1, 1)])
        ip2 = SeparableMap([AffineF(2, 0)])
        J = IndexSet.range1d(0, 20, Predicate(lambda i: i[0] % 2 == 0, "even"))
        I = IndexSet.range1d(0, 10)
        contracted_pred = J.predicate.compose(ip1, "ip1")
        domain = I.restrict(contracted_pred)
        comp = ip2.compose(ip1)
        # every i in contracted domain maps through ip2∘ip1 in one hop
        for (i,) in domain:
            assert comp((i,)) == ip2(ip1((i,)))
        # and the contracted domain = {i in I | ip1(i) in J}
        want = [i for i in range(0, 11) if (i + 1) % 2 == 0]
        assert list(domain.iter_scalar()) == want
