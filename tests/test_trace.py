"""Tests for scheduler tracing and pipeline-overlap analysis."""

import numpy as np
import pytest

from repro.codegen.doacross import compile_doacross, make_doacross_program
from repro.core import (
    SEQ,
    AffineF,
    Clause,
    IndexSet,
    Ref,
    SeparableMap,
)
from repro.decomp import Block, Scatter
from repro.machine import Barrier, DistributedMachine, Network, Recv, run_spmd
from repro.machine.scheduler import TraceEvent
from repro.machine.trace import activity_spans, overlap_factor, render_timeline


class TestTraceCollection:
    def test_events_recorded(self):
        net = Network(2)
        trace = []

        def node(p):
            yield Barrier()

        run_spmd([node(0), node(1)], net, trace=trace)
        kinds = {ev.kind for ev in trace}
        assert "step" in kinds
        assert "barrier" in kinds
        assert "retire" in kinds

    def test_recv_event(self):
        net = Network(2)
        trace = []

        def sender():
            net.send(0, 1, "t", 42)
            return
            yield

        def receiver():
            _ = yield Recv(0, "t")

        run_spmd([sender(), receiver()], net, trace=trace)
        assert any(ev.kind == "recv" and ev.p == 1 for ev in trace)

    def test_no_trace_by_default(self):
        net = Network(1)

        def node():
            return
            yield

        run_spmd([node()], net)  # must not crash without trace


class TestAnalysis:
    def test_activity_spans(self):
        trace = [TraceEvent(0, 0, "step"), TraceEvent(5, 0, "step"),
                 TraceEvent(2, 1, "step"), TraceEvent(3, 1, "retire")]
        spans = activity_spans(trace)
        assert spans[0] == (0, 5)
        assert spans[1] == (2, 2)

    def test_overlap_factor_serialized(self):
        trace = [TraceEvent(r, r % 2, "step") for r in range(10)]
        assert overlap_factor(trace) == 1.0

    def test_overlap_factor_parallel(self):
        trace = [TraceEvent(r, p, "step") for r in range(5) for p in range(4)]
        assert overlap_factor(trace) == 4.0

    def test_overlap_empty(self):
        assert overlap_factor([]) == 0.0

    def test_render_timeline(self):
        trace = [TraceEvent(0, 0, "step"), TraceEvent(1, 1, "barrier")]
        out = render_timeline(trace, 2)
        assert "p0" in out and "p1" in out
        assert "#" in out and "B" in out

    def test_render_empty(self):
        assert "empty" in render_timeline([], 2)


class TestDoacrossPipelineTrace:
    """Trace-level structure of DOACROSS pipelines, observed with the
    paced (one-iteration-per-round) node programs."""

    def _run(self, mk_dec, s=1, n=48, pmax=4):
        cl = Clause(
            IndexSet.range1d(s, n - 1),
            Ref("A", SeparableMap([AffineF(1, 0)])),
            Ref("A", SeparableMap([AffineF(1, -s)])) * 0.5
            + Ref("B", SeparableMap([AffineF(1, 0)])),
            ordering=SEQ,
        )
        rng = np.random.default_rng(0)
        env = {"A": rng.random(n), "B": rng.random(n)}
        dA, dB = mk_dec(n, pmax), mk_dec(n, pmax)
        plan = compile_doacross(cl, {"A": dA, "B": dB})
        m = DistributedMachine(pmax)
        m.place("A", env["A"], dA)
        m.place("B", env["B"], dB)
        trace = []
        m.run(lambda ctx: make_doacross_program(plan, ctx, paced=True),
              trace=trace)
        return trace

    def test_block_chain_is_nearly_serial(self):
        # s=1 under block: node k starts only after node k-1 finished its
        # whole block — makespan ≈ one round per iteration
        trace = self._run(lambda n, p: Block(n, p), s=1, n=48)
        assert max(ev.round for ev in trace) >= 44

    def test_block_staggers_dependence_arrival(self):
        trace = self._run(lambda n, p: Block(n, p), s=1, n=48, pmax=4)
        first_recv = {}
        for ev in trace:
            if ev.kind == "recv" and ev.p not in first_recv:
                first_recv[ev.p] = ev.round
        arrivals = [first_recv[p] for p in sorted(first_recv)]
        assert arrivals == sorted(arrivals)
        assert arrivals[-1] - arrivals[0] >= 20  # ≈ 2 blocks apart

    def test_dependence_distance_deepens_the_pipeline(self):
        # s independent chains overlap: makespan shrinks ~proportionally
        rounds = {}
        for s in (1, 2, 4):
            t = self._run(lambda n, p: Scatter(n, p), s=s, n=48)
            rounds[s] = max(ev.round for ev in t)
        assert rounds[1] >= rounds[2] >= rounds[4]
        assert rounds[1] >= 1.7 * rounds[4]

    def test_timeline_renders(self):
        trace = self._run(lambda n, p: Block(n, p), s=1, n=24)
        out = render_timeline(trace, 4)
        assert out.count("|") >= 8
