"""Tests for d-dimensional distributed SPMD generation."""

import numpy as np
import pytest

from repro.codegen.nddist import (
    collect_nd,
    compile_clause_nd_dist,
    run_distributed_nd,
)
from repro.core import (
    PAR,
    SEQ,
    AffineF,
    Bounds,
    Clause,
    IdentityF,
    IndexSet,
    Ref,
    SeparableMap,
    copy_env,
    evaluate_clause,
)
from repro.core.view import ProjectedMap
from repro.decomp import (
    Block,
    Collapsed,
    GridDecomposition,
    Replicated,
    Scatter,
)
from repro.machine.ndmemory import gather_global_nd, scatter_global_nd
from repro.machine import LocalMemory

N, M = 8, 6


def grid(a="block", b="block"):
    mk = {"block": lambda n: Block(n, 2), "scatter": lambda n: Scatter(n, 2),
          "collapsed": lambda n: Collapsed(n)}
    return GridDecomposition([mk[a](N), mk[b](M)])


def shift_clause():
    """T[i,j] := S[i, j+1] * 2."""
    return Clause(
        IndexSet(Bounds((0, 0), (N - 1, M - 2))),
        Ref("T", SeparableMap([IdentityF(), IdentityF()])),
        Ref("S", SeparableMap([IdentityF(), AffineF(1, 1)])) * 2,
    )


def env2d(seed=0):
    rng = np.random.default_rng(seed)
    return {"S": rng.random((N, M)), "T": np.zeros((N, M))}


class TestNdMemory:
    def test_scatter_gather_roundtrip(self):
        g = grid("block", "scatter")
        mems = [LocalMemory(p) for p in range(g.pmax)]
        arr = np.arange(48.0).reshape(N, M)
        scatter_global_nd("A", arr, g, mems)
        assert np.array_equal(gather_global_nd("A", g, mems), arr)

    def test_local_shapes(self):
        g = grid("block", "block")
        mems = [LocalMemory(p) for p in range(g.pmax)]
        scatter_global_nd("A", np.zeros((N, M)), g, mems)
        for p in range(g.pmax):
            assert mems[p]["A"].shape == g.local_shape(p)

    def test_shape_mismatch(self):
        g = grid()
        with pytest.raises(ValueError):
            scatter_global_nd("A", np.zeros((3, 3)), g,
                              [LocalMemory(p) for p in range(g.pmax)])


class TestCompilation:
    def test_rules_per_dim(self):
        plan = compile_clause_nd_dist(
            shift_clause(), {"T": grid(), "S": grid("block", "scatter")}
        )
        rules = plan.rules()
        assert rules["write:dim0"] == "block"
        assert rules["read0:S:dim1"].startswith("thm3")

    def test_seq_rejected(self):
        cl = shift_clause()
        cl.ordering = SEQ
        with pytest.raises(ValueError, match="// clauses"):
            compile_clause_nd_dist(cl, {"T": grid(), "S": grid()})

    def test_replicated_write_rejected(self):
        cl = shift_clause()
        with pytest.raises(ValueError, match="replicated writes"):
            compile_clause_nd_dist(cl, {"T": Replicated(N, 4), "S": grid()})

    def test_rank_mismatch(self):
        with pytest.raises(ValueError, match="rank"):
            compile_clause_nd_dist(shift_clause(),
                                   {"T": Block(N, 4), "S": grid()})


class TestExecution:
    @pytest.mark.parametrize("ga,gb", [
        ("block", "block"), ("block", "scatter"),
        ("scatter", "scatter"), ("scatter", "collapsed"),
    ])
    def test_shift_matches_reference(self, ga, gb):
        cl = shift_clause()
        env0 = env2d()
        ref = evaluate_clause(cl, copy_env(env0))["T"]
        plan = compile_clause_nd_dist(cl, {"T": grid(ga, gb),
                                           "S": grid(gb, ga)})
        m = run_distributed_nd(plan, copy_env(env0))
        assert np.allclose(collect_nd(m, "T"), ref), (ga, gb)

    def test_aligned_no_messages(self):
        cl = Clause(
            IndexSet.of_shape(N, M),
            Ref("T", SeparableMap([IdentityF(), IdentityF()])),
            Ref("S", SeparableMap([IdentityF(), IdentityF()])) * 3,
        )
        g = grid("block", "scatter")
        plan = compile_clause_nd_dist(cl, {"T": g, "S": g})
        m = run_distributed_nd(plan, env2d())
        assert m.stats.total_messages() == 0

    def test_column_shift_boundary_messages_only(self):
        # identical block x block grids, shift along axis 1: messages only
        # at grid column boundaries
        cl = shift_clause()
        g = grid("block", "block")
        plan = compile_clause_nd_dist(cl, {"T": g, "S": g})
        m = run_distributed_nd(plan, env2d())
        # 2 grid columns, boundary j = M//2 - 1, all N rows cross
        assert m.stats.total_messages() == N

    def test_transpose(self):
        n = 6
        cl = Clause(
            IndexSet.of_shape(n, n),
            Ref("T", SeparableMap([IdentityF(), IdentityF()])),
            Ref("S", ProjectedMap([1, 0], [IdentityF(), IdentityF()])),
        )
        g = GridDecomposition([Block(n, 2), Scatter(n, 2)])
        env0 = {"S": np.arange(36.0).reshape(n, n), "T": np.zeros((n, n))}
        plan = compile_clause_nd_dist(cl, {"T": g, "S": g})
        m = run_distributed_nd(plan, copy_env(env0))
        assert np.array_equal(collect_nd(m, "T"), env0["S"].T)

    def test_replicated_vector_operand(self):
        cl = Clause(
            IndexSet.of_shape(N, M),
            Ref("T", SeparableMap([IdentityF(), IdentityF()])),
            Ref("S", SeparableMap([IdentityF(), IdentityF()]))
            + Ref("x", ProjectedMap([1], [IdentityF()])),
        )
        g = grid("block", "block")
        rng = np.random.default_rng(2)
        env0 = {"S": rng.random((N, M)), "x": rng.random(M),
                "T": np.zeros((N, M))}
        ref = evaluate_clause(cl, copy_env(env0))["T"]
        plan = compile_clause_nd_dist(
            cl, {"T": g, "S": g, "x": Replicated(M, g.pmax)}
        )
        m = run_distributed_nd(plan, copy_env(env0))
        assert np.allclose(collect_nd(m, "T"), ref)
        assert m.stats.total_messages() == 0  # replication kills traffic

    def test_guarded_2d(self):
        cl = shift_clause()
        cl.guard = Ref("S", SeparableMap([IdentityF(), IdentityF()])) > 0.5
        env0 = env2d(seed=7)
        ref = evaluate_clause(cl, copy_env(env0))["T"]
        plan = compile_clause_nd_dist(cl, {"T": grid("scatter", "block"),
                                           "S": grid("block", "scatter")})
        m = run_distributed_nd(plan, copy_env(env0))
        assert np.allclose(collect_nd(m, "T"), ref)

    def test_membership_is_owner_computes(self):
        plan = compile_clause_nd_dist(shift_clause(),
                                      {"T": grid(), "S": grid()})
        g = plan.write.dec
        seen = set()
        for p in range(plan.pmax):
            for idx in plan.write.membership(p, plan.loop_bounds):
                assert g.proc(idx) == p
                assert idx not in seen
                seen.add(idx)
        assert len(seen) == N * (M - 1)
