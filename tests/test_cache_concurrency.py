"""Thread-safety of the structural caches under concurrent misses.

The plan/kernel/table1 caches were always lock-protected for *storage*;
what these tests pin down is the stronger single-flight property: N
threads hammering one structural key execute the pass pipeline exactly
once, a failing leader never poisons the cache, and byte-accounted
eviction keeps the kernel cache inside its budget.
"""

import threading

import numpy as np
import pytest

from repro.core import AffineF, Bounds, Clause, IdentityF, IndexSet, Ref, SeparableMap
from repro.decomp import Block
from repro.pipeline import (
    clear_plan_cache,
    compile_flight,
    compile_plan,
    enable_plan_cache,
    kernel_cache,
    kernel_cache_info,
)
from repro.pipeline.manager import PassManager

N, P = 24, 4
THREADS = 16


def stencil_clause(shift=1):
    return Clause(
        IndexSet(Bounds((1,), (N - 2,))),
        Ref("A", SeparableMap([IdentityF()])),
        (Ref("B", SeparableMap([AffineF(1, -shift)]))
         + Ref("B", SeparableMap([AffineF(1, shift)]))) * 0.5,
    )


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_plan_cache()
    yield
    clear_plan_cache()
    enable_plan_cache(True)


def hammer(fn, n=THREADS):
    """Run *fn* on n threads released together; collect results/errors."""
    barrier = threading.Barrier(n)
    results, errors = [], []
    lock = threading.Lock()

    def worker():
        barrier.wait()
        try:
            r = fn()
        except Exception as e:  # noqa: BLE001 — recorded for assertions
            with lock:
                errors.append(e)
        else:
            with lock:
                results.append(r)

    threads = [threading.Thread(target=worker) for _ in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not any(t.is_alive() for t in threads)
    return results, errors


class CountingRuns:
    """Wrap ``PassManager.run`` to count (and optionally fail) pipeline
    executions."""

    def __init__(self, monkeypatch, fail_first=False):
        self.calls = 0
        self.lock = threading.Lock()
        self.fail_first = fail_first
        original = PassManager.run

        def counted(mgr, ir):
            with self.lock:
                self.calls += 1
                mine = self.calls
            if self.fail_first and mine == 1:
                raise RuntimeError("injected first-compile failure")
            return original(mgr, ir)

        monkeypatch.setattr(PassManager, "run", counted)


class TestSingleFlightCompile:
    def test_sixteen_threads_one_pipeline_execution(self, monkeypatch):
        counter = CountingRuns(monkeypatch)
        decomps = {"A": Block(N, P), "B": Block(N, P)}
        before = compile_flight.info()

        results, errors = hammer(
            lambda: compile_plan(stencil_clause(), decomps))

        assert errors == []
        assert len(results) == THREADS
        assert counter.calls == 1  # the whole point
        hits = [ir for ir in results if ir.trace.cache_hit]
        assert len(hits) == THREADS - 1
        # every thread sees the one compiled kernel object
        kernels = {id(ir.kernels) for ir in results}
        assert len(kernels) == 1 and results[0].kernels is not None
        after = compile_flight.info()
        assert after["leaders"] == before["leaders"] + 1
        assert after["inflight"] == 0  # leadership always released

    def test_results_identical_across_threads(self):
        decomps = {"A": Block(N, P), "B": Block(N, P)}
        results, errors = hammer(
            lambda: compile_plan(stencil_clause(), decomps))
        assert errors == []
        rules = {tuple(ir.rules()) for ir in results}
        assert len(rules) == 1

    def test_failing_leader_does_not_poison(self, monkeypatch):
        counter = CountingRuns(monkeypatch, fail_first=True)
        decomps = {"A": Block(N, P), "B": Block(N, P)}

        results, errors = hammer(
            lambda: compile_plan(stencil_clause(), decomps))

        # exactly one thread (the first leader) observed the failure;
        # one waiter took over and compiled, the rest got cache hits
        assert len(errors) == 1
        assert "injected" in str(errors[0])
        assert len(results) == THREADS - 1
        assert counter.calls == 2
        assert compile_flight.info()["inflight"] == 0
        # the cache holds the good entry, not the failure
        ir = compile_plan(stencil_clause(), decomps)
        assert ir.trace.cache_hit

    def test_disabled_cache_compiles_independently(self, monkeypatch):
        counter = CountingRuns(monkeypatch)
        enable_plan_cache(False)
        decomps = {"A": Block(N, P), "B": Block(N, P)}
        results, errors = hammer(
            lambda: compile_plan(stencil_clause(), decomps), n=4)
        assert errors == []
        assert counter.calls == 4  # no coalescing without a key

    def test_distinct_keys_do_not_serialize(self, monkeypatch):
        counter = CountingRuns(monkeypatch)
        decomps = {"A": Block(N, P), "B": Block(N, P)}
        shifts = list(range(1, 9)) * 2  # 8 distinct keys, 16 threads
        idx = iter(range(len(shifts)))
        lock = threading.Lock()

        def compile_one():
            with lock:
                shift = shifts[next(idx)]
            return compile_plan(stencil_clause(shift), decomps)

        results, errors = hammer(compile_one)
        assert errors == []
        assert len(results) == THREADS
        assert counter.calls == 8  # one pipeline execution per key


class TestKernelCacheBytes:
    def test_bytes_accounted(self):
        assert kernel_cache_info()["bytes"] == 0
        compile_plan(stencil_clause(), {"A": Block(N, P), "B": Block(N, P)})
        info = kernel_cache_info()
        assert info["size"] == 1
        assert 0 < info["bytes"] <= info["max_bytes"]

    def test_byte_budget_evicts_lru(self, monkeypatch):
        monkeypatch.setattr(kernel_cache, "max_bytes", 1)
        decomps = {"A": Block(N, P), "B": Block(N, P)}
        compile_plan(stencil_clause(1), decomps)
        compile_plan(stencil_clause(2), decomps)
        info = kernel_cache_info()
        # over budget: evicts down to the single most recent entry
        assert info["size"] == 1
        assert info["evictions"] >= 1

    def test_clear_resets_bytes(self):
        compile_plan(stencil_clause(), {"A": Block(N, P), "B": Block(N, P)})
        assert kernel_cache_info()["bytes"] > 0
        clear_plan_cache()
        assert kernel_cache_info()["bytes"] == 0


class TestTable1Concurrency:
    def test_concurrent_memo_is_consistent(self):
        from repro.sets.table1 import (
            clear_table1_cache,
            optimize_access,
            table1_cache_info,
        )

        clear_table1_cache()
        dec = Block(N, P)
        f = AffineF(1, -1)

        results, errors = hammer(lambda: optimize_access(dec, f, 1, N - 2))
        assert errors == []
        names = {r.rule for r in results}
        assert len(names) == 1  # every thread saw the same memoized rule
        assert table1_cache_info()["size"] >= 1


class TestConcurrentExecution:
    def test_compile_and_run_race_is_correct(self):
        """Threads compiling + running the same clause concurrently all
        produce the reference answer (shared caches, shared kernels)."""
        from repro.codegen import compile_clause, run_distributed
        from repro.core import copy_env, evaluate_clause

        decomps = {"A": Block(N, P), "B": Block(N, P)}
        rng = np.random.default_rng(3)
        env0 = {k: rng.random(N) for k in "AB"}
        ref = evaluate_clause(stencil_clause(), copy_env(env0))["A"]

        def compile_and_run():
            plan = compile_clause(stencil_clause(), decomps)
            m = run_distributed(plan, copy_env(env0), backend="fused")
            return m.collect("A")

        results, errors = hammer(compile_and_run, n=8)
        assert errors == []
        for got in results:
            assert np.array_equal(got, ref)
