"""Tests for generated reductions (local fold + tree/linear combine)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.codegen.reduction import (
    ReduceOp,
    compile_reduce,
    reference_reduce,
    run_reduce,
)
from repro.core import AffineF, IndexSet, Ref, SeparableMap
from repro.decomp import Block, Replicated, Scatter
from repro.machine import DistributedMachine

N, PMAX = 32, 4


def b_ref(shift=0):
    return Ref("B", SeparableMap([AffineF(1, shift)]))


def mk_plan(op="+", guard=None, iter_kind="block", read_kind="block",
            lo=0, hi=N - 1):
    decs = {"block": Block(N, PMAX), "scatter": Scatter(N, PMAX),
            "replicated": Replicated(N, PMAX)}
    return compile_reduce(
        op, IndexSet.range1d(lo, hi), b_ref() * 2,
        {"B": decs[read_kind]}, decs[iter_kind], guard=guard,
    )


@pytest.fixture
def env(rng):
    return {"B": rng.random(N) + 0.5}


class TestReduceOp:
    def test_known_ops(self):
        assert ReduceOp("+").identity == 0.0
        assert ReduceOp("*").identity == 1.0
        assert ReduceOp("min").fn(3, 5) == 3

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            ReduceOp("xor")


class TestCorrectness:
    @pytest.mark.parametrize("op", ["+", "*", "min", "max"])
    @pytest.mark.parametrize("combine", ["tree", "linear"])
    def test_matches_reference(self, op, combine, env):
        plan = mk_plan(op=op)
        want = reference_reduce(plan, env)
        _m, got = run_reduce(plan, env, combine=combine)
        assert np.isclose(got, want)

    def test_numpy_oracle(self, env):
        plan = mk_plan("+")
        _m, got = run_reduce(plan, env)
        assert np.isclose(got, 2 * env["B"].sum())

    def test_partial_domain(self, env):
        plan = mk_plan("+", lo=5, hi=20)
        _m, got = run_reduce(plan, env)
        assert np.isclose(got, 2 * env["B"][5:21].sum())

    def test_guarded(self, env):
        guard = b_ref() > 1.0
        plan = mk_plan("+", guard=guard)
        _m, got = run_reduce(plan, env)
        want = 2 * env["B"][env["B"] > 1.0].sum()
        assert np.isclose(got, want)

    @pytest.mark.parametrize("iter_kind", ["block", "scatter"])
    @pytest.mark.parametrize("read_kind", ["block", "scatter", "replicated"])
    def test_decomposition_grid(self, iter_kind, read_kind, env):
        plan = mk_plan("+", iter_kind=iter_kind, read_kind=read_kind)
        _m, got = run_reduce(plan, env)
        assert np.isclose(got, 2 * env["B"].sum())

    def test_allreduce_everyone_has_result(self, env):
        plan = mk_plan("+")
        m, got = run_reduce(plan, env, allreduce=True)
        for mem in m.memories:
            assert float(mem["__result__"][0]) == got

    def test_single_processor(self, rng):
        env = {"B": rng.random(8)}
        plan = compile_reduce("+", IndexSet.range1d(0, 7), b_ref(),
                              {"B": Block(8, 1)}, Block(8, 1))
        _m, got = run_reduce(plan, env)
        assert np.isclose(got, env["B"].sum())

    @pytest.mark.parametrize("pmax", [3, 5, 7])
    def test_non_power_of_two_tree(self, pmax, rng):
        env = {"B": rng.random(N)}
        plan = compile_reduce("+", IndexSet.range1d(0, N - 1), b_ref(),
                              {"B": Block(N, pmax)}, Block(N, pmax))
        _m, got = run_reduce(plan, env, combine="tree", allreduce=True)
        assert np.isclose(got, env["B"].sum())


class TestCombineStructure:
    def test_both_send_pmax_minus_1_messages(self, env):
        for combine in ("tree", "linear"):
            plan = mk_plan("+")
            m, _ = run_reduce(plan, env, combine=combine)
            # aligned operands: only combine messages on the wire
            assert m.stats.total_messages() == PMAX - 1, combine

    def test_tree_critical_path_shorter(self, rng):
        # paced traces: the linear combine's root folds serially, the
        # tree folds in log2 p levels
        pmax, n = 8, 64
        env = {"B": rng.random(n)}

        def makespan(combine):
            plan = compile_reduce("+", IndexSet.range1d(0, n - 1),
                                  Ref("B", SeparableMap([AffineF(1, 0)])),
                                  {"B": Block(n, pmax)}, Block(n, pmax))
            trace = []
            run_reduce(plan, env, combine=combine, trace=trace, paced=True)
            return max(ev.round for ev in trace)

        assert makespan("tree") < makespan("linear")

    def test_validation(self, env):
        plan = mk_plan("+")
        with pytest.raises(ValueError, match="combine"):
            run_reduce(plan, env, combine="ring")

    def test_domain_must_fit_iter_dec(self):
        with pytest.raises(ValueError, match="covers"):
            compile_reduce("+", IndexSet.range1d(0, 50), b_ref(),
                           {"B": Block(N, PMAX)}, Block(N, PMAX))


class TestRemoteOperands:
    def test_misaligned_operand_fetched(self, rng):
        # iterations block-owned, data scatter-owned: operands travel
        env = {"B": rng.random(N)}
        plan = mk_plan("+", iter_kind="block", read_kind="scatter")
        m, got = run_reduce(plan, env)
        assert np.isclose(got, 2 * env["B"].sum())
        assert m.stats.total_messages() > PMAX - 1

    @given(st.integers(0, 2**16), st.integers(2, 7))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_property_random(self, seed, pmax):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 40))
        env = {"B": rng.random(n)}
        plan = compile_reduce(
            "+", IndexSet.range1d(0, n - 1),
            Ref("B", SeparableMap([AffineF(1, 0)])),
            {"B": Scatter(n, pmax)}, Block(n, pmax),
        )
        _m, got = run_reduce(plan, env, combine="tree")
        assert np.isclose(got, env["B"].sum())
