"""3-D coverage: the d-dimensional machinery beyond the 2-D tests."""

import itertools

import numpy as np
import pytest

from repro.codegen.ndplan import compile_clause_nd, run_shared_nd
from repro.core import (
    AffineF,
    Bounds,
    Clause,
    IdentityF,
    IndexSet,
    Ref,
    SeparableMap,
    copy_env,
    evaluate_clause,
)
from repro.decomp import Block, Collapsed, GridDecomposition, Scatter

NX, NY, NZ = 6, 5, 4


def grid3():
    return GridDecomposition([Block(NX, 2), Scatter(NY, 2), Collapsed(NZ)])


class TestGrid3D:
    def test_pmax_product(self):
        assert grid3().pmax == 4

    def test_roundtrip_placement(self):
        g = grid3()
        for idx in itertools.product(range(NX), range(NY), range(NZ)):
            p = g.proc(idx)
            l = g.local(idx)
            assert g.global_index(p, l) == idx

    def test_bijection(self):
        grid3().validate()

    def test_owned_partition(self):
        g = grid3()
        total = sum(len(g.owned(p)) for p in range(g.pmax))
        assert total == NX * NY * NZ

    def test_local_shapes_cover(self):
        g = grid3()
        vol = sum(
            np.prod(g.local_shape(p)) for p in range(g.pmax)
        )
        assert vol == NX * NY * NZ


class TestNdPlan3D:
    def mk_clause(self, shift=(0, 0, 1)):
        fs = [AffineF(1, s) if s else IdentityF() for s in shift]
        his = (NX - 1 - shift[0], NY - 1 - shift[1], NZ - 1 - shift[2])
        return Clause(
            IndexSet(Bounds((0, 0, 0), his)),
            Ref("T", SeparableMap([IdentityF(), IdentityF(), IdentityF()])),
            Ref("S", SeparableMap(fs)) * 2,
        )

    def env(self, rng):
        return {"S": rng.random((NX, NY, NZ)),
                "T": np.zeros((NX, NY, NZ))}

    def test_3d_shared_matches_reference(self, rng):
        cl = self.mk_clause()
        env0 = self.env(rng)
        ref = evaluate_clause(cl, copy_env(env0))["T"]
        g = grid3()
        m = run_shared_nd(compile_clause_nd(cl, {"T": g, "S": g}),
                          copy_env(env0))
        assert np.allclose(m.env["T"], ref)

    def test_3d_rules_per_dim(self):
        plan = compile_clause_nd(self.mk_clause(), {"T": grid3()})
        rules = plan.rules()
        assert rules["dim0"] == "block"
        assert rules["dim1"].startswith("thm3")
        assert rules["dim2"] == "collapsed"  # undistributed axis

    def test_3d_owner_computes(self):
        g = grid3()
        plan = compile_clause_nd(self.mk_clause(), {"T": g})
        seen = set()
        for p in range(g.pmax):
            for idx in plan.modify_indices(p):
                assert g.proc(idx) == p
                seen.add(idx)
        assert len(seen) == NX * NY * (NZ - 1)

    def test_3d_membership_tests_zero(self, rng):
        cl = self.mk_clause(shift=(0, 0, 0))
        g = grid3()
        m = run_shared_nd(compile_clause_nd(cl, {"T": g, "S": g}),
                          self.env(rng))
        assert m.stats.total_tests() == 0
        assert m.stats.total_updates() == NX * NY * NZ
