"""Tests for the analytic cost model."""

import numpy as np
import pytest

from repro.codegen import compile_clause, run_distributed
from repro.core import AffineF, Clause, IndexSet, Ref, SeparableMap, copy_env
from repro.decomp import Block, Scatter
from repro.machine import (
    ETHERNET_CLUSTER,
    HYPERCUBE,
    SHARED_BUS,
    CostModel,
    MachineStats,
)


def stats_with(**kw) -> MachineStats:
    s = MachineStats.for_nodes(2)
    for k, v in kw.items():
        setattr(s[0], k, v)
    return s


class TestArithmetic:
    def test_node_time_components(self):
        m = CostModel("t", t_update=2, t_iteration=0, t_test=0,
                      alpha=10, beta=1, t_barrier=100)
        s = stats_with(local_updates=3, sends=2, elements_sent=5, barriers=1)
        assert m.node_time(s[0]) == 6 + 20 + 5 + 100

    def test_makespan_is_max(self):
        m = CostModel("t")
        s = MachineStats.for_nodes(3)
        s[0].local_updates = 10
        s[2].local_updates = 40
        assert m.makespan(s) == m.node_time(s[2])

    def test_sequential_time(self):
        m = CostModel("t", t_update=1, t_iteration=0.5)
        assert m.sequential_time(100) == 150.0

    def test_speedup_perfect_balance_no_comm(self):
        m = CostModel("t", alpha=0, beta=0, t_barrier=0, t_test=0)
        s = MachineStats.for_nodes(4)
        for p in range(4):
            s[p].local_updates = 25
            s[p].iterations = 25
        assert m.speedup(s) == pytest.approx(4.0)

    def test_empty_stats(self):
        m = CostModel("t")
        s = MachineStats.for_nodes(2)
        assert m.makespan(s) == 0.0
        assert m.speedup(s, useful_updates=0) == float("inf")


class TestPresetsShapeClaims:
    """The presets must rank decompositions the way real machines do."""

    def stencil_run(self, mk_dec, n=256):
        pmax = 8
        cl = Clause(
            IndexSet.range1d(1, n - 2),
            Ref("A", SeparableMap([AffineF(1, 0)])),
            Ref("B", SeparableMap([AffineF(1, -1)]))
            + Ref("B", SeparableMap([AffineF(1, 1)])),
        )
        rng = np.random.default_rng(0)
        env = {"A": np.zeros(n), "B": rng.random(n)}
        plan = compile_clause(cl, {"A": mk_dec(n, pmax), "B": mk_dec(n, pmax)})
        return run_distributed(plan, copy_env(env))

    def test_block_beats_scatter_for_stencils_on_message_machines(self):
        m_block = self.stencil_run(lambda n, p: Block(n, p))
        m_scatter = self.stencil_run(lambda n, p: Scatter(n, p))
        for model in (ETHERNET_CLUSTER, HYPERCUBE):
            t_block = model.makespan(m_block.stats)
            t_scatter = model.makespan(m_scatter.stats)
            assert t_block < t_scatter, model.name

    def test_latency_dominated_machines_punish_scatter_harder(self):
        m_block = self.stencil_run(lambda n, p: Block(n, p))
        m_scatter = self.stencil_run(lambda n, p: Scatter(n, p))
        ratios = {}
        for model in (HYPERCUBE, ETHERNET_CLUSTER):
            ratios[model.name] = (model.makespan(m_scatter.stats)
                                  / model.makespan(m_block.stats))
        assert ratios["ethernet-cluster"] > ratios["hypercube"]

    def test_speedup_grows_with_problem_size(self):
        # per-node communication is constant for the block stencil, so
        # modeled speedup must improve as n grows (classic scalability)
        small = HYPERCUBE.speedup(
            self.stencil_run(lambda n, p: Block(n, p), n=256).stats
        )
        large = HYPERCUBE.speedup(
            self.stencil_run(lambda n, p: Block(n, p), n=2048).stats
        )
        assert large > small
        assert large > 2.0
