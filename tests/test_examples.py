"""Every example script must run to completion (they self-verify)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples must narrate what they do"


def test_expected_example_set_present():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "heat_stencil", "matvec_spmd", "rotate_views",
            "dynamic_redistribution", "doacross_pipeline",
            "grid_2d_stencil", "autoselect_demo", "dot_product"} <= names
