"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.core.ifunc import AffineF, ConstantF, ModularF, MonotoneF
from repro.decomp import Block, BlockScatter, Scatter, SingleOwner


# ---------------------------------------------------------------------------
# hypothesis strategies
# ---------------------------------------------------------------------------

def decompositions(max_n: int = 64, max_p: int = 8):
    """Strategy producing bijective 1-D decompositions."""

    def build(draw_tuple):
        kind, n, pmax, b, owner = draw_tuple
        pmax = max(1, pmax)
        n = max(1, n)
        if kind == "block":
            return Block(n, pmax)
        if kind == "scatter":
            return Scatter(n, pmax)
        if kind == "bs":
            return BlockScatter(n, pmax, max(1, b))
        return SingleOwner(n, pmax, owner % pmax)

    return st.tuples(
        st.sampled_from(["block", "scatter", "bs", "single"]),
        st.integers(1, max_n),
        st.integers(1, max_p),
        st.integers(1, 8),
        st.integers(0, max_p - 1),
    ).map(build)


def affine_funcs(max_a: int = 6, max_c: int = 10):
    """Non-degenerate affine access functions, both slopes."""
    return st.tuples(
        st.integers(-max_a, max_a).filter(lambda a: a != 0),
        st.integers(-max_c, max_c),
    ).map(lambda t: AffineF(*t))


def index_funcs():
    """Constant, affine, modular, or monotone access functions."""
    constant = st.integers(0, 40).map(ConstantF)
    affine = affine_funcs()
    modular = st.tuples(
        st.integers(1, 3),
        st.integers(0, 10),
        st.integers(3, 30),
        st.integers(0, 5),
    ).map(lambda t: ModularF(AffineF(t[0], t[1]), t[2], t[3]))
    monotone = st.just(
        MonotoneF(lambda i: i + i // 4, 1, "i+i div 4")
    )
    return st.one_of(constant, affine, modular, monotone)


# ---------------------------------------------------------------------------
# plain fixtures
# ---------------------------------------------------------------------------

@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def fig2_params():
    """The Fig. 2 configuration: 15 elements on 4 processors."""
    return {"n": 15, "pmax": 4}
