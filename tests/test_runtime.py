"""Tests for the multi-process SPMD runtime (``backend="mp"``).

Covers the acceptance bar of the runtime subsystem: bit-identity with
the in-process fused backend (same kernels, same counters), persistent
pool reuse, crash and timeout detection (a killed or hung worker raises
:class:`WorkerCrashError`, never a hang), self-healing recovery, stats
aggregation, strict verifier gating, resource disposal, and the backend
registry surfaced through the CLI.
"""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro import (
    Block,
    Clause,
    IndexSet,
    Ref,
    SeparableMap,
    WorkerCrashError,
    clear_plan_cache,
    compile_clause,
    copy_env,
    evaluate_clause,
    run_distributed,
    run_shared,
    shutdown_runtime,
)
from repro.backends import UnknownBackendError, backend_names
from repro.cli import main
from repro.codegen.nddist import (
    collect_nd,
    compile_clause_nd_dist,
    run_distributed_nd,
)
from repro.core import AffineF, Bounds, Const, IdentityF
from repro.core.expr import BinOp
from repro.decomp import GridDecomposition
from repro.machine.fused import FusedStrictError
from repro.runtime import (
    active_segments,
    get_pool,
    run_distributed_mp,
    run_shared_mp,
    runtime_info,
)

N, P = 48, 4


def stencil_clause():
    return Clause(
        IndexSet(Bounds((1,), (N - 2,))),
        Ref("A", SeparableMap([IdentityF()])),
        (Ref("B", SeparableMap([AffineF(1, -1)]))
         + Ref("B", SeparableMap([AffineF(1, 1)]))) * 0.5,
    )


def stencil_plan():
    return compile_clause(stencil_clause(), {"A": Block(N, P),
                                             "B": Block(N, P)})


def env1d(seed=0):
    rng = np.random.default_rng(seed)
    return {k: rng.random(N) for k in "AB"}


def grid_clause(n):
    def sref(di, dj):
        fi = AffineF(1, di) if di else IdentityF()
        fj = AffineF(1, dj) if dj else IdentityF()
        return Ref("S", SeparableMap([fi, fj]))

    return Clause(
        IndexSet(Bounds((1, 1), (n - 2, n - 2))),
        Ref("T", SeparableMap([IdentityF(), IdentityF()])),
        BinOp("*", Const(0.25),
              BinOp("+", BinOp("+", sref(-1, 0), sref(1, 0)),
                    BinOp("+", sref(0, -1), sref(0, 1)))),
    )


@pytest.fixture(scope="module", autouse=True)
def runtime_teardown():
    yield
    shutdown_runtime()


def _counters(machine):
    s = machine.stats
    return (s.total_messages(), s.total_elements_moved(),
            s.total_updates())


class TestBitIdentity:
    """mp executes the *same* compiled kernels as fused over the same
    lane vectors, so results must match bit for bit — and the counters
    must match count for count."""

    def test_distributed_matches_fused(self):
        plan, env0 = stencil_plan(), env1d()
        mf = run_distributed(plan, copy_env(env0), backend="fused")
        mm = run_distributed(plan, copy_env(env0), backend="mp")
        assert np.array_equal(mf.collect("A"), mm.collect("A"))
        assert _counters(mf) == _counters(mm)

    def test_shared_matches_fused(self):
        plan, env0 = stencil_plan(), env1d()
        mf = run_shared(plan, copy_env(env0), backend="fused")
        mm = run_shared(plan, copy_env(env0), backend="mp")
        assert np.array_equal(mf.env["A"], mm.env["A"])

    def test_nd_grid_matches_fused(self):
        n = 24
        g = GridDecomposition([Block(n, 2), Block(n, 2)])
        plan = compile_clause_nd_dist(grid_clause(n), {"T": g, "S": g})
        rng = np.random.default_rng(3)
        env0 = {"S": rng.random((n, n)), "T": np.zeros((n, n))}
        mf = run_distributed_nd(plan, copy_env(env0), backend="fused")
        mm = run_distributed_nd(plan, copy_env(env0), backend="mp")
        assert np.array_equal(collect_nd(mf, "T"), collect_nd(mm, "T"))
        assert _counters(mf) == _counters(mm)

    def test_matches_sequential_reference(self):
        plan, env0 = stencil_plan(), env1d(9)
        ref = evaluate_clause(stencil_clause(), copy_env(env0))["A"]
        mm = run_distributed(plan, copy_env(env0), backend="mp")
        assert np.array_equal(mm.collect("A"), ref)


class TestPoolReuse:
    """The pool is the process-level analogue of the plan cache: spawned
    once per worker count and reused run after run."""

    def test_same_workers_across_runs(self):
        plan, env0 = stencil_plan(), env1d()
        m1 = run_distributed(plan, copy_env(env0), backend="mp",
                             processes=P)
        m2 = run_distributed(plan, copy_env(env0), backend="mp",
                             processes=P)
        pids1 = [s.pid for s in m1.runtime_stats]
        pids2 = [s.pid for s in m2.runtime_stats]
        assert pids1 == pids2
        assert get_pool(P) is get_pool(P)
        info = runtime_info()
        assert info[P]["installed"] >= 1

    def test_node_multiplexing(self):
        # fewer processes than nodes: nodes go round-robin, results and
        # aggregate counters unchanged
        plan, env0 = stencil_plan(), env1d(5)
        mf = run_distributed(plan, copy_env(env0), backend="fused")
        mm = run_distributed(plan, copy_env(env0), backend="mp",
                             processes=2)
        assert np.array_equal(mf.collect("A"), mm.collect("A"))
        assert _counters(mf) == _counters(mm)
        assert len(mm.runtime_stats) == 2
        assert sorted(p for s in mm.runtime_stats for p in s.nodes) \
            == list(range(P))


class TestRobustness:
    """A dead or hung worker must surface as WorkerCrashError naming the
    worker and phase — never as a hang — and the pool must self-heal."""

    def test_timeout_raises_and_names_laggard(self):
        plan, env0 = stencil_plan(), env1d()
        t0 = time.monotonic()
        with pytest.raises(WorkerCrashError) as err:
            run_distributed_mp(plan.ir, copy_env(env0), processes=P,
                               timeout=0.5, _fault_delay=(1, 8.0))
        assert time.monotonic() - t0 < 30.0
        assert err.value.rank == 1
        assert err.value.phase == "fault-delay"
        # the pool respawned: the next run succeeds
        m = run_distributed_mp(plan.ir, copy_env(env0), processes=P)
        ref = evaluate_clause(stencil_clause(), copy_env(env0))["A"]
        assert np.array_equal(m.collect("A"), ref)

    def test_killed_worker_raises_and_pool_recovers(self):
        plan, env0 = stencil_plan(), env1d()
        run_distributed_mp(plan.ir, copy_env(env0), processes=P)  # warm
        pool = get_pool(P)
        before = pool.pids()

        def killer():
            for _ in range(800):
                if pool.phases()[1][0] == "fault-delay":
                    os.kill(pool.pids()[1], signal.SIGKILL)
                    return
                time.sleep(0.01)

        t = threading.Thread(target=killer)
        t.start()
        t0 = time.monotonic()
        with pytest.raises(WorkerCrashError) as err:
            run_distributed_mp(plan.ir, copy_env(env0), processes=P,
                               _fault_delay=(1, 8.0))
        t.join()
        assert time.monotonic() - t0 < 30.0
        assert err.value.rank == 1
        # self-heal: fresh workers, correct results
        assert pool.pids() != before
        m = run_distributed_mp(plan.ir, copy_env(env0), processes=P)
        ref = evaluate_clause(stencil_clause(), copy_env(env0))["A"]
        assert np.array_equal(m.collect("A"), ref)


class TestStatsAggregation:
    def test_worker_stats_sum_to_machine_counters(self):
        plan, env0 = stencil_plan(), env1d(2)
        mm = run_distributed(plan, copy_env(env0), backend="mp",
                             processes=P)
        assert len(mm.runtime_stats) == P
        assert sum(s.send_count for s in mm.runtime_stats) \
            == mm.stats.total_messages()
        assert sum(s.recv_count for s in mm.runtime_stats) \
            == mm.stats.total_messages()
        assert sum(s.recv_bytes for s in mm.runtime_stats) \
            == 8 * mm.stats.total_elements_moved()
        for s in mm.runtime_stats:
            assert s.total_s > 0.0
            assert s.kernel_s >= 0.0
            assert "worker" in s.describe()


class TestStrictGating:
    def test_mp_refuses_racy_clause_under_strict(self):
        cl = Clause(
            IndexSet(Bounds((0,), (N - 2,))),
            Ref("A", SeparableMap([IdentityF()])),
            Ref("A", SeparableMap([AffineF(1, 1)])) * 0.5,
        )
        plan = compile_clause(cl, {"A": Block(N, P)})
        env0 = {"A": np.random.default_rng(0).random(N)}
        with pytest.raises(FusedStrictError, match="RACE"):
            run_distributed(plan, copy_env(env0), backend="mp",
                            strict=True)
        with pytest.raises(FusedStrictError, match="RACE"):
            run_shared(plan, copy_env(env0), backend="mp", strict=True)


class TestDisposal:
    def test_shutdown_runtime_releases_everything(self):
        plan, env0 = stencil_plan(), env1d()
        run_distributed(plan, copy_env(env0), backend="mp")
        assert runtime_info()
        shutdown_runtime()
        assert runtime_info() == {}
        assert active_segments() == frozenset()
        if os.path.isdir("/dev/shm"):
            leaked = [f for f in os.listdir("/dev/shm")
                      if f.startswith("repro-mp-")]
            assert leaked == []

    def test_clear_plan_cache_disposes_runtime(self):
        plan, env0 = stencil_plan(), env1d()
        run_distributed(plan, copy_env(env0), backend="mp")
        assert runtime_info()
        clear_plan_cache()
        assert runtime_info() == {}

    def test_pool_revives_after_shutdown(self):
        plan, env0 = stencil_plan(), env1d()
        shutdown_runtime()
        m = run_distributed(plan, copy_env(env0), backend="mp")
        ref = evaluate_clause(stencil_clause(), copy_env(env0))["A"]
        assert np.array_equal(m.collect("A"), ref)


PROGRAM = """
for i := 1 to n - 2 par do
    A[i] := B[i - 1] + B[i + 1];
od
"""


@pytest.fixture
def prog_file(tmp_path):
    f = tmp_path / "prog.pal"
    f.write_text(PROGRAM)
    return str(f)


def _run_args(prog_file, *extra):
    return ["run", prog_file, "--pmax", "4",
            "--array", f"A=block:{N}", "--array", f"B=block:{N}",
            "--param", f"n={N}"] + list(extra)


class TestBackendRegistryCLI:
    def test_registry_lists_all_backends(self):
        assert backend_names() == ("scalar", "vector", "overlap",
                                   "fused", "native", "mp", "mpi")

    def test_unknown_backend_is_one_line_error(self):
        plan, env0 = stencil_plan(), env1d()
        with pytest.raises(UnknownBackendError) as err:
            run_distributed(plan, copy_env(env0), backend="gpu")
        msg = str(err.value)
        assert "\n" not in msg
        assert "gpu" in msg
        for name in backend_names():
            assert name in msg

    def test_cli_rejects_unknown_backend(self, prog_file):
        with pytest.raises(SystemExit) as err:
            main(_run_args(prog_file, "--backend", "cuda"))
        msg = str(err.value.code)
        assert msg.startswith("error: unknown backend 'cuda'")
        assert "\n" not in msg

    def test_cli_run_mp_with_stats(self, prog_file, capsys):
        rc = main(_run_args(prog_file, "--backend", "mp",
                            "--processes", "4", "--stats"))
        out = capsys.readouterr().out
        assert rc == 0
        assert "OK" in out
        assert "worker 0" in out
        assert "kernel" in out

    def test_cli_run_mp_shared(self, prog_file, capsys):
        rc = main(_run_args(prog_file, "--backend", "mp", "--shared",
                            "--stats"))
        out = capsys.readouterr().out
        assert rc == 0
        assert "OK" in out
        assert "worker 0" in out
