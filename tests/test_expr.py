"""Tests for V-cal expressions (paper Section 2.4)."""

import numpy as np
import pytest

from repro.core.expr import BinOp, Const, LoopIndex, Ref, UnOp
from repro.core.ifunc import AffineF, IdentityF
from repro.core.view import ProjectedMap, SeparableMap


def env1d():
    return {"A": np.array([10.0, 20.0, 30.0, 40.0]),
            "B": np.array([1.0, 2.0, 3.0, 4.0])}


class TestAtoms:
    def test_const(self):
        assert Const(7).eval((0,), {}) == 7

    def test_loop_index(self):
        assert LoopIndex(0).eval((5,), {}) == 5
        assert LoopIndex(1).eval((5, 9), {}) == 9

    def test_ref_1d(self):
        r = Ref("A", SeparableMap([AffineF(1, 1)]))
        assert r.eval((1,), env1d()) == 30.0

    def test_ref_2d(self):
        env = {"M": np.arange(12.0).reshape(3, 4)}
        r = Ref("M", SeparableMap([IdentityF(), IdentityF()]))
        assert r.eval((2, 3), env) == 11.0

    def test_ref_projected(self):
        env = {"x": np.array([5.0, 6.0, 7.0])}
        r = Ref("x", ProjectedMap([1], [IdentityF()]))
        assert r.eval((0, 2), env) == 7.0

    def test_scalar_func_extraction(self):
        r = Ref("A", SeparableMap([AffineF(2, 1)]))
        f = r.scalar_func()
        assert f(3) == 7

    def test_scalar_func_rejects_2d(self):
        r = Ref("M", SeparableMap([IdentityF(), IdentityF()]))
        with pytest.raises(ValueError):
            r.scalar_func()

    def test_scalar_func_accepts_projected_dim0(self):
        r = Ref("A", ProjectedMap([0], [AffineF(1, 2)]))
        assert r.scalar_func()(1) == 3


class TestOperators:
    def test_element_wise_reduction_rule(self):
        # ∆[ip](V ⊕ W) = ∆([ip](V) + [ip](W)) — element-wise evaluation
        ip = SeparableMap([AffineF(1, 0)])
        e = BinOp("+", Ref("A", ip), Ref("B", ip))
        env = env1d()
        for i in range(4):
            assert e.eval((i,), env) == env["A"][i] + env["B"][i]

    def test_arith_ops(self):
        two, three = Const(2), Const(3)
        assert BinOp("*", two, three).eval((0,), {}) == 6
        assert BinOp("-", two, three).eval((0,), {}) == -1
        assert BinOp("div", Const(7), two).eval((0,), {}) == 3
        assert BinOp("mod", Const(7), two).eval((0,), {}) == 1
        assert BinOp("min", two, three).eval((0,), {}) == 2
        assert BinOp("max", two, three).eval((0,), {}) == 3

    def test_comparisons(self):
        assert BinOp(">", Const(3), Const(2)).eval((0,), {})
        assert BinOp("=", Const(3), Const(3)).eval((0,), {})
        assert BinOp("!=", Const(3), Const(2)).eval((0,), {})
        assert not BinOp("<=", Const(3), Const(2)).eval((0,), {})

    def test_logic(self):
        t, f = Const(True), Const(False)
        assert BinOp("and", t, t).eval((0,), {})
        assert not BinOp("and", t, f).eval((0,), {})
        assert BinOp("or", f, t).eval((0,), {})

    def test_unary(self):
        assert UnOp("-", Const(5)).eval((0,), {}) == -5
        assert UnOp("abs", Const(-5)).eval((0,), {}) == 5
        assert UnOp("not", Const(False)).eval((0,), {})

    def test_unknown_ops_rejected(self):
        with pytest.raises(ValueError):
            BinOp("**", Const(1), Const(2))
        with pytest.raises(ValueError):
            UnOp("~", Const(1))


class TestSugarAndRefs:
    def test_operator_sugar(self):
        r = Ref("A", SeparableMap([IdentityF()]))
        e = r * 2 + 1
        assert e.eval((0,), env1d()) == 21.0

    def test_comparison_sugar(self):
        r = Ref("A", SeparableMap([IdentityF()]))
        assert (r > 15).eval((1,), env1d())
        assert (r < 15).eval((0,), env1d())

    def test_lift_rejects_junk(self):
        with pytest.raises(TypeError):
            Ref("A", SeparableMap([IdentityF()])) + "nope"

    def test_refs_traversal(self):
        ip = SeparableMap([IdentityF()])
        e = BinOp("+", Ref("A", ip), UnOp("-", Ref("B", ip)))
        assert [r.name for r in e.refs()] == ["A", "B"]

    def test_const_has_no_refs(self):
        assert list(Const(1).refs()) == []
