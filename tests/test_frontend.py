"""Tests for the mini-language front end (lexer, parser, translation)."""

import numpy as np
import pytest

from repro.core import Ordering, copy_env, evaluate_program
from repro.core.ifunc import AffineF, ConstantF, ModularF
from repro.frontend import (
    LexError,
    ParseError,
    TranslateError,
    parse,
    tokenize,
    translate,
    translate_source,
)
from repro.frontend import ast as A
from repro.frontend.translate import classify_index_expr


class TestLexer:
    def test_basic_tokens(self):
        toks = tokenize("for i := 0 to 9 do od")
        kinds = [(t.kind, t.value) for t in toks]
        assert kinds[0] == ("kw", "for")
        assert kinds[1] == ("ident", "i")
        assert kinds[2] == ("sym", ":=")
        assert kinds[-1] == ("eof", None)

    def test_numbers(self):
        toks = tokenize("123 4")
        assert toks[0].value == 123
        assert toks[1].value == 4

    def test_multi_char_symbols(self):
        toks = tokenize("<= >= != :=")
        assert [t.value for t in toks[:-1]] == ["<=", ">=", "!=", ":="]

    def test_double_star_comment(self):
        toks = tokenize("1 ** send all elem\n2")
        assert [t.value for t in toks[:-1]] == [1, 2]

    def test_hash_comment(self):
        toks = tokenize("1 # comment\n2")
        assert [t.value for t in toks[:-1]] == [1, 2]

    def test_line_tracking(self):
        toks = tokenize("a\nbb")
        assert toks[0].line == 1
        assert toks[1].line == 2

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")

    def test_keywords_vs_idents(self):
        toks = tokenize("form for")
        assert toks[0].kind == "ident"
        assert toks[1].kind == "kw"


class TestParser:
    def test_fig1_shape(self):
        prog = parse("""
            for i := k + 1 to n do
                if A[i] > 0 then
                    A[i] := B[i];
                fi;
            od;
        """)
        (loop,) = prog.body
        assert isinstance(loop, A.For)
        assert loop.var == "i"
        assert loop.order == "seq"  # default
        (iff,) = loop.body
        assert isinstance(iff, A.If)
        (asgn,) = iff.body
        assert isinstance(asgn, A.Assign)
        assert asgn.target.name == "A"

    def test_par_annotation(self):
        prog = parse("for i := 0 to 9 par do A[i] := 0; od")
        assert prog.body[0].order == "par"

    def test_precedence(self):
        prog = parse("for i := 0 to 0 do A[i] := 1 + 2 * 3; od")
        rhs = prog.body[0].body[0].value
        assert isinstance(rhs, A.Bin) and rhs.op == "+"
        assert isinstance(rhs.right, A.Bin) and rhs.right.op == "*"

    def test_parentheses(self):
        prog = parse("for i := 0 to 0 do A[i] := (1 + 2) * 3; od")
        rhs = prog.body[0].body[0].value
        assert rhs.op == "*"

    def test_div_mod_keywords(self):
        prog = parse("for i := 0 to 0 do A[i] := B[i div 2] + C[i mod 3]; od")
        rhs = prog.body[0].body[0].value
        assert rhs.left.indices[0].op == "div"
        assert rhs.right.indices[0].op == "mod"

    def test_multi_dim_subscript(self):
        prog = parse("for i := 0 to 0 do A[i] := M[i, i + 1]; od")
        sub = prog.body[0].body[0].value
        assert len(sub.indices) == 2

    def test_if_else(self):
        prog = parse("""
            for i := 0 to 4 do
                if A[i] > 0 then A[i] := 1; else A[i] := 2; fi;
            od
        """)
        iff = prog.body[0].body[0]
        assert len(iff.body) == 1
        assert len(iff.orelse) == 1

    def test_logical_operators(self):
        prog = parse("""
            for i := 0 to 4 do
                if A[i] > 0 and not (A[i] > 9) then A[i] := 1; fi;
            od
        """)
        cond = prog.body[0].body[0].cond
        assert cond.op == "and"

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("for i := 0 to 4 do A[i] := 1 od")

    def test_unclosed_loop(self):
        with pytest.raises(ParseError):
            parse("for i := 0 to 4 do A[i] := 1;")

    def test_garbage_atom(self):
        with pytest.raises(ParseError):
            parse("for i := 0 to ; do od")


class TestIndexClassification:
    def p(self, text):
        """Parse *text* as the subscript of A[...] and return the AST expr."""
        prog = parse(f"for i := 0 to 0 do X[{text}] := 0; od")
        return prog.body[0].body[0].target.indices[0]

    def test_constant(self):
        var, f = classify_index_expr(self.p("7"), {}, ("i",))
        assert var is None
        assert isinstance(f, ConstantF) and f.c == 7

    def test_param_constant(self):
        var, f = classify_index_expr(self.p("n - 1"), {"n": 10}, ("i",))
        assert isinstance(f, ConstantF) and f.c == 9

    def test_identity(self):
        var, f = classify_index_expr(self.p("i"), {}, ("i",))
        assert var == "i"
        assert isinstance(f, AffineF) and (f.a, f.c) == (1, 0)

    def test_shift(self):
        _, f = classify_index_expr(self.p("i + 3"), {}, ("i",))
        assert (f.a, f.c) == (1, 3)

    def test_general_affine(self):
        _, f = classify_index_expr(self.p("2 * i - 1"), {}, ("i",))
        assert (f.a, f.c) == (2, -1)

    def test_affine_with_params(self):
        _, f = classify_index_expr(self.p("a * i + c"), {"a": 3, "c": 4}, ("i",))
        assert (f.a, f.c) == (3, 4)

    def test_negated(self):
        _, f = classify_index_expr(self.p("n - i"), {"n": 20}, ("i",))
        assert (f.a, f.c) == (-1, 20)

    def test_modular_rotate(self):
        _, f = classify_index_expr(self.p("(i + 6) mod 20"), {}, ("i",))
        assert isinstance(f, ModularF)
        assert (f.g.a, f.g.c, f.z, f.d) == (1, 6, 20, 0)

    def test_modular_with_offset(self):
        _, f = classify_index_expr(self.p("(i mod 10) + 2"), {}, ("i",))
        assert isinstance(f, ModularF)
        assert (f.z, f.d) == (10, 2)

    def test_nonlinear_rejected(self):
        with pytest.raises(TranslateError):
            classify_index_expr(self.p("i * i"), {}, ("i",))

    def test_div_of_loop_var_rejected(self):
        with pytest.raises(TranslateError):
            classify_index_expr(self.p("i div 2"), {}, ("i",))

    def test_unknown_name_rejected(self):
        with pytest.raises(TranslateError):
            classify_index_expr(self.p("zz + 1"), {}, ("i",))


class TestTranslation:
    def test_fig1_translation(self):
        """The paper's Fig. 1 correspondence, end to end."""
        prog = translate_source("""
            for i := k + 1 to n do
                if A[i] > 0 then A[i] := B[2 * i + 1]; fi;
            od;
        """, params={"k": 2, "n": 9})
        (cl,) = prog.clauses
        assert cl.domain.bounds.scalar() == (3, 9)
        assert cl.guard is not None
        assert cl.lhs.name == "A"
        assert cl.lhs.scalar_func()(5) == 5
        (read,) = list(cl.rhs.refs())
        assert read.name == "B"
        assert read.scalar_func()(5) == 11

    def test_default_order_is_seq(self):
        prog = translate_source("for i := 0 to 4 do A[i] := 0; od")
        assert prog.clauses[0].ordering is Ordering.SEQ

    def test_par_order(self):
        prog = translate_source("for i := 0 to 4 par do A[i] := 0; od")
        assert prog.clauses[0].ordering is Ordering.PAR

    def test_two_assignments_two_clauses(self):
        prog = translate_source("""
            for i := 0 to 4 par do
                A[i] := 1;
                B[i] := 2;
            od
        """)
        assert len(prog.clauses) == 2
        assert prog.clauses[0].lhs.name == "A"
        assert prog.clauses[1].lhs.name == "B"

    def test_sequential_loops_become_program(self):
        prog = translate_source("""
            for i := 0 to 4 par do A[i] := 1; od
            for i := 0 to 4 par do B[i] := A[i]; od
        """)
        assert len(prog.clauses) == 2

    def test_nested_loops_flatten_to_2d(self):
        prog = translate_source("""
            for i := 0 to 2 par do
              for j := 0 to 3 par do
                M[i, j] := i + j;
              od
            od
        """)
        (cl,) = prog.clauses
        assert cl.domain.dim == 2
        assert cl.ordering is Ordering.PAR

    def test_mixed_order_nest_is_seq(self):
        prog = translate_source("""
            for i := 0 to 2 par do
              for j := 0 to 3 seq do
                y[i] := y[i] + M[i, j];
              od
            od
        """)
        assert prog.clauses[0].ordering is Ordering.SEQ

    def test_else_rejected(self):
        with pytest.raises(TranslateError):
            translate_source("""
                for i := 0 to 4 do
                    if A[i] > 0 then A[i] := 1; else A[i] := 2; fi;
                od
            """)

    def test_duplicate_loop_var_rejected(self):
        with pytest.raises(TranslateError):
            translate_source("""
                for i := 0 to 2 do
                  for i := 0 to 2 do
                    A[i] := 0;
                  od
                od
            """)

    def test_top_level_assignment_rejected(self):
        with pytest.raises(TranslateError):
            translate(parse("A[0] := 1;"))

    def test_nonconstant_bound_rejected(self):
        with pytest.raises(TranslateError):
            translate_source("for i := 0 to m do A[i] := 0; od")

    def test_empty_body_rejected(self):
        with pytest.raises(TranslateError):
            translate_source("for i := 0 to 4 do od")


class TestTranslatedSemantics:
    """Translated programs evaluate like hand-written Python."""

    def test_fig1_execution(self, rng):
        prog = translate_source("""
            for i := 0 to 19 par do
                if A[i] > 0 then A[i] := B[(i + 6) mod 20]; fi;
            od;
        """)
        a = rng.integers(-5, 5, 20).astype(float)
        b = rng.random(20)
        env = {"A": a.copy(), "B": b.copy()}
        evaluate_program(prog, env)
        want = a.copy()
        for i in range(20):
            if a[i] > 0:
                want[i] = b[(i + 6) % 20]
        assert np.allclose(env["A"], want)

    def test_matvec_execution(self, rng):
        prog = translate_source("""
            for i := 0 to 5 par do
              for j := 0 to 7 seq do
                y[i] := y[i] + M[i, j] * x[j];
              od
            od
        """)
        env = {"y": np.zeros(6), "M": rng.random((6, 8)), "x": rng.random(8)}
        want = env["M"] @ env["x"]
        evaluate_program(prog, env)
        assert np.allclose(env["y"], want)

    def test_loop_index_in_rhs(self):
        prog = translate_source("for i := 0 to 4 par do A[i] := 3 * i; od")
        env = {"A": np.zeros(5)}
        evaluate_program(prog, env)
        assert list(env["A"]) == [0.0, 3.0, 6.0, 9.0, 12.0]

    def test_scalar_param_in_rhs(self):
        prog = translate_source(
            "for i := 0 to 4 par do A[i] := c; od", params={"c": 7}
        )
        env = {"A": np.zeros(5)}
        evaluate_program(prog, env)
        assert list(env["A"]) == [7.0] * 5
