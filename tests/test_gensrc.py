"""Tests for inline generation-function source (Table I formulas as code)."""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.codegen.gensrc import SUPPORT_HELPERS, segments_source
from repro.core.ifunc import AffineF, ConstantF, ModularF, MonotoneF
from repro.decomp import Block, BlockScatter, Replicated, Scatter, SingleOwner
from repro.sets import optimize_access


def run_fragment(acc, p):
    """Execute the emitted fragment for processor *p*; return the
    flattened index list."""
    lines = segments_source(acc, "segs", "key")
    ns = {}
    exec(SUPPORT_HELPERS, ns)

    class FakeRT:
        def segments(self, key, pp):
            enum = acc.enumerate(pp)
            return [(s.lo, s.hi, s.step) for s in enum.segments]

    ns["RT"] = FakeRT()
    ns["p"] = p
    exec("\n".join(lines), ns)
    out = []
    for lo, hi, stp in ns["segs"]:
        out.extend(range(lo, hi + 1, stp))
    return out


class TestInlineForms:
    def test_constant_folds_owner(self):
        acc = optimize_access(Block(20, 4), ConstantF(9), 0, 15)
        lines = segments_source(acc, "segs", "k")
        assert any("p == 1" in l for l in lines)  # proc(9) = 1 with b=5

    def test_block_affine_is_pure_arithmetic(self):
        acc = optimize_access(Block(40, 4), AffineF(3, 1), 0, 12)
        lines = segments_source(acc, "segs", "k")
        assert not any("RT.segments" in l for l in lines)

    def test_scatter_affine_uses_node_local_euclid(self):
        acc = optimize_access(Scatter(100, 7), AffineF(3, 0), 0, 30)
        lines = segments_source(acc, "segs", "k")
        assert any("_solve_congruence" in l for l in lines)

    def test_modular_falls_back_to_runtime_table(self):
        acc = optimize_access(Scatter(20, 4), ModularF(AffineF(1, 6), 20),
                              0, 19)
        lines = segments_source(acc, "segs", "k")
        assert any("RT.segments" in l for l in lines)

    def test_blockscatter_falls_back(self):
        acc = optimize_access(BlockScatter(40, 4, 2), AffineF(1, 0), 0, 39)
        lines = segments_source(acc, "segs", "k")
        assert any("RT.segments" in l for l in lines)

    def test_single_owner(self):
        acc = optimize_access(SingleOwner(20, 4, 2), AffineF(1, 0), 0, 19)
        assert run_fragment(acc, 2) == list(range(20))
        assert run_fragment(acc, 0) == []

    def test_replicated(self):
        acc = optimize_access(Replicated(20, 4), AffineF(1, 0), 3, 9)
        for p in range(4):
            assert run_fragment(acc, p) == list(range(3, 10))


class TestFragmentsMatchEnumerators:
    @given(
        st.sampled_from(["block", "scatter"]),
        st.integers(-5, 5).filter(lambda a: a),
        st.integers(-8, 8),
        st.integers(2, 50),
        st.integers(1, 8),
    )
    @settings(max_examples=300)
    def test_affine_fragments(self, kind, a, c, n, pmax):
        d = Block(n, pmax) if kind == "block" else Scatter(n, pmax)
        f = AffineF(a, c)
        cand = [i for i in range(-20, 80) if 0 <= f(i) < n]
        assume(cand)
        imin, imax = min(cand), max(cand)
        acc = optimize_access(d, f, imin, imax)
        for p in range(pmax):
            assert run_fragment(acc, p) == acc.indices(p), (
                kind, a, c, n, pmax, p,
            )

    @given(st.integers(0, 39), st.integers(1, 8), st.integers(2, 40))
    @settings(max_examples=150)
    def test_constant_fragments(self, cval, pmax, n):
        assume(cval < n)
        for d in (Block(n, pmax), Scatter(n, pmax)):
            acc = optimize_access(d, ConstantF(cval), 0, 25)
            for p in range(pmax):
                assert run_fragment(acc, p) == acc.indices(p)

    def test_monotone_fragment_via_runtime_table(self):
        f = MonotoneF(lambda i: i + i // 4, 1, "slow", derivative_max=1.25)
        acc = optimize_access(Scatter(60, 4), f, 0, 40)
        for p in range(4):
            assert run_fragment(acc, p) == acc.indices(p)
