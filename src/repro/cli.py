"""Command-line interface: compile, run, and inspect SPMD generation.

Subcommands
-----------

``layout``   print a Fig. 2-style processor layout for a decomposition.
``compile``  translate a mini-language program, pick Table I rules, and
             emit the generated node-program source.
``check``    run the static clause verifier (races, communication
             completeness, bounds, decomposition lint) and report
             diagnostics; exits non-zero on errors (or, with
             ``--strict``, on warnings).
``run``      compile + execute on the simulated distributed machine,
             verify against the sequential evaluator, print statistics.
``derive``   print the §2.6-2.7 rewrite chain for the program's clause.

Decompositions are given as ``NAME=KIND:SIZE[:PARAM]`` with kinds
``block``, ``scatter``, ``bs`` (PARAM = block size), ``single``
(PARAM = owner), ``replicated``.  Example::

    python -m repro run prog.pal --pmax 4 \\
        --array A=block:24 --array B=scatter:48 --param n=24 --seed 7
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List

import numpy as np

from .backends import (
    UnknownBackendError,
    backend_availability,
    backend_names,
    validate_backend,
)
from .codegen import compile_clause, emit_distributed_source, run_distributed
from .core import copy_env, evaluate_program
from .core.rewrite import derive_spmd
from .decomp import Block, BlockScatter, Decomposition, Replicated, Scatter, SingleOwner
from .frontend import translate_source

__all__ = ["main", "parse_decomposition"]


def parse_decomposition(spec: str, pmax: int) -> tuple[str, Decomposition]:
    """Parse ``NAME=KIND:SIZE[:PARAM]`` into a decomposition."""
    try:
        name, rest = spec.split("=", 1)
        parts = rest.split(":")
        kind = parts[0]
        n = int(parts[1])
        param = int(parts[2]) if len(parts) > 2 else None
    except (ValueError, IndexError):
        raise SystemExit(
            f"bad --array spec {spec!r}; expected NAME=KIND:SIZE[:PARAM]"
        ) from None
    try:
        if kind == "block":
            return name, Block(n, pmax, b=param)
        if kind == "scatter":
            return name, Scatter(n, pmax)
        if kind == "bs":
            if param is None:
                raise SystemExit(f"--array {spec!r}: bs needs a block size")
            return name, BlockScatter(n, pmax, param)
        if kind == "single":
            return name, SingleOwner(n, pmax, param or 0)
        if kind == "replicated":
            return name, Replicated(n, pmax)
    except ValueError as e:
        # constructor rejections (e.g. block size too small for n/pmax)
        raise SystemExit(f"bad --array spec {spec!r}: {e}") from None
    raise SystemExit(f"unknown decomposition kind {kind!r}")


def _parse_params(items: List[str]) -> Dict[str, int]:
    out = {}
    for item in items:
        try:
            k, v = item.split("=", 1)
            out[k] = int(v)
        except ValueError:
            raise SystemExit(
                f"bad --param {item!r}; expected NAME=INT") from None
    return out


def _parse_swap(items: List[str]) -> List[tuple]:
    """``--swap A:B`` pairs for the ``repeat`` time loop."""
    out = []
    for item in items:
        a, sep, b = item.partition(":")
        if not sep or not a.strip() or not b.strip():
            raise SystemExit(f"bad --swap {item!r}; expected A:B")
        out.append((a.strip(), b.strip()))
    return out


def _read_file(path: str) -> str:
    with open(path) as fh:
        return fh.read()


def _load_program(args):
    source = sys.stdin.read() if args.file == "-" else _read_file(args.file)
    return translate_source(source, _parse_params(args.param))


def _decomps(args) -> Dict[str, Decomposition]:
    if getattr(args, "spec", None):
        from .decomp.spec import parse_spec

        out = parse_spec(_read_file(args.spec))
        pmaxes = {d.pmax for d in out.values()}
        if len(pmaxes) > 1:
            raise SystemExit(
                f"spec {args.spec!r} mixes processor counts {sorted(pmaxes)}"
            )
        if out:
            args.pmax = next(iter(pmaxes))
        for s in args.array:
            name, dec = parse_decomposition(s, args.pmax)
            out[name] = dec
        return out
    if not args.array:
        raise SystemExit("no decompositions: pass --array or --spec")
    return dict(parse_decomposition(s, args.pmax) for s in args.array)


def _random_env(decomps: Dict[str, Decomposition], seed: int):
    rng = np.random.default_rng(seed)
    return {name: rng.random(dec.n) for name, dec in decomps.items()}


def cmd_layout(args) -> int:
    _name, dec = parse_decomposition(f"X={args.spec}", args.pmax)
    lay = dec.layout()
    print(f"{type(dec).__name__}(n={dec.n}, pmax={dec.pmax}):")
    print("  element:   " + " ".join(f"{i:2d}" for i in range(dec.n)))
    print("  processor: " + " ".join(f"{p:2d}" for p in lay))
    return 0


def cmd_compile(args) -> int:
    if getattr(args, "json", False):
        # machine-readable mode: the JSON cache snapshot is the ONLY
        # stdout output (the serve stats endpoint and the bench harness
        # parse it); the compilation itself still runs normally
        import contextlib
        import io
        import json

        from .cacheinfo import cache_stats

        with contextlib.redirect_stdout(io.StringIO()):
            rc = _compile_body(args)
        print(json.dumps(cache_stats(), indent=2))
        return rc
    rc = _compile_body(args)
    if getattr(args, "cache_stats", False):
        print_cache_stats()
    return rc


def _compile_body(args) -> int:
    program = _load_program(args)
    decomps = _decomps(args)
    for clause in program:
        print(f"clause {clause.name}:")
        print(f"    {clause!r}")
        try:
            plan = compile_clause(clause, decomps)
        except ValueError as e:
            # e.g. overlapped (halo) structures: the legacy node-program
            # emitter refuses them; the program pipeline below still
            # compiles and reports the whole program.
            print(f"# node-program emission unavailable: {e}")
            print()
            continue
        print("rules:")
        for access, rule in plan.rules().items():
            print(f"    {access:14s} -> {rule}")
        if getattr(args, "explain", False) and plan.trace is not None:
            print()
            print(plan.trace.pretty(verbose=args.verbose))
        backend = getattr(args, "backend", "scalar")
        kernels = getattr(getattr(plan, "ir", None), "kernels", None)
        if backend in ("fused", "native", "mp", "mpi") \
                and getattr(args, "explain", False):
            print()
            if kernels is not None:
                print(f"# fused kernels — {kernels.describe()}")
                print(kernels.source)
            else:
                print("# no fused kernels on this plan")
            if backend == "native":
                _explain_native(plan, kernels)
            if backend == "mpi":
                _explain_mpi(plan, decomps,
                             getattr(args, "processes", None))
        print()
        if backend in ("fused", "native", "mp", "mpi"):
            if kernels is not None and kernels.dist is not None:
                what = ("multi-process runtime executing the compile-once "
                        "node kernels" if backend == "mp"
                        else "SPMD ranks under mpiexec exchanging halos "
                             "by nonblocking point-to-point messages "
                             "(fused fallback when mpi4py is absent)"
                        if backend == "mpi"
                        else "njit-compiled node kernels (fused fallback "
                             "when numba is absent)" if backend == "native"
                        else "compile-once node kernels")
                print(f"# {backend} backend: {what} "
                      "(see --explain for the generated source);")
                print("# equivalent vector-form node program:")
            backend = "vector"
        if backend in ("vector", "overlap"):
            from .codegen.pysource import CodegenError

            try:
                print(emit_distributed_source(plan, backend=backend))
            except CodegenError as e:
                print(f"# {backend} emission unavailable ({e}); scalar form:")
                print(emit_distributed_source(plan))
        else:
            print(emit_distributed_source(plan))
    steps = max(1, getattr(args, "steps", 1) or 1)
    if len(list(program)) > 1 or steps > 1:
        from .analysis import verify_program
        from .pipeline import compile_program

        pir = compile_program(program, decomps, repeat=steps,
                              swap=_parse_swap(getattr(args, "swap", [])))
        verification = verify_program(pir)
        print(pir.describe())
        verdict = "clean" if verification.ok else (
            "FLAGGED: " + ", ".join(sorted(
                {d.code for d in verification.errors()})))
        print(f"  program verification: {verdict}")
        if getattr(args, "explain", False):
            print()
            print(pir.trace.pretty(verbose=args.verbose))
        print()
    return 0


def _explain_native(plan, kernels) -> None:
    """``compile --backend native --explain``: probe verdict plus the
    generated scalar-loop kernel source (or the fallback reason)."""
    from .pipeline import NativeBuildError, ensure_native, native_support

    sup = native_support()
    print(f"# native tier: available={sup.available} mode={sup.mode} "
          f"({sup.reason})")
    ir = getattr(plan, "ir", None)
    if kernels is None or ir is None:
        print("# native kernel unavailable: no fused kernels on this plan")
        return
    try:
        nat = ensure_native(kernels, ir)
    except NativeBuildError as e:
        print(f"# native kernel unavailable ({e}); the fused tier runs")
        return
    print(f"# native kernels — {nat.describe()}")
    print(nat.source)


def _explain_mpi(plan, decomps, processes=None) -> None:
    """``compile --backend mpi --explain``: probe verdict plus the
    node -> rank attachment over the Cartesian process grid."""
    from .mpi import mpi_support
    from .mpi.exec import _nranks

    sup = mpi_support()
    print(f"# mpi tier: available={sup.available} mode={sup.mode} "
          f"({sup.reason})")
    pmax = plan.pmax
    wd = decomps.get(getattr(plan, "write_name", ""))
    grid = tuple(getattr(wd, "grid_shape", ()) or (pmax,))
    size = _nranks(processes, pmax)
    cart = ("Cartesian communicator dims="
            + "x".join(str(g) for g in grid)
            if len(grid) > 1
            else f"1-D communicator over {pmax} node(s)")
    print(f"# rank mapping: {size} rank(s), {cart}, row-major, "
          "reorder=False; nodes attach round-robin (node % nranks)")
    for r in range(size):
        nodes = [p for p in range(pmax) if p % size == r]
        if len(grid) > 1:
            coords = [tuple(int(c) for c in np.unravel_index(p, grid))
                      for p in nodes]
            print(f"#   rank {r} <- nodes {nodes} at grid coords {coords}")
        else:
            print(f"#   rank {r} <- nodes {nodes}")


def print_cache_stats() -> None:
    """One unified block: plan, Table I, kernel, native, program, and
    verifier-report caches (``--json`` emits the same snapshot as one
    machine-readable object, see :func:`repro.cacheinfo.cache_stats`)."""
    from .cacheinfo import cache_stats

    cs = cache_stats()
    pc, tc = cs["plan"], cs["table1"]
    kc, gc = cs["kernel"], cs["program"]
    nc, vc = cs["native"], cs["verify"]
    sf = cs["singleflight"]
    print("caches:")
    print(f"  plan:    hits={pc['hits']} misses={pc['misses']} "
          f"evictions={pc['evictions']} "
          f"size={pc['size']}/{pc['maxsize']} enabled={pc['enabled']}")
    print(f"  table1:  hits={tc['hits']} misses={tc['misses']} "
          f"evictions={tc['evictions']} "
          f"size={tc['size']}/{tc['maxsize']}")
    print(f"  kernel:  hits={kc['hits']} misses={kc['misses']} "
          f"evictions={kc['evictions']} "
          f"size={kc['size']}/{kc['maxsize']} "
          f"bytes={kc['bytes']}/{kc['max_bytes']} enabled={kc['enabled']}")
    print(f"  native:  builds={nc['builds']} hits={nc['hits']} "
          f"failures={nc['failures']} disposed={nc['disposed']} "
          f"jit={nc['jit_s'] * 1e3:.1f}ms mode={nc['mode']} "
          f"available={nc['available']}")
    print(f"  program: hits={gc['hits']} misses={gc['misses']} "
          f"evictions={gc['evictions']} "
          f"size={gc['size']}/{gc['maxsize']} enabled={gc['enabled']}")
    print(f"  verify:  hits={vc['hits']} misses={vc['misses']} "
          f"evictions={vc['evictions']} "
          f"size={vc['size']}/{vc['maxsize']} enabled={vc['enabled']}")
    print(f"  flight:  leaders={sf['leaders']} waits={sf['waits']} "
          f"inflight={sf['inflight']}")


def cmd_check(args) -> int:
    """``repro check``: per-clause verifier reports plus (for programs)
    the whole-program verification — PROG/SCHED/KRN analyses over the
    compiled :class:`ProgramIR`.

    ``--json`` emits one object with the documented schema::

        {
          "clauses":  [DiagnosticReport.summary(), ...],   # per clause
          "program": {                       # null for bare single clauses
            "ok": bool,                      # no PROG/SCHED/KRN errors
            "errors": int, "warnings": int,
            "diagnostics": [Diagnostic.as_dict(), ...],
            "certificate": str | null,       # schedule proof, described
            "certified_deadlock_free": bool | null
          },
          "ok": bool,          # overall: no errors (and, under --strict,
          "errors": int,       #   no warnings either)
          "warnings": int
        }

    Exit status 0 iff ``ok`` (info-level findings never fail a check).
    """
    import json

    from .analysis import CODES, Diagnostic, DiagnosticReport, Severity
    from .pipeline import compile_plan

    program = _load_program(args)
    decomps = _decomps(args)
    clauses = list(program)
    steps = max(1, getattr(args, "steps", 1) or 1)
    swap = _parse_swap(getattr(args, "swap", []))

    def chk001(label: str, what: str, e: Exception) -> DiagnosticReport:
        report = DiagnosticReport(clause=label)
        report.add(Diagnostic(
            code="CHK001",
            message=f"{what} failed to compile: {e}",
            severity=Severity.ERROR,
            hint=CODES["CHK001"],
        ))
        return report.finish()

    reports = []
    for k, clause in enumerate(clauses):
        successor = clauses[k + 1] if k + 1 < len(clauses) else None
        try:
            ir = compile_plan(clause, decomps, successor=successor,
                              verify=True)
            reports.append(ir.diagnostics)
        except (KeyError, ValueError, NotImplementedError) as e:
            # the clause does not even compile — report that as a
            # verification failure rather than crashing the checker
            reports.append(chk001(clause.name or "<anonymous>", "clause", e))
    verification = None
    program_report = None
    if len(clauses) > 1 or steps > 1 or swap:
        from .analysis import verify_program
        from .pipeline import compile_program

        try:
            pir = compile_program(program, decomps, repeat=steps, swap=swap,
                                  verify=True)
            verification = verify_program(pir)
            program_report = verification.program
        except (KeyError, ValueError, NotImplementedError) as e:
            program_report = chk001("<program>", "program", e)
    errors = sum(len(r.errors()) for r in reports)
    warnings = sum(len(r.warnings()) for r in reports)
    if program_report is not None:
        errors += len(program_report.errors())
        warnings += len(program_report.warnings())
    ok = errors == 0 and not (args.strict and warnings)
    cert = verification.certificate if verification is not None else None
    if args.json:
        prog_section = None
        if program_report is not None:
            prog_section = {
                "ok": program_report.ok,
                "errors": len(program_report.errors()),
                "warnings": len(program_report.warnings()),
                "diagnostics": [d.as_dict()
                                for d in program_report.diagnostics],
                "certificate": cert.describe() if cert is not None else None,
                "certified_deadlock_free": (cert.ok if cert is not None
                                            else None),
            }
        print(json.dumps({
            "clauses": [r.summary() for r in reports],
            "program": prog_section,
            "ok": ok,
            "errors": errors,
            "warnings": warnings,
        }, indent=2))
    else:
        for report in reports:
            print(report.pretty())
        if program_report is not None:
            print(program_report.pretty())
            if cert is not None:
                print(f"schedule: {cert.describe()}")
        tail = f"{len(reports)} clause(s): {errors} error(s), " \
               f"{warnings} warning(s)"
        if args.strict and warnings and not errors:
            tail += "  [--strict: warnings are fatal]"
        print(tail)
    return 0 if ok else 1


def _print_run_stats(machine) -> None:
    """``run --stats``: machine counters plus, for mp runs, the
    per-worker runtime lines."""
    print(machine.stats.summary())
    for rstats in getattr(machine, "runtime_stats", []):
        print(f"    {rstats.describe()}")


def cmd_run(args) -> int:
    from .machine.fused import FusedStrictError
    from .runtime import WorkerCrashError

    program = _load_program(args)
    decomps = _decomps(args)
    env0 = _random_env(decomps, args.seed)
    strict = getattr(args, "strict", False)
    processes = getattr(args, "processes", None)
    timeout = getattr(args, "timeout", None)
    show_stats = getattr(args, "stats", False)
    steps = max(1, getattr(args, "steps", 1) or 1)
    swap = _parse_swap(getattr(args, "swap", []))
    av = backend_availability(args.backend)
    if not av.available:
        # one generic line per out-of-process tier; the exact native
        # wording is load-bearing (CI greps for it)
        print(f"note: {args.backend} tier unavailable ({av.reason}); "
              "running the fused fallback", file=sys.stderr)
    if args.shared:
        from .pipeline import (
            compile_program,
            evaluate_program_reference,
            run_program,
        )

        pir = compile_program(program, decomps, repeat=steps, swap=swap)
        if getattr(args, "explain", False):
            print(pir.trace.pretty())
            print()
        ref = evaluate_program_reference(pir, env0)
        try:
            machine, barriers = run_program(pir, env0, backend=args.backend,
                                            strict=strict,
                                            processes=processes,
                                            timeout=timeout)
        except FusedStrictError as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
        except WorkerCrashError as e:
            print(f"error: {e}", file=sys.stderr)
            return 3
        ok = True
        names = {c.lhs.name for c in program} | {n for pr in swap for n in pr}
        for name in sorted(names):
            good = np.allclose(machine.env[name], ref[name])
            ok &= good
            print(f"array {name}: {'OK' if good else 'MISMATCH'}")
        tail = f" over {steps} step(s)" if steps > 1 else ""
        print(f"shared-memory program run: {len(program)} clause(s), "
              f"{barriers} barrier(s) after elimination{tail}, "
              f"tests={machine.stats.total_tests()}")
        if show_stats:
            _print_run_stats(machine)
        return 0 if ok else 1
    if steps > 1 or swap:
        raise SystemExit("--steps/--swap apply to --shared program runs")
    ref = evaluate_program(program, copy_env(env0))
    ok = True
    for clause in program:
        plan = compile_clause(clause, decomps)
        try:
            machine = run_distributed(plan, env0, backend=args.backend,
                                      strict=strict, processes=processes,
                                      timeout=timeout)
        except FusedStrictError as e:
            print(f"error: clause {clause.name}: {e}", file=sys.stderr)
            return 2
        except WorkerCrashError as e:
            print(f"error: clause {clause.name}: {e}", file=sys.stderr)
            return 3
        result = machine.collect(plan.write_name)
        env0[plan.write_name] = result  # thread state between clauses
        good = np.allclose(result, ref[plan.write_name])
        ok &= good
        s = machine.stats
        print(f"clause {clause.name}: {'OK' if good else 'MISMATCH'}  "
              f"messages={s.total_messages()} "
              f"elements={s.total_elements_moved()} "
              f"updates={s.total_updates()} tests={s.total_tests()}")
        if show_stats:
            _print_run_stats(machine)
        if args.show:
            print(f"    {plan.write_name} = {np.round(result, 4)}")
    return 0 if ok else 1


def cmd_derive(args) -> int:
    program = _load_program(args)
    decomps = _decomps(args)
    for clause in program:
        d = derive_spmd(clause, decomps)
        print(f"derivation of clause {clause.name}:")
        print(d.pretty())
        env0 = _random_env(decomps, args.seed)
        d.check(env0)
        print("    (all steps semantics-checked: OK)\n")
    return 0


def cmd_calibrate(args) -> int:
    """``repro calibrate``: measure this host's alpha/beta (ping-pong)
    and t_element (stencil microbench), print the machine description,
    optionally save it for ``$REPRO_MACHINE_FILE`` consumers."""
    import json

    from .machine.calibrate import CalibrationError, calibrate

    try:
        sizes = tuple(int(s) for s in args.sizes.split(",") if s.strip())
    except ValueError:
        raise SystemExit(
            f"bad --sizes {args.sizes!r}; expected comma-separated ints"
        ) from None
    if not sizes or min(sizes) < 1:
        raise SystemExit(f"bad --sizes {args.sizes!r}; need positive ints")
    try:
        md = calibrate(sizes=sizes, reps=args.reps, timeout=args.timeout)
    except CalibrationError as e:
        print(f"error: calibration failed: {e}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(md.as_dict(), indent=2))
    else:
        print(md.describe())
        cm = md.cost_model()
        print(f"cost model (t_update units): alpha={cm.alpha:.1f} "
              f"beta={cm.beta:.3f} t_barrier={cm.t_barrier:.1f}")
        for n, t in md.points:
            print(f"    one_way({n:>6d} elems) = {t * 1e6:9.2f} us")
    if args.out:
        md.save(args.out)
        print(f"saved machine description to {args.out}",
              file=sys.stderr)
    return 0


def cmd_serve(args) -> int:
    from .serve import serve_main

    return serve_main(args)


def cmd_client(args) -> int:
    """``repro client ADDRESS OP [...]``: one request, JSON to stdout."""
    import json

    from .serve import ServeClient, ServeError

    req: Dict[str, object] = {"op": args.op, "tenant": args.tenant}
    if args.op in ("compile", "check", "run"):
        if not args.file:
            raise SystemExit(f"op {args.op!r} needs --file")
        source = sys.stdin.read() if args.file == "-" \
            else _read_file(args.file)
        req.update({
            "program": source,
            "arrays": list(args.array),
            "params": _parse_params(args.param),
            "pmax": args.pmax,
            "steps": args.steps,
            "swap": list(args.swap),
            "backend": args.backend,
        })
        if args.op == "compile":
            req["verify"] = args.verify
        if args.op in ("check", "run"):
            req["strict"] = args.strict
        if args.op == "run":
            req["seed"] = args.seed
            if args.shared:
                req["shared"] = True
    try:
        with ServeClient(args.address) as client:
            result = client.call(**req)
    except ServeError as e:
        print(json.dumps({"ok": False,
                          "error": {"code": e.code, "message": str(e)}},
                         indent=2))
        return 1
    except (OSError, ConnectionError) as e:
        print(f"error: cannot reach repro-serve at {args.address!r}: {e}",
              file=sys.stderr)
        return 1
    print(json.dumps({"ok": True, "result": result}, indent=2))
    return 0


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="repro",
        description="SPMD program generation from data decompositions "
                    "(Paalvast, Sips & van Gemund, ICPP 1991)",
    )
    sub = ap.add_subparsers(dest="command", required=True)

    lay = sub.add_parser("layout", help="print a Fig. 2-style layout")
    lay.add_argument("spec", help="KIND:SIZE[:PARAM], e.g. bs:15:2")
    lay.add_argument("--pmax", type=int, default=4)
    lay.set_defaults(fn=cmd_layout)

    def common(p):
        p.add_argument("file", help="program file ('-' for stdin)")
        p.add_argument("--pmax", type=int, default=4)
        p.add_argument("--array", action="append", default=[],
                       metavar="NAME=KIND:SIZE[:PARAM]")
        p.add_argument("--spec", metavar="FILE",
                       help="decomposition specification file "
                            "(see repro.decomp.spec)")
        p.add_argument("--param", action="append", default=[],
                       metavar="NAME=INT")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--no-plan-cache", action="store_true",
                       help="disable the compile-once plan cache "
                            "(every clause recompiles from scratch)")

    comp = sub.add_parser("compile", help="emit generated node programs")
    common(comp)
    comp.add_argument("--explain", action="store_true",
                      help="print the pass pipeline trace (ordered passes "
                           "with per-pass rewrite counts and timings)")
    comp.add_argument("--verbose", action="store_true",
                      help="with --explain: include before/after IR "
                           "snapshots per pass")
    comp.add_argument("--backend", default="scalar", metavar="BACKEND",
                      help="flavor of emitted node program, one of: "
                           f"{', '.join(backend_names())} (fused/native/mp "
                           "show the compile-once kernel source with "
                           "--explain; native adds the njit scalar loop "
                           "and the probe verdict)")
    comp.add_argument("--cache-stats", action="store_true",
                      help="print one unified block of plan-, Table I "
                           "enumerator-, kernel-, native- (JIT time), and "
                           "program-cache hit/miss/eviction counters "
                           "after compiling")
    comp.add_argument("--json", action="store_true",
                      help="with --cache-stats: emit the cache counters "
                           "as one machine-readable JSON object (the "
                           "only stdout output; the serve stats endpoint "
                           "and bench harness parse it)")
    comp.add_argument("--steps", type=int, default=1, metavar="N",
                      help="compile the program as an N-iteration time "
                           "loop (repeat form; shows the pipelining "
                           "decision with --explain)")
    comp.add_argument("--swap", action="append", default=[],
                      metavar="A:B",
                      help="buffer pair exchanged after every time-loop "
                           "iteration (repeatable)")
    comp.add_argument("--processes", "--np", dest="processes", type=int,
                      default=None, metavar="N",
                      help="with --backend mpi --explain: rank count for "
                           "the node -> rank mapping shown")
    comp.set_defaults(fn=cmd_compile)

    chk = sub.add_parser(
        "check", help="statically verify clauses and whole programs "
                      "(races, communication, bounds, lint; inter-clause "
                      "PROG, schedule SCHED, kernel KRN analyses)")
    common(chk)
    chk.add_argument("--strict", action="store_true",
                     help="treat warnings as fatal (non-zero exit)")
    chk.add_argument("--json", action="store_true",
                     help="emit machine-readable diagnostics (documented "
                          "schema; see cmd_check)")
    chk.add_argument("--steps", type=int, default=1, metavar="N",
                     help="verify the program as an N-iteration time loop "
                          "(repeat form; the PROG analyses re-check the "
                          "pipelining decision)")
    chk.add_argument("--swap", action="append", default=[], metavar="A:B",
                     help="buffer pair exchanged after every time-loop "
                          "iteration (repeatable; checked for placement "
                          "compatibility and halo aliasing)")
    chk.set_defaults(fn=cmd_check)

    run = sub.add_parser("run", help="execute on the simulated machine")
    common(run)
    run.add_argument("--show", action="store_true",
                     help="print resulting arrays")
    run.add_argument("--shared", action="store_true",
                     help="run on the shared-memory machine with barrier "
                          "elimination (whole program, fused phases)")
    run.add_argument("--backend", default="scalar", metavar="BACKEND",
                     help=f"one of: {', '.join(backend_names())} — scalar "
                          "per-element templates, the NumPy vectorized "
                          "segment executor, the overlapped "
                          "interior/boundary executor, the compile-once "
                          "fused kernel executor, the numba-njit native "
                          "executor (fused fallback when numba is "
                          "absent), the multi-process runtime (real "
                          "OS processes + shared memory), or the mpi "
                          "SPMD runtime under mpiexec (fused fallback "
                          "when mpi4py is absent)")
    run.add_argument("--strict", action="store_true",
                     help="with --backend fused/native/mp/mpi: refuse to "
                          "execute clauses the static verifier flagged "
                          "RACE*/COMM*")
    run.add_argument("--processes", "--np", dest="processes", type=int,
                     default=None, metavar="N",
                     help="with --backend mp/mpi: worker process or MPI "
                          "rank count (default: min(pmax, 8); nodes are "
                          "multiplexed round-robin when N < pmax)")
    run.add_argument("--timeout", type=float, default=None, metavar="SEC",
                     help="with --backend mp/mpi: per-run execution "
                          "timeout in seconds (a hung run raises a crash "
                          "error instead of blocking forever)")
    run.add_argument("--stats", action="store_true",
                     help="print the machine statistics summary (and, for "
                          "--backend mp, per-worker kernel/communication/"
                          "barrier timings)")
    run.add_argument("--steps", type=int, default=1, metavar="N",
                     help="with --shared: run the program as an "
                          "N-iteration time loop (compiled once; "
                          "pipelined when every boundary elides)")
    run.add_argument("--swap", action="append", default=[], metavar="A:B",
                     help="with --shared --steps: buffer pair exchanged "
                          "after every iteration (repeatable)")
    run.add_argument("--explain", action="store_true",
                     help="with --shared: print the program pass trace "
                          "(redistribution elision, clause fusion, "
                          "time-loop pipelining decisions) before running")
    run.set_defaults(fn=cmd_run)

    der = sub.add_parser("derive", help="print the §2.6 rewrite chain")
    common(der)
    der.set_defaults(fn=cmd_derive)

    cal = sub.add_parser(
        "calibrate", help="measure this host's message latency (alpha), "
                          "per-element bandwidth (beta) and compute rate "
                          "(t_element); writes a machine description "
                          "JSON the cost model and benchmarks cite")
    cal.add_argument("--out", default=None, metavar="FILE",
                     help="save the machine description JSON here "
                          "(point $REPRO_MACHINE_FILE at it)")
    cal.add_argument("--sizes", default="1,8,64,512,4096,32768",
                     metavar="N,N,...",
                     help="ping-pong message sizes in float64 elements")
    cal.add_argument("--reps", type=int, default=50, metavar="N",
                     help="round trips per message size")
    cal.add_argument("--timeout", type=float, default=120.0,
                     metavar="SEC",
                     help="deadline for the mpiexec ping-pong before "
                          "falling back to the pipe proxy")
    cal.add_argument("--json", action="store_true",
                     help="print the full machine description as JSON "
                          "instead of the human summary")
    cal.set_defaults(fn=cmd_calibrate)

    srv = sub.add_parser(
        "serve", help="long-lived async compile-and-run daemon sharing "
                      "the warm caches across many clients "
                      "(newline-delimited JSON protocol; docs/serving.md)")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=0, metavar="N",
                     help="TCP port (0 = ephemeral; the bound address is "
                          "printed on startup)")
    srv.add_argument("--unix", default=None, metavar="PATH",
                     help="listen on a Unix socket instead of TCP")
    srv.add_argument("--workers", type=int, default=None, metavar="N",
                     help="executor thread count for CPU-heavy compiles "
                          "and runs (default: ThreadPoolExecutor's)")
    srv.add_argument("--quota", type=int, default=0, metavar="N",
                     help="per-tenant concurrent in-flight request cap "
                          "(0 = unlimited)")
    srv.add_argument("--request-timeout", type=float, default=None,
                     metavar="SEC",
                     help="per-request deadline; a lapsed request gets a "
                          "timeout error while any coalesced compile "
                          "keeps running")
    srv.add_argument("--no-single-flight", action="store_true",
                     help="disable request coalescing (benchmark "
                          "ablation; identical concurrent compiles each "
                          "occupy an executor slot)")
    srv.add_argument("--drain-timeout", type=float, default=10.0,
                     metavar="SEC",
                     help="grace period for in-flight requests on "
                          "shutdown/SIGTERM before pools are disposed")
    srv.set_defaults(fn=cmd_serve)

    cli = sub.add_parser(
        "client", help="send one request to a running repro-serve daemon "
                       "and print the JSON response")
    cli.add_argument("address", help="host:port or Unix socket path")
    cli.add_argument("op", choices=["ping", "compile", "check", "run",
                                    "stats", "clear", "shutdown"])
    cli.add_argument("--file", default=None,
                     help="program file ('-' for stdin) for "
                          "compile/check/run")
    cli.add_argument("--pmax", type=int, default=4)
    cli.add_argument("--array", action="append", default=[],
                     metavar="NAME=KIND:SIZE[:PARAM]")
    cli.add_argument("--param", action="append", default=[],
                     metavar="NAME=INT")
    cli.add_argument("--seed", type=int, default=0)
    cli.add_argument("--steps", type=int, default=1, metavar="N")
    cli.add_argument("--swap", action="append", default=[], metavar="A:B")
    cli.add_argument("--backend", default="fused", metavar="BACKEND")
    cli.add_argument("--shared", action="store_true")
    cli.add_argument("--verify", action="store_true")
    cli.add_argument("--strict", action="store_true")
    cli.add_argument("--tenant", default="default")
    cli.set_defaults(fn=cmd_client)
    return ap


def main(argv: List[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if hasattr(args, "backend"):
        try:
            validate_backend(args.backend, context=args.command)
        except UnknownBackendError as e:
            raise SystemExit(f"error: {e}") from None
    if getattr(args, "no_plan_cache", False):
        from .pipeline import enable_plan_cache

        enable_plan_cache(False)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
