"""One snapshot surface for every compile-state cache.

``cache_stats()`` returns a plain-data dict (JSON-able) covering the
plan, Table I, kernel, native, program and verify caches plus the
compile single-flight counters.  Three consumers share it: the CLI
(``repro compile --cache-stats`` text block, and machine-readable with
``--json``), the serve daemon's ``stats`` endpoint, and the benchmark
harnesses.

``clear_all_caches()`` is the admin reset behind the serve ``clear``
op: it drops every cache (plans, kernels, programs, Table I memos,
verify reports) and disposes any live worker pools, returning the
fresh snapshot.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["cache_stats", "clear_all_caches"]


def cache_stats() -> Dict[str, Dict[str, object]]:
    """Hit/miss/eviction/size counters of every cache, one nested dict.

    Keys: ``plan``, ``table1``, ``kernel`` (size-accounted: includes
    ``bytes``/``max_bytes``), ``native``, ``program``, ``verify``, and
    ``singleflight`` (thread-level compile coalescing: ``leaders`` led
    a pipeline execution, ``waits`` piggybacked on one in flight).
    """
    from .analysis import verify_cache_info
    from .pipeline import (
        compile_flight,
        kernel_cache_info,
        native_cache_info,
        plan_cache_info,
        program_cache_info,
    )
    from .sets.table1 import table1_cache_info

    return {
        "plan": plan_cache_info(),
        "table1": table1_cache_info(),
        "kernel": kernel_cache_info(),
        "native": native_cache_info(),
        "program": program_cache_info(),
        "verify": verify_cache_info(),
        "singleflight": compile_flight.info(),
    }


def clear_all_caches() -> Dict[str, Dict[str, object]]:
    """Drop every cache and dispose live worker pools; returns the
    post-clear :func:`cache_stats` snapshot."""
    from .analysis import clear_verify_cache
    from .pipeline import clear_plan_cache
    from .sets.table1 import clear_table1_cache

    clear_plan_cache()  # also kernels, programs, and the mp runtime
    clear_table1_cache()
    clear_verify_cache()
    return cache_stats()
