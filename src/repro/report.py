"""Small reporting helpers: fixed-width tables and machine-run summaries.

Used by the CLI, the examples, and the benchmark harness so every
surface prints runs the same way.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from .machine.costmodel import CostModel
from .machine.stats import MachineStats

__all__ = ["format_table", "print_table", "run_summary", "format_run"]


def format_table(
    title: str, header: Sequence[str], rows: Iterable[Sequence]
) -> str:
    """Render a fixed-width text table."""
    rows = [list(map(str, r)) for r in rows]
    header = list(map(str, header))
    widths = [
        max(len(header[k]), *(len(r[k]) for r in rows)) if rows
        else len(header[k])
        for k in range(len(header))
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(header, widths))
    out = [f"=== {title} ===", line, "-" * len(line)]
    for r in rows:
        out.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(out)


def print_table(
    title: str, header: Sequence[str], rows: Iterable[Sequence]
) -> None:
    print("\n" + format_table(title, header, rows))


def run_summary(
    stats: MachineStats, model: Optional[CostModel] = None
) -> Dict[str, object]:
    """Aggregate counters of one machine run (plus modeled numbers when a
    cost model is given)."""
    out: Dict[str, object] = dict(stats.summary())
    out["load_imbalance"] = round(stats.load_imbalance(), 3)
    if model is not None:
        out["modeled_makespan"] = round(model.makespan(stats), 1)
        out["modeled_speedup"] = round(model.speedup(stats), 2)
    return out


def format_run(
    label: str, stats: MachineStats, model: Optional[CostModel] = None
) -> str:
    """One-line run description for logs and CLI output."""
    s = run_summary(stats, model)
    parts = [f"{label}:"]
    parts.append(f"messages={s['messages']}")
    parts.append(f"elements={s['elements_moved']}")
    parts.append(f"updates={s['updates']}")
    parts.append(f"tests={s['tests']}")
    parts.append(f"imbalance={s['load_imbalance']}")
    if model is not None:
        parts.append(f"makespan={s['modeled_makespan']}")
        parts.append(f"speedup={s['modeled_speedup']}")
    return "  ".join(parts)
