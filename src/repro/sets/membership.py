"""Naive run-time membership sets (paper Section 2.8 and Section 3 intro).

``Modify_p = { i in imin:imax | proc_A(f(i)) = p }``
``Reside_p = { i in imin:imax | proc_B(g(i)) = p }``
``All_p    = Modify_p ∪ Reside_p``

Computed the way the *unoptimized* elementary SPMD program computes them:
a full scan of ``imax - imin + 1`` iterations, each performing one
``proc(f(i)) = p`` test.  The :class:`Work` counter records exactly that
cost, which Section 3 sets out to eliminate; every optimized enumerator is
measured against these counts (experiment E10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List

from ..core.ifunc import IFunc
from ..decomp.base import Decomposition

__all__ = ["Work", "modify_naive", "reside_naive", "all_naive"]


@dataclass
class Work:
    """Run-time overhead counters for set enumeration.

    * ``tests``        — ``proc(f(i)) = p`` membership tests executed
    * ``iterations``   — loop iterations driven (outer + inner)
    * ``euclid_steps`` — division steps spent in extended Euclid
    * ``preimage_calls`` — closed-form / binary-search inverse evaluations
    * ``emitted``      — useful indices produced
    """

    tests: int = 0
    iterations: int = 0
    euclid_steps: int = 0
    preimage_calls: int = 0
    emitted: int = 0

    def overhead(self) -> int:
        """Total non-useful work (everything but emission)."""
        return self.tests + self.iterations + self.euclid_steps + self.preimage_calls

    def __add__(self, other: "Work") -> "Work":
        return Work(
            self.tests + other.tests,
            self.iterations + other.iterations,
            self.euclid_steps + other.euclid_steps,
            self.preimage_calls + other.preimage_calls,
            self.emitted + other.emitted,
        )


def modify_naive(
    d: Decomposition,
    f: IFunc,
    imin: int,
    imax: int,
    p: int,
    work: Work | None = None,
) -> List[int]:
    """The naive ``Modify_p`` scan: one test per index in the full range."""
    out: List[int] = []
    for i in range(imin, imax + 1):
        if work is not None:
            work.iterations += 1
            work.tests += 1
        if d.proc(f(i)) == p:
            out.append(i)
            if work is not None:
                work.emitted += 1
    return out


def reside_naive(
    d: Decomposition,
    g: IFunc,
    imin: int,
    imax: int,
    p: int,
    work: Work | None = None,
) -> List[int]:
    """The naive ``Reside_p`` scan (same mechanics, read-side function)."""
    return modify_naive(d, g, imin, imax, p, work)


def all_naive(
    d_write: Decomposition,
    f: IFunc,
    d_read: Decomposition,
    g: IFunc,
    imin: int,
    imax: int,
    p: int,
    work: Work | None = None,
) -> List[int]:
    """``All_p = Modify_p ∪ Reside_p`` as one fused scan (the §2.10 loop)."""
    out: List[int] = []
    for i in range(imin, imax + 1):
        if work is not None:
            work.iterations += 1
            work.tests += 2
        if d_write.proc(f(i)) == p or d_read.proc(g(i)) == p:
            out.append(i)
            if work is not None:
                work.emitted += 1
    return out
