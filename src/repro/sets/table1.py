"""The Table I dispatch: pick the strongest optimization for an access.

Given a decomposition and a classified access function, return an
:class:`OptimizedAccess` that enumerates ``{ i | proc(f(i)) = p }`` with
the best rule the paper derives:

====================  =============  ==========================  ==================
access function       Block          Scatter                     Block/Scatter BS(b)
====================  =============  ==========================  ==================
``c``                 Thm 1          Thm 1                       Thm 1
``i + c``             block range    Thm 3 (stride pmax)         RB / RS
``a.i + c``           block range    Thm 3 (+Cor 1 / Cor 2)      RB / RS
monotone (non-lin)    block range    enum-on-k if df/di < pmax,  RB / RS
                                     else naive
``g(i) mod z + d``    piecewise of   piecewise of the above      piecewise RB / RS
                      the above
====================  =============  ==========================  ==================

RB = Repeated Block (Theorem 2), RS = Repeated Scatter (§3.2.i); RS is
selected when ``b <= f(imax)/(2.pmax)``, the paper's favourability
condition.  SingleOwner/Replicated degenerate decompositions get their
trivial closed forms.  Anything else falls back to the naive scan — the
dispatch never *fails*, it only degrades, mirroring "preferably all index
sets are completely reduced at compile time" (§3).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..core.ifunc import AffineF, ConstantF, IFunc, ModularF
from ..decomp.base import Decomposition
from ..decomp.block import Block
from ..decomp.blockscatter import BlockScatter
from ..decomp.replicated import Replicated, SingleOwner
from ..decomp.scatter import Scatter
from .enumerators import (
    Enumeration,
    enum_block,
    enum_constant,
    enum_naive,
    enum_piecewise,
    enum_repeated_block,
    enum_repeated_scatter,
    enum_scatter_linear,
    enum_scatter_on_k,
    enum_trivial,
)
from .membership import Work

__all__ = ["OptimizedAccess", "optimize_access", "choose_rule",
           "table1_cache_info", "clear_table1_cache"]

EnumFn = Callable[[Decomposition, IFunc, int, int, int, Work], Enumeration]


@dataclass
class OptimizedAccess:
    """A compiled (decomposition, access, range) triple.

    ``rule`` names the Table I entry that will fire; ``enumerate(p)``
    produces the membership set for processor *p*.
    """

    d: Decomposition
    f: IFunc
    imin: int
    imax: int
    rule: str
    _fn: EnumFn

    def enumerate(self, p: int, work: Optional[Work] = None) -> Enumeration:
        if work is None:
            work = Work()
        return self._fn(self.d, self.f, self.imin, self.imax, p, work)

    def indices(self, p: int, work: Optional[Work] = None) -> list[int]:
        return self.enumerate(p, work).indices()


def _wants_repeated_scatter(d: BlockScatter, f: IFunc, imin: int, imax: int) -> bool:
    """§3.2.i condition: RS beats RB when ``b <= f(imax)/(2.pmax)``."""
    _flo, fhi = f.image_bounds(imin, imax)
    return d.b * 2 * d.pmax <= max(fhi, 0)


def _monotone_ok(f: IFunc, imin: int, imax: int) -> bool:
    try:
        return f.monotone_direction(imin, imax) != 0
    except NotImplementedError:
        return False


def choose_rule(
    d: Decomposition, f: IFunc, imin: int, imax: int
) -> tuple[str, EnumFn]:
    """Select the Table I rule name and enumerator for this access."""
    # Degenerate decompositions first: membership independent of f.
    if isinstance(d, (SingleOwner, Replicated)):
        return ("singleowner" if isinstance(d, SingleOwner) else "replicated-all",
                enum_trivial)
    from ..decomp.multidim import Collapsed

    if isinstance(d, Collapsed):
        # an undistributed grid axis: its single processor owns everything
        def collapsed(d_, f_, lo, hi, p, work):
            e = Enumeration("collapsed")
            if p == 0:
                e.add(lo, hi)
                work.emitted += e.count()
            return e

        return "collapsed", collapsed

    if isinstance(f, ConstantF):
        return "thm1-constant", enum_constant

    # Piece-wise monotonic: split and recurse on the monotone pieces (§3.3).
    if isinstance(f, ModularF):
        def piecewise(d_, f_, lo, hi, p, work, _outer=(d, imin, imax)):
            def inner(dd, ff, l, h, pp, w):
                _rule, fn = choose_rule(dd, ff, l, h)
                return fn(dd, ff, l, h, pp, w)
            return enum_piecewise(d_, f_, lo, hi, p, work, inner)

        inner_rule, _ = choose_rule(d, _sample_piece(f, imin, imax), imin, imax)
        return f"piecewise({inner_rule})", piecewise

    if isinstance(d, Block):
        if isinstance(f, AffineF) or _monotone_ok(f, imin, imax):
            return "block", enum_block
        return "naive", enum_naive

    if isinstance(d, Scatter):
        if isinstance(f, AffineF):
            if d.pmax % abs(f.a) == 0:
                return "thm3-cor1", enum_scatter_linear
            if abs(f.a) % d.pmax == 0:
                return "thm3-cor2", enum_scatter_linear
            return "thm3-linear", enum_scatter_linear
        if _monotone_ok(f, imin, imax):
            if f.derivative_bound(imin, imax) < d.pmax:
                return "enum-on-k", enum_scatter_on_k
            # Scatter is BS(1): Theorem 2 still enumerates correctly, and
            # with df/di >= pmax it is the better of the bad options.
            return "thm2-repeated-block", enum_repeated_block
        return "naive", enum_naive

    if isinstance(d, BlockScatter):
        if isinstance(f, AffineF) or _monotone_ok(f, imin, imax):
            if _wants_repeated_scatter(d, f, imin, imax):
                return "repeated-scatter", enum_repeated_scatter
            return "thm2-repeated-block", enum_repeated_block
        return "naive", enum_naive

    return "naive", enum_naive


def _sample_piece(f: ModularF, imin: int, imax: int) -> IFunc:
    """Representative monotone piece of a modular access, used only to name
    the inner rule in diagnostics."""
    pieces = f.pieces(imin, imax)
    return pieces[0][2] if pieces else f.g


# -- memoization --------------------------------------------------------------
#
# Access compilation is pure in (decomposition structure, f, imin, imax) but
# decompositions are identity-hashed, so a plain ``functools.lru_cache`` would
# never hit across reconstructed objects.  We key on ``d.cache_key()`` (the
# structural identity; see :meth:`Decomposition.cache_key`) instead, with the
# function object itself as the second component — ``ConstantF``/``AffineF``
# hash structurally, opaque callables degrade to identity (misses, never
# false hits).  A ``None`` cache key opts the decomposition out entirely.

_DEFAULT_CACHE_MAXSIZE = 1024


def _env_maxsize(default: int) -> int:
    """LRU capacity, overridable with ``REPRO_CACHE_SIZE`` (kept in sync
    with :func:`repro.pipeline.cache._env_maxsize`; duplicated because
    ``sets`` is a pipeline dependency and must not import it)."""
    raw = os.environ.get("REPRO_CACHE_SIZE")
    if not raw:
        return default
    try:
        return max(1, int(raw))
    except ValueError:
        return default


_CACHE_MAXSIZE = _env_maxsize(_DEFAULT_CACHE_MAXSIZE)
_cache: "OrderedDict[Tuple, OptimizedAccess]" = OrderedDict()
_cache_lock = threading.Lock()
_cache_hits = 0
_cache_misses = 0
_cache_evictions = 0


def table1_cache_info() -> Dict[str, int]:
    """Hit/miss/size counters for the Table I memo (monitoring/tests)."""
    with _cache_lock:
        return {"hits": _cache_hits, "misses": _cache_misses,
                "evictions": _cache_evictions,
                "size": len(_cache), "maxsize": _CACHE_MAXSIZE}


def clear_table1_cache() -> None:
    """Drop every memoized access and reset the counters."""
    global _cache_hits, _cache_misses, _cache_evictions
    with _cache_lock:
        _cache.clear()
        _cache_hits = 0
        _cache_misses = 0
        _cache_evictions = 0


def _build_access(d: Decomposition, f: IFunc, imin: int, imax: int) -> OptimizedAccess:
    if imin > imax:
        rule, fn = "empty", lambda d_, f_, lo, hi, p, w: Enumeration("empty")
        return OptimizedAccess(d, f, imin, imax, rule, fn)
    rule, fn = choose_rule(d, f, imin, imax)
    return OptimizedAccess(d, f, imin, imax, rule, fn)


def optimize_access(
    d: Decomposition, f: IFunc, imin: int, imax: int
) -> OptimizedAccess:
    """Compile one access: returns the optimized membership enumerator.

    Results are memoized on ``(d.cache_key(), f, imin, imax)`` — repeated
    queries for structurally identical (decomposition, access, range)
    triples are O(1) dict hits.
    """
    global _cache_hits, _cache_misses
    dkey = d.cache_key() if hasattr(d, "cache_key") else None
    if dkey is None:
        return _build_access(d, f, imin, imax)
    try:
        key = (dkey, f, imin, imax)
        hash(key)
    except TypeError:  # unhashable access function: build uncached
        return _build_access(d, f, imin, imax)
    with _cache_lock:
        hit = _cache.get(key)
        if hit is not None:
            _cache.move_to_end(key)
            _cache_hits += 1
            return hit
    acc = _build_access(d, f, imin, imax)
    with _cache_lock:
        global _cache_evictions
        _cache_misses += 1
        _cache[key] = acc
        while len(_cache) > _CACHE_MAXSIZE:
            _cache.popitem(last=False)
            _cache_evictions += 1
    return acc
