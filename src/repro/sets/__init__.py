"""Modify/Reside set machinery (paper Sections 2.8 and 3)."""

from .enumerators import (
    Enumeration,
    Segment,
    enum_block,
    enum_constant,
    enum_naive,
    enum_piecewise,
    enum_repeated_block,
    enum_repeated_scatter,
    enum_scatter_linear,
    enum_scatter_on_k,
    enum_trivial,
)
from .membership import Work, all_naive, modify_naive, reside_naive
from .table1 import OptimizedAccess, choose_rule, optimize_access

__all__ = [
    "Work",
    "modify_naive",
    "reside_naive",
    "all_naive",
    "Segment",
    "Enumeration",
    "enum_constant",
    "enum_block",
    "enum_repeated_block",
    "enum_repeated_scatter",
    "enum_scatter_linear",
    "enum_scatter_on_k",
    "enum_piecewise",
    "enum_naive",
    "enum_trivial",
    "OptimizedAccess",
    "optimize_access",
    "choose_rule",
]
