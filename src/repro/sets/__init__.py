"""Modify/Reside set machinery (paper Sections 2.8 and 3)."""

from .enumerators import (
    Enumeration,
    Segment,
    difference_segments,
    enum_block,
    enum_constant,
    enum_naive,
    enum_piecewise,
    enum_repeated_block,
    enum_repeated_scatter,
    enum_scatter_linear,
    enum_scatter_on_k,
    enum_trivial,
    intersect_segments,
    segment_elements,
    segments_from_indices,
)
from .membership import Work, all_naive, modify_naive, reside_naive
from .table1 import (
    OptimizedAccess,
    choose_rule,
    clear_table1_cache,
    optimize_access,
    table1_cache_info,
)

__all__ = [
    "Work",
    "modify_naive",
    "reside_naive",
    "all_naive",
    "Segment",
    "Enumeration",
    "enum_constant",
    "enum_block",
    "enum_repeated_block",
    "enum_repeated_scatter",
    "enum_scatter_linear",
    "enum_scatter_on_k",
    "enum_piecewise",
    "enum_naive",
    "enum_trivial",
    "OptimizedAccess",
    "optimize_access",
    "choose_rule",
    "segments_from_indices",
    "intersect_segments",
    "difference_segments",
    "segment_elements",
    "table1_cache_info",
    "clear_table1_cache",
]
