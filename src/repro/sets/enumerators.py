"""Closed-form set enumerators (paper Section 3, Theorems 1-3, Table I).

Each enumerator produces exactly the members of

    ``Modify_p = { i in [imin, imax] | proc(f(i)) = p }``

in increasing order, but — unlike the naive scan — without testing every
index in the range.  The enumerators return :class:`Enumeration` objects
whose ``segments`` are strided integer ranges, the direct counterpart of
the paper's generation functions ``gen_p(t)`` with bounds
``t_p,min .. t_p,max``; codegen turns each segment into a plain loop.

The :class:`~repro.sets.membership.Work` counters record what run-time
effort remains (Euclid steps, inverse evaluations, divisibility tests), so
benchmarks can reproduce the paper's overhead arguments quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.ifunc import AffineF, ConstantF, IFunc, ModularF, ceil_div, floor_div
from ..decomp.base import Decomposition
from ..decomp.block import Block
from ..decomp.blockscatter import BlockScatter
from ..decomp.replicated import Replicated, SingleOwner
from ..decomp.scatter import Scatter
from .membership import Work, modify_naive

__all__ = [
    "Segment",
    "Enumeration",
    "segments_from_indices",
    "intersect_segments",
    "difference_segments",
    "segment_elements",
    "enum_constant",
    "enum_block",
    "enum_repeated_block",
    "enum_repeated_scatter",
    "enum_scatter_linear",
    "enum_scatter_on_k",
    "enum_piecewise",
    "enum_naive",
    "enum_trivial",
]


@dataclass(frozen=True)
class Segment:
    """Inclusive strided range ``lo, lo+step, .., hi`` (``hi`` attained)."""

    lo: int
    hi: int
    step: int = 1

    def __post_init__(self):
        if self.step < 1:
            raise ValueError("step must be >= 1")

    def indices(self) -> range:
        return range(self.lo, self.hi + 1, self.step)

    def count(self) -> int:
        if self.lo > self.hi:
            return 0
        return (self.hi - self.lo) // self.step + 1

    def as_slice(self) -> slice:
        """The segment as a Python/NumPy strided slice (half-open stop)."""
        return slice(self.lo, self.hi + 1, self.step)

    def index_array(self):
        """The segment as an int64 index vector (NumPy strided range)."""
        import numpy as np

        return np.arange(self.lo, self.hi + 1, self.step, dtype=np.int64)


@dataclass
class Enumeration:
    """Result of one optimized enumeration: which rule fired and the
    strided segments that *are* ``Modify_p`` (or ``Reside_p``)."""

    rule: str
    segments: List[Segment] = field(default_factory=list)

    def indices(self) -> List[int]:
        out: List[int] = []
        for s in self.segments:
            out.extend(s.indices())
        return out

    def count(self) -> int:
        return sum(s.count() for s in self.segments)

    def slices(self) -> List[slice]:
        """The enumeration as strided slices — one NumPy basic-indexing
        view per segment (the vector executor's unit of work)."""
        return [s.as_slice() for s in self.segments]

    def index_array(self):
        """All member indices as one sorted int64 vector.

        Sorted ascending so that *every* node enumerating the same index
        set walks it in the same (lexicographic) order — the alignment
        property the vectorized message protocol relies on.
        """
        import numpy as np

        if not self.segments:
            return np.empty(0, dtype=np.int64)
        out = np.concatenate([s.index_array() for s in self.segments])
        return np.sort(out)

    def add(self, lo: int, hi: int, step: int = 1) -> None:
        if lo <= hi:
            self.segments.append(Segment(lo, hi, step))

    def sort(self) -> "Enumeration":
        self.segments.sort(key=lambda s: s.lo)
        return self

    def intersect(self, other: "Enumeration",
                  rule: Optional[str] = None) -> "Enumeration":
        """Members in both enumerations, as sorted disjoint segments."""
        out = Enumeration(rule or f"({self.rule})∩({other.rule})")
        out.segments = intersect_segments(self.segments, other.segments)
        return out

    def difference(self, other: "Enumeration",
                   rule: Optional[str] = None) -> "Enumeration":
        """Members of *self* not in *other*, as sorted disjoint segments."""
        out = Enumeration(rule or f"({self.rule})\\({other.rule})")
        out.segments = difference_segments(self.segments, other.segments)
        return out


# ---------------------------------------------------------------------------
# Segment set algebra (interior/boundary splitting)
#
# The overlap optimization needs Modify_p carved into the part whose reads
# are all locally resident (closed-form intersection of per-axis
# memberships) and the boundary remainder (set difference).  All three
# operations keep the sorted-lexicographic invariant the vectorized
# message protocol relies on: results are sorted ascending and disjoint.
# ---------------------------------------------------------------------------

def segments_from_indices(indices) -> List[Segment]:
    """Compress a sorted, duplicate-free index vector into minimal strided
    segments (greedy maximal runs of constant stride)."""
    import numpy as np

    idx = np.asarray(indices, dtype=np.int64)
    if idx.size == 0:
        return []
    if idx.size == 1:
        v = int(idx[0])
        return [Segment(v, v)]
    out: List[Segment] = []
    diffs = np.diff(idx)
    k = 0
    while k < idx.size:
        if k == idx.size - 1:
            v = int(idx[k])
            out.append(Segment(v, v))
            break
        step = int(diffs[k])
        j = k + 1
        while j < idx.size - 1 and int(diffs[j]) == step:
            j += 1
        # idx[k..j] is an arithmetic run with stride `step`
        out.append(Segment(int(idx[k]), int(idx[j]), step))
        k = j + 1
    return out


def _all_unit(segs: List[Segment]) -> bool:
    return all(s.step == 1 or s.lo == s.hi for s in segs)


def _merged_intervals(segs: List[Segment]) -> List[Tuple[int, int]]:
    """Sorted, coalesced (lo, hi) intervals of a unit-stride segment set."""
    out: List[Tuple[int, int]] = []
    for s in sorted(segs, key=lambda s: s.lo):
        if s.lo > s.hi:
            continue
        if out and s.lo <= out[-1][1] + 1:
            out[-1] = (out[-1][0], max(out[-1][1], s.hi))
        else:
            out.append((s.lo, s.hi))
    return out


def intersect_segments(a: List[Segment], b: List[Segment]) -> List[Segment]:
    """Sorted disjoint segments of ``set(a) ∩ set(b)``.

    Unit-stride inputs take the closed-form interval sweep (no
    materialization); strided inputs fall back to vectorized index-set
    intersection recompressed into minimal strided segments.
    """
    if not a or not b:
        return []
    if _all_unit(a) and _all_unit(b):
        ia, ib = _merged_intervals(a), _merged_intervals(b)
        out: List[Segment] = []
        i = j = 0
        while i < len(ia) and j < len(ib):
            lo = max(ia[i][0], ib[j][0])
            hi = min(ia[i][1], ib[j][1])
            if lo <= hi:
                out.append(Segment(lo, hi))
            if ia[i][1] < ib[j][1]:
                i += 1
            else:
                j += 1
        return out
    import numpy as np

    va = np.unique(np.concatenate([s.index_array() for s in a]))
    vb = np.unique(np.concatenate([s.index_array() for s in b]))
    return segments_from_indices(np.intersect1d(va, vb, assume_unique=True))


def difference_segments(a: List[Segment], b: List[Segment]) -> List[Segment]:
    """Sorted disjoint segments of ``set(a) \\ set(b)`` (same fast/general
    split as :func:`intersect_segments`)."""
    if not a:
        return []
    if not b:
        return sorted(a, key=lambda s: s.lo)
    if _all_unit(a) and _all_unit(b):
        ia, ib = _merged_intervals(a), _merged_intervals(b)
        out: List[Segment] = []
        j = 0
        for lo, hi in ia:
            cur = lo
            while j < len(ib) and ib[j][1] < cur:
                j += 1
            k = j
            while k < len(ib) and ib[k][0] <= hi:
                if ib[k][0] > cur:
                    out.append(Segment(cur, ib[k][0] - 1))
                cur = max(cur, ib[k][1] + 1)
                if cur > hi:
                    break
                k += 1
            if cur <= hi:
                out.append(Segment(cur, hi))
        return out
    import numpy as np

    va = np.unique(np.concatenate([s.index_array() for s in a]))
    vb = np.unique(np.concatenate([s.index_array() for s in b]))
    return segments_from_indices(np.setdiff1d(va, vb, assume_unique=True))


def segment_elements(segments: List[Segment], cap: int) -> List[int]:
    """Up to *cap* members of a sorted disjoint segment list, in order —
    for sampling witnesses without materializing a large set (used by
    the static verifier in :mod:`repro.analysis`)."""
    out: List[int] = []
    for seg in segments:
        for i in seg.indices():
            out.append(i)
            if len(out) >= cap:
                return out
    return out


# ---------------------------------------------------------------------------
# Theorem 1: constant access under any decomposition
# ---------------------------------------------------------------------------

def enum_constant(
    d: Decomposition, f: ConstantF, imin: int, imax: int, p: int, work: Work
) -> Enumeration:
    """Theorem 1: ``f(i) = c`` — the full range on ``proc(c)``, empty
    elsewhere.  One test, total."""
    e = Enumeration("thm1-constant")
    work.tests += 1
    if d.proc(f.c) == p:
        e.add(imin, imax)
        work.emitted += e.count()
    return e


# ---------------------------------------------------------------------------
# Degenerate decompositions
# ---------------------------------------------------------------------------

def enum_trivial(
    d: Decomposition, f: IFunc, imin: int, imax: int, p: int, work: Work
) -> Enumeration:
    """SingleOwner / Replicated: membership is independent of ``f``."""
    if isinstance(d, Replicated):
        e = Enumeration("replicated-all")
        e.add(imin, imax)
        work.emitted += e.count()
        return e
    if isinstance(d, SingleOwner):
        e = Enumeration("singleowner")
        work.tests += 1
        if d.owner == p:
            e.add(imin, imax)
            work.emitted += e.count()
        return e
    raise TypeError(f"enum_trivial does not handle {type(d).__name__}")


# ---------------------------------------------------------------------------
# Block decomposition (§3.2.ii): one preimage of the owned data interval
# ---------------------------------------------------------------------------

def enum_block(
    d: Block, f: IFunc, imin: int, imax: int, p: int, work: Work
) -> Enumeration:
    """Block: ``j in [max(imin, f⁻¹(b.p)), min(imax, f⁻¹(b.p + b - 1))]``
    — a single contiguous range per processor (``k`` eliminated)."""
    e = Enumeration("block")
    lo = d.b * p
    hi = min(d.b * p + d.b - 1, d.n - 1)
    if lo > hi:
        return e
    work.preimage_calls += 1
    for jmin, jmax in f.preimage(lo, hi, imin, imax):
        e.add(jmin, jmax)
        work.emitted += jmax - jmin + 1
    return e


# ---------------------------------------------------------------------------
# Theorem 2: block-scatter, Repeated Block form
# ---------------------------------------------------------------------------

def _course_range(
    d: BlockScatter, f: IFunc, imin: int, imax: int, p: int
) -> Tuple[int, int]:
    """Range of block indices ``t = p + k.pmax`` whose data interval can
    intersect the image of ``f`` (generalizing the paper's
    ``k_max = (f(imax) div b - p) div pmax`` to either monotone direction
    and to images not starting at 0)."""
    flo, fhi = f.image_bounds(imin, imax)
    flo = max(flo, 0)
    fhi = min(fhi, d.n - 1)
    if flo > fhi:
        return (0, -1)
    t_lo = floor_div(flo, d.b)
    t_hi = floor_div(fhi, d.b)
    kmin = max(0, ceil_div(t_lo - p, d.pmax))
    kmax = floor_div(t_hi - p, d.pmax)
    return (kmin, kmax)


def enum_repeated_block(
    d: BlockScatter, f: IFunc, imin: int, imax: int, p: int, work: Work
) -> Enumeration:
    """Theorem 2 (*Repeated Block*): one contiguous ``j`` range per course
    ``k``, obtained from the preimage of each owned data block."""
    e = Enumeration("thm2-repeated-block")
    kmin, kmax = _course_range(d, f, imin, imax, p)
    for k in range(kmin, kmax + 1):
        t = p + k * d.pmax
        lo = d.b * t
        hi = min(lo + d.b - 1, d.n - 1)
        if lo > hi:
            continue
        work.iterations += 1
        work.preimage_calls += 1
        for jmin, jmax in f.preimage(lo, hi, imin, imax):
            e.add(jmin, jmax)
            work.emitted += jmax - jmin + 1
    return e.sort()


# ---------------------------------------------------------------------------
# §3.2.i: block-scatter, Repeated Scatter form
# ---------------------------------------------------------------------------

def enum_repeated_scatter(
    d: BlockScatter, f: IFunc, imin: int, imax: int, p: int, work: Work
) -> Enumeration:
    """The *Repeated Scatter* rewriting of Theorem 2 (§3.2.i): iterate the
    ``b`` offsets of the owned block position; per offset, the courses
    ``k`` with ``f⁻¹(t + b.k.pmax) ∈ Z`` are found — in closed form via a
    congruence on ``k`` for affine ``f``, or by divisibility testing
    otherwise.  Favourable when ``b <= f(imax)/(2.pmax)``."""
    e = Enumeration("repeated-scatter")
    kmin, kmax = _course_range(d, f, imin, imax, p)
    if kmax < kmin:
        return e
    stride = d.b * d.pmax
    pts: List[int] = []
    if isinstance(f, AffineF) and abs(f.a) != 1:
        from ..diophantine.euclid import extended_euclid

        a = abs(f.a)
        # stride.k ≡ (c - t) (mod a): gcd and Bézout once per access —
        # the paper's "gcd and C calculation need only be done once".
        res = extended_euclid(stride % a if stride % a else a, a)
        work.euclid_steps += res.steps
        g = res.g
        for off in range(d.b):
            t = d.b * p + off
            work.iterations += 1
            rhs = (f.c - t) % a
            if rhs % g:
                continue  # no course hits an integer preimage
            # particular solution of stride.k ≡ c - t (mod a)
            k0 = (res.x * (rhs // g)) % (a // g)
            for k in range(kmin + (k0 - kmin) % (a // g), kmax + 1, a // g):
                v = t + k * stride
                if v >= d.n:
                    break
                i, r = divmod(v - f.c, f.a)
                if r == 0 and imin <= i <= imax:
                    pts.append(i)
                    work.emitted += 1
    else:
        for off in range(d.b):
            t = d.b * p + off
            for k in range(kmin, kmax + 1):
                v = t + k * stride
                if v >= d.n:
                    break
                work.iterations += 1
                work.tests += 1
                for i in f.solve(v, imin, imax):
                    pts.append(i)
                    work.emitted += 1
    for i in sorted(pts):
        e.add(i, i)
    return e


# ---------------------------------------------------------------------------
# Theorem 3: scatter with linear access via diophantine solve
# ---------------------------------------------------------------------------

def enum_scatter_linear(
    d: Scatter, f: AffineF, imin: int, imax: int, p: int, work: Work
) -> Enumeration:
    """Theorem 3: ``f(i) = a.i + c`` under scatter — the solutions form the
    progression ``gen_p(t) = x_p + (pmax/gcd(a, pmax)).t``.

    Corollary 1 (``pmax mod a = 0``) and Corollary 2 (``a mod pmax = 0``)
    are the same progression with simplified constants; the fired rule is
    tagged accordingly so benchmarks can report them separately.
    """
    from ..diophantine.linear import solve_scatter_congruence

    if d.pmax % abs(f.a) == 0:
        rule = "thm3-cor1"  # pmax mod a = 0: gen(t) = (p - c + pmax.t)/a
    elif abs(f.a) % d.pmax == 0:
        rule = "thm3-cor2"  # a mod pmax = 0: single active processor
    else:
        rule = "thm3-linear"
    sol = solve_scatter_congruence(f.a, f.c, d.pmax, p)
    e = Enumeration(rule)
    if sol is None:
        work.euclid_steps += 1  # the failed solvability check still ran
        return e
    work.euclid_steps += sol.euclid_steps
    # Clip also to indices whose image lies inside the data range [0, n).
    rngs = f.preimage(0, d.n - 1, imin, imax)
    work.preimage_calls += 1
    for rlo, rhi in rngs:
        pts = sol.solutions_in(rlo, rhi)
        if pts:
            e.add(pts[0], pts[-1], sol.stride)
            work.emitted += len(pts)
    return e


# ---------------------------------------------------------------------------
# §3.2 closing observation: enumerate on k (scatter, monotone non-linear f)
# ---------------------------------------------------------------------------

def enum_scatter_on_k(
    d: Scatter, f: IFunc, imin: int, imax: int, p: int, work: Work
) -> Enumeration:
    """Scatter with monotone non-linear ``f``: enumerate the *data* values
    ``v = p + k.pmax`` and test ``f(i) = v`` for integer ``i`` — sampling
    rate ``pmax`` instead of ``df/di``, an improvement of
    ``pmax/(df/di)`` when ``df/di < pmax``."""
    e = Enumeration("enum-on-k")
    flo, fhi = f.image_bounds(imin, imax)
    flo = max(flo, 0)
    fhi = min(fhi, d.n - 1)
    pts: List[int] = []
    if flo <= fhi:
        # first v >= flo with v ≡ p (mod pmax); flo >= 0 keeps v >= 0
        v = p + ceil_div(flo - p, d.pmax) * d.pmax
        while v <= fhi:
            work.iterations += 1
            work.preimage_calls += 1
            for i in f.solve(v, imin, imax):
                pts.append(i)
                work.emitted += 1
            v += d.pmax
    for i in sorted(pts):
        e.add(i, i)
    return e


# ---------------------------------------------------------------------------
# §3.3: piece-wise monotonic (modular) access
# ---------------------------------------------------------------------------

def enum_piecewise(
    d: Decomposition,
    f: ModularF,
    imin: int,
    imax: int,
    p: int,
    work: Work,
    piece_enum,
) -> Enumeration:
    """§3.3: split ``[imin, imax]`` at the breakpoints of
    ``f(i) = g(i) mod z + d`` and run *piece_enum* on each monotone piece
    (``f = g - z.k + d``), concatenating the per-piece segments."""
    e = Enumeration("piecewise")
    for seg_lo, seg_hi, piece in f.pieces(imin, imax):
        work.iterations += 1
        sub = piece_enum(d, piece, seg_lo, seg_hi, p, work)
        e.segments.extend(sub.segments)
        e.rule = f"piecewise({sub.rule})"
    return e.sort()


# ---------------------------------------------------------------------------
# Fallback
# ---------------------------------------------------------------------------

def enum_naive(
    d: Decomposition, f: IFunc, imin: int, imax: int, p: int, work: Work
) -> Enumeration:
    """No optimization applies: the full run-time scan."""
    e = Enumeration("naive")
    for i in modify_naive(d, f, imin, imax, p, work):
        e.add(i, i)
    return e
