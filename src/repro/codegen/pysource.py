"""Emission of real Python node-program source (the paper's "automatic
parallel program generation").

The emitted text mirrors the paper's pseudo-code templates (Sections
2.9-2.10, 4): one SPMD program parameterized by ``p = my_node``, loop
bounds produced by the Table I generation functions, placement functions
inlined as arithmetic.  The source is compiled with :func:`compile` and
executed on the simulated machines — tests cross-check it element-for-
element against the interpreter templates.

Loop segments are computed *at node start-up* by the closed-form
enumerators (``RT.segments``), matching Section 4's observation that each
processor best computes its own ``gcd``/``C(a, pmax)``-derived constants
at run time; there is no full-range membership scan anywhere in the
generated code.
"""

from __future__ import annotations

import textwrap
from typing import Callable, Dict, List, Tuple

from ..core.expr import Ref
from ..decomp.replicated import Replicated
from .exprsrc import (
    CodegenError,
    expr_src,
    ifunc_src,
    local_src,
    proc_src,
    vexpr_src,
)
from .gensrc import SUPPORT_HELPERS, VECTOR_HELPERS, segments_source
from .plan import SPMDPlan

__all__ = ["RuntimeTables", "emit_distributed_source", "emit_shared_source",
           "compile_distributed", "compile_shared"]


class RuntimeTables:
    """Per-plan runtime support the generated code receives as ``RT``.

    ``segments(key, p)`` evaluates the Table I generation function for one
    access on processor *p* — closed-form work proportional to the number
    of segments, never to the loop range.
    """

    def __init__(self, plan: SPMDPlan):
        self.plan = plan
        self._acc = {"write": plan.modify}
        for read in plan.reads:
            self._acc[f"read{read.pos}"] = read.reside

    def segments(self, key: str, p: int) -> List[Tuple[int, int, int]]:
        if key == "write" and self.plan.write_replicated:
            return [(self.plan.imin, self.plan.imax, 1)]
        enum = self._acc[key].enumerate(p)
        return [(s.lo, s.hi, s.step) for s in enum.segments]

    def index_array(self, key: str, p: int):
        """The same membership as ``segments`` materialized as one sorted
        int64 index vector (the vector backend's working set)."""
        import numpy as np

        if key == "write" and self.plan.write_replicated:
            return np.arange(self.plan.imin, self.plan.imax + 1,
                             dtype=np.int64)
        return self._acc[key].enumerate(p).index_array()

    def rule(self, key: str) -> str:
        return self._acc[key].rule

    def interior_index(self, p: int):
        """Sorted int64 vector of node *p*'s interior loop indices (the
        `split-interior` pass product; empty when the plan has no split —
        the overlap program then degrades to the vector schedule)."""
        import numpy as np

        ir = getattr(self.plan, "ir", None)
        split = getattr(ir, "interior_split", None) if ir is not None else None
        if split is None or p not in split.per_node:
            return np.empty(0, dtype=np.int64)
        segs = split.per_node[p].interior[0]
        if not segs:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([s.index_array() for s in segs])


def _ref_temp_render(plan: SPMDPlan) -> Callable[[Ref], str]:
    by_id = {id(read.ref): read.temp for read in plan.reads}

    def render(ref: Ref) -> str:
        return by_id[id(ref)]

    return render


def emit_distributed_source(plan: SPMDPlan, backend: str = "scalar") -> str:
    """Source of the distributed-memory node program for *plan*.

    ``backend="vector"`` emits the batched NumPy variant (one message per
    (read, peer) pair); ``backend="overlap"`` emits the split-interior
    variant (non-blocking receives, interior computed while messages are
    in flight).  Raises :class:`CodegenError` where only the scalar
    template applies (replicated writes, opaque index functions).
    """
    if backend not in ("scalar", "vector", "overlap"):
        raise ValueError(f"unknown backend {backend!r}")
    if backend == "vector":
        return _emit_distributed_vector(plan)
    if backend == "overlap":
        return _emit_distributed_overlap(plan)
    c = plan.clause
    lines: List[str] = []
    w = lines.append
    w(f"def node_program(ctx, RT):")
    w(f"    # SPMD node program generated from clause {c.name!r}")
    w(f"    # write: {plan.write_name}[{plan.write_func.name}] "
      f"under {plan.write_dec!r}  [rule {plan.modify.rule}]")
    for read in plan.reads:
        w(f"    # read{read.pos}: {read.name}[{read.func.name}] "
          f"under {read.dec!r}  [rule {read.reside.rule}]")
    w(f"    p = ctx.p")
    arrays = {plan.write_name}
    for read in plan.reads:
        arrays.add(read.name)
    for name in sorted(arrays):
        w(f"    {name}_loc = ctx.mem[{name!r}]")
    w("")

    # ---- Table I generation functions, inlined where closed-form --------
    w(f"    # membership segments (Table I generation functions)")
    for read in plan.reads:
        if read.always_local:
            continue
        for line in segments_source(read.reside, f"segs_r{read.pos}",
                                    f"read{read.pos}"):
            w(f"    {line}")
    if plan.write_replicated:
        w(f"    segs_w = [({plan.imin}, {plan.imax}, 1)]  # replicated write")
    else:
        for line in segments_source(plan.modify, "segs_w", "write"):
            w(f"    {line}")
    w("")

    # ---- send phase -----------------------------------------------------
    for read in plan.reads:
        if read.always_local:
            w(f"    # read{read.pos} ({read.name}) is replicated: no sends")
            continue
        g_src = ifunc_src(read.func)
        f_of_i = ifunc_src(plan.write_func)
        load = f"{read.name}_loc[{local_src(read.dec, g_src)}]"
        w(f"    # send phase for read{read.pos}: elements resident here,")
        w(f"    # needed by the writer of {plan.write_name}[f(i)]")
        w(f"    for lo, hi, st in segs_r{read.pos}:")
        w(f"        for i in range(lo, hi + 1, st):")
        if plan.write_replicated:
            w(f"            for q in range({plan.pmax}):")
            w(f"                if q != p:")
            w(f"                    ctx.send(q, ({read.pos}, i), {load})")
        else:
            w(f"            q = {proc_src(plan.write_dec, f_of_i)}")
            w(f"            if q != p:")
            w(f"                ctx.send(q, ({read.pos}, i), {load})")
        w("")

    # ---- update phase -----------------------------------------------------
    render = _ref_temp_render(plan)
    f_src = ifunc_src(plan.write_func)
    w(f"    # update phase: i in Modify_p; writes buffered until the loop")
    w(f"    # ends so no iteration observes another's write (// premise)")
    w(f"    pending = []")
    w(f"    for lo, hi, st in segs_w:")
    w(f"        for i in range(lo, hi + 1, st):")
    for read in plan.reads:
        g_src = ifunc_src(read.func)
        load = f"{read.name}_loc[{local_src(read.dec, g_src)}]"
        if read.always_local:
            w(f"            {read.temp} = {load}")
        else:
            w(f"            src{read.pos} = {proc_src(read.dec, g_src)}")
            w(f"            if src{read.pos} == p:")
            w(f"                {read.temp} = {load}")
            w(f"            else:")
            w(f"                {read.temp} = ctx.note_received(")
            w(f"                    (yield ctx.recv(src{read.pos}, ({read.pos}, i))))")
    indent = "            "
    if c.guard is not None:
        w(f"{indent}if not ({expr_src(c.guard, render)}):")
        w(f"{indent}    continue")
    slot = f_src if plan.write_replicated else local_src(plan.write_dec, f_src)
    w(f"{indent}pending.append(({slot}, {expr_src(c.rhs, render)}))")
    w(f"    for slot, value in pending:")
    w(f"        ctx.update({plan.write_name!r}, slot, value)")
    w("")
    w(f"    yield ctx.barrier()")
    return "\n".join(lines) + "\n"


def _emit_distributed_vector(plan: SPMDPlan) -> str:
    """Vector variant of the §2.10 node program: memberships become sorted
    strided index vectors, placement arithmetic broadcasts over them, and
    each (read, peer) transfer is a single value-vector message tagged
    ``("vec", pos)`` — positions are reconstructed from the shared
    lexicographic enumeration order, never shipped."""
    c = plan.clause
    if plan.write_replicated:
        raise CodegenError(
            "replicated write: per-copy broadcast keeps the scalar template"
        )
    lines: List[str] = []
    w = lines.append
    w(f"def node_program(ctx, RT):")
    w(f"    # vectorized SPMD node program generated from clause {c.name!r}")
    w(f"    # write: {plan.write_name}[{plan.write_func.name}] "
      f"under {plan.write_dec!r}  [rule {plan.modify.rule}]")
    for read in plan.reads:
        w(f"    # read{read.pos}: {read.name}[{read.func.name}] "
          f"under {read.dec!r}  [rule {read.reside.rule}]")
    w(f"    p = ctx.p")
    arrays = {plan.write_name}
    for read in plan.reads:
        arrays.add(read.name)
    for name in sorted(arrays):
        w(f"    {name}_loc = ctx.mem[{name!r}]")
    w("")

    w(f"    # membership segments (Table I generation functions)")
    for read in plan.reads:
        if read.always_local:
            continue
        for line in segments_source(read.reside, f"segs_r{read.pos}",
                                    f"read{read.pos}"):
            w(f"    {line}")
    for line in segments_source(plan.modify, "segs_w", "write"):
        w(f"    {line}")
    w("")

    f_of_i = ifunc_src(plan.write_func)
    for read in plan.reads:
        if read.always_local:
            w(f"    # read{read.pos} ({read.name}) is replicated: no sends")
            continue
        g_src = ifunc_src(read.func)
        w(f"    # send phase for read{read.pos}: one value vector per "
          f"destination writer")
        w(f"    i = _vec_index(segs_r{read.pos})")
        w(f"    if i.size:")
        w(f"        ctx.stats.iterations += int(i.size)")
        w(f"        q = _vec_full({proc_src(plan.write_dec, f_of_i)}, "
          f"i.size, _np.int64)")
        w(f"        vals = _vec_full({read.name}_loc"
          f"[{local_src(read.dec, g_src)}], i.size, _np.float64)")
        w(f"        for dest in _np.unique(q):")
        w(f"            if int(dest) != p:")
        w(f"                ctx.send(int(dest), ('vec', {read.pos}), "
          f"_np.ascontiguousarray(vals[q == dest]))")
        w("")

    def temp(ref: Ref) -> str:
        return next(r.temp for r in plan.reads if r.ref is ref)

    w(f"    # update phase: Modify_p as one index vector, reads assembled")
    w(f"    # from local gathers plus one receive per source")
    w(f"    i = _vec_index(segs_w)")
    w(f"    ctx.stats.iterations += int(i.size)")
    w(f"    if i.size:")
    w(f"        n = int(i.size)")
    for read in plan.reads:
        g_src = ifunc_src(read.func)
        if read.always_local:
            w(f"        {read.temp} = _vec_full({read.name}_loc"
              f"[{local_src(read.dec, g_src)}], n, _np.float64)")
            continue
        w(f"        src{read.pos} = _vec_full("
          f"{proc_src(read.dec, g_src)}, n, _np.int64)")
        w(f"        {read.temp} = _vec_gather({read.name}_loc, _vec_full("
          f"{local_src(read.dec, g_src)}, n, _np.int64))")
        w(f"        for s in _np.unique(src{read.pos}[src{read.pos} != p]):")
        w(f"            {read.temp}[src{read.pos} == s] = _np.asarray(")
        w(f"                ctx.note_received((yield ctx.recv(int(s), "
          f"('vec', {read.pos})))), dtype=_np.float64)")
    slot = local_src(plan.write_dec, f_of_i)
    w(f"        slot = _vec_full({slot}, n, _np.int64)")
    w(f"        value = _vec_full({vexpr_src(c.rhs, temp)}, n, _np.float64)")
    if c.guard is not None:
        w(f"        keep = _np.broadcast_to(_np.asarray("
          f"{vexpr_src(c.guard, temp)}, dtype=bool), (n,))")
        w(f"        slot, value = slot[keep], value[keep]")
    w(f"        {plan.write_name}_loc[slot] = value")
    w(f"        ctx.stats.local_updates += int(value.size)")
    w("")
    w(f"    yield ctx.barrier()")
    return "\n".join(lines) + "\n"


def _emit_distributed_overlap(plan: SPMDPlan) -> str:
    """Overlapped variant of the §2.10 node program.

    Same batched messages as the vector variant, but receives are
    *posted* (``ctx.irecv``) instead of awaited: the interior of
    ``Modify_p`` — lanes whose reads are all locally resident, from the
    `split-interior` pass via ``RT.interior_index(p)`` — is computed and
    committed while messages are in flight, then the receives are
    drained with ``ctx.probe`` and the boundary remainder finishes.
    Local gathers happen before any commit, so a read of the written
    array still observes pre-state; element-wise evaluation over lane
    subsets keeps the result bit-identical to the other backends."""
    c = plan.clause
    if plan.write_replicated:
        raise CodegenError(
            "replicated write: per-copy broadcast keeps the scalar template"
        )
    lines: List[str] = []
    w = lines.append
    w(f"def node_program(ctx, RT):")
    w(f"    # overlapped SPMD node program generated from clause {c.name!r}")
    w(f"    # write: {plan.write_name}[{plan.write_func.name}] "
      f"under {plan.write_dec!r}  [rule {plan.modify.rule}]")
    for read in plan.reads:
        w(f"    # read{read.pos}: {read.name}[{read.func.name}] "
          f"under {read.dec!r}  [rule {read.reside.rule}]")
    w(f"    p = ctx.p")
    arrays = {plan.write_name}
    for read in plan.reads:
        arrays.add(read.name)
    for name in sorted(arrays):
        w(f"    {name}_loc = ctx.mem[{name!r}]")
    w("")

    w(f"    # membership segments (Table I generation functions)")
    for read in plan.reads:
        if read.always_local:
            continue
        for line in segments_source(read.reside, f"segs_r{read.pos}",
                                    f"read{read.pos}"):
            w(f"    {line}")
    for line in segments_source(plan.modify, "segs_w", "write"):
        w(f"    {line}")
    w("")

    f_of_i = ifunc_src(plan.write_func)
    for read in plan.reads:
        if read.always_local:
            w(f"    # read{read.pos} ({read.name}) is replicated: no sends")
            continue
        g_src = ifunc_src(read.func)
        w(f"    # send phase for read{read.pos}: one value vector per "
          f"destination writer")
        w(f"    i = _vec_index(segs_r{read.pos})")
        w(f"    if i.size:")
        w(f"        ctx.stats.iterations += int(i.size)")
        w(f"        q = _vec_full({proc_src(plan.write_dec, f_of_i)}, "
          f"i.size, _np.int64)")
        w(f"        vals = _vec_full({read.name}_loc"
          f"[{local_src(read.dec, g_src)}], i.size, _np.float64)")
        w(f"        for dest in _np.unique(q):")
        w(f"            if int(dest) != p:")
        w(f"                ctx.send(int(dest), ('vec', {read.pos}), "
          f"_np.ascontiguousarray(vals[q == dest]))")
        w("")

    def temp(ref: Ref) -> str:
        return next(r.temp for r in plan.reads if r.ref is ref)

    w(f"    # update phase: gather local reads (pre-state), post the")
    w(f"    # receives, compute the interior while messages are in flight,")
    w(f"    # drain, finish the boundary")
    w(f"    i = _vec_index(segs_w)")
    w(f"    ctx.stats.iterations += int(i.size)")
    w(f"    if i.size:")
    w(f"        n = int(i.size)")
    w(f"        _pending = []")
    for read in plan.reads:
        g_src = ifunc_src(read.func)
        if read.always_local:
            w(f"        {read.temp} = _vec_full({read.name}_loc"
              f"[{local_src(read.dec, g_src)}], n, _np.float64)")
            continue
        w(f"        src{read.pos} = _vec_full("
          f"{proc_src(read.dec, g_src)}, n, _np.int64)")
        w(f"        {read.temp} = _vec_gather({read.name}_loc, _vec_full("
          f"{local_src(read.dec, g_src)}, n, _np.int64))")
        w(f"        for s in _np.unique(src{read.pos}[src{read.pos} != p]):")
        w(f"            _h = yield ctx.irecv(int(s), ('vec', {read.pos}))")
        w(f"            _pending.append((_h, {read.temp}, "
          f"src{read.pos} == int(s)))")
    slot = local_src(plan.write_dec, f_of_i)
    w(f"        slot = _vec_full({slot}, n, _np.int64)")
    w(f"        _interior = _np.isin(i, RT.interior_index(p))")
    w(f"        for _lanes in (_interior, ~_interior):")
    w(f"            ctx.charge_elements(int(_np.count_nonzero(_lanes)))")
    w(f"            if _lanes.any():")
    w(f"                value = _vec_full({vexpr_src(c.rhs, temp)}, "
      f"n, _np.float64)")
    if c.guard is not None:
        w(f"                _lanes = _lanes & _np.broadcast_to(_np.asarray("
          f"{vexpr_src(c.guard, temp)}, dtype=bool), (n,))")
    w(f"                {plan.write_name}_loc[slot[_lanes]] = value[_lanes]")
    w(f"                ctx.stats.local_updates += "
      f"int(_np.count_nonzero(_lanes))")
    w(f"            if _pending is not None:")
    w(f"                # drain the posted receives before the boundary")
    w(f"                while _pending:")
    w(f"                    _done = yield ctx.probe("
      f"[h for h, _, _ in _pending])")
    w(f"                    for _k, (_h, _t, _m) in enumerate(_pending):")
    w(f"                        if _h is _done:")
    w(f"                            _t[_m] = _np.asarray(ctx.note_received(")
    w(f"                                _done.payload), dtype=_np.float64)")
    w(f"                            del _pending[_k]")
    w(f"                            break")
    w(f"                _pending = None")
    w("")
    w(f"    yield ctx.barrier()")
    return "\n".join(lines) + "\n"


def _emit_shared_vector(plan: SPMDPlan) -> str:
    """Vector variant of the §2.9 phase: the whole ``Modify_p`` walk
    becomes one gather / evaluate / fancy-store batch; the returned write
    buffer holds a single ``(name, index_vector, value_vector)`` entry."""
    c = plan.clause

    def render(ref: Ref) -> str:
        read = next(r for r in plan.reads if r.ref is ref)
        return f"env[{read.name!r}][{ifunc_src(read.func)}]"

    lines: List[str] = []
    w = lines.append
    w(f"def node_phase(p, env, RT):")
    w(f"    # vectorized shared-memory SPMD phase for clause {c.name!r}")
    w(f"    # forall i in Modify_p, as one strided-gather batch")
    if plan.write_replicated:
        w(f"    segs_w = [({plan.imin}, {plan.imax}, 1)]  # replicated write")
    else:
        for line in segments_source(plan.modify, "segs_w", "write"):
            w(f"    {line}")
    w(f"    i = _vec_index(segs_w)")
    if c.guard is not None:
        w(f"    if i.size:")
        w(f"        keep = _np.broadcast_to(_np.asarray("
          f"{vexpr_src(c.guard, render)}, dtype=bool), i.shape)")
        w(f"        i = i[keep]")
    w(f"    if i.size == 0:")
    w(f"        return []")
    w(f"    value = _vec_full({vexpr_src(c.rhs, render)}, "
      f"int(i.size), _np.float64)")
    w(f"    return [({plan.write_name!r}, "
      f"{ifunc_src(plan.write_func)}, value)]")
    return "\n".join(lines) + "\n"


def emit_shared_source(plan: SPMDPlan, backend: str = "scalar") -> str:
    """Source of the shared-memory phase function (Section 2.9 template).

    ``backend="vector"`` emits the batched NumPy variant; its write
    buffer holds index/value *vectors* instead of per-element tuples.
    """
    if backend not in ("scalar", "vector"):
        raise ValueError(f"unknown backend {backend!r}")
    if backend == "vector":
        return _emit_shared_vector(plan)
    c = plan.clause

    def render(ref: Ref) -> str:
        # shared memory: direct global addressing
        read = next(r for r in plan.reads if r.ref is ref)
        return f"env[{read.name!r}][{ifunc_src(read.func)}]"

    lines: List[str] = []
    w = lines.append
    w(f"def node_phase(p, env, RT):")
    w(f"    # shared-memory SPMD phase generated from clause {c.name!r}")
    w(f"    # forall i in Modify_p do {plan.write_name}[f(i)] := Expr(...) od")
    if plan.write_replicated:
        w(f"    segs_w = [({plan.imin}, {plan.imax}, 1)]  # replicated write")
    else:
        for line in segments_source(plan.modify, "segs_w", "write"):
            w(f"    {line}")
    w(f"    writes = []")
    w(f"    for lo, hi, st in segs_w:")
    w(f"        for i in range(lo, hi + 1, st):")
    indent = "            "
    if c.guard is not None:
        w(f"{indent}if not ({expr_src(c.guard, render)}):")
        w(f"{indent}    continue")
    w(f"{indent}writes.append(({plan.write_name!r}, "
      f"{ifunc_src(plan.write_func)}, {expr_src(c.rhs, render)}))")
    w(f"    return writes")
    return "\n".join(lines) + "\n"


def _exec_source(source: str, entry: str, helpers: str = SUPPORT_HELPERS):
    namespace: Dict[str, object] = {}
    full = helpers + "\n\n" + source
    code = compile(full, f"<generated {entry}>", "exec")
    exec(code, namespace)  # noqa: S102 - generated by us, from our own AST
    return namespace[entry]


def compile_distributed(plan: SPMDPlan, backend: str = "scalar"):
    """Emit + compile the distributed node program.

    Returns ``(source, factory)`` where ``factory(ctx)`` yields a node
    generator (the RT tables are bound in).  ``backend="vector"`` and
    ``backend="overlap"`` fall back to the scalar template when no
    batched form exists (replicated writes, opaque index functions) —
    recorded as a note on the plan's trace.
    """
    helpers = SUPPORT_HELPERS
    if backend in ("vector", "overlap"):
        try:
            source = emit_distributed_source(plan, backend=backend)
            helpers = SUPPORT_HELPERS + "\n\n" + VECTOR_HELPERS
        except CodegenError as exc:
            source = emit_distributed_source(plan)
            trace = getattr(plan, "trace", None)
            if trace is not None:
                trace.note(f"emitted source for backend={backend!r} fell "
                           f"back to the scalar template: {exc}")
    else:
        source = emit_distributed_source(plan, backend=backend)
    fn = _exec_source(source, "node_program", helpers)
    rt = RuntimeTables(plan)
    return source, (lambda ctx: fn(ctx, rt))


def compile_shared(plan: SPMDPlan, backend: str = "scalar"):
    """Emit + compile the shared-memory phase function.

    Returns ``(source, phase)`` where ``phase(p, env)`` gives the write
    buffer for node *p* (index/value vectors under ``backend="vector"``;
    ``backend="overlap"`` has no shared-memory meaning and aliases the
    vector form).
    """
    helpers = SUPPORT_HELPERS
    if backend == "overlap":
        trace = getattr(plan, "trace", None)
        if trace is not None:
            trace.note("backend='overlap' on shared memory: no messages "
                       "to overlap; emitting the vector phase")
        backend = "vector"
    if backend == "vector":
        try:
            source = emit_shared_source(plan, backend="vector")
            helpers = SUPPORT_HELPERS + "\n\n" + VECTOR_HELPERS
        except CodegenError as exc:
            source = emit_shared_source(plan)
            trace = getattr(plan, "trace", None)
            if trace is not None:
                trace.note("emitted source for backend='vector' fell "
                           f"back to the scalar template: {exc}")
    else:
        source = emit_shared_source(plan, backend=backend)
    fn = _exec_source(source, "node_phase", helpers)
    rt = RuntimeTables(plan)
    return source, (lambda p, env: fn(p, env, rt))
