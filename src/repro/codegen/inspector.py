"""Inspector/executor generation for indirect accesses (paper §3).

Section 3 concedes that complete compile-time reduction "is not always
possible due to the fact that the functions involved either depend on
values of the array elements — which are generally only known at
run-time".  The contemporary answer — due to Koelbel/Mehrotra's Kali
(cited by the paper) and Saltz's PARTI — is the *inspector/executor*
split, which we implement for clauses with indirection:

    ``∆(i) // A[i] := Expr(B[T[i]], ...)``

* **inspector** (runs once, O(domain)): with the index table ``T`` known
  at run time, compute each node's gather lists — which locally-owned
  ``B`` slots every other node will need, and, per owned iteration,
  whether its operand is local or arrives in a neighbour's packed
  message (and at which offset);
* **executor** (runs per time step, reusable): one *coalesced* message
  per communicating pair, then purely local evaluation — no tests, no
  per-element envelopes.

The index table ``T`` is replicated (the classic setting: the
communication structure, e.g. a mesh, is known to every node; a
distributed table would need a second inspector round).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

import numpy as np

from ..core.clause import Clause, Ordering
from ..core.expr import Ref
from ..decomp.base import Decomposition
from ..machine.distributed import DistributedMachine, NodeContext
from ..sets.table1 import optimize_access
from .dist_tmpl import _eval_fetched

__all__ = ["IndirectPlan", "CommSchedule", "compile_indirect",
           "build_schedule", "run_executor"]


@dataclass
class IndirectPlan:
    """Compiled shape of an indirect clause."""

    clause: Clause
    write_dec: Decomposition
    read_dec: Decomposition
    read_ref: Ref
    table: np.ndarray
    imin: int
    imax: int
    pmax: int


def compile_indirect(
    clause: Clause, decomps: Dict[str, Decomposition]
) -> IndirectPlan:
    """Validate ``A[i] := Expr(B[T[i]])``-shaped clauses.

    The indirect read is recognized by its
    :class:`~repro.core.ifunc.IndirectF` access function, whose run-time
    table drives the inspector.  The table is conceptually replicated —
    every node knows the communication structure, the classic
    inspector/executor setting.
    """
    from ..core.ifunc import AffineF, IndirectF

    if clause.ordering is not Ordering.PAR:
        raise ValueError("inspector/executor applies to // clauses")
    if clause.domain.dim != 1:
        raise ValueError("indirect generation is 1-D")
    wf = clause.lhs.scalar_func()
    if not (isinstance(wf, AffineF) and wf.a == 1 and wf.c == 0):
        raise ValueError("indirect template requires identity writes A[i]")
    reads = list(clause.reads())
    indirect = [r for r in reads if isinstance(r.scalar_func(), IndirectF)]
    if len(indirect) != 1:
        raise ValueError(
            f"clause must contain exactly one IndirectF read "
            f"(found {len(indirect)})"
        )
    if len(reads) != 1:
        raise ValueError(
            "the indirect template supports a single read operand"
        )
    ref = indirect[0]
    imin, imax = clause.domain.bounds.scalar()
    table = ref.scalar_func().table
    if imax >= len(table):
        raise ValueError(
            f"index table of length {len(table)} does not cover the "
            f"domain {imin}:{imax}"
        )
    return IndirectPlan(
        clause=clause,
        write_dec=decomps[clause.lhs.name],
        read_dec=decomps[ref.name],
        read_ref=ref,
        table=table,
        imin=imin,
        imax=imax,
        pmax=decomps[clause.lhs.name].pmax,
    )


@dataclass
class CommSchedule:
    """The inspector's product: a reusable communication schedule.

    For every node ``p``:

    * ``send[p][q]``   — local ``B`` slots to pack into the message p→q;
    * ``recv_from[p]`` — ordered list of source nodes;
    * ``ops[p]``       — per owned iteration ``i``: the write slot and
      either ``("local", slot)`` or ``("msg", src, offset)``.
    """

    plan: IndirectPlan
    send: List[Dict[int, List[int]]] = field(default_factory=list)
    recv_from: List[List[int]] = field(default_factory=list)
    ops: List[List[Tuple[int, int, Tuple]]] = field(default_factory=list)

    def total_elements(self) -> int:
        return sum(len(v) for node in self.send for v in node.values())

    def message_count(self) -> int:
        return sum(len(node) for node in self.send)


def build_schedule(
    plan: IndirectPlan, table: Optional[np.ndarray] = None
) -> CommSchedule:
    """THE INSPECTOR: O(domain) once the index table is known.

    Pass a new *table* to re-inspect after the indirection pattern
    changed (e.g. mesh refinement); by default the plan's own table is
    used.
    """
    if table is None:
        table = plan.table
    dA, dB = plan.write_dec, plan.read_dec
    sched = CommSchedule(plan)
    sched.send = [dict() for _ in range(plan.pmax)]
    sched.recv_from = [[] for _ in range(plan.pmax)]
    sched.ops = [[] for _ in range(plan.pmax)]

    # message offsets are assigned in iteration order per (src, dst) pair
    offsets: Dict[Tuple[int, int], int] = {}
    modify = optimize_access(dA, plan.clause.lhs.scalar_func(),
                             plan.imin, plan.imax)
    for p in range(plan.pmax):
        for i in modify.indices(p):
            j = int(table[i])
            q, slot = dB.place(j)
            w_slot = dA.local(i)
            if q == p:
                sched.ops[p].append((i, w_slot, ("local", slot)))
            else:
                key = (q, p)
                off = offsets.get(key, 0)
                offsets[key] = off + 1
                sched.send[q].setdefault(p, []).append(slot)
                sched.ops[p].append((i, w_slot, ("msg", q, off)))
    for (src, dst), _n in sorted(offsets.items()):
        sched.recv_from[dst].append(src)
    return sched


def _executor_program(sched: CommSchedule, ctx: NodeContext) -> Generator:
    def program() -> Generator:
        p = ctx.p
        plan = sched.plan
        clause = plan.clause
        b_loc = ctx.mem[plan.read_ref.name]

        # pack + send one message per destination
        for q, slots in sorted(sched.send[p].items()):
            ctx.send(q, ("x", plan.read_ref.name),
                     np.array([b_loc[s] for s in slots]))

        # receive per source
        inbox: Dict[int, np.ndarray] = {}
        for src in sorted(sched.recv_from[p]):
            payload = yield ctx.recv(src, ("x", plan.read_ref.name))
            inbox[src] = ctx.note_received(payload)

        # purely local evaluation (buffered writes, // premise)
        pending = []
        for i, w_slot, source in sched.ops[p]:
            if source[0] == "local":
                value = b_loc[source[1]]
            else:
                _tag, src, off = source
                value = inbox[src][off]
            by_ref = {id(plan.read_ref): value}
            idx = (i,)
            if clause.guard is not None and not _eval_fetched(
                clause.guard, idx, by_ref
            ):
                continue
            pending.append((w_slot, _eval_fetched(clause.rhs, idx, by_ref)))
        for slot, value in pending:
            ctx.update(plan.clause.lhs.name, slot, value)
        yield ctx.barrier()

    return program()


def run_executor(
    sched: CommSchedule, machine: DistributedMachine
) -> DistributedMachine:
    """THE EXECUTOR: apply the clause once using the prebuilt schedule.

    Reusable: call repeatedly as the *values* of the arrays change; only
    a changed index table requires re-inspection.
    """
    machine.run(lambda ctx: _executor_program(sched, ctx))
    return machine
