"""Barrier elimination between clauses (paper §2.9, footnote 1).

"The expensive barrier synchronization can in many cases be eliminated or
merged with other synchronizations in intra-statement optimizations."

A barrier between two ``//`` clauses is needed exactly when some datum
flows between *different processors* across the phase boundary — or when
fusing would expose a cross-processor read/write overlap *within* one of
the clauses (the unfused template hides intra-clause overlap behind the
global double-buffer).  With the owner-computes rule all of this is
decidable at compile time from the decompositions and access functions;
this module decides it by (exact, O(n)) enumeration of the access maps.

``run_program_shared`` then executes a multi-clause program on the
shared-memory machine, fusing phases whose separating barrier was proven
removable, and reports how many barriers remain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..core.clause import Clause, Ordering, Program
from ..decomp.base import Decomposition
from ..machine.shared import SharedMachine
from .plan import compile_clause

__all__ = [
    "AccessMaps",
    "clause_access_maps",
    "has_cross_processor_overlap",
    "barrier_removable",
    "plan_barriers",
    "run_program_shared",
]

Elem = Tuple[str, int]


@dataclass
class AccessMaps:
    """Which (array, element) each clause touches, and from which
    processor (owner of the touching iteration)."""

    writes: Dict[Elem, Set[int]]
    reads: Dict[Elem, Set[int]]


def clause_access_maps(
    clause: Clause, decomps: Dict[str, Decomposition]
) -> AccessMaps:
    """Exact access maps of a 1-D clause under owner-computes.

    Guards are treated as reads that *may* happen (conservative: the
    guard value is unknown at compile time, so every guarded iteration
    counts for both its reads and its write).
    """
    plan = compile_clause(clause, decomps)
    writes: Dict[Elem, Set[int]] = {}
    reads: Dict[Elem, Set[int]] = {}
    for i in range(plan.imin, plan.imax + 1):
        owners = plan.writers_of(i)
        w_elem = (plan.write_name, plan.write_func(i))
        writes.setdefault(w_elem, set()).update(owners)
        for read in plan.reads:
            r_elem = (read.name, read.func(i))
            reads.setdefault(r_elem, set()).update(owners)
    return AccessMaps(writes, reads)


def has_cross_processor_overlap(
    clause: Clause, decomps: Dict[str, Decomposition]
) -> bool:
    """True when, within ONE clause, an element is written by one
    processor and read (or written) by a different one — i.e. the global
    double-buffer of the unfused template is load-bearing.

    Fast path: the static analyzer's interference certificate.  A
    certified clause (non-replicated write, no read of the written
    array) provably has singleton writer sets and disjoint read/write
    element keys, so the enumeration below would always return False —
    skip it."""
    from ..analysis import certified_independent

    if certified_independent(clause, decomps):
        return False
    maps = clause_access_maps(clause, decomps)
    for elem, writers in maps.writes.items():
        if len(writers) > 1:
            return True
        readers = maps.reads.get(elem)
        if readers and readers - writers:
            return True
    return False


def _phase_conflict(m1: AccessMaps, m2: AccessMaps) -> bool:
    """Cross-processor dependence between two consecutive clauses:
    flow (w1 ∩ r2), anti (r1 ∩ w2), or output (w1 ∩ w2) on different
    processors."""
    for elem, writers in m1.writes.items():
        for other in (m2.reads.get(elem), m2.writes.get(elem)):
            if other and other - writers:
                return True
    for elem, writers2 in m2.writes.items():
        readers1 = m1.reads.get(elem)
        if readers1 and readers1 - writers2:
            return True
    return False


def barrier_removable(
    c1: Clause, c2: Clause, decomps: Dict[str, Decomposition]
) -> bool:
    """Can the barrier between *c1* and *c2* be eliminated?"""
    if c1.ordering is not Ordering.PAR or c2.ordering is not Ordering.PAR:
        return False
    if has_cross_processor_overlap(c1, decomps):
        return False
    if has_cross_processor_overlap(c2, decomps):
        return False
    return not _phase_conflict(
        clause_access_maps(c1, decomps), clause_access_maps(c2, decomps)
    )


def plan_barriers(
    program: Program, decomps: Dict[str, Decomposition]
) -> List[bool]:
    """``flags[k]`` — is a barrier needed after clause ``k``?  The final
    barrier (program end) is always kept.

    Decided by the pipeline's `eliminate-barriers` pass: each clause is
    compiled with its successor so the decision lands in the pass trace."""
    from ..pipeline import compile_plan

    clauses = program.clauses
    flags: List[bool] = []
    for c1, c2 in zip(clauses, clauses[1:]):
        ir = compile_plan(c1, decomps, successor=c2)
        flags.append(ir.barrier_needed)
    flags.append(True)
    return flags


def run_program_shared(
    program: Program,
    decomps: Dict[str, Decomposition],
    env: Dict[str, np.ndarray],
    eliminate_barriers: bool = True,
    backend: str = "scalar",
    strict: bool = False,
    processes: Optional[int] = None,
    timeout: Optional[float] = None,
) -> Tuple[SharedMachine, int]:
    """Execute a multi-clause program on the shared-memory machine.

    Thin legacy wrapper: the program is compiled through
    :func:`repro.pipeline.compile_program` (whose `fuse-clauses` pass
    groups consecutive clauses with removable barriers) and executed by
    :func:`repro.pipeline.run_program`.  Returns the machine and the
    number of barriers actually executed.

    The full backend registry applies, exactly as for single clauses
    (``overlap`` degrades to the vector backend with a trace note).
    """
    from ..pipeline import compile_program, run_program

    pir = compile_program(program, decomps,
                          eliminate_barriers=eliminate_barriers)
    pmax = max(d.pmax for d in decomps.values())
    machine = SharedMachine(pmax, env)
    return run_program(pir, env, backend=backend, strict=strict,
                       processes=processes, timeout=timeout,
                       machine=machine)
