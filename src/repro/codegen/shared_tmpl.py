"""Shared-memory SPMD template (paper Section 2.9).

    p := my_node;
    forall i in Modify_p do
        A[f(i)] := Expr(B[g(i)]);
    od;
    barrier;

Every processor addresses the shared arrays directly; only the iteration
space is partitioned (by the owner-computes membership set).  The write
buffer + phase barrier of :class:`~repro.machine.shared.SharedMachine`
gives all nodes the pre-state, matching the ``//`` clause semantics.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..backends import validate_backend
from ..core.clause import Clause, Ordering
from ..machine.shared import SharedMachine
from ..sets.membership import Work
from .plan import SPMDPlan

__all__ = ["run_shared", "shared_phase"]


def shared_phase(plan: SPMDPlan, machine: SharedMachine):
    """Build the per-node phase function for one clause."""
    clause = plan.clause
    env = machine.env

    def phase(p: int) -> List[Tuple[str, int, float]]:
        writes: List[Tuple[str, int, float]] = []
        work = Work()
        for i in plan.modify_indices(p, work):
            machine.stats[p].iterations += 1
            idx = (i,)
            if clause.guard is not None and not clause.guard.eval(idx, env):
                continue
            ai = clause.lhs.array_index(idx)[0]
            writes.append((clause.lhs.name, ai, clause.rhs.eval(idx, env)))
        machine.stats[p].membership_tests += work.tests
        return writes

    return phase


def run_shared(
    plan: SPMDPlan,
    env: Dict[str, np.ndarray],
    machine: Optional[SharedMachine] = None,
    backend: str = "scalar",
    strict: bool = False,
    processes: Optional[int] = None,
    timeout: Optional[float] = None,
) -> SharedMachine:
    """Execute one clause on a shared-memory machine; returns the machine
    (its ``env`` holds the post-state, its ``stats`` the counters).

    ``backend="vector"`` executes ``//`` clauses as NumPy strided
    operations over the closed-form membership segments (• clauses are a
    serial chain and always take the scalar path — recorded as a trace
    note, see ``compile --explain``).  ``backend="overlap"`` has no
    shared-memory meaning (there is no communication to hide) and runs
    as the vector backend, also noted on the trace.  ``backend="fused"``
    runs the compile-once node kernels attached by the `lower-kernels`
    pass (falling back to the vector path, with a trace note, when the
    plan has no fused form); *strict* makes a fused run refuse clauses
    the static verifier flagged RACE*/COMM*.  ``backend="native"`` runs
    the njit-compiled scalar-loop kernels of
    :mod:`repro.pipeline.native`, degrading to the fused path with a
    trace note when numba is absent or the plan has no native form.
    ``backend="mp"`` executes
    those same kernels on the real worker processes of
    :mod:`repro.runtime` (*processes*/*timeout* apply there), falling
    back to the fused path when the plan has no mp form.
    ``backend="mpi"`` runs them SPMD under ``mpiexec``
    (:mod:`repro.mpi`), degrading to fused with a trace note when
    mpi4py is unavailable.
    """
    validate_backend(backend, context="run_shared")
    if machine is None:
        machine = SharedMachine(plan.pmax, env)
    if backend == "mpi":
        from ..backends import backend_availability

        trace = getattr(plan, "trace", None)
        av = backend_availability("mpi")
        ir = getattr(plan, "ir", None)
        why = None
        if not av.available:
            why = av.reason
        elif ir is None:
            why = "plan carries no IR"
        if why is None:
            from ..mpi.exec import MpiUnavailableError, run_shared_mpi
            from ..runtime import MpLoweringError

            try:
                return run_shared_mpi(ir, env, machine, strict=strict,
                                      processes=processes, timeout=timeout)
            except (MpLoweringError, MpiUnavailableError) as err:
                why = str(err)
        if trace is not None:
            trace.note(f"backend='mpi' fell back to the fused path: {why}")
        backend = "fused"
    if backend == "mp":
        ir = getattr(plan, "ir", None)
        if ir is not None:
            from ..runtime import MpLoweringError, run_shared_mp

            try:
                return run_shared_mp(ir, env, machine, strict=strict,
                                     processes=processes, timeout=timeout)
            except MpLoweringError as err:
                trace = getattr(plan, "trace", None)
                if trace is not None:
                    trace.note("backend='mp' fell back to the fused "
                               f"path: {err}")
        else:
            trace = getattr(plan, "trace", None)
            if trace is not None:
                trace.note("backend='mp' fell back to the fused path: "
                           "plan carries no IR")
        backend = "fused"
    if backend == "overlap":
        trace = getattr(plan, "trace", None)
        if trace is not None:
            trace.note("backend='overlap' on shared memory: no messages "
                       "to overlap; running the vector backend")
        backend = "vector"
    if backend == "native":
        ir = getattr(plan, "ir", None)
        if ir is not None and plan.clause.ordering is Ordering.PAR:
            from ..machine.native import run_shared_native
            from ..pipeline.native import NativeBuildError

            try:
                return run_shared_native(ir, env, machine, strict=strict)
            except NativeBuildError as err:
                trace = getattr(plan, "trace", None)
                if trace is not None:
                    trace.note("backend='native' fell back to the fused "
                               f"path: {err}")
        else:
            trace = getattr(plan, "trace", None)
            if trace is not None:
                why = ("plan carries no IR" if ir is None else
                       "sequential (•) clause is a serial chain")
                trace.note(f"backend='native' fell back to the fused "
                           f"path: {why}")
        backend = "fused"
    if backend == "fused":
        ir = getattr(plan, "ir", None)
        kernels = getattr(ir, "kernels", None) if ir is not None else None
        if (ir is not None and kernels is not None
                and kernels.shared is not None
                and plan.clause.ordering is Ordering.PAR):
            from ..machine.fused import run_shared_fused

            return run_shared_fused(ir, env, machine, strict=strict)
        if strict and ir is not None \
                and plan.clause.ordering is Ordering.PAR:
            from ..machine.fused import check_strict

            check_strict(ir, True)
        trace = getattr(plan, "trace", None)
        if trace is not None:
            why = ("plan carries no IR" if ir is None else
                   kernels.shared_note if kernels is not None else
                   "no fused kernels on the plan")
            if plan.clause.ordering is Ordering.SEQ:
                why = "sequential (•) clause is a serial chain"
            trace.note(f"backend='fused' fell back to the vector path: {why}")
        backend = "vector"
    if plan.clause.ordering is Ordering.SEQ:
        if backend == "vector":
            trace = getattr(plan, "trace", None)
            if trace is not None:
                trace.note("backend='vector' fell back to the scalar "
                           "path: sequential (•) clause is a serial chain")
        _run_shared_seq(plan, machine)
    elif backend == "vector":
        ir = getattr(plan, "ir", None)
        if ir is None:
            raise ValueError(
                "vector backend needs the pipeline IR; compile the plan "
                "via compile_clause / repro.pipeline.compile_plan"
            )
        from ..machine.vectorize import run_shared_vector

        run_shared_vector(ir, env, machine)
    else:
        machine.run_phase(shared_phase(plan, machine))
    return machine


def _run_shared_seq(plan: SPMDPlan, machine: SharedMachine) -> None:
    """``•`` ordering: a fully serialized DOACROSS schedule.

    Indices execute in global lexicographic order; each index is executed
    (and its cost charged to) its owner under owner-computes.  This is the
    degenerate limit of the paper's "more complicated orderings translate
    to DOACROSS-style synchronization patterns".
    """
    clause = plan.clause
    env = machine.env
    for i in range(plan.imin, plan.imax + 1):
        owners = plan.writers_of(i)
        p = owners[0]
        machine.stats[p].iterations += 1
        if not plan.write_replicated:
            machine.stats[p].membership_tests += 1
        idx = (i,)
        if clause.guard is not None and not clause.guard.eval(idx, env):
            continue
        ai = clause.lhs.array_index(idx)[0]
        env[clause.lhs.name][ai] = clause.rhs.eval(idx, env)
        machine.stats[p].local_updates += 1
