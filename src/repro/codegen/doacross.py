"""Distributed DOACROSS generation (paper §2.6 closing remark).

The paper notes that non-``//`` orderings "translate to DOACROSS-style
synchronization patterns" on distributed machines but gives no template.
This extension implements the classic case: a sequentially-ordered
first-order recurrence

    ``∆(i ∈ (imin:imax)) • A[i] := Expr(A[i - s], B[h(i)], ...)``

with dependence distance ``s >= 1``.  The data dependence itself is the
synchronization: node ``p`` may execute iteration ``i`` as soon as the
value of ``A[i - s]`` exists, so iterations pipeline across processors
with lag ``s`` — no global token, no barrier per iteration.

Protocol per node:

* *prefetch phase* — pre-state values ``A[j]`` with
  ``j in [imin - s, imin - 1]`` (read before any write) are sent by
  their owners to the consumers of ``j + s``;
* *read send phase* — non-recurrence reads (``B[h(i)]``) are shipped
  exactly as in the ``//`` template (they are pre-state by definition:
  ``B`` is not written);
* *main loop* — for each owned ``i`` in increasing order: obtain
  ``A[i - s]`` (locally if this node executed ``i - s``, otherwise by a
  blocking receive from its owner), evaluate, store, and *forward* the
  freshly-settled ``A[i]`` to the owner of ``i + s`` when that is a
  different node.  The forwarded value is the post-iteration local value
  whether or not a guard suppressed the update, which is exactly the
  value the sequential order exposes.

Guards may not reference the written array (that would need general
remote-read servicing); all other reads are unrestricted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

import numpy as np

from ..core.clause import Clause, Ordering
from ..core.ifunc import AffineF
from ..decomp.base import Decomposition
from ..machine.distributed import DistributedMachine, NodeContext
from ..sets.membership import Work
from .dist_tmpl import _eval_fetched, _read_value
from .plan import CompiledRead, SPMDPlan, compile_clause

__all__ = ["DoacrossPlan", "compile_doacross", "run_doacross",
           "make_doacross_program"]


@dataclass
class DoacrossPlan:
    """A validated DOACROSS pipeline: the underlying SPMD plan plus the
    recurrence structure (dependence distance per recurrence read)."""

    base: SPMDPlan
    recurrence_reads: List[CompiledRead]
    other_reads: List[CompiledRead]
    distances: Dict[int, int]  # read.pos -> s

    @property
    def max_distance(self) -> int:
        return max(self.distances.values())


def compile_doacross(
    clause: Clause, decomps: Dict[str, Decomposition]
) -> DoacrossPlan:
    """Validate + compile a ``•`` recurrence clause for the pipeline."""
    if clause.ordering is not Ordering.SEQ:
        raise ValueError("DOACROSS generation applies to •-ordered clauses")
    base = compile_clause(clause, decomps)
    wf = base.write_func
    if not (isinstance(wf, AffineF) and wf.a == 1 and wf.c == 0):
        raise ValueError(
            "DOACROSS template requires the identity write access A[i]"
        )
    recurrence, others = [], []
    distances: Dict[int, int] = {}
    for read in base.reads:
        if read.name == base.write_name:
            g = read.func
            if not (isinstance(g, AffineF) and g.a == 1 and g.c <= -1):
                raise ValueError(
                    "reads of the written array must be backward shifts "
                    f"A[i - s] with s >= 1; got {g.name}"
                )
            distances[read.pos] = -g.c
            recurrence.append(read)
        else:
            others.append(read)
    if not recurrence:
        raise ValueError(
            "no recurrence read: the clause is //-independent, use the "
            "ordinary distributed template"
        )
    if clause.guard is not None:
        for r in clause.guard.refs():
            if r.name == base.write_name:
                raise ValueError(
                    "guards may not reference the written array in the "
                    "DOACROSS template"
                )
    if base.write_replicated:
        raise ValueError("DOACROSS write decomposition cannot be replicated")
    ir = getattr(base, "ir", None)
    if ir is not None:
        from ..analysis import verify_ir

        report = ir.diagnostics if ir.diagnostics is not None else verify_ir(ir)
        bad = sorted({d.code for d in report.errors()
                      if d.code in ("BND001", "BND002", "COMM001", "COMM003")})
        if bad:
            raise ValueError(
                "DOACROSS clause fails static verification "
                f"({', '.join(bad)}); run `repro check` for details"
            )
    return DoacrossPlan(base, recurrence, others, distances)


def make_doacross_program(
    plan: DoacrossPlan, ctx: NodeContext, paced: bool = False
) -> Generator:
    """Node program for the DOACROSS pipeline.

    With ``paced=True`` the main loop yields to the scheduler after every
    iteration, making the scheduler's logical rounds a per-iteration
    clock — slower to simulate, but the trace then shows the true
    pipeline structure (used by the overlap analyses).
    """

    def program() -> Generator:
        from ..machine.scheduler import Yield
        p = ctx.p
        base = plan.base
        clause = base.clause
        d = base.write_dec
        imin, imax = base.imin, base.imax
        work = Work()

        my_modify = base.modify_indices(p, work)
        my_set = set(my_modify)

        # ---- prefetch phase: pre-state A[j], j in [imin - s, imin - 1] --
        for read in plan.recurrence_reads:
            s = plan.distances[read.pos]
            for j in range(imin - s, imin):
                if j < 0 or d.proc(j) != p:
                    continue
                i = j + s
                if imin <= i <= imax:
                    q = d.proc(i)
                    if q != p:
                        ctx.send(q, ("pre", read.pos, j),
                                 ctx.mem[base.write_name][d.local(j)])

        # ---- send phase for non-recurrence reads (pre-state) ------------
        for read in plan.other_reads:
            if read.always_local:
                continue
            for i in base.reside_indices(read, p, work):
                ctx.stats.iterations += 1
                q = d.proc(i)  # write func is identity
                if q != p:
                    ctx.send(q, (read.pos, i), _read_value(ctx, read, i))

        # ---- main pipeline loop ------------------------------------------
        a_loc = ctx.mem[base.write_name]
        for i in my_modify:
            ctx.stats.iterations += 1
            by_ref: Dict[int, float] = {}
            # recurrence operands
            for read in plan.recurrence_reads:
                s = plan.distances[read.pos]
                j = i - s
                if d.proc(j) == p:
                    by_ref[id(read.ref)] = a_loc[d.local(j)]
                elif j < imin:
                    payload = yield ctx.recv(d.proc(j), ("pre", read.pos, j))
                    by_ref[id(read.ref)] = ctx.note_received(payload)
                else:
                    payload = yield ctx.recv(d.proc(j), ("dep", read.pos, j))
                    by_ref[id(read.ref)] = ctx.note_received(payload)
            # ordinary operands
            for read in plan.other_reads:
                if read.always_local or read.dec.proc(read.func(i)) == p:
                    by_ref[id(read.ref)] = _read_value(ctx, read, i)
                else:
                    src = read.dec.proc(read.func(i))
                    payload = yield ctx.recv(src, (read.pos, i))
                    by_ref[id(read.ref)] = ctx.note_received(payload)
            idx = (i,)
            fire = True
            if clause.guard is not None:
                fire = bool(_eval_fetched(clause.guard, idx, by_ref))
            if fire:
                ctx.update(base.write_name, d.local(i),
                           _eval_fetched(clause.rhs, idx, by_ref))
            # forward the settled value to each consumer of i (+s lag)
            for read in plan.recurrence_reads:
                s = plan.distances[read.pos]
                succ = i + s
                if succ <= imax and d.proc(succ) != p:
                    ctx.send(d.proc(succ), ("dep", read.pos, i),
                             a_loc[d.local(i)])
            if paced:
                yield Yield()

        ctx.stats.membership_tests += work.tests
        yield ctx.barrier()

    return program()


def run_doacross(
    plan: DoacrossPlan,
    env: Dict[str, np.ndarray],
    machine: Optional[DistributedMachine] = None,
) -> DistributedMachine:
    """Place *env*, run the pipeline, return the machine."""
    base = plan.base
    if machine is None:
        machine = DistributedMachine(base.pmax)
        all_decomps: Dict[str, Decomposition] = {
            base.write_name: base.write_dec
        }
        for read in base.reads:
            all_decomps.setdefault(read.name, read.dec)
        for name, arr in env.items():
            if name in all_decomps:
                machine.place(name, arr, all_decomps[name])
    machine.run(lambda ctx: make_doacross_program(plan, ctx))
    return machine
