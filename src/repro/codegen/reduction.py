"""Reduction generation: global combines over distributed data.

V-cal's clauses are element-wise assignments; reductions
(``r = ⊕_i Expr(B[g(i)], ...)``) are the other workhorse of data-parallel
programs, and every SPMD system of the paper's era generated them the
same way:

1. *partition* — iterations are assigned to processors by an iteration
   decomposition (the analogue of owner-computes; any 1-D decomposition
   of the index domain works, and the Table I machinery enumerates each
   node's share in closed form);
2. *local phase* — each node folds its share into a private partial,
   fetching remote operands exactly like the §2.10 template;
3. *combine phase* — partials meet either **linearly** (everyone sends
   to the root: p−1 messages, critical path p−1) or on a **binary tree**
   (p−1 messages, critical path ⌈log₂ p⌉) — the E23 benchmark shows the
   difference in the paced traces;
4. optional *broadcast* — ``allreduce`` ships the result back down.

Supported operators: ``+``, ``*``, ``min``, ``max`` (associative and
commutative, so any combine order is exact up to float rounding).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

import numpy as np

from ..core.clause import Clause, Ordering
from ..core.expr import Expr, Ref
from ..core.ifunc import AffineF
from ..core.indexset import IndexSet
from ..decomp.base import Decomposition
from ..machine.distributed import DistributedMachine, NodeContext
from .dist_tmpl import _eval_fetched, _read_value
from .plan import SPMDPlan, compile_clause

__all__ = ["ReduceOp", "ReducePlan", "compile_reduce", "run_reduce",
           "reference_reduce"]

_OPS = {
    "+": (lambda a, b: a + b, 0.0),
    "*": (lambda a, b: a * b, 1.0),
    "min": (min, float("inf")),
    "max": (max, float("-inf")),
}


@dataclass(frozen=True)
class ReduceOp:
    """An associative-commutative reduction operator."""

    name: str

    def __post_init__(self):
        if self.name not in _OPS:
            raise ValueError(
                f"unsupported reduction op {self.name!r}; "
                f"choose from {sorted(_OPS)}"
            )

    @property
    def fn(self):
        return _OPS[self.name][0]

    @property
    def identity(self) -> float:
        return _OPS[self.name][1]


@dataclass
class ReducePlan:
    """Compiled reduction: the iteration partition rides on an SPMDPlan
    whose 'write' is the identity over the iteration decomposition."""

    op: ReduceOp
    expr: Expr
    base: SPMDPlan
    guard: Optional[Expr]

    @property
    def pmax(self) -> int:
        return self.base.pmax


#: internal name for the pseudo-array that carries iteration ownership
_ITER = "__iter__"


def compile_reduce(
    op: str,
    domain: IndexSet,
    expr: Expr,
    decomps: Dict[str, Decomposition],
    iter_dec: Decomposition,
    guard: Optional[Expr] = None,
) -> ReducePlan:
    """Compile ``⊕_{i in domain} expr`` with operands decomposed by
    *decomps* and iterations assigned by *iter_dec*."""
    if domain.dim != 1:
        raise ValueError("reductions are generated for 1-D domains")
    imin, imax = domain.bounds.scalar()
    if imax >= iter_dec.n:
        raise ValueError(
            f"iteration decomposition covers 0:{iter_dec.n - 1}, domain "
            f"reaches {imax}"
        )
    from ..core.view import SeparableMap

    pseudo = Clause(
        domain=domain,
        # identity "write" over the iteration space: owner-computes
        # becomes iteration-ownership
        lhs=Ref(_ITER, SeparableMap([AffineF(1, 0)])),
        rhs=expr,
        ordering=Ordering.PAR,
        guard=guard,
        name="reduce",
    )
    base = compile_clause(pseudo, {**decomps, _ITER: iter_dec})
    return ReducePlan(ReduceOp(op), expr, base, guard)


def _combine_linear(ctx: NodeContext, partial: float, op: ReduceOp,
                    pmax: int) -> Generator:
    """Everyone sends to node 0; node 0 folds in rank order."""
    p = ctx.p
    if p != 0:
        ctx.send(0, ("red",), np.array([partial]))
        return
    acc = partial
    for src in range(1, pmax):
        payload = yield ctx.recv(src, ("red",))
        acc = op.fn(acc, float(ctx.note_received(payload)[0]))
    ctx.mem.arrays["__result__"] = np.array([acc])


def _combine_tree(ctx: NodeContext, partial: float, op: ReduceOp,
                  pmax: int) -> Generator:
    """Binary-tree combine toward node 0 (⌈log2 p⌉ critical path)."""
    p = ctx.p
    acc = partial
    d = 1
    while d < pmax:
        if p % (2 * d) == d:
            ctx.send(p - d, ("red", d), np.array([acc]))
            return
        if p % (2 * d) == 0 and p + d < pmax:
            payload = yield ctx.recv(p + d, ("red", d))
            acc = op.fn(acc, float(ctx.note_received(payload)[0]))
        d *= 2
    ctx.mem.arrays["__result__"] = np.array([acc])


def _broadcast(ctx: NodeContext, pmax: int) -> Generator:
    """Binary-tree broadcast of node 0's ``__result__``."""
    p = ctx.p
    d = 1
    while d < pmax:
        d *= 2
    d //= 2
    while d >= 1:
        if p % (2 * d) == 0 and p + d < pmax:
            ctx.send(p + d, ("bcast", d), ctx.mem["__result__"])
        elif p % (2 * d) == d:
            payload = yield ctx.recv(p - d, ("bcast", d))
            ctx.mem.arrays["__result__"] = np.array(
                ctx.note_received(payload), copy=True
            )
        d //= 2


def make_reduce_program(
    plan: ReducePlan, ctx: NodeContext, combine: str = "tree",
    allreduce: bool = False, paced: bool = False,
) -> Generator:
    def program() -> Generator:
        from ..machine.scheduler import Yield

        p = ctx.p
        base = plan.base
        op = plan.op

        # ---- send phase for remote operands (same as §2.10) ---------------
        for read in base.reads:
            if read.always_local:
                continue
            for i in base.reside_indices(read, p):
                ctx.stats.iterations += 1
                q = base.write_dec.proc(i)
                if q != p:
                    ctx.send(q, (read.pos, i), _read_value(ctx, read, i))

        # ---- local fold ----------------------------------------------------
        partial = op.identity
        for i in base.modify_indices(p):
            ctx.stats.iterations += 1
            by_ref: Dict[int, float] = {}
            for read in base.reads:
                if read.always_local or read.dec.proc(read.func(i)) == p:
                    by_ref[id(read.ref)] = _read_value(ctx, read, i)
                else:
                    src = read.dec.proc(read.func(i))
                    payload = yield ctx.recv(src, (read.pos, i))
                    by_ref[id(read.ref)] = ctx.note_received(payload)
            idx = (i,)
            if plan.guard is not None and not _eval_fetched(
                plan.guard, idx, by_ref
            ):
                continue
            partial = op.fn(partial, _eval_fetched(plan.expr, idx, by_ref))
            ctx.stats.local_updates += 1
            if paced:
                yield Yield()

        # ---- combine --------------------------------------------------------
        fn = _combine_tree if combine == "tree" else _combine_linear
        yield from fn(ctx, partial, op, plan.pmax)
        if allreduce:
            yield from _broadcast(ctx, plan.pmax)
        yield ctx.barrier()

    return program()


def run_reduce(
    plan: ReducePlan,
    env: Dict[str, np.ndarray],
    combine: str = "tree",
    allreduce: bool = False,
    machine: Optional[DistributedMachine] = None,
    trace: Optional[list] = None,
    paced: bool = False,
) -> Tuple[DistributedMachine, float]:
    """Place operands, run the reduction, return (machine, result).

    The result is read from node 0 (or, with ``allreduce``, checked to be
    identical on every node).
    """
    if combine not in ("tree", "linear"):
        raise ValueError("combine must be 'tree' or 'linear'")
    if machine is None:
        machine = DistributedMachine(plan.pmax)
        for read in plan.base.reads:
            if read.name not in machine.decomps:
                machine.place(read.name, env[read.name], read.dec)
    machine.run(
        lambda ctx: make_reduce_program(plan, ctx, combine, allreduce,
                                        paced),
        trace=trace,
    )
    result = float(machine.memories[0]["__result__"][0])
    if allreduce:
        for mem in machine.memories[1:]:
            assert float(mem["__result__"][0]) == result, \
                "allreduce copies diverged"
    return machine, result


def reference_reduce(
    plan: ReducePlan, env: Dict[str, np.ndarray]
) -> float:
    """Sequential oracle for the reduction."""
    op = plan.op
    acc = op.identity
    for idx in plan.base.clause.domain:
        if plan.guard is not None and not plan.guard.eval(idx, env):
            continue
        acc = op.fn(acc, plan.expr.eval(idx, env))
    return acc
