"""Distributed-memory SPMD template (paper Section 2.10).

The paper's trivial template loops every node over ``All_p`` with three
membership cases::

    p := my_node;
    forall i in All_p do
        if i in Reside_p \\ Modify_p then send(proc_A(f(i)), B_L[local_B(g(i))]); fi
        if i in Modify_p \\ Reside_p then tmp := receive(...); A_L[..] := Expr(tmp); fi
        if i in Modify_p ∩ Reside_p then A_L[..] := Expr(B_L[local_B(g(i))]); fi
    od;

The optimized instantiation here drives the same communication pattern
from the closed-form ``Modify``/``Reside`` enumerators of Section 3:

* **send phase**  — for each read access ``r`` and each ``i`` in
  ``Reside_p(r)``: the target ``q = proc_A(f(i))`` is *computed* (not
  searched); if ``q ≠ p`` the element is sent, tagged ``(r.pos, i)``.
* **update phase** — for each ``i`` in ``Modify_p``: every read value is
  taken locally when ``proc_B(g(i)) = p`` (or the read is replicated),
  otherwise received (blocking) from its owner; then the guard and
  expression are evaluated and ``A_L[local_A(f(i))]`` updated.

Non-blocking sends + per-tag FIFO matching make the phase split
deadlock-free: no receive can be issued before its matching send exists
in program order on some node that is never itself blocked on ``p``.

Guards (data-dependent predicates) are evaluated by the *owner* of the
write; senders ship their elements unconditionally, so sends stay matched
— the receiver simply discards values whose guard fails.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

import numpy as np

from ..analysis import annotate_deadlock
from ..backends import validate_backend
from ..core.clause import Ordering
from ..decomp.replicated import Replicated
from ..machine.distributed import DistributedMachine, NodeContext
from ..machine.scheduler import DeadlockError
from ..sets.membership import Work
from .plan import CompiledRead, SPMDPlan

__all__ = ["make_node_program", "run_distributed"]


def _read_value(ctx: NodeContext, read: CompiledRead, i: int):
    """Local fetch of read *pos* at global index *i* (must be resident)."""
    gi = read.func(i)
    if isinstance(read.dec, Replicated):
        return ctx.mem[read.name][gi]
    return ctx.mem[read.name][read.dec.local(gi)]


def make_node_program(plan: SPMDPlan, ctx: NodeContext) -> Generator:
    """Node program generator for processor ``ctx.p`` — the optimized
    instantiation of the §2.10 template."""

    def program() -> Generator:
        p = ctx.p
        clause = plan.clause
        work = Work()

        # ---- send phase -------------------------------------------------
        for read in plan.reads:
            if read.always_local:
                continue  # replicated reads never communicate
            for i in plan.reside_indices(read, p, work):
                ctx.stats.iterations += 1
                for q in plan.writers_of(i):
                    if q == p:
                        continue
                    ctx.send(q, (read.pos, i), _read_value(ctx, read, i))

        # ---- update phase ------------------------------------------------
        # Writes are buffered and committed after the loop: a //-clause
        # iteration must never observe another iteration's write (the
        # paper's independence premise); sends above already shipped
        # pre-state values because they precede all updates in program
        # order on every node.
        pending: List[Tuple[int, float]] = []
        for i in plan.modify_indices(p, work):
            ctx.stats.iterations += 1
            by_ref: Dict[int, float] = {}
            for read in plan.reads:
                if read.always_local or read.dec.proc(read.func(i)) == p:
                    by_ref[id(read.ref)] = _read_value(ctx, read, i)
                else:
                    src = read.dec.proc(read.func(i))
                    payload = yield ctx.recv(src, (read.pos, i))
                    by_ref[id(read.ref)] = ctx.note_received(payload)
            idx = (i,)
            if clause.guard is not None and not _eval_fetched(
                clause.guard, idx, by_ref
            ):
                continue
            gi = plan.write_func(i)
            slot = gi if plan.write_replicated else plan.write_dec.local(gi)
            pending.append((slot, _eval_fetched(clause.rhs, idx, by_ref)))
        for slot, value in pending:
            ctx.update(plan.write_name, slot, value)

        ctx.stats.membership_tests += work.tests
        yield ctx.barrier()

    return program()


def _eval_fetched(expr, idx: Tuple[int, ...], by_ref: Dict[int, float]):
    """Evaluate an expression tree with every data reference resolved to
    its pre-fetched value (local load or received message), keyed by the
    identity of the Ref node — exact, regardless of how many times the
    same array appears with different access functions."""
    from ..core.expr import OPS, UNARY_OPS, BinOp, Const, LoopIndex, Ref, UnOp

    if isinstance(expr, Ref):
        return by_ref[id(expr)]
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, LoopIndex):
        return idx[expr.dim]
    if isinstance(expr, BinOp):
        return OPS[expr.op](
            _eval_fetched(expr.left, idx, by_ref),
            _eval_fetched(expr.right, idx, by_ref),
        )
    if isinstance(expr, UnOp):
        return UNARY_OPS[expr.op](_eval_fetched(expr.operand, idx, by_ref))
    raise TypeError(f"cannot evaluate expression node {type(expr).__name__}")


def run_distributed(
    plan: SPMDPlan,
    env: Dict[str, np.ndarray],
    machine: Optional[DistributedMachine] = None,
    decomps: Optional[Dict[str, object]] = None,
    backend: str = "scalar",
    model=None,
    strict: bool = False,
    processes: Optional[int] = None,
    timeout: Optional[float] = None,
) -> DistributedMachine:
    """Place *env* on a distributed machine, run the clause, return the
    machine (use ``machine.collect(name)`` for the post-state).

    When *machine* is given it must already hold the placed arrays.
    ``backend="vector"`` batches communication into one message per
    (read, peer) pair and executes each phase as NumPy array operations;
    ``backend="overlap"`` additionally computes the interior of
    ``Modify_p`` while messages are in flight (non-blocking receives);
    ``backend="fused"`` runs the compile-once node kernels attached by
    the `lower-kernels` pass — precomputed flat gather/scatter index
    arrays and a generated fused expression, with the interior kernel
    overlapping communication — falling back to the vector path (trace
    note) when the plan has no fused form; ``backend="native"`` runs the
    same schedule with the njit-compiled scalar-loop kernel, degrading
    to the fused path (trace note) when numba is absent or the plan has
    no native form.  Replicated writes (a
    per-copy broadcast) keep the scalar path.  *model* is an optional
    :class:`~repro.machine.channels.LatencyModel` attached to a newly
    created machine (virtual-time accounting only).  *strict* makes a
    fused run refuse clauses the static verifier flagged RACE*/COMM*.
    ``backend="mp"`` executes the fused kernels on the real worker
    processes of :mod:`repro.runtime` — real messages over queues,
    global arrays in shared memory (*processes*/*timeout* apply there)
    — falling back to the fused path when the plan has no mp form or a
    pre-placed *machine* is supplied.  ``backend="mpi"`` runs the same
    lowered programs SPMD under ``mpiexec`` with nonblocking
    point-to-point messages and private rank memories
    (:mod:`repro.mpi`), degrading to fused with a trace note when
    mpi4py is unavailable.
    """
    validate_backend(backend, context="run_distributed")
    if plan.clause.ordering is Ordering.SEQ:
        raise NotImplementedError(
            "distributed DOACROSS (the paper's 'more complicated orderings') "
            "is not generated; use the shared-memory template for • clauses"
        )
    ir = getattr(plan, "ir", None)
    if backend == "mpi":
        from ..backends import backend_availability

        trace = getattr(plan, "trace", None)
        av = backend_availability("mpi")
        why = None
        if not av.available:
            why = av.reason
        elif ir is None:
            why = "plan carries no IR"
        elif machine is not None:
            why = ("a pre-placed machine was supplied; the MPI backend "
                   "owns its own placement")
        elif plan.write_replicated:
            why = "replicated write is a per-copy broadcast"
        if why is None:
            from ..mpi.exec import MpiUnavailableError, run_distributed_mpi
            from ..runtime import MpLoweringError

            try:
                return run_distributed_mpi(ir, env, strict=strict,
                                           processes=processes,
                                           timeout=timeout)
            except (MpLoweringError, MpiUnavailableError) as err:
                why = str(err)
        if trace is not None:
            trace.note(f"backend='mpi' fell back to the fused path: {why}")
        backend = "fused"
    if backend == "mp":
        trace = getattr(plan, "trace", None)
        why = None
        if ir is None:
            why = "plan carries no IR"
        elif machine is not None:
            why = ("a pre-placed machine was supplied; the mp runtime "
                   "owns its own placement")
        elif plan.write_replicated:
            why = "replicated write is a per-copy broadcast"
        if why is None:
            from ..runtime import MpLoweringError, run_distributed_mp

            try:
                return run_distributed_mp(ir, env, strict=strict,
                                          processes=processes,
                                          timeout=timeout)
            except MpLoweringError as err:
                why = str(err)
        if trace is not None:
            trace.note(f"backend='mp' fell back to the fused path: {why}")
        backend = "fused"
    if backend == "native":
        trace = getattr(plan, "trace", None)
        if ir is not None and not plan.write_replicated:
            from ..machine.native import run_distributed_native
            from ..pipeline.native import NativeBuildError

            try:
                return run_distributed_native(ir, env, machine, model=model,
                                              strict=strict)
            except NativeBuildError as err:
                if trace is not None:
                    trace.note("backend='native' fell back to the fused "
                               f"path: {err}")
            except DeadlockError as err:
                annotate_deadlock(err, ir)
                raise
        elif trace is not None:
            why = ("replicated write (per-copy broadcast)"
                   if plan.write_replicated else "plan carries no IR")
            trace.note(f"backend='native' fell back to the fused path: {why}")
        backend = "fused"
    if backend == "fused" and ir is not None and not plan.write_replicated:
        kernels = getattr(ir, "kernels", None)
        if kernels is not None and kernels.dist is not None:
            from ..machine.fused import run_distributed_fused

            try:
                return run_distributed_fused(ir, env, machine, model=model,
                                             strict=strict)
            except DeadlockError as err:
                annotate_deadlock(err, ir)
                raise
        if strict:
            from ..machine.fused import check_strict

            check_strict(ir, True)
        trace = getattr(plan, "trace", None)
        if trace is not None:
            why = (kernels.dist_note if kernels is not None
                   else "no fused kernels on the plan")
            trace.note(f"backend='fused' fell back to the vector path: {why}")
        backend = "vector"
    if backend in ("vector", "overlap") and ir is not None \
            and not plan.write_replicated:
        try:
            if backend == "overlap":
                from ..machine.vectorize import run_distributed_overlap

                return run_distributed_overlap(ir, env, machine, model=model)
            from ..machine.vectorize import run_distributed_vector

            return run_distributed_vector(ir, env, machine, model=model)
        except DeadlockError as err:
            annotate_deadlock(err, ir)
            raise
    if backend != "scalar":
        trace = getattr(plan, "trace", None)
        if trace is not None:
            trace.note(f"backend={backend!r} fell back to the scalar "
                       "template: "
                       + ("replicated write (per-copy broadcast)"
                          if plan.write_replicated else "plan carries no IR"))
    if machine is None:
        machine = DistributedMachine(plan.pmax)
        all_decomps = {plan.write_name: plan.write_dec}
        for read in plan.reads:
            all_decomps[read.name] = read.dec
        for name, arr in env.items():
            if name in all_decomps:
                machine.place(name, arr, all_decomps[name])
    try:
        machine.run(lambda ctx: make_node_program(plan, ctx))
    except DeadlockError as err:
        annotate_deadlock(err, ir)
        raise
    return machine
