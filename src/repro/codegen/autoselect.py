"""Automatic decomposition selection.

The paper automates everything *after* the decomposition is chosen; the
obvious next layer — which occupied the field for the following decade
(Kennedy & Kremer's automatic data layout, HPF's ``DISTRIBUTE`` advice)
— is choosing the decomposition itself.  This module implements two
honest selectors on top of the reproduction's machinery:

* :func:`choose_static` — enumerate candidate assignments (block /
  scatter / BS(b) / replicated-for-read-only arrays), *execute each on
  the simulator*, and rank by modeled makespan under a
  :class:`~repro.machine.costmodel.CostModel`.  No analytic shortcuts:
  the cost of an assignment is measured on the generated programs.
* :func:`choose_dynamic` — per-phase assignment by dynamic programming:
  state = decomposition assignment of all arrays, transition cost =
  modeled cost of the automatically generated redistribution between
  phases.  Finds schedules like "block for the stencil phase, scatter
  for the triangular phase" that no static assignment can match.

Search is exhaustive over the candidate product — fine for the handful
of arrays a clause touches (the intended granularity); the candidate
generator caps block-scatter sizes to keep the space small.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.clause import Clause, Program
from ..decomp.base import Decomposition
from ..decomp.block import Block
from ..decomp.blockscatter import BlockScatter
from ..decomp.dynamic import plan_redistribution
from ..decomp.replicated import Replicated
from ..decomp.scatter import Scatter
from ..machine.costmodel import CostModel
from .dist_tmpl import run_distributed
from .plan import compile_clause

__all__ = [
    "candidate_decompositions",
    "assignment_cost",
    "choose_static",
    "choose_dynamic",
    "StaticChoice",
    "DynamicChoice",
]


def candidate_decompositions(
    n: int,
    pmax: int,
    read_only: bool = False,
    bs_sizes: Sequence[int] = (2, 8),
) -> List[Decomposition]:
    """Default candidate set for one array."""
    out: List[Decomposition] = [Block(n, pmax), Scatter(n, pmax)]
    for b in bs_sizes:
        if 1 < b * pmax <= max(n, 1):
            out.append(BlockScatter(n, pmax, b))
    if read_only:
        out.append(Replicated(n, pmax))
    return out


def _writes_of(program: Program) -> set:
    return {c.lhs.name for c in program.clauses}


def assignment_cost(
    program: Program,
    decomps: Dict[str, Decomposition],
    env: Dict[str, np.ndarray],
    model: CostModel,
) -> float:
    """Measured modeled cost of running the whole program (clauses in
    order, one distributed run each) under one assignment."""
    total = 0.0
    state = {k: np.array(v, copy=True) for k, v in env.items()}
    for clause in program.clauses:
        plan = compile_clause(clause, decomps)
        machine = run_distributed(plan, state)
        total += model.makespan(machine.stats)
        state[plan.write_name] = machine.collect(plan.write_name)
    return total


@dataclass
class StaticChoice:
    """Result of the static search."""

    best: Dict[str, Decomposition]
    cost: float
    ranking: List[Tuple[Dict[str, Decomposition], float]] = field(
        default_factory=list
    )

    def describe(self) -> str:
        return ", ".join(f"{k}={_label(d)}" for k, d in sorted(self.best.items()))


def _label(d: Decomposition) -> str:
    if isinstance(d, Replicated):
        return "replicated"
    if isinstance(d, Block):
        return "block"
    if isinstance(d, Scatter):
        return "scatter"
    if isinstance(d, BlockScatter):
        return f"BS({d.b})"
    return d.kind


def choose_static(
    program: Program,
    env: Dict[str, np.ndarray],
    pmax: int,
    model: CostModel,
    candidates: Optional[Dict[str, List[Decomposition]]] = None,
) -> StaticChoice:
    """Exhaustively search one assignment for the whole program."""
    names = program.array_names()
    writes = _writes_of(program)
    if candidates is None:
        candidates = {
            name: candidate_decompositions(
                len(env[name]), pmax, read_only=name not in writes
            )
            for name in names
        }
    best: Optional[Dict[str, Decomposition]] = None
    best_cost = float("inf")
    ranking: List[Tuple[Dict[str, Decomposition], float]] = []
    for combo in itertools.product(*(candidates[n] for n in names)):
        decomps = dict(zip(names, combo))
        cost = assignment_cost(program, decomps, env, model)
        ranking.append((decomps, cost))
        if cost < best_cost:
            best, best_cost = decomps, cost
    ranking.sort(key=lambda t: t[1])
    assert best is not None
    return StaticChoice(best, best_cost, ranking)


# ---------------------------------------------------------------------------
# phase-wise dynamic programming with redistribution
# ---------------------------------------------------------------------------

def _redistribution_cost(
    old: Dict[str, Decomposition],
    new: Dict[str, Decomposition],
    model: CostModel,
) -> float:
    """Modeled cost of moving every array from *old* to *new* layout."""
    total = 0.0
    for name, src in old.items():
        dst = new[name]
        if src is dst:
            continue
        if isinstance(src, Replicated) or isinstance(dst, Replicated):
            # replication changes are a broadcast/collapse: charge the
            # full volume once
            total += model.alpha * (src.pmax - 1) + model.beta * src.n
            continue
        plan = plan_redistribution(src, dst)
        total += (model.alpha * plan.message_count()
                  + model.beta * plan.moved_elements())
    return total


@dataclass
class DynamicChoice:
    """Result of the phase-wise DP."""

    per_phase: List[Dict[str, Decomposition]]
    cost: float
    static_cost: float

    def describe(self) -> str:
        lines = []
        for k, assign in enumerate(self.per_phase):
            inner = ", ".join(
                f"{n}={_label(d)}" for n, d in sorted(assign.items())
            )
            lines.append(f"phase {k}: {inner}")
        return "\n".join(lines)


def choose_dynamic(
    program: Program,
    env: Dict[str, np.ndarray],
    pmax: int,
    model: CostModel,
    candidates: Optional[Dict[str, List[Decomposition]]] = None,
) -> DynamicChoice:
    """Per-phase assignments by DP over (phase, assignment) states.

    Phase costs are measured on the simulator (with representative data
    propagated through the phases); transition costs are modeled
    redistribution.  Also reports the best *static* assignment cost for
    comparison.
    """
    names = program.array_names()
    writes = _writes_of(program)
    if candidates is None:
        candidates = {
            name: candidate_decompositions(
                len(env[name]), pmax, read_only=name not in writes
            )
            for name in names
        }
    states: List[Dict[str, Decomposition]] = [
        dict(zip(names, combo))
        for combo in itertools.product(*(candidates[n] for n in names))
    ]

    # measured per-phase costs, with data state propagated once
    phase_costs: List[List[float]] = []
    data = {k: np.array(v, copy=True) for k, v in env.items()}
    for clause in program.clauses:
        row = []
        result = None
        for st in states:
            plan = compile_clause(clause, st)
            machine = run_distributed(plan, data)
            row.append(model.makespan(machine.stats))
            if result is None:
                result = machine.collect(plan.write_name)
        phase_costs.append(row)
        data[clause.lhs.name] = result
    # DP
    n_states = len(states)
    INF = float("inf")
    dp = [phase_costs[0][s] for s in range(n_states)]
    back: List[List[int]] = []
    for k in range(1, len(program.clauses)):
        nxt = [INF] * n_states
        arg = [0] * n_states
        for s, st in enumerate(states):
            for s0, st0 in enumerate(states):
                cost = dp[s0] + _redistribution_cost(st0, st, model) + \
                    phase_costs[k][s]
                if cost < nxt[s]:
                    nxt[s] = cost
                    arg[s] = s0
        dp = nxt
        back.append(arg)
    # reconstruct
    s = min(range(n_states), key=lambda i: dp[i])
    total = dp[s]
    path = [s]
    for arg in reversed(back):
        s = arg[s]
        path.append(s)
    path.reverse()
    per_phase = [states[s] for s in path]

    static_cost = min(
        sum(phase_costs[k][s] for k in range(len(program.clauses)))
        for s in range(n_states)
    )
    return DynamicChoice(per_phase, total, static_cost)
