"""Multi-dimensional SPMD generation over processor grids.

The paper presents its derivation for the canonical 1-D clause "for
reasons of clarity" (§2.6); the index-set machinery is d-dimensional
throughout.  This module implements the natural d-dimensional lifting for
shared-memory machines: with a product decomposition
(:class:`~repro.decomp.multidim.GridDecomposition`) the owner of
``M[f_0(i_0), .., f_k(i_k)]`` is the grid point
``(proc_0(f_0(i_0)), .., proc_k(f_k(i_k)))`` — so the membership set
``Modify_p`` *factorizes into a Cartesian product of 1-D memberships*,
and every Table I closed form applies per dimension unchanged.

Loop dimensions the write does not constrain (e.g. the reduction index
``j`` in ``y[i] := y[i] + M[i,j] x[j]``) iterate their full range on the
owning node.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.clause import Clause, Ordering
from ..core.view import ProjectedMap, SeparableMap
from ..decomp.base import Decomposition
from ..decomp.multidim import GridDecomposition
from ..machine.shared import SharedMachine
from ..sets.membership import Work
from ..sets.table1 import OptimizedAccess, optimize_access

__all__ = ["NDPlan", "compile_clause_nd", "run_shared_nd"]

AnyDec = Union[Decomposition, GridDecomposition]


def _lhs_dims_funcs(clause: Clause) -> Tuple[Tuple[int, ...], tuple]:
    imap = clause.lhs.imap
    if isinstance(imap, SeparableMap):
        return tuple(range(imap.dim)), imap.funcs
    if isinstance(imap, ProjectedMap):
        return imap.dims, imap.funcs
    raise ValueError(
        "ND generation needs a separable/projected write access"
    )


@dataclass
class NDPlan:
    """Compiled d-dimensional clause: per-output-dimension memberships."""

    clause: Clause
    write_dec: AnyDec
    #: loop-dimension index feeding each output dimension
    out_dims: Tuple[int, ...]
    #: per-output-dimension Table I enumerator
    dim_access: List[OptimizedAccess]
    #: loop bounds per loop dimension
    loop_bounds: List[Tuple[int, int]]
    pmax: int
    #: unified pipeline IR and pass trace (set by ``compile_clause_nd``)
    ir: object = field(default=None, repr=False, compare=False)
    trace: object = field(default=None, repr=False, compare=False)

    def rules(self) -> Dict[str, str]:
        return {
            f"dim{k}": acc.rule for k, acc in enumerate(self.dim_access)
        }

    def modify_indices(
        self, p: int, work: Optional[Work] = None
    ) -> List[Tuple[int, ...]]:
        """``Modify_p`` as the Cartesian product of per-dimension sets,
        in lexicographic order over the loop dimensions."""
        coord = (self.write_dec.grid_coord(p)
                 if isinstance(self.write_dec, GridDecomposition) else (p,))
        per_loop_dim: List[List[int]] = []
        for d, (lo, hi) in enumerate(self.loop_bounds):
            if d in self.out_dims:
                k = self.out_dims.index(d)
                enum = self.dim_access[k].enumerate(coord[k], work)
                per_loop_dim.append(enum.indices())
            else:
                per_loop_dim.append(list(range(lo, hi + 1)))
        return list(itertools.product(*per_loop_dim))


def compile_clause_nd(
    clause: Clause, decomps: Dict[str, AnyDec]
) -> NDPlan:
    """Compile a d-dimensional clause against a grid decomposition of the
    written array (shared-memory execution).

    A shim over the unified pass pipeline: reads address global memory
    directly here, so only the written array needs a decomposition."""
    out_dims, funcs = _lhs_dims_funcs(clause)
    if len(set(out_dims)) != len(out_dims):
        raise ValueError(
            "two output dimensions draw from the same loop dimension"
        )
    wd = decomps[clause.lhs.name]
    ndim_w = wd.ndim if isinstance(wd, GridDecomposition) else 1
    if ndim_w != len(funcs):
        raise ValueError(
            f"write decomposition rank {ndim_w} != access rank {len(funcs)}"
        )
    from ..pipeline import compile_plan

    return compile_plan(
        clause, decomps, require_read_decomps=False
    ).to_nd_plan()


def run_shared_nd(
    plan: NDPlan,
    env: Dict[str, np.ndarray],
    machine: Optional[SharedMachine] = None,
    backend: str = "scalar",
    processes: Optional[int] = None,
    timeout: Optional[float] = None,
) -> SharedMachine:
    """Execute on the shared-memory machine (direct global addressing).

    ``backend="vector"`` runs ``//`` clauses through the NumPy segment
    executor; ``backend="fused"`` runs the compile-once node kernels
    (falling back to the vector executor when the plan has none);
    ``backend="native"`` runs the njit-compiled scalar-loop kernels
    (falling back to fused when numba is absent or the plan has no
    native form); ``backend="mp"`` runs those kernels on real worker processes
    (falling back to fused when the plan has no mp form);
    ``backend="mpi"`` runs them SPMD under ``mpiexec`` (falling back to
    fused when mpi4py is unavailable);
    • clauses (a serial chain) always take the scalar path.
    """
    from ..backends import validate_backend

    validate_backend(
        backend,
        allowed=("scalar", "vector", "fused", "native", "mp", "mpi"),
        context="run_shared_nd")
    clause = plan.clause
    if machine is None:
        machine = SharedMachine(plan.pmax, env)

    if backend == "mpi":
        from ..backends import backend_availability

        trace = getattr(plan, "trace", None)
        av = backend_availability("mpi")
        why = None
        if not av.available:
            why = av.reason
        elif plan.ir is None:
            why = "plan carries no IR"
        elif clause.ordering is not Ordering.PAR:
            why = "sequential (•) clause is a serial chain"
        if why is None:
            from ..mpi.exec import MpiUnavailableError, run_shared_mpi
            from ..runtime import MpLoweringError

            try:
                return run_shared_mpi(plan.ir, env, machine,
                                      processes=processes, timeout=timeout)
            except (MpLoweringError, MpiUnavailableError) as err:
                why = str(err)
        if trace is not None:
            trace.note(f"backend='mpi' fell back to the fused path: {why}")
        backend = "fused"

    if backend == "mp":
        if plan.ir is not None:
            from ..runtime import MpLoweringError, run_shared_mp

            try:
                return run_shared_mp(plan.ir, env, machine,
                                     processes=processes, timeout=timeout)
            except MpLoweringError as err:
                trace = getattr(plan, "trace", None)
                if trace is not None:
                    trace.note("backend='mp' fell back to the fused "
                               f"path: {err}")
        backend = "fused"

    if backend == "native":
        if plan.ir is not None and clause.ordering is Ordering.PAR:
            from ..machine.native import run_shared_native
            from ..pipeline.native import NativeBuildError

            try:
                return run_shared_native(plan.ir, env, machine)
            except NativeBuildError as err:
                trace = getattr(plan, "trace", None)
                if trace is not None:
                    trace.note("backend='native' fell back to the fused "
                               f"path: {err}")
        backend = "fused"

    if backend == "fused":
        kernels = getattr(plan.ir, "kernels", None) \
            if plan.ir is not None else None
        if (kernels is not None and kernels.shared is not None
                and clause.ordering is Ordering.PAR):
            from ..machine.fused import run_shared_fused

            return run_shared_fused(plan.ir, env, machine)
        trace = getattr(plan, "trace", None)
        if trace is not None:
            why = ("sequential (•) clause is a serial chain"
                   if clause.ordering is Ordering.SEQ else
                   kernels.shared_note if kernels is not None else
                   "no fused kernels on the plan")
            trace.note(f"backend='fused' fell back to the vector path: {why}")
        backend = "vector"

    if (backend == "vector" and clause.ordering is Ordering.PAR
            and plan.ir is not None):
        from ..machine.vectorize import run_shared_vector

        return run_shared_vector(plan.ir, env, machine)

    if clause.ordering is Ordering.SEQ:
        # global lexicographic serialization, charged to owners
        order: List[Tuple[int, Tuple[int, ...]]] = []
        for p in range(plan.pmax):
            for idx in plan.modify_indices(p):
                order.append((p, idx))
        order.sort(key=lambda t: t[1])
        target = machine.env[clause.lhs.name]
        for p, idx in order:
            machine.stats[p].iterations += 1
            if clause.guard is not None and not clause.guard.eval(
                idx, machine.env
            ):
                continue
            ai = clause.lhs.array_index(idx)
            target[ai if len(ai) > 1 else ai[0]] = clause.rhs.eval(
                idx, machine.env
            )
            machine.stats[p].local_updates += 1
        return machine

    def phase(p: int):
        writes = []
        work = Work()
        for idx in plan.modify_indices(p, work):
            machine.stats[p].iterations += 1
            if clause.guard is not None and not clause.guard.eval(
                idx, machine.env
            ):
                continue
            ai = clause.lhs.array_index(idx)
            writes.append((clause.lhs.name, ai, clause.rhs.eval(idx, machine.env)))
        machine.stats[p].membership_tests += work.tests
        return writes

    # SharedMachine.run_phase stores via [idx] — adapt tuple indices
    buffers = [phase(p) for p in range(plan.pmax)]
    for p, buf in enumerate(buffers):
        for name, ai, value in buf:
            machine.env[name][ai if len(ai) > 1 else ai[0]] = value
            machine.stats[p].local_updates += 1
        machine.stats[p].barriers += 1
    return machine
