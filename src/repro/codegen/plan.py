"""Compiling a V-cal clause + decompositions into an SPMD plan.

This is the Section 2.6 derivation made executable.  Starting from the
canonical clause (paper Eq. (1))

    ``∆(i ∈ (imin:imax)) [f(i)]A := Expr([g(i)](B), ...)``

and a decomposition for every array, the plan captures the rewritten form
Eq. (3): the processor parameter ``p``, the membership condition
``proc_A(f(i)) = p`` (compiled to a Table I enumerator — the *owner
computes* rule), and the placement ``(proc, local)`` of every read.

The plan is machine-independent; :mod:`repro.codegen.shared_tmpl` and
:mod:`repro.codegen.dist_tmpl` instantiate it for the two machine models,
and :mod:`repro.codegen.pysource` emits it as Python node-program source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.clause import Clause, Ordering
from ..core.expr import Ref
from ..core.ifunc import IFunc
from ..decomp.base import Decomposition
from ..decomp.replicated import Replicated
from ..sets.membership import Work
from ..sets.table1 import OptimizedAccess, optimize_access

__all__ = ["CompiledRead", "SPMDPlan", "compile_clause"]


@dataclass
class CompiledRead:
    """One read access ``[g(i)](B)`` with its decomposition and enumerator.

    ``temp`` names the per-iteration value slot in generated code; ``pos``
    is the read's position in the clause (tags disambiguate two reads of
    the same array with different access functions).
    """

    ref: Ref
    dec: Decomposition
    func: IFunc
    pos: int
    reside: OptimizedAccess

    @property
    def name(self) -> str:
        return self.ref.name

    @property
    def temp(self) -> str:
        return f"v{self.pos}"

    @property
    def always_local(self) -> bool:
        return isinstance(self.dec, Replicated)


@dataclass
class SPMDPlan:
    """Everything the machine templates need to emit node programs."""

    clause: Clause
    imin: int
    imax: int
    write_dec: Decomposition
    write_func: IFunc
    modify: OptimizedAccess
    reads: List[CompiledRead]
    pmax: int
    compile_work: Work = field(default_factory=Work)
    #: unified pipeline IR and pass trace (set by ``compile_clause``)
    ir: object = field(default=None, repr=False, compare=False)
    trace: object = field(default=None, repr=False, compare=False)

    @property
    def write_name(self) -> str:
        return self.clause.lhs.name

    @property
    def write_replicated(self) -> bool:
        return isinstance(self.write_dec, Replicated)

    def modify_indices(self, p: int, work: Optional[Work] = None) -> List[int]:
        """``Modify_p`` via the chosen Table I rule."""
        if self.write_replicated:
            return list(range(self.imin, self.imax + 1))
        return self.modify.indices(p, work)

    def reside_indices(
        self, read: CompiledRead, p: int, work: Optional[Work] = None
    ) -> List[int]:
        """``Reside_p`` of one read access."""
        return read.reside.indices(p, work)

    def writers_of(self, i: int) -> List[int]:
        """Processors that update ``A[f(i)]`` — one under owner-computes,
        all of them for a replicated target."""
        if self.write_replicated:
            return list(range(self.pmax))
        return [self.write_dec.proc(self.write_func(i))]

    def rules(self) -> Dict[str, str]:
        """Which Table I rule fired for each access (diagnostics)."""
        out = {f"write:{self.write_name}": self.modify.rule}
        for r in self.reads:
            out[f"read{r.pos}:{r.name}"] = r.reside.rule
        return out


def compile_clause(
    clause: Clause, decomps: Dict[str, Decomposition]
) -> SPMDPlan:
    """Compile a 1-D canonical clause against per-array decompositions.

    A thin shim over the unified pass pipeline
    (:func:`repro.pipeline.compile_plan`): it enforces this entry point's
    historical contract, then projects the Plan IR back onto
    :class:`SPMDPlan` (the IR and pass trace ride along as ``plan.ir`` /
    ``plan.trace``).  Raises ``KeyError`` when an array lacks a
    decomposition and ``ValueError`` for clause shapes outside the
    paper's canonical form (non-1-D domains).
    """
    if clause.domain.dim != 1:
        raise ValueError(
            "SPMD generation implements the paper's canonical 1-D clause; "
            f"got a {clause.domain.dim}-D domain"
        )
    from ..decomp.overlap import OverlappedBlock

    for name in clause.array_names():
        if isinstance(decomps.get(name), OverlappedBlock):
            raise ValueError(
                f"array {name!r} uses an OverlappedBlock: overlapped "
                "structures address local memory through halo slots — use "
                "repro.codegen.halo.compile_halo_stencil instead"
            )
    write_dec = decomps[clause.lhs.name]
    clause.lhs.scalar_func()  # same non-separable ValueError as always
    pmax = write_dec.pmax

    for ref in clause.reads():
        dec = decomps[ref.name]
        if dec.pmax != pmax:
            raise ValueError(
                f"array {ref.name!r} decomposed over {dec.pmax} processors, "
                f"but {clause.lhs.name!r} over {pmax}"
            )
        ref.scalar_func()

    from ..pipeline import compile_plan

    return compile_plan(clause, decomps).to_spmd_plan()
