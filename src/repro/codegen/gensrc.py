"""Inline source forms of the Table I generation functions.

For the closed-form rules, the generated node program should contain the
*formulas* of Table I — loop bounds as arithmetic in ``p`` — rather than
a call back into the compiler.  This module renders them:

* Theorem 1 (constant ``c``): ``t_min = imin`` for ``p = proc(c)``,
  empty otherwise, folded to an ``if p == ...`` at generation time
  (``proc(c)`` is compile-time known);
* block + affine: ``j in [max(imin, ceil((b.p - c)/a)),
  min(imax, floor((b.p + b - 1 - c)/a))]`` (with exact integer ceil/floor
  and slope-sign handling);
* scatter + affine (Theorem 3): ``x_p`` and the stride are computed *at
  node start-up* by extended Euclid — the paper's §4 recommendation that
  each processor compute its own constants — then the loop is a pure
  arithmetic progression;
* single-owner / replicated degenerate forms;
* everything else falls back to the runtime enumerator table
  (``RT.segments``), preserving correctness for monotone/piecewise
  accesses whose inverse has no closed source form.

The emitted fragments assign a list of ``(lo, hi, step)`` triples to a
variable, so the surrounding template is identical either way.
"""

from __future__ import annotations

from typing import List

from ..core.ifunc import AffineF, ConstantF
from ..decomp.block import Block
from ..decomp.replicated import Replicated, SingleOwner
from ..decomp.scatter import Scatter
from ..sets.table1 import OptimizedAccess

__all__ = ["segments_source", "SUPPORT_HELPERS", "VECTOR_HELPERS"]

#: helper functions injected into the generated module's namespace
SUPPORT_HELPERS = '''\
def _ceil_div(a, b):
    q, r = divmod(a, b)
    return q + (1 if r else 0)


def _floor_div(a, b):
    return a // b


def _solve_congruence(a, c, pmax, p):
    """Theorem 3 start-up: particular solution and stride of
    a.i + c ≡ p (mod pmax); None when this processor is inactive."""
    old_r, r = abs(a), pmax
    old_x, x = 1, 0
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
    g = old_r
    rhs = p - c
    if rhs % g:
        return None
    stride = pmax // g
    bez = old_x if a > 0 else -old_x
    x0 = (bez * (rhs // g)) % stride
    return x0, stride
'''

#: additional helpers for vector-backend generated modules: the segment
#: list becomes one sorted strided index vector, gathers broadcast and
#: tolerate non-resident placeholder slots (overwritten by receives).
VECTOR_HELPERS = '''\
import numpy as _np


def _vec_index(segs):
    """Sorted index vector of a (lo, hi, step) segment union — the
    lexicographic order both peers of a batched transfer agree on."""
    if not segs:
        return _np.empty(0, dtype=_np.int64)
    return _np.sort(_np.concatenate(
        [_np.arange(lo, hi + 1, st, dtype=_np.int64) for lo, hi, st in segs]))


def _vec_full(x, n, dtype):
    """Broadcast a scalar or vector result to a length-*n* vector."""
    a = _np.asarray(x, dtype=dtype)
    if a.shape != (n,):
        a = _np.broadcast_to(a, (n,)).copy()
    return a


def _vec_gather(buf, idx):
    """Gather with clamped indices: non-resident slots yield placeholder
    values that the update phase overwrites from received messages."""
    buf = _np.asarray(buf, dtype=_np.float64)
    if idx.size == 0 or buf.size == 0:
        return _np.zeros(idx.size, dtype=_np.float64)
    return buf[_np.clip(idx, 0, buf.shape[0] - 1)]
'''


def _affine_block_bounds(d: Block, f: AffineF, imin: int, imax: int,
                         var: str) -> List[str]:
    """Inline Table I block-row bounds for ``f(i) = a.i + c``."""
    a, c, b = f.a, f.c, d.b
    hi_data = f"min({b} * p + {b} - 1, {d.n - 1})"
    lo_data = f"{b} * p"
    if a > 0:
        jmin = f"max({imin}, _ceil_div({lo_data} - {c}, {a}))"
        jmax = f"min({imax}, _floor_div({hi_data} - {c}, {a}))"
    else:
        jmin = f"max({imin}, _ceil_div({hi_data} - {c}, {a}))"
        jmax = f"min({imax}, _floor_div({lo_data} - {c}, {a}))"
    return [
        f"{var}_lo = {jmin}",
        f"{var}_hi = {jmax}",
        f"{var} = [({var}_lo, {var}_hi, 1)] if {var}_lo <= {var}_hi else []",
    ]


def segments_source(acc: OptimizedAccess, var: str, rt_key: str) -> List[str]:
    """Source lines assigning the segment list for this access to *var*.

    Falls back to ``{var} = RT.segments({rt_key!r}, p)`` when no inline
    closed form exists for the (rule, types) combination.
    """
    d, f = acc.d, acc.f
    imin, imax = acc.imin, acc.imax

    # Theorem 1: proc(c) folds at generation time.
    if isinstance(f, ConstantF) and not isinstance(d, Replicated):
        owner = d.proc(f.c)
        return [
            f"# Thm 1: constant access, owner proc({f.c}) = {owner}",
            f"{var} = [({imin}, {imax}, 1)] if p == {owner} else []",
        ]

    if isinstance(d, SingleOwner):
        return [
            f"# single owner {d.owner}",
            f"{var} = [({imin}, {imax}, 1)] if p == {d.owner} else []",
        ]

    if isinstance(d, Replicated):
        return [f"{var} = [({imin}, {imax}, 1)]  # replicated: all nodes"]

    # Block + affine: pure arithmetic bounds (Table I rows 2/4 col 1).
    if isinstance(d, Block) and isinstance(f, AffineF):
        return [f"# block bounds, f(i) = {f.name}, b = {d.b}"] + \
            _affine_block_bounds(d, f, imin, imax, var)

    # Scatter + affine: Theorem 3 with node-local Euclid (§4).
    if isinstance(d, Scatter) and isinstance(f, AffineF):
        a, c = f.a, f.c
        # clip to indices whose data stays in [0, n)
        if a > 0:
            dlo = f"max({imin}, _ceil_div(0 - {c}, {a}))"
            dhi = f"min({imax}, _floor_div({d.n - 1} - {c}, {a}))"
        else:
            dlo = f"max({imin}, _ceil_div({d.n - 1} - {c}, {a}))"
            dhi = f"min({imax}, _floor_div(0 - {c}, {a}))"
        return [
            f"# Thm 3: scatter, f(i) = {f.name}; x_p via node-local Euclid",
            f"{var}_sol = _solve_congruence({a}, {c}, {d.pmax}, p)",
            f"if {var}_sol is None:",
            f"    {var} = []",
            f"else:",
            f"    {var}_x0, {var}_st = {var}_sol",
            f"    {var}_lo = {dlo}",
            f"    {var}_hi = {dhi}",
            f"    {var}_first = {var}_x0 + _ceil_div({var}_lo - {var}_x0, "
            f"{var}_st) * {var}_st",
            f"    {var}_last = {var}_x0 + _floor_div({var}_hi - {var}_x0, "
            f"{var}_st) * {var}_st",
            f"    {var} = ([({var}_first, {var}_last, {var}_st)]",
            f"        if {var}_first <= {var}_last else [])",
        ]

    # Fallback: runtime enumerator table (monotone, modular, BS courses).
    return [
        f"# rule {acc.rule}: no inline closed source form, runtime table",
        f"{var} = RT.segments({rt_key!r}, p)",
    ]
