"""SPMD program generation (paper Sections 2.6-2.10 and 4).

Beyond the paper's core (plan / shared_tmpl / dist_tmpl / pysource /
redistribute), this package implements the extensions inventoried in
DESIGN.md: DOACROSS pipelines (:mod:`.doacross`), halo stencils
(:mod:`.halo`), barrier elimination (:mod:`.barriers`), d-dimensional
generation (:mod:`.ndplan`, :mod:`.nddist`), inspector/executor for
indirect accesses (:mod:`.inspector`), and inline Table I formula
emission (:mod:`.gensrc`).
"""

from .autoselect import choose_dynamic, choose_static
from .barriers import barrier_removable, plan_barriers, run_program_shared
from .dist_tmpl import make_node_program, run_distributed
from .doacross import compile_doacross, run_doacross
from .exprsrc import CodegenError, expr_src, ifunc_src, local_src, proc_src
from .halo import compile_halo_stencil, run_halo_stencil
from .inspector import build_schedule, compile_indirect, run_executor
from .nddist import collect_nd, compile_clause_nd_dist, run_distributed_nd
from .ndplan import compile_clause_nd, run_shared_nd
from .plan import CompiledRead, SPMDPlan, compile_clause
from .pysource import (
    RuntimeTables,
    compile_distributed,
    compile_shared,
    emit_distributed_source,
    emit_shared_source,
)
from .redistribute import make_redistribution_program, run_redistribution
from .reduction import ReduceOp, compile_reduce, run_reduce
from .shared_tmpl import run_shared, shared_phase

__all__ = [
    "choose_static",
    "choose_dynamic",
    "compile_doacross",
    "run_doacross",
    "compile_halo_stencil",
    "run_halo_stencil",
    "barrier_removable",
    "plan_barriers",
    "run_program_shared",
    "compile_clause_nd",
    "run_shared_nd",
    "compile_clause_nd_dist",
    "run_distributed_nd",
    "collect_nd",
    "compile_indirect",
    "compile_reduce",
    "run_reduce",
    "ReduceOp",
    "build_schedule",
    "run_executor",
    "SPMDPlan",
    "CompiledRead",
    "compile_clause",
    "run_shared",
    "shared_phase",
    "make_node_program",
    "run_distributed",
    "emit_distributed_source",
    "emit_shared_source",
    "compile_distributed",
    "compile_shared",
    "RuntimeTables",
    "CodegenError",
    "ifunc_src",
    "proc_src",
    "local_src",
    "expr_src",
    "make_redistribution_program",
    "run_redistribution",
]
