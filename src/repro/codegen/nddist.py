"""d-dimensional distributed-memory SPMD generation.

The full lifting of the §2.10 template to product decompositions: for a
``//`` clause over a d-dimensional domain with separable/projected
accesses, the write owner is a grid point and both ``Modify_p`` and every
``Reside_p`` factorize into Cartesian products of 1-D Table I
memberships (see :mod:`repro.codegen.ndplan`).  The communication
pattern is the same send/update phase pair as the 1-D template, with
index *tuples* in the message tags.

Reads of lower rank than the loop nest (e.g. ``x[j]`` inside an
``(i, j)`` loop) are supported; note that such a read is shipped once per
*consuming iteration*, so a reduction operand that many iterations share
is cheaper replicated — exactly the trade-off the matvec example shows.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.clause import Clause, Ordering
from ..core.view import ProjectedMap, SeparableMap
from ..decomp.base import Decomposition
from ..decomp.multidim import GridDecomposition
from ..decomp.replicated import Replicated
from ..machine.distributed import DistributedMachine, NodeContext
from ..machine.ndmemory import gather_global_nd, scatter_global_nd
from ..sets.table1 import OptimizedAccess, optimize_access
from .dist_tmpl import _eval_fetched

__all__ = ["NDDistPlan", "compile_clause_nd_dist", "run_distributed_nd"]

AnyDec = Union[Decomposition, GridDecomposition]
Index = Tuple[int, ...]


def _access_spec(imap) -> Tuple[Tuple[int, ...], tuple]:
    if isinstance(imap, SeparableMap):
        return tuple(range(imap.dim)), imap.funcs
    if isinstance(imap, ProjectedMap):
        return imap.dims, imap.funcs
    raise ValueError("ND generation needs separable/projected accesses")


@dataclass
class _NDAccess:
    """One array access compiled against its decomposition: per-output-dim
    loop source and 1-D membership enumerators."""

    name: str
    dec: AnyDec
    dims: Tuple[int, ...]
    funcs: tuple
    per_dim: List[OptimizedAccess]

    @property
    def replicated(self) -> bool:
        return isinstance(self.dec, Replicated)

    def array_index(self, idx: Index) -> Index:
        return tuple(f(idx[d]) for d, f in zip(self.dims, self.funcs))

    def proc_of(self, idx: Index) -> int:
        ai = self.array_index(idx)
        if isinstance(self.dec, GridDecomposition):
            return self.dec.proc(ai)
        return self.dec.proc(ai[0])

    def local_of(self, idx: Index):
        ai = self.array_index(idx)
        if isinstance(self.dec, GridDecomposition):
            return self.dec.local(ai)
        return self.dec.local(ai[0])

    def membership(self, p: int, loop_bounds) -> List[Index]:
        """``{idx in domain | proc(access(idx)) = p}`` as a factorized
        product, lexicographic."""
        coord = (self.dec.grid_coord(p)
                 if isinstance(self.dec, GridDecomposition) else (p,))
        per_loop: List[List[int]] = []
        for d, (lo, hi) in enumerate(loop_bounds):
            if d in self.dims:
                k = self.dims.index(d)
                per_loop.append(self.per_dim[k].enumerate(coord[k]).indices())
            else:
                per_loop.append(list(range(lo, hi + 1)))
        return list(itertools.product(*per_loop))


def _compile_access(ref_name: str, imap, dec: AnyDec, loop_bounds) -> _NDAccess:
    dims, funcs = _access_spec(imap)
    axes = (dec.dims if isinstance(dec, GridDecomposition) else (dec,))
    if len(axes) != len(funcs):
        raise ValueError(
            f"access rank {len(funcs)} of {ref_name!r} != decomposition "
            f"rank {len(axes)}"
        )
    per_dim = []
    for k, f in enumerate(funcs):
        lo, hi = loop_bounds[dims[k]]
        per_dim.append(optimize_access(axes[k], f, lo, hi))
    return _NDAccess(ref_name, dec, dims, funcs, per_dim)


@dataclass
class NDDistPlan:
    clause: Clause
    write: _NDAccess
    reads: List[_NDAccess]
    loop_bounds: List[Tuple[int, int]]
    pmax: int
    #: unified pipeline IR and pass trace (set by ``compile_clause_nd_dist``)
    ir: object = field(default=None, repr=False, compare=False)
    trace: object = field(default=None, repr=False, compare=False)

    def rules(self) -> Dict[str, str]:
        out = {}
        for k, acc in enumerate(self.write.per_dim):
            out[f"write:dim{k}"] = acc.rule
        for pos, read in enumerate(self.reads):
            for k, acc in enumerate(read.per_dim):
                out[f"read{pos}:{read.name}:dim{k}"] = acc.rule
        return out


def compile_clause_nd_dist(
    clause: Clause, decomps: Dict[str, AnyDec]
) -> NDDistPlan:
    """Compile a d-dimensional ``//`` clause for distributed execution.

    A shim over the unified pass pipeline: the historical contract
    (``//`` only, no replicated write, matching ranks and processor
    counts) is enforced here, then the Plan IR is projected onto
    :class:`NDDistPlan`."""
    if clause.ordering is not Ordering.PAR:
        raise ValueError("ND distributed generation handles // clauses")

    def check_rank(name: str, imap, dec: AnyDec) -> None:
        _dims, funcs = _access_spec(imap)
        axes = (dec.dims if isinstance(dec, GridDecomposition) else (dec,))
        if len(axes) != len(funcs):
            raise ValueError(
                f"access rank {len(funcs)} of {name!r} != decomposition "
                f"rank {len(axes)}"
            )

    wd = decomps[clause.lhs.name]
    if isinstance(wd, Replicated):
        raise ValueError("replicated writes are not supported in ND mode")
    check_rank(clause.lhs.name, clause.lhs.imap, wd)
    pmax = wd.pmax

    for ref in clause.reads():
        dec = decomps[ref.name]
        if dec.pmax != pmax and not isinstance(dec, Replicated):
            raise ValueError(
                f"{ref.name!r} decomposed over {dec.pmax} processors, "
                f"write over {pmax}"
            )
        if isinstance(dec, Replicated):
            _access_spec(ref.imap)  # same shape error as before
        else:
            check_rank(ref.name, ref.imap, dec)

    from ..pipeline import compile_plan

    return compile_plan(clause, decomps).to_nd_dist_plan()


def _read_local(ctx: NodeContext, read: _NDAccess, idx: Index):
    buf = ctx.mem[read.name]
    if read.replicated:
        ai = read.array_index(idx)
        return buf[ai if len(ai) > 1 else ai[0]]
    li = read.local_of(idx)
    return buf[li if isinstance(li, tuple) and len(li) > 1 else
               (li[0] if isinstance(li, tuple) else li)]


def make_nd_node_program(plan: NDDistPlan, ctx: NodeContext) -> Generator:
    def program() -> Generator:
        p = ctx.p
        clause = plan.clause
        refs = list(clause.reads())

        # ---- send phase ---------------------------------------------------
        for pos, read in enumerate(plan.reads):
            if read.replicated:
                continue
            for idx in read.membership(p, plan.loop_bounds):
                ctx.stats.iterations += 1
                q = plan.write.proc_of(idx)
                if q != p:
                    ctx.send(q, (pos, idx), _read_local(ctx, read, idx))

        # ---- update phase (buffered writes, // premise) --------------------
        pending = []
        for idx in plan.write.membership(p, plan.loop_bounds):
            ctx.stats.iterations += 1
            by_ref: Dict[int, float] = {}
            for pos, (read, ref) in enumerate(zip(plan.reads, refs)):
                if read.replicated or read.proc_of(idx) == p:
                    by_ref[id(ref)] = _read_local(ctx, read, idx)
                else:
                    src = read.proc_of(idx)
                    payload = yield ctx.recv(src, (pos, idx))
                    by_ref[id(ref)] = ctx.note_received(payload)
            if clause.guard is not None and not _eval_fetched(
                clause.guard, idx, by_ref
            ):
                continue
            pending.append((plan.write.local_of(idx),
                            _eval_fetched(clause.rhs, idx, by_ref)))
        wbuf = ctx.mem[plan.write.name]
        for li, value in pending:
            key = li if isinstance(li, tuple) and len(li) > 1 else (
                li[0] if isinstance(li, tuple) else li)
            wbuf[key] = value
            ctx.stats.local_updates += 1

        yield ctx.barrier()

    return program()


def run_distributed_nd(
    plan: NDDistPlan,
    env: Dict[str, np.ndarray],
    machine: Optional[DistributedMachine] = None,
    backend: str = "scalar",
    model=None,
    strict: bool = False,
    processes: Optional[int] = None,
    timeout: Optional[float] = None,
) -> DistributedMachine:
    """Place *env* (grid decompositions get nd-local layouts), run the
    clause, return the machine; use :func:`collect_nd` for grid arrays.

    ``backend="vector"`` batches each (read, peer) transfer into a single
    value-vector message and evaluates the clause body as NumPy array
    operations over the factorized membership products;
    ``backend="overlap"`` additionally computes the interior of
    ``Modify_p`` while messages are in flight; ``backend="fused"`` runs
    the compile-once node kernels of the `lower-kernels` pass (grid
    local buffers addressed through precomputed raveled index arrays),
    falling back to the vector path with a trace note when the plan has
    no fused form.  *model* is an optional
    :class:`~repro.machine.channels.LatencyModel` for a new machine.
    *strict* makes a fused run refuse RACE*/COMM*-flagged clauses.
    ``backend="mp"`` runs the fused kernels on real worker processes
    (*processes*/*timeout* apply there), falling back to the fused path
    when the plan has no mp form or a pre-placed *machine* is given.
    ``backend="mpi"`` runs the same lowered programs SPMD under
    ``mpiexec`` over a Cartesian process grid matching the
    decomposition (:mod:`repro.mpi`), degrading to fused with a trace
    note when mpi4py is unavailable.
    """
    from ..backends import validate_backend

    validate_backend(backend, context="run_distributed_nd")
    if backend == "mpi":
        from ..backends import backend_availability

        trace = getattr(plan, "trace", None)
        av = backend_availability("mpi")
        why = None
        if not av.available:
            why = av.reason
        elif plan.ir is None:
            why = "plan carries no IR"
        elif machine is not None:
            why = ("a pre-placed machine was supplied; the MPI backend "
                   "owns its own placement")
        if why is None:
            from ..mpi.exec import MpiUnavailableError, run_distributed_mpi
            from ..runtime import MpLoweringError

            try:
                return run_distributed_mpi(plan.ir, env, strict=strict,
                                           processes=processes,
                                           timeout=timeout)
            except (MpLoweringError, MpiUnavailableError) as err:
                why = str(err)
        if trace is not None:
            trace.note(f"backend='mpi' fell back to the fused path: {why}")
        backend = "fused"
    if backend == "mp":
        trace = getattr(plan, "trace", None)
        why = None
        if plan.ir is None:
            why = "plan carries no IR"
        elif machine is not None:
            why = ("a pre-placed machine was supplied; the mp runtime "
                   "owns its own placement")
        if why is None:
            from ..runtime import MpLoweringError, run_distributed_mp

            try:
                return run_distributed_mp(plan.ir, env, strict=strict,
                                          processes=processes,
                                          timeout=timeout)
            except MpLoweringError as err:
                why = str(err)
        if trace is not None:
            trace.note(f"backend='mp' fell back to the fused path: {why}")
        backend = "fused"
    if backend == "native":
        if plan.ir is not None:
            from ..machine.native import run_distributed_native
            from ..pipeline.native import NativeBuildError

            try:
                return run_distributed_native(plan.ir, env, machine,
                                              model=model, strict=strict)
            except NativeBuildError as err:
                trace = getattr(plan, "trace", None)
                if trace is not None:
                    trace.note("backend='native' fell back to the fused "
                               f"path: {err}")
        else:
            trace = getattr(plan, "trace", None)
            if trace is not None:
                trace.note("backend='native' fell back to the fused path: "
                           "plan carries no IR")
        backend = "fused"
    if backend == "fused" and plan.ir is not None:
        kernels = getattr(plan.ir, "kernels", None)
        if kernels is not None and kernels.dist is not None:
            from ..machine.fused import run_distributed_fused

            return run_distributed_fused(plan.ir, env, machine, model=model,
                                         strict=strict)
        if strict:
            from ..machine.fused import check_strict

            check_strict(plan.ir, True)
        trace = getattr(plan, "trace", None)
        if trace is not None:
            why = (kernels.dist_note if kernels is not None
                   else "no fused kernels on the plan")
            trace.note(f"backend='fused' fell back to the vector path: {why}")
        backend = "vector"
    if backend == "overlap" and plan.ir is not None:
        from ..machine.vectorize import run_distributed_overlap

        return run_distributed_overlap(plan.ir, env, machine, model=model)
    if backend == "vector" and plan.ir is not None:
        from ..machine.vectorize import run_distributed_vector

        return run_distributed_vector(plan.ir, env, machine, model=model)
    if backend != "scalar":
        trace = getattr(plan, "trace", None)
        if trace is not None:
            trace.note(f"backend={backend!r} fell back to the scalar "
                       "template: plan carries no IR")
    decs: Dict[str, AnyDec] = {plan.write.name: plan.write.dec}
    for read in plan.reads:
        decs.setdefault(read.name, read.dec)
    if machine is None:
        machine = DistributedMachine(plan.pmax)
        for name, dec in decs.items():
            arr = np.asarray(env[name], dtype=np.float64)
            if isinstance(dec, GridDecomposition):
                scatter_global_nd(name, arr, dec, machine.memories)
                machine.decomps[name] = dec  # for bookkeeping
            else:
                machine.place(name, arr, dec)
    machine.run(lambda ctx: make_nd_node_program(plan, ctx))
    return machine


def collect_nd(machine: DistributedMachine, name: str) -> np.ndarray:
    """Gather a grid-decomposed array back to its global nd view."""
    if getattr(machine, "is_mp", False):
        return machine.collect(name)
    dec = machine.decomps[name]
    if isinstance(dec, GridDecomposition):
        return gather_global_nd(name, dec, machine.memories)
    return machine.collect(name)
