"""Idiom recognition: sequential accumulation clauses are reductions.

The front end translates ``for i := ... seq do s[0] := s[0] + B[i]*C[i]``
into a ``•``-ordered clause — semantically a serial chain, which the
DOACROSS machinery would pipeline at depth 1 (i.e. not at all).  But the
*idiom* is a reduction over an associative operator, and recognizing it
recovers all the parallelism: local folds + log-depth combine.

:func:`recognize_reduction` matches clauses of the shape

    ``∆(i) • s[c] := s[c] ⊕ Expr(...)``        ⊕ ∈ {+, *, min, max}

where the accumulator ``s[c]`` is a constant element not read by
``Expr``; :func:`run_clause_or_reduction` executes a clause through the
reduction path when the idiom matches (writing the result into the
accumulator on its owner), and through the ordinary templates otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.clause import Clause, Ordering
from ..core.expr import BinOp, Expr, Ref
from ..core.ifunc import ConstantF
from ..decomp.base import Decomposition
from ..machine.distributed import DistributedMachine
from .reduction import compile_reduce, run_reduce

__all__ = ["RecognizedReduction", "recognize_reduction",
           "run_clause_or_reduction"]

_REDUCIBLE = {"+", "*", "min", "max"}


@dataclass(frozen=True)
class RecognizedReduction:
    """A clause identified as ``s[c] := s[c] ⊕ Expr``."""

    op: str
    accumulator: str
    slot: int
    body: Expr


def _is_accumulator_ref(e: Expr, clause: Clause) -> Optional[int]:
    """Is *e* a read of the clause's own target at a constant index?
    Returns the constant slot, or None."""
    if not isinstance(e, Ref) or e.name != clause.lhs.name:
        return None
    try:
        f = e.scalar_func()
    except ValueError:
        return None
    if isinstance(f, ConstantF):
        return f.c
    return None


def recognize_reduction(clause: Clause) -> Optional[RecognizedReduction]:
    """Match the accumulation idiom; None when the clause is not one."""
    if clause.ordering is not Ordering.SEQ:
        return None
    if clause.domain.dim != 1:
        return None
    try:
        wf = clause.lhs.scalar_func()
    except ValueError:
        return None
    if not isinstance(wf, ConstantF):
        return None
    rhs = clause.rhs
    if not isinstance(rhs, BinOp) or rhs.op not in _REDUCIBLE:
        return None
    # one operand must be the accumulator read, the other the body
    for acc_side, body in ((rhs.left, rhs.right), (rhs.right, rhs.left)):
        slot = _is_accumulator_ref(acc_side, clause)
        if slot is None or slot != wf.c:
            continue
        # the body must not read the accumulator array (else the chain
        # is a genuine recurrence, not a reduction)
        if any(r.name == clause.lhs.name for r in body.refs()):
            return None
        if clause.guard is not None and any(
            r.name == clause.lhs.name for r in clause.guard.refs()
        ):
            return None
        return RecognizedReduction(rhs.op, clause.lhs.name, slot, body)
    return None


def run_clause_or_reduction(
    clause: Clause,
    decomps: Dict[str, Decomposition],
    env: Dict[str, np.ndarray],
    iter_dec: Optional[Decomposition] = None,
) -> Tuple[DistributedMachine, str]:
    """Execute *clause* distributed, through the reduction path when the
    idiom matches.  Returns ``(machine, path)`` with path in
    {"reduction", "template"}.

    For the reduction path the accumulator's previous value is folded in
    (the loop starts from the stored ``s[c]``) and the result is written
    back to the accumulator element on its owner, so the machine state
    afterwards is exactly what the sequential clause produces.
    """
    rec = recognize_reduction(clause)
    if rec is None:
        from .dist_tmpl import run_distributed
        from .plan import compile_clause

        return run_distributed(compile_clause(clause, decomps), env), \
            "template"

    if iter_dec is None:
        # default: block-partition the iteration domain
        from ..decomp.block import Block

        _lo, hi = clause.domain.bounds.scalar()
        acc_dec = decomps[rec.accumulator]
        iter_dec = Block(hi + 1, acc_dec.pmax)

    read_decomps = {
        name: decomps[name]
        for name in {r.name for r in rec.body.refs()}
    }
    if clause.guard is not None:
        for r in clause.guard.refs():
            read_decomps.setdefault(r.name, decomps[r.name])
    plan = compile_reduce(rec.op, clause.domain, rec.body, read_decomps,
                          iter_dec, guard=clause.guard)
    machine, value = run_reduce(plan, env)

    # fold in the accumulator's initial value and store on its owner
    from .reduction import ReduceOp

    op = ReduceOp(rec.op)
    init = float(env[rec.accumulator][rec.slot])
    total = op.fn(init, value)
    acc_dec = decomps[rec.accumulator]
    machine.place(rec.accumulator, env[rec.accumulator], acc_dec)
    owner = acc_dec.proc(rec.slot)
    machine.memories[owner][rec.accumulator][acc_dec.local(rec.slot)] = total
    return machine, "reduction"
