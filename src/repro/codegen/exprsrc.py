"""Compiling V-cal fragments to Python source text.

Three small compilers used by the node-program emitter:

* :func:`ifunc_src`   — index functions ``f(i)`` to arithmetic expressions;
* :func:`proc_src` / :func:`local_src` — a decomposition's placement
  functions applied to a value expression (inlined per decomposition kind,
  exactly the formulas of Fig. 2);
* :func:`expr_src`    — element-wise expression trees to Python, with data
  references resolved through a caller-supplied renderer (local array
  subscript in shared-memory code, fetched temp in distributed code).
"""

from __future__ import annotations

from typing import Callable

from ..core.expr import BinOp, Const, Expr, LoopIndex, Ref, UnOp
from ..core.ifunc import AffineF, ComposedF, ConstantF, IFunc, ModularF
from ..decomp.base import Decomposition
from ..decomp.block import Block
from ..decomp.blockscatter import BlockScatter
from ..decomp.replicated import Replicated, SingleOwner
from ..decomp.scatter import Scatter

__all__ = ["ifunc_src", "proc_src", "local_src", "expr_src", "vexpr_src",
           "CodegenError"]


class CodegenError(ValueError):
    """A fragment has no closed-form source rendering."""


def ifunc_src(f: IFunc, var: str = "i") -> str:
    """Python expression computing ``f(var)``.

    Raises :class:`CodegenError` for opaque callables (MonotoneF) — the
    emitter falls back to a runtime table for those.
    """
    if isinstance(f, ConstantF):
        return str(f.c)
    if isinstance(f, AffineF):
        if f.a == 1 and f.c == 0:
            return var
        if f.a == 1:
            return f"({var} + {f.c})" if f.c > 0 else f"({var} - {-f.c})"
        core = f"{f.a} * {var}"
        if f.c:
            return f"({core} + {f.c})" if f.c > 0 else f"({core} - {-f.c})"
        return f"({core})"
    if isinstance(f, ModularF):
        inner = ifunc_src(f.g, var)
        s = f"({inner} % {f.z})"
        return f"({s} + {f.d})" if f.d else s
    if isinstance(f, ComposedF):
        return ifunc_src(f.outer, ifunc_src(f.inner, var))
    raise CodegenError(f"no source form for {type(f).__name__} ({f.name})")


def proc_src(d: Decomposition, value: str) -> str:
    """Python expression for ``proc(value)`` under *d* (Fig. 2 formulas)."""
    if isinstance(d, Block):
        return f"(({value}) // {d.b})"
    if isinstance(d, Scatter):
        return f"(({value}) % {d.pmax})"
    if isinstance(d, BlockScatter):
        return f"((({value}) // {d.b}) % {d.pmax})"
    if isinstance(d, SingleOwner):
        return str(d.owner)
    if isinstance(d, Replicated):
        return "p"  # every copy is local to its holder
    raise CodegenError(f"no proc() source for {type(d).__name__}")


def local_src(d: Decomposition, value: str) -> str:
    """Python expression for ``local(value)`` under *d*."""
    if isinstance(d, Block):
        return f"(({value}) % {d.b})"
    if isinstance(d, Scatter):
        return f"(({value}) // {d.pmax})"
    if isinstance(d, BlockScatter):
        bp = d.b * d.pmax
        return f"({d.b} * (({value}) // {bp}) + ({value}) % {d.b})"
    if isinstance(d, (SingleOwner, Replicated)):
        return f"({value})"
    raise CodegenError(f"no local() source for {type(d).__name__}")


_BINOP_PY = {
    "+": "+", "-": "-", "*": "*", "/": "/", "div": "//", "mod": "%",
    ">": ">", ">=": ">=", "<": "<", "<=": "<=", "=": "==", "!=": "!=",
    "and": "and", "or": "or",
}


def expr_src(
    expr: Expr, ref_render: Callable[[Ref], str], var: str = "i"
) -> str:
    """Python source for an expression tree.

    *ref_render* maps each data reference to its source form — e.g.
    ``lambda r: f"B_loc[{...}]"`` or a fetched temp name.
    """
    if isinstance(expr, Const):
        return repr(expr.value)
    if isinstance(expr, LoopIndex):
        return var if expr.dim == 0 else f"{var}{expr.dim}"
    if isinstance(expr, Ref):
        return ref_render(expr)
    if isinstance(expr, BinOp):
        left = expr_src(expr.left, ref_render, var)
        right = expr_src(expr.right, ref_render, var)
        if expr.op in ("min", "max"):
            return f"{expr.op}({left}, {right})"
        return f"({left} {_BINOP_PY[expr.op]} {right})"
    if isinstance(expr, UnOp):
        inner = expr_src(expr.operand, ref_render, var)
        if expr.op == "abs":
            return f"abs({inner})"
        if expr.op == "not":
            return f"(not {inner})"
        return f"(-{inner})"
    raise CodegenError(f"cannot render expression node {type(expr).__name__}")


#: operators whose scalar Python spelling (builtin min/max, short-circuit
#: and/or/not) does not broadcast over ndarrays — vector source uses the
#: element-wise NumPy counterparts instead.
_VEC_CALLS = {
    "min": "_np.minimum",
    "max": "_np.maximum",
    "and": "_np.logical_and",
    "or": "_np.logical_or",
}


def vexpr_src(
    expr: Expr, ref_render: Callable[[Ref], str], var: str = "i"
) -> str:
    """ndarray-safe Python source for an expression tree.

    Like :func:`expr_src`, but *var* is an index *vector* and every
    operator broadcasts element-wise; used by the vector-backend emitters.
    """
    if isinstance(expr, Const):
        return repr(expr.value)
    if isinstance(expr, LoopIndex):
        return var if expr.dim == 0 else f"{var}{expr.dim}"
    if isinstance(expr, Ref):
        return ref_render(expr)
    if isinstance(expr, BinOp):
        left = vexpr_src(expr.left, ref_render, var)
        right = vexpr_src(expr.right, ref_render, var)
        if expr.op in _VEC_CALLS:
            return f"{_VEC_CALLS[expr.op]}({left}, {right})"
        return f"({left} {_BINOP_PY[expr.op]} {right})"
    if isinstance(expr, UnOp):
        inner = vexpr_src(expr.operand, ref_render, var)
        if expr.op == "abs":
            return f"_np.absolute({inner})"
        if expr.op == "not":
            return f"_np.logical_not({inner})"
        return f"(-{inner})"
    raise CodegenError(f"cannot render expression node {type(expr).__name__}")
