"""Generated redistribution code (dynamic decompositions, paper §1/§5).

Turns a :class:`~repro.decomp.dynamic.RedistributionPlan` into SPMD node
programs for the distributed machine: every node packs one message per
destination (coalesced — not one message per element), receives one
message per source, and applies its intra-node moves from a shadow copy
(so overlapping src/dst slots cannot clobber each other).

This is the automation the paper's introduction asks for: redistribution
derived entirely from the two decomposition specifications, never written
into the program text.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Tuple

import numpy as np

from ..decomp.base import Decomposition
from ..decomp.dynamic import RedistributionPlan, plan_redistribution
from ..machine.distributed import DistributedMachine, NodeContext

__all__ = ["make_redistribution_program", "run_redistribution"]


def make_redistribution_program(
    plan: RedistributionPlan, name: str, ctx: NodeContext
) -> Generator:
    """Node program moving array *name* from ``plan.src`` to ``plan.dst``."""

    def program() -> Generator:
        p = ctx.p
        old = ctx.mem[name]

        # Allocate the destination-layout buffer.
        new_size = plan.dst.local_size(p)
        new = np.zeros(max(new_size, 0), dtype=old.dtype if old.size else float)

        # Pack and send one coalesced message per destination processor.
        out_pairs = sorted(
            q for (src, q) in plan.messages if src == p
        )
        for q in out_pairs:
            triples = plan.messages[(p, q)]
            payload = np.array([old[sl] for (sl, _dl, _gi) in triples])
            ctx.send(q, ("redist", name), payload)

        # Intra-node moves (from the old buffer — it is the shadow copy).
        for sl, dl in plan.stay.get(p, []):
            new[dl] = old[sl]
            ctx.stats.local_updates += 1

        # Receive one message per source processor; slot order is the
        # sender's triple order, mirrored here from the same plan.
        in_pairs = sorted(src for (src, q) in plan.messages if q == p)
        for src in in_pairs:
            triples = plan.messages[(src, p)]
            payload = yield ctx.recv(src, ("redist", name))
            ctx.note_received(payload)
            for (_sl, dl, _gi), value in zip(triples, payload):
                new[dl] = value
                ctx.stats.local_updates += 1

        ctx.mem.arrays[name] = new
        yield ctx.barrier()

    return program()


def run_redistribution(
    machine: DistributedMachine, name: str, new_dec: Decomposition
) -> RedistributionPlan:
    """Redistribute the placed array *name* on *machine* to *new_dec*.

    Returns the plan (for message/volume statistics); the machine's
    decomposition registry is updated so ``collect`` keeps working.
    """
    old_dec = machine.decomposition(name)
    plan = plan_redistribution(old_dec, new_dec)
    machine.run(lambda ctx: make_redistribution_program(plan, name, ctx))
    machine.decomps[name] = new_dec
    return plan
