"""Generated stencil programs over overlapped decompositions (§5).

The paper lists "overlapped decompositions" as future work; this module
implements them end to end for the workload they exist for — iterated
stencils.  A clause

    ``∆(i) // A[i] := Expr(B[i - r], .., B[i + r])``

over :class:`~repro.decomp.overlap.OverlappedBlock` structures with halo
width ``>= r`` compiles to node programs that

1. *refresh halos* — one **coalesced** message per neighbour pair
   carrying the whole boundary strip (instead of one message per element
   per read, which is what the general §2.10 template does), then
2. *compute purely locally* — every read is resident by construction,

which is the classic ghost-cell pattern.  The E16 ablation benchmark
compares the two message disciplines as the stencil radius grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

import numpy as np

from ..core.clause import Clause, Ordering
from ..core.ifunc import AffineF
from ..decomp.overlap import OverlappedBlock, halo_exchange_plan
from ..machine.distributed import DistributedMachine, NodeContext
from .dist_tmpl import _eval_fetched

__all__ = ["HaloPlan", "compile_halo_stencil", "run_halo_stencil",
           "make_halo_program"]


@dataclass
class HaloPlan:
    """A validated halo-stencil clause: decompositions, shifts, and the
    per-array coalesced exchange plans."""

    clause: Clause
    write_dec: OverlappedBlock
    read_decs: Dict[str, OverlappedBlock]
    shifts: Dict[int, int]  # read position -> shift c
    imin: int
    imax: int

    @property
    def write_name(self) -> str:
        return self.clause.lhs.name

    @property
    def pmax(self) -> int:
        return self.write_dec.pmax

    def radius(self) -> int:
        return max((abs(c) for c in self.shifts.values()), default=0)


def compile_halo_stencil(
    clause: Clause, decomps: Dict[str, OverlappedBlock]
) -> HaloPlan:
    """Validate a stencil clause against overlapped decompositions."""
    if clause.ordering is not Ordering.PAR:
        raise ValueError("halo stencils are //-clauses")
    if clause.domain.dim != 1:
        raise ValueError("halo stencil generation is 1-D")
    imin, imax = clause.domain.bounds.scalar()

    wd = decomps[clause.lhs.name]
    if not isinstance(wd, OverlappedBlock):
        raise ValueError("write decomposition must be an OverlappedBlock")
    wf = clause.lhs.scalar_func()
    if not (isinstance(wf, AffineF) and wf.a == 1 and wf.c == 0):
        raise ValueError("halo stencil writes must be identity A[i]")

    shifts: Dict[int, int] = {}
    read_decs: Dict[str, OverlappedBlock] = {}
    for pos, ref in enumerate(clause.reads()):
        dec = decomps[ref.name]
        if not isinstance(dec, OverlappedBlock):
            raise ValueError(
                f"read {ref.name!r} must use an OverlappedBlock"
            )
        if dec.pmax != wd.pmax or dec.b != wd.b or dec.n != wd.n:
            raise ValueError(
                f"read {ref.name!r} must align with the write decomposition"
            )
        g = ref.scalar_func()
        if not (isinstance(g, AffineF) and g.a == 1):
            raise ValueError(
                f"stencil reads must be shifts B[i + c]; got {g.name}"
            )
        if abs(g.c) > dec.halo:
            raise ValueError(
                f"shift {g.c} exceeds halo width {dec.halo} of {ref.name!r}"
            )
        lo, hi = g(imin), g(imax)
        if lo < 0 or hi >= dec.n:
            raise ValueError(
                f"read {ref.name}[i{g.c:+d}] leaves the array on "
                f"domain {imin}:{imax}"
            )
        shifts[pos] = g.c
        read_decs[ref.name] = dec
    return HaloPlan(clause, wd, read_decs, shifts, imin, imax)


def make_halo_program(plan: HaloPlan, ctx: NodeContext) -> Generator:
    """Node program: coalesced halo refresh, then purely local compute."""

    def program() -> Generator:
        p = ctx.p
        clause = plan.clause
        wd = plan.write_dec

        # ---- halo refresh: one message per (src, dst, array) -------------
        for name, dec in plan.read_decs.items():
            exchange = halo_exchange_plan(dec)
            outgoing: Dict[int, List] = {}
            for (src, dst), transfers in exchange.items():
                if src != p:
                    continue
                buf = ctx.mem[name]
                payload = np.array([
                    buf[dec.local_slot(p, t.global_index)] for t in transfers
                ])
                ctx.send(dst, ("halo", name), payload)
            incoming = sorted(
                src for (src, dst) in exchange if dst == p
            )
            for src in incoming:
                transfers = exchange[(src, p)]
                payload = yield ctx.recv(src, ("halo", name))
                ctx.note_received(payload)
                buf = ctx.mem[name]
                for t, v in zip(transfers, payload):
                    buf[t.dst_slot] = v

        # ---- purely local compute ------------------------------------------
        reads = list(clause.reads())
        pending: List[Tuple[int, float]] = []
        for i in wd.owned(p):
            if not (plan.imin <= i <= plan.imax):
                continue
            ctx.stats.iterations += 1
            by_ref = {}
            for pos, ref in enumerate(reads):
                dec = plan.read_decs[ref.name]
                gi = i + plan.shifts[pos]
                by_ref[id(ref)] = ctx.mem[ref.name][dec.local_slot(p, gi)]
            idx = (i,)
            if clause.guard is not None and not _eval_fetched(
                clause.guard, idx, by_ref
            ):
                continue
            pending.append((wd.local_slot(p, i),
                            _eval_fetched(clause.rhs, idx, by_ref)))
        for slot, value in pending:
            ctx.mem[plan.write_name][slot] = value
            ctx.stats.local_updates += 1

        yield ctx.barrier()

    return program()


def run_halo_stencil(
    plan: HaloPlan,
    env: Dict[str, np.ndarray],
    machine: Optional[DistributedMachine] = None,
) -> DistributedMachine:
    """Place, run one stencil application, return the machine."""
    if machine is None:
        machine = DistributedMachine(plan.pmax)
        machine.place(plan.write_name, env[plan.write_name], plan.write_dec)
        for name, dec in plan.read_decs.items():
            if name not in machine.decomps:
                machine.place(name, env[name], dec)
    machine.run(lambda ctx: make_halo_program(plan, ctx))
    return machine
