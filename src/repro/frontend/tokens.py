"""Token definitions for the Fig. 1 imperative mini-language."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

__all__ = ["Token", "KEYWORDS", "SYMBOLS"]

KEYWORDS = {
    "for", "to", "do", "od", "if", "then", "else", "fi",
    "par", "seq", "div", "mod", "and", "or", "not", "view",
}

# longest-match first
SYMBOLS = [
    ":=", "<=", ">=", "!=", "<", ">", "=",
    "+", "-", "*", "/", "(", ")", "[", "]", ";", ",",
]


@dataclass(frozen=True)
class Token:
    kind: str  # 'num' | 'ident' | 'kw' | 'sym' | 'eof'
    value: Hashable
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.kind}:{self.value!r}@{self.line}:{self.col})"
