"""Recursive-descent parser for the Fig. 1 mini-language.

Grammar (statements end in ``;``, loop order defaults to ``seq`` like the
paper's ``for`` — annotate ``par`` to assert independence)::

    program := stmt*
    stmt    := for | if | assign
    for     := 'for' IDENT ':=' expr 'to' expr ('par'|'seq')? 'do' stmt* 'od' ';'?
    if      := 'if' expr 'then' stmt* ('else' stmt*)? 'fi' ';'?
    assign  := IDENT '[' expr (',' expr)* ']' ':=' expr ';'

    expr    := orterm ('or' orterm)*
    orterm  := andterm ('and' andterm)*
    andterm := ('not' andterm) | cmp
    cmp     := sum (('<'|'<='|'>'|'>='|'='|'!=') sum)?
    sum     := prod (('+'|'-') prod)*
    prod    := unary (('*'|'/'|'div'|'mod') unary)*
    unary   := '-' unary | atom
    atom    := NUM | IDENT ('[' expr (',' expr)* ']')? | '(' expr ')'
"""

from __future__ import annotations

from typing import List

from .ast import (
    Assign,
    Bin,
    Block,
    For,
    If,
    Node,
    Num,
    Subscript,
    Un,
    Var,
    ViewDecl,
)
from .lexer import tokenize
from .tokens import Token

__all__ = ["ParseError", "Parser", "parse"]


class ParseError(SyntaxError):
    """Input does not conform to the grammar."""


class Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def at(self, kind: str, value=None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (value is None or tok.value == value)

    def expect(self, kind: str, value=None) -> Token:
        tok = self.peek()
        if not self.at(kind, value):
            want = value if value is not None else kind
            raise ParseError(
                f"expected {want!r}, got {tok.value!r} at line {tok.line}"
            )
        return self.next()

    def accept(self, kind: str, value=None) -> bool:
        if self.at(kind, value):
            self.next()
            return True
        return False

    # -- statements --------------------------------------------------------------

    def parse_program(self) -> Block:
        body: List[Node] = []
        while not self.at("eof"):
            body.append(self.parse_stmt())
        return Block(body)

    def parse_stmt(self) -> Node:
        if self.at("kw", "for"):
            return self.parse_for()
        if self.at("kw", "if"):
            return self.parse_if()
        if self.at("kw", "view"):
            return self.parse_view()
        return self.parse_assign()

    def parse_view(self) -> ViewDecl:
        """``view V[i, j] := A[e1, e2];``"""
        self.expect("kw", "view")
        name = self.expect("ident").value
        self.expect("sym", "[")
        formals = [self.expect("ident").value]
        while self.accept("sym", ","):
            formals.append(self.expect("ident").value)
        self.expect("sym", "]")
        self.expect("sym", ":=")
        target_name = self.expect("ident").value
        self.expect("sym", "[")
        indices = [self.parse_expr()]
        while self.accept("sym", ","):
            indices.append(self.parse_expr())
        self.expect("sym", "]")
        self.expect("sym", ";")
        return ViewDecl(name, tuple(formals), Subscript(target_name,
                                                        tuple(indices)))

    def parse_for(self) -> For:
        self.expect("kw", "for")
        var = self.expect("ident").value
        self.expect("sym", ":=")
        lo = self.parse_expr()
        self.expect("kw", "to")
        hi = self.parse_expr()
        order = "seq"
        if self.accept("kw", "par"):
            order = "par"
        elif self.accept("kw", "seq"):
            order = "seq"
        self.expect("kw", "do")
        body: List[Node] = []
        while not self.at("kw", "od"):
            body.append(self.parse_stmt())
        self.expect("kw", "od")
        self.accept("sym", ";")
        return For(var, lo, hi, order, body)

    def parse_if(self) -> If:
        self.expect("kw", "if")
        cond = self.parse_expr()
        self.expect("kw", "then")
        body: List[Node] = []
        while not (self.at("kw", "fi") or self.at("kw", "else")):
            body.append(self.parse_stmt())
        orelse: List[Node] = []
        if self.accept("kw", "else"):
            while not self.at("kw", "fi"):
                orelse.append(self.parse_stmt())
        self.expect("kw", "fi")
        self.accept("sym", ";")
        return If(cond, body, orelse)

    def parse_assign(self) -> Assign:
        name = self.expect("ident").value
        self.expect("sym", "[")
        indices = [self.parse_expr()]
        while self.accept("sym", ","):
            indices.append(self.parse_expr())
        self.expect("sym", "]")
        target = Subscript(name, tuple(indices))
        self.expect("sym", ":=")
        value = self.parse_expr()
        self.expect("sym", ";")
        return Assign(target, value)

    # -- expressions -----------------------------------------------------------

    def parse_expr(self) -> Node:
        node = self.parse_andterm()
        while self.at("kw", "or"):
            self.next()
            node = Bin("or", node, self.parse_andterm())
        return node

    def parse_andterm(self) -> Node:
        node = self.parse_notterm()
        while self.at("kw", "and"):
            self.next()
            node = Bin("and", node, self.parse_notterm())
        return node

    def parse_notterm(self) -> Node:
        if self.accept("kw", "not"):
            return Un("not", self.parse_notterm())
        return self.parse_cmp()

    def parse_cmp(self) -> Node:
        node = self.parse_sum()
        for op in ("<=", ">=", "!=", "<", ">", "="):
            if self.at("sym", op):
                self.next()
                return Bin(op, node, self.parse_sum())
        return node

    def parse_sum(self) -> Node:
        node = self.parse_prod()
        while self.at("sym", "+") or self.at("sym", "-"):
            op = self.next().value
            node = Bin(op, node, self.parse_prod())
        return node

    def parse_prod(self) -> Node:
        node = self.parse_unary()
        while (
            self.at("sym", "*")
            or self.at("sym", "/")
            or self.at("kw", "div")
            or self.at("kw", "mod")
        ):
            op = self.next().value
            node = Bin(op, node, self.parse_unary())
        return node

    def parse_unary(self) -> Node:
        if self.accept("sym", "-"):
            return Un("-", self.parse_unary())
        return self.parse_atom()

    def parse_atom(self) -> Node:
        tok = self.peek()
        if tok.kind == "num":
            self.next()
            return Num(tok.value)
        if tok.kind == "ident":
            self.next()
            if self.accept("sym", "["):
                indices = [self.parse_expr()]
                while self.accept("sym", ","):
                    indices.append(self.parse_expr())
                self.expect("sym", "]")
                return Subscript(tok.value, tuple(indices))
            return Var(tok.value)
        if self.accept("sym", "("):
            node = self.parse_expr()
            self.expect("sym", ")")
            return node
        raise ParseError(
            f"unexpected token {tok.value!r} at line {tok.line}"
        )


def parse(source: str) -> Block:
    """Parse a program text into its AST."""
    return Parser(tokenize(source)).parse_program()
