"""Translation of mini-language ASTs to V-cal (paper Section 2.5, Fig. 1).

The paper's Fig. 1 example::

    for i:=imin to imax do
        if A[i]>0 then A[i] := B[f(i)]; fi;
    od;

translates to ``∆(i ∈ (k+1:n | [i]A>0)) // ([i](A) := [f(i)](B))``.  This
module performs that extraction mechanically:

* loop nests become parameter-expression domains (1-D or multi-D);
* every subscript expression is classified into an index-propagation
  function — constant, affine ``a.i + c``, or modular
  ``(a.i + c) mod z + d`` — the classes Table I optimizes;
* ``if`` conditions become guards (data predicates on the index set);
* each assignment becomes one clause, in program order.

Symbolic names in bounds and subscripts (``n``, ``k``) are resolved
through a *params* mapping at translation time, mirroring the paper's
compile-time-known constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.bounds import Bounds
from ..core.clause import Clause, Ordering, Program
from ..core.expr import BinOp, Const, Expr, LoopIndex, Ref, UnOp
from ..core.ifunc import AffineF, ConstantF, IFunc, ModularF
from ..core.indexset import IndexSet
from ..core.view import ProjectedMap
from . import ast as A
from .parser import parse

__all__ = ["TranslateError", "translate", "translate_source", "classify_index_expr"]


class TranslateError(ValueError):
    """The program falls outside the translatable fragment."""


# ---------------------------------------------------------------------------
# symbolic linear-form analysis of index expressions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _Lin:
    """``a.v + c`` in the single loop variable ``v`` (a may be 0)."""

    a: int
    c: int
    var: Optional[str]  # None when a == 0

    def is_const(self) -> bool:
        return self.a == 0


def _fold_const(node: A.Node, params: Dict[str, int]) -> int:
    """Evaluate an expression containing no loop variables to an int."""
    lin = _linearize(node, params, loop_vars=())
    if not isinstance(lin, _Lin) or not lin.is_const():
        raise TranslateError(f"expression is not compile-time constant: {node}")
    return lin.c


def _linearize(node: A.Node, params: Dict[str, int], loop_vars: Tuple[str, ...]):
    """Symbolic evaluation to ``_Lin`` or a ``ModularF``-shaped tuple.

    Returns either ``_Lin`` or ``("mod", _Lin, z, d)`` representing
    ``(a.v + c) mod z + d``.
    """
    if isinstance(node, A.Num):
        return _Lin(0, node.value, None)
    if isinstance(node, A.Var):
        if node.name in loop_vars:
            return _Lin(1, 0, node.name)
        if node.name in params:
            return _Lin(0, int(params[node.name]), None)
        raise TranslateError(f"unknown name {node.name!r} in index expression")
    if isinstance(node, A.Un) and node.op == "-":
        inner = _linearize(node.operand, params, loop_vars)
        if isinstance(inner, _Lin):
            return _Lin(-inner.a, -inner.c, inner.var)
        raise TranslateError("cannot negate a modular index expression")
    if isinstance(node, A.Bin):
        op = node.op
        left = _linearize(node.left, params, loop_vars)
        right = _linearize(node.right, params, loop_vars)
        # modular forms may only be adjusted by constants
        if isinstance(left, tuple) or isinstance(right, tuple):
            if op in ("+", "-"):
                mod, const, sign = (
                    (left, right, 1) if isinstance(left, tuple) else (right, left, -1)
                )
                if isinstance(const, _Lin) and const.is_const() and not (
                    isinstance(left, tuple) and isinstance(right, tuple)
                ):
                    _tag, lin, z, d = mod
                    if op == "+":
                        return ("mod", lin, z, d + const.c)
                    if sign == 1:  # mod - const
                        return ("mod", lin, z, d - const.c)
            raise TranslateError(
                "modular index expressions support only ± constant"
            )
        assert isinstance(left, _Lin) and isinstance(right, _Lin)
        if left.var and right.var and left.var != right.var:
            raise TranslateError(
                f"index expression mixes loop variables {left.var!r} and "
                f"{right.var!r}"
            )
        var = left.var or right.var
        if op == "+":
            return _Lin(left.a + right.a, left.c + right.c, var if (left.a + right.a) else None)
        if op == "-":
            return _Lin(left.a - right.a, left.c - right.c, var if (left.a - right.a) else None)
        if op == "*":
            if left.a and right.a:
                raise TranslateError("non-linear index expression (v * v)")
            if right.is_const():
                return _Lin(left.a * right.c, left.c * right.c,
                            var if left.a * right.c else None)
            return _Lin(right.a * left.c, right.c * left.c,
                        var if right.a * left.c else None)
        if op == "div":
            if not right.is_const() or right.c == 0:
                raise TranslateError("div requires a non-zero constant divisor")
            if left.is_const():
                return _Lin(0, left.c // right.c, None)
            raise TranslateError(
                "div of the loop variable is not affine (classify as "
                "monotone via the API instead)"
            )
        if op == "mod":
            if not right.is_const() or right.c <= 0:
                raise TranslateError("mod requires a positive constant modulus")
            if left.is_const():
                return _Lin(0, left.c % right.c, None)
            return ("mod", left, right.c, 0)
        raise TranslateError(f"operator {op!r} not allowed in index expressions")
    raise TranslateError(
        f"unsupported index expression node {type(node).__name__}"
    )


def classify_index_expr(
    node: A.Node, params: Dict[str, int], loop_vars: Tuple[str, ...]
) -> Tuple[Optional[str], IFunc]:
    """Classify a subscript expression into ``(loop_var, IFunc)``.

    ``loop_var`` is None for constant subscripts.
    """
    lin = _linearize(node, params, loop_vars)
    if isinstance(lin, tuple):
        _tag, inner, z, d = lin
        if inner.is_const():
            return None, ConstantF(inner.c % z + d)
        return inner.var, ModularF(AffineF(inner.a, inner.c), z, d)
    if lin.is_const():
        return None, ConstantF(lin.c)
    return lin.var, AffineF(lin.a, lin.c)


# ---------------------------------------------------------------------------
# Booster-style views (paper §2.5): named reindexings, resolved by
# Definition 5 composition at translation time
# ---------------------------------------------------------------------------

@dataclass
class _ViewDef:
    """A resolved view: the real target array and, per target dimension,
    the contributing formal position (None for constant subscripts) and
    the index function in that formal."""

    target: str
    arity: int  # number of formals
    dims: List[Tuple[Optional[int], IFunc]]


def _declare_view(
    decl, params: Dict[str, int], views: Dict[str, "_ViewDef"]
) -> None:
    formals = decl.formals
    if len(set(formals)) != len(formals):
        raise TranslateError(f"duplicate view formals in {decl.name!r}")
    dims: List[Tuple[Optional[int], IFunc]] = []
    for idx_expr in decl.target.indices:
        var, fn = classify_index_expr(idx_expr, params, tuple(formals))
        dims.append((formals.index(var) if var is not None else None, fn))
    vd = _ViewDef(decl.target.name, len(formals), dims)
    # views over views resolve immediately (Definition 5 composition):
    inner = views.get(vd.target)
    if inner is not None:
        resolved: List[Tuple[Optional[int], IFunc]] = []
        if len(vd.dims) != inner.arity:
            raise TranslateError(
                f"view {decl.name!r} applies {len(vd.dims)} indices to "
                f"{vd.target!r} which takes {inner.arity}"
            )
        for fp_inner, f_inner in inner.dims:
            if fp_inner is None:
                resolved.append((None, f_inner))
                continue
            fp_outer, g = vd.dims[fp_inner]
            composed = f_inner.compose(g)
            if fp_outer is None:
                if not isinstance(composed, ConstantF):
                    composed = ConstantF(composed(0))
                resolved.append((None, composed))
            else:
                resolved.append((fp_outer, composed))
        vd = _ViewDef(inner.target, len(formals), resolved)
    views[decl.name] = vd


def _resolve_view_ref(
    sub: A.Subscript,
    vd: _ViewDef,
    params: Dict[str, int],
    loop_vars: Tuple[str, ...],
) -> Ref:
    """Use of a view inside a clause: compose the view's functions with
    the use-site subscript expressions."""
    if len(sub.indices) != vd.arity:
        raise TranslateError(
            f"view {sub.name!r} takes {vd.arity} indices, got "
            f"{len(sub.indices)}"
        )
    use: List[Tuple[Optional[str], IFunc]] = [
        classify_index_expr(e, params, loop_vars) for e in sub.indices
    ]
    dims: List[int] = []
    funcs: List[IFunc] = []
    for fp, f in vd.dims:
        if fp is None:
            dims.append(0)
            funcs.append(f)
            continue
        var, g = use[fp]
        composed = f.compose(g)
        if var is None:
            if not isinstance(composed, ConstantF):
                composed = ConstantF(composed(0))
            dims.append(0)
        else:
            dims.append(loop_vars.index(var))
        funcs.append(composed)
    return Ref(vd.target, ProjectedMap(dims, funcs))


# ---------------------------------------------------------------------------
# expression translation
# ---------------------------------------------------------------------------

def _translate_expr(
    node: A.Node,
    params: Dict[str, int],
    loop_vars: Tuple[str, ...],
    views: Optional[Dict[str, _ViewDef]] = None,
) -> Expr:
    if isinstance(node, A.Num):
        return Const(node.value)
    if isinstance(node, A.Var):
        if node.name in loop_vars:
            return LoopIndex(loop_vars.index(node.name))
        if node.name in params:
            return Const(params[node.name])
        raise TranslateError(f"unknown scalar {node.name!r}")
    if isinstance(node, A.Subscript):
        return _translate_ref(node, params, loop_vars, views)
    if isinstance(node, A.Bin):
        return BinOp(
            node.op,
            _translate_expr(node.left, params, loop_vars, views),
            _translate_expr(node.right, params, loop_vars, views),
        )
    if isinstance(node, A.Un):
        return UnOp(node.op,
                    _translate_expr(node.operand, params, loop_vars, views))
    raise TranslateError(f"unsupported expression node {type(node).__name__}")


def _translate_ref(
    sub: A.Subscript,
    params: Dict[str, int],
    loop_vars: Tuple[str, ...],
    views: Optional[Dict[str, _ViewDef]] = None,
) -> Ref:
    if views and sub.name in views:
        return _resolve_view_ref(sub, views[sub.name], params, loop_vars)
    dims: List[int] = []
    funcs: List[IFunc] = []
    for k, idx_expr in enumerate(sub.indices):
        var, fn = classify_index_expr(idx_expr, params, loop_vars)
        dims.append(loop_vars.index(var) if var is not None else 0)
        funcs.append(fn)
    return Ref(sub.name, ProjectedMap(dims, funcs))


# ---------------------------------------------------------------------------
# statement translation
# ---------------------------------------------------------------------------

def _flatten_loops(node: A.For) -> Tuple[List[A.For], List[A.Node]]:
    """Peel perfectly nested loops; returns (loop specs, innermost body)."""
    loops = [node]
    body = node.body
    while len(body) == 1 and isinstance(body[0], A.For):
        loops.append(body[0])
        body = body[0].body
    return loops, body


def _translate_for(
    node: A.For,
    params: Dict[str, int],
    program: Program,
    counter: List[int],
    views: Optional[Dict[str, _ViewDef]] = None,
) -> None:
    loops, body = _flatten_loops(node)
    loop_vars = tuple(l.var for l in loops)
    if len(set(loop_vars)) != len(loop_vars):
        raise TranslateError(f"duplicate loop variable in nest {loop_vars}")
    lo = tuple(_fold_const(l.lo, params) for l in loops)
    hi = tuple(_fold_const(l.hi, params) for l in loops)
    domain = IndexSet(Bounds(lo, hi))
    ordering = (
        Ordering.PAR if all(l.order == "par" for l in loops) else Ordering.SEQ
    )

    guard: Optional[Expr] = None
    stmts = body
    if len(body) == 1 and isinstance(body[0], A.If):
        iff = body[0]
        if iff.orelse:
            raise TranslateError(
                "else branches are not part of the canonical clause form"
            )
        guard = _translate_expr(iff.cond, params, loop_vars, views)
        stmts = iff.body

    if not stmts:
        raise TranslateError("empty loop body")
    for st in stmts:
        if not isinstance(st, A.Assign):
            raise TranslateError(
                f"loop bodies must be assignments (optionally guarded); got "
                f"{type(st).__name__}"
            )
        lhs = _translate_ref(st.target, params, loop_vars, views)
        rhs = _translate_expr(st.value, params, loop_vars, views)
        counter[0] += 1
        program.add(
            Clause(
                domain=domain,
                lhs=lhs,
                rhs=rhs,
                ordering=ordering,
                guard=guard,
                name=f"clause{counter[0]}",
            )
        )


def translate(block: A.Block, params: Optional[Dict[str, int]] = None) -> Program:
    """Translate a parsed program to a V-cal :class:`Program`."""
    params = dict(params or {})
    program = Program()
    counter = [0]
    views: Dict[str, _ViewDef] = {}
    for st in block.body:
        if isinstance(st, A.ViewDecl):
            _declare_view(st, params, views)
        elif isinstance(st, A.For):
            _translate_for(st, params, program, counter, views)
        else:
            raise TranslateError(
                "top-level statements must be loops or view declarations "
                "(the state-less parts of the algorithm, paper §2.1)"
            )
    return program


def translate_source(
    source: str, params: Optional[Dict[str, int]] = None
) -> Program:
    """Parse + translate in one step."""
    return translate(parse(source), params)
