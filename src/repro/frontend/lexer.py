"""Lexer for the Fig. 1 imperative mini-language.

Comments run from ``**`` to end of line (the paper's pseudo-code comment
style) or from ``#``.
"""

from __future__ import annotations

from typing import Iterator, List

from .tokens import KEYWORDS, SYMBOLS, Token

__all__ = ["LexError", "tokenize"]


class LexError(SyntaxError):
    """Unrecognized input character."""


def tokenize(source: str) -> List[Token]:
    """Tokenize *source*; the final token is always ``eof``."""
    out: List[Token] = []
    line, col = 1, 1
    i, n = 0, len(source)

    def peek(ahead: int = 0) -> str:
        j = i + ahead
        return source[j] if j < n else ""

    while i < n:
        ch = source[i]
        # whitespace
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch.isspace():
            i += 1
            col += 1
            continue
        # comments: '**' or '#' to end of line
        if ch == "#" or (ch == "*" and peek(1) == "*"):
            while i < n and source[i] != "\n":
                i += 1
            continue
        # numbers
        if ch.isdigit():
            start = i
            while i < n and source[i].isdigit():
                i += 1
            out.append(Token("num", int(source[start:i]), line, col))
            col += i - start
            continue
        # identifiers / keywords
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            word = source[start:i]
            kind = "kw" if word in KEYWORDS else "ident"
            out.append(Token(kind, word, line, col))
            col += i - start
            continue
        # symbols (longest match first)
        for sym in SYMBOLS:
            if source.startswith(sym, i):
                out.append(Token("sym", sym, line, col))
                i += len(sym)
                col += len(sym)
                break
        else:
            raise LexError(
                f"unexpected character {ch!r} at line {line}, column {col}"
            )
    out.append(Token("eof", None, line, col))
    return out
