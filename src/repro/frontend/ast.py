"""AST of the Fig. 1 imperative mini-language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

__all__ = [
    "Node", "Num", "Var", "Bin", "Un", "Subscript",
    "Assign", "If", "For", "Block", "ViewDecl",
]


class Node:
    """Base class of all AST nodes."""


@dataclass(frozen=True)
class Num(Node):
    value: int


@dataclass(frozen=True)
class Var(Node):
    name: str


@dataclass(frozen=True)
class Bin(Node):
    op: str
    left: Node
    right: Node


@dataclass(frozen=True)
class Un(Node):
    op: str
    operand: Node


@dataclass(frozen=True)
class Subscript(Node):
    """``A[e]`` or ``A[e1, e2]``."""

    name: str
    indices: tuple

    def __post_init__(self):
        object.__setattr__(self, "indices", tuple(self.indices))


@dataclass(frozen=True)
class Assign(Node):
    target: Subscript
    value: Node


@dataclass
class If(Node):
    cond: Node
    body: List[Node] = field(default_factory=list)
    orelse: List[Node] = field(default_factory=list)


@dataclass
class For(Node):
    var: str
    lo: Node
    hi: Node
    order: str  # 'par' | 'seq'
    body: List[Node] = field(default_factory=list)


@dataclass(frozen=True)
class ViewDecl(Node):
    """``view V[i, j] := A[expr, expr];`` — a Booster-style view: a named
    reindexing of another structure (paper §2.5).  ``formals`` are the
    bound index variables; ``target`` is the subscripted structure (an
    array or a previously declared view)."""

    name: str
    formals: tuple
    target: Subscript

    def __post_init__(self):
        object.__setattr__(self, "formals", tuple(self.formals))


@dataclass
class Block(Node):
    """Top-level statement sequence."""

    body: List[Node] = field(default_factory=list)
