"""Front-end mini-language (paper Fig. 1): lexer, parser, V-cal translation."""

from .ast import Assign, Bin, Block, For, If, Node, Num, Subscript, Un, Var
from .lexer import LexError, tokenize
from .parser import ParseError, Parser, parse
from .translate import (
    TranslateError,
    classify_index_expr,
    translate,
    translate_source,
)

__all__ = [
    "tokenize",
    "LexError",
    "parse",
    "Parser",
    "ParseError",
    "translate",
    "translate_source",
    "TranslateError",
    "classify_index_expr",
    "Node",
    "Num",
    "Var",
    "Bin",
    "Un",
    "Subscript",
    "Assign",
    "If",
    "For",
    "Block",
]
