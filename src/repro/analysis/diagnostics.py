"""Structured diagnostics for the compile-time clause verifier.

Every finding of :mod:`repro.analysis` is a :class:`Diagnostic` with a
stable code from :data:`CODES` (``RACE001``, ``COMM001``, ...), a
severity, the clause and access it anchors to, per-processor witness
indices, and a fix hint.  :class:`DiagnosticReport` aggregates the
findings of one clause; it is what ``repro check`` prints (or emits as
JSON) and what the ``verify-plan`` pass caches on the
:class:`~repro.pipeline.trace.PipelineTrace`.

This module is a leaf: it imports nothing from the rest of the package.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

__all__ = ["Severity", "Diagnostic", "DiagnosticReport", "CODES"]


class Severity(Enum):
    """How bad a finding is.  ``--strict`` promotes warnings to errors;
    info-level findings never affect the exit status."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: the stable diagnostic catalogue (documented in docs/analysis.md)
CODES: Dict[str, str] = {
    "RACE001": "write/write overlap: two parameter instances of a // "
               "clause write the same element",
    "RACE002": "replicated write in a // clause: every processor writes "
               "every element (per-copy broadcast)",
    "RACE003": "loop-carried read/write dependence: a // instance reads "
               "an element another instance writes",
    "RACE004": "eliminated barrier contradicts a detected race inside "
               "the clause",
    "COMM001": "unmatched receive: a non-resident read element has no "
               "owner, so no send covers it",
    "COMM002": "message tag collision: two distinct sends share "
               "(src, dst, tag)",
    "COMM003": "mistargeted send: the receiving processor is computed "
               "from an out-of-range write element",
    "BND001": "read access image falls outside the declared array bounds",
    "BND002": "write access image falls outside the declared array "
              "bounds (those iterations are silently dropped)",
    "BND003": "halo exceeded: an OverlappedBlock read reaches beyond "
              "the overlap extent",
    "LINT001": "load imbalance: the largest |Modify_p| is more than "
               "twice the mean",
    "LINT002": "idle processors: some processors own no iteration of "
               "the clause",
    "LINT003": "scattered sequential chain: a recurrence under a "
               "scatter decomposition communicates on every step",
    "LINT004": "no Table I closed form: membership degrades to the "
               "naive full-range scan",
    "CHK001": "verification incomplete: the clause failed to compile or "
              "the enumeration fallback exceeded its budget",
    "PROG001": "uncertified fusion: an eliminated inter-clause barrier "
               "contradicts (or exceeds) the independent Bernstein/DILD "
               "dependence re-derivation",
    "PROG002": "uncertified elision: an elided redistribution boundary "
               "has element-to-processor layouts that do not agree",
    "PROG003": "uncertified pipelining: a pipelined time loop violates "
               "its own preconditions (surviving redistribution or "
               "incompatible swap pair)",
    "PROG004": "buffer-swap aliasing: a pipelined swap pair exchanges "
               "halo-extended (overlapped) buffers by name, leaving "
               "ghost copies stale on distributed targets",
    "SCHED001": "unmatched message: a lowered (dst, src, pos) send key "
                "has no matching expected gather (or the lane counts "
                "disagree)",
    "SCHED002": "barrier placement: a fused clause boundary lets a node "
                "gather elements another node commits in the same phase",
    "SCHED003": "wait-for cycle: the node wait-for graph has a cycle "
                "through an unmatched message — the blocked wait "
                "propagates around the cycle (deadlock)",
    "KRN001": "kernel index out of bounds: a precomputed gather/scatter "
              "index array escapes its flat-array extent",
    "KRN002": "kernel source audit: the rendered kernel uses a name or "
              "operation outside the whitelist, or the fused and native "
              "renderings disagree on NaN semantics (min/max)",
    "KRN003": "dead guard: the clause guard can never fire over the "
              "loop domain (every iteration is filtered out)",
}

_RANK = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}

#: caps keeping witness payloads readable
_MAX_WITNESS_PROCS = 4
_MAX_WITNESS_INDICES = 4


@dataclass
class Diagnostic:
    """One finding of the static verifier."""

    code: str
    message: str
    severity: Severity = Severity.ERROR
    clause: str = ""   #: clause name the finding belongs to
    access: str = ""   #: anchoring access label, e.g. ``write:A``/``read0:B``
    span: Optional[Tuple[int, int]] = None  #: clause loop bounds (1-D)
    #: per-processor witness loop indices (capped for readability)
    witnesses: Dict[int, List[int]] = field(default_factory=dict)
    hint: str = ""

    def __post_init__(self):
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")
        self.witnesses = {
            p: list(idx)[:_MAX_WITNESS_INDICES]
            for p, idx in sorted(self.witnesses.items())[:_MAX_WITNESS_PROCS]
        }

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def sort_key(self) -> tuple:
        return (_RANK[self.severity], self.code, self.access, self.message)

    def headline(self) -> str:
        where = self.access or self.clause or "<clause>"
        return f"{self.code} [{self.severity.value}] {where}: {self.message}"

    def pretty(self) -> str:
        lines = [self.headline()]
        if self.span is not None:
            lines.append(f"    span: i in [{self.span[0]}, {self.span[1]}]")
        if self.witnesses:
            w = ", ".join(f"p{p}: {idx}" for p, idx in self.witnesses.items())
            lines.append(f"    witnesses: {w}")
        if self.hint:
            lines.append(f"    hint: {self.hint}")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "clause": self.clause,
            "access": self.access,
            "span": list(self.span) if self.span is not None else None,
            "witnesses": {str(p): list(i) for p, i in self.witnesses.items()},
            "hint": self.hint,
        }


@dataclass
class DiagnosticReport:
    """All findings of the verifier for one clause, sorted
    deterministically (errors first, then by code)."""

    clause: str = ""
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, diag: Diagnostic) -> Diagnostic:
        if not diag.clause:
            diag.clause = self.clause
        self.diagnostics.append(diag)
        return diag

    def extend(self, diags: List[Diagnostic]) -> None:
        for d in diags:
            self.add(d)

    def finish(self) -> "DiagnosticReport":
        self.diagnostics.sort(key=Diagnostic.sort_key)
        return self

    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """No error-level findings (warnings and info may remain)."""
        return not self.errors()

    def has(self, code: str) -> bool:
        return any(d.code == code for d in self.diagnostics)

    def codes(self) -> List[str]:
        return sorted({d.code for d in self.diagnostics})

    def find(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def pretty(self) -> str:
        head = f"verify {self.clause or '<anonymous>'}: "
        if not self.diagnostics:
            return head + "clean"
        head += (f"{len(self.errors())} error(s), "
                 f"{len(self.warnings())} warning(s)")
        lines = [head]
        for d in self.diagnostics:
            for ln in d.pretty().splitlines():
                lines.append("  " + ln)
        return "\n".join(lines)

    def summary(self) -> Dict[str, object]:
        return {
            "clause": self.clause,
            "ok": self.ok,
            "errors": len(self.errors()),
            "warnings": len(self.warnings()),
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }
