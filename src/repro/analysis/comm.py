"""Communication completeness over the Plan IR (§2.7 protocol).

The distributed template is symmetric: node *q* sends element
``B[g(i)]`` to ``proc_A(f(i))`` for every ``i`` in ``Reside_q``, and
node *p* posts one blocking receive per non-resident read index in
``Modify_p``.  The Table I enumerators make both sides closed-form sets,
so the matching can be *proven* at compile time:

``COMM001``  an index in ``Modify_p`` needs ``B[g(i)]`` but ``g(i)``
             lies outside ``B`` — no processor owns it, nobody sends,
             the receive blocks forever (runtime ``DeadlockError``).
``COMM002``  two sends on one channel share a tag ``(pos, i)`` — only
             possible when two reads collapse onto one position
             (a corrupted IR); asserted, never expected to fire.
``COMM003``  a sender computes the receiving processor from an
             out-of-range write element ``f(i)`` — the message targets a
             node that does not exist or never posts the receive.

Everything runs on segment arithmetic (``Modify_p`` minus ``Reside_p``
via :func:`difference_segments`, out-of-bounds witnesses via the exact
integer preimage), with bounded enumeration only for opaque functions.
"""

from __future__ import annotations

from typing import List

from ..core.clause import Ordering
from ..sets.enumerators import difference_segments
from .diagnostics import Diagnostic, Severity
from .support import BudgetExceeded, image_violation, segment_elements

__all__ = ["analyze_comm"]

_MAX_WITNESSES = 4


def _segment_violations(func, segments, n: int, cap: int) -> List[int]:
    """Up to *cap* indices in *segments* whose image under *func* leaves
    ``[0, n)`` — closed form per unit-stride segment, enumeration for
    strided ones."""
    out: List[int] = []
    for seg in segments:
        if seg.step == 1:
            cursor = seg.lo
            while cursor <= seg.hi and len(out) < cap:
                bad = image_violation(func, cursor, seg.hi, n)
                if bad is None:
                    break
                out.append(bad)
                cursor = bad + 1
        else:
            for i in seg.indices():
                if not (0 <= func(i) < n):
                    out.append(i)
                    if len(out) >= cap:
                        break
        if len(out) >= cap:
            break
    return out


def analyze_comm(ir) -> List[Diagnostic]:
    """Communication findings for the canonical 1-D distributed path."""
    out: List[Diagnostic] = []
    w = ir.write
    if (ir.clause.ordering is not Ordering.PAR or ir.ndim != 1
            or w is None or not w.placed or w.replicated
            or not w.axes or w.axes[0].access is None):
        return out
    span = tuple(ir.loop_bounds[0])

    # COMM002: the tag space is (read position, index); distinct reads
    # must occupy distinct positions for channels to stay collision-free
    positions = [acc.pos for acc in ir.reads]
    if len(positions) != len(set(positions)):
        dup = next(p for p in positions if positions.count(p) > 1)
        out.append(Diagnostic(
            code="COMM002",
            message=f"two reads share tag position {dup}: their messages "
                    "collide on every common channel",
            span=span,
            hint="read positions come from Clause.reads(); rebuild the "
                 "plan instead of mutating it",
        ))

    wf = w.funcs[0]
    for acc in ir.reads:
        if not acc.placed or acc.replicated or not acc.axes \
                or acc.axes[0].access is None:
            continue
        g = acc.funcs[0]
        n_read = acc.dec.n
        recv_witness: dict = {}
        send_witness: dict = {}
        try:
            for p in range(ir.pmax):
                modify = w.axes[0].access.enumerate(p).segments
                reside = acc.axes[0].access.enumerate(p).segments
                # receives node p posts with no matching owner anywhere
                needed = difference_segments(list(modify), list(reside))
                bad = _segment_violations(g, needed, n_read, _MAX_WITNESSES)
                if bad:
                    recv_witness[p] = bad
                # sends node p issues toward an out-of-range target
                bad = _segment_violations(wf, list(reside), w.dec.n,
                                          _MAX_WITNESSES)
                if bad:
                    send_witness[p] = bad
        except BudgetExceeded as exc:
            out.append(Diagnostic(
                code="CHK001",
                severity=Severity.WARNING,
                message=f"communication analysis incomplete: {exc}",
                access=f"{acc.label}:{acc.name}",
                span=span,
            ))
            continue
        if recv_witness:
            p0 = min(recv_witness)
            i0 = recv_witness[p0][0]
            out.append(Diagnostic(
                code="COMM001",
                message=f"node {p0} must receive {acc.name}[{g(i0)}] for "
                        f"i={i0}, but no processor owns that element: the "
                        "blocking recv never completes",
                access=f"{acc.label}:{acc.name}",
                span=span,
                witnesses=recv_witness,
                hint=f"keep {g.name} inside [0, {n_read}) over the "
                     "domain, or shrink the domain",
            ))
        if send_witness:
            p0 = min(send_witness)
            i0 = send_witness[p0][0]
            out.append(Diagnostic(
                code="COMM003",
                message=f"node {p0} owns {acc.name}[{g(i0)}] for i={i0} "
                        f"and targets proc_{w.name}({wf.name}={wf(i0)}), "
                        "which is outside the array: the message is "
                        "undeliverable",
                access=f"{acc.label}:{acc.name}",
                span=span,
                witnesses=send_witness,
                hint=f"keep the write access {wf.name} inside "
                     f"[0, {w.dec.n}) over the domain",
            ))
    return out
