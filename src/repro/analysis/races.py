"""Race detection over the Plan IR (Bernstein conditions, §2.6).

A ``//`` clause asserts its parameter instances are independent.  The
analyzer checks the assertion with the same machinery the compiler uses
to *generate* the program:

``RACE001``  write/write — two instances write the same element (a loop
             dimension the write ignores, or a non-injective axis
             function).
``RACE002``  replicated write — every processor writes every element;
             deterministic only as a per-copy broadcast, and the
             vector/overlap backends fall back to scalar for it.
``RACE003``  read/write — an instance reads an element a *different*
             instance writes: the ``//`` (pre-state) result diverges
             from the sequential ordering.
``RACE004``  consistency — the `eliminate-barriers` pass removed the
             barrier although a race exists inside the clause.

Accesses factorize per loop dimension (separable/projected maps), so the
write/write and read/write questions reduce to per-axis questions over
the clause's rectangular domain — closed form where the function class
allows, bounded enumeration otherwise.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.clause import Ordering
from .diagnostics import CODES, Diagnostic, Severity
from .support import (
    BudgetExceeded,
    find_duplicate,
    injective_on,
    loop_carried_pair,
    range_count,
)

__all__ = ["analyze_races"]


def _span(ir) -> Optional[tuple]:
    return tuple(ir.loop_bounds[0]) if ir.ndim == 1 else None


def _owner(ir, i: int) -> Optional[int]:
    """The processor executing 1-D instance *i* under owner-computes,
    when it is well-defined."""
    w = ir.write
    if w is None or not w.placed or not w.funcs or ir.ndim != 1:
        return None
    if w.replicated:
        return None
    e = w.funcs[0](i)
    if 0 <= e < w.dec.n:
        return w.dec.proc(e)
    return None


def _witness(ir, *indices: int) -> dict:
    out: dict = {}
    for i in indices:
        p = _owner(ir, i)
        out.setdefault(p if p is not None else 0, []).append(i)
    return out


def _incomplete(what: str, ir) -> Diagnostic:
    return Diagnostic(
        code="CHK001",
        severity=Severity.WARNING,
        message=f"race analysis incomplete: {what}",
        span=_span(ir),
        hint="shrink the domain or use an affine/modular access so the "
             "closed forms apply",
    )


def _write_write(ir, out: List[Diagnostic]) -> None:
    w = ir.write
    used = set(w.dims)
    for d in range(ir.ndim):
        lo, hi = ir.loop_bounds[d]
        if d not in used and range_count(lo, hi) > 1:
            out.append(Diagnostic(
                code="RACE001",
                message=f"the write ignores loop dimension {d}: instances "
                        f"i{d}={lo} and i{d}={lo + 1} store to the same "
                        "element",
                access=f"{w.label}:{w.name}",
                span=_span(ir),
                witnesses=_witness(ir, lo, lo + 1) if ir.ndim == 1 else {},
                hint="index the written array with every loop dimension, "
                     "or order the clause sequentially (•)",
            ))
    for k, (d, f) in enumerate(zip(w.dims, w.funcs)):
        lo, hi = ir.loop_bounds[d]
        verdict = injective_on(f, lo, hi)
        if verdict is True:
            continue
        try:
            dup = find_duplicate(f, lo, hi)
        except BudgetExceeded as exc:
            out.append(_incomplete(str(exc), ir))
            continue
        if dup is None:
            continue
        i1, i2, elem = dup
        axis = f" axis {k}" if len(w.funcs) > 1 else ""
        out.append(Diagnostic(
            code="RACE001",
            message=f"{f.name} maps instances i={i1} and i={i2} to the "
                    f"same element{axis} ({w.name}[{elem}])",
            access=f"{w.label}:{w.name}",
            span=_span(ir),
            witnesses=_witness(ir, i1, i2) if ir.ndim == 1 else {},
            hint="make the write access injective over the domain "
                 "(e.g. an affine index) or order the clause • ",
        ))


def _read_write(ir, out: List[Diagnostic]) -> None:
    w = ir.write
    for acc in ir.reads:
        if acc.name != w.name or not acc.funcs:
            continue
        if ir.ndim == 1 and len(w.funcs) == 1 and len(acc.funcs) == 1:
            lo, hi = ir.loop_bounds[0]
            try:
                pair = loop_carried_pair(w.funcs[0], acc.funcs[0], lo, hi)
            except BudgetExceeded as exc:
                out.append(_incomplete(str(exc), ir))
                continue
        else:
            try:
                pair = _nd_carried_pair(ir, acc)
            except BudgetExceeded as exc:
                out.append(_incomplete(str(exc), ir))
                continue
        if pair is None:
            continue
        i1, i2, elem = pair
        out.append(Diagnostic(
            code="RACE003",
            message=f"instance i={i2} reads {acc.name}[{elem}], which "
                    f"instance i={i1} writes: // (pre-state) and "
                    "sequential orderings diverge",
            access=f"{acc.label}:{acc.name}",
            span=_span(ir),
            witnesses=_witness(ir, i1, i2) if ir.ndim == 1 else {},
            hint="order the clause sequentially (•); constant-distance "
                 "backward recurrences then pipeline as a DOACROSS",
        ))


def _nd_carried_pair(ir, acc):
    """Witness for an n-D read/write overlap on the written array.

    Exact when every axis pairs the same loop dimension: if all axis
    function pairs are identical the dependence forces equal instances
    (no race); if exactly one axis differs, a witness on that axis
    extends with equal coordinates elsewhere *when the shared functions
    agree*.  Anything less structured falls back to enumerating the
    (rectangular) domain, guarded by the budget.
    """
    w = ir.write
    if (w.dims == acc.dims and len(w.funcs) == len(acc.funcs)):
        differing = [k for k, (fw, fr) in enumerate(zip(w.funcs, acc.funcs))
                     if not _same_func(fw, fr)]
        if not differing:
            return None
        if len(differing) == 1:
            k = differing[0]
            d = w.dims[k]
            lo, hi = ir.loop_bounds[d]
            pair = loop_carried_pair(w.funcs[k], acc.funcs[k], lo, hi)
            if pair is None:
                return None
            return pair
    # full product enumeration
    total = 1
    for lo, hi in ir.loop_bounds:
        total *= range_count(lo, hi)
    if total > (1 << 16):
        raise BudgetExceeded(f"{total} instances in the n-D domain")
    import itertools

    def elem(funcs, dims, idx):
        return tuple(f(idx[d]) for f, d in zip(funcs, dims))

    writers: dict = {}
    ranges = [range(lo, hi + 1) for lo, hi in ir.loop_bounds]
    for idx in itertools.product(*ranges):
        writers.setdefault(elem(w.funcs, w.dims, idx), []).append(idx)
    for idx in itertools.product(*ranges):
        for widx in writers.get(elem(acc.funcs, acc.dims, idx), ()):
            if widx != idx:
                return widx, idx, elem(acc.funcs, acc.dims, idx)
    return None


def _same_func(a, b) -> bool:
    try:
        return bool(a == b)
    except Exception:  # pragma: no cover - exotic __eq__
        return a is b


def analyze_races(ir) -> List[Diagnostic]:
    """Race findings for one compiled clause (``//`` clauses only —
    sequential ordering fixes the instance order by construction)."""
    out: List[Diagnostic] = []
    w = ir.write
    if ir.clause.ordering is not Ordering.PAR or w is None or not w.placed:
        return out
    if w.replicated and ir.pmax > 1:
        out.append(Diagnostic(
            code="RACE002",
            severity=Severity.WARNING,
            message=f"{CODES['RACE002']}; every pair of processors "
                    "overlaps on every written element",
            access=f"{w.label}:{w.name}",
            span=_span(ir),
            hint="place the write (e.g. block) unless the broadcast is "
                 "intended; vector/overlap backends fall back to scalar",
        ))
    if w.funcs:
        _write_write(ir, out)
        _read_write(ir, out)
    # cross-processor races (witnesses span more than one owner) must
    # have kept the barrier — `eliminate-barriers` decides from the same
    # access maps, so a contradiction means the pass and analyzer diverge
    cross = [d for d in out
             if d.code == "RACE003" and len(d.witnesses) > 1]
    if cross and ir.successor is not None and not ir.barrier_needed:
        out.append(Diagnostic(
            code="RACE004",
            message="the barrier after this clause was eliminated, but "
                    "instances on different processors race "
                    f"({cross[0].code})",
            span=_span(ir),
            hint="keep the barrier: re-run without eliminate-barriers or "
                 "fix the underlying race",
        ))
    return out
