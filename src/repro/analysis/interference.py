"""Fast independence certificates for the barrier analysis.

:func:`repro.codegen.barriers.has_cross_processor_overlap` decides
intra-clause overlap by exact O(n) enumeration.  The common case —
the clause never reads the array it writes — is decidable without
touching a single index: under owner-computes a non-replicated write
gives every element exactly one writing processor, and reads of *other*
arrays can never overlap those writes.  The barrier pass consults this
certificate first and enumerates only when it abstains.
"""

from __future__ import annotations

from typing import Dict

from ..core.clause import Clause

__all__ = ["certified_independent"]


def certified_independent(clause: Clause, decomps: Dict[str, object]) -> bool:
    """``True`` only when the analyzer *proves* the clause free of
    cross-processor overlap without enumeration; ``False`` means
    "unknown — enumerate", never "overlap exists"."""
    dec = decomps.get(clause.lhs.name)
    if dec is None or getattr(dec, "is_replicated", False):
        return False
    if clause.domain.dim != 1:
        return False
    # guard refs are included in Clause.reads(); any read of the written
    # array (even same-index) leaves the decision to the enumeration
    return all(r.name != clause.lhs.name for r in clause.reads())
