"""Whole-program verification (the ``PROG`` family) and its cache.

The inter-clause passes of :mod:`repro.pipeline.program` *prove* things
— a fused boundary has no cross-processor dependence, an elided
redistribution preserves the layout contract, a pipelined time loop is
re-placement free.  This module re-derives each of those claims
independently and cross-checks the optimizer against the result, in the
spirit of translation validation: the passes use the Table I segment
algebra, the verifier enumerates the element relation directly
(vectorized, budget-bounded), so a disagreement is an optimizer bug
surfaced at compile time rather than a wrong answer at run time.

``PROG001``
    Every pair of clauses inside a fused phase is re-checked for
    cross-processor flow/anti/output dependences (the Bernstein
    conditions, instance-owner granularity — the DILD step-independence
    relation).  A fusion the verifier cannot certify — budget exceeded,
    opaque accesses — is also an error: the pass claimed a proof the
    checker cannot reproduce.

``PROG002``
    Every elided redistribution boundary is re-checked element-wise:
    the producer-side and consumer-side decompositions must map every
    element to the same processor (MDH-style (de)composition agreement,
    not just structural ``cache_key`` equality).

``PROG003``
    A pipelined time loop re-verifies its own preconditions: a repeat
    count above one, no surviving redistribution boundary, and
    element-wise placement agreement of every swap pair.

``PROG004``
    Buffer-swap aliasing: a pipelined loop that exchanges halo-extended
    (``OverlappedBlock``) buffers by name leaves the ghost copies of the
    swapped arrays stale on distributed targets — the zero-copy name
    exchange swaps owned data but no halo refresh runs between steps.

:func:`verify_program` aggregates these with the per-clause reports, the
static schedule check (:mod:`repro.analysis.schedule`) over the lowered
mp programs, and the generated-kernel sanitizer
(:mod:`repro.analysis.kernel_sanitizer`).  Certified-clean results are
cached in a bounded LRU keyed on the structural program key, so warm
compiles skip re-verification; ``compile --cache-stats`` reports it as
the ``verify`` line.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .diagnostics import Diagnostic, DiagnosticReport, Severity
from .kernel_sanitizer import sanitize_kernels
from .schedule import ScheduleCertificate, check_schedule
from .support import ENUM_BUDGET

__all__ = [
    "ProgramVerification",
    "VerifyCache",
    "verify_cache",
    "verify_program",
    "verify_cache_info",
    "clear_verify_cache",
]

_DEFAULT_MAXSIZE = 64


class _Undecidable(Exception):
    """The independent re-derivation cannot decide (reason in args)."""


def _diag(code, message, **kw):
    kw.setdefault("severity", Severity.ERROR)
    return Diagnostic(code=code, message=message, **kw)


# ---------------------------------------------------------------------------
# the result object
# ---------------------------------------------------------------------------

@dataclass
class ProgramVerification:
    """Everything one :func:`verify_program` run established."""

    #: program-level findings (PROG/SCHED/KRN + CHK notes)
    program: DiagnosticReport
    #: the per-clause verifier reports (RACE/COMM/BND/LINT), in order
    steps: List[DiagnosticReport] = field(default_factory=list)
    #: the static schedule proof over the lowered mp programs, when the
    #: program has an mp form (None = no mp form, noted on the report)
    certificate: Optional[ScheduleCertificate] = None

    @property
    def ok(self) -> bool:
        return self.program.ok and all(r.ok for r in self.steps)

    def errors(self) -> List[Diagnostic]:
        out = self.program.errors()
        for r in self.steps:
            out += r.errors()
        return out

    def warnings(self) -> List[Diagnostic]:
        out = self.program.warnings()
        for r in self.steps:
            out += r.warnings()
        return out

    def pretty(self) -> str:
        lines = [r.pretty() for r in self.steps]
        lines.append(self.program.pretty())
        if self.certificate is not None:
            lines.append(f"schedule: {self.certificate.describe()}")
        return "\n".join(lines)

    def summary(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "errors": len(self.errors()),
            "warnings": len(self.warnings()),
            "program": self.program.summary(),
            "steps": [r.summary() for r in self.steps],
            "certificate": (self.certificate.describe()
                            if self.certificate is not None else None),
            "certified_deadlock_free": (self.certificate.ok
                                        if self.certificate is not None
                                        else None),
        }


# ---------------------------------------------------------------------------
# the verifier-report cache (the `verify` line of --cache-stats)
# ---------------------------------------------------------------------------

class VerifyCache:
    """Thread-safe LRU of :class:`ProgramVerification`, keyed on the
    structural program key — warm compiles skip re-verification."""

    def __init__(self, maxsize: Optional[int] = None):
        from ..pipeline.cache import _env_maxsize

        self.maxsize = (_env_maxsize(_DEFAULT_MAXSIZE)
                        if maxsize is None else maxsize)
        self.enabled = True
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[tuple, ProgramVerification]" = \
            OrderedDict()
        self._lock = threading.Lock()

    def lookup(self, key) -> Optional[ProgramVerification]:
        with self._lock:
            v = self._entries.get(key)
            if v is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return v

    def store(self, key, verification: ProgramVerification) -> None:
        with self._lock:
            self._entries[key] = verification
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def info(self) -> Dict[str, object]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "enabled": self.enabled,
            }


#: the process-global verifier-report cache
verify_cache = VerifyCache()


def verify_cache_info() -> Dict[str, object]:
    return verify_cache.info()


def clear_verify_cache() -> None:
    verify_cache.clear()


# ---------------------------------------------------------------------------
# PROG001: independent Bernstein/DILD dependence re-derivation
# ---------------------------------------------------------------------------

def _instances(ir) -> Tuple[np.ndarray, np.ndarray]:
    """``(i, owner)`` per parameter instance of a 1-D clause — the
    executing processor under owner-computes is the write element's
    owner."""
    from ..machine.vectorize import apply_ifunc

    if len(ir.loop_bounds) != 1:
        raise _Undecidable("clause is not 1-D")
    w = ir.write
    if w is None or w.replicated or not w.funcs:
        raise _Undecidable("write access has no placed closed form")
    lo, hi = ir.loop_bounds[0]
    if hi - lo + 1 > ENUM_BUDGET:
        raise _Undecidable("domain exceeds the enumeration budget")
    i = np.arange(lo, hi + 1, dtype=np.int64)
    try:
        e = apply_ifunc(w.funcs[0], i)
        owner = np.asarray(w.dec.proc_array(e), dtype=np.int64)
    except Exception as exc:
        raise _Undecidable(f"owner derivation failed: {exc}") from exc
    return i, owner


def _access_elems(ir, acc, i: np.ndarray) -> np.ndarray:
    from ..machine.vectorize import apply_ifunc

    if acc.replicated:
        raise _Undecidable(f"access of {acc.name!r} is replicated")
    if not acc.funcs or len(acc.funcs) != 1:
        raise _Undecidable(f"access of {acc.name!r} has no rank-1 "
                           "closed form")
    try:
        return apply_ifunc(acc.funcs[0], i)
    except Exception as exc:
        raise _Undecidable(
            f"index function of {acc.name!r} is opaque: {exc}") from exc


def _cross_witness(e_a, o_a, i_a, e_b, o_b, i_b):
    """First ``(ia, ib, elem, pa, pb)`` with ``e_a[x] == e_b[y]`` and
    ``o_a[x] != o_b[y]`` — a cross-processor element sharing between the
    two instance sets — or ``None``.

    Exact also for non-injective a-sides: per matched element it is
    enough to compare against the first and last a-owner in sorted
    order (if they differ, some a-owner differs from any b-owner)."""
    if e_a.size == 0 or e_b.size == 0:
        return None
    order = np.argsort(e_a, kind="stable")
    es, os_, is_ = e_a[order], o_a[order], i_a[order]
    lo = np.searchsorted(es, e_b, side="left")
    hi = np.searchsorted(es, e_b, side="right")
    found = lo < hi
    if not found.any():
        return None
    fl, fh = lo[found], hi[found]
    mismatch = (os_[fl] != o_b[found]) | (os_[fh - 1] != o_b[found])
    if not mismatch.any():
        return None
    pos = int(np.argmax(mismatch))
    b_lane = int(np.nonzero(found)[0][pos])
    a_slot = int(fl[pos]) if os_[fl[pos]] != o_b[b_lane] \
        else int(fh[pos] - 1)
    return (int(is_[a_slot]), int(i_b[b_lane]), int(e_b[b_lane]),
            int(os_[a_slot]), int(o_b[b_lane]))


def _check_fused_pair(st1, st2, boundary: str) -> List[Diagnostic]:
    """All three Bernstein conditions between two clauses sharing a
    fused phase, at instance-owner granularity."""
    ir1, ir2 = st1.ir, st2.ir
    i1, o1 = _instances(ir1)
    i2, o2 = _instances(ir2)
    w1 = _access_elems(ir1, ir1.write, i1)
    w2 = _access_elems(ir2, ir2.write, i2)
    deps = []
    # flow: st1 writes an element another processor's st2 instance reads
    for acc in ir2.reads:
        if acc.name != ir1.write.name:
            continue
        r2 = _access_elems(ir2, acc, i2)
        hit = _cross_witness(w1, o1, i1, r2, o2, i2)
        if hit is not None:
            deps.append(("flow", acc, hit))
    # anti: st1 reads an element another processor's st2 instance writes
    for acc in ir1.reads:
        if acc.name != ir2.write.name:
            continue
        r1 = _access_elems(ir1, acc, i1)
        hit = _cross_witness(w2, o2, i2, r1, o1, i1)
        if hit is not None:
            ia, ib, elem, pa, pb = hit
            deps.append(("anti", acc, (ib, ia, elem, pb, pa)))
    # output: both clauses write the same element on different processors
    if ir1.write.name == ir2.write.name:
        hit = _cross_witness(w1, o1, i1, w2, o2, i2)
        if hit is not None:
            deps.append(("output", ir2.write, hit))
    out = []
    for kind, acc, (ia, ib, elem, pa, pb) in deps:
        out.append(_diag(
            "PROG001",
            f"fused phase {boundary} ({st1.name}+{st2.name}): "
            f"cross-processor {kind} dependence on {acc.name}[{elem}] — "
            f"instance i={ia} runs on p{pa}, instance i={ib} on p{pb}, "
            "but no barrier separates the clauses",
            clause=st2.name, access=acc.label,
            witnesses={pa: [ia], pb: [ib]},
            hint="the eliminate-barriers proof and the independent "
                 "dependence re-derivation disagree: optimizer bug"))
    return out


def _verify_fusion(pir, report: DiagnosticReport) -> int:
    """PROG001 over every pair inside every fused phase; returns the
    number of certified pairs."""
    certified = 0
    for group in pir.groups:
        if len(group) < 2:
            continue
        for j_pos, j in enumerate(group):
            for k in group[j_pos + 1:]:
                st1, st2 = pir.steps[j], pir.steps[k]
                boundary = f"{j}->{k}"
                try:
                    found = _check_fused_pair(st1, st2, boundary)
                except _Undecidable as why:
                    report.add(_diag(
                        "PROG001",
                        f"fused phase {boundary} ({st1.name}+{st2.name}) "
                        f"cannot be certified: {why} — the fusion pass "
                        "claimed a proof the verifier cannot reproduce",
                        clause=st2.name,
                        hint="keep the barrier (fuse=False) or make the "
                             "accesses closed-form"))
                    continue
                if found:
                    report.extend(found)
                else:
                    certified += 1
    return certified


# ---------------------------------------------------------------------------
# PROG002/003: element-wise placement agreement
# ---------------------------------------------------------------------------

def _layout_vec(dec) -> np.ndarray:
    """Element -> owning processor, derived from ``proc_array`` (not from
    ``cache_key`` — that is what the pass used)."""
    from ..decomp.multidim import GridDecomposition

    if dec is None:
        raise _Undecidable("no decomposition")
    if isinstance(dec, GridDecomposition):
        vecs = []
        for ax in dec.dims:
            vecs.append(_layout_vec(ax))
        out = np.zeros(1, dtype=np.int64)
        for g, v in zip(dec.grid_shape, vecs):
            out = (out[:, None] * g + v[None, :]).ravel()
        return out
    n = getattr(dec, "n", None)
    if n is None or n > ENUM_BUDGET:
        raise _Undecidable("decomposition has no bounded element range")
    if getattr(dec, "is_replicated", False):
        return np.full(int(n), -1, dtype=np.int64)  # every copy everywhere
    pa = getattr(dec, "proc_array", None)
    if not callable(pa):
        raise _Undecidable(f"{type(dec).__name__} has no proc_array")
    return np.asarray(pa(np.arange(int(n), dtype=np.int64)),
                      dtype=np.int64)


def _placement_witness(d1, d2):
    """First element two decompositions place on different processors,
    as ``(elem, p1, p2)``; ``None`` when the layouts agree."""
    l1, l2 = _layout_vec(d1), _layout_vec(d2)
    if l1.shape != l2.shape:
        return (0, int(l1.size), int(l2.size))
    diff = l1 != l2
    if not diff.any():
        return None
    e = int(np.argmax(diff))
    return (e, int(l1[e]), int(l2[e]))


def _resolve_boundary(pir, label):
    """Producer/consumer steps and the swap rename of one elision label
    (``"k->k+1"`` between clauses, ``"step"`` for the wrap-around)."""
    if label == "step":
        rename = {}
        for a, b in pir.swap:
            rename[a], rename[b] = b, a
        return pir.steps[-1], pir.steps[0], rename
    k = int(str(label).split("->")[0])
    return pir.steps[k], pir.steps[k + 1], {}


def _verify_elisions(pir, report: DiagnosticReport) -> int:
    certified = 0
    for label, name in pir.elided:
        try:
            producer, consumer, rename = _resolve_boundary(pir, label)
        except (ValueError, IndexError):
            report.add(_diag(
                "PROG002",
                f"elision record ({label!r}, {name!r}) names no valid "
                "clause boundary",
                hint="the elide-redistribution pass recorded a boundary "
                     "outside the program"))
            continue
        src = rename.get(name, name)
        d1 = producer.decomps.get(src)
        d2 = consumer.decomps.get(name)
        via = f" (via swap {src}->{name})" if src != name else ""
        try:
            hit = _placement_witness(d1, d2)
        except _Undecidable as why:
            report.add(_diag(
                "CHK001",
                f"elided boundary {label}: layout agreement of {name!r} "
                f"not decidable ({why})",
                severity=Severity.WARNING, access=f"array:{name}"))
            continue
        if hit is None:
            certified += 1
            continue
        e, p1, p2 = hit
        report.add(_diag(
            "PROG002",
            f"elided boundary {label}: {name!r}{via} is NOT re-placement "
            f"free — element {e} lives on p{p1} for the producer but "
            f"p{p2} for the consumer",
            access=f"array:{name}", witnesses={p1: [e], p2: [e]},
            hint="the elide-redistribution pass and the element-wise "
                 "layout re-derivation disagree: optimizer bug"))
    return certified


def _verify_pipeline(pir, report: DiagnosticReport) -> None:
    if not pir.pipelined:
        return
    union: Dict[str, object] = {}
    for st in pir.steps:
        for name, dec in st.decomps.items():
            union.setdefault(name, dec)
    if pir.repeat <= 1:
        report.add(_diag(
            "PROG003",
            f"program marked pipelined with repeat={pir.repeat}: there "
            "is no time loop to pipeline"))
    if pir.redistributions:
        label, name, reason = pir.redistributions[0]
        report.add(_diag(
            "PROG003",
            f"program marked pipelined but {len(pir.redistributions)} "
            f"redistribution boundary(ies) survive elision (first: "
            f"{name!r} at {label}: {reason}) — the step is not "
            "re-placement free",
            access=f"array:{name}"))
    for a, b in pir.swap:
        da, db = union.get(a), union.get(b)
        try:
            hit = _placement_witness(da, db)
        except _Undecidable as why:
            report.add(_diag(
                "PROG003",
                f"swap pair ({a},{b}) of a pipelined loop cannot be "
                f"certified placement-compatible ({why})"))
            continue
        if hit is not None:
            e, p1, p2 = hit
            report.add(_diag(
                "PROG003",
                f"swap pair ({a},{b}) of a pipelined loop is not "
                f"placement-compatible: element {e} lives on p{p1} in "
                f"{a!r} but p{p2} in {b!r} — the zero-copy name exchange "
                "moves data across processors",
                witnesses={max(p1, 0): [e]}))
        # PROG004: halo-extended swap buffers alias stale ghost copies
        for name, dec in ((a, da), (b, db)):
            halo = int(getattr(dec, "halo", 0) or 0)
            if halo > 0:
                report.add(_diag(
                    "PROG004",
                    f"pipelined swap buffer {name!r} is halo-extended "
                    f"({type(dec).__name__}, halo={halo}): the zero-copy "
                    "name exchange swaps owned data but no ghost-cell "
                    "refresh runs between iterations — distributed "
                    "targets read stale halo copies",
                    access=f"array:{name}",
                    hint="swap non-overlapped buffers, or re-place (do "
                         "not pipeline) so halos are rebuilt each step"))


# ---------------------------------------------------------------------------
# schedule + kernels over one program
# ---------------------------------------------------------------------------

def _verify_schedule(pir, report: DiagnosticReport):
    """Lower every step to its shared-flavor mp program (the form
    ``run_program_mp`` executes) and run the static schedule check."""
    from ..runtime.lowering import MpLoweringError, lower_shared

    progs = []
    for st in pir.steps:
        try:
            progs.append(lower_shared(st.ir))
        except MpLoweringError as why:
            report.add(_diag(
                "CHK001",
                f"schedule of clause {st.index} ({st.name}) unverified: "
                f"no mp form ({why})",
                severity=Severity.INFO, clause=st.name))
            return None
    diags, cert = check_schedule(progs, flags=pir.barrier_flags(),
                                 repeat=pir.repeat)
    report.extend(diags)
    for prog in progs:
        prog._sched_cert = cert
    return cert


def _verify_kernels(pir, report: DiagnosticReport) -> None:
    for st in pir.steps:
        for d in sanitize_kernels(st.ir):
            if not d.clause:
                d.clause = st.name
            report.add(d)


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def _step_report(st) -> DiagnosticReport:
    ir = st.ir
    if ir.diagnostics is None:
        from .verifier import verify_ir

        return verify_ir(ir)
    return ir.diagnostics


def verify_program(
    pir,
    *,
    schedule: bool = True,
    sanitize: bool = True,
    use_cache: bool = True,
) -> ProgramVerification:
    """Verify one compiled :class:`~repro.pipeline.program.ProgramIR`.

    Re-derives the optimizer's inter-clause claims (PROG001-PROG004),
    statically checks the lowered message schedule (SCHED001-SCHED003,
    yielding a :class:`ScheduleCertificate`), audits the generated
    kernels (KRN001-KRN003), and bundles the per-clause reports.

    Certified results are cached on ``pir.cache_key``; a warm compile of
    a structurally identical program skips re-verification entirely."""
    key = None
    if use_cache and verify_cache.enabled and pir.cache_key is not None:
        key = (pir.cache_key, bool(schedule), bool(sanitize))
        cached = verify_cache.lookup(key)
        if cached is not None:
            _trace_verification(pir, cached, cache_hit=True)
            return cached
    report = DiagnosticReport(clause="<program>")
    fused_ok = _verify_fusion(pir, report)
    elided_ok = _verify_elisions(pir, report)
    _verify_pipeline(pir, report)
    cert = _verify_schedule(pir, report) if schedule else None
    if sanitize:
        _verify_kernels(pir, report)
    report.finish()
    verification = ProgramVerification(
        program=report,
        steps=[_step_report(st) for st in pir.steps],
        certificate=cert,
    )
    verification._certified_pairs = fused_ok
    verification._certified_elisions = elided_ok
    if key is not None:
        verify_cache.store(key, verification)
    _trace_verification(pir, verification, cache_hit=False)
    return verification


def _trace_verification(pir, verification: ProgramVerification,
                        cache_hit: bool) -> None:
    """Record the verification on the program trace (``compile
    --explain`` shows it as the ``verify-program`` pass)."""
    from ..pipeline.trace import PassRecord

    if pir.trace is None or pir.trace.record("verify-program") is not None:
        return
    rec = PassRecord(name="verify-program",
                     paper="Bernstein / DILD / MDH cross-checks")
    codes = sorted({d.code for d in verification.program.diagnostics})
    rec.notes.append(
        f"program verdict: {'clean' if verification.ok else 'FLAGGED'}"
        + (f" ({', '.join(codes)})" if codes else "")
        + ("  [verify-cache hit]" if cache_hit else ""))
    pairs = getattr(verification, "_certified_pairs", 0)
    if pairs:
        rec.notes.append(f"{pairs} fused clause pair(s) independently "
                         "re-certified (Bernstein/DILD)")
    elisions = getattr(verification, "_certified_elisions", 0)
    if elisions:
        rec.notes.append(f"{elisions} elided boundary(ies) re-certified "
                         "element-wise (MDH layout agreement)")
    if verification.certificate is not None:
        rec.notes.append(verification.certificate.describe())
    rec.rewrites = 0
    pir.trace.add(rec)
