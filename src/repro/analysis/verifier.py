"""The clause verifier: run every analysis over one Plan IR.

``verify_ir`` is the engine behind the ``verify-plan`` pipeline pass and
the ``repro check`` CLI; ``verify_clause`` is the convenience entry that
compiles first (through the plan cache, so repeated checks of the same
clause reuse both the plan and its verdict).  ``annotate_deadlock``
cross-checks a runtime :class:`~repro.machine.scheduler.DeadlockError`
against the static verdict and appends the matching ``COMM``/``BND``
codes to its message.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.clause import Clause
from .bounds import analyze_bounds
from .comm import analyze_comm
from .diagnostics import DiagnosticReport
from .lint import analyze_lint
from .races import analyze_races

__all__ = ["verify_ir", "verify_clause", "annotate_deadlock"]

#: analysis order (report order is re-sorted by severity/code anyway)
_ANALYSES = (analyze_races, analyze_comm, analyze_bounds, analyze_lint)


def verify_ir(ir) -> DiagnosticReport:
    """Run all analyses over a compiled :class:`~repro.pipeline.ir.PlanIR`
    and cache the report on ``ir.diagnostics`` / ``ir.trace.diagnostics``."""
    report = DiagnosticReport(clause=ir.clause.name or "<anonymous>")
    for analyze in _ANALYSES:
        report.extend(analyze(ir))
    report.finish()
    ir.diagnostics = report
    if ir.trace is not None:
        ir.trace.diagnostics = report
    return report


def verify_clause(
    clause: Clause,
    decomps: Dict[str, object],
    *,
    successor: Optional[Clause] = None,
) -> DiagnosticReport:
    """Compile *clause* with verification enabled and return the report."""
    from ..pipeline import compile_plan

    ir = compile_plan(clause, decomps, successor=successor, verify=True)
    if ir.diagnostics is None:  # pragma: no cover - defensive
        return verify_ir(ir)
    return ir.diagnostics


def _schedule_codes(ir):
    """SCHED codes (and the certificate) of this clause's lowered
    distributed schedule — the static message-matching proof re-run at
    the failure boundary.  ``(codes, cert)``; ``(None, None)`` when the
    clause has no mp form to check."""
    from ..runtime.lowering import MpLoweringError, lower_dist
    from .schedule import check_schedule

    try:
        prog = lower_dist(ir)
    except MpLoweringError:
        return None, None
    diags, cert = check_schedule([prog])
    return [d.code for d in diags if d.is_error], cert


def annotate_deadlock(err, ir):
    """Append the static verdict to a runtime deadlock, when one exists.

    The scheduler has no plan knowledge, so the cross-check lives at the
    run boundary: if the verifier flags the clause with ``COMM``/``BND``
    errors — or the static schedule check denies its certificate with a
    ``SCHED`` code — the deadlock message names them: the runtime failure
    was statically decidable.  A deadlock on a clause whose schedule
    certificate is *clean* is called out as contradicting the
    certificate.  The error object (``blocked``/``undelivered``
    included) is returned unchanged apart from its message."""
    if ir is None:
        return err
    try:
        report = ir.diagnostics if ir.diagnostics is not None \
            else verify_ir(ir)
        codes = [d.code for d in report.errors()
                 if d.code.startswith(("COMM", "BND"))]
        sched_codes, cert = _schedule_codes(ir)
        if sched_codes:
            codes += sched_codes
    except Exception:  # never let the cross-check mask the real failure
        return err
    if codes:
        seen = list(dict.fromkeys(codes))
        err.args = (
            f"{err.args[0]} [statically detectable: {', '.join(seen)} — "
            "run `repro check` on this program]",
        ) + err.args[1:]
    elif cert is not None and cert.ok:
        err.args = (
            f"{err.args[0]} [SCHED certificate: this schedule was "
            "statically certified deadlock-free; the deadlock "
            "contradicts the certificate — suspect runtime state, not "
            "message matching]",
        ) + err.args[1:]
    return err
