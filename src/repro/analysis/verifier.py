"""The clause verifier: run every analysis over one Plan IR.

``verify_ir`` is the engine behind the ``verify-plan`` pipeline pass and
the ``repro check`` CLI; ``verify_clause`` is the convenience entry that
compiles first (through the plan cache, so repeated checks of the same
clause reuse both the plan and its verdict).  ``annotate_deadlock``
cross-checks a runtime :class:`~repro.machine.scheduler.DeadlockError`
against the static verdict and appends the matching ``COMM``/``BND``
codes to its message.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.clause import Clause
from .bounds import analyze_bounds
from .comm import analyze_comm
from .diagnostics import DiagnosticReport
from .lint import analyze_lint
from .races import analyze_races

__all__ = ["verify_ir", "verify_clause", "annotate_deadlock"]

#: analysis order (report order is re-sorted by severity/code anyway)
_ANALYSES = (analyze_races, analyze_comm, analyze_bounds, analyze_lint)


def verify_ir(ir) -> DiagnosticReport:
    """Run all analyses over a compiled :class:`~repro.pipeline.ir.PlanIR`
    and cache the report on ``ir.diagnostics`` / ``ir.trace.diagnostics``."""
    report = DiagnosticReport(clause=ir.clause.name or "<anonymous>")
    for analyze in _ANALYSES:
        report.extend(analyze(ir))
    report.finish()
    ir.diagnostics = report
    if ir.trace is not None:
        ir.trace.diagnostics = report
    return report


def verify_clause(
    clause: Clause,
    decomps: Dict[str, object],
    *,
    successor: Optional[Clause] = None,
) -> DiagnosticReport:
    """Compile *clause* with verification enabled and return the report."""
    from ..pipeline import compile_plan

    ir = compile_plan(clause, decomps, successor=successor, verify=True)
    if ir.diagnostics is None:  # pragma: no cover - defensive
        return verify_ir(ir)
    return ir.diagnostics


def annotate_deadlock(err, ir):
    """Append the static verdict to a runtime deadlock, when one exists.

    The scheduler has no plan knowledge, so the cross-check lives at the
    run boundary: if the verifier flags the clause with ``COMM``/``BND``
    errors, the deadlock message names them — the runtime failure was
    statically decidable.  The error object (``blocked``/``undelivered``
    included) is returned unchanged apart from its message."""
    if ir is None:
        return err
    try:
        report = ir.diagnostics if ir.diagnostics is not None \
            else verify_ir(ir)
    except Exception:  # never let the cross-check mask the real failure
        return err
    codes = [d.code for d in report.errors()
             if d.code.startswith(("COMM", "BND"))]
    if codes:
        seen = list(dict.fromkeys(codes))
        err.args = (
            f"{err.args[0]} [statically detectable: {', '.join(seen)} — "
            "run `repro check` on this program]",
        ) + err.args[1:]
    return err
