"""Bounds checking over the Plan IR.

NumPy's negative-index wraparound and ``Block.proc`` on out-of-range
elements make out-of-bounds accesses *silently wrong* (or deadlocks) at
runtime, so the verifier proves every access image stays inside its
declared array — per axis, over the rectangular domain, with the exact
integer preimage of the valid band:

``BND001``  a read image leaves ``[0, n)``.
``BND002``  the write image leaves ``[0, n)`` — those iterations belong
            to no ``Modify_p`` and are dropped without a trace.
``BND003``  an :class:`~repro.decomp.overlap.OverlappedBlock` read
            shifts further than the halo width: the local slot the halo
            template would address does not exist.
"""

from __future__ import annotations

from typing import List

from ..core.ifunc import AffineF
from ..decomp.overlap import OverlappedBlock
from .diagnostics import Diagnostic, Severity
from .support import BudgetExceeded, image_violation

__all__ = ["analyze_bounds"]


def analyze_bounds(ir) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    span = tuple(ir.loop_bounds[0]) if ir.ndim == 1 else None
    for acc in ir.accesses():
        if not acc.placed or not acc.funcs:
            continue
        for k, ax in enumerate(acc.axes):
            lo, hi = ir.loop_bounds[ax.loop_dim]
            n = ax.dec.n
            try:
                bad = image_violation(ax.func, lo, hi, n)
            except BudgetExceeded as exc:
                out.append(Diagnostic(
                    code="CHK001",
                    severity=Severity.WARNING,
                    message=f"bounds analysis incomplete: {exc}",
                    access=f"{acc.label}:{acc.name}",
                    span=span,
                ))
                continue
            if bad is not None:
                axis = f" on axis {k}" if len(acc.axes) > 1 else ""
                is_write = acc.pos is None
                consequence = (
                    "those iterations join no Modify_p and are "
                    "silently dropped" if is_write else
                    "at runtime this deadlocks (no owner to send) or "
                    "wraps around to the wrong element"
                )
                out.append(Diagnostic(
                    code="BND002" if is_write else "BND001",
                    message=f"{acc.name}[{ax.func.name}] leaves "
                            f"[0, {n}){axis} at i={bad} "
                            f"(element {ax.func(bad)}); {consequence}",
                    access=f"{acc.label}:{acc.name}",
                    span=span,
                    hint=f"restrict the domain so {ax.func.name} stays "
                         f"inside [0, {n})",
                ))
            # halo-extent check: a shift past the overlap region has no
            # local slot for the halo template to address
            if acc.pos is not None and isinstance(ax.dec, OverlappedBlock) \
                    and isinstance(ax.func, AffineF) and ax.func.a == 1 \
                    and abs(ax.func.c) > ax.dec.halo:
                out.append(Diagnostic(
                    code="BND003",
                    message=f"read shift {ax.func.name} reaches "
                            f"{abs(ax.func.c)} past the owned block, but "
                            f"the overlap is only {ax.dec.halo} wide",
                    access=f"{acc.label}:{acc.name}",
                    span=span,
                    hint=f"widen the halo to >= {abs(ax.func.c)} "
                         "(OverlappedBlock(n, pmax, halo=...)) or reduce "
                         "the stencil radius",
                ))
    return out
