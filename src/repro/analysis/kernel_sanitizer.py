"""Generated-kernel sanitizer (the ``KRN`` diagnostic family).

The fused/native/mp tiers execute *generated artifacts*: exec-compiled
NumPy source, njit scalar loops, and precomputed flat gather/scatter
index arrays.  Until now those artifacts were trusted — a codegen bug
would fault inside a worker (or worse, silently read the wrong slot).
This module audits them statically, per plan:

``KRN001``
    Every precomputed index array stays inside the flat extent of the
    buffer it addresses: shared-kernel global gather/scatter keys and
    lowered mp-program keys against the declared array sizes, dist-kernel
    local gathers/scatters against the node's local (resident) buffer
    size.

``KRN002``
    AST audit of the rendered kernel sources.  The fused rendering may
    only use the ``_i``/``_r`` vectors, whitelisted Python operators and
    the element-wise ``_np`` calls the code generator emits; the native
    scalar loop additionally gets its loop scaffolding.  Anything else —
    an injected name, a builtin ``min``/``max`` (which would change NaN
    semantics relative to ``np.minimum``/``np.maximum``), an import —
    is an error.  The check also cross-audits NaN parity: a clause using
    ``min``/``max`` must route through ``_np.minimum``/``_np.maximum``
    in *both* renderings.

``KRN003``
    A guard expression that references no data and is false on every
    domain index can never fire: the clause writes nothing (warning).

``check_kernels_strict`` is the run-time gate: ``run --strict`` for the
mp/native backends refuses plans with KRN errors exactly as the fused
backend refuses RACE/COMM.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

import numpy as np

from ..core.expr import BinOp, Ref, UnOp
from .diagnostics import Diagnostic, Severity
from .support import ENUM_BUDGET, range_count

__all__ = ["sanitize_kernels", "audit_kernel_source", "check_kernels_strict"]

#: names the fused (vector) rendering may reference
_FUSED_NAMES = {"_np", "_i", "_r", "_rhs", "_guard"}
#: extra names of the native scalar-loop scaffolding
_NATIVE_NAMES = {"_kernel", "_lanes", "_scatter", "_out", "_m", "_t", "_l"}
#: builtins the native rendering may call
_NATIVE_CALLS = {"range", "abs"}
#: element-wise ``_np`` attributes the code generators emit
_NP_ATTRS = {"minimum", "maximum", "logical_and", "logical_or",
             "logical_not", "absolute"}

_BINOPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod)
_CMPOPS = (ast.Gt, ast.GtE, ast.Lt, ast.LtE, ast.Eq, ast.NotEq)


def _diag(code, message, *, severity=Severity.ERROR, clause="", access="",
          span=None, witnesses=None, hint=""):
    return Diagnostic(code=code, message=message, severity=severity,
                      clause=clause, access=access, span=span,
                      witnesses=witnesses or {}, hint=hint)


# ---------------------------------------------------------------------------
# KRN002: source audit
# ---------------------------------------------------------------------------

def audit_kernel_source(source: str, kind: str = "fused") -> List[str]:
    """Whitelist audit of one rendered kernel source; returns violation
    strings (empty = clean).  *kind* is ``"fused"`` (the exec'd NumPy
    expression) or ``"native"`` (the njit scalar loop)."""
    try:
        tree = ast.parse(source)
    except SyntaxError as e:
        return [f"source does not parse: {e}"]
    allowed_names = set(_FUSED_NAMES)
    if kind == "native":
        allowed_names |= _NATIVE_NAMES | _NATIVE_CALLS
    problems: List[str] = []

    def bad(node, why):
        problems.append(f"line {getattr(node, 'lineno', '?')}: {why}")

    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            bad(node, "import statement in generated kernel")
        elif isinstance(node, ast.Name):
            if node.id not in allowed_names:
                bad(node, f"name {node.id!r} outside the kernel whitelist")
        elif isinstance(node, ast.Attribute):
            v = node.value
            if (kind == "native" and node.attr == "shape"
                    and isinstance(v, ast.Name) and v.id in _NATIVE_NAMES):
                continue  # `_scatter.shape[0]` loop scaffolding
            if not (isinstance(v, ast.Name) and v.id == "_np"):
                bad(node, f"attribute access on non-_np value "
                          f"(.{node.attr})")
            elif node.attr not in _NP_ATTRS:
                bad(node, f"_np.{node.attr} is not an emitted element-wise "
                          "call")
        elif isinstance(node, ast.Call):
            f = node.func
            if isinstance(f, ast.Attribute):
                continue  # audited as Attribute above
            if not (isinstance(f, ast.Name) and f.id in _NATIVE_CALLS
                    and kind == "native"):
                name = getattr(f, "id", type(f).__name__)
                bad(node, f"call of {name!r} outside the kernel whitelist")
        elif isinstance(node, ast.BinOp):
            if not isinstance(node.op, _BINOPS):
                bad(node, f"operator {type(node.op).__name__} not emitted "
                          "by the code generator")
        elif isinstance(node, ast.Compare):
            for op in node.ops:
                if not isinstance(op, _CMPOPS):
                    bad(node, f"comparison {type(op).__name__} not emitted "
                              "by the code generator")
        elif isinstance(node, ast.UnaryOp):
            if not isinstance(node.op, (ast.USub, ast.Not)):
                bad(node, f"unary {type(node.op).__name__} not emitted")
        elif isinstance(node, (ast.Lambda, ast.Await, ast.Yield,
                               ast.YieldFrom, ast.Global, ast.Nonlocal,
                               ast.Delete, ast.With, ast.Try, ast.Raise,
                               ast.ClassDef, ast.While)):
            bad(node, f"{type(node).__name__} statement in generated kernel")
    return problems


def _ops_used(expr, out: set) -> set:
    if isinstance(expr, BinOp):
        out.add(expr.op)
        _ops_used(expr.left, out)
        _ops_used(expr.right, out)
    elif isinstance(expr, UnOp):
        out.add(expr.op)
        _ops_used(expr.operand, out)
    return out


def _audit_sources(ir, kernels) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    cname = ir.clause.name or "<anonymous>"
    for why in audit_kernel_source(kernels.source, "fused"):
        out.append(_diag(
            "KRN002", f"fused kernel source rejected: {why}",
            clause=cname, access=f"write:{kernels.write_name}",
            hint="the rendered kernel escaped the code generator's "
                 "whitelist; recompile the plan (clear_plan_cache)"))
    try:
        from ..pipeline.native import render_native_source

        native_src: Optional[str] = render_native_source(ir.clause)
    except Exception:  # no native rendering: nothing to cross-audit
        native_src = None
    if native_src is not None:
        for why in audit_kernel_source(native_src, "native"):
            out.append(_diag(
                "KRN002", f"native kernel source rejected: {why}",
                clause=cname, access=f"write:{kernels.write_name}"))
    # NaN parity: min/max must be the NaN-propagating NumPy forms in
    # every rendering of this clause
    ops = _ops_used(ir.clause.rhs, set())
    if ir.clause.guard is not None:
        _ops_used(ir.clause.guard, ops)
    for op, spelled in (("min", "_np.minimum"), ("max", "_np.maximum")):
        if op not in ops:
            continue
        for label, src in (("fused", kernels.source), ("native", native_src)):
            if src is not None and spelled not in src:
                out.append(_diag(
                    "KRN002",
                    f"NaN-semantics parity broken: clause uses {op!r} but "
                    f"the {label} rendering does not spell it {spelled} "
                    "(builtin min/max does not propagate NaN)",
                    clause=cname, access=f"write:{kernels.write_name}"))
    return out


# ---------------------------------------------------------------------------
# KRN001: index-array bounds
# ---------------------------------------------------------------------------

def _extents(ir, name: str) -> Optional[Tuple[int, ...]]:
    """Global shape of array *name* from the plan's accesses."""
    from ..decomp.multidim import GridDecomposition

    accs = [ir.write] if ir.write is not None else []
    accs += list(ir.reads)
    for acc in accs:
        if acc is None or acc.name != name:
            continue
        dec = acc.dec
        if isinstance(dec, GridDecomposition):
            return tuple(int(ax.n) for ax in dec.dims)
        n = getattr(dec, "n", None)
        if n is not None:
            return (int(n),)
    return None


def _key_violation(key, extents) -> Optional[Tuple[int, int, int, int]]:
    """First ``(dim, lane, value, extent)`` escaping the per-dim extents,
    or ``None`` when every index is in bounds."""
    vecs = key if isinstance(key, tuple) else (key,)
    if extents is None or len(vecs) != len(extents):
        return None
    for d, (vec, n) in enumerate(zip(vecs, extents)):
        v = np.asarray(vec)
        if v.size == 0:
            continue
        bad = (v < 0) | (v >= n)
        if bad.any():
            lane = int(np.argmax(bad))
            return d, lane, int(v[lane]), int(n)
    return None


def _flat_violation(vec, extent: Optional[int]) -> Optional[Tuple[int, int]]:
    """First ``(lane, value)`` of a flat local index array escaping
    ``[0, extent)`` (negative indices are flagged even without extent)."""
    v = np.asarray(vec)
    if v.size == 0:
        return None
    bad = v < 0
    if extent is not None:
        bad = bad | (v >= extent)
    if bad.any():
        lane = int(np.argmax(bad))
        return lane, int(v[lane])
    return None


def _local_extent(dec, p: int) -> Optional[int]:
    """Size of node *p*'s local buffer (halo-extended when overlapped)."""
    for attr in ("resident_size", "local_size"):
        f = getattr(dec, attr, None)
        if callable(f):
            try:
                return int(f(p))
            except Exception:
                return None
    return None


def _check_shared(ir, kernels) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    cname = ir.clause.name or "<anonymous>"
    if not kernels.shared:
        return out
    wext = _extents(ir, kernels.write_name)
    for p, nk in enumerate(kernels.shared):
        for pos, (name, ai) in enumerate(nk.read_keys):
            hit = _key_violation(ai, _extents(ir, name))
            if hit is not None:
                d, lane, v, n = hit
                out.append(_diag(
                    "KRN001",
                    f"shared kernel of node {p}: gather key of read "
                    f"{name!r} (pos {pos}) holds index {v} outside "
                    f"[0, {n}) at dim {d} lane {lane}",
                    clause=cname, access=f"read{pos}:{name}",
                    witnesses={p: [lane]},
                    hint="a corrupted or stale gather index array would "
                         "fault (or silently wrap) at run time"))
        hit = _key_violation(nk.write_key_vecs, wext)
        if hit is not None:
            d, lane, v, n = hit
            out.append(_diag(
                "KRN001",
                f"shared kernel of node {p}: scatter key of write "
                f"{kernels.write_name!r} holds index {v} outside "
                f"[0, {n}) at dim {d} lane {lane}",
                clause=cname, access=f"write:{kernels.write_name}",
                witnesses={p: [lane]}))
    return out


def _check_dist(ir, kernels) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    cname = ir.clause.name or "<anonymous>"
    if not kernels.dist:
        return out
    decs = {}
    if ir.write is not None:
        decs[ir.write.name] = ir.write.dec
    for acc in ir.reads:
        decs.setdefault(acc.name, acc.dec)
    for p, nk in enumerate(kernels.dist):
        for rd in nk.reads:
            if rd.replicated:
                ext = _extents(ir, rd.name)
                hit = _flat_violation(rd.rep_gather,
                                      ext[0] if ext else None)
            else:
                hit = _flat_violation(
                    rd.local_gather, _local_extent(decs.get(rd.name), p))
            if hit is not None:
                lane, v = hit
                out.append(_diag(
                    "KRN001",
                    f"dist kernel of node {p}: local gather of read "
                    f"{rd.name!r} (pos {rd.pos}) holds index {v} outside "
                    "the node's buffer extent",
                    clause=cname, access=f"read{rd.pos}:{rd.name}",
                    witnesses={p: [lane]}))
        wdec = decs.get(kernels.write_name)
        for label, scatter in (("interior", nk.scatter_interior),
                               ("boundary", nk.scatter_boundary)):
            hit = _flat_violation(scatter, _local_extent(wdec, p))
            if hit is not None:
                lane, v = hit
                out.append(_diag(
                    "KRN001",
                    f"dist kernel of node {p}: {label} scatter of write "
                    f"{kernels.write_name!r} holds index {v} outside the "
                    "node's buffer extent",
                    clause=cname, access=f"write:{kernels.write_name}",
                    witnesses={p: [lane]}))
    return out


def _check_mp(ir, kernels) -> List[Diagnostic]:
    """Bounds over already-lowered mp programs (their keys are global)."""
    out: List[Diagnostic] = []
    cname = ir.clause.name or "<anonymous>"
    progs = getattr(kernels, "_mp_programs", None) or {}
    for flavor, prog in sorted(progs.items()):
        wext = _extents(ir, prog.write_name)
        for nd in prog.nodes:
            for rd in nd.reads:
                hit = _key_violation(rd.local_key, _extents(ir, rd.name))
                if hit is not None:
                    d, lane, v, n = hit
                    out.append(_diag(
                        "KRN001",
                        f"mp[{flavor}] node {nd.p}: global gather of read "
                        f"{rd.name!r} (pos {rd.pos}) holds index {v} "
                        f"outside [0, {n}) at dim {d} lane {lane}",
                        clause=cname, access=f"read{rd.pos}:{rd.name}",
                        witnesses={nd.p: [lane]}))
            for s in nd.sends:
                for q, key in s.peers:
                    hit = _key_violation(key, _extents(ir, s.name))
                    if hit is not None:
                        d, lane, v, n = hit
                        out.append(_diag(
                            "KRN001",
                            f"mp[{flavor}] node {nd.p}: send key of read "
                            f"{s.name!r} to node {q} holds index {v} "
                            f"outside [0, {n})",
                            clause=cname, access=f"read{s.pos}:{s.name}",
                            witnesses={nd.p: [lane]}))
            for label, wkey in (("interior", nd.wkey_interior),
                                ("boundary", nd.wkey_boundary)):
                hit = _key_violation(wkey, wext)
                if hit is not None:
                    d, lane, v, n = hit
                    out.append(_diag(
                        "KRN001",
                        f"mp[{flavor}] node {nd.p}: {label} commit key of "
                        f"{prog.write_name!r} holds index {v} outside "
                        f"[0, {n})",
                        clause=cname, access=f"write:{prog.write_name}",
                        witnesses={nd.p: [lane]}))
    return out


# ---------------------------------------------------------------------------
# KRN003: dead guards
# ---------------------------------------------------------------------------

def _has_refs(expr) -> bool:
    if isinstance(expr, Ref):
        return True
    if isinstance(expr, BinOp):
        return _has_refs(expr.left) or _has_refs(expr.right)
    if isinstance(expr, UnOp):
        return _has_refs(expr.operand)
    return False


def _check_guard(ir) -> List[Diagnostic]:
    guard = ir.clause.guard
    if guard is None or _has_refs(guard):
        return []  # data-dependent guards are not statically decidable
    bounds = list(ir.loop_bounds)
    total = 1
    for lo, hi in bounds:
        total *= range_count(lo, hi)
    if total == 0 or total > ENUM_BUDGET:
        return []
    import itertools

    ranges = [range(lo, hi + 1) for lo, hi in bounds]
    for idx in itertools.product(*ranges):
        try:
            if guard.eval(idx, {}):
                return []
        except Exception:
            return []  # opaque guard: leave it to the runtime
    span = tuple(bounds[0]) if len(bounds) == 1 else None
    return [_diag(
        "KRN003",
        f"guard {guard!r} is false on all {total} domain indices: the "
        "clause never writes",
        severity=Severity.WARNING,
        clause=ir.clause.name or "<anonymous>", span=span,
        hint="remove the guard or fix its bounds; every iteration is "
             "filtered out")]


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------

def sanitize_kernels(ir) -> List[Diagnostic]:
    """Audit one compiled plan's generated kernels; returns KRN findings
    (empty when the plan has no kernels — nothing generated, nothing to
    audit)."""
    out: List[Diagnostic] = []
    kernels = getattr(ir, "kernels", None)
    if kernels is not None:
        out += _audit_sources(ir, kernels)
        out += _check_shared(ir, kernels)
        out += _check_dist(ir, kernels)
        out += _check_mp(ir, kernels)
    out += _check_guard(ir)
    return out


def check_kernels_strict(ir, strict: bool) -> None:
    """``run --strict`` gate for the mp/native tiers: refuse execution
    when the kernel sanitizer finds a KRN error (mirrors the fused
    backend's RACE/COMM gate)."""
    if not strict:
        return
    offending = [d for d in sanitize_kernels(ir)
                 if d.is_error and d.code.startswith("KRN")]
    if offending:
        from ..machine.fused import FusedStrictError

        codes = ", ".join(sorted({d.code for d in offending}))
        raise FusedStrictError(
            f"execution refused under --strict: kernel sanitizer flagged "
            f"{codes} ({offending[0].message})")
