"""Static message-schedule verification (the ``SCHED`` family).

The mp runtime executes *lowered* node programs: per-node send plans,
gather plans and barrier flags computed once at compile time
(:mod:`repro.runtime.lowering`).  Because every send peer and every
expected gather source is a compile-time constant, the whole message
schedule can be proven consistent before a worker ever spawns:

``SCHED001``
    Bidirectional message matching.  Every ``(dst, src, pos)`` send key
    in some node's send plan must be expected by exactly the gather plan
    of node ``dst`` (and vice versa), with equal lane counts.  An
    unmatched expectation is a receive that blocks forever; an unmatched
    send is a stray message that poisons a later run's drain.

``SCHED002``
    Barrier placement.  At a fused clause boundary (barrier eliminated)
    no node may gather elements of the producer's write that a
    *different* node commits in the same phase — that is exactly the
    cross-processor dependence the fusion proof rules out, re-checked
    here against the lowered global keys rather than the access algebra.

``SCHED003``
    Wait-for acyclicity.  Node ``q`` waits on node ``p`` when its gather
    plan expects a message from ``p``.  A cycle through a node with an
    unmatched inbound message means the blocked wait propagates around
    the cycle: whole-schedule deadlock, reported with the cycle path.

A clean check yields a :class:`ScheduleCertificate` — the static
deadlock-freedom proof that runtime crash/deadlock messages cite
(:func:`cite_certificate`), so a failure that *contradicts* a
certificate is distinguishable from an uncertified schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .diagnostics import Diagnostic, Severity

__all__ = [
    "ScheduleCertificate",
    "check_schedule",
    "certificate_for",
    "cite_certificate",
]


@dataclass(frozen=True)
class ScheduleCertificate:
    """Outcome of one static schedule check over a lowered program
    sequence.  ``ok`` means deadlock-freedom was certified."""

    nclauses: int
    pmax: int
    flavors: Tuple[str, ...]
    messages: int          #: matched (dst, src, pos) send keys
    barriers: int          #: kept end-of-clause barriers
    codes: Tuple[str, ...] = ()   #: offending SCHED codes (empty = ok)

    @property
    def ok(self) -> bool:
        return not self.codes

    def describe(self) -> str:
        head = (f"{self.nclauses} clause(s) x {self.pmax} node(s), "
                f"{self.messages} send key(s), {self.barriers} barrier(s)")
        if self.ok:
            return (f"schedule statically certified deadlock-free: {head}; "
                    "every send matched 1:1, wait-for graph acyclic "
                    "through unmatched messages")
        return f"schedule certificate DENIED ({', '.join(self.codes)}): {head}"


def _diag(code, message, **kw):
    kw.setdefault("severity", Severity.ERROR)
    return Diagnostic(code=code, message=message, **kw)


def _lanes(key: tuple) -> int:
    return int(key[0].size) if key else 0


def _elements(key: tuple):
    """The global elements a key tuple addresses, as hashable tuples."""
    if not key:
        return set()
    cols = [v.tolist() for v in key]
    return set(zip(*cols)) if len(cols) > 1 else set(cols[0])


def _match_messages(prog, label: str) -> Tuple[List[Diagnostic], int, set]:
    """SCHED001 over one lowered program: sends vs expectations.

    Returns ``(diagnostics, matched_count, unmatched_dst_src)`` where the
    set holds ``(dst, src)`` pairs whose expected message never arrives
    (feeds the SCHED003 cycle check)."""
    sent: Dict[tuple, int] = {}
    for nd in prog.nodes:
        for s in nd.sends:
            for q, key in s.peers:
                sent[(int(q), nd.p, s.pos)] = \
                    sent.get((int(q), nd.p, s.pos), 0) + _lanes(key)
    expected: Dict[tuple, int] = {}
    for nd in prog.nodes:
        for rd in nd.reads:
            for src, fill in rd.sources:
                expected[(nd.p, int(src), rd.pos)] = \
                    expected.get((nd.p, int(src), rd.pos), 0) + len(fill)
    out: List[Diagnostic] = []
    unmatched: set = set()
    for k in sorted(set(sent) | set(expected)):
        dst, src, pos = k
        ns, ne = sent.get(k), expected.get(k)
        if ns is None:
            unmatched.add((dst, src))
            out.append(_diag(
                "SCHED001",
                f"{label}: node {dst} expects {ne} lane(s) of read pos "
                f"{pos} from node {src}, but node {src} sends nothing "
                "under that key — the gather drain blocks forever",
                clause=label, access=f"read{pos}",
                witnesses={dst: [src]}))
        elif ne is None:
            out.append(_diag(
                "SCHED001",
                f"{label}: node {src} sends {ns} lane(s) of read pos "
                f"{pos} to node {dst}, but node {dst} expects no such "
                "message — a stray send poisons the next drain",
                clause=label, access=f"read{pos}",
                witnesses={src: [dst]}))
        elif ns != ne:
            unmatched.add((dst, src))
            out.append(_diag(
                "SCHED001",
                f"{label}: message (dst={dst}, src={src}, pos={pos}) "
                f"carries {ns} lane(s) but the gather expects {ne}",
                clause=label, access=f"read{pos}",
                witnesses={dst: [src]}))
    matched = sum(1 for k in sent if expected.get(k) == sent[k])
    return out, matched, unmatched


def _check_cycles(prog, label: str, unmatched: set) -> List[Diagnostic]:
    """SCHED003: a wait-for cycle through a node whose inbound message
    is unmatched."""
    waits: Dict[int, set] = {}
    for nd in prog.nodes:
        for rd in nd.reads:
            for src, _fill in rd.sources:
                waits.setdefault(nd.p, set()).add(int(src))
    blocked = {dst for dst, _src in unmatched}
    out: List[Diagnostic] = []
    for start in sorted(blocked):
        # DFS: can `start` reach itself through the wait-for edges?
        stack, seen, parent = [start], set(), {}
        cycle = None
        while stack and cycle is None:
            v = stack.pop()
            for w in sorted(waits.get(v, ())):
                if w == start:
                    path = [start]
                    u = v
                    while u != start:
                        path.append(u)
                        u = parent[u]
                    if len(path) == 1:
                        path.append(v)
                    cycle = list(reversed(path)) + [start]
                    break
                if w not in seen:
                    seen.add(w)
                    parent[w] = v
                    stack.append(w)
        if cycle is not None:
            arrows = " -> ".join(f"p{v}" for v in cycle)
            out.append(_diag(
                "SCHED003",
                f"{label}: wait-for cycle {arrows} passes through node "
                f"{start}, whose inbound message is unmatched — the "
                "blocked wait propagates around the cycle (deadlock)",
                clause=label,
                witnesses={start: cycle[1:2]}))
    return out


def _check_fused_boundaries(progs, flags) -> List[Diagnostic]:
    """SCHED002 over maximal fused runs: a consumer clause must not
    gather elements of an earlier in-run producer's write that another
    node commits (no barrier separates them)."""
    out: List[Diagnostic] = []
    runs: List[List[int]] = []
    current = [0]
    for k in range(len(progs) - 1):
        if flags[k]:
            runs.append(current)
            current = [k + 1]
        else:
            current.append(k + 1)
    runs.append(current)
    for run in runs:
        for j_pos, j in enumerate(run):
            prod = progs[j]
            commits = {
                nd.p: (_elements(nd.wkey_interior)
                       | _elements(nd.wkey_boundary))
                for nd in prod.nodes
            }
            for k in run[j_pos + 1:]:
                cons = progs[k]
                for nd in cons.nodes:
                    for rd in nd.reads:
                        if rd.name != prod.write_name:
                            continue
                        gathered = _elements(rd.local_key)
                        for p, elems in commits.items():
                            if p == nd.p:
                                continue
                            hit = gathered & elems
                            if hit:
                                e = sorted(hit)[0]
                                out.append(_diag(
                                    "SCHED002",
                                    f"fused boundary {j}->{k}: node "
                                    f"{nd.p} gathers element {e} of "
                                    f"{prod.write_name!r} which node {p} "
                                    "commits in the same phase (no "
                                    "barrier separates them)",
                                    clause=f"clause{k}",
                                    access=f"read{rd.pos}:{rd.name}",
                                    witnesses={nd.p: [p]}))
    return out


def check_schedule(
    progs: Sequence[object],
    *,
    flags: Optional[Sequence[bool]] = None,
    repeat: int = 1,
) -> Tuple[List[Diagnostic], ScheduleCertificate]:
    """Statically verify a lowered program sequence (``MpProgram`` per
    clause) and return ``(diagnostics, certificate)``.

    *flags* are the per-clause barrier flags (``ProgramIR.barrier_flags``);
    omitted means every clause barriers.  The certificate is the static
    deadlock-freedom proof — denied (``ok=False``) when any SCHED error
    was found."""
    progs = list(progs)
    out: List[Diagnostic] = []
    if flags is None:
        flags = [True] * len(progs)
    flags = list(flags)
    if len(flags) != len(progs):
        out.append(_diag(
            "SCHED002",
            f"barrier flag vector has {len(flags)} entries for "
            f"{len(progs)} lowered clause(s) — the pre-commit protocol "
            "cannot line up"))
        flags = (flags + [True] * len(progs))[:len(progs)]
    messages = 0
    for k, prog in enumerate(progs):
        label = f"clause{k}"
        diags, matched, unmatched = _match_messages(prog, label)
        out += diags
        messages += matched
        out += _check_cycles(prog, label, unmatched)
    out += _check_fused_boundaries(progs, flags)
    cert = ScheduleCertificate(
        nclauses=len(progs),
        pmax=max((p.pmax for p in progs), default=0),
        flavors=tuple(sorted({p.flavor for p in progs})),
        messages=messages,
        barriers=sum(1 for f in flags if f) * max(1, int(repeat)),
        codes=tuple(sorted({d.code for d in out if d.is_error})),
    )
    return out, cert


def certificate_for(progs, *, flags=None, repeat=1) -> ScheduleCertificate:
    """Convenience wrapper returning only the certificate."""
    _, cert = check_schedule(progs, flags=flags, repeat=repeat)
    return cert


def cite_certificate(err, cert: Optional[ScheduleCertificate]):
    """Append the static schedule verdict to a runtime failure message
    (``WorkerCrashError`` / ``DeadlockError``), so a crash contradicting
    a certificate is distinguishable from an uncertified schedule.  The
    error object is returned with only its message amended."""
    if not getattr(err, "args", None) or not isinstance(err.args[0], str):
        return err
    if cert is None:
        note = "[no SCHED certificate was computed for this schedule]"
    elif cert.ok:
        note = (f"[SCHED certificate: {cert.describe()} — this failure "
                "contradicts the certificate; suspect a crashed or hung "
                "worker, not message matching]")
    else:
        note = (f"[SCHED certificate denied: {', '.join(cert.codes)} — "
                "run `repro check` on this program]")
    err.args = (f"{err.args[0]} {note}",) + err.args[1:]
    return err
