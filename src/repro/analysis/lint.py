"""Decomposition lint over the Plan IR.

Warnings about *legal but slow* decomposition choices, computed from the
per-processor ``|Modify_p|`` counts the Table I enumerators give in
closed form:

``LINT001``  load imbalance — the busiest processor holds more than
             twice the mean share of the iteration space.
``LINT002``  idle processors — some processors own no iteration at all.
``LINT003``  scattered sequential chain — a ``•`` recurrence whose write
             is scattered: consecutive iterations live on different
             processors, so every step of the chain is a message.
``LINT004``  naive fallback — an access has no Table I closed form and
             membership degrades to the full-range scan (info only).
"""

from __future__ import annotations

from typing import List, Optional

from ..core.clause import Ordering
from ..decomp.blockscatter import BlockScatter
from ..decomp.scatter import Scatter
from .diagnostics import Diagnostic, Severity

__all__ = ["analyze_lint"]


def _modify_counts(ir) -> Optional[List[int]]:
    """Per-processor ``|Modify_p|`` via the write enumerators (product
    over axes), or ``None`` when they are unavailable."""
    w = ir.write
    if w is None or not w.placed or w.replicated or not w.axes:
        return None
    if any(ax.access is None for ax in w.axes):
        return None
    if sorted(ax.loop_dim for ax in w.axes) != list(range(ir.ndim)):
        return None
    counts = []
    for p in range(ir.pmax):
        coord = w.grid_coord(p)
        total = 1
        for k, ax in enumerate(w.axes):
            total *= ax.access.enumerate(coord[k]).count()
        counts.append(total)
    return counts


def analyze_lint(ir) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    w = ir.write
    if w is None:
        return out
    span = tuple(ir.loop_bounds[0]) if ir.ndim == 1 else None
    counts = _modify_counts(ir)
    if counts is not None and ir.pmax > 1 and sum(counts) > 0:
        total = sum(counts)
        busiest = max(range(ir.pmax), key=lambda p: counts[p])
        mean = total / ir.pmax
        if counts[busiest] > 2 * mean and counts[busiest] > min(counts):
            out.append(Diagnostic(
                code="LINT001",
                severity=Severity.WARNING,
                message=f"processor {busiest} executes "
                        f"{counts[busiest]} of {total} iterations "
                        f"(mean {mean:.1f}): |Modify_p| = {counts}",
                access=f"{w.label}:{w.name}",
                span=span,
                hint="a block or scatter decomposition of the written "
                     "array spreads Modify_p evenly",
            ))
        idle = [p for p in range(ir.pmax) if counts[p] == 0]
        if idle:
            out.append(Diagnostic(
                code="LINT002",
                severity=Severity.WARNING,
                message=f"{len(idle)} of {ir.pmax} processors own no "
                        f"iteration: {idle[:8]}",
                access=f"{w.label}:{w.name}",
                span=span,
                hint="shrink pmax or choose a decomposition whose owned "
                     "ranges intersect the write image",
            ))
    if (ir.clause.ordering is Ordering.SEQ and ir.doacross_distances
            and w.placed):
        dec = w.dec
        scattered = isinstance(dec, Scatter) or (
            isinstance(dec, BlockScatter) and dec.b < max(
                ir.doacross_distances.values()) + 1)
        if scattered and ir.pmax > 1:
            s = max(ir.doacross_distances.values())
            out.append(Diagnostic(
                code="LINT003",
                severity=Severity.WARNING,
                message=f"the recurrence (distance {s}) chains across a "
                        f"{type(dec).__name__} decomposition: every "
                        "iteration forwards its value to another "
                        "processor",
                access=f"{w.label}:{w.name}",
                span=span,
                hint="a Block decomposition keeps chains "
                     "processor-local except at block boundaries",
            ))
    for acc in ir.accesses():
        for ax in acc.axes:
            if ax.access is not None and "naive" in ax.access.rule:
                out.append(Diagnostic(
                    code="LINT004",
                    severity=Severity.INFO,
                    message=f"{acc.label}:{acc.name} has no Table I "
                            "closed form: membership is a full-range "
                            "scan at runtime",
                    access=f"{acc.label}:{acc.name}",
                    span=span,
                    hint="affine, modular, or monotone access functions "
                         "enumerate in closed form",
                ))
                break
    return out
