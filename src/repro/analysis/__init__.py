"""Compile-time verification (static analysis over the Plan/Program IR).

The paper's central claim — ``Modify_p`` / ``Reside_p`` are closed-form
sets computable at compile time (§3, Table I) — makes correctness
questions about generated SPMD programs *decidable* with the same
segment algebra the compiler already uses:

* :mod:`~repro.analysis.races`  — Bernstein conditions on ``//`` clauses
* :mod:`~repro.analysis.comm`   — every remote read matched by a send
* :mod:`~repro.analysis.bounds` — access images inside declared arrays
* :mod:`~repro.analysis.lint`   — decomposition quality warnings

and, at whole-program granularity (the ``PROG``/``SCHED``/``KRN``
families):

* :mod:`~repro.analysis.program_verifier` — independent re-derivation of
  every fuse/elide/pipeline decision over a :class:`ProgramIR`
* :mod:`~repro.analysis.schedule` — static message matching and
  deadlock-freedom certification over the lowered mp schedule
* :mod:`~repro.analysis.kernel_sanitizer` — generated-kernel audit
  (index bounds, source whitelist, NaN parity, dead guards)

Findings are :class:`Diagnostic` records with stable codes (catalogued
in ``docs/analysis.md``), aggregated per clause into a
:class:`DiagnosticReport`.  The pipeline exposes the verifier as the
optional ``verify-plan`` pass (``compile_plan(..., verify=True)``), the
CLI as ``repro check``.
"""

from .bounds import analyze_bounds
from .comm import analyze_comm
from .diagnostics import CODES, Diagnostic, DiagnosticReport, Severity
from .interference import certified_independent
from .kernel_sanitizer import (audit_kernel_source, check_kernels_strict,
                               sanitize_kernels)
from .lint import analyze_lint
from .program_verifier import (ProgramVerification, clear_verify_cache,
                               verify_cache_info, verify_program)
from .races import analyze_races
from .schedule import (ScheduleCertificate, certificate_for, check_schedule,
                       cite_certificate)
from .verifier import annotate_deadlock, verify_clause, verify_ir

__all__ = [
    "CODES",
    "Diagnostic",
    "DiagnosticReport",
    "Severity",
    "analyze_races",
    "analyze_comm",
    "analyze_bounds",
    "analyze_lint",
    "certified_independent",
    "verify_ir",
    "verify_clause",
    "annotate_deadlock",
    "sanitize_kernels",
    "audit_kernel_source",
    "check_kernels_strict",
    "ScheduleCertificate",
    "check_schedule",
    "certificate_for",
    "cite_certificate",
    "ProgramVerification",
    "verify_program",
    "verify_cache_info",
    "clear_verify_cache",
]
