"""Shared machinery of the four analyses.

Everything here answers a question about one scalar access function over
one inclusive loop range, preferring the paper's closed forms (affine
image segments, exact ``preimage`` bands, the §3.3 injectivity
criterion) and falling back to bounded enumeration for opaque functions.
The enumeration budget keeps the verifier from hanging on astronomically
large domains — analyses report ``CHK001`` when they hit it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.ifunc import AffineF, ConstantF, IFunc, ModularF, MonotoneF
from ..sets.enumerators import Segment, intersect_segments, segment_elements

__all__ = [
    "ENUM_BUDGET",
    "BudgetExceeded",
    "range_count",
    "injective_on",
    "find_duplicate",
    "affine_image",
    "image_violation",
    "loop_carried_pair",
    "segment_elements",
]

#: largest index range the enumeration fallback will walk
ENUM_BUDGET = 1 << 20


class BudgetExceeded(Exception):
    """An enumeration fallback would exceed :data:`ENUM_BUDGET`."""

    def __init__(self, what: str):
        super().__init__(what)
        self.what = what


def range_count(lo: int, hi: int) -> int:
    return max(0, hi - lo + 1)


def _check_budget(lo: int, hi: int, what: str) -> None:
    if range_count(lo, hi) > ENUM_BUDGET:
        raise BudgetExceeded(what)


def injective_on(f: IFunc, lo: int, hi: int) -> Optional[bool]:
    """Is *f* injective on ``[lo, hi]``?  ``None`` means undecided
    (caller enumerates)."""
    if hi <= lo:
        return True
    if isinstance(f, ConstantF):
        return False
    if isinstance(f, AffineF):  # a != 0 by construction
        return True
    if isinstance(f, ModularF):
        # §3.3 criterion is sufficient, not necessary: fall through to
        # enumeration when it does not hold.
        return True if f.is_injective_on(lo, hi) else None
    if isinstance(f, MonotoneF):
        return True  # monotone injective by contract
    return None


def find_duplicate(f: IFunc, lo: int, hi: int) -> Optional[Tuple[int, int, int]]:
    """First ``(i1, i2, element)`` with ``i1 < i2`` and ``f(i1) == f(i2)``,
    by enumeration; ``None`` when *f* is injective on the range."""
    _check_budget(lo, hi, f"duplicate scan of {f.name}")
    seen: dict = {}
    for i in range(lo, hi + 1):
        v = f(i)
        if v in seen:
            return seen[v], i, v
        seen[v] = i
    return None


def affine_image(f: AffineF, lo: int, hi: int) -> Segment:
    """The exact image of an affine function over ``[lo, hi]`` as one
    strided segment."""
    if f.a > 0:
        return Segment(f(lo), f(hi), f.a)
    return Segment(f(hi), f(lo), -f.a)


def image_violation(f: IFunc, lo: int, hi: int, n: int) -> Optional[int]:
    """Smallest ``i`` in ``[lo, hi]`` with ``f(i)`` outside ``[0, n)``,
    or ``None`` when the whole image is in bounds.

    Uses the exact integer ``preimage`` of the valid band (closed form
    for constant/affine/modular/monotone classes); enumerates otherwise.
    """
    if lo > hi:
        return None
    try:
        ok = f.preimage(0, n - 1, lo, hi)
    except NotImplementedError:
        ok = None
    if ok is None:
        _check_budget(lo, hi, f"bounds scan of {f.name}")
        for i in range(lo, hi + 1):
            if not (0 <= f(i) < n):
                return i
        return None
    covered = sum(h - l + 1 for l, h in ok)
    if covered >= range_count(lo, hi):
        return None
    cursor = lo
    for l, h in ok:  # disjoint increasing ranges
        if cursor < l:
            return cursor
        cursor = max(cursor, h + 1)
    return cursor if cursor <= hi else None


def loop_carried_pair(
    f: IFunc, g: IFunc, lo: int, hi: int
) -> Optional[Tuple[int, int, int]]:
    """A witness ``(i_write, i_read, element)`` with ``i_write != i_read``
    and ``f(i_write) == g(i_read)`` over ``[lo, hi]`` — the Bernstein
    write/read overlap between two distinct parameter instances.

    Closed form for affine/constant pairs (intersect the strided image
    segments; at most one intersection element can be the harmless
    coincident instance, so probing the first few members is exact);
    bounded enumeration otherwise.
    """
    if lo > hi:
        return None
    if isinstance(f, AffineF) and isinstance(g, AffineF):
        if (f.a, f.c) == (g.a, g.c):
            return None  # f(i1) = g(i2) forces i1 = i2: no carried pair
        common = intersect_segments([affine_image(f, lo, hi)],
                                    [affine_image(g, lo, hi)])
        # i1 = (e - f.c)/f.a and i2 = (e - g.c)/g.a collide for at most
        # one e, so any two members of the intersection contain a witness.
        for e in segment_elements(common, 3):
            i1 = (e - f.c) // f.a
            i2 = (e - g.c) // g.a
            if i1 != i2:
                return i1, i2, e
        return None
    if isinstance(f, ConstantF):
        # every instance writes f.c: any reader of f.c plus any other
        # instance is a witness
        for i2 in _solve(g, f.c, lo, hi):
            i1 = lo if i2 != lo else lo + 1
            if i1 <= hi:
                return i1, i2, f.c
        return None
    if isinstance(g, ConstantF):
        for i1 in _solve(f, g.c, lo, hi):
            i2 = lo if i1 != lo else lo + 1
            if i2 <= hi:
                return i1, i2, g.c
        return None
    _check_budget(lo, hi, f"dependence scan of {f.name} vs {g.name}")
    writers: dict = {}
    for i in range(lo, hi + 1):
        slot = writers.setdefault(f(i), [])
        if len(slot) < 2:  # two writers always include one != any reader
            slot.append(i)
    for i2 in range(lo, hi + 1):
        for i1 in writers.get(g(i2), ()):
            if i1 != i2:
                return i1, i2, g(i2)
    return None


def _solve(f: IFunc, v: int, lo: int, hi: int) -> List[int]:
    try:
        return f.solve(v, lo, hi)
    except NotImplementedError:
        _check_budget(lo, hi, f"solve scan of {f.name}")
        return [i for i in range(lo, hi + 1) if f(i) == v]
