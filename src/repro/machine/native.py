"""Native-tier executors (``backend="native"``).

Same schedule and counters as the fused executors
(:mod:`repro.machine.fused`) — one precomputed gather per read, the
interior kernel overlapping communication on the distributed machine,
commits in node order against pre-state — but the per-lane-set
compute+commit is one call into the njit-compiled scalar loop built by
:mod:`repro.pipeline.native`: no NumPy temporaries, no per-op Python
dispatch, guard and scatter folded into the native loop.

Bit-identity with every other backend is part of the contract
(``TestAllBackendsAgree``): value vectors are materialized float64
*before* any commit, the scalar loop evaluates the identical IEEE-754
expression tree per lane, and duplicate store keys resolve
last-lane-wins exactly like the fancy-indexed NumPy store.

Plans with no native form — numba absent, unrenderable expressions,
non-contiguous write buffers — raise
:class:`~repro.pipeline.native.NativeBuildError`, which the dispatchers
catch to fall back to the fused tier with a trace note.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..core.clause import Ordering
from ..pipeline.native import NativeBuildError, ensure_native
from .distributed import DistributedMachine, NodeContext
from ..analysis.kernel_sanitizer import check_kernels_strict
from .fused import check_strict
from .shared import SharedMachine
from .vectorize import _place_env

__all__ = [
    "native_kernels_for",
    "run_shared_native",
    "run_group_native",
    "make_native_node_program",
    "run_distributed_native",
]


def native_kernels_for(ir, flavor: str):
    """Resolve (fused kernels, native tier) for one flavor or raise
    :class:`NativeBuildError` with the fallback reason."""
    k = getattr(ir, "kernels", None)
    if k is None:
        raise NativeBuildError(
            "plan carries no fused kernels (lower-kernels fallback)")
    nodes = k.shared if flavor == "shared" else k.dist
    if nodes is None:
        note = k.shared_note if flavor == "shared" else k.dist_note
        raise NativeBuildError(note or "no kernels for this flavor")
    nat = ensure_native(k, ir)
    return k, nat


def _gather_rows(nreads: int, n: int) -> np.ndarray:
    """The kernel's stacked read-value rows (``float64[nreads, n]``)."""
    return np.empty((max(nreads, 0), n), dtype=np.float64)


# ---------------------------------------------------------------------------
# shared-memory native executor
# ---------------------------------------------------------------------------

def run_shared_native(
    ir,
    env: Dict[str, np.ndarray],
    machine: Optional[SharedMachine] = None,
    strict: bool = False,
) -> SharedMachine:
    """Execute a ``//`` clause with the njit kernel: gather every node's
    read rows against pre-state first, then one native compute+scatter
    call per node in node order — phase semantics identical to the
    fused/vector executors."""
    if ir.clause.ordering is not Ordering.PAR:
        raise NativeBuildError("the native executor handles // clauses")
    check_strict(ir, strict)
    check_kernels_strict(ir, strict)
    k, nat = native_kernels_for(ir, "shared")
    if machine is None:
        machine = SharedMachine(ir.pmax, env)
    genv = machine.env
    target = genv[k.write_name]
    if not target.flags.c_contiguous:
        raise NativeBuildError(
            f"write target {k.write_name!r} is not C-contiguous; the "
            "native scatter needs a flat view")
    if target.dtype != np.float64:
        raise NativeBuildError(
            f"write target {k.write_name!r} is {target.dtype}; the njit "
            "signature stores float64")
    out = target.reshape(-1)

    pending = []
    for p, nk in enumerate(k.shared):
        machine.stats[p].iterations += nk.n
        if nk.n == 0:
            pending.append((p, None))
            continue
        rows = _gather_rows(k.nreads, nk.n)
        for pos, (name, key) in enumerate(nk.read_keys):
            rows[pos] = genv[name][key]
        pending.append((p, rows))

    for p, rows in pending:
        machine.stats[p].barriers += 1
        if rows is None:
            continue
        node = nat.shared[p]
        stored = nat.entry(node.idx2, rows, node.lanes,
                           node.scatter_for(target.shape), out)
        machine.stats[p].local_updates += int(stored)
    return machine


def run_group_native(irs, machine: SharedMachine) -> SharedMachine:
    """Execute a fused clause group with the njit kernels: the same
    node-major walk as :func:`~repro.machine.fused.run_group_fused`
    (node p runs every clause of the group before node p+1 starts),
    with each clause's gather/compute/commit one native call."""
    genv = machine.env
    for p in range(machine.pmax):
        for ir in irs:
            k = ir.kernels
            nat = k.native
            if p >= len(k.shared):
                continue
            nk = k.shared[p]
            machine.stats[p].iterations += nk.n
            if nk.n == 0:
                continue
            rows = _gather_rows(k.nreads, nk.n)
            for pos, (name, key) in enumerate(nk.read_keys):
                rows[pos] = genv[name][key]
            target = genv[k.write_name]
            node = nat.shared[p]
            stored = nat.entry(node.idx2, rows, node.lanes,
                               node.scatter_for(target.shape),
                               target.reshape(-1))
            machine.stats[p].local_updates += int(stored)
    for p in range(machine.pmax):
        machine.stats[p].barriers += 1
    return machine


# ---------------------------------------------------------------------------
# distributed native executor (overlap schedule, njit interior kernel)
# ---------------------------------------------------------------------------

def make_native_node_program(ir, ctx: NodeContext):
    """The fused overlap schedule with the njit kernel doing every
    compute+commit: post sends, post non-blocking receives, run the
    native *interior* kernel while messages are in flight, drain, then
    the native *boundary* kernel."""
    k = ir.kernels
    nat = k.native
    nk = k.dist[ctx.p]
    nnode = nat.dist[ctx.p]

    def program():
        # ---- send phase: identical to fused ------------------------------
        for s in nk.sends:
            ctx.stats.iterations += s.count
            buf = ctx.mem[s.name].ravel()
            for q, gidx in s.peers:
                ctx.send(q, ("fus", s.pos), buf[gidx])

        # ---- update phase -------------------------------------------------
        n = nk.n
        ctx.stats.iterations += n
        if n:
            rows = _gather_rows(k.nreads, n)
            pending = []  # (handle, row view, lane positions to fill)
            for r in nk.reads:
                if r.replicated:
                    rows[r.pos] = ctx.mem[r.name].ravel()[r.rep_gather]
                    continue
                row = rows[r.pos]
                if r.local_pos.size:
                    row[r.local_pos] = \
                        ctx.mem[r.name].ravel()[r.local_gather]
                for src, fill in r.sources:
                    handle = yield ctx.irecv(src, ("fus", r.pos))
                    pending.append((handle, row, fill))

            wbuf = ctx.mem[k.write_name].ravel()

            def commit(idx2, lanes, scatter):
                if not lanes.size:
                    return
                stored = nat.entry(idx2, rows, lanes, scatter, wbuf)
                ctx.stats.local_updates += int(stored)

            # native interior kernel while messages are in flight
            ctx.charge_elements(int(nk.interior.size))
            commit(nnode.idx2_interior, nk.interior, nk.scatter_interior)

            while pending:
                done = yield ctx.probe([h for h, _, _ in pending])
                i = next(j for j, (h, _, _) in enumerate(pending)
                         if h is done)
                _, row, fill = pending.pop(i)
                row[fill] = np.asarray(
                    ctx.note_received(done.payload), dtype=np.float64)

            ctx.charge_elements(int(nk.boundary.size))
            commit(nnode.idx2_boundary, nk.boundary, nk.scatter_boundary)

        yield ctx.barrier()

    return program()


def run_distributed_native(
    ir,
    env: Dict[str, np.ndarray],
    machine: Optional[DistributedMachine] = None,
    model=None,
    strict: bool = False,
) -> DistributedMachine:
    """Place *env*, run the native node programs, return the machine."""
    if ir.clause.ordering is not Ordering.PAR:
        raise NativeBuildError("the native executor handles // clauses")
    if ir.write.replicated:
        raise NativeBuildError("replicated write (per-copy broadcast)")
    check_strict(ir, strict)
    check_kernels_strict(ir, strict)
    # node memories are always float64 (DistributedMachine.place), so no
    # dtype guard is needed on this flavor
    native_kernels_for(ir, "dist")
    if machine is None:
        machine = DistributedMachine(ir.pmax, model=model)
        _place_env(ir, env, machine)
    machine.run(lambda ctx: make_native_node_program(ir, ctx))
    return machine
