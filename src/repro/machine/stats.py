"""Instrumentation for the simulated machines.

The paper's optimization story is about *counts* — membership tests,
iterations, messages — not wall-clock on 1991 hardware, so every node
records its counters and the benchmarks report aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["NodeStats", "MachineStats"]


@dataclass
class NodeStats:
    """Per-node activity counters."""

    sends: int = 0
    recvs: int = 0
    elements_sent: int = 0
    elements_received: int = 0
    local_updates: int = 0
    membership_tests: int = 0
    iterations: int = 0
    barriers: int = 0
    steps: int = 0  # scheduler resumptions
    #: virtual clock under the optional latency model (stays 0.0 without it)
    vtime: float = 0.0

    def busy_work(self) -> int:
        return self.local_updates + self.elements_sent + self.elements_received


@dataclass
class MachineStats:
    """Counters for all nodes of one machine run."""

    nodes: List[NodeStats] = field(default_factory=list)

    @classmethod
    def for_nodes(cls, pmax: int) -> "MachineStats":
        return cls([NodeStats() for _ in range(pmax)])

    def __getitem__(self, p: int) -> NodeStats:
        return self.nodes[p]

    # -- aggregates -----------------------------------------------------------

    def total(self, attr: str) -> int:
        return sum(getattr(n, attr) for n in self.nodes)

    def total_messages(self) -> int:
        return self.total("sends")

    def total_elements_moved(self) -> int:
        return self.total("elements_sent")

    def total_updates(self) -> int:
        return self.total("local_updates")

    def total_tests(self) -> int:
        return self.total("membership_tests")

    def update_counts(self) -> List[int]:
        return [n.local_updates for n in self.nodes]

    def makespan(self) -> float:
        """Modeled completion time: the laggard node's virtual clock
        (0.0 when no latency model was attached to the run)."""
        return max((n.vtime for n in self.nodes), default=0.0)

    def load_imbalance(self) -> float:
        """max/mean of per-node updates (1.0 = perfectly balanced)."""
        counts = self.update_counts()
        active = [c for c in counts]
        mean = sum(active) / len(active) if active else 0.0
        if mean == 0:
            return 0.0
        return max(active) / mean

    def summary(self) -> Dict[str, int]:
        return {
            "messages": self.total_messages(),
            "elements_moved": self.total_elements_moved(),
            "updates": self.total_updates(),
            "tests": self.total_tests(),
            "iterations": self.total("iterations"),
        }
