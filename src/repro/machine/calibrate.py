"""Measured machine description: ping-pong alpha/beta + compute rate.

The analytic :class:`~repro.machine.costmodel.CostModel` presets
(``HYPERCUBE`` et al.) carry era-bracketing coefficients in arbitrary
units; the benchmarks that *model* communication have so far cited the
hardcoded ``alpha=50.0`` preset.  ``repro calibrate`` replaces that with
numbers measured on the host:

* **alpha, beta** — a rank-0 <-> rank-1 ping-pong sweep over message
  sizes, least-squares fitted to ``one_way(n) = alpha + beta * n``.
  Under a real MPI world the sweep runs ``mpiexec -n 2 python -m
  repro.mpi.rank --pingpong`` (the wire the mpi backend actually uses);
  without one it falls back to a :mod:`multiprocessing` pipe between two
  OS processes — the same host-local transport class the mp backend and
  the MPI stub exercise, recorded as such in ``method``.
* **t_element** — a vectorized three-point stencil microbenchmark, the
  per-element compute rate of the fused kernels' NumPy substrate.

The result is a :class:`MachineDescription`, serialized as JSON.  Set
``REPRO_MACHINE_FILE=/path/to/machine.json`` (or pass a path) and
:func:`load_machine` /
:func:`~repro.machine.costmodel.calibrated_cost_model` pick it up; the
cost model expresses alpha/beta in ``t_update`` units so modeled ratios
stay comparable with the presets.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .channels import LatencyModel

__all__ = [
    "CalibrationError",
    "MachineDescription",
    "calibrate",
    "fit_alpha_beta",
    "load_machine",
    "measure_t_element",
    "pingpong_points",
]

#: default ping-pong message sizes (doubles) — spans the latency-bound
#: and bandwidth-bound regimes so the least-squares fit is conditioned
DEFAULT_SIZES = (1, 8, 64, 512, 4096, 32768)
DEFAULT_REPS = 50
ENV_MACHINE_FILE = "REPRO_MACHINE_FILE"


class CalibrationError(RuntimeError):
    """A measurement could not be taken (dead child, bad JSON, ...)."""


@dataclass(frozen=True)
class MachineDescription:
    """Measured per-host communication and compute coefficients.

    All times are seconds; ``beta_s`` and ``t_element_s`` are per
    float64 element.
    """

    alpha_s: float            # per-message one-way latency
    beta_s: float             # per-element transfer time
    t_element_s: float        # per-element stencil update time
    method: str               # "mpi-pingpong" | "pipe-pingpong"
    points: Tuple[Tuple[int, float], ...] = ()   # (size, one_way_s)
    meta: Dict[str, object] = field(default_factory=dict)

    def latency_model(self) -> LatencyModel:
        """The measured coefficients as a simulator latency model
        (virtual time unit = one second)."""
        return LatencyModel(alpha=self.alpha_s, beta=self.beta_s,
                            t_element=self.t_element_s)

    def cost_model(self, name: str = "calibrated"):
        """A :class:`~repro.machine.costmodel.CostModel` normalized so
        one element update costs 1.0 — alpha/beta become *measured*
        multiples of the compute rate instead of the preset guesses."""
        from .costmodel import CostModel

        t = self.t_element_s if self.t_element_s > 0 else 1.0
        return CostModel(name,
                         t_update=1.0,
                         t_iteration=0.0,
                         t_test=0.0,
                         alpha=self.alpha_s / t,
                         beta=self.beta_s / t,
                         t_barrier=2.0 * self.alpha_s / t)

    def describe(self) -> str:
        return (f"machine[{self.method}]: alpha={self.alpha_s * 1e6:.2f}us "
                f"beta={self.beta_s * 1e9:.2f}ns/elem "
                f"t_element={self.t_element_s * 1e9:.2f}ns/elem "
                f"(alpha/t_element={self.alpha_s / self.t_element_s:.0f} "
                "elements break even per message)"
                if self.t_element_s > 0 else
                f"machine[{self.method}]: alpha={self.alpha_s * 1e6:.2f}us "
                f"beta={self.beta_s * 1e9:.2f}ns/elem")

    def as_dict(self) -> Dict[str, object]:
        d = asdict(self)
        d["points"] = [[int(n), float(s)] for n, s in self.points]
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "MachineDescription":
        return cls(
            alpha_s=float(d["alpha_s"]),
            beta_s=float(d["beta_s"]),
            t_element_s=float(d["t_element_s"]),
            method=str(d.get("method", "unknown")),
            points=tuple((int(n), float(s))
                         for n, s in d.get("points", [])),
            meta=dict(d.get("meta", {})),
        )

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.as_dict(), fh, indent=2)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "MachineDescription":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))


def load_machine(path: Optional[str] = None) -> \
        Optional[MachineDescription]:
    """Load a saved description from ``path`` or ``$REPRO_MACHINE_FILE``;
    ``None`` when neither names a readable file."""
    path = path or os.environ.get(ENV_MACHINE_FILE)
    if not path or not os.path.isfile(path):
        return None
    try:
        return MachineDescription.load(path)
    except (OSError, ValueError, KeyError, TypeError):
        return None


def fit_alpha_beta(
    points: Sequence[Tuple[int, float]],
) -> Tuple[float, float]:
    """Least-squares ``one_way(n) = alpha + beta*n`` over (size, time)
    pairs; clamps tiny negative intercepts (noise) to zero."""
    if not points:
        raise CalibrationError("no ping-pong points to fit")
    if len(points) == 1:
        return float(points[0][1]), 0.0
    ns = np.array([float(n) for n, _ in points])
    ts = np.array([float(t) for _, t in points])
    coeffs, *_ = np.linalg.lstsq(
        np.stack([np.ones_like(ns), ns], axis=1), ts, rcond=None)
    alpha, beta = float(coeffs[0]), float(coeffs[1])
    return max(alpha, 0.0), max(beta, 0.0)


# ---------------------------------------------------------------------------
# ping-pong sweeps
# ---------------------------------------------------------------------------

def _mpi_pingpong(sizes: Sequence[int], reps: int,
                  timeout: float) -> List[Tuple[int, float]]:
    """Run the real sweep: ``mpiexec -n 2 python -m repro.mpi.rank
    --pingpong`` and parse its JSON line."""
    import subprocess

    from ..mpi.launcher import _rank_env
    from ..mpi.support import mpi_support

    sup = mpi_support()
    if not (sup.available and sup.mode == "mpi4py" and sup.launcher):
        raise CalibrationError(
            f"no MPI launcher for the real ping-pong ({sup.reason})")
    cmd = [sup.launcher, "-n", "2", sys.executable, "-m",
           "repro.mpi.rank", "--pingpong",
           "--sizes", ",".join(str(n) for n in sizes),
           "--reps", str(reps)]
    try:
        out = subprocess.run(cmd, capture_output=True, text=True,
                             timeout=timeout, env=_rank_env(),
                             check=True).stdout
    except (OSError, subprocess.SubprocessError) as e:
        raise CalibrationError(f"mpiexec ping-pong failed: {e}") from e
    for line in out.splitlines():
        line = line.strip()
        if line.startswith("{"):
            data = json.loads(line)
            if "error" in data:
                raise CalibrationError(data["error"])
            return [(int(n), float(t)) for n, t in data["points"]]
    raise CalibrationError("mpiexec ping-pong printed no JSON result")


def _pipe_child(conn) -> None:  # pragma: no cover — child process
    try:
        while True:
            msg = conn.recv()
            if msg is None:
                return
            conn.send(msg)
    except (EOFError, OSError):
        return


def _pipe_pingpong(sizes: Sequence[int],
                   reps: int) -> List[Tuple[int, float]]:
    """Host-local proxy: round-trip float64 buffers through a
    :mod:`multiprocessing` pipe to a child process."""
    import multiprocessing as mp

    ctx = mp.get_context()
    here, there = ctx.Pipe()
    child = ctx.Process(target=_pipe_child, args=(there,), daemon=True)
    child.start()
    there.close()
    points: List[Tuple[int, float]] = []
    try:
        for n in sizes:
            buf = np.zeros(int(n), dtype=np.float64)
            for _ in range(3):          # warmup
                here.send(buf)
                here.recv()
            t0 = time.perf_counter()
            for _ in range(reps):
                here.send(buf)
                here.recv()
            dt = time.perf_counter() - t0
            points.append((int(n), dt / reps / 2.0))    # one-way
        here.send(None)
    except (EOFError, OSError, BrokenPipeError) as e:
        raise CalibrationError(f"pipe ping-pong failed: {e}") from e
    finally:
        here.close()
        child.join(timeout=10.0)
        if child.is_alive():            # pragma: no cover
            child.terminate()
            child.join(timeout=5.0)
    return points


def pingpong_points(
    sizes: Sequence[int] = DEFAULT_SIZES,
    reps: int = DEFAULT_REPS,
    timeout: float = 120.0,
) -> Tuple[str, List[Tuple[int, float]]]:
    """``(method, points)``: the real MPI sweep when a launcher + mpi4py
    are present, else the pipe proxy."""
    try:
        return "mpi-pingpong", _mpi_pingpong(sizes, reps, timeout)
    except CalibrationError:
        return "pipe-pingpong", _pipe_pingpong(sizes, reps)


def measure_t_element(n: int = 1 << 16, reps: int = 30) -> float:
    """Seconds per element of a vectorized three-point stencil update —
    the compute substrate the fused kernels run on."""
    rng = np.random.default_rng(0)
    b = rng.random(n)
    a = np.zeros(n)
    for _ in range(3):                  # warmup
        a[1:-1] = 0.5 * (b[:-2] + b[2:])
    t0 = time.perf_counter()
    for _ in range(reps):
        a[1:-1] = 0.5 * (b[:-2] + b[2:])
    dt = time.perf_counter() - t0
    return dt / reps / max(n - 2, 1)


def calibrate(
    sizes: Sequence[int] = DEFAULT_SIZES,
    reps: int = DEFAULT_REPS,
    timeout: float = 120.0,
) -> MachineDescription:
    """Measure this host and return its :class:`MachineDescription`."""
    import platform

    method, points = pingpong_points(sizes, reps, timeout=timeout)
    alpha, beta = fit_alpha_beta(points)
    t_element = measure_t_element()
    return MachineDescription(
        alpha_s=alpha,
        beta_s=beta,
        t_element_s=t_element,
        method=method,
        points=tuple(points),
        meta={
            "python": platform.python_version(),
            "platform": platform.platform(),
            "machine": platform.machine(),
            "reps": int(reps),
        },
    )
