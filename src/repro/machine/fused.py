"""Fused-kernel executors (``backend="fused"``).

Where the vector backend interprets each run — re-deriving membership
vectors, applying placement arithmetic and tree-walking the clause body
— these executors run the **compile-once** kernels built by the
`lower-kernels` pass (:mod:`repro.pipeline.kernels`): every index and
gather/scatter array is precomputed, local memory is addressed through
flat ndarray views with static index arrays, and the clause body is one
generated NumPy expression.

The distributed program keeps the overlap schedule: post sends, post
non-blocking receives, run the fused *interior* kernel while messages
are in flight, drain with Probe, then run the fused *boundary* kernel.
A plan compiled without an interior split simply has an empty interior
and degrades to drain-then-compute — still fused, still bit-identical.

Statistics (iterations, messages, elements moved, local updates) match
the vector backend counter-for-counter, which is what the equivalence
property tests assert.

``strict=True`` composes the static verifier with execution: a clause
whose ``verify-plan`` report carries any RACE* or COMM* finding refuses
fused execution with the diagnostic code in the error message.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core.clause import Ordering
from .distributed import DistributedMachine, NodeContext
from .shared import SharedMachine
from .vectorize import _as_value_vec, _place_env

__all__ = [
    "FusedStrictError",
    "check_strict",
    "run_shared_fused",
    "run_group_fused",
    "make_fused_node_program",
    "run_distributed_fused",
]


class FusedStrictError(RuntimeError):
    """Fused execution refused under ``strict``: the static verifier
    flagged the clause (the first offending code is in the message)."""


def check_strict(ir, strict: bool) -> None:
    """Refuse fused execution of statically-flagged clauses.

    With *strict*, a ``verify-plan`` report (run on demand if the plan
    was compiled without ``verify=True``) carrying any RACE* or COMM*
    diagnostic aborts before any node program runs."""
    if not strict:
        return
    report = ir.diagnostics
    if report is None:
        from ..analysis import verify_ir

        report = verify_ir(ir)
        ir.diagnostics = report
    offending = [d for d in report.diagnostics
                 if d.code.startswith(("RACE", "COMM"))]
    if offending:
        codes = ", ".join(sorted({d.code for d in offending}))
        raise FusedStrictError(
            f"fused execution refused under --strict: static verifier "
            f"flagged {codes} ({offending[0].message})"
        )


def _kernels_for(ir, flavor: str):
    """The built kernels of one flavor, or ``(None, reason)``."""
    k = getattr(ir, "kernels", None)
    if k is None:
        return None, "plan carries no fused kernels (lower-kernels fallback)"
    nodes = k.shared if flavor == "shared" else k.dist
    if nodes is None:
        note = k.shared_note if flavor == "shared" else k.dist_note
        return None, note or "no kernels for this flavor"
    return k, None


# ---------------------------------------------------------------------------
# shared-memory fused executor
# ---------------------------------------------------------------------------

def run_shared_fused(
    ir,
    env: Dict[str, np.ndarray],
    machine: Optional[SharedMachine] = None,
    strict: bool = False,
) -> SharedMachine:
    """Execute a ``//`` clause with the precompiled shared kernels: one
    precomputed fancy-indexed gather per read, one fused expression, one
    fancy-indexed commit per node — semantics identical to the vector
    executor (all phases read pre-state, commits in node order)."""
    if ir.clause.ordering is not Ordering.PAR:
        raise ValueError("the fused executor handles // clauses")
    check_strict(ir, strict)
    k, why = _kernels_for(ir, "shared")
    if k is None:
        raise ValueError(f"no shared fused kernels: {why}")
    if machine is None:
        machine = SharedMachine(ir.pmax, env)
    genv = machine.env

    pending = []
    for p, nk in enumerate(k.shared):
        machine.stats[p].iterations += nk.n
        if nk.n == 0:
            pending.append((p, None, None, None))
            continue
        rvals = [genv[name][key] for name, key in nk.read_keys]
        mask = None
        if k.guard is not None:
            mask = np.broadcast_to(np.asarray(
                k.guard(nk.idx, rvals), dtype=bool), (nk.n,))
        values = _as_value_vec(k.rhs(nk.idx, rvals), nk.n)
        pending.append((p, nk.write_key_vecs, values, mask))

    target = genv[k.write_name]
    for p, w_ai, values, mask in pending:
        machine.stats[p].barriers += 1
        if w_ai is None:
            continue
        if mask is not None:
            w_ai = tuple(a[mask] for a in w_ai)
            values = values[mask]
        target[w_ai if len(w_ai) > 1 else w_ai[0]] = values
        machine.stats[p].local_updates += int(values.size)
    return machine


def run_group_fused(irs, machine: SharedMachine) -> SharedMachine:
    """Execute a *fused clause group* (consecutive clauses whose barriers
    were proven removable) with the precompiled shared kernels.

    The walk is node-major — node p runs every clause of the group (one
    gather, one fused expression, one commit per clause) before node p+1
    starts — which matches the legacy scalar group walk order exactly.
    The fusion certificate (no cross-processor flow/anti/output
    dependence, no intra-clause overlap) is what makes this order and
    the all-nodes-phase order produce identical values; bit-identity
    with the scalar walk is asserted by the equivalence tests.

    One barrier is charged per node for the whole group, not per clause.
    """
    genv = machine.env
    for p in range(machine.pmax):
        for ir in irs:
            k = ir.kernels
            if p >= len(k.shared):
                continue
            nk = k.shared[p]
            machine.stats[p].iterations += nk.n
            if nk.n == 0:
                continue
            rvals = [genv[name][key] for name, key in nk.read_keys]
            values = _as_value_vec(k.rhs(nk.idx, rvals), nk.n)
            w_ai = nk.write_key_vecs
            if k.guard is not None:
                mask = np.broadcast_to(np.asarray(
                    k.guard(nk.idx, rvals), dtype=bool), (nk.n,))
                w_ai = tuple(a[mask] for a in w_ai)
                values = values[mask]
            target = genv[k.write_name]
            target[w_ai if len(w_ai) > 1 else w_ai[0]] = values
            machine.stats[p].local_updates += int(values.size)
    for p in range(machine.pmax):
        machine.stats[p].barriers += 1
    return machine


# ---------------------------------------------------------------------------
# distributed fused executor (overlap schedule, precompiled kernels)
# ---------------------------------------------------------------------------

def make_fused_node_program(ir, ctx: NodeContext):
    """Node program driven entirely by precomputed index arrays: flat
    gathers feed the sends, non-blocking receives fill precomputed lane
    positions, and the fused interior kernel runs while messages are in
    flight."""
    k = ir.kernels
    nk = k.dist[ctx.p]

    def program():
        # ---- send phase: one flat gather + one message per peer ----------
        for s in nk.sends:
            ctx.stats.iterations += s.count
            buf = ctx.mem[s.name].ravel()
            for q, gidx in s.peers:
                ctx.send(q, ("fus", s.pos), buf[gidx])

        # ---- update phase -------------------------------------------------
        n = nk.n
        ctx.stats.iterations += n
        if n:
            rvals: List[Optional[np.ndarray]] = [None] * k.nreads
            pending = []  # (handle, value vector, lane positions to fill)
            for r in nk.reads:
                if r.replicated:
                    rvals[r.pos] = np.asarray(
                        ctx.mem[r.name].ravel()[r.rep_gather],
                        dtype=np.float64)
                    continue
                vals = np.empty(n, dtype=np.float64)
                if r.local_pos.size:
                    vals[r.local_pos] = \
                        ctx.mem[r.name].ravel()[r.local_gather]
                for src, fill in r.sources:
                    handle = yield ctx.irecv(src, ("fus", r.pos))
                    pending.append((handle, vals, fill))
                rvals[r.pos] = vals

            wbuf = ctx.mem[k.write_name].ravel()

            def commit(lanes, sub_idx, scatter):
                m = int(lanes.size)
                if not m:
                    return
                sub_r = [v[lanes] for v in rvals]
                values = _as_value_vec(k.rhs(sub_idx, sub_r), m)
                if k.guard is not None:
                    mask = np.broadcast_to(np.asarray(
                        k.guard(sub_idx, sub_r), dtype=bool), (m,))
                    scatter = scatter[mask]
                    values = values[mask]
                wbuf[scatter] = values
                ctx.stats.local_updates += int(values.size)

            # fused interior kernel while messages are in flight
            ctx.charge_elements(int(nk.interior.size))
            commit(nk.interior, nk.idx_interior, nk.scatter_interior)

            while pending:
                done = yield ctx.probe([h for h, _, _ in pending])
                i = next(j for j, (h, _, _) in enumerate(pending)
                         if h is done)
                _, vals, fill = pending.pop(i)
                vals[fill] = np.asarray(
                    ctx.note_received(done.payload), dtype=np.float64)

            ctx.charge_elements(int(nk.boundary.size))
            commit(nk.boundary, nk.idx_boundary, nk.scatter_boundary)

        yield ctx.barrier()

    return program()


def run_distributed_fused(
    ir,
    env: Dict[str, np.ndarray],
    machine: Optional[DistributedMachine] = None,
    model=None,
    strict: bool = False,
) -> DistributedMachine:
    """Place *env*, run the fused node programs, return the machine."""
    if ir.clause.ordering is not Ordering.PAR:
        raise ValueError("the fused executor handles // clauses")
    if ir.write.replicated:
        raise ValueError("replicated writes keep the scalar path")
    check_strict(ir, strict)
    k, why = _kernels_for(ir, "dist")
    if k is None:
        raise ValueError(f"no distributed fused kernels: {why}")
    if machine is None:
        machine = DistributedMachine(ir.pmax, model=model)
        _place_env(ir, env, machine)
    machine.run(lambda ctx: make_fused_node_program(ir, ctx))
    return machine
