"""Multi-dimensional placement helpers for the distributed machine.

Grid-decomposed arrays live as dense local nd-arrays per node (shape
``grid.local_shape(p)``); 1-D decompositions fall back to the 1-D
placement of :mod:`repro.machine.memory`.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..decomp.multidim import GridDecomposition
from .memory import LocalMemory

__all__ = ["scatter_global_nd", "gather_global_nd"]


def scatter_global_nd(
    name: str,
    global_array: np.ndarray,
    grid: GridDecomposition,
    memories: List[LocalMemory],
) -> None:
    """Distribute an nd-array onto node memories under a grid
    decomposition."""
    if tuple(global_array.shape) != grid.shape:
        raise ValueError(
            f"array {name!r} shape {global_array.shape} != decomposition "
            f"shape {grid.shape}"
        )
    for p, mem in enumerate(memories):
        local = np.zeros(grid.local_shape(p), dtype=global_array.dtype)
        for idx in grid.owned(p):
            local[grid.local(idx)] = global_array[idx]
        mem.arrays[name] = local


def gather_global_nd(
    name: str,
    grid: GridDecomposition,
    memories: List[LocalMemory],
    dtype=np.float64,
) -> np.ndarray:
    """Reassemble the global nd-array from the node memories."""
    out = np.zeros(grid.shape, dtype=dtype)
    for p, mem in enumerate(memories):
        local = mem[name]
        for idx in grid.owned(p):
            out[idx] = local[grid.local(idx)]
    return out
